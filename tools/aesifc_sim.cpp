// aesifc-sim: cycle simulator for security-typed HDL sources.
//
//   aesifc-sim design.shdl stimulus.csv [--vcd out.vcd] [--track]
//
// The stimulus file is CSV: a header row naming input signals, then one
// row of hex values per cycle. Outputs (and, with --track, their
// dynamically tracked labels) are printed per cycle. With --track the run
// uses the RTLIFT-style dynamic tracker and reports any runtime IFC events
// at the end; inputs are tracked at their annotated labels.
//
// Exit status: 0 = ran clean, 1 = runtime IFC events observed,
// 2 = parse/usage error.

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "hdl/parser.h"
#include "ifc/checker.h"
#include "ifc/tracker.h"
#include "sim/simulator.h"
#include "sim/vcd.h"

namespace {

using namespace aesifc;

int usage() {
  std::fprintf(stderr,
               "usage: aesifc-sim <design.shdl> <stimulus.csv> "
               "[--vcd <out.vcd>] [--track]\n");
  return 2;
}

std::vector<std::string> splitCsv(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string design_path, stim_path, vcd_path;
  bool track = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--vcd" && i + 1 < argc) {
      vcd_path = argv[++i];
    } else if (arg == "--track") {
      track = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (design_path.empty()) {
      design_path = arg;
    } else if (stim_path.empty()) {
      stim_path = arg;
    } else {
      return usage();
    }
  }
  if (design_path.empty() || stim_path.empty()) return usage();

  std::ifstream df{design_path}, sf{stim_path};
  if (!df || !sf) {
    std::fprintf(stderr, "aesifc-sim: cannot open inputs\n");
    return 2;
  }
  std::stringstream dbuf;
  dbuf << df.rdbuf();

  try {
    const auto m = hdl::parseModule(dbuf.str());

    // Stimulus header.
    std::string line;
    if (!std::getline(sf, line)) {
      std::fprintf(stderr, "aesifc-sim: empty stimulus\n");
      return 2;
    }
    const auto headers = splitCsv(line);
    std::vector<hdl::SignalId> ins;
    for (const auto& h : headers) {
      const auto id = m.findSignal(h);
      if (!id.valid() || m.signal(id).kind != hdl::SignalKind::Input) {
        std::fprintf(stderr, "aesifc-sim: '%s' is not an input\n", h.c_str());
        return 2;
      }
      ins.push_back(id);
    }

    std::vector<hdl::SignalId> outs;
    for (std::size_t i = 0; i < m.signals().size(); ++i) {
      if (m.signals()[i].kind == hdl::SignalKind::Output) {
        outs.push_back(hdl::SignalId{static_cast<std::uint32_t>(i)});
      }
    }

    sim::Simulator simr{m};
    ifc::DynamicTracker tracker{m};
    sim::VcdWriter vcd{simr};

    std::printf("cycle");
    for (const auto o : outs) std::printf(",%s", m.signal(o).name.c_str());
    if (track) {
      for (const auto o : outs)
        std::printf(",label(%s)", m.signal(o).name.c_str());
    }
    std::printf("\n");

    unsigned cycle = 0;
    while (std::getline(sf, line)) {
      if (line.empty() || line[0] == '#') continue;
      const auto vals = splitCsv(line);
      if (vals.size() != ins.size()) {
        std::fprintf(stderr, "aesifc-sim: row %u has %zu values, want %zu\n",
                     cycle, vals.size(), ins.size());
        return 2;
      }
      // Decode the whole row first so dependent input labels can be
      // resolved at this cycle's selector values.
      std::vector<BitVec> row(ins.size());
      std::map<std::uint32_t, BitVec> pinned;
      for (std::size_t i = 0; i < ins.size(); ++i) {
        row[i] = BitVec::fromHex(m.signal(ins[i]).width, vals[i]);
        pinned.emplace(ins[i].v, row[i]);
      }
      for (std::size_t i = 0; i < ins.size(); ++i) {
        simr.poke(ins[i], row[i]);
        if (track) {
          tracker.poke(ins[i], row[i],
                       ifc::resolveAnnotation(m, ins[i], pinned));
        }
      }
      simr.evalComb();
      if (!vcd_path.empty()) vcd.sample();
      std::printf("%u", cycle);
      for (const auto o : outs)
        std::printf(",%s", simr.peek(o).toHex().c_str());
      if (track) {
        tracker.evalComb();
        for (const auto o : outs)
          std::printf(",%s", tracker.label(o).toString().c_str());
      }
      std::printf("\n");
      simr.step();
      if (track) tracker.step();
      ++cycle;
    }

    if (!vcd_path.empty()) {
      if (!vcd.writeTo(vcd_path)) {
        std::fprintf(stderr, "aesifc-sim: cannot write %s\n", vcd_path.c_str());
        return 2;
      }
      std::fprintf(stderr, "wrote %s (%u cycles)\n", vcd_path.c_str(), cycle);
    }
    if (track && !tracker.events().empty()) {
      std::fprintf(stderr, "%zu runtime IFC event(s):\n",
                   tracker.events().size());
      for (const auto& e : tracker.events()) {
        std::fprintf(stderr, "  %s\n", e.toString().c_str());
      }
      return 1;
    }
    return 0;
  } catch (const hdl::ParseError& e) {
    std::fprintf(stderr, "%s: parse error: %s\n", design_path.c_str(),
                 e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
