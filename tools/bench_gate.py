#!/usr/bin/env python3
"""Benchmark regression gate.

Compares fresh bench records (the `JSON `-prefixed stdout lines, one JSON
object per line) against a committed snapshot file of the form

    {"snapshot": ..., "date": ..., "command": ..., "records": [...]}

Records are matched on the --keys fields; the --metric of each matched pair
must agree within --tolerance (relative to the snapshot value). The device
model is a deterministic cycle-accurate simulation, so the metric only moves
when the code changes — the tolerance absorbs intentional small drift while
catching real throughput regressions.

Exit status: 0 = gate passed, 1 = regression / missing record, 2 = usage.

Examples:
    bench_gate.py --fresh tp.jsonl --snapshot bench/BENCH_throughput.json \
        --bench throughput_pool --keys shards,batch
    bench_gate.py --fresh gcm.jsonl --snapshot bench/BENCH_gcm.json \
        --bench gcm --keys shards,batch,mode
"""

import argparse
import json
import sys


def load_records(path, bench):
    """Load records from a snapshot file or a JSON-lines file."""
    with open(path) as f:
        text = f.read()
    text = text.strip()
    if not text:
        return []
    # Whole-file JSON first (snapshot format), then fall back to JSON lines.
    try:
        doc = json.loads(text)
        if isinstance(doc, dict) and "records" in doc:
            recs = doc["records"]
        elif isinstance(doc, list):
            recs = doc
        else:
            recs = [doc]
        return [r for r in recs if r.get("bench") == bench]
    except json.JSONDecodeError:
        pass
    recs = []
    for line in text.splitlines():
        line = line.strip()
        if line.startswith("JSON "):
            line = line[5:]
        if not line.startswith("{"):
            continue
        r = json.loads(line)
        if r.get("bench") == bench:
            recs.append(r)
    return recs


def key_of(record, keys):
    return tuple(record.get(k) for k in keys)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fresh", required=True,
                    help="fresh records: JSON-lines file (JSON prefix ok)")
    ap.add_argument("--snapshot", required=True,
                    help="committed snapshot JSON file")
    ap.add_argument("--bench", required=True,
                    help="value of the 'bench' field to gate on")
    ap.add_argument("--keys", required=True,
                    help="comma-separated fields identifying a record")
    ap.add_argument("--metric", default="blocks_per_device_cycle")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="max relative deviation from snapshot (default 0.25)")
    ap.add_argument("--assert-zero", default="",
                    help="comma-separated fields that must equal 0 in every "
                         "fresh record (hard invariants, e.g. wrong_key_uses)")
    ap.add_argument("--assert-ge", action="append", default=[],
                    help="METRIC:FLOOR_FIELD — every fresh record must have "
                         "record[METRIC] >= record[FLOOR_FIELD] (e.g. "
                         "aggregate_availability:availability_floor); "
                         "repeatable")
    args = ap.parse_args()
    keys = [k.strip() for k in args.keys.split(",") if k.strip()]
    if not keys:
        print("bench_gate: --keys must name at least one field",
              file=sys.stderr)
        return 2

    snap = load_records(args.snapshot, args.bench)
    fresh = load_records(args.fresh, args.bench)
    if not snap:
        print(f"bench_gate: no '{args.bench}' records in {args.snapshot}",
              file=sys.stderr)
        return 1
    fresh_by_key = {key_of(r, keys): r for r in fresh}

    width = max(len(str(key_of(r, keys))) for r in snap)
    failures = 0
    print(f"bench_gate: {args.bench}.{args.metric}, "
          f"tolerance +/-{args.tolerance:.0%} vs {args.snapshot}")
    for s in snap:
        k = key_of(s, keys)
        label = str(k).ljust(width)
        f = fresh_by_key.get(k)
        if f is None:
            print(f"  {label}  MISSING (no fresh record)")
            failures += 1
            continue
        want = s.get(args.metric)
        got = f.get(args.metric)
        if not isinstance(want, (int, float)) or not isinstance(
                got, (int, float)):
            print(f"  {label}  MISSING metric '{args.metric}'")
            failures += 1
            continue
        if want == 0:
            delta = 0.0 if got == 0 else float("inf")
        else:
            delta = (got - want) / want
        verdict = "ok" if abs(delta) <= args.tolerance else "FAIL"
        if verdict == "FAIL":
            failures += 1
        print(f"  {label}  snapshot={want:<10g} fresh={got:<10g} "
              f"delta={delta:+.1%}  {verdict}")

    # Hard invariants on the FRESH records: tolerance bands are for
    # throughput drift, not for safety counters — those must be exact.
    zero_fields = [z.strip() for z in args.assert_zero.split(",") if z.strip()]
    ge_pairs = []
    for spec in args.assert_ge:
        parts = spec.split(":")
        if len(parts) != 2 or not parts[0] or not parts[1]:
            print(f"bench_gate: bad --assert-ge spec '{spec}' "
                  "(want METRIC:FLOOR_FIELD)", file=sys.stderr)
            return 2
        ge_pairs.append((parts[0], parts[1]))
    for f in fresh:
        label = str(key_of(f, keys)).ljust(width)
        for z in zero_fields:
            v = f.get(z)
            if v != 0:
                print(f"  {label}  INVARIANT {z}={v} (must be 0)")
                failures += 1
            else:
                print(f"  {label}  invariant {z}=0  ok")
        for metric, floor_field in ge_pairs:
            got = f.get(metric)
            floor = f.get(floor_field)
            if not isinstance(got, (int, float)) or not isinstance(
                    floor, (int, float)):
                print(f"  {label}  INVARIANT missing field for "
                      f"{metric}>={floor_field}")
                failures += 1
            elif got < floor:
                print(f"  {label}  INVARIANT {metric}={got:g} < "
                      f"{floor_field}={floor:g}")
                failures += 1
            else:
                print(f"  {label}  invariant {metric}={got:g} >= "
                      f"{floor_field}={floor:g}  ok")

    extra = [k for k in fresh_by_key if k not in
             {key_of(s, keys) for s in snap}]
    if extra:
        print(f"  note: {len(extra)} fresh record(s) not in snapshot "
              "(not gated): " + ", ".join(str(k) for k in sorted(
                  extra, key=str)))
    if failures:
        print(f"bench_gate: FAILED ({failures} cell(s) out of tolerance); "
              "if the change is intentional, regenerate the snapshot")
        return 1
    print(f"bench_gate: passed ({len(snap)} cell(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
