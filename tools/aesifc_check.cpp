// aesifc-check: command-line static IFC verifier for security-typed HDL
// sources — the developer-facing entry point of the methodology.
//
//   aesifc-check design.shdl             # parse + check, print report
//   aesifc-check --suggest design.shdl   # also suggest labels for
//                                        # unannotated outputs
//   aesifc-check --emit design.shdl      # echo the canonical source form
//   aesifc-check --verilog design.shdl   # export synthesizable Verilog
//                                        # (only when the check passes)
//
// Exit status: 0 = verified, 1 = violations found, 2 = parse/usage error.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "area/model.h"
#include "hdl/parser.h"
#include "hdl/verilog.h"
#include "ifc/checker.h"
#include "ifc/suggest.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: aesifc-check [--suggest] [--emit] [--verilog] "
               "[--area] <file.shdl>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool suggest = false;
  bool emit = false;
  bool verilog = false;
  bool area = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--suggest") {
      suggest = true;
    } else if (arg == "--emit") {
      emit = true;
    } else if (arg == "--verilog") {
      verilog = true;
    } else if (arg == "--area") {
      area = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage();

  bool all_ok = true;
  for (const auto& path : files) {
    std::ifstream f{path};
    if (!f) {
      std::fprintf(stderr, "aesifc-check: cannot open %s\n", path.c_str());
      return 2;
    }
    std::stringstream buf;
    buf << f.rdbuf();

    try {
      auto m = aesifc::hdl::parseModule(buf.str());
      std::printf("== %s (module %s): %zu signals, %zu assigns, %zu reg "
                  "writes, %zu downgrades\n",
                  path.c_str(), m.name().c_str(), m.signals().size(),
                  m.assigns().size(), m.regWrites().size(),
                  m.downgrades().size());
      if (emit) {
        std::printf("%s", aesifc::hdl::emitModule(m).c_str());
      }
      const auto report = aesifc::ifc::check(m);
      std::printf("%s", report.toString().c_str());
      if (!report.ok()) all_ok = false;

      if (area) {
        const auto res = aesifc::area::estimateModule(m);
        std::printf("area estimate: %llu LUTs, %llu FFs\n",
                    static_cast<unsigned long long>(res.luts),
                    static_cast<unsigned long long>(res.ffs));
      }

      if (verilog) {
        if (report.ok()) {
          std::printf("%s", aesifc::hdl::emitVerilog(m).c_str());
        } else {
          std::printf("// Verilog export suppressed: the design did not "
                      "verify.\n");
        }
      }

      if (suggest) {
        const auto suggestions = aesifc::ifc::suggestOutputLabels(m);
        if (suggestions.empty()) {
          std::printf("no unannotated outputs.\n");
        } else {
          std::printf("label suggestions:\n");
          for (const auto& s : suggestions) {
            std::printf("  output %s : %s\n", s.signal_name.c_str(),
                        s.rendered.c_str());
          }
        }
      }
    } catch (const aesifc::hdl::ParseError& e) {
      std::fprintf(stderr, "%s: parse error: %s\n", path.c_str(), e.what());
      return 2;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: error: %s\n", path.c_str(), e.what());
      return 2;
    }
  }
  return all_ok ? 0 : 1;
}
