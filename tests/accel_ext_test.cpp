// Extended accelerator features: key zeroization, hardware tag readout,
// and the meet-rule configuration knob.

#include <gtest/gtest.h>

#include "accel/driver.h"
#include "common/rng.h"

namespace aesifc::accel {
namespace {

using lattice::Conf;
using lattice::Integ;
using lattice::Principal;
using lattice::TagCodec;

struct ExtFixture : ::testing::Test {
  AesAccelerator acc{AcceleratorConfig{}};
  unsigned sup = acc.addUser(Principal::supervisor());
  unsigned alice = acc.addUser(Principal::user("alice", 1));
  unsigned eve = acc.addUser(Principal::user("eve", 2));
  Rng rng{321};

  std::vector<std::uint8_t> key(std::uint8_t seed) {
    std::vector<std::uint8_t> k(16);
    for (auto& b : k) b = static_cast<std::uint8_t>(seed + rng.next());
    return k;
  }
};

TEST_F(ExtFixture, OwnerCanZeroizeOwnKey) {
  ASSERT_TRUE(loadKey128(acc, alice, 1, 2, key(1), Conf::category(1)));
  EXPECT_TRUE(acc.roundKeys().valid(1));
  EXPECT_TRUE(acc.clearKey(alice, 1));
  EXPECT_FALSE(acc.roundKeys().valid(1));
  // Subsequent submits against the cleared slot are refused.
  EXPECT_FALSE(acc.submit({1, alice, 1, false, {}}));
}

TEST_F(ExtFixture, SupervisorCanZeroizeAnyKey) {
  ASSERT_TRUE(loadKey128(acc, alice, 1, 2, key(2), Conf::category(1)));
  EXPECT_TRUE(acc.clearKey(sup, 1));
  EXPECT_FALSE(acc.roundKeys().valid(1));
}

TEST_F(ExtFixture, ForeignUserCannotZeroize) {
  ASSERT_TRUE(loadKey128(acc, alice, 1, 2, key(3), Conf::category(1)));
  EXPECT_FALSE(acc.clearKey(eve, 1));
  EXPECT_TRUE(acc.roundKeys().valid(1));
  EXPECT_GE(acc.eventCount(SecurityEventKind::KeySlotBlocked), 1u);
}

TEST_F(ExtFixture, BaselineSkipsZeroizeCheck) {
  AesAccelerator base{AcceleratorConfig{SecurityMode::Baseline, 10, 32,
                                        false, true}};
  const unsigned a = base.addUser(Principal::user("alice", 1));
  const unsigned e = base.addUser(Principal::user("eve", 2));
  ASSERT_TRUE(loadKey128(base, a, 1, 2, key(4), Conf::category(1)));
  // The unprotected design lets Eve destroy Alice's key (a row-2 / row-5
  // integrity violation).
  EXPECT_TRUE(base.clearKey(e, 1));
}

TEST_F(ExtFixture, ZeroizeRefusedWhileInFlight) {
  ASSERT_TRUE(loadKey128(acc, alice, 1, 2, key(5), Conf::category(1)));
  ASSERT_TRUE(acc.submit({1, alice, 1, false, {}}));
  acc.tick();  // block now occupies a stage
  EXPECT_FALSE(acc.clearKey(alice, 1));
  acc.run(40);  // drain
  while (acc.fetchOutput(alice)) {
  }
  EXPECT_TRUE(acc.clearKey(alice, 1));
}

TEST_F(ExtFixture, StageHwTagEncodesUserCategory) {
  ASSERT_TRUE(loadKey128(acc, alice, 1, 2, key(6), Conf::category(1)));
  ASSERT_TRUE(acc.submit({7, alice, 1, false, {}}));
  acc.tick();
  const auto tag = acc.stageHwTag(0);
  ASSERT_TRUE(tag.has_value());
  // SoC palette: alice = category 1 in both halves -> 0x11.
  EXPECT_EQ(*tag, 0x11);
  EXPECT_FALSE(acc.stageHwTag(5).has_value());  // empty stage
}

TEST_F(ExtFixture, StageHwTagForMasterKeyUse) {
  std::vector<std::uint8_t> master = key(7);
  ASSERT_TRUE(loadKey128(acc, sup, 0, 6, master, Conf::top()));
  ASSERT_TRUE(acc.submit({8, alice, 0, false, {}}));
  acc.tick();
  const auto tag = acc.stageHwTag(0);
  ASSERT_TRUE(tag.has_value());
  // conf = top (palette 15), integ = alice's category (palette 1) -> 0x1f.
  EXPECT_EQ(TagCodec::confField(*tag), 15u);
  EXPECT_EQ(TagCodec::integField(*tag), 1u);
}

TEST(TagCodecSoc, UserCategoriesPaletteShape) {
  const auto codec = TagCodec::userCategories();
  EXPECT_EQ(codec.conf(0), Conf::bottom());
  EXPECT_EQ(codec.integ(0), Integ::top());
  EXPECT_EQ(codec.conf(3), Conf::category(3));
  EXPECT_EQ(codec.conf(15), Conf::top());
  EXPECT_EQ(codec.integ(15), Integ::bottom());
  // Per-user labels round-trip.
  const auto alice = Principal::user("alice", 4).authority;
  const auto t = codec.encode(alice);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(codec.decode(*t), alice);
}

}  // namespace
}  // namespace aesifc::accel
