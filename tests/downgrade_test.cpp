#include "lattice/downgrade.h"

#include <gtest/gtest.h>

namespace aesifc::lattice {
namespace {

const Principal kUntrusted{"untrusted",
                           Label{Conf::bottom(), Integ::bottom()}};
const Principal kTrusted{"trusted", Label{Conf::top(), Integ::top()}};

// --- The paper's worked example (Section 2.4) ---------------------------------

TEST(Declassify, UntrustedPrincipalCannotDeclassify) {
  // (S,U) cannot be declassified to (P,U) by an untrusted user because
  // S !<=C P joinC r(U).
  const Label from{Conf::top(), Integ::bottom()};
  const Label to{Conf::bottom(), Integ::bottom()};
  const auto d = checkDeclassify(from, to, kUntrusted);
  EXPECT_FALSE(d.allowed);
}

TEST(Declassify, TrustedPrincipalCanDeclassify) {
  const Label from{Conf::top(), Integ::bottom()};
  const Label to{Conf::bottom(), Integ::bottom()};
  EXPECT_TRUE(checkDeclassify(from, to, kTrusted).allowed);
}

TEST(Declassify, MustNotChangeIntegrity) {
  const Label from{Conf::top(), Integ::bottom()};
  const Label to{Conf::bottom(), Integ::top()};  // tries to raise integrity
  EXPECT_FALSE(checkDeclassify(from, to, kTrusted).allowed);
}

// --- Section 3.2.2: master key vs per-user key --------------------------------

TEST(Declassify, UserCanReleaseOwnKeyCiphertext) {
  const auto alice = Principal::user("alice", 1);
  // ciphertext label (ck join cu, iu) with ck = cu = {1}.
  const Label from{Conf::category(1), Integ::category(1)};
  const Label to{Conf::bottom(), Integ::category(1)};
  EXPECT_TRUE(checkDeclassify(from, to, alice).allowed);
}

TEST(Declassify, UserCannotReleaseMasterKeyCiphertext) {
  const auto alice = Principal::user("alice", 1);
  const Label from{Conf::top(), Integ::category(1)};  // ck = top
  const Label to{Conf::bottom(), Integ::category(1)};
  const auto d = checkDeclassify(from, to, alice);
  EXPECT_FALSE(d.allowed);
  EXPECT_NE(d.reason.find("alice"), std::string::npos);
}

TEST(Declassify, SupervisorCanReleaseMasterKeyCiphertext) {
  const Label from{Conf::top(), Integ::category(1)};
  const Label to{Conf::bottom(), Integ::category(1)};
  EXPECT_TRUE(checkDeclassify(from, to, Principal::supervisor()).allowed);
}

TEST(Declassify, CannotReleaseAnotherUsersCategory) {
  // Eve (cat 2) tries to declassify data that still carries Alice's cat 1.
  const auto eve = Principal::user("eve", 2);
  const Label from{Conf::category(1).join(Conf::category(2)),
                   Integ::category(2)};
  const Label to{Conf::bottom(), Integ::category(2)};
  EXPECT_FALSE(checkDeclassify(from, to, eve).allowed);
}

TEST(Declassify, RaisingConfidentialityIsAlwaysAllowed) {
  // "Declassifying" upward is an ordinary legal flow.
  const Label from{Conf::bottom(), Integ::bottom()};
  const Label to{Conf::top(), Integ::bottom()};
  EXPECT_TRUE(checkDeclassify(from, to, kUntrusted).allowed);
}

// --- Endorsement ----------------------------------------------------------------

TEST(Endorse, MustNotChangeConfidentiality) {
  const Label from{Conf::bottom(), Integ::bottom()};
  const Label to{Conf::top(), Integ::bottom()};
  EXPECT_FALSE(checkEndorse(from, to, kTrusted).allowed);
}

TEST(Endorse, PrincipalConfersOnlyItsOwnTrust) {
  const auto alice = Principal::user("alice", 1);
  const Label from{Conf::bottom(), Integ::bottom()};
  // Alice can endorse into her own trust category...
  EXPECT_TRUE(
      checkEndorse(from, Label{Conf::bottom(), Integ::category(1)}, alice)
          .allowed);
  // ...but not into Bob's (cat 2) or full trust.
  EXPECT_FALSE(
      checkEndorse(from, Label{Conf::bottom(), Integ::category(2)}, alice)
          .allowed);
  EXPECT_FALSE(
      checkEndorse(from, Label{Conf::bottom(), Integ::top()}, alice).allowed);
}

TEST(Endorse, TransparencyPrincipalMustReadData) {
  // Alice cannot endorse data she cannot read (Bob's secret).
  const auto alice = Principal::user("alice", 1);
  const Label from{Conf::category(2), Integ::bottom()};
  const Label to{Conf::category(2), Integ::category(1)};
  const auto d = checkEndorse(from, to, alice);
  EXPECT_FALSE(d.allowed);
  EXPECT_NE(d.reason.find("read"), std::string::npos);
}

TEST(Endorse, SupervisorEndorsesAnythingItReads) {
  const Label from{Conf::top(), Integ::bottom()};
  const Label to{Conf::top(), Integ::top()};
  EXPECT_TRUE(checkEndorse(from, to, Principal::supervisor()).allowed);
}

TEST(Endorse, LoweringIntegrityIsAlwaysAllowed) {
  const Label from{Conf::bottom(), Integ::top()};
  const Label to{Conf::bottom(), Integ::bottom()};
  EXPECT_TRUE(checkEndorse(from, to, kUntrusted).allowed);
}

TEST(CheckDowngrade, Dispatch) {
  const Label s_u{Conf::top(), Integ::bottom()};
  const Label p_u{Conf::bottom(), Integ::bottom()};
  EXPECT_TRUE(
      checkDowngrade(DowngradeKind::Declassify, s_u, p_u, kTrusted).allowed);
  EXPECT_FALSE(
      checkDowngrade(DowngradeKind::Declassify, s_u, p_u, kUntrusted).allowed);
}

// Property: a plain legal flow is always an acceptable "downgrade" for any
// principal (downgrading is a relaxation, never a restriction).
class DowngradeMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(DowngradeMonotoneTest, LegalFlowsPassDeclassify) {
  const unsigned i = static_cast<unsigned>(GetParam());
  const Label from{Conf::level(i), Integ::bottom()};
  for (unsigned j = i; j <= 8; ++j) {
    const Label to{Conf::level(j), Integ::bottom()};
    EXPECT_TRUE(checkDeclassify(from, to, kUntrusted).allowed)
        << "i=" << i << " j=" << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, DowngradeMonotoneTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace aesifc::lattice
