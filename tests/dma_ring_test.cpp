// Descriptor-ring data path: protocol round-trips, validation of the ring
// as untrusted input, fail-secure recovery, and the seeded ring fault
// campaign's two invariants (no wrong-plaintext release, no cross-label
// write) on the hardened engine — with the unhardened engine as the
// demonstrably-vulnerable control.

#include "soc/dma.h"

#include <gtest/gtest.h>

#include <memory>

#include "accel/driver.h"
#include "accel/key_store.h"
#include "aes/modes.h"
#include "common/rng.h"
#include "soc/attacks.h"
#include "soc/service.h"

namespace aesifc::soc {
namespace {

using accel::AcceleratorConfig;
using accel::AesAccelerator;
using accel::SecurityMode;
using lattice::Conf;
using lattice::Label;
using lattice::Principal;

// One accelerator + one ring channel with alice's pages around it and a
// labeled victim region for eve. Rings at [0, 0x1000), alice data at
// [0x1000, 0x4000), eve at [0x4000, 0x5000).
struct RingBench {
  AesAccelerator acc;
  unsigned alice = 0, eve = 0;
  std::vector<std::uint8_t> alice_key;
  HostMemory mem{64 * 1024};
  DmaRingEngine eng;
  DmaRingConfig rc;
  unsigned ch = 0;
  std::unique_ptr<DmaRingDriver> drv;

  explicit RingBench(bool hardened = true, unsigned comp_slots = 8,
                     unsigned max_chain = 64)
      : acc{AcceleratorConfig{SecurityMode::Protected, 10, 64, false}},
        eng{acc, mem, hardened} {
    alice = acc.addUser(Principal::user("alice", 1));
    eve = acc.addUser(Principal::user("eve", 2));
    Rng rng{0x5eed};
    alice_key.resize(16);
    for (auto& b : alice_key) b = static_cast<std::uint8_t>(rng.next());
    EXPECT_TRUE(accel::loadKey128(acc, alice, 1, 0, alice_key,
                                  acc.principal(alice).authority.c));
    rc.desc_base = 0x0000;
    rc.desc_slots = 8;
    rc.chain_base = 0x400;
    rc.chain_slots = 16;
    rc.comp_base = 0x800;
    rc.comp_slots = comp_slots;
    rc.max_chain = max_chain;
    rc.watchdog_cycles = 256;
    ch = eng.addChannel(rc);
    drv = std::make_unique<DmaRingDriver>(eng, mem, ch, rc);
    const Label al = acc.principal(alice).authority;
    mem.setPageLabel(0x0000, 0x1000, al);  // rings + chain arena
    mem.setPageLabel(0x1000, 0x3000, al);  // alice src/dst staging
    mem.setPageLabel(0x4000, 0x1000, acc.principal(eve).authority);
  }

  std::vector<std::uint8_t> randomBytes(std::size_t n, std::uint64_t seed) {
    Rng rng{seed};
    std::vector<std::uint8_t> v(n);
    for (auto& b : v) b = static_cast<std::uint8_t>(rng.next());
    return v;
  }

  aes::ExpandedKey key() const {
    return aes::expandKey(alice_key, aes::KeySize::Aes128);
  }

  DmaDescriptor desc(DmaMode mode, std::size_t src, std::size_t dst,
                     std::size_t len) const {
    DmaDescriptor d;
    d.user = alice;
    d.key_slot = 1;
    d.mode = mode;
    d.src = src;
    d.dst = dst;
    d.len = len;
    return d;
  }

  const DmaCompletion* run(const std::vector<DmaDescriptor>& segs,
                           std::uint64_t budget = 8192) {
    const auto seq = drv->submitChain(segs);
    EXPECT_TRUE(seq.has_value());
    if (!seq) return nullptr;
    return drv->wait(*seq, budget);
  }
};

TEST(DmaRing, EcbChainMatchesSoftware) {
  RingBench b;
  const auto msg = b.randomBytes(3 * 160, 7);
  b.mem.writeBytes(0x1000, msg);
  // Three scatter segments into one contiguous destination.
  std::vector<DmaDescriptor> segs{
      b.desc(DmaMode::EcbEncrypt, 0x1000, 0x2000, 160),
      b.desc(DmaMode::EcbEncrypt, 0x10a0, 0x20a0, 160),
      b.desc(DmaMode::EcbEncrypt, 0x1140, 0x2140, 160)};
  const auto* c = b.run(segs);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->status, DmaError::None) << toString(c->status);
  EXPECT_EQ(c->blocks, 30u);
  EXPECT_EQ(b.mem.readBytes(0x2000, msg.size()),
            aes::ecbEncrypt(msg, b.key()));
  EXPECT_EQ(b.eng.stats().segments_fetched, 2u);  // two continuations

  // And decrypt it back in place through the same ring.
  const auto* d =
      b.run({b.desc(DmaMode::EcbDecrypt, 0x2000, 0x2000, msg.size())});
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->status, DmaError::None) << toString(d->status);
  EXPECT_EQ(b.mem.readBytes(0x2000, msg.size()), msg);
}

TEST(DmaRing, CtrChainContinuesCounterAcrossSegments) {
  RingBench b;
  const auto msg = b.randomBytes(400, 9);  // not block-aligned: CTR tail
  b.mem.writeBytes(0x1000, msg);
  aes::Iv nonce{};
  for (std::size_t i = 0; i < nonce.size(); ++i)
    nonce[i] = static_cast<std::uint8_t>(0xC0 + i);
  std::vector<DmaDescriptor> segs{
      b.desc(DmaMode::CtrCrypt, 0x1000, 0x2000, 256),
      b.desc(DmaMode::CtrCrypt, 0x1100, 0x2100, 144)};
  std::copy(nonce.begin(), nonce.end(), segs[0].ctr_iv.begin());
  const auto* c = b.run(segs);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->status, DmaError::None) << toString(c->status);
  EXPECT_EQ(b.mem.readBytes(0x2000, msg.size()),
            aes::ctrCrypt(msg, b.key(), nonce));
}

TEST(DmaRing, LabelRefusalsAreTypedAndWriteNothing) {
  RingBench b;
  b.mem.writeBytes(0x4000, b.randomBytes(64, 3));  // eve's data
  const auto eve_before = b.mem.readBytes(0x4000, 0x1000);

  // Alice's descriptor naming eve's page as source: SrcPageDenied.
  const auto* c = b.run({b.desc(DmaMode::EcbEncrypt, 0x4000, 0x2000, 64)});
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->status, DmaError::SrcPageDenied);

  // ...and as destination: DstPageDenied, and eve's bytes never move.
  b.mem.writeBytes(0x1000, b.randomBytes(64, 4));
  const auto* d = b.run({b.desc(DmaMode::EcbEncrypt, 0x1000, 0x4000, 64)});
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->status, DmaError::DstPageDenied);
  EXPECT_EQ(b.mem.readBytes(0x4000, 0x1000), eve_before);
  EXPECT_EQ(b.eng.stats().cross_label_writes, 0u);
}

TEST(DmaRing, RingPageDeniedWhenRingLabelExcludesUser) {
  // The completion ring sits on eve's pages: alice's transfer must be
  // refused before anything executes — the engine may not read a ring the
  // user cannot see nor write completions the user may not write.
  RingBench b;
  b.mem.setPageLabel(b.rc.comp_base, b.rc.comp_slots * kCompBytes,
                     b.acc.principal(b.eve).authority);
  b.mem.writeBytes(0x1000, b.randomBytes(64, 5));
  const auto seq = b.drv->submitChain(
      {b.desc(DmaMode::EcbEncrypt, 0x1000, 0x2000, 64)});
  ASSERT_TRUE(seq.has_value());
  const auto* c = b.drv->wait(*seq, 2048);
  // No completion can legally be delivered on that ring.
  EXPECT_EQ(c, nullptr);
  EXPECT_GE(b.eng.stats().by_error[static_cast<unsigned>(
                DmaError::RingPageDenied)],
            1u);
  EXPECT_EQ(b.eng.stats().completed_ok, 0u);
}

TEST(DmaRing, ChecksumMismatchRefused) {
  RingBench b;
  b.mem.writeBytes(0x1000, b.randomBytes(64, 6));
  const auto d = b.desc(DmaMode::EcbEncrypt, 0x1000, 0x2000, 64);
  writeRingDescriptor(b.mem, b.rc.desc_base, d, 0, /*seq=*/9,
                      b.eng.generation(b.ch), /*owned=*/true);
  b.mem.write32(b.rc.desc_base + 4,
                b.mem.read32(b.rc.desc_base + 4) ^ 0x10000);  // corrupt
  b.eng.doorbell(b.ch);
  for (unsigned i = 0; i < 64; ++i) b.eng.tick();
  EXPECT_EQ(
      b.eng.stats().by_error[static_cast<unsigned>(DmaError::BadChecksum)],
      1u);
  EXPECT_EQ(b.eng.stats().checksum_rejects, 1u);
  EXPECT_EQ(b.eng.stats().completed_ok, 0u);
}

TEST(DmaRing, StructurallyInvalidDescriptorsRefused) {
  struct Case {
    unsigned offset;
    std::uint64_t value;
    DmaError want;
  };
  const Case cases[] = {
      {8, 7, DmaError::BadDescriptor},            // mode out of range
      {10, 999, DmaError::BadDescriptor},         // user out of range
      {12, accel::kRoundKeySlots, DmaError::BadDescriptor},
      {16, 1u << 20, DmaError::BadRange},         // src outside memory
      {32, 24, DmaError::UnalignedLength},        // ECB len % 16 != 0
      {40, 0x900, DmaError::OobNextPointer},      // next outside arena
  };
  for (const auto& tc : cases) {
    RingBench b;
    b.mem.writeBytes(0x1000, b.randomBytes(64, 8));
    const auto d = b.desc(DmaMode::EcbEncrypt, 0x1000, 0x2000, 64);
    writeRingDescriptor(b.mem, b.rc.desc_base, d, 0, 5,
                        b.eng.generation(b.ch), true);
    // Overwrite one field, then re-seal the checksum: structure, not the
    // checksum, must catch these.
    if (tc.offset == 10 || tc.offset == 12) {
      b.mem.write32(b.rc.desc_base + 8,
                    b.mem.read32(b.rc.desc_base + 8) & 0xffffu);
      b.mem.write8(b.rc.desc_base + tc.offset,
                   static_cast<std::uint8_t>(tc.value));
      b.mem.write8(b.rc.desc_base + tc.offset + 1,
                   static_cast<std::uint8_t>(tc.value >> 8));
    } else if (tc.offset == 8) {
      b.mem.write8(b.rc.desc_base + 8, static_cast<std::uint8_t>(tc.value));
    } else {
      b.mem.write64(b.rc.desc_base + tc.offset, tc.value);
    }
    b.mem.write32(b.rc.desc_base + 4,
                  ringChecksum(b.mem, b.rc.desc_base + 8, kDescBytes - 8));
    b.eng.doorbell(b.ch);
    for (unsigned i = 0; i < 64; ++i) b.eng.tick();
    EXPECT_EQ(b.eng.stats().by_error[static_cast<unsigned>(tc.want)], 1u)
        << "field offset " << tc.offset << " expected " << toString(tc.want);
    EXPECT_EQ(b.eng.stats().completed_ok, 0u);
  }
}

TEST(DmaRing, ChainLoopAndChainTooLongRefused) {
  {
    RingBench b;
    b.mem.writeBytes(0x1000, b.randomBytes(128, 10));
    std::vector<DmaDescriptor> segs{
        b.desc(DmaMode::EcbEncrypt, 0x1000, 0x2000, 64),
        b.desc(DmaMode::EcbEncrypt, 0x1040, 0x2040, 64)};
    const auto seq = b.drv->submitChain(segs);
    ASSERT_TRUE(seq.has_value());
    // Redirect the continuation's next-pointer at itself (checksum kept
    // valid — a malicious ring, not a corrupted one).
    const std::uint64_t cont = b.mem.read64(b.rc.desc_base + 40);
    ASSERT_NE(cont, 0u);
    b.mem.write64(cont + 40, cont);
    b.mem.write32(cont + 4, ringChecksum(b.mem, cont + 8, kDescBytes - 8));
    const auto* c = b.drv->wait(*seq, 4096);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->status, DmaError::ChainLoop) << toString(c->status);
  }
  {
    RingBench b{/*hardened=*/true, /*comp_slots=*/8, /*max_chain=*/2};
    b.mem.writeBytes(0x1000, b.randomBytes(192, 11));
    std::vector<DmaDescriptor> segs{
        b.desc(DmaMode::EcbEncrypt, 0x1000, 0x2000, 64),
        b.desc(DmaMode::EcbEncrypt, 0x1040, 0x2040, 64),
        b.desc(DmaMode::EcbEncrypt, 0x1080, 0x2080, 64)};
    const auto* c = b.run(segs, 4096);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->status, DmaError::ChainTooLong) << toString(c->status);
  }
}

TEST(DmaRing, TornOwnershipCaughtBeforeRelease) {
  RingBench b;
  b.mem.writeBytes(0x1000, b.randomBytes(256, 12));
  const auto dst_before = b.mem.readBytes(0x2000, 256);
  const auto seq =
      b.drv->submitChain({b.desc(DmaMode::EcbEncrypt, 0x1000, 0x2000, 256)});
  ASSERT_TRUE(seq.has_value());
  for (unsigned i = 0; i < 4; ++i) b.eng.tick();  // latch completes
  // Host violates the protocol: reclaims the descriptor mid-execution.
  b.mem.write32(b.rc.desc_base,
                static_cast<std::uint32_t>(b.eng.generation(b.ch)) << 16);
  const auto* c = b.drv->wait(*seq, 8192);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->status, DmaError::TornOwnership) << toString(c->status);
  EXPECT_GE(b.eng.stats().torn_ownership, 1u);
  // Fail-secure: nothing was released into the destination.
  EXPECT_EQ(b.mem.readBytes(0x2000, 256), dst_before);
}

TEST(DmaRing, StaleGenerationRefusedAfterRingReset) {
  RingBench b;
  b.mem.writeBytes(0x1000, b.randomBytes(64, 13));
  const auto d = b.desc(DmaMode::EcbEncrypt, 0x1000, 0x2000, 64);
  const std::uint16_t old_gen = b.eng.generation(b.ch);
  b.eng.ringReset(b.ch);  // generation bumps; slot cursors rewind
  writeRingDescriptor(b.mem, b.rc.desc_base, d, 0, 3, old_gen, true);
  b.eng.doorbell(b.ch);
  for (unsigned i = 0; i < 64; ++i) b.eng.tick();
  EXPECT_GE(b.eng.stats().stale_generation, 1u);
  EXPECT_EQ(b.eng.stats().completed_ok, 0u);
}

TEST(DmaRing, CompletionOverflowParksHardenedEngine) {
  RingBench b{/*hardened=*/true, /*comp_slots=*/2};
  b.drv->setAutoPoll(false);  // host stops consuming completions
  b.mem.writeBytes(0x1000, b.randomBytes(4 * 64, 14));
  std::vector<std::uint16_t> seqs;
  for (unsigned i = 0; i < 4; ++i) {
    const auto s = b.drv->submitChain({b.desc(
        DmaMode::EcbEncrypt, 0x1000 + i * 64, 0x2000 + i * 64, 64)});
    ASSERT_TRUE(s.has_value());
    seqs.push_back(*s);
  }
  for (unsigned i = 0; i < 4096; ++i) b.eng.tick();
  // The third transfer found no free completion slot: the channel parks
  // (backpressure) instead of overwriting an unconsumed record.
  EXPECT_TRUE(b.eng.channelStalled(b.ch));
  EXPECT_GT(b.eng.stats().comp_stall_cycles, 0u);
  EXPECT_EQ(b.eng.stats().comp_overflow_drops, 0u);
  // Host resumes: every transfer resolves exactly once, none lost.
  b.drv->setAutoPoll(true);
  for (unsigned i = 0; i < 4096 && !b.eng.idle(); ++i) {
    b.eng.tick();
    b.drv->poll();
  }
  b.drv->poll();
  const auto ek = b.key();
  for (unsigned i = 0; i < 4; ++i) {
    const auto* c = b.drv->result(seqs[i]);
    ASSERT_NE(c, nullptr) << "transfer " << i << " unresolved";
    EXPECT_EQ(c->status, DmaError::None) << toString(c->status);
    const auto in = b.mem.readBytes(0x1000 + i * 64, 64);
    EXPECT_EQ(b.mem.readBytes(0x2000 + i * 64, 64), aes::ecbEncrypt(in, ek));
  }
  EXPECT_EQ(b.drv->duplicateCompletions(), 0u);
  EXPECT_EQ(b.eng.stats().comp_overflow_drops, 0u);
}

TEST(DmaRing, WatchdogRecoversStalledRingExactlyOnce) {
  RingBench b;
  b.mem.writeBytes(0x1000, b.randomBytes(128, 15));
  b.acc.setReceiverReady(b.alice, false);  // output port wedged
  const auto seq =
      b.drv->submitChain({b.desc(DmaMode::EcbEncrypt, 0x1000, 0x2000, 128)});
  ASSERT_TRUE(seq.has_value());
  for (unsigned i = 0; i < 2 * 256 + 64; ++i) b.eng.tick();
  EXPECT_GE(b.eng.stats().watchdog_fires, 1u);  // quiesce -> resync fired
  b.acc.setReceiverReady(b.alice, true);
  const auto* c = b.drv->wait(*seq, 16384);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->status, DmaError::None) << toString(c->status);
  EXPECT_GE(b.eng.stats().recoveries, 1u);
  // Idempotent resubmit: the recovery re-ran the descriptor, yet exactly
  // one completion was delivered and the output is written exactly once.
  EXPECT_EQ(b.eng.stats().completed_ok, 1u);
  EXPECT_EQ(b.drv->duplicateCompletions(), 0u);
  const auto in = b.mem.readBytes(0x1000, 128);
  EXPECT_EQ(b.mem.readBytes(0x2000, 128), aes::ecbEncrypt(in, b.key()));
}

TEST(DmaRing, ToctouDstRewriteBlockedByLatchOnHardenedOnly) {
  // Mid-flight the "host" rewrites the published descriptor's dst to point
  // into eve's pages (checksum re-sealed). The hardened engine executed
  // from its latched shadow copy and never re-reads the ring; the
  // unhardened engine re-reads dst at writeback and leaks.
  for (const bool hardened : {true, false}) {
    RingBench b{hardened};
    const auto eve_before = b.mem.readBytes(0x4000, 0x1000);
    b.mem.writeBytes(0x1000, b.randomBytes(256, 16));
    const auto seq = b.drv->submitChain(
        {b.desc(DmaMode::EcbEncrypt, 0x1000, 0x2000, 256)});
    ASSERT_TRUE(seq.has_value());
    for (unsigned i = 0; i < 4; ++i) b.eng.tick();
    b.mem.write64(b.rc.desc_base + 24, 0x4000);  // dst -> eve
    b.mem.write32(b.rc.desc_base + 4,
                  ringChecksum(b.mem, b.rc.desc_base + 8, kDescBytes - 8));
    b.drv->wait(*seq, 8192);
    if (hardened) {
      EXPECT_EQ(b.eng.stats().cross_label_writes, 0u);
      EXPECT_EQ(b.mem.readBytes(0x4000, 0x1000), eve_before);
      // The transfer itself lands at the latched (legitimate) destination.
      const auto in = b.mem.readBytes(0x1000, 256);
      EXPECT_EQ(b.mem.readBytes(0x2000, 256), aes::ecbEncrypt(in, b.key()));
    } else {
      EXPECT_GE(b.eng.stats().cross_label_writes, 1u);
      EXPECT_NE(b.mem.readBytes(0x4000, 0x1000), eve_before);
    }
  }
}

TEST(DmaRing, HardenedCampaignInvariantsHoldAcrossSeeds) {
  RingCampaignReport total;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    RingCampaignConfig cfg;
    cfg.seed = seed;
    cfg.descriptors = 21;  // 3 passes over every scripted scenario
    const auto rep = runRingFaultCampaign(cfg);
    EXPECT_EQ(rep.wrong_plaintext_releases, 0u) << "seed " << seed;
    EXPECT_EQ(rep.cross_label_writes, 0u) << "seed " << seed;
    EXPECT_EQ(rep.partial_writes, 0u) << "seed " << seed;
    total += rep;
  }
  // The campaign must actually exercise the machinery it certifies.
  EXPECT_GT(total.completed_ok, 0u);
  EXPECT_GT(total.refused, 0u);
  EXPECT_GT(total.watchdog_fires, 0u);
  EXPECT_GT(total.ring_faults, 0u);
  EXPECT_EQ(total.descriptors,
            total.completed_ok + total.refused + total.unresolved);
}

TEST(DmaRing, UnhardenedEngineDemonstratesViolations) {
  // The control: without checksum validation, descriptor latching, and the
  // point-of-use label re-check, the same campaign produces real
  // confidentiality/integrity violations.
  RingCampaignReport total;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    RingCampaignConfig cfg;
    cfg.seed = seed;
    cfg.descriptors = 21;
    cfg.hardened = false;
    total += runRingFaultCampaign(cfg);
  }
  EXPECT_GT(total.wrong_plaintext_releases + total.cross_label_writes +
                total.partial_writes,
            0u);
}

TEST(DmaRing, ServiceRingPathMatchesMmioPath) {
  AesAccelerator acc{AcceleratorConfig{SecurityMode::Protected, 10, 64,
                                       false}};
  const unsigned u = acc.addUser(Principal::user("alice", 1));
  Rng rng{31};
  std::vector<std::uint8_t> key(16);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());

  ServiceConfig cfg;
  cfg.batch_size = 32;
  cfg.quota_per_round = 32;  // let serveRun form a full 32-block run
  cfg.use_dma_ring = true;
  cfg.dma_ring_min_run = 16;
  AccelService svc{acc, cfg};
  TenantSpec spec;
  spec.user = u;
  spec.key_slot = 1;
  spec.cell_base = 0;
  spec.key = key;
  spec.key_conf = acc.principal(u).authority.c;
  spec.queue_depth = 64;
  const unsigned t = svc.addTenant(spec);

  std::vector<aes::Block> blocks(32);
  for (auto& blk : blocks)
    for (auto& byte : blk) byte = static_cast<std::uint8_t>(rng.next());
  for (const auto& blk : blocks)
    ASSERT_TRUE(svc.submit(t, blk, /*decrypt=*/false).admitted);
  svc.runUntilIdle(1u << 20);

  const auto ek = aes::expandKey(key, aes::KeySize::Aes128);
  for (unsigned i = 0; i < 32; ++i) {
    const auto comp = svc.fetch(t);
    ASSERT_TRUE(comp.has_value()) << "completion " << i << " missing";
    EXPECT_EQ(comp->status, CompletionStatus::Ok);
    EXPECT_EQ(comp->served_by, ServedBy::Hardware);
    aes::Block want;
    aes::Bytes one(blocks[i].begin(), blocks[i].end());
    const auto enc = aes::ecbEncrypt(one, ek);
    std::copy(enc.begin(), enc.end(), want.begin());
    EXPECT_EQ(comp->data, want) << "block " << i;
  }
  EXPECT_GE(svc.stats().dma_ring_runs, 1u);
  EXPECT_GE(svc.stats().dma_ring_blocks, 16u);
  EXPECT_EQ(svc.stats().completed_hw, 32u);
}

TEST(DmaRing, AsyncBatchApiOverlapsCallerOwnedClock) {
  AesAccelerator acc{AcceleratorConfig{SecurityMode::Protected, 10, 64,
                                       false}};
  const unsigned u = acc.addUser(Principal::user("alice", 1));
  Rng rng{37};
  std::vector<std::uint8_t> key(16);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
  ASSERT_TRUE(accel::loadKey128(acc, u, 1, 0, key,
                                acc.principal(u).authority.c));
  accel::AccelSession s{acc, u, 1};

  std::vector<aes::Block> a(8), c(8);
  for (auto& blk : a)
    for (auto& byte : blk) byte = static_cast<std::uint8_t>(rng.next());
  for (auto& blk : c)
    for (auto& byte : blk) byte = static_cast<std::uint8_t>(rng.next());

  // Two batches in flight at once; the caller owns every tick.
  const auto ta = s.beginBatch(a, /*decrypt=*/false);
  const auto tc = s.beginBatch(c, /*decrypt=*/false);
  EXPECT_EQ(s.asyncOutstanding(), 2u);
  unsigned guard = 0;
  while ((!s.pollBatch(ta) || !s.pollBatch(tc)) && guard++ < 4096) acc.tick();
  const auto ra = s.finishBatch(ta);
  const auto rc = s.finishBatch(tc);
  EXPECT_EQ(s.asyncOutstanding(), 0u);
  ASSERT_TRUE(ra.has_value()) << toString(ra.status());
  ASSERT_TRUE(rc.has_value()) << toString(rc.status());

  const auto ek = aes::expandKey(key, aes::KeySize::Aes128);
  for (unsigned i = 0; i < 8; ++i) {
    aes::Bytes one(a[i].begin(), a[i].end());
    const auto enc = aes::ecbEncrypt(one, ek);
    aes::Block want;
    std::copy(enc.begin(), enc.end(), want.begin());
    EXPECT_EQ((*ra)[i], want);
  }
  // finishBatch on an unknown ticket is a typed rejection, not UB.
  EXPECT_EQ(s.finishBatch(999).status(), accel::AccelStatus::Rejected);
}

}  // namespace
}  // namespace aesifc::soc
