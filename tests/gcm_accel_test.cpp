// On-device AEAD coverage: the tagged GHASH unit + GCM sequencer against
// the SP 800-38D vectors and the host oracle, the label-enforcement story
// (a digest never leaves below join(label(H), label(data))), tamper
// verdicts, completion-timing invariance of the open path, fail-secure
// behavior under GHASH-state faults, and the service/pool AEAD routing.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "accel/driver.h"
#include "accel/ghash_unit.h"
#include "aes/gcm.h"
#include "common/rng.h"
#include "soc/pool.h"
#include "soc/service.h"

namespace aesifc::accel {
namespace {

using lattice::Conf;
using lattice::Integ;
using lattice::Label;
using lattice::Principal;

std::vector<std::uint8_t> hexBytes(const std::string& hex) {
  std::vector<std::uint8_t> v(hex.size() / 2);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<std::uint8_t>(
        std::stoul(hex.substr(2 * i, 2), nullptr, 16));
  }
  return v;
}

aes::Tag128 tagOf(const std::string& hex) {
  aes::Tag128 t{};
  const auto b = hexBytes(hex);
  std::copy(b.begin(), b.end(), t.begin());
  return t;
}

std::vector<std::uint8_t> randomBytes(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next());
  return v;
}

// Accelerator + one provisioned session, the way every test here starts.
struct GcmRig {
  AesAccelerator acc;
  unsigned user;
  AccelSession session;
  aes::ExpandedKey golden;

  GcmRig(SecurityMode mode, const std::vector<std::uint8_t>& key,
         SessionOptions opts = {})
      : acc{[&] {
          AcceleratorConfig c;
          c.mode = mode;
          return c;
        }()},
        user{acc.addUser(Principal::user("alice", 1))},
        session{acc, user, 1, opts},
        golden{aes::expandKey(key, aes::KeySize::Aes128)} {
    EXPECT_TRUE(loadKey128(acc, user, 1, 0, key, Conf::category(1)));
  }
};

struct GcmAccelFixture : ::testing::TestWithParam<SecurityMode> {};

// --- SP 800-38D vectors, end to end on the device --------------------------------

struct NistCase {
  const char* key;
  const char* iv;
  const char* pt;
  const char* aad;
  const char* ct;
  const char* tag;
};

const NistCase kNistCases[] = {
    // Case 1: empty everything.
    {"00000000000000000000000000000000", "000000000000000000000000", "", "",
     "", "58e2fccefa7e3061367f1d57a4e7455a"},
    // Case 2: one zero block.
    {"00000000000000000000000000000000", "000000000000000000000000",
     "00000000000000000000000000000000", "",
     "0388dace60b6a392f328c2b971b2fe78", "ab6e47d42cec13bdf53a67b21257bddf"},
    // Case 3: four blocks, no AAD.
    {"feffe9928665731c6d6a8f9467308308", "cafebabefacedbaddecaf888",
     "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
     "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
     "",
     "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
     "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
     "4d5c2af327cd64a62cf35abd2ba6fab4"},
    // Case 4: partial final block + AAD.
    {"feffe9928665731c6d6a8f9467308308", "cafebabefacedbaddecaf888",
     "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
     "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
     "feedfacedeadbeeffeedfacedeadbeefabaddad2",
     "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
     "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091",
     "5bc94fbc3221a5db94fae95ae7121a47"},
    // Case 5: 64-bit IV (GHASH-derived J0).
    {"feffe9928665731c6d6a8f9467308308", "cafebabefacedbad",
     "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
     "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
     "feedfacedeadbeeffeedfacedeadbeefabaddad2",
     "61353b4c2806934a777ff51fa22a4755699b2a714fcdc6f83766e5f97b6c7423"
     "73806900e49f24b22b097544d4896b424989b5e1ebac0f07c23f4598",
     "3612d2e79e3b0785561be14aaca2fccb"},
    // Case 6: 480-bit IV (multi-block J0 derivation).
    {"feffe9928665731c6d6a8f9467308308",
     "9313225df88406e555909c5aff5269aa6a7a9538534f7da1e4c303d2a318a728"
     "c3c0c95156809539fcf0e2429a6b525416aedbf5a0de6a57a637b39b",
     "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
     "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
     "feedfacedeadbeeffeedfacedeadbeefabaddad2",
     "8ce24998625615b603a033aca13fb894be9112a5c3a211a8ba262a3cca7e2ca7"
     "01e4a9a4fba43c90ccdcb281d48c7c6fd62875d2aca417034c34aee5",
     "619cc5aefffe0bfa462af43c1699d050"},
};

TEST_P(GcmAccelFixture, NistVectorsBitIdenticalToHostAndStandard) {
  for (const auto& c : kNistCases) {
    const auto key = hexBytes(c.key);
    const auto iv = hexBytes(c.iv);
    const auto pt = hexBytes(c.pt);
    const auto aad = hexBytes(c.aad);
    GcmRig rig{GetParam(), key};

    const auto sealed = rig.session.gcmSeal(pt, aad, iv);
    ASSERT_TRUE(sealed.has_value()) << toString(sealed.status());
    EXPECT_EQ(sealed->ciphertext, hexBytes(c.ct));
    EXPECT_EQ(sealed->tag, tagOf(c.tag));
    // Bit-identical to the host software path, not just to the constants.
    const auto host = aes::gcmEncrypt(pt, aad, rig.golden, iv);
    EXPECT_EQ(sealed->ciphertext, host.ciphertext);
    EXPECT_EQ(sealed->tag, host.tag);

    const auto opened =
        rig.session.gcmOpen(sealed->ciphertext, aad, sealed->tag, iv);
    ASSERT_TRUE(opened.has_value()) << toString(opened.status());
    EXPECT_EQ(*opened, pt);
  }
}

TEST_P(GcmAccelFixture, DeviceMatchesHostAcrossLengths) {
  // Sweeps the lane-interleave edge cases: fewer blocks than lanes, exactly
  // the lane count, multiples, partial final blocks, and AAD mixes.
  Rng rng{101};
  const auto key = randomBytes(rng, 16);
  GcmRig rig{GetParam(), key};
  const auto iv = randomBytes(rng, 12);
  const std::size_t pt_lens[] = {0, 1, 15, 16, 17, 33, 48, 64, 65, 113, 160};
  unsigned i = 0;
  for (const std::size_t n : pt_lens) {
    const auto pt = randomBytes(rng, n);
    const auto aad = randomBytes(rng, (i++ % 3) * 13);
    const auto sealed = rig.session.gcmSeal(pt, aad, iv);
    ASSERT_TRUE(sealed.has_value()) << "len=" << n;
    const auto host = aes::gcmEncrypt(pt, aad, rig.golden, iv);
    EXPECT_EQ(sealed->ciphertext, host.ciphertext) << "len=" << n;
    EXPECT_EQ(sealed->tag, host.tag) << "len=" << n;
    const auto opened =
        rig.session.gcmOpen(sealed->ciphertext, aad, sealed->tag, iv);
    ASSERT_TRUE(opened.has_value()) << "len=" << n;
    EXPECT_EQ(*opened, pt) << "len=" << n;
  }
  EXPECT_EQ(rig.acc.stats().gcm_ops, 2u * std::size(pt_lens));
  EXPECT_EQ(rig.acc.stats().gcm_ok, 2u * std::size(pt_lens));
}

TEST_P(GcmAccelFixture, AadOnlyMessage) {
  // Pure authentication: empty plaintext, AAD through the GHASH unit only.
  Rng rng{102};
  const auto key = randomBytes(rng, 16);
  GcmRig rig{GetParam(), key};
  const auto iv = randomBytes(rng, 12);
  const auto aad = randomBytes(rng, 37);
  const auto sealed = rig.session.gcmSeal({}, aad, iv);
  ASSERT_TRUE(sealed.has_value());
  EXPECT_TRUE(sealed->ciphertext.empty());
  EXPECT_EQ(sealed->tag, aes::gcmEncrypt({}, aad, rig.golden, iv).tag);
  const auto opened = rig.session.gcmOpen({}, aad, sealed->tag, iv);
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
  // And the same tag does not authenticate different AAD.
  auto bad = aad;
  bad[0] ^= 1;
  EXPECT_EQ(rig.session.gcmOpen({}, bad, sealed->tag, iv).status(),
            AccelStatus::AuthFailed);
}

TEST_P(GcmAccelFixture, TamperedInputsGetAuthFailedVerdict) {
  Rng rng{103};
  const auto key = randomBytes(rng, 16);
  GcmRig rig{GetParam(), key};
  const auto iv = randomBytes(rng, 12);
  const auto pt = randomBytes(rng, 50);
  const auto aad = randomBytes(rng, 11);
  const auto sealed = rig.session.gcmSeal(pt, aad, iv);
  ASSERT_TRUE(sealed.has_value());

  auto bad_ct = sealed->ciphertext;
  bad_ct[17] ^= 0x40;
  EXPECT_EQ(rig.session.gcmOpen(bad_ct, aad, sealed->tag, iv).status(),
            AccelStatus::AuthFailed);
  auto bad_tag = sealed->tag;
  bad_tag[15] ^= 0x01;
  EXPECT_EQ(
      rig.session.gcmOpen(sealed->ciphertext, aad, bad_tag, iv).status(),
      AccelStatus::AuthFailed);
  auto bad_aad = aad;
  bad_aad[0] ^= 0x80;
  EXPECT_EQ(
      rig.session.gcmOpen(sealed->ciphertext, bad_aad, sealed->tag, iv)
          .status(),
      AccelStatus::AuthFailed);

  // A tag mismatch is an operation verdict, not device health: it counts in
  // operations() but never in the transient-failure (error-budget) rate.
  const auto& t = rig.session.telemetry();
  EXPECT_EQ(t.auth_failed, 3u);
  EXPECT_EQ(t.transientFailures(), 0u);
  EXPECT_EQ(rig.acc.stats().gcm_auth_failed, 3u);
}

INSTANTIATE_TEST_SUITE_P(BothModes, GcmAccelFixture,
                         ::testing::Values(SecurityMode::Baseline,
                                           SecurityMode::Protected));

// --- Label enforcement -----------------------------------------------------------

TEST(GcmAccelIfc, SealSuppressedForUnauthorizedUser) {
  // Eve drives AEAD against the supervisor's top-labeled key: the whole op
  // completes internally, but the single declassification point at op
  // release refuses, so neither ciphertext nor tag ever leaves the device.
  AcceleratorConfig cfg;
  cfg.mode = SecurityMode::Protected;
  AesAccelerator acc{cfg};
  const unsigned sup = acc.addUser(Principal::supervisor());
  const unsigned eve = acc.addUser(Principal::user("eve", 2));
  Rng rng{104};
  ASSERT_TRUE(loadKey128(acc, sup, 0, 6, randomBytes(rng, 16), Conf::top()));

  AccelSession s{acc, eve, 0};
  const auto sealed =
      s.gcmSeal(randomBytes(rng, 32), {}, randomBytes(rng, 12));
  EXPECT_FALSE(sealed.has_value());
  EXPECT_EQ(sealed.status(), AccelStatus::Suppressed);
  EXPECT_GE(acc.stats().gcm_suppressed, 1u);
  EXPECT_EQ(acc.stats().gcm_ok, 0u);
}

TEST(GcmAccelIfc, GhashUnitRefusesReleaseBelowJoin) {
  // Direct unit check of the release rule: a digest whose stream label
  // joined a top-confidentiality H cannot be released to a principal whose
  // authority does not cover it — independent of the sequencer above.
  GhashUnit gh{true};
  Rng rng{105};
  aes::Tag128 h{};
  for (auto& b : h) b = static_cast<std::uint8_t>(rng.next());
  std::uint64_t now = 0;
  gh.loadH(1, h, Label{Conf::top(), Integ::top()}, now);
  while (!gh.keyReady(1, now)) ++now;

  const auto sid =
      gh.openStream(0, 1, 1, Label{Conf::category(2), Integ::top()});
  ASSERT_TRUE(sid.has_value());
  aes::Tag128 block{};
  for (auto& b : block) b = static_cast<std::uint8_t>(rng.next());
  ASSERT_TRUE(gh.absorb(*sid, block, Label{Conf::category(2), Integ::top()}));
  while (!gh.done(*sid)) {
    gh.tick(now);
    ++now;
  }

  const auto refused = gh.release(*sid, Principal::user("eve", 2));
  EXPECT_EQ(refused.status, GhashUnit::ReleaseStatus::Refused);
  EXPECT_EQ(refused.digest, aes::Tag128{});  // nothing leaks on refusal

  // The supervisor's authority covers the join; the released digest matches
  // the host GHASH of the same single block.
  const auto ok = gh.release(*sid, Principal::supervisor());
  ASSERT_EQ(ok.status, GhashUnit::ReleaseStatus::Ok);
  std::vector<std::uint8_t> data(block.begin(), block.end());
  EXPECT_EQ(ok.digest, aes::ghash(h, data));
}

// --- Timing ----------------------------------------------------------------------

TEST(GcmAccelTiming, OpenCompletionInvariantToTagValidity) {
  // The open path must not finish earlier (or later) when the tag check
  // fails: the verdict is computed after the identical full pipeline walk,
  // and the comparison itself is constant-time. Two identical rigs run the
  // same open — one with the valid tag, one tampered — and must land on the
  // same device cycle.
  Rng rng{106};
  const auto key = randomBytes(rng, 16);
  const auto iv = randomBytes(rng, 12);
  const auto pt = randomBytes(rng, 64);
  const auto aad = randomBytes(rng, 16);

  GcmRig a{SecurityMode::Protected, key};
  const auto sealed = a.session.gcmSeal(pt, aad, iv);
  ASSERT_TRUE(sealed.has_value());

  GcmRig valid{SecurityMode::Protected, key};
  GcmRig tampered{SecurityMode::Protected, key};
  ASSERT_EQ(valid.acc.cycle(), tampered.acc.cycle());

  const auto r1 =
      valid.session.gcmOpen(sealed->ciphertext, aad, sealed->tag, iv);
  auto bad_tag = sealed->tag;
  bad_tag[3] ^= 0x10;
  const auto r2 =
      tampered.session.gcmOpen(sealed->ciphertext, aad, bad_tag, iv);
  ASSERT_TRUE(r1.has_value());
  ASSERT_EQ(r2.status(), AccelStatus::AuthFailed);
  EXPECT_EQ(valid.acc.cycle(), tampered.acc.cycle());
  EXPECT_EQ(valid.session.cyclesUsed(), tampered.session.cyclesUsed());
}

// --- Fail-secure under GHASH faults ----------------------------------------------

TEST(GcmAccelFaults, GhashStateFaultsNeverReleaseWrongTag) {
  // Seeded campaign: flip one bit of live GHASH state (stage registers,
  // lane accumulators, stage tags, H tables) mid-operation. The op must
  // either fault-abort (nothing released) or — when the flip lands on state
  // the op never touches — still produce the exact host ciphertext+tag.
  // A wrong tag released as valid is the one unacceptable outcome.
  Rng rng{107};
  const auto key = randomBytes(rng, 16);
  const auto iv = randomBytes(rng, 12);
  const auto pt = randomBytes(rng, 80);
  const auto aad = randomBytes(rng, 20);
  const auto host = aes::gcmEncrypt(
      pt, aad, aes::expandKey(key, aes::KeySize::Aes128), iv);

  unsigned aborted = 0;
  for (unsigned seed = 0; seed < 24; ++seed) {
    Rng frng{1000 + seed};
    GcmRig rig{SecurityMode::Protected, key};
    const FaultSite sites[] = {FaultSite::GhashStage, FaultSite::GhashAcc,
                               FaultSite::GhashStageTag,
                               FaultSite::GhashKeyTable};
    const FaultSite site = sites[frng.below(4)];
    unsigned index = 0, bit = 0;
    switch (site) {
      case FaultSite::GhashStage:
        index = static_cast<unsigned>(frng.below(kGhashStages));
        bit = static_cast<unsigned>(frng.below(256));
        break;
      case FaultSite::GhashStageTag:
        index = static_cast<unsigned>(frng.below(kGhashStages));
        bit = static_cast<unsigned>(frng.below(32));
        break;
      case FaultSite::GhashAcc:
        index = static_cast<unsigned>(frng.below(kGhashStreams));
        bit = static_cast<unsigned>(frng.below(128 * kGhashLanes));
        break;
      default:
        index = 1;  // the rig's provisioned slot
        bit = static_cast<unsigned>(frng.below(kGhashLanes * 16 * 128));
        break;
    }
    // Land the flip mid-operation, while GHASH state is live.
    const std::uint64_t at =
        rig.acc.cycle() + 40 + static_cast<std::uint64_t>(frng.below(60));
    bool armed = true;
    rig.acc.setTickHook([&] {
      if (armed && rig.acc.cycle() >= at) {
        armed = false;
        rig.acc.injectFault(site, index, bit);
      }
    });
    const auto sealed = rig.session.gcmSeal(pt, aad, iv);
    if (sealed.has_value()) {
      EXPECT_EQ(sealed->ciphertext, host.ciphertext) << "seed=" << seed;
      EXPECT_EQ(sealed->tag, host.tag) << "seed=" << seed;
    } else {
      ++aborted;
      EXPECT_TRUE(sealed.status() == AccelStatus::FaultAborted ||
                  sealed.status() == AccelStatus::Rejected ||
                  sealed.status() == AccelStatus::Timeout)
          << "seed=" << seed << " status=" << toString(sealed.status());
    }
  }
  // The campaign must actually exercise the fail-secure path, not always
  // miss the live state.
  EXPECT_GT(aborted, 0u);
}

}  // namespace
}  // namespace aesifc::accel

// --- Service & pool AEAD routing -------------------------------------------------

namespace aesifc::soc {
namespace {

using accel::AcceleratorConfig;
using accel::AesAccelerator;
using lattice::Conf;
using lattice::Principal;

TEST(GcmService, SealAndOpenRouteThroughAdmissionAndBatching) {
  AesAccelerator acc{AcceleratorConfig{}};
  AccelService svc{acc, ServiceConfig{}};
  acc.addUser(Principal::supervisor());
  const unsigned user = acc.addUser(Principal::user("t0", 1));
  TenantSpec spec;
  spec.user = user;
  spec.key_slot = 1;
  spec.cell_base = 0;
  spec.key = std::vector<std::uint8_t>(16, 0x42);
  spec.key_conf = Conf::category(1);
  const unsigned t = svc.addTenant(spec);

  Rng rng{201};
  std::vector<std::uint8_t> pt(45), aad(9), iv(12);
  for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
  for (auto& b : aad) b = static_cast<std::uint8_t>(rng.next());
  for (auto& b : iv) b = static_cast<std::uint8_t>(rng.next());

  const auto sub = svc.submitSeal(t, pt, aad, iv);
  ASSERT_TRUE(sub.admitted);
  svc.runUntilIdle(1'000'000);
  const auto sealed = svc.fetchAead(t);
  ASSERT_TRUE(sealed.has_value());
  EXPECT_EQ(sealed->status, CompletionStatus::Ok);
  EXPECT_EQ(sealed->served_by, ServedBy::Hardware);
  const auto host = aes::gcmEncrypt(
      pt, aad, aes::expandKey(spec.key, aes::KeySize::Aes128), iv);
  EXPECT_EQ(sealed->data, host.ciphertext);
  EXPECT_EQ(sealed->tag, host.tag);

  // Open round-trips; a tampered tag is a terminal AuthFailed verdict that
  // is not charged to the device's error budget.
  ASSERT_TRUE(svc.submitOpen(t, sealed->data, aad, sealed->tag, iv).admitted);
  auto bad = sealed->tag;
  bad[0] ^= 1;
  ASSERT_TRUE(svc.submitOpen(t, sealed->data, aad, bad, iv).admitted);
  svc.runUntilIdle(1'000'000);
  const auto opened = svc.fetchAead(t);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->status, CompletionStatus::Ok);
  EXPECT_EQ(opened->data, pt);
  const auto failed = svc.fetchAead(t);
  ASSERT_TRUE(failed.has_value());
  EXPECT_EQ(failed->status, CompletionStatus::AuthFailed);
  EXPECT_TRUE(failed->data.empty());

  EXPECT_EQ(svc.stats().aead_admitted, 3u);
  EXPECT_EQ(svc.stats().aead_completed_hw, 2u);
  EXPECT_EQ(svc.stats().aead_auth_failed, 1u);
  EXPECT_EQ(svc.health(), HealthState::Healthy);
}

TEST(GcmPool, AeadRoundTripsAcrossShards) {
  PoolConfig cfg;
  cfg.shards = 2;
  EnginePool pool{cfg};
  Rng rng{202};
  std::vector<unsigned> ids;
  for (unsigned i = 0; i < 4; ++i) {
    PoolTenantSpec spec;
    spec.name = "tenant-" + std::to_string(i);
    spec.category = i + 1;
    spec.key = std::vector<std::uint8_t>(16);
    for (auto& b : spec.key) b = static_cast<std::uint8_t>(rng.next());
    const PlaceResult placed = pool.addTenant(spec);
    ASSERT_TRUE(placed.placed);
    ids.push_back(placed.tenant);
  }
  std::vector<std::vector<std::uint8_t>> pts, ivs;
  std::vector<aes::ExpandedKey> keys;
  for (unsigned i = 0; i < 4; ++i) {
    std::vector<std::uint8_t> pt(30 + 16 * i), iv(12);
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
    for (auto& b : iv) b = static_cast<std::uint8_t>(rng.next());
    ASSERT_TRUE(pool.submitSeal(ids[i], pt, {}, iv).admitted);
    pts.push_back(std::move(pt));
    ivs.push_back(std::move(iv));
  }
  pool.runUntilIdle(1'000'000);
  for (unsigned i = 0; i < 4; ++i) {
    const auto sealed = pool.fetchAead(ids[i]);
    ASSERT_TRUE(sealed.has_value()) << "tenant " << i;
    EXPECT_EQ(sealed->status, CompletionStatus::Ok);
    ASSERT_TRUE(
        pool.submitOpen(ids[i], sealed->data, {}, sealed->tag, ivs[i])
            .admitted);
  }
  pool.runUntilIdle(1'000'000);
  for (unsigned i = 0; i < 4; ++i) {
    const auto opened = pool.fetchAead(ids[i]);
    ASSERT_TRUE(opened.has_value()) << "tenant " << i;
    EXPECT_EQ(opened->status, CompletionStatus::Ok);
    EXPECT_EQ(opened->data, pts[i]) << "tenant " << i;
  }
}

}  // namespace
}  // namespace aesifc::soc
