#include "accel/accelerator.h"

#include <gtest/gtest.h>

#include "aes/cipher.h"
#include "common/rng.h"

namespace aesifc::accel {
namespace {

using lattice::Conf;
using lattice::Integ;
using lattice::Label;
using lattice::Principal;

struct AccelFixture : ::testing::TestWithParam<SecurityMode> {
  AcceleratorConfig cfg() const {
    AcceleratorConfig c;
    c.mode = GetParam();
    return c;
  }

  static std::vector<std::uint8_t> key16(std::uint8_t seed) {
    std::vector<std::uint8_t> k(16);
    for (unsigned i = 0; i < 16; ++i)
      k[i] = static_cast<std::uint8_t>(seed + 31 * i);
    return k;
  }

  static void load(AesAccelerator& acc, unsigned user, unsigned slot,
                   unsigned base, const std::vector<std::uint8_t>& key,
                   Conf conf) {
    acc.configureKeyCells(user, base, 2);
    for (unsigned c = 0; c < 2; ++c) {
      std::uint64_t w = 0;
      for (unsigned b = 0; b < 8; ++b)
        w |= static_cast<std::uint64_t>(key[8 * c + b]) << (8 * b);
      ASSERT_TRUE(acc.writeKeyCell(user, base + c, w));
    }
    ASSERT_TRUE(acc.loadKey(user, slot, base, aes::KeySize::Aes128, conf));
  }

  static BlockResponse crypt(AesAccelerator& acc, unsigned user, unsigned slot,
                             const aes::Block& data, bool decrypt = false) {
    static std::uint64_t id = 1;
    BlockRequest req{id++, user, slot, decrypt, data};
    EXPECT_TRUE(acc.submit(req));
    for (unsigned i = 0; i < 200; ++i) {
      acc.tick();
      if (auto out = acc.fetchOutput(user)) return *out;
    }
    ADD_FAILURE() << "no response";
    return {};
  }
};

TEST_P(AccelFixture, EncryptsCorrectly) {
  AesAccelerator acc{cfg()};
  const unsigned u = acc.addUser(Principal::user("alice", 1));
  const auto key = key16(0x11);
  load(acc, u, 1, 0, key, Conf::category(1));

  aes::Block pt{};
  for (unsigned i = 0; i < 16; ++i) pt[i] = static_cast<std::uint8_t>(i);
  const auto resp = crypt(acc, u, 1, pt);
  EXPECT_FALSE(resp.suppressed);
  EXPECT_EQ(resp.data, aes::encryptBlock(pt, key.data(), aes::KeySize::Aes128));
}

TEST_P(AccelFixture, DecryptsCorrectly) {
  AesAccelerator acc{cfg()};
  const unsigned u = acc.addUser(Principal::user("alice", 1));
  const auto key = key16(0x22);
  load(acc, u, 1, 0, key, Conf::category(1));

  aes::Block pt{};
  for (unsigned i = 0; i < 16; ++i) pt[i] = static_cast<std::uint8_t>(0xf0 - i);
  const auto ct = aes::encryptBlock(pt, key.data(), aes::KeySize::Aes128);
  const auto resp = crypt(acc, u, 1, ct, /*decrypt=*/true);
  EXPECT_FALSE(resp.suppressed);
  EXPECT_EQ(resp.data, pt);
}

TEST_P(AccelFixture, ThirtyCycleLatency) {
  AesAccelerator acc{cfg()};
  const unsigned u = acc.addUser(Principal::user("alice", 1));
  load(acc, u, 1, 0, key16(0x33), Conf::category(1));
  aes::Block pt{};
  const auto resp = crypt(acc, u, 1, pt);
  // Accepted the cycle after submit; 30 pipeline stages; +1 for delivery.
  EXPECT_EQ(resp.complete_cycle - resp.accept_cycle, 30u);
}

TEST_P(AccelFixture, SubmitRejectsInvalidKeySlot) {
  AesAccelerator acc{cfg()};
  const unsigned u = acc.addUser(Principal::user("alice", 1));
  BlockRequest req{1, u, 5, false, {}};
  EXPECT_FALSE(acc.submit(req));
  EXPECT_EQ(acc.eventCount(SecurityEventKind::KeySlotBlocked), 1u);
}

TEST_P(AccelFixture, SubmitRejectsOversizedKey) {
  AesAccelerator acc{cfg()};  // 10-round pipeline
  const unsigned u = acc.addUser(Principal::user("alice", 1));
  acc.configureKeyCells(u, 0, 4);
  std::vector<std::uint8_t> key(32, 0x44);
  for (unsigned c = 0; c < 4; ++c)
    ASSERT_TRUE(acc.writeKeyCell(u, c, 0x4444444444444444ULL));
  ASSERT_TRUE(acc.loadKey(u, 1, 0, aes::KeySize::Aes256, Conf::category(1)));
  BlockRequest req{1, u, 1, false, {}};
  EXPECT_FALSE(acc.submit(req));  // needs 14 rounds > 10
}

TEST_P(AccelFixture, ScratchpadOwnCellsWork) {
  AesAccelerator acc{cfg()};
  const unsigned u = acc.addUser(Principal::user("alice", 1));
  acc.configureKeyCells(u, 2, 2);
  EXPECT_TRUE(acc.writeKeyCell(u, 2, 0xdead));
  EXPECT_EQ(acc.scratchpad().rawCell(2), 0xdeadu);
}

TEST_P(AccelFixture, ConfigReadableByAll) {
  AesAccelerator acc{cfg()};
  const unsigned u = acc.addUser(Principal::user("eve", 2));
  (void)u;
  EXPECT_EQ(acc.readConfig("version"), 0x20190602u);
  EXPECT_THROW(acc.readConfig("bogus"), std::out_of_range);
}

INSTANTIATE_TEST_SUITE_P(BothModes, AccelFixture,
                         ::testing::Values(SecurityMode::Baseline,
                                           SecurityMode::Protected));

// --- Protected-only behavior ------------------------------------------------------

struct ProtectedFixture : ::testing::Test {
  AesAccelerator acc{AcceleratorConfig{SecurityMode::Protected, 10, 32, false}};
  unsigned sup = acc.addUser(Principal::supervisor());
  unsigned alice = acc.addUser(Principal::user("alice", 1));
  unsigned eve = acc.addUser(Principal::user("eve", 2));
};

TEST_F(ProtectedFixture, ScratchpadCrossUserWriteBlocked) {
  acc.configureKeyCells(alice, 2, 2);
  acc.configureKeyCells(eve, 0, 2);
  EXPECT_TRUE(acc.writeKeyCell(eve, 0, 1));
  EXPECT_FALSE(acc.writeKeyCell(eve, 2, 2));  // Alice's cell
  EXPECT_EQ(acc.eventCount(SecurityEventKind::ScratchpadWriteBlocked), 1u);
}

TEST_F(ProtectedFixture, ScratchpadCrossUserReadBlocked) {
  acc.configureKeyCells(alice, 2, 2);
  ASSERT_TRUE(acc.writeKeyCell(alice, 2, 0x1234));
  ASSERT_TRUE(acc.writeKeyCell(alice, 3, 0x5678));
  // Eve attempts to expand a "key" starting at Alice's cells.
  EXPECT_FALSE(acc.loadKey(eve, 3, 2, aes::KeySize::Aes128, Conf::category(2)));
  EXPECT_GE(acc.eventCount(SecurityEventKind::ScratchpadReadBlocked), 1u);
}

TEST_F(ProtectedFixture, SupervisorCanReadUserCells) {
  acc.configureKeyCells(alice, 2, 2);
  ASSERT_TRUE(acc.writeKeyCell(alice, 2, 0x9999));
  const auto v = acc.scratchpad().readCell(2, acc.principal(sup).authority);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 0x9999u);
}

TEST_F(ProtectedFixture, ConfigWriteRequiresSupervisor) {
  EXPECT_FALSE(acc.writeConfig(eve, "debug_enable", 1));
  EXPECT_EQ(acc.readConfig("debug_enable"), 0u);
  EXPECT_TRUE(acc.writeConfig(sup, "debug_enable", 1));
  EXPECT_EQ(acc.readConfig("debug_enable"), 1u);
  EXPECT_EQ(acc.eventCount(SecurityEventKind::ConfigWriteBlocked), 1u);
}

TEST_F(ProtectedFixture, DebugDisabledBlocksEveryone) {
  EXPECT_FALSE(acc.debugReadStage(sup, 0).has_value());
  EXPECT_GE(acc.eventCount(SecurityEventKind::DebugReadBlocked), 1u);
}

TEST_F(ProtectedFixture, OutputTagMatchesUserAndKey) {
  AccelFixture::load(acc, alice, 1, 2, AccelFixture::key16(1),
                     Conf::category(1));
  BlockRequest req{9, alice, 1, false, {}};
  ASSERT_TRUE(acc.submit(req));
  acc.tick();
  // The accepted block's stage tag joins user and key confidentiality.
  const auto& slot = acc.pipeline().stage(0);
  ASSERT_TRUE(slot.valid);
  EXPECT_EQ(slot.tag.c, Conf::category(1));
  EXPECT_EQ(slot.tag.i, Integ::category(1));
}

TEST_F(ProtectedFixture, StallGrantedWhenAlone) {
  AccelFixture::load(acc, alice, 1, 2, AccelFixture::key16(1),
                     Conf::category(1));
  acc.setReceiverReady(alice, false);
  BlockRequest req{1, alice, 1, false, {}};
  ASSERT_TRUE(acc.submit(req));
  acc.run(60);
  // Only Alice's data in flight: her stall request is honored and the block
  // waits at the end of the pipeline.
  EXPECT_GT(acc.stats().stalled_cycles, 0u);
  EXPECT_EQ(acc.stats().denied_stalls, 0u);
  EXPECT_EQ(acc.pendingOutputs(alice), 0u);
  acc.setReceiverReady(alice, true);
  acc.run(5);
  EXPECT_EQ(acc.pendingOutputs(alice), 1u);
}

TEST_F(ProtectedFixture, StallDeniedWhenLowerConfInFlight) {
  AccelFixture::load(acc, alice, 1, 2, AccelFixture::key16(1),
                     Conf::category(1));
  AccelFixture::load(acc, eve, 2, 0, AccelFixture::key16(2),
                     Conf::category(2));
  acc.setReceiverReady(alice, false);
  // Keep both users' data in flight.
  std::uint64_t id = 1;
  for (unsigned i = 0; i < 80; ++i) {
    if (acc.pendingInputs(alice) < 2)
      acc.submit(BlockRequest{id++, alice, 1, false, {}});
    if (acc.pendingInputs(eve) < 2)
      acc.submit(BlockRequest{id++, eve, 2, false, {}});
    acc.tick();
    while (acc.fetchOutput(eve)) {
    }
  }
  EXPECT_GT(acc.stats().denied_stalls, 0u);
  EXPECT_GT(acc.stats().buffered, 0u);
  EXPECT_GE(acc.eventCount(SecurityEventKind::StallDenied), 1u);
}

TEST_F(ProtectedFixture, OverflowBufferDeliversWhenReady) {
  AccelFixture::load(acc, alice, 1, 2, AccelFixture::key16(1),
                     Conf::category(1));
  AccelFixture::load(acc, eve, 2, 0, AccelFixture::key16(2),
                     Conf::category(2));
  acc.setReceiverReady(alice, false);
  std::uint64_t id = 1;
  for (unsigned i = 0; i < 60; ++i) {
    if (acc.pendingInputs(alice) < 2)
      acc.submit(BlockRequest{id++, alice, 1, false, {}});
    if (acc.pendingInputs(eve) < 2)
      acc.submit(BlockRequest{id++, eve, 2, false, {}});
    acc.tick();
  }
  ASSERT_GT(acc.stats().buffered, 0u);
  acc.setReceiverReady(alice, true);
  acc.run(static_cast<unsigned>(acc.stats().buffered) + 40);
  EXPECT_GT(acc.pendingOutputs(alice), 0u);
}

TEST_F(ProtectedFixture, BufferOverflowDropsAndCounts) {
  AesAccelerator small{AcceleratorConfig{SecurityMode::Protected, 10, 2, false}};
  const unsigned s_sup = small.addUser(Principal::supervisor());
  (void)s_sup;
  const unsigned a = small.addUser(Principal::user("alice", 1));
  const unsigned e = small.addUser(Principal::user("eve", 2));
  AccelFixture::load(small, a, 1, 2, AccelFixture::key16(1), Conf::category(1));
  AccelFixture::load(small, e, 2, 0, AccelFixture::key16(2), Conf::category(2));
  small.setReceiverReady(a, false);
  std::uint64_t id = 1;
  for (unsigned i = 0; i < 200; ++i) {
    if (small.pendingInputs(a) < 2)
      small.submit(BlockRequest{id++, a, 1, false, {}});
    if (small.pendingInputs(e) < 2)
      small.submit(BlockRequest{id++, e, 2, false, {}});
    small.tick();
    while (small.fetchOutput(e)) {
    }
  }
  EXPECT_GT(small.stats().dropped, 0u);
  EXPECT_GE(small.eventCount(SecurityEventKind::OutputBufferOverflow), 1u);
}

// --- Baseline-only behavior: the vulnerabilities exist --------------------------

TEST(BaselineAccel, StallFreezesWholePipeline) {
  AesAccelerator acc{AcceleratorConfig{SecurityMode::Baseline, 10, 32, false}};
  const unsigned alice = acc.addUser(Principal::user("alice", 1));
  const unsigned eve = acc.addUser(Principal::user("eve", 2));
  AccelFixture::load(acc, alice, 1, 2, AccelFixture::key16(1),
                     Conf::category(1));
  AccelFixture::load(acc, eve, 2, 0, AccelFixture::key16(2),
                     Conf::category(2));
  acc.setReceiverReady(alice, false);
  std::uint64_t id = 1;
  unsigned eve_outputs = 0;
  for (unsigned i = 0; i < 120; ++i) {
    if (acc.pendingInputs(alice) < 2)
      acc.submit(BlockRequest{id++, alice, 1, false, {}});
    if (acc.pendingInputs(eve) < 2)
      acc.submit(BlockRequest{id++, eve, 2, false, {}});
    acc.tick();
    while (acc.fetchOutput(eve)) ++eve_outputs;
  }
  // Alice's stall starves Eve: the covert channel of Section 3.2.5.
  EXPECT_GT(acc.stats().stalled_cycles, 50u);
  EXPECT_LT(eve_outputs, 40u);
}

}  // namespace
}  // namespace aesifc::accel
