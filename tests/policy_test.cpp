#include "soc/policy_engine.h"

#include <gtest/gtest.h>

#include "ifc/policy.h"

namespace aesifc::soc {
namespace {

TEST(Table1, HasSixPolicies) {
  const auto& ps = ifc::table1Policies();
  ASSERT_EQ(ps.size(), 6u);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_EQ(ps[i].id, static_cast<int>(i) + 1);
    EXPECT_FALSE(ps[i].requirement.empty());
    EXPECT_FALSE(ps[i].restriction.empty());
  }
}

TEST(Table1, AssetsMatchPaper) {
  const auto& ps = ifc::table1Policies();
  EXPECT_EQ(ps[0].asset, "Keys");
  EXPECT_EQ(ps[1].asset, "Keys");
  EXPECT_EQ(ps[2].asset, "Keys");
  EXPECT_EQ(ps[3].asset, "Plaintext");
  EXPECT_EQ(ps[4].asset, "Plaintext");
  EXPECT_EQ(ps[5].asset, "Configs");
}

TEST(Table1, DimensionsMatchPaper) {
  using ifc::PolicyDimension;
  const auto& ps = ifc::table1Policies();
  EXPECT_EQ(ps[0].dim, PolicyDimension::Confidentiality);
  EXPECT_EQ(ps[1].dim, PolicyDimension::Integrity);
  EXPECT_EQ(ps[2].dim, PolicyDimension::Confidentiality);
  EXPECT_EQ(ps[3].dim, PolicyDimension::Confidentiality);
  EXPECT_EQ(ps[4].dim, PolicyDimension::Integrity);
  EXPECT_EQ(ps[5].dim, PolicyDimension::Integrity);
}

TEST(Table1, RendersAllRows) {
  const auto text = ifc::renderTable1();
  for (const auto& p : ifc::table1Policies()) {
    EXPECT_NE(text.find(p.requirement), std::string::npos);
  }
}

TEST(PolicyEngine, ProtectedHoldsAllSixRequirements) {
  const auto verdicts = evaluatePolicies(accel::SecurityMode::Protected);
  ASSERT_EQ(verdicts.size(), 6u);
  for (const auto& v : verdicts) {
    EXPECT_TRUE(v.holds) << "policy " << v.policy_id << ": " << v.evidence;
  }
}

TEST(PolicyEngine, BaselineViolatesEveryRequirement) {
  const auto verdicts = evaluatePolicies(accel::SecurityMode::Baseline);
  ASSERT_EQ(verdicts.size(), 6u);
  for (const auto& v : verdicts) {
    EXPECT_FALSE(v.holds) << "policy " << v.policy_id << ": " << v.evidence;
  }
}

TEST(PolicyEngine, MatrixRendersBothColumns) {
  const auto text = renderPolicyMatrix();
  EXPECT_NE(text.find("VIOLATED"), std::string::npos);
  EXPECT_NE(text.find("holds"), std::string::npos);
}

}  // namespace
}  // namespace aesifc::soc
