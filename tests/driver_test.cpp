#include "accel/driver.h"

#include <gtest/gtest.h>

#include "aes/cipher.h"
#include "common/rng.h"

namespace aesifc::accel {
namespace {

using lattice::Conf;
using lattice::Principal;

struct DriverFixture : ::testing::TestWithParam<SecurityMode> {
  AcceleratorConfig cfg() const {
    AcceleratorConfig c;
    c.mode = GetParam();
    return c;
  }

  static std::vector<std::uint8_t> randomKey(Rng& rng) {
    std::vector<std::uint8_t> k(16);
    for (auto& b : k) b = static_cast<std::uint8_t>(rng.next());
    return k;
  }
};

TEST_P(DriverFixture, LoadKeyHelperWorks) {
  AesAccelerator acc{cfg()};
  const unsigned u = acc.addUser(Principal::user("alice", 1));
  Rng rng{1};
  EXPECT_TRUE(loadKey128(acc, u, 1, 0, randomKey(rng), Conf::category(1)));
  EXPECT_TRUE(acc.roundKeys().valid(1));
  // Wrong key length rejected.
  EXPECT_FALSE(loadKey128(acc, u, 2, 0, std::vector<std::uint8_t>(8),
                          Conf::category(1)));
}

TEST_P(DriverFixture, SingleBlockRoundTrip) {
  AesAccelerator acc{cfg()};
  const unsigned u = acc.addUser(Principal::user("alice", 1));
  Rng rng{2};
  const auto key = randomKey(rng);
  ASSERT_TRUE(loadKey128(acc, u, 1, 0, key, Conf::category(1)));

  AccelSession s{acc, u, 1};
  aes::Block pt{};
  for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
  const auto ct = s.encryptBlock(pt);
  ASSERT_TRUE(ct.has_value());
  EXPECT_EQ(*ct, aes::encryptBlock(pt, key.data(), aes::KeySize::Aes128));
  const auto back = s.decryptBlock(*ct);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, pt);
}

TEST_P(DriverFixture, EcbMatchesSoftware) {
  AesAccelerator acc{cfg()};
  const unsigned u = acc.addUser(Principal::user("alice", 1));
  Rng rng{3};
  const auto key = randomKey(rng);
  ASSERT_TRUE(loadKey128(acc, u, 1, 0, key, Conf::category(1)));
  const auto ek = aes::expandKey(key, aes::KeySize::Aes128);

  AccelSession s{acc, u, 1};
  aes::Bytes msg(16 * 20);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
  const auto ct = s.ecbEncrypt(msg);
  ASSERT_TRUE(ct.has_value());
  EXPECT_EQ(*ct, aes::ecbEncrypt(msg, ek));
  const auto back = s.ecbDecrypt(*ct);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, msg);
}

TEST_P(DriverFixture, CtrMatchesSoftwareIncludingPartialBlock) {
  AesAccelerator acc{cfg()};
  const unsigned u = acc.addUser(Principal::user("alice", 1));
  Rng rng{4};
  const auto key = randomKey(rng);
  ASSERT_TRUE(loadKey128(acc, u, 1, 0, key, Conf::category(1)));
  const auto ek = aes::expandKey(key, aes::KeySize::Aes128);

  AccelSession s{acc, u, 1};
  aes::Iv nonce{};
  for (auto& b : nonce) b = static_cast<std::uint8_t>(rng.next());
  nonce[8] = nonce[9] = nonce[10] = nonce[11] = 0;  // low counter headroom
  nonce[12] = nonce[13] = nonce[14] = nonce[15] = 0;

  aes::Bytes msg(100);  // not a block multiple
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
  const auto ct = s.ctrCrypt(msg, nonce);
  ASSERT_TRUE(ct.has_value());
  EXPECT_EQ(*ct, aes::ctrCrypt(msg, ek, nonce));
  // CTR is an involution.
  const auto back = s.ctrCrypt(*ct, nonce);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, msg);
}

TEST_P(DriverFixture, CbcMatchesSoftware) {
  AesAccelerator acc{cfg()};
  const unsigned u = acc.addUser(Principal::user("alice", 1));
  Rng rng{5};
  const auto key = randomKey(rng);
  ASSERT_TRUE(loadKey128(acc, u, 1, 0, key, Conf::category(1)));
  const auto ek = aes::expandKey(key, aes::KeySize::Aes128);

  AccelSession s{acc, u, 1};
  aes::Iv iv{};
  for (auto& b : iv) b = static_cast<std::uint8_t>(rng.next());
  aes::Bytes msg(16 * 6);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());

  const auto ct = s.cbcEncrypt(msg, iv);
  ASSERT_TRUE(ct.has_value());
  EXPECT_EQ(*ct, aes::cbcEncrypt(msg, ek, iv));
  const auto back = s.cbcDecrypt(*ct, iv);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, msg);
}

TEST_P(DriverFixture, PipelinedModesBeatChainedCbc) {
  AesAccelerator acc{cfg()};
  const unsigned u = acc.addUser(Principal::user("alice", 1));
  Rng rng{6};
  const auto key = randomKey(rng);
  ASSERT_TRUE(loadKey128(acc, u, 1, 0, key, Conf::category(1)));

  aes::Bytes msg(16 * 32);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
  aes::Iv iv{};

  AccelSession ecb{acc, u, 1};
  ASSERT_TRUE(ecb.ecbEncrypt(msg).has_value());
  const auto ecb_cycles = ecb.cyclesUsed();

  AccelSession cbc{acc, u, 1};
  ASSERT_TRUE(cbc.cbcEncrypt(msg, iv).has_value());
  const auto cbc_cycles = cbc.cyclesUsed();

  // 32 pipelined blocks ~ 32+30 cycles; 32 chained blocks ~ 32*31 cycles.
  EXPECT_GT(cbc_cycles, ecb_cycles * 5);
}

TEST_P(DriverFixture, RejectsUnalignedEcb) {
  AesAccelerator acc{cfg()};
  const unsigned u = acc.addUser(Principal::user("alice", 1));
  Rng rng{7};
  ASSERT_TRUE(loadKey128(acc, u, 1, 0, randomKey(rng), Conf::category(1)));
  AccelSession s{acc, u, 1};
  EXPECT_FALSE(s.ecbEncrypt(aes::Bytes(15)).has_value());
  EXPECT_FALSE(s.cbcEncrypt(aes::Bytes(17), aes::Iv{}).has_value());
}

INSTANTIATE_TEST_SUITE_P(BothModes, DriverFixture,
                         ::testing::Values(SecurityMode::Baseline,
                                           SecurityMode::Protected));

TEST(Driver, SuppressedOutputsReportedAsFailure) {
  // Eve drives a session against the master key slot in protected mode: the
  // device suppresses the outputs and the driver surfaces nullopt.
  AcceleratorConfig cfg;
  cfg.mode = SecurityMode::Protected;
  AesAccelerator acc{cfg};
  const unsigned sup = acc.addUser(Principal::supervisor());
  const unsigned eve = acc.addUser(Principal::user("eve", 2));
  Rng rng{8};
  std::vector<std::uint8_t> master(16);
  for (auto& b : master) b = static_cast<std::uint8_t>(rng.next());
  ASSERT_TRUE(loadKey128(acc, sup, 0, 6, master, Conf::top()));

  AccelSession s{acc, eve, 0};
  EXPECT_FALSE(s.encryptBlock(aes::Block{}).has_value());
}

}  // namespace
}  // namespace aesifc::accel
