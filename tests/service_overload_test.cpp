// Acceptance test for the multi-tenant service layer: four tenants drive an
// overloaded service while a seeded fault campaign runs at 1e-3/cycle, then
// a fault storm wedges the device. Required outcomes:
//   * no tenant starves — every tenant completes at least its fair share;
//   * the breaker trips (quarantine) during the storm and traffic keeps
//     completing on the software fallback;
//   * the hardware is re-admitted via probation canaries within the test
//     budget and serves traffic again;
//   * zero golden-model mismatches across every path (hardware, fallback);
//   * every admitted ticket resolves exactly once (no losses, no dupes).

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "aes/cipher.h"
#include "soc/fault_injector.h"
#include "soc/service.h"

namespace aesifc::soc {
namespace {

using accel::AcceleratorConfig;
using accel::AesAccelerator;
using lattice::Conf;
using lattice::Principal;

constexpr unsigned kTenants = 4;
constexpr unsigned kBlocksPerTenant = 48;

struct Expect {
  unsigned tenant;
  aes::Block pt;
};

TEST(ServiceOverload, FourTenantsWithFaultsNoStarvationQuarantineRecovers) {
  AcceleratorConfig acfg;
  acfg.out_buffer_depth = 16;
  acfg.event_log_cap = 512;
  AesAccelerator acc{acfg};
  acc.addUser(Principal::supervisor());

  ServiceConfig cfg;
  cfg.overflow = OverflowPolicy::ShedOldest;
  cfg.global_high_watermark = 48;
  cfg.quota_per_round = 2;
  cfg.max_requeues = 2;
  cfg.health.window_cycles = 512;
  cfg.health.degrade_threshold = 0.10;
  cfg.health.quarantine_threshold = 0.40;
  cfg.health.wedged_windows = 2;
  cfg.health.recovery_windows = 1;
  cfg.health.quarantine_residency_cycles = 1024;
  cfg.healthy_opts = {.timeout_cycles = 400, .max_retries = 2,
                      .backoff_cycles = 8};
  cfg.degraded_opts = {.timeout_cycles = 150, .max_retries = 1,
                       .backoff_cycles = 8};
  cfg.canary_opts = {.timeout_cycles = 400, .max_retries = 1,
                     .backoff_cycles = 8};
  AccelService svc{acc, cfg};

  std::vector<unsigned> users;
  std::vector<aes::ExpandedKey> golden;
  for (unsigned t = 0; t < kTenants; ++t) {
    const unsigned u =
        acc.addUser(Principal::user("t" + std::to_string(t), t + 1));
    users.push_back(u);
    TenantSpec spec;
    spec.user = u;
    spec.key_slot = t + 1;
    spec.cell_base = 2 * t;
    spec.key.resize(16);
    for (unsigned i = 0; i < 16; ++i)
      spec.key[i] = static_cast<std::uint8_t>(0x40 + 29 * t + i);
    spec.key_conf = Conf::category(t + 1);
    spec.queue_depth = 6;
    svc.addTenant(spec);
    golden.push_back(aes::expandKey(spec.key, aes::KeySize::Aes128));
  }

  // Background fault environment: 1e-3/cycle across all sites.
  FaultCampaignConfig fcfg;
  fcfg.seed = 1234;
  fcfg.fault_rate = 1e-3;
  FaultInjector background{acc, fcfg, users};
  acc.setTickHook([&] { background.tick(); });

  Rng traffic_rng{99};
  std::map<std::uint64_t, Expect> expect;  // admitted tickets awaiting a verdict
  std::set<std::uint64_t> resolved;
  std::vector<unsigned> offered(kTenants, 0);
  std::vector<std::uint64_t> ok_count(kTenants, 0);
  std::uint64_t mismatches = 0;

  auto offerTraffic = [&](unsigned limit) {
    for (unsigned t = 0; t < kTenants; ++t) {
      if (offered[t] >= limit) continue;
      if (svc.queued(t) >= 5) continue;  // don't pointlessly self-shed
      aes::Block pt;
      const auto bits = traffic_rng.bits(128).toBytes();
      for (unsigned i = 0; i < 16; ++i) pt[i] = bits[i];
      const auto res = svc.submit(t, pt);
      if (res.admitted) {
        expect[res.ticket] = {t, pt};
        ++offered[t];
      }
    }
  };

  auto drain = [&] {
    for (unsigned t = 0; t < kTenants; ++t) {
      while (auto c = svc.fetch(t)) {
        // Exactly-once: a ticket must never resolve twice.
        ASSERT_TRUE(resolved.insert(c->ticket).second)
            << "ticket " << c->ticket << " resolved twice";
        if (c->status == CompletionStatus::Shed) {
          expect.erase(c->ticket);
          continue;
        }
        auto it = expect.find(c->ticket);
        ASSERT_NE(it, expect.end());
        ASSERT_EQ(it->second.tenant, t);
        if (c->status == CompletionStatus::Ok) {
          const aes::Block want =
              aes::encryptBlock(it->second.pt, golden[t]);
          if (c->data != want) ++mismatches;
          ++ok_count[t];
        }
        expect.erase(it);
      }
    }
  };

  // --- Phase 1: steady overload under background faults -------------------
  unsigned guard = 0;
  auto allOffered = [&] {
    for (unsigned t = 0; t < kTenants; ++t)
      if (offered[t] < kBlocksPerTenant) return false;
    return true;
  };
  while ((!allOffered() || svc.totalQueued() > 0) && guard++ < 4000) {
    offerTraffic(kBlocksPerTenant);
    svc.pump();
    drain();
  }
  ASSERT_TRUE(allOffered()) << "phase 1 never finished offering";

  // --- Phase 2: fault storm — the device goes effectively unusable --------
  // Stuck-receiver holds must outlast the driver's whole retry budget
  // (timeout 400 x 3 attempts + backoff), or every op still ends Ok and no
  // window ever looks unhealthy.
  FaultCampaignConfig storm_cfg;
  storm_cfg.seed = 777;
  storm_cfg.fault_rate = 0.10;
  storm_cfg.host_faults = true;
  storm_cfg.stuck_cycles = 1500;
  FaultInjector storm{acc, storm_cfg, users};
  acc.setTickHook([&] { storm.tick(); });

  // The storm phase offers unbounded traffic: the error budget needs a
  // steady stream of terminal verdicts to measure the device against.
  for (unsigned t = 0; t < kTenants; ++t) offered[t] = 0;
  guard = 0;
  while (svc.health() != HealthState::Quarantined && guard++ < 3000) {
    offerTraffic(~0u);
    svc.pump();
    drain();
  }
  ASSERT_EQ(svc.health(), HealthState::Quarantined)
      << "storm never tripped the breaker";

  // --- Phase 3: storm ends; service must recover via probation ------------
  acc.setTickHook(nullptr);
  storm.releaseStuckReceivers();
  background.releaseStuckReceivers();

  for (unsigned t = 0; t < kTenants; ++t) offered[t] = 0;
  guard = 0;
  while (svc.health() != HealthState::Healthy && guard++ < 4000) {
    offerTraffic(kBlocksPerTenant);
    svc.pump();
    drain();
  }
  ASSERT_EQ(svc.health(), HealthState::Healthy)
      << "hardware was never re-admitted";
  EXPECT_GE(svc.monitor().entries(HealthState::Probation), 1u);
  EXPECT_GE(svc.stats().canary_rounds, 1u);

  // Finish the remaining traffic on the recovered hardware.
  guard = 0;
  while ((!allOffered() || svc.totalQueued() > 0) && guard++ < 4000) {
    offerTraffic(kBlocksPerTenant);
    svc.pump();
    drain();
  }
  svc.runUntilIdle(1u << 16);
  drain();

  // --- Verdicts ------------------------------------------------------------
  EXPECT_EQ(mismatches, 0u) << "golden-model mismatch on a served block";

  // Fallback actually carried traffic while quarantined.
  EXPECT_GE(svc.stats().completed_fallback, 1u);
  // Hardware served again after recovery.
  EXPECT_GE(svc.stats().completed_hw, 1u);

  // No tenant starved: every tenant completed at least half of the smallest
  // per-tenant offered volume (quota fairness under round-robin serving).
  std::uint64_t min_ok = ok_count[0], max_ok = ok_count[0];
  for (unsigned t = 0; t < kTenants; ++t) {
    min_ok = std::min(min_ok, ok_count[t]);
    max_ok = std::max(max_ok, ok_count[t]);
    EXPECT_GE(ok_count[t], kBlocksPerTenant / 2)
        << "tenant " << t << " starved (" << ok_count[t] << " ok)";
  }
  // Fair-share spread: the best-served tenant got at most ~2x the worst.
  EXPECT_GE(2 * min_ok + 8, max_ok);

  // Every admitted ticket resolved (nothing lost, nothing stuck).
  EXPECT_TRUE(expect.empty()) << expect.size() << " tickets never resolved";

  // The incident is on the shared event ring.
  EXPECT_EQ(acc.eventCount(accel::SecurityEventKind::ServiceHealth),
            svc.monitor().transitions().size());
}

}  // namespace
}  // namespace aesifc::soc
