#include "aes/modes.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace aesifc::aes {
namespace {

std::vector<std::uint8_t> hexBytes(const std::string& hex) {
  std::vector<std::uint8_t> v(hex.size() / 2);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<std::uint8_t>(
        std::stoul(hex.substr(2 * i, 2), nullptr, 16));
  }
  return v;
}

ExpandedKey nistKey() {
  return expandKey(hexBytes("2b7e151628aed2a6abf7158809cf4f3c"),
                   KeySize::Aes128);
}

// The four-block NIST SP 800-38A test message.
Bytes nistPlain() {
  return hexBytes(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
}

TEST(Ecb, NistSp80038aVectors) {
  const Bytes want = hexBytes(
      "3ad77bb40d7a3660a89ecaf32466ef97"
      "f5d3d58503b9699de785895a96fdbaaf"
      "43b1cd7f598ece23881b00e3ed030688"
      "7b0c785e27e8ad3f8223207104725dd4");
  EXPECT_EQ(ecbEncrypt(nistPlain(), nistKey()), want);
  EXPECT_EQ(ecbDecrypt(want, nistKey()), nistPlain());
}

TEST(Cbc, NistSp80038aVectors) {
  Iv iv{};
  const auto ivb = hexBytes("000102030405060708090a0b0c0d0e0f");
  std::copy(ivb.begin(), ivb.end(), iv.begin());
  const Bytes want = hexBytes(
      "7649abac8119b246cee98e9b12e9197d"
      "5086cb9b507219ee95db113a917678b2"
      "73bed6b8e3c1743b7116e69e22229516"
      "3ff1caa1681fac09120eca307586e1a7");
  EXPECT_EQ(cbcEncrypt(nistPlain(), nistKey(), iv), want);
  EXPECT_EQ(cbcDecrypt(want, nistKey(), iv), nistPlain());
}

TEST(Ctr, NistSp80038aVectors) {
  Iv nonce{};
  const auto nb = hexBytes("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  std::copy(nb.begin(), nb.end(), nonce.begin());
  const Bytes want = hexBytes(
      "874d6191b620e3261bef6864990db6ce"
      "9806f66b7970fdff8617187bb9fffdff"
      "5ae4df3edbd5d35e5b4f09020db03eab"
      "1e031dda2fbe03d1792170a0f3009cee");
  EXPECT_EQ(ctrCrypt(nistPlain(), nistKey(), nonce), want);
  // CTR is its own inverse.
  EXPECT_EQ(ctrCrypt(want, nistKey(), nonce), nistPlain());
}

TEST(Ctr, HandlesPartialFinalBlock) {
  Rng rng{4};
  Iv nonce{};
  Bytes msg(37);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
  const Bytes ct = ctrCrypt(msg, nistKey(), nonce);
  EXPECT_EQ(ct.size(), msg.size());
  EXPECT_EQ(ctrCrypt(ct, nistKey(), nonce), msg);
}

TEST(Cbc, RoundTripRandom) {
  Rng rng{5};
  Iv iv{};
  for (auto& b : iv) b = static_cast<std::uint8_t>(rng.next());
  for (unsigned blocks = 1; blocks <= 8; ++blocks) {
    Bytes msg(16 * blocks);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(cbcDecrypt(cbcEncrypt(msg, nistKey(), iv), nistKey(), iv), msg);
  }
}

TEST(Cbc, TamperedBlockCorruptsTwoBlocks) {
  Rng rng{6};
  Iv iv{};
  Bytes msg(64);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
  Bytes ct = cbcEncrypt(msg, nistKey(), iv);
  ct[16] ^= 0x01;  // flip a bit in block 1
  const Bytes out = cbcDecrypt(ct, nistKey(), iv);
  // Block 0 unaffected, blocks 1 and 2 differ, block 3 unaffected.
  EXPECT_TRUE(std::equal(out.begin(), out.begin() + 16, msg.begin()));
  EXPECT_FALSE(std::equal(out.begin() + 16, out.begin() + 32, msg.begin() + 16));
  EXPECT_FALSE(std::equal(out.begin() + 32, out.begin() + 48, msg.begin() + 32));
  EXPECT_TRUE(std::equal(out.begin() + 48, out.end(), msg.begin() + 48));
}

// --- Shared big-endian counter increment ------------------------------------------

TEST(Counter, Inc64WrapsOnlyTheLowEightBytes) {
  Block ctr{};
  for (unsigned i = 0; i < 8; ++i) ctr[i] = static_cast<std::uint8_t>(i + 1);
  for (unsigned i = 8; i < 16; ++i) ctr[i] = 0xff;  // low 64 bits all-ones
  incCounterBe(ctr, 64);
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_EQ(ctr[i], i + 1) << "nonce byte " << i << " must not carry";
  }
  for (unsigned i = 8; i < 16; ++i) EXPECT_EQ(ctr[i], 0x00);
}

TEST(Counter, Inc32WrapsOnlyTheLowFourBytes) {
  Block ctr{};
  for (unsigned i = 0; i < 12; ++i) ctr[i] = static_cast<std::uint8_t>(0xa0 + i);
  for (unsigned i = 12; i < 16; ++i) ctr[i] = 0xff;  // GCM inc32 field
  incCounterBe(ctr, 32);
  for (unsigned i = 0; i < 12; ++i) {
    EXPECT_EQ(ctr[i], 0xa0 + i) << "IV byte " << i << " must not carry";
  }
  for (unsigned i = 12; i < 16; ++i) EXPECT_EQ(ctr[i], 0x00);
}

TEST(Counter, ByteRippleCarry) {
  Block ctr{};
  ctr[15] = 0xff;
  ctr[14] = 0x01;
  incCounterBe(ctr, 64);
  EXPECT_EQ(ctr[15], 0x00);
  EXPECT_EQ(ctr[14], 0x02);
  incCounterBe(ctr, 64);
  EXPECT_EQ(ctr[15], 0x01);
  EXPECT_EQ(ctr[14], 0x02);
}

TEST(Ctr, KeystreamContinuousAcross64BitWrap) {
  // Start one block before the 64-bit wrap: block 0 uses nonce||ff..ff and
  // block 1 must use nonce||00..00 — the nonce half untouched. Verify the
  // whole keystream against per-block ECB of the explicitly-built counters.
  Iv nonce{};
  for (unsigned i = 0; i < 8; ++i) nonce[i] = static_cast<std::uint8_t>(i + 1);
  for (unsigned i = 8; i < 16; ++i) nonce[i] = 0xff;
  const Bytes msg(48, 0x00);  // three blocks of zeros => out == keystream
  const Bytes out = ctrCrypt(msg, nistKey(), nonce);

  Block c0 = nonce;
  Block c1 = nonce, c2 = nonce;
  for (unsigned i = 8; i < 16; ++i) c1[i] = 0x00;
  for (unsigned i = 8; i < 15; ++i) c2[i] = 0x00;
  c2[15] = 0x01;
  Bytes counters;
  for (const auto& c : {c0, c1, c2})
    counters.insert(counters.end(), c.begin(), c.end());
  EXPECT_EQ(out, ecbEncrypt(counters, nistKey()));
}

TEST(Pkcs7, PadUnpadRoundTrip) {
  for (unsigned n = 0; n <= 33; ++n) {
    Bytes msg(n, 0x7a);
    const Bytes padded = pkcs7Pad(msg);
    EXPECT_EQ(padded.size() % 16, 0u);
    EXPECT_GT(padded.size(), msg.size());
    EXPECT_EQ(pkcs7Unpad(padded), msg);
  }
}

TEST(Pkcs7, RejectsMalformedPadding) {
  EXPECT_TRUE(pkcs7Unpad({}).empty());
  Bytes bad(16, 0x00);  // pad byte 0 is invalid
  EXPECT_TRUE(pkcs7Unpad(bad).empty());
  Bytes bad2(16, 0x02);
  bad2[14] = 0x03;  // inconsistent pad bytes
  EXPECT_TRUE(pkcs7Unpad(bad2).empty());
  Bytes bad3(8, 0x01);  // not a multiple of the block size
  EXPECT_TRUE(pkcs7Unpad(bad3).empty());
}

}  // namespace
}  // namespace aesifc::aes
