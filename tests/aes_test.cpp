#include <gtest/gtest.h>

#include "aes/cipher.h"
#include "aes/gf256.h"
#include "aes/sbox.h"
#include "common/rng.h"

namespace aesifc::aes {
namespace {

Block hexBlock(const std::string& hex) {
  Block b{};
  for (unsigned i = 0; i < 16; ++i) {
    b[i] = static_cast<std::uint8_t>(
        std::stoul(hex.substr(2 * i, 2), nullptr, 16));
  }
  return b;
}

std::vector<std::uint8_t> hexBytes(const std::string& hex) {
  std::vector<std::uint8_t> v(hex.size() / 2);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<std::uint8_t>(
        std::stoul(hex.substr(2 * i, 2), nullptr, 16));
  }
  return v;
}

// --- GF(2^8) -------------------------------------------------------------------

TEST(Gf256, KnownProducts) {
  EXPECT_EQ(gfMul(0x57, 0x83), 0xc1);  // FIPS-197 Section 4.2 example
  EXPECT_EQ(gfMul(0x57, 0x13), 0xfe);
  EXPECT_EQ(gfMul(0x01, 0xab), 0xab);
  EXPECT_EQ(gfMul(0x00, 0xab), 0x00);
}

TEST(Gf256, MultiplicationCommutesAndDistributes) {
  Rng rng{3};
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next());
    const auto b = static_cast<std::uint8_t>(rng.next());
    const auto c = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(gfMul(a, b), gfMul(b, a));
    EXPECT_EQ(gfMul(a, static_cast<std::uint8_t>(b ^ c)),
              gfMul(a, b) ^ gfMul(a, c));
  }
}

TEST(Gf256, InverseIsInverse) {
  for (unsigned a = 1; a < 256; ++a) {
    EXPECT_EQ(gfMul(static_cast<std::uint8_t>(a),
                    gfInv(static_cast<std::uint8_t>(a))),
              1)
        << "a=" << a;
  }
  EXPECT_EQ(gfInv(0), 0);  // AES convention
}

TEST(Gf256, XtimeMatchesMulByTwo) {
  for (unsigned a = 0; a < 256; ++a) {
    EXPECT_EQ(xtime(static_cast<std::uint8_t>(a)),
              gfMul(static_cast<std::uint8_t>(a), 2));
  }
}

// --- S-box -----------------------------------------------------------------------

TEST(Sbox, FipsSpotValues) {
  EXPECT_EQ(sbox(0x00), 0x63);
  EXPECT_EQ(sbox(0x53), 0xed);
  EXPECT_EQ(sbox(0xff), 0x16);
  EXPECT_EQ(invSbox(0x63), 0x00);
}

TEST(Sbox, IsBijectionAndSelfInverse) {
  bool seen[256] = {};
  for (unsigned x = 0; x < 256; ++x) {
    const auto y = sbox(static_cast<std::uint8_t>(x));
    EXPECT_FALSE(seen[y]);
    seen[y] = true;
    EXPECT_EQ(invSbox(y), x);
  }
}

TEST(Sbox, NoFixedPoints) {
  for (unsigned x = 0; x < 256; ++x) {
    EXPECT_NE(sbox(static_cast<std::uint8_t>(x)), x);
    EXPECT_NE(sbox(static_cast<std::uint8_t>(x)), x ^ 0xff);
  }
}

// --- Round operations ---------------------------------------------------------

TEST(RoundOps, ShiftRowsInverse) {
  Rng rng{7};
  for (int i = 0; i < 50; ++i) {
    State s{};
    for (auto& b : s) b = static_cast<std::uint8_t>(rng.next());
    State t = s;
    shiftRows(t);
    invShiftRows(t);
    EXPECT_EQ(t, s);
  }
}

TEST(RoundOps, MixColumnsInverse) {
  Rng rng{8};
  for (int i = 0; i < 50; ++i) {
    State s{};
    for (auto& b : s) b = static_cast<std::uint8_t>(rng.next());
    State t = s;
    mixColumns(t);
    invMixColumns(t);
    EXPECT_EQ(t, s);
  }
}

TEST(RoundOps, SubBytesInverse) {
  State s{};
  for (unsigned i = 0; i < 16; ++i) s[i] = static_cast<std::uint8_t>(i * 17);
  State t = s;
  subBytes(t);
  invSubBytes(t);
  EXPECT_EQ(t, s);
}

TEST(RoundOps, MixColumnsFipsExample) {
  // FIPS-197 / common test vector: column d4 bf 5d 30 -> 04 66 81 e5.
  State s{};
  s[0] = 0xd4;
  s[1] = 0xbf;
  s[2] = 0x5d;
  s[3] = 0x30;
  mixColumns(s);
  EXPECT_EQ(s[0], 0x04);
  EXPECT_EQ(s[1], 0x66);
  EXPECT_EQ(s[2], 0x81);
  EXPECT_EQ(s[3], 0xe5);
}

TEST(RoundOps, AddRoundKeyIsInvolution) {
  State s{};
  RoundKey rk{};
  for (unsigned i = 0; i < 16; ++i) {
    s[i] = static_cast<std::uint8_t>(i);
    rk[i] = static_cast<std::uint8_t>(0xa0 + i);
  }
  State t = s;
  addRoundKey(t, rk);
  addRoundKey(t, rk);
  EXPECT_EQ(t, s);
}

// --- Key schedule ----------------------------------------------------------------

TEST(KeySchedule, Fips197Appendix128) {
  const auto key = hexBytes("2b7e151628aed2a6abf7158809cf4f3c");
  const auto ek = expandKey(key, KeySize::Aes128);
  ASSERT_EQ(ek.round_keys.size(), 11u);
  // w[4..7] of the expansion (round key 1) from FIPS-197 Appendix A.1.
  const RoundKey rk1 = ek.round_keys[1];
  const Block want = hexBlock("a0fafe1788542cb123a339392a6c7605");
  EXPECT_EQ(RoundKey(want), rk1);
  // Final round key (round 10).
  const Block want10 = hexBlock("d014f9a8c9ee2589e13f0cc8b6630ca6");
  EXPECT_EQ(RoundKey(want10), ek.round_keys[10]);
}

TEST(KeySchedule, RoundCounts) {
  std::vector<std::uint8_t> k16(16), k24(24), k32(32);
  EXPECT_EQ(expandKey(k16, KeySize::Aes128).round_keys.size(), 11u);
  EXPECT_EQ(expandKey(k24, KeySize::Aes192).round_keys.size(), 13u);
  EXPECT_EQ(expandKey(k32, KeySize::Aes256).round_keys.size(), 15u);
}

// --- FIPS-197 Appendix C known-answer tests ------------------------------------

TEST(Cipher, Fips197AppendixC1_Aes128) {
  const Block pt = hexBlock("00112233445566778899aabbccddeeff");
  const auto key = hexBytes("000102030405060708090a0b0c0d0e0f");
  const Block want = hexBlock("69c4e0d86a7b0430d8cdb78070b4c55a");
  EXPECT_EQ(encryptBlock(pt, key.data(), KeySize::Aes128), want);
  EXPECT_EQ(decryptBlock(want, key.data(), KeySize::Aes128), pt);
}

TEST(Cipher, Fips197AppendixC2_Aes192) {
  const Block pt = hexBlock("00112233445566778899aabbccddeeff");
  const auto key =
      hexBytes("000102030405060708090a0b0c0d0e0f1011121314151617");
  const Block want = hexBlock("dda97ca4864cdfe06eaf70a0ec0d7191");
  EXPECT_EQ(encryptBlock(pt, key.data(), KeySize::Aes192), want);
  EXPECT_EQ(decryptBlock(want, key.data(), KeySize::Aes192), pt);
}

TEST(Cipher, Fips197AppendixC3_Aes256) {
  const Block pt = hexBlock("00112233445566778899aabbccddeeff");
  const auto key = hexBytes(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Block want = hexBlock("8ea2b7ca516745bfeafc49904b496089");
  EXPECT_EQ(encryptBlock(pt, key.data(), KeySize::Aes256), want);
  EXPECT_EQ(decryptBlock(want, key.data(), KeySize::Aes256), pt);
}

TEST(Cipher, Fips197AppendixB) {
  const Block pt = hexBlock("3243f6a8885a308d313198a2e0370734");
  const auto key = hexBytes("2b7e151628aed2a6abf7158809cf4f3c");
  const Block want = hexBlock("3925841d02dc09fbdc118597196a0b32");
  EXPECT_EQ(encryptBlock(pt, key.data(), KeySize::Aes128), want);
}

// --- Properties -------------------------------------------------------------------

class CipherPropertyTest : public ::testing::TestWithParam<KeySize> {};

TEST_P(CipherPropertyTest, DecryptInvertsEncrypt) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) + 100};
  for (int i = 0; i < 64; ++i) {
    std::vector<std::uint8_t> key(keyBytes(GetParam()));
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
    Block pt{};
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
    const auto ek = expandKey(key, GetParam());
    EXPECT_EQ(decryptBlock(encryptBlock(pt, ek), ek), pt);
  }
}

TEST_P(CipherPropertyTest, AvalancheOnPlaintextBit) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) + 200};
  std::vector<std::uint8_t> key(keyBytes(GetParam()));
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
  const auto ek = expandKey(key, GetParam());
  Block pt{};
  for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
  const Block c0 = encryptBlock(pt, ek);
  Block pt2 = pt;
  pt2[0] ^= 1;  // single-bit flip
  const Block c1 = encryptBlock(pt2, ek);
  unsigned diff = 0;
  for (unsigned i = 0; i < 16; ++i)
    diff += static_cast<unsigned>(__builtin_popcount(c0[i] ^ c1[i]));
  // Expect roughly half the 128 bits to flip; accept a generous band.
  EXPECT_GT(diff, 30u);
  EXPECT_LT(diff, 98u);
}

TEST_P(CipherPropertyTest, KeySensitivity) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) + 300};
  std::vector<std::uint8_t> key(keyBytes(GetParam()));
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
  Block pt{};
  const Block c0 = encryptBlock(pt, expandKey(key, GetParam()));
  key[0] ^= 1;
  const Block c1 = encryptBlock(pt, expandKey(key, GetParam()));
  EXPECT_NE(c0, c1);
}

INSTANTIATE_TEST_SUITE_P(AllKeySizes, CipherPropertyTest,
                         ::testing::Values(KeySize::Aes128, KeySize::Aes192,
                                           KeySize::Aes256));

}  // namespace
}  // namespace aesifc::aes
