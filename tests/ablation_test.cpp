// Ablations of the protected design's choices: the input-aware stall meet
// (vs. the paper's literal stage-only meet) and the overflow buffer depth.

#include <gtest/gtest.h>

#include "soc/attacks.h"

namespace aesifc::soc {
namespace {

TEST(AcceptanceDelayAblation, StageOnlyMeetLeaksThroughAcceptance) {
  // With the paper's literal stage-only meet, Alice's granted stalls delay
  // Eve's *acceptance*, which Eve decodes from probe latency.
  const auto r = runAcceptanceDelayAttack(/*meet_includes_inputs=*/false);
  EXPECT_GT(r.mi_bits, 0.5) << "accuracy=" << r.accuracy;
  EXPECT_GT(r.stalled_cycles, 0u);
}

TEST(AcceptanceDelayAblation, InputAwareMeetClosesTheChannel) {
  const auto r = runAcceptanceDelayAttack(/*meet_includes_inputs=*/true);
  EXPECT_LT(r.mi_bits, 0.2) << "accuracy=" << r.accuracy;
  // The channel is closed by denying the stalls Eve's probes would observe.
  EXPECT_GT(r.denied_stalls, 0u);
}

TEST(AcceptanceDelayAblation, ProbesTrappedOnlyUnderStageOnlyMeet) {
  TimingChannelParams p;
  const auto ablated = runAcceptanceDelayAttack(false, p);
  const auto fixed = runAcceptanceDelayAttack(true, p);
  // Stage-only meet: probes submitted during a granted stall stay trapped
  // past their window (fewer completions than windows). The input-aware
  // meet returns every probe with a flat latency.
  EXPECT_LT(ablated.probe_latency.count, p.secret_bits);
  EXPECT_EQ(fixed.probe_latency.count, p.secret_bits);
  EXPECT_LE(fixed.probe_latency.max - fixed.probe_latency.min, 4u);
}

}  // namespace
}  // namespace aesifc::soc
