#include "ifc/suggest.h"

#include <gtest/gtest.h>

#include "ifc/checker.h"
#include "rtl/verif_models.h"

namespace aesifc::ifc {
namespace {

using hdl::LabelTerm;
using hdl::Module;
using lattice::Conf;
using lattice::Integ;
using lattice::Label;

const Label kPT = Label::publicTrusted();
const Label kPU = Label::publicUntrusted();
const Label kSecret{Conf::top(), Integ::top()};

TEST(Suggest, StaticLabelForStaticFlow) {
  Module m{"s"};
  const auto a = m.input("a", 8, LabelTerm::of(kSecret));
  const auto b = m.input("b", 8, LabelTerm::of(kPT));
  const auto o = m.output("o", 8, LabelTerm::unconstrained());
  m.assign(o, m.bxor(m.read(a), m.read(b)));

  const auto suggestions = suggestOutputLabels(m);
  ASSERT_EQ(suggestions.size(), 1u);
  EXPECT_EQ(suggestions[0].signal_name, "o");
  ASSERT_EQ(suggestions[0].term.kind, LabelTerm::Kind::Static);
  EXPECT_EQ(suggestions[0].term.fixed, kSecret);
}

TEST(Suggest, RecoversDependentLabelFromMux) {
  // The Fig. 3 pattern with the output annotation erased: the suggester
  // must rediscover DL(way).
  Module m{"dep"};
  const auto way = m.input("way", 1, LabelTerm::of(kPT));
  const auto t0 = m.input("t0", 8, LabelTerm::of(kPT));
  const auto t1 = m.input("t1", 8, LabelTerm::of(kPU));
  const auto o = m.output("tag_o", 8, LabelTerm::unconstrained());
  m.assign(o, m.mux(m.eq(m.read(way), m.c(1, 0)), m.read(t0), m.read(t1)));
  // Something must reference a dependent label for `way` to be enumerated.
  const auto d = m.input("d", 8, LabelTerm::dependent(way, {kPT, kPU}));
  const auto o2 = m.output("o2", 8, LabelTerm::dependent(way, {kPT, kPU}));
  m.assign(o2, m.read(d));

  const auto suggestions = suggestOutputLabels(m);
  ASSERT_EQ(suggestions.size(), 1u);
  ASSERT_EQ(suggestions[0].term.kind, LabelTerm::Kind::Dependent);
  EXPECT_EQ(suggestions[0].term.selector, way);
  EXPECT_EQ(suggestions[0].term.by_value[0], kPT);
  EXPECT_EQ(suggestions[0].term.by_value[1], kPU);
  EXPECT_NE(suggestions[0].rendered.find("DL(way)"), std::string::npos);
}

TEST(Suggest, AppliedSuggestionsCheckClean) {
  Module m{"apply"};
  const auto sel = m.input("sel", 1, LabelTerm::of(kPT));
  const auto d =
      m.input("d", 8, LabelTerm::dependent(sel, {kPT, kSecret}));
  const auto o = m.output("o", 8, LabelTerm::unconstrained());
  m.assign(o, m.bnot(m.read(d)));

  auto suggestions = suggestOutputLabels(m);
  ASSERT_EQ(suggestions.size(), 1u);
  applySuggestions(m, suggestions);
  const auto report = check(m);
  EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(Suggest, LeavesAnnotatedOutputsAlone) {
  Module m{"keep"};
  const auto a = m.input("a", 8, LabelTerm::of(kPT));
  const auto o = m.output("o", 8, LabelTerm::of(kSecret));
  m.assign(o, m.read(a));
  EXPECT_TRUE(suggestOutputLabels(m).empty());
}

TEST(Suggest, DowngradeDrivenOutputGetsTargetLabel) {
  Module m{"dg"};
  const auto s = m.input("s", 8, LabelTerm::of(kSecret));
  const auto o = m.output("o", 8, LabelTerm::unconstrained());
  m.declassify(o, m.read(s), kPT, lattice::Principal::supervisor());
  const auto suggestions = suggestOutputLabels(m);
  ASSERT_EQ(suggestions.size(), 1u);
  ASSERT_EQ(suggestions[0].term.kind, LabelTerm::Kind::Static);
  EXPECT_EQ(suggestions[0].term.fixed, kPT);
}

TEST(Suggest, WorksOnTheScratchpadModel) {
  // Strip the read port annotation from the Fig. 5 model and re-derive it,
  // offering rd_tag as a candidate classifier.
  auto m = rtl::buildTaggedScratchpad(true);
  const auto rd = m.findSignal("rd_data");
  const auto rd_tag = m.findSignal("rd_tag");
  ASSERT_TRUE(rd.valid());
  m.setLabel(rd, LabelTerm::unconstrained());

  const auto suggestions = suggestOutputLabels(m, {rd_tag});
  ASSERT_EQ(suggestions.size(), 1u);
  applySuggestions(m, suggestions);
  EXPECT_TRUE(check(m).ok());
  // The suggested label is indexed by rd_tag, as the original was, with the
  // chain levels as entries.
  ASSERT_EQ(suggestions[0].term.kind, LabelTerm::Kind::Dependent);
  EXPECT_EQ(m.signal(suggestions[0].term.selector).name, "rd_tag");
  EXPECT_EQ(suggestions[0].term.by_value[0].c, Conf::level(0));
  EXPECT_EQ(suggestions[0].term.by_value[3].c, Conf::level(3));
}

TEST(Suggest, CandidateSelectorNotNeededWhenFlowIsStatic) {
  Module m{"cand"};
  const auto sel = m.input("sel", 1, LabelTerm::of(kPT));
  const auto a = m.input("a", 8, LabelTerm::of(kSecret));
  const auto o = m.output("o", 8, LabelTerm::unconstrained());
  m.assign(o, m.read(a));
  const auto suggestions = suggestOutputLabels(m, {sel});
  ASSERT_EQ(suggestions.size(), 1u);
  // Flow does not vary with the candidate: static suggestion.
  EXPECT_EQ(suggestions[0].term.kind, LabelTerm::Kind::Static);
  EXPECT_EQ(suggestions[0].term.fixed, kSecret);
}

}  // namespace
}  // namespace aesifc::ifc
