#include "hdl/verilog.h"

#include <gtest/gtest.h>

#include "hdl/parser.h"
#include "rtl/aes_ir.h"
#include "rtl/verif_models.h"

namespace aesifc::hdl {
namespace {

using lattice::Label;

const LabelTerm kPT = LabelTerm::of(Label::publicTrusted());

TEST(Verilog, PortsAndModuleShape) {
  Module m{"shape"};
  const auto a = m.input("a", 8, kPT);
  const auto o = m.output("o", 8, kPT);
  m.assign(o, m.bnot(m.read(a)));
  const auto v = emitVerilog(m);
  EXPECT_NE(v.find("module shape ("), std::string::npos);
  EXPECT_NE(v.find("input wire clk"), std::string::npos);
  EXPECT_NE(v.find("input wire [7:0] a"), std::string::npos);
  EXPECT_NE(v.find("output wire [7:0] o"), std::string::npos);
  EXPECT_NE(v.find("assign o = "), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, RegistersGetAlwaysBlocksWithReset) {
  Module m{"regs"};
  const auto en = m.input("en", 1, kPT);
  const auto r = m.reg("ctr", 4, kPT, BitVec(4, 9));
  const auto o = m.output("o", 4, kPT);
  m.regWrite(r, m.add(m.read(r), m.c(4, 1)), m.read(en));
  m.assign(o, m.read(r));
  const auto v = emitVerilog(m);
  EXPECT_NE(v.find("reg [3:0] ctr;"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("ctr <= 4'h9;"), std::string::npos);  // reset value
  EXPECT_NE(v.find("if (rst)"), std::string::npos);
}

TEST(Verilog, MultipleWritesKeepProgramOrder) {
  Module m{"prio"};
  const auto r = m.reg("r", 4, kPT);
  const auto o = m.output("o", 4, kPT);
  m.regWrite(r, m.c(4, 1), m.c(1, 1));
  m.regWrite(r, m.c(4, 2), m.c(1, 1));
  m.assign(o, m.read(r));
  const auto v = emitVerilog(m);
  // Exactly one always block for r, containing both conditional writes.
  EXPECT_EQ(v.find("always @(posedge clk)"),
            v.rfind("always @(posedge clk)"));
  const auto first = v.find("r <= e");
  const auto second = v.find("r <= e", first + 1);
  EXPECT_NE(second, std::string::npos);
}

TEST(Verilog, LutsBecomeCaseFunctions) {
  Module m{"withlut"};
  const auto a = m.input("a", 2, kPT);
  const auto o = m.output("o", 8, kPT);
  m.assign(o, m.lut(m.read(a), {BitVec(8, 0x10), BitVec(8, 0x20),
                                BitVec(8, 0x30), BitVec(8, 0x40)}));
  const auto v = emitVerilog(m);
  EXPECT_NE(v.find("function [7:0] f_e"), std::string::npos);
  EXPECT_NE(v.find("case (idx)"), std::string::npos);
  EXPECT_NE(v.find("8'h30"), std::string::npos);
  EXPECT_NE(v.find("endfunction"), std::string::npos);
}

TEST(Verilog, LabelsAndDowngradesEmittedAsComments) {
  auto m = rtl::buildStallPipeline(true);
  const auto v = emitVerilog(m);
  EXPECT_NE(v.find("// label in_data : DL(in_tag)"), std::string::npos);
  EXPECT_NE(v.find("// DECLASSIFY to (PUB,TRU) by stall_arbiter"),
            std::string::npos);
}

TEST(Verilog, CommentsCanBeSuppressed) {
  auto m = rtl::buildStallPipeline(true);
  VerilogOptions opts;
  opts.emit_label_comments = false;
  const auto v = emitVerilog(m, opts);
  EXPECT_EQ(v.find("// label"), std::string::npos);
}

TEST(Verilog, FullAesNetlistExports) {
  auto m = rtl::buildAesEncrypt128(nullptr);
  const auto v = emitVerilog(m);
  // One case-function per LUT node: 160 S-boxes + 144 xtime tables.
  std::size_t functions = 0;
  for (std::size_t pos = v.find("function ["); pos != std::string::npos;
       pos = v.find("function [", pos + 1)) {
    ++functions;
  }
  EXPECT_EQ(functions, 304u);
  EXPECT_NE(v.find("output wire [127:0] ct"), std::string::npos);
}

TEST(Verilog, SequentialPipelineExports) {
  auto m = rtl::buildAesPipelineIr(nullptr);
  const auto v = emitVerilog(m);
  EXPECT_NE(v.find("reg [127:0] s10;"), std::string::npos);
  EXPECT_NE(v.find("reg [0:0] v10;"), std::string::npos);
  // Sanity: roughly one always block per register (21 registers).
  std::size_t always = 0;
  for (std::size_t pos = v.find("always @"); pos != std::string::npos;
       pos = v.find("always @", pos + 1)) {
    ++always;
  }
  EXPECT_EQ(always, 20u);
}

TEST(Verilog, ParsedDesignsExportToo) {
  const auto m = parseModule(R"(
    module demo {
      input a : 4 label (PUB, TRU);
      input b : 4 label (PUB, TRU);
      output o : 4 label (PUB, TRU);
      assign o = mux(a == b, a + b, a ^ b);
    }
  )");
  const auto v = emitVerilog(m);
  EXPECT_NE(v.find("module demo ("), std::string::npos);
  EXPECT_NE(v.find(" ? "), std::string::npos);  // mux became a ternary
}

}  // namespace
}  // namespace aesifc::hdl
