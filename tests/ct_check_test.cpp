#include "ifc/ct_check.h"

#include <gtest/gtest.h>

#include "ifc/checker.h"
#include "rtl/verif_models.h"

namespace aesifc::ifc {
namespace {

using hdl::LabelTerm;
using hdl::Module;
using lattice::Label;

// Protocol-shaped driver for the AES control FSM: pulse `start` every 20
// cycles so a full (potentially key-dependent) run completes in between.
CtCheckConfig fsmConfig() {
  CtCheckConfig cfg;
  cfg.hold_secrets = true;  // the key does not change mid-operation
  cfg.drive_public = [](hdl::SignalId, unsigned cycle) {
    return BitVec(1, cycle % 20 == 0 ? 1 : 0);
  };
  return cfg;
}

TEST(CtCheck, LeakyAesControlDiverges) {
  auto m = rtl::buildAesControl(/*leaky=*/true);
  const auto r = checkConstantTime(
      m, {m.findSignal("key_bit")}, {m.findSignal("start")},
      {m.findSignal("valid")}, fsmConfig());
  EXPECT_FALSE(r.constant) << r.toString();
  EXPECT_EQ(r.diverging_signal, "valid");
}

TEST(CtCheck, FixedAesControlIsConstantTime) {
  auto m = rtl::buildAesControl(/*leaky=*/false);
  const auto r = checkConstantTime(
      m, {m.findSignal("key_bit")}, {m.findSignal("start")},
      {m.findSignal("valid")}, fsmConfig());
  EXPECT_TRUE(r.constant) << r.toString();
}

TEST(CtCheck, AgreesWithStaticCheckerOnBothVariants) {
  // The dynamic witness and the static verdict line up: reject <=> diverge.
  for (const bool leaky : {false, true}) {
    auto m = rtl::buildAesControl(leaky);
    const bool static_ok = check(m).ok();
    const auto dynamic = checkConstantTime(
        m, {m.findSignal("key_bit")}, {m.findSignal("start")},
        {m.findSignal("valid")}, fsmConfig());
    EXPECT_EQ(static_ok, dynamic.constant) << "leaky=" << leaky;
  }
}

TEST(CtCheck, ValueChannelAlsoDetected) {
  // Not just timing: a direct data leak diverges immediately.
  Module m{"direct"};
  const auto s = m.input("s", 8, LabelTerm::of(Label::topTop()));
  const auto p = m.input("p", 8, LabelTerm::of(Label::publicTrusted()));
  const auto o = m.output("o", 8, LabelTerm::of(Label::publicTrusted()));
  m.assign(o, m.bxor(m.read(s), m.read(p)));
  const auto r = checkConstantTime(m, {s}, {p}, {o});
  EXPECT_FALSE(r.constant);
  EXPECT_EQ(r.first_divergence_cycle, 0u);
}

TEST(CtCheck, SecretIndependentDesignPasses) {
  Module m{"indep"};
  const auto s = m.input("s", 8, LabelTerm::of(Label::topTop()));
  const auto p = m.input("p", 8, LabelTerm::of(Label::publicTrusted()));
  const auto o = m.output("o", 8, LabelTerm::of(Label::publicTrusted()));
  m.assign(o, m.add(m.read(p), m.c(8, 3)));
  (void)s;
  const auto r = checkConstantTime(m, {s}, {p}, {o});
  EXPECT_TRUE(r.constant);
}

TEST(CtCheck, MaskedSecretPathPasses) {
  // s & 0 is dead: public view stays constant even though a secret feeds
  // the expression graph.
  Module m{"masked"};
  const auto s = m.input("s", 8, LabelTerm::of(Label::topTop()));
  const auto p = m.input("p", 8, LabelTerm::of(Label::publicTrusted()));
  const auto o = m.output("o", 8, LabelTerm::of(Label::publicTrusted()));
  m.assign(o, m.bor(m.band(m.read(s), m.c(8, 0)), m.read(p)));
  const auto r = checkConstantTime(m, {s}, {p}, {o});
  EXPECT_TRUE(r.constant);
}

TEST(CtCheck, ReportRendering) {
  CtCheckResult ok;
  EXPECT_NE(ok.toString().find("constant-time"), std::string::npos);
  CtCheckResult bad;
  bad.constant = false;
  bad.first_divergence_cycle = 7;
  bad.diverging_signal = "valid";
  EXPECT_NE(bad.toString().find("cycle 7"), std::string::npos);
  EXPECT_NE(bad.toString().find("valid"), std::string::npos);
}

}  // namespace
}  // namespace aesifc::ifc
