#include "soc/dma.h"

#include <gtest/gtest.h>

#include <limits>

#include "accel/driver.h"
#include "aes/modes.h"
#include "common/rng.h"
#include "soc/attacks.h"

namespace aesifc::soc {
namespace {

using accel::AcceleratorConfig;
using accel::AesAccelerator;
using accel::SecurityMode;
using lattice::Conf;
using lattice::Label;
using lattice::Principal;

struct DmaFixture : ::testing::TestWithParam<SecurityMode> {
  AcceleratorConfig cfg() const {
    AcceleratorConfig c;
    c.mode = GetParam();
    return c;
  }
};

TEST(HostMemory, PageLabelsCoverRanges) {
  HostMemory mem{4 * kPageBytes};
  const Label alice = Principal::user("alice", 1).authority;
  mem.setPageLabel(kPageBytes, kPageBytes + 1, alice);  // spans 2 pages
  EXPECT_EQ(mem.pageLabel(0), Label::publicTrusted());
  EXPECT_EQ(mem.pageLabel(kPageBytes), alice);
  EXPECT_EQ(mem.pageLabel(2 * kPageBytes), alice);
  EXPECT_EQ(mem.pageLabel(3 * kPageBytes), Label::publicTrusted());
}

TEST(HostMemory, PageLabelStraddlesBoundaryFromMidPage) {
  // A short span that starts mid-page and crosses into the next page must
  // label BOTH pages it touches.
  HostMemory mem{4 * kPageBytes};
  const Label alice = Principal::user("alice", 1).authority;
  mem.setPageLabel(kPageBytes - 8, 16, alice);  // 8 bytes each side
  EXPECT_EQ(mem.pageLabel(0), alice);
  EXPECT_EQ(mem.pageLabel(kPageBytes), alice);
  EXPECT_EQ(mem.pageLabel(2 * kPageBytes), Label::publicTrusted());
}

TEST(HostMemory, ZeroLengthSpanLabelsNothing) {
  HostMemory mem{2 * kPageBytes};
  const Label alice = Principal::user("alice", 1).authority;
  mem.setPageLabel(10, 0, alice);  // empty span: no page touched
  EXPECT_EQ(mem.pageLabel(0), Label::publicTrusted());
  // Even at an address past the end of memory, an empty span is a no-op
  // rather than an error or a label change.
  EXPECT_NO_THROW(mem.setPageLabel(100 * kPageBytes, 0, alice));
}

TEST(HostMemory, SetPageLabelRangeErrorsAreAtomic) {
  HostMemory mem{4 * kPageBytes};
  const Label alice = Principal::user("alice", 1).authority;
  // Span runs past the end of memory: must throw and label NO page, even
  // though its first pages are in range (atomic failure).
  EXPECT_THROW(mem.setPageLabel(kPageBytes, 10 * kPageBytes, alice),
               std::out_of_range);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(mem.pageLabel(p * kPageBytes), Label::publicTrusted());
  }
  // addr + len overflowing size_t must not wrap around into "in range".
  EXPECT_THROW(
      mem.setPageLabel(8, std::numeric_limits<std::size_t>::max() - 2, alice),
      std::out_of_range);
  EXPECT_THROW(mem.setPageLabel(100 * kPageBytes, 1, alice),
               std::out_of_range);
  EXPECT_EQ(mem.pageLabel(0), Label::publicTrusted());
}

TEST(HostMemory, ByteAccess) {
  HostMemory mem{1024};
  mem.writeBytes(100, {1, 2, 3});
  EXPECT_EQ(mem.read8(101), 2);
  EXPECT_EQ(mem.readBytes(100, 3), (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST_P(DmaFixture, EcbDescriptorMatchesSoftware) {
  AesAccelerator acc{cfg()};
  const unsigned u = acc.addUser(Principal::user("alice", 1));
  Rng rng{11};
  std::vector<std::uint8_t> key(16);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
  ASSERT_TRUE(accel::loadKey128(acc, u, 1, 0, key, Conf::category(1)));

  HostMemory mem{16 * 1024};
  mem.setPageLabel(0x400, 512, acc.principal(u).authority);
  mem.setPageLabel(0x800, 512, acc.principal(u).authority);
  std::vector<std::uint8_t> msg(512);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
  mem.writeBytes(0x400, msg);

  DmaEngine dma{acc, mem};
  DmaDescriptor d;
  d.user = u;
  d.key_slot = 1;
  d.mode = DmaMode::EcbEncrypt;
  d.src = 0x400;
  d.dst = 0x800;
  d.len = 512;
  const auto r = dma.run(d);
  ASSERT_TRUE(r.ok) << toString(r.error);
  EXPECT_EQ(r.blocks, 32u);
  const auto ek = aes::expandKey(key, aes::KeySize::Aes128);
  EXPECT_EQ(mem.readBytes(0x800, 512), aes::ecbEncrypt(msg, ek));

  // Decrypt it back in place.
  DmaDescriptor back = d;
  back.mode = DmaMode::EcbDecrypt;
  back.src = 0x800;
  back.dst = 0x800;
  ASSERT_TRUE(dma.run(back).ok);
  EXPECT_EQ(mem.readBytes(0x800, 512), msg);
}

TEST_P(DmaFixture, CtrDescriptorIsInvolutive) {
  AesAccelerator acc{cfg()};
  const unsigned u = acc.addUser(Principal::user("alice", 1));
  Rng rng{12};
  std::vector<std::uint8_t> key(16);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
  ASSERT_TRUE(accel::loadKey128(acc, u, 1, 0, key, Conf::category(1)));

  HostMemory mem{8 * 1024};
  mem.setPageLabel(0x000, 0x800, acc.principal(u).authority);
  std::vector<std::uint8_t> msg(200);  // not block aligned: fine for CTR
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
  mem.writeBytes(0x100, msg);

  DmaEngine dma{acc, mem};
  DmaDescriptor d;
  d.user = u;
  d.key_slot = 1;
  d.mode = DmaMode::CtrCrypt;
  d.src = 0x100;
  d.dst = 0x400;
  d.len = 200;
  for (auto& b : d.ctr_iv) b = static_cast<std::uint8_t>(rng.next());
  ASSERT_TRUE(dma.run(d).ok);
  // Software check.
  const auto ek = aes::expandKey(key, aes::KeySize::Aes128);
  aes::Iv nonce{};
  std::copy(d.ctr_iv.begin(), d.ctr_iv.end(), nonce.begin());
  EXPECT_EQ(mem.readBytes(0x400, 200), aes::ctrCrypt(msg, ek, nonce));

  DmaDescriptor inv = d;
  inv.src = 0x400;
  inv.dst = 0x600;
  ASSERT_TRUE(dma.run(inv).ok);
  EXPECT_EQ(mem.readBytes(0x600, 200), msg);
}

TEST_P(DmaFixture, RejectsBadDescriptors) {
  AesAccelerator acc{cfg()};
  const unsigned u = acc.addUser(Principal::user("alice", 1));
  HostMemory mem{1024};
  DmaEngine dma{acc, mem};
  DmaDescriptor d;
  d.user = u;
  d.len = 0;
  EXPECT_EQ(dma.run(d).error, DmaError::BadRange);
  d.len = 2048;
  EXPECT_EQ(dma.run(d).error, DmaError::BadRange);
  d.len = 24;  // unaligned for ECB
  EXPECT_EQ(dma.run(d).error, DmaError::UnalignedLength);
  d.len = 32;
  d.user = 99;  // no such principal
  EXPECT_EQ(dma.run(d).error, DmaError::BadDescriptor);
  d.user = u;
  d.key_slot = 999;
  EXPECT_EQ(dma.run(d).error, DmaError::BadDescriptor);
}

TEST_P(DmaFixture, RefusalsNeverPartiallyWrite) {
  AesAccelerator acc{cfg()};
  const unsigned u = acc.addUser(Principal::user("alice", 1));
  Rng rng{21};
  std::vector<std::uint8_t> key(16);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
  ASSERT_TRUE(accel::loadKey128(acc, u, 1, 0, key, Conf::category(1)));

  HostMemory mem{4 * 1024};
  mem.setPageLabel(0, 4 * 1024, acc.principal(u).authority);
  std::vector<std::uint8_t> msg(128);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
  mem.writeBytes(0x100, msg);
  const auto snapshot = mem.readBytes(0, mem.size());

  DmaEngine dma{acc, mem};
  DmaDescriptor d;
  d.user = u;
  d.key_slot = 1;
  d.mode = DmaMode::EcbEncrypt;
  d.src = 0x100;
  d.dst = 0x140;  // overlaps [0x100, 0x180) but is not exactly in-place
  d.len = 128;
  EXPECT_EQ(dma.run(d).error, DmaError::OverlapDenied);
  EXPECT_EQ(mem.readBytes(0, mem.size()), snapshot);

  d.dst = 0x300;
  d.len = 120;  // unaligned for ECB
  EXPECT_EQ(dma.run(d).error, DmaError::UnalignedLength);
  EXPECT_EQ(mem.readBytes(0, mem.size()), snapshot);

  d.len = 128;
  d.dst = mem.size() - 64;  // runs off the end of memory
  EXPECT_EQ(dma.run(d).error, DmaError::BadRange);
  d.dst = 0x300;
  d.src = std::numeric_limits<std::size_t>::max() - 32;  // addr+len wraps
  EXPECT_EQ(dma.run(d).error, DmaError::BadRange);
  EXPECT_EQ(mem.readBytes(0, mem.size()), snapshot);

  // Exact in-place (src == dst) stays allowed — buffered writeback makes
  // it well-defined (EcbDescriptorMatchesSoftware decrypts in place).
  d.src = 0x100;
  d.dst = 0x100;
  EXPECT_TRUE(dma.run(d).ok);
}

TEST_P(DmaFixture, CtrOverlapRefusedPartialAllowedExact) {
  AesAccelerator acc{cfg()};
  const unsigned u = acc.addUser(Principal::user("alice", 1));
  Rng rng{22};
  std::vector<std::uint8_t> key(16);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
  ASSERT_TRUE(accel::loadKey128(acc, u, 1, 0, key, Conf::category(1)));
  HostMemory mem{2 * 1024};
  mem.setPageLabel(0, 2 * 1024, acc.principal(u).authority);
  DmaEngine dma{acc, mem};
  DmaDescriptor d;
  d.user = u;
  d.key_slot = 1;
  d.mode = DmaMode::CtrCrypt;
  d.src = 0x000;
  d.dst = 0x010;
  d.len = 100;  // CTR tolerates unaligned length, not partial overlap
  EXPECT_EQ(dma.run(d).error, DmaError::OverlapDenied);
  d.dst = 0x000;
  EXPECT_TRUE(dma.run(d).ok);
}

TEST_P(DmaFixture, StreamsAtPipelineRate) {
  AesAccelerator acc{cfg()};
  const unsigned u = acc.addUser(Principal::user("alice", 1));
  Rng rng{13};
  std::vector<std::uint8_t> key(16);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
  ASSERT_TRUE(accel::loadKey128(acc, u, 1, 0, key, Conf::category(1)));
  HostMemory mem{32 * 1024};
  mem.setPageLabel(0, 32 * 1024, acc.principal(u).authority);
  DmaEngine dma{acc, mem};
  DmaDescriptor d;
  d.user = u;
  d.key_slot = 1;
  d.src = 0;
  d.dst = 0x4000;
  d.len = 128 * 16;
  const auto r = dma.run(d);
  ASSERT_TRUE(r.ok);
  // ~1 block/cycle plus the 30-cycle fill: well under 2 cycles/block.
  EXPECT_LT(static_cast<double>(r.cycles) / r.blocks, 2.0);
}

INSTANTIATE_TEST_SUITE_P(BothModes, DmaFixture,
                         ::testing::Values(SecurityMode::Baseline,
                                           SecurityMode::Protected));

// --- The attack ------------------------------------------------------------------

TEST(DmaTheft, BaselineStealsAlicePlaintext) {
  const auto r = runDmaTheftAttack(SecurityMode::Baseline);
  EXPECT_TRUE(r.alice_plaintext_stolen);
  EXPECT_TRUE(r.legit_dma_ok);
}

TEST(DmaTheft, ProtectedBlocksBothDirections) {
  const auto r = runDmaTheftAttack(SecurityMode::Protected);
  EXPECT_FALSE(r.alice_plaintext_stolen);
  EXPECT_TRUE(r.src_read_blocked);
  EXPECT_TRUE(r.dst_write_blocked);
  EXPECT_TRUE(r.legit_dma_ok);  // legitimate traffic unaffected
  EXPECT_LT(r.cycles_per_block, 4.0);
}

}  // namespace
}  // namespace aesifc::soc
