#include "sim/vcd.h"

#include <gtest/gtest.h>

namespace aesifc::sim {
namespace {

using hdl::LabelTerm;
using hdl::Module;
using lattice::Label;

const LabelTerm kPT = LabelTerm::of(Label::publicTrusted());

struct VcdFixture : ::testing::Test {
  Module m{"wave"};
  hdl::SignalId en = m.input("en", 1, kPT);
  hdl::SignalId ctr = m.reg("ctr", 4, kPT);
  hdl::SignalId o = m.output("o", 4, kPT);

  VcdFixture() {
    m.regWrite(ctr, m.add(m.read(ctr), m.c(4, 1)), m.read(en));
    m.assign(o, m.read(ctr));
  }
};

TEST_F(VcdFixture, HeaderDeclaresAllSignals) {
  Simulator sim{m};
  VcdWriter vcd{sim};
  const auto text = vcd.str();
  EXPECT_NE(text.find("$scope module wave $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1"), std::string::npos);
  EXPECT_NE(text.find(" en $end"), std::string::npos);
  EXPECT_NE(text.find(" ctr $end"), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
}

TEST_F(VcdFixture, EmitsChangesOnlyOnChange) {
  Simulator sim{m};
  VcdWriter vcd{sim, {ctr}};
  sim.poke("en", BitVec(1, 0));
  vcd.sample();  // initial value 0
  sim.step();
  vcd.sample();  // unchanged (enable off): no new change record
  sim.poke("en", BitVec(1, 1));
  sim.step();
  vcd.sample();  // ctr -> 1
  const auto text = vcd.str();
  // Exactly two binary change records for ctr: b0000 and b0001.
  EXPECT_NE(text.find("b0000 "), std::string::npos);
  EXPECT_NE(text.find("b0001 "), std::string::npos);
  EXPECT_EQ(text.find("b0010 "), std::string::npos);
}

TEST_F(VcdFixture, TimeStampsMatchCycles) {
  Simulator sim{m};
  VcdWriter vcd{sim, {ctr}};
  sim.poke("en", BitVec(1, 1));
  vcd.sample();
  sim.step(3);
  vcd.sample();
  const auto text = vcd.str();
  EXPECT_NE(text.find("#0"), std::string::npos);
  EXPECT_NE(text.find("#3"), std::string::npos);
}

TEST_F(VcdFixture, ScalarSignalsUseScalarFormat) {
  Simulator sim{m};
  VcdWriter vcd{sim, {en}};
  sim.poke("en", BitVec(1, 1));
  sim.evalComb();
  vcd.sample();
  const auto text = vcd.str();
  // 1-bit changes use the scalar "1<id>" form, not "b1 <id>".
  EXPECT_NE(text.find("\n1!"), std::string::npos);
}

TEST_F(VcdFixture, WritesFile) {
  Simulator sim{m};
  VcdWriter vcd{sim};
  vcd.sample();
  EXPECT_TRUE(vcd.writeTo("/tmp/aesifc_vcd_test.vcd"));
  EXPECT_FALSE(vcd.writeTo("/nonexistent-dir/x.vcd"));
}

TEST(VcdIdCodes, UniqueAndPrintable) {
  // Exercised indirectly through a module with >94 signals.
  Module m{"many"};
  std::vector<hdl::SignalId> sigs;
  const auto a = m.input("a", 1, kPT);
  for (int i = 0; i < 120; ++i) {
    const auto w = m.output("w" + std::to_string(i), 1, kPT);
    m.assign(w, m.read(a));
  }
  Simulator sim{m};
  VcdWriter vcd{sim};
  vcd.sample();
  const auto text = vcd.str();
  for (char c : text) {
    EXPECT_TRUE(c == '\n' || (c >= 32 && c < 127));
  }
}

}  // namespace
}  // namespace aesifc::sim
