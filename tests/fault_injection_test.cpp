// Unit tests of the fail-secure hardening: per-site parity detection, the
// tags-only-fail-upward quarantine rule, key zeroization with in-flight
// squash, config-register restoration, the bounded event log, and an IR
// model (checked with the dynamic tracker) showing the parity-gated output
// path keeps secret state off a public port even when parity fails.

#include <gtest/gtest.h>

#include "accel/driver.h"
#include "aes/cipher.h"
#include "ifc/tracker.h"
#include "soc/fault_injector.h"

namespace aesifc::accel {
namespace {

using lattice::Conf;
using lattice::Integ;
using lattice::Label;
using lattice::Principal;

std::vector<std::uint8_t> testKey() {
  std::vector<std::uint8_t> k(16);
  for (unsigned i = 0; i < 16; ++i) k[i] = static_cast<std::uint8_t>(i * 7 + 1);
  return k;
}

struct Rig {
  AesAccelerator acc;
  unsigned sup;
  unsigned alice;

  explicit Rig(AcceleratorConfig cfg = {}) : acc{cfg} {
    sup = acc.addUser(Principal::supervisor());
    alice = acc.addUser(Principal::user("alice", 1));
    EXPECT_TRUE(loadKey128(acc, alice, 1, 0, testKey(), Conf::category(1)));
  }
};

TEST(FaultInjection, Parity64AndLabelParity) {
  EXPECT_FALSE(parity64(0));
  EXPECT_TRUE(parity64(1));
  EXPECT_FALSE(parity64(3));
  EXPECT_TRUE(parity64(1ULL << 63));
  const Label l{Conf::category(1), Integ::bottom()};
  Label flipped = l;
  flipped.c = flipped.c.join(Conf::category(2));
  EXPECT_NE(labelParity(l), labelParity(flipped));
}

// The scrub rings must be silent on a quiet device. This is easy to break
// subtly: the integrity digests have a nonzero reset value, so power-on
// must stamp them to match the zeroed storage or the slow ring "detects"
// corruption in never-written cells and slots.
TEST(FaultInjection, QuietDeviceScrubFindsNothing) {
  Rig r;
  AccelSession session{r.acc, r.alice, 1, {}};
  aes::Block pt{};
  for (unsigned i = 0; i < 4; ++i) {
    pt[0] = static_cast<std::uint8_t>(i);
    EXPECT_TRUE(session.encryptBlock(pt).has_value());
  }
  r.acc.run(64);  // let the slow ring visit every site several times
  EXPECT_EQ(r.acc.stats().faults_detected, 0u);
  EXPECT_EQ(r.acc.events().size(), 0u);
}

TEST(FaultInjection, ScratchTagFaultQuarantinesUpward) {
  Rig r;
  ASSERT_TRUE(r.acc.injectFault(FaultSite::ScratchTag, 0, 3));
  r.acc.tick();  // fast scrub ring covers every scratchpad tag each cycle
  EXPECT_GE(r.acc.stats().faults_detected, 1u);
  EXPECT_GE(r.acc.stats().faults_recovered, 1u);
  EXPECT_GE(r.acc.eventCount(SecurityEventKind::FaultScrubbed), 1u);
  // Fail upward: quarantine is top confidentiality, bottom integrity —
  // never toward public, so a corrupted tag cannot declassify the cell.
  const Label q{Conf::top(), Integ::bottom()};
  EXPECT_EQ(r.acc.scratchpad().cellLabel(0), q);
  EXPECT_EQ(r.acc.scratchpad().rawCell(0), 0u);  // zeroized
  // The quarantined cell is unreadable by everyone below top: key material
  // can no longer be expanded from it...
  EXPECT_FALSE(r.acc.scratchpad()
                   .readCell(0, r.acc.principal(r.alice).authority)
                   .has_value());
  EXPECT_FALSE(
      r.acc.loadKey(r.alice, 1, 0, aes::KeySize::Aes128, Conf::category(1)));
  // ...and a fresh provisioning cycle (which retags the cells) recovers it.
  EXPECT_TRUE(loadKey128(r.acc, r.alice, 1, 0, testKey(), Conf::category(1)));
}

TEST(FaultInjection, ScratchCellFaultCaughtBySlowScrub) {
  Rig r;
  ASSERT_TRUE(r.acc.injectFault(FaultSite::ScratchCell, 1, 17));
  r.acc.run(32);  // slow ring: one cell/slot/register per cycle
  EXPECT_GE(r.acc.stats().faults_detected, 1u);
  EXPECT_EQ(r.acc.scratchpad().rawCell(1), 0u);
}

TEST(FaultInjection, StageTagFaultSquashesBlockAndZeroizesKey) {
  Rig r;
  BlockRequest req;
  req.req_id = 7;
  req.user = r.alice;
  req.key_slot = 1;
  for (auto& b : req.data) b = 0x5a;
  ASSERT_TRUE(r.acc.submit(req));
  r.acc.run(3);
  int stage = -1;
  for (unsigned i = 0; i < r.acc.pipeline().depth(); ++i) {
    if (r.acc.pipeline().stage(i).valid) stage = static_cast<int>(i);
  }
  ASSERT_GE(stage, 0);
  ASSERT_TRUE(
      r.acc.injectFault(FaultSite::StageTag, static_cast<unsigned>(stage), 5));
  r.acc.tick();
  auto resp = r.acc.fetchOutput(r.alice);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->req_id, 7u);
  EXPECT_TRUE(resp->fault_aborted);
  EXPECT_EQ(resp->data, aes::Block{});  // nothing released
  // A corrupted tag could have mislabeled the key's data: the slot is gone.
  EXPECT_FALSE(r.acc.roundKeys().valid(1));
  EXPECT_GE(r.acc.stats().fault_aborted, 1u);
  EXPECT_GE(r.acc.eventCount(SecurityEventKind::FaultDetected), 1u);
}

TEST(FaultInjection, StageDataFaultAbortsButKeepsKey) {
  Rig r;
  BlockRequest req;
  req.req_id = 9;
  req.user = r.alice;
  req.key_slot = 1;
  for (auto& b : req.data) b = 0x11;
  ASSERT_TRUE(r.acc.submit(req));
  r.acc.run(3);
  int stage = -1;
  for (unsigned i = 0; i < r.acc.pipeline().depth(); ++i) {
    if (r.acc.pipeline().stage(i).valid) stage = static_cast<int>(i);
  }
  ASSERT_GE(stage, 0);
  ASSERT_TRUE(r.acc.injectFault(FaultSite::StageData,
                                static_cast<unsigned>(stage), 77));
  r.acc.tick();
  auto resp = r.acc.fetchOutput(r.alice);
  ASSERT_TRUE(resp.has_value());
  EXPECT_TRUE(resp->fault_aborted);
  // Data corruption does not implicate the key material.
  EXPECT_TRUE(r.acc.roundKeys().valid(1));
}

TEST(FaultInjection, RoundKeyFaultNeverDeliversWrongCiphertext) {
  Rig r;
  BlockRequest req;
  req.req_id = 11;
  req.user = r.alice;
  req.key_slot = 1;
  for (auto& b : req.data) b = 0x33;
  ASSERT_TRUE(r.acc.submit(req));
  r.acc.run(2);
  // Corrupt a late round key while the block is in flight: the block will
  // finish its rounds against the corrupted schedule unless the exit guard
  // or the slow scrub ring catches the slot first.
  ASSERT_TRUE(r.acc.injectFault(FaultSite::RoundKey, 1, 9 * 128 + 3 * 8 + 2));
  std::optional<BlockResponse> resp;
  for (unsigned i = 0; i < 80 && !resp; ++i) {
    r.acc.tick();
    resp = r.acc.fetchOutput(r.alice);
  }
  ASSERT_TRUE(resp.has_value());
  EXPECT_TRUE(resp->fault_aborted) << "corrupted-key ciphertext escaped";
  EXPECT_FALSE(r.acc.roundKeys().valid(1));
  EXPECT_GE(r.acc.stats().faults_detected, 1u);
}

TEST(FaultInjection, ConfigRegFaultRestoredToPowerOnDefault) {
  Rig r;
  const std::uint32_t def = r.acc.readConfig("version");
  // Register index 3 in the sorted name table is "version".
  ASSERT_TRUE(r.acc.injectFault(FaultSite::ConfigReg, 3, 12));
  EXPECT_NE(r.acc.readConfig("version"), def);
  r.acc.run(40);  // slow ring period is well under 40 cycles
  EXPECT_EQ(r.acc.readConfig("version"), def);
  EXPECT_GE(r.acc.stats().faults_detected, 1u);
  EXPECT_GE(r.acc.stats().faults_recovered, 1u);
}

TEST(FaultInjection, EventLogIsARingBufferWithExactCounts) {
  AcceleratorConfig cfg;
  cfg.event_log_cap = 4;
  Rig r{cfg};
  // Cell 7 was never provisioned for alice: every write is refused and
  // logged.
  for (unsigned i = 0; i < 10; ++i) {
    EXPECT_FALSE(r.acc.writeKeyCell(r.alice, 7, i));
  }
  EXPECT_LE(r.acc.events().size(), 4u);
  EXPECT_GE(r.acc.eventsOverflowed(), 6u);
  // Per-kind counters survive eviction.
  EXPECT_EQ(r.acc.eventCount(SecurityEventKind::ScratchpadWriteBlocked), 10u);
}

TEST(FaultInjection, ResetStatsClearsCountersOnly) {
  Rig r;
  AccelSession s{r.acc, r.alice, 1};
  aes::Block pt{};
  ASSERT_TRUE(s.encryptBlock(pt).has_value());
  ASSERT_GT(r.acc.stats().completed, 0u);
  const auto cycle = r.acc.cycle();
  r.acc.resetStats();
  EXPECT_EQ(r.acc.stats().accepted, 0u);
  EXPECT_EQ(r.acc.stats().completed, 0u);
  EXPECT_EQ(r.acc.stats().faults_detected, 0u);
  EXPECT_EQ(r.acc.stats().retries, 0u);
  EXPECT_EQ(r.acc.cycle(), cycle);  // device state untouched
  // The device still works after a reset.
  EXPECT_TRUE(s.encryptBlock(pt).has_value());
}

TEST(FaultInjection, UnhardenedDesignLetsDataFaultsEscape) {
  AcceleratorConfig cfg;
  cfg.fault_hardening = false;
  Rig r{cfg};
  aes::Block pt{};
  for (auto& b : pt) b = 0x44;
  BlockRequest req;
  req.req_id = 3;
  req.user = r.alice;
  req.key_slot = 1;
  req.data = pt;
  ASSERT_TRUE(r.acc.submit(req));
  r.acc.run(3);
  int stage = -1;
  for (unsigned i = 0; i < r.acc.pipeline().depth(); ++i) {
    if (r.acc.pipeline().stage(i).valid) stage = static_cast<int>(i);
  }
  ASSERT_GE(stage, 0);
  ASSERT_TRUE(r.acc.injectFault(FaultSite::StageData,
                                static_cast<unsigned>(stage), 50));
  std::optional<BlockResponse> resp;
  for (unsigned i = 0; i < 80 && !resp; ++i) {
    r.acc.tick();
    resp = r.acc.fetchOutput(r.alice);
  }
  ASSERT_TRUE(resp.has_value());
  // The ablation: without parity the upset sails through undetected and the
  // device emits wrong ciphertext as if nothing happened.
  EXPECT_FALSE(resp->fault_aborted);
  const auto golden =
      aes::encryptBlock(pt, aes::expandKey(testKey(), aes::KeySize::Aes128));
  EXPECT_NE(resp->data, golden);
  EXPECT_EQ(r.acc.stats().faults_detected, 0u);
}

// IR-level model of the fail-secure gate, checked with the dynamic label
// tracker: the output mux releases stage data onto the (public) response
// port only when the parity comparator agrees; on mismatch the squash path
// drives zeros. Precise tracking shows the secret never reaches the port.
TEST(FaultInjection, TrackerShowsParityGateKeepsSecretOffPublicPort) {
  using hdl::LabelTerm;
  using hdl::Module;
  const Label kPT = Label::publicTrusted();
  const Label kSecret{Conf::top(), Integ::top()};

  Module m{"failsec_gate"};
  const auto parity_ok = m.input("parity_ok", 1, LabelTerm::of(kPT));
  const auto data = m.input("data", 8, LabelTerm::unconstrained());
  const auto squashed = m.input("squashed", 8, LabelTerm::of(kPT));
  const auto port = m.output("port", 8, LabelTerm::of(kPT));
  m.assign(port, m.mux(m.read(parity_ok), m.read(data), m.read(squashed)));

  ifc::DynamicTracker fail{m, ifc::TrackPrecision::Precise};
  fail.poke("parity_ok", BitVec(1, 0), kPT);  // comparator detected an upset
  fail.poke("data", BitVec(8, 0xAB), kSecret);
  fail.poke("squashed", BitVec(8, 0), kPT);
  fail.step();
  EXPECT_EQ(fail.eventCount(ifc::RuntimeEvent::Kind::OutputLeak), 0u);
  EXPECT_EQ(fail.value("port").toU64(), 0u);

  ifc::DynamicTracker leak{m, ifc::TrackPrecision::Precise};
  leak.poke("parity_ok", BitVec(1, 1), kPT);  // gate bypassed: secret flows
  leak.poke("data", BitVec(8, 0xAB), kSecret);
  leak.poke("squashed", BitVec(8, 0), kPT);
  leak.step();
  EXPECT_GE(leak.eventCount(ifc::RuntimeEvent::Kind::OutputLeak), 1u);
}

// --- Replay traces ----------------------------------------------------------

// The trace text form round-trips losslessly.
TEST(FaultReplay, TraceSerializationRoundTrips) {
  std::vector<soc::FaultRecord> recs;
  soc::FaultRecord a;
  a.cycle = 17;
  a.site = FaultSite::StageTag;
  a.index = 3;
  a.bit = 21;
  a.applied = true;
  soc::FaultRecord b;
  b.cycle = 404;
  b.site = FaultSite::HostSpuriousSubmit;
  b.index = 2;
  b.bit = 9;  // key_slot 4, decrypt
  b.applied = false;
  recs.push_back(a);
  recs.push_back(b);

  const auto parsed = soc::parseTrace(soc::traceToString(recs));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].cycle, 17u);
  EXPECT_EQ(parsed[0].site, FaultSite::StageTag);
  EXPECT_EQ(parsed[0].index, 3u);
  EXPECT_EQ(parsed[0].bit, 21u);
  EXPECT_TRUE(parsed[0].applied);
  EXPECT_EQ(parsed[1].site, FaultSite::HostSpuriousSubmit);
  EXPECT_FALSE(parsed[1].applied);

  EXPECT_THROW(soc::parseTrace("12 not-a-site 0 0 1"), std::invalid_argument);
  EXPECT_THROW(soc::parseTrace("garbage"), std::invalid_argument);
}

// A recorded campaign replays exactly: same workload + replayed trace give
// the same device-side fault counters and the same per-site application
// profile — which is what makes a failing seed debuggable.
TEST(FaultReplay, ReplayedCampaignReproducesRecordedRun) {
  auto runOnce = [](soc::FaultInjector* (*mk)(AesAccelerator&,
                                              std::vector<unsigned>,
                                              const std::string&),
                    const std::string& trace_text, std::string* trace_out,
                    AesAccelerator::Stats* stats_out,
                    soc::FaultCampaignReport* report_out) {
    AcceleratorConfig cfg;
    cfg.out_buffer_depth = 16;
    AesAccelerator acc{cfg};
    acc.addUser(Principal::supervisor());
    const unsigned alice = acc.addUser(Principal::user("alice", 1));
    EXPECT_TRUE(loadKey128(acc, alice, 1, 0, testKey(), Conf::category(1)));

    soc::FaultInjector* inj = mk(acc, {alice}, trace_text);
    acc.setTickHook([&] { inj->tick(); });

    SessionOptions opts;
    opts.timeout_cycles = 600;
    opts.max_retries = 2;
    opts.backoff_cycles = 8;
    AccelSession session{acc, alice, 1, opts};
    for (unsigned i = 0; i < 24; ++i) {
      aes::Block pt;
      for (unsigned b = 0; b < 16; ++b)
        pt[b] = static_cast<std::uint8_t>(i + b);
      const auto r = session.encryptBlock(pt);
      if (!r.has_value() && r.status() == AccelStatus::Rejected) {
        // Fail-secure zeroization: re-provision, as a resilient host would.
        loadKey128(acc, alice, 1, 0, testKey(), Conf::category(1));
      }
    }
    acc.setTickHook(nullptr);
    inj->releaseStuckReceivers();
    *trace_out = soc::traceToString(inj->trace());
    *stats_out = acc.stats();
    *report_out = inj->report();
    delete inj;
  };

  // Record with a live (seeded-RNG) campaign…
  std::string trace_a;
  AesAccelerator::Stats stats_a;
  soc::FaultCampaignReport report_a;
  runOnce(
      [](AesAccelerator& acc, std::vector<unsigned> users,
         const std::string&) {
        soc::FaultCampaignConfig fcfg;
        fcfg.seed = 321;
        fcfg.fault_rate = 0.02;
        return new soc::FaultInjector{acc, fcfg, std::move(users)};
      },
      "", &trace_a, &stats_a, &report_a);
  ASSERT_GT(report_a.injected, 0u);

  // …then replay the dumped trace against a fresh rig and the same traffic.
  std::string trace_b;
  AesAccelerator::Stats stats_b;
  soc::FaultCampaignReport report_b;
  runOnce(
      [](AesAccelerator& acc, std::vector<unsigned> users,
         const std::string& text) {
        soc::FaultCampaignConfig fcfg;
        return new soc::FaultInjector{acc, fcfg, std::move(users),
                                      soc::parseTrace(text)};
      },
      trace_a, &trace_b, &stats_b, &report_b);

  EXPECT_EQ(report_b.injected, report_a.injected);
  EXPECT_EQ(report_b.applied, report_a.applied);
  EXPECT_EQ(report_b.host_drops, report_a.host_drops);
  EXPECT_EQ(report_b.host_duplicates, report_a.host_duplicates);
  EXPECT_EQ(report_b.host_stuck, report_a.host_stuck);
  EXPECT_EQ(report_b.host_spurious, report_a.host_spurious);
  for (unsigned s = 0; s < kHwFaultSites; ++s) {
    EXPECT_EQ(report_b.applied_by_site[s], report_a.applied_by_site[s])
        << toString(static_cast<FaultSite>(s));
    EXPECT_EQ(report_b.detected_by_site[s], report_a.detected_by_site[s])
        << toString(static_cast<FaultSite>(s));
  }
  EXPECT_EQ(stats_b.faults_detected, stats_a.faults_detected);
  EXPECT_EQ(stats_b.fault_aborted, stats_a.fault_aborted);
  EXPECT_EQ(stats_b.completed, stats_a.completed);
  // The replay emitted the identical trace.
  EXPECT_EQ(trace_b, trace_a);
}

}  // namespace
}  // namespace aesifc::accel
