#include "ifc/ni_check.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ifc/checker.h"

namespace aesifc::ifc {
namespace {

using hdl::ExprId;
using hdl::LabelTerm;
using hdl::Module;
using hdl::SignalId;
using lattice::Conf;
using lattice::Integ;
using lattice::Label;

const Label kPT = Label::publicTrusted();
const Label kSecret{Conf::top(), Integ::top()};

TEST(NiCheck, CleanFlowIsNoninterferent) {
  Module m{"ok"};
  const auto lo = m.input("lo", 4, LabelTerm::of(kPT));
  const auto hi = m.input("hi", 4, LabelTerm::of(kSecret));
  const auto o = m.output("o", 4, LabelTerm::of(kPT));
  m.assign(o, m.add(m.read(lo), m.c(4, 1)));
  (void)hi;
  const auto r = checkNoninterference(m, kPT);
  EXPECT_EQ(r.status, NiResult::Status::Noninterferent);
}

TEST(NiCheck, DirectLeakProducesWitness) {
  Module m{"leak"};
  const auto lo = m.input("lo", 4, LabelTerm::of(kPT));
  const auto hi = m.input("hi", 4, LabelTerm::of(kSecret));
  const auto o = m.output("o", 4, LabelTerm::of(kPT));
  m.assign(o, m.bxor(m.read(lo), m.read(hi)));
  const auto r = checkNoninterference(m, kPT);
  ASSERT_EQ(r.status, NiResult::Status::Interference);
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_EQ(r.witness->output, "o");
  const auto text = r.witness->toString();
  EXPECT_NE(text.find("interference"), std::string::npos);
  EXPECT_NE(text.find("hi="), std::string::npos);
}

TEST(NiCheck, ImplicitLeakProducesWitness) {
  Module m{"impl"};
  const auto hi = m.input("hi", 1, LabelTerm::of(kSecret));
  const auto o = m.output("o", 4, LabelTerm::of(kPT));
  m.assign(o, m.mux(m.read(hi), m.c(4, 1), m.c(4, 2)));
  EXPECT_EQ(checkNoninterference(m, kPT).status,
            NiResult::Status::Interference);
}

TEST(NiCheck, MaskedSecretIsNoninterferent) {
  // Semantically dead secret path: NI holds even though a naive label join
  // would reject — the semantic check is strictly more precise.
  Module m{"mask"};
  const auto hi = m.input("hi", 4, LabelTerm::of(kSecret));
  const auto o = m.output("o", 4, LabelTerm::of(kPT));
  m.assign(o, m.band(m.read(hi), m.c(4, 0)));
  EXPECT_EQ(checkNoninterference(m, kPT).status,
            NiResult::Status::Noninterferent);
}

TEST(NiCheck, DependentLabelsHandledPerValuation) {
  // Data rides a port whose level switches with a public selector.
  Module m{"dep"};
  const auto sel = m.input("sel", 1, LabelTerm::of(kPT));
  const auto d = m.input("d", 4, LabelTerm::dependent(sel, {kPT, kSecret}));
  const auto o = m.output("o", 4, LabelTerm::dependent(sel, {kPT, kSecret}));
  m.assign(o, m.read(d));
  // Observer at PT: when sel=1, both d and o are secret-level and drop out
  // of the view; when sel=0 both are visible and equal. NI holds.
  EXPECT_EQ(checkNoninterference(m, kPT).status,
            NiResult::Status::Noninterferent);

  // A variant that publishes the port regardless of phase leaks.
  Module m2{"dep2"};
  const auto sel2 = m2.input("sel", 1, LabelTerm::of(kPT));
  const auto d2 =
      m2.input("d", 4, LabelTerm::dependent(sel2, {kPT, kSecret}));
  const auto o2 = m2.output("o", 4, LabelTerm::of(kPT));
  m2.assign(o2, m2.read(d2));
  EXPECT_EQ(checkNoninterference(m2, kPT).status,
            NiResult::Status::Interference);
}

TEST(NiCheck, IntegrityObserverSeesContamination) {
  // An untrusted input driving a trusted output is interference for the
  // trusted observer.
  Module m{"integ"};
  const auto u = m.input("u", 2, LabelTerm::of(Label::publicUntrusted()));
  const auto o = m.output("o", 2, LabelTerm::of(kPT));
  m.assign(o, m.read(u));
  EXPECT_EQ(checkNoninterference(m, kPT).status,
            NiResult::Status::Interference);
}

TEST(NiCheck, UnsupportedShapesReported) {
  Module m{"seq"};
  const auto a = m.input("a", 1, LabelTerm::of(kPT));
  const auto r = m.reg("r", 1, LabelTerm::of(kPT));
  const auto o = m.output("o", 1, LabelTerm::of(kPT));
  m.regWrite(r, m.read(a));
  m.assign(o, m.read(r));
  EXPECT_EQ(checkNoninterference(m, kPT).status,
            NiResult::Status::Unsupported);

  Module m2{"wide"};
  const auto w = m2.input("w", 24, LabelTerm::of(kPT));
  const auto o2 = m2.output("o", 24, LabelTerm::of(kPT));
  m2.assign(o2, m2.read(w));
  EXPECT_EQ(checkNoninterference(m2, kPT, 18).status,
            NiResult::Status::Unsupported);

  Module m3{"dg"};
  const auto s = m3.input("s", 2, LabelTerm::of(kSecret));
  const auto o3 = m3.output("o", 2, LabelTerm::of(kPT));
  m3.declassify(o3, m3.read(s), kPT, lattice::Principal::supervisor());
  EXPECT_EQ(checkNoninterference(m3, kPT).status,
            NiResult::Status::Unsupported);
}

// --- The meta-theorem, fuzzed: checker-accepted combinational designs are
// semantically noninterferent at every annotated observer level. -------------------

Label randomLabel(Rng& rng) {
  switch (rng.below(6)) {
    case 0:
    case 1: return kPT;
    case 2:
    case 3: return kSecret;
    case 4: return Label::publicUntrusted();
    default: return Label{Conf::category(1), Integ::top()};
  }
}

Module randomCombModule(std::uint64_t seed) {
  Rng rng{seed};
  Module m{"fuzzcomb"};
  const auto sel = m.input("sel", 1, LabelTerm::of(kPT));
  std::vector<ExprId> wide{m.c(4, rng.next() & 0xf)};
  std::vector<ExprId> bits{m.read(sel), m.c(1, 1)};

  const unsigned n_inputs = 2 + static_cast<unsigned>(rng.below(2));
  for (unsigned i = 0; i < n_inputs; ++i) {
    LabelTerm term =
        rng.chance(0.3)
            ? LabelTerm::dependent(sel, {randomLabel(rng), randomLabel(rng)})
            : LabelTerm::of(randomLabel(rng));
    wide.push_back(
        m.read(m.input("in" + std::to_string(i), 4, std::move(term))));
  }
  const unsigned n_nodes = 3 + static_cast<unsigned>(rng.below(8));
  for (unsigned i = 0; i < n_nodes; ++i) {
    auto pw = [&] { return wide[rng.below(wide.size())]; };
    auto pb = [&] { return bits[rng.below(bits.size())]; };
    switch (rng.below(7)) {
      case 0: wide.push_back(m.band(pw(), pw())); break;
      case 1: wide.push_back(m.bor(pw(), pw())); break;
      case 2: wide.push_back(m.bxor(pw(), pw())); break;
      case 3: wide.push_back(m.add(pw(), pw())); break;
      case 4: wide.push_back(m.mux(pb(), pw(), pw())); break;
      case 5: bits.push_back(m.eq(pw(), pw())); break;
      default: wide.push_back(m.bnot(pw())); break;
    }
  }
  const unsigned n_out = 1 + static_cast<unsigned>(rng.below(2));
  for (unsigned i = 0; i < n_out; ++i) {
    LabelTerm term =
        rng.chance(0.3)
            ? LabelTerm::dependent(sel, {randomLabel(rng), randomLabel(rng)})
            : LabelTerm::of(randomLabel(rng));
    const auto o =
        m.output("out" + std::to_string(i), 4, std::move(term));
    m.assign(o, wide[rng.below(wide.size())]);
  }
  return m;
}

TEST(NiCheck, CheckerAcceptanceImpliesSemanticNoninterference) {
  unsigned accepted = 0, rejected = 0;
  for (std::uint64_t seed = 1; seed <= 400; ++seed) {
    Module m = randomCombModule(seed);
    if (!check(m).ok()) {
      ++rejected;
      continue;
    }
    ++accepted;
    const auto r = checkNoninterferenceAllObservers(m);
    EXPECT_EQ(r.status, NiResult::Status::Noninterferent)
        << "seed " << seed << "\n"
        << (r.witness ? r.witness->toString() : r.note) << "\n"
        << m.dump();
  }
  EXPECT_GT(accepted, 30u);
  EXPECT_GT(rejected, 30u);
}

}  // namespace
}  // namespace aesifc::ifc
