#include "ifc/checker.h"

#include <gtest/gtest.h>

#include "hdl/ir.h"

namespace aesifc::ifc {
namespace {

using hdl::LabelTerm;
using hdl::Module;
using lattice::Conf;
using lattice::Integ;
using lattice::Label;
using lattice::Principal;

const Label kPT = Label::publicTrusted();
const Label kPU = Label::publicUntrusted();
const Label kSecret{Conf::top(), Integ::top()};

// --- Explicit flows -----------------------------------------------------------

TEST(Checker, AllowsUpwardFlow) {
  Module m{"up"};
  const auto a = m.input("a", 8, LabelTerm::of(kPT));
  const auto o = m.output("o", 8, LabelTerm::of(kSecret));
  m.assign(o, m.read(a));
  EXPECT_TRUE(check(m).ok());
}

TEST(Checker, RejectsDownwardFlow) {
  Module m{"down"};
  const auto a = m.input("a", 8, LabelTerm::of(kSecret));
  const auto o = m.output("o", 8, LabelTerm::of(kPT));
  m.assign(o, m.read(a));
  const auto report = check(m);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, ViolationKind::FlowViolation);
  EXPECT_EQ(report.violations[0].sink, "o");
  EXPECT_EQ(report.violations[0].source, "a");
}

TEST(Checker, RejectsIntegrityViolation) {
  Module m{"integ"};
  const auto a = m.input("a", 8, LabelTerm::of(kPU));
  const auto o = m.output("o", 8, LabelTerm::of(kPT));  // trusted sink
  m.assign(o, m.read(a));
  EXPECT_EQ(check(m).count(ViolationKind::FlowViolation), 1u);
}

TEST(Checker, JoinOfOperands) {
  Module m{"join"};
  const auto a = m.input("a", 8, LabelTerm::of(Label{Conf::category(1), Integ::top()}));
  const auto b = m.input("b", 8, LabelTerm::of(Label{Conf::category(2), Integ::top()}));
  // Sink covering both categories: fine.
  const auto o1 = m.output("o1", 8,
                           LabelTerm::of(Label{Conf::category(1).join(Conf::category(2)),
                                               Integ::top()}));
  m.assign(o1, m.bxor(m.read(a), m.read(b)));
  EXPECT_TRUE(check(m).ok());

  // Sink covering only one category: rejected.
  Module m2{"join2"};
  const auto a2 = m2.input("a", 8, LabelTerm::of(Label{Conf::category(1), Integ::top()}));
  const auto b2 = m2.input("b", 8, LabelTerm::of(Label{Conf::category(2), Integ::top()}));
  const auto o2 = m2.output("o", 8,
                            LabelTerm::of(Label{Conf::category(1), Integ::top()}));
  m2.assign(o2, m2.bxor(m2.read(a2), m2.read(b2)));
  EXPECT_FALSE(check(m2).ok());
}

TEST(Checker, ConstantsArePublic) {
  Module m{"const"};
  const auto o = m.output("o", 8, LabelTerm::of(kPT));
  m.assign(o, m.c(8, 0x42));
  EXPECT_TRUE(check(m).ok());
}

TEST(Checker, FlowsThroughWires) {
  Module m{"wires"};
  const auto a = m.input("a", 8, LabelTerm::of(kSecret));
  const auto w1 = m.wire("w1", 8);
  const auto w2 = m.wire("w2", 8);
  const auto o = m.output("o", 8, LabelTerm::of(kPT));
  m.assign(w1, m.read(a));
  m.assign(w2, m.bnot(m.read(w1)));
  m.assign(o, m.read(w2));
  EXPECT_FALSE(check(m).ok());
}

// --- Implicit flows -------------------------------------------------------------

TEST(Checker, MuxConditionIsImplicitFlow) {
  Module m{"mux"};
  const auto s = m.input("s", 1, LabelTerm::of(kSecret));
  const auto o = m.output("o", 8, LabelTerm::of(kPT));
  // Both data branches are public constants; the secret condition leaks.
  m.assign(o, m.mux(m.read(s), m.c(8, 1), m.c(8, 0)));
  const auto report = check(m);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].sink, "o");
}

TEST(Checker, RegisterEnableIsTimingFlow) {
  Module m{"entime"};
  const auto s = m.input("s", 1, LabelTerm::of(kSecret));
  const auto d = m.input("d", 8, LabelTerm::of(kPT));
  const auto r = m.reg("r", 8, LabelTerm::of(kPT));
  m.regWrite(r, m.read(d), m.read(s));  // update time depends on a secret
  const auto report = check(m);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, ViolationKind::TimingViolation);
  EXPECT_EQ(report.violations[0].sink, "r");
}

TEST(Checker, RegisterDataFlowChecked) {
  Module m{"regdata"};
  const auto s = m.input("s", 8, LabelTerm::of(kSecret));
  const auto r = m.reg("r", 8, LabelTerm::of(kPT));
  m.regWrite(r, m.read(s), m.c(1, 1));
  const auto report = check(m);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, ViolationKind::FlowViolation);
}

TEST(Checker, SecretFeedbackIntoSecretRegIsFine) {
  Module m{"fb"};
  const auto s = m.input("s", 8, LabelTerm::of(kSecret));
  const auto r = m.reg("r", 8, LabelTerm::of(kSecret));
  m.regWrite(r, m.bxor(m.read(r), m.read(s)), m.c(1, 1));
  EXPECT_TRUE(check(m).ok());
}

// --- Annotation hygiene -----------------------------------------------------------

TEST(Checker, FlagsUnlabeledStateElements) {
  Module m{"nolabel"};
  const auto a = m.input("a", 8, LabelTerm::unconstrained());
  const auto o = m.output("o", 8, LabelTerm::of(kPT));
  m.assign(o, m.read(a));
  EXPECT_EQ(check(m).count(ViolationKind::MissingAnnotation), 1u);
}

TEST(Checker, UnconstrainedWiresNeedNoCheck) {
  Module m{"freewire"};
  const auto a = m.input("a", 8, LabelTerm::of(kSecret));
  const auto w = m.wire("w", 8);  // inferred, not checked
  const auto o = m.output("o", 8, LabelTerm::of(kSecret));
  m.assign(w, m.read(a));
  m.assign(o, m.read(w));
  EXPECT_TRUE(check(m).ok());
}

// --- Dependent labels ---------------------------------------------------------------

TEST(Checker, DependentLabelResolvesPerValue) {
  Module m{"dep"};
  const auto way = m.input("way", 1, LabelTerm::of(kPT));
  const auto d = m.input("d", 8, LabelTerm::dependent(way, {kPT, kPU}));
  // Trusted sink: ok only when way==0, so the checker must reject (way==1
  // valuation exhibits the violation).
  const auto o = m.output("o", 8, LabelTerm::of(kPT));
  m.assign(o, m.read(d));
  const auto report = check(m);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].valuation.find("way=1"), std::string::npos);
}

TEST(Checker, DependentSinkAcceptsMatchingSource) {
  Module m{"dep2"};
  const auto way = m.input("way", 1, LabelTerm::of(kPT));
  const auto d = m.input("d", 8, LabelTerm::dependent(way, {kPT, kPU}));
  const auto o = m.output("o", 8, LabelTerm::dependent(way, {kPT, kPU}));
  m.assign(o, m.read(d));
  EXPECT_TRUE(check(m).ok());
}

TEST(Checker, MuxPruningWithPinnedSelector) {
  Module m{"prune"};
  const auto way = m.input("way", 1, LabelTerm::of(kPT));
  const auto secret = m.input("sec", 8, LabelTerm::of(kSecret));
  const auto pub = m.input("pub", 8, LabelTerm::of(kPT));
  // o is public only when way==0 selects the public branch; the label table
  // says way==1 makes the output secret, so both valuations check out.
  const auto o = m.output(
      "o", 8, LabelTerm::dependent(way, {kPT, kSecret}));
  m.assign(o, m.mux(m.eq(m.read(way), m.c(1, 1)), m.read(secret), m.read(pub)));
  EXPECT_TRUE(check(m).ok());
}

TEST(Checker, SelectorMustBeLabeled) {
  Module m{"selbad"};
  const auto sel = m.input("sel", 1, LabelTerm::unconstrained());
  const auto d = m.input("d", 8, LabelTerm::dependent(sel, {kPT, kPU}));
  const auto o = m.output("o", 8, LabelTerm::dependent(sel, {kPT, kPU}));
  m.assign(o, m.read(d));
  EXPECT_GE(check(m).count(ViolationKind::IllFormedDependent), 1u);
}

TEST(Checker, SelectorLabelMustFlowToLevels) {
  Module m{"selflow"};
  // A *secret* selector classifying public data leaks the selector.
  const auto sel = m.input("sel", 1, LabelTerm::of(kSecret));
  const auto d = m.input("d", 8, LabelTerm::dependent(sel, {kPT, kPU}));
  const auto o = m.output("o", 8, LabelTerm::dependent(sel, {kPT, kPU}));
  m.assign(o, m.read(d));
  EXPECT_GE(check(m).count(ViolationKind::IllFormedDependent), 1u);
}

TEST(Checker, EnableDecidedZeroMeansNoFlow) {
  Module m{"endec"};
  const auto sel = m.input("sel", 1, LabelTerm::of(kPT));
  const auto secret = m.input("sec", 8,
                              LabelTerm::dependent(sel, {kPT, kSecret}));
  const auto r = m.reg("r", 8, LabelTerm::of(kPT));
  // Write only when sel==0, i.e. only when the source is public.
  m.regWrite(r, m.read(secret), m.eq(m.read(sel), m.c(1, 0)));
  EXPECT_TRUE(check(m).ok());
}

// --- Downgrades -----------------------------------------------------------------------

TEST(Checker, DeclassifyByTrustedPrincipalAccepted) {
  Module m{"dg1"};
  const auto s = m.input("s", 8, LabelTerm::of(Label{Conf::top(), Integ::top()}));
  const auto o = m.output("o", 8, LabelTerm::of(kPT));
  m.declassify(o, m.read(s), kPT, Principal::supervisor());
  EXPECT_TRUE(check(m).ok());
}

TEST(Checker, DeclassifyByUntrustedPrincipalRejected) {
  Module m{"dg2"};
  const auto s = m.input("s", 8,
                         LabelTerm::of(Label{Conf::top(), Integ::bottom()}));
  const auto o = m.output("o", 8, LabelTerm::of(kPU));
  m.declassify(o, m.read(s), kPU,
               Principal{"mallory", Label{Conf::bottom(), Integ::bottom()}});
  EXPECT_EQ(check(m).count(ViolationKind::DowngradeRejected), 1u);
}

TEST(Checker, DeclassifyCannotAlsoEndorse) {
  Module m{"dg3"};
  const auto s = m.input("s", 8,
                         LabelTerm::of(Label{Conf::top(), Integ::bottom()}));
  // Target claims full integrity: declassification may not raise it.
  const auto o = m.output("o", 8, LabelTerm::of(kPT));
  m.declassify(o, m.read(s), kPT, Principal::supervisor());
  EXPECT_EQ(check(m).count(ViolationKind::DowngradeRejected), 1u);
}

TEST(Checker, EndorseByReaderAccepted) {
  Module m{"en1"};
  const auto s = m.input("s", 8, LabelTerm::of(kPU));
  const auto o = m.output("o", 8, LabelTerm::of(kPT));
  m.endorse(o, m.read(s), kPT, Principal::supervisor());
  EXPECT_TRUE(check(m).ok());
}

TEST(Checker, EndorseBeyondAuthorityRejected) {
  Module m{"en2"};
  const auto s = m.input("s", 8, LabelTerm::of(kPU));
  const auto o = m.output("o", 8, LabelTerm::of(kPT));
  m.endorse(o, m.read(s), kPT, Principal::user("alice", 1));
  EXPECT_EQ(check(m).count(ViolationKind::DowngradeRejected), 1u);
}

TEST(Checker, DowngradeResultMustFlowToSink) {
  Module m{"dg4"};
  const auto s = m.input("s", 8, LabelTerm::of(kSecret));
  // Sink requires untrusted integrity is fine but conf category 1.
  const auto o = m.output("o", 8,
                          LabelTerm::of(Label{Conf::bottom(), Integ::top()}));
  // Declassify only down to category 1, which does not flow to bottom conf.
  m.declassify(o, m.read(s), Label{Conf::category(1), Integ::top()},
               Principal::supervisor());
  EXPECT_EQ(check(m).count(ViolationKind::FlowViolation), 1u);
}

// --- Dedup & reporting ------------------------------------------------------------------

TEST(Checker, DedupAcrossValuations) {
  Module m{"dedup"};
  const auto sel = m.input("sel", 2, LabelTerm::of(kPT));
  const auto s = m.input("s", 8, LabelTerm::of(kSecret));
  const auto o = m.output("o", 8, LabelTerm::of(kPT));
  // Violates under every one of the 4 valuations, but reported once.
  m.assign(o, m.read(s));
  (void)sel;
  const auto d = m.input("d", 8, LabelTerm::dependent(sel, {kPT, kPT, kPT, kPT}));
  const auto o2 = m.output("o2", 8, LabelTerm::of(kPT));
  m.assign(o2, m.read(d));
  EXPECT_EQ(check(m).count(ViolationKind::FlowViolation), 1u);
}

TEST(Checker, ReportRendering) {
  Module m{"rep"};
  const auto s = m.input("s", 8, LabelTerm::of(kSecret));
  const auto o = m.output("o", 8, LabelTerm::of(kPT));
  m.assign(o, m.read(s));
  const auto report = check(m);
  const auto text = report.toString();
  EXPECT_NE(text.find("FAILED"), std::string::npos);
  EXPECT_NE(text.find("o"), std::string::npos);
  EXPECT_TRUE(report.mentionsSink("o"));
  EXPECT_FALSE(report.mentionsSink("nope"));
}

}  // namespace
}  // namespace aesifc::ifc
