// Static verification of the paper's example designs (Figs. 3, 5, 6, 8 and
// Section 3.2.2): the secure variants must check clean, and each insecure
// variant must be rejected with the violation kind the paper describes.

#include <gtest/gtest.h>

#include "ifc/checker.h"
#include "rtl/verif_models.h"
#include "sim/simulator.h"

namespace aesifc::rtl {
namespace {

using ifc::ViolationKind;

// --- Fig. 3: cache tags with dependent labels ---------------------------------

TEST(CacheTags, SecureVariantVerifies) {
  auto m = buildCacheTags(/*buggy=*/false);
  const auto report = ifc::check(m);
  EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(CacheTags, BuggyVariantRejected) {
  auto m = buildCacheTags(/*buggy=*/true);
  const auto report = ifc::check(m);
  ASSERT_FALSE(report.ok());
  // Untrusted tag_i (way==1) contaminates the trusted array.
  EXPECT_TRUE(report.mentionsSink("tag_0_0"));
  EXPECT_GE(report.count(ViolationKind::FlowViolation), 1u);
}

TEST(CacheTags, SimulatesLikeARealTagStore) {
  auto m = buildCacheTags(false);
  sim::Simulator s{m};
  // Write 0x1234 to way 0 entry 2, then read it back.
  s.poke("we", BitVec(1, 1));
  s.poke("way", BitVec(1, 0));
  s.poke("index", BitVec(2, 2));
  s.poke("tag_i", BitVec(19, 0x1234));
  s.step();
  s.poke("we", BitVec(1, 0));
  s.evalComb();
  EXPECT_EQ(s.peek("tag_o").toU64(), 0x1234u);
  // The other way is untouched.
  s.poke("way", BitVec(1, 1));
  s.evalComb();
  EXPECT_EQ(s.peek("tag_o").toU64(), 0u);
}

// --- Fig. 6: timing leak through `valid` ----------------------------------------

TEST(AesControl, ConstantTimeVariantVerifies) {
  auto m = buildAesControl(/*leaky=*/false);
  const auto report = ifc::check(m);
  EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(AesControl, LeakyVariantFlagsValid) {
  auto m = buildAesControl(/*leaky=*/true);
  const auto report = ifc::check(m);
  ASSERT_FALSE(report.ok());
  // The paper's Fig. 6: the tool infers a key-tainted label for `valid`
  // annotated public, and reports the mismatch.
  EXPECT_TRUE(report.mentionsSink("valid")) << report.toString();
}

TEST(AesControl, LeakyVariantReallyVariesLatency) {
  // Confirm the leak is real: completion time depends on the key bit.
  auto m = buildAesControl(true);
  auto latency = [&](bool key_bit) {
    sim::Simulator s{m};
    s.poke("key_bit", BitVec(1, key_bit ? 1 : 0));
    s.poke("start", BitVec(1, 1));
    s.step();
    s.poke("start", BitVec(1, 0));
    for (unsigned t = 0; t < 40; ++t) {
      if (s.peek("valid").toU64() == 1) return t;
      s.step();
    }
    return 999u;
  };
  EXPECT_NE(latency(false), latency(true));
}

TEST(AesControl, FixedVariantIsConstantTime) {
  auto m = buildAesControl(false);
  auto latency = [&](bool key_bit) {
    sim::Simulator s{m};
    s.poke("key_bit", BitVec(1, key_bit ? 1 : 0));
    s.poke("start", BitVec(1, 1));
    s.step();
    s.poke("start", BitVec(1, 0));
    for (unsigned t = 0; t < 40; ++t) {
      if (s.peek("valid").toU64() == 1) return t;
      s.step();
    }
    return 999u;
  };
  EXPECT_EQ(latency(false), latency(true));
}

// --- Fig. 6 right / Section 3.2.2: ciphertext release ----------------------------

TEST(CiphertextRelease, WithoutDeclassRejected) {
  auto m = buildCiphertextRelease(ReleaseScenario::NoDeclass);
  const auto report = ifc::check(m);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.mentionsSink("ciphertext"));
  EXPECT_GE(report.count(ViolationKind::FlowViolation), 1u);
}

TEST(CiphertextRelease, UserKeyDeclassAccepted) {
  auto m = buildCiphertextRelease(ReleaseScenario::UserKey);
  const auto report = ifc::check(m);
  EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(CiphertextRelease, MasterKeyByUserRejected) {
  auto m = buildCiphertextRelease(ReleaseScenario::MasterKeyUser);
  const auto report = ifc::check(m);
  ASSERT_FALSE(report.ok());
  EXPECT_GE(report.count(ViolationKind::DowngradeRejected), 1u);
}

TEST(CiphertextRelease, MasterKeyBySupervisorAccepted) {
  auto m = buildCiphertextRelease(ReleaseScenario::MasterKeySupervisor);
  const auto report = ifc::check(m);
  EXPECT_TRUE(report.ok()) << report.toString();
}

// --- Fig. 8: meet-gated stall ------------------------------------------------------

TEST(StallPipeline, MeetGatedVariantVerifies) {
  auto m = buildStallPipeline(/*meet_gated=*/true);
  const auto report = ifc::check(m);
  EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(StallPipeline, UngatedVariantHasTimingChannel) {
  auto m = buildStallPipeline(/*meet_gated=*/false);
  const auto report = ifc::check(m);
  ASSERT_FALSE(report.ok());
  EXPECT_GE(report.count(ViolationKind::TimingViolation), 1u)
      << report.toString();
}

TEST(StallPipeline, GatedStallStillWorksWhenLegal) {
  // With every stage and the waiting input at the requester's level, the
  // stall is within the meet and freezes the pipeline.
  auto m = buildStallPipeline(true);
  sim::Simulator s{m};
  s.poke("in_tag", BitVec(2, 1));
  s.poke("req_tag", BitVec(2, 1));
  s.poke("stall_req", BitVec(1, 0));
  s.poke("in_data", BitVec(8, 0xaa));
  s.step();  // s1 <= 0xaa
  s.poke("in_data", BitVec(8, 0xbb));
  s.step();  // s1 <= 0xbb, s2 <= 0xaa
  EXPECT_EQ(s.peek("out_data").toU64(), 0xaau);

  s.poke("stall_req", BitVec(1, 1));  // legal: req level 1, all tags level 1
  s.poke("in_data", BitVec(8, 0xcc));
  s.step();
  // Frozen: the output still shows 0xaa and s1 still holds 0xbb.
  EXPECT_EQ(s.peek("out_data").toU64(), 0xaau);

  s.poke("stall_req", BitVec(1, 0));
  s.step();
  EXPECT_EQ(s.peek("out_data").toU64(), 0xbbu);  // movement resumed
}

TEST(StallPipeline, IllegalStallIsIgnoredAtRuntime) {
  auto m = buildStallPipeline(true);
  sim::Simulator s{m};
  s.poke("in_tag", BitVec(2, 1));
  s.poke("req_tag", BitVec(2, 2));    // requester above the pipeline meet
  s.poke("stall_req", BitVec(1, 1));  // continuously requests a stall
  s.poke("in_data", BitVec(8, 0xaa));
  s.step();
  s.poke("in_data", BitVec(8, 0xbb));
  s.step();
  // The pipeline kept moving despite the request: 0xaa is at the output.
  EXPECT_EQ(s.peek("out_data").toU64(), 0xaau);
  s.step();
  EXPECT_EQ(s.peek("out_data").toU64(), 0xbbu);
}

// --- Fig. 5: tagged scratchpad -------------------------------------------------------

TEST(Scratchpad, CheckedVariantVerifies) {
  auto m = buildTaggedScratchpad(/*checked=*/true);
  const auto report = ifc::check(m);
  EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(Scratchpad, UncheckedVariantRejected) {
  auto m = buildTaggedScratchpad(/*checked=*/false);
  const auto report = ifc::check(m);
  ASSERT_FALSE(report.ok());
  // Both the overflow write path and the read path must be flagged.
  EXPECT_TRUE(report.mentionsSink("cell_0") || report.mentionsSink("cell_1") ||
              report.mentionsSink("cell_2") || report.mentionsSink("cell_3"));
  EXPECT_TRUE(report.mentionsSink("rd_data"));
}

TEST(Scratchpad, RuntimeTagCheckBlocksMismatchedWrite) {
  auto m = buildTaggedScratchpad(true);
  sim::Simulator s{m};
  // Cell 1 is configured at level 2; a level-1 writer must be blocked.
  s.poke("cell_tag_0", BitVec(2, 1));
  s.poke("cell_tag_1", BitVec(2, 2));
  s.poke("cell_tag_2", BitVec(2, 1));
  s.poke("cell_tag_3", BitVec(2, 1));
  s.poke("we", BitVec(1, 1));
  s.poke("addr", BitVec(2, 1));
  s.poke("wr_tag", BitVec(2, 1));
  s.poke("wr_data", BitVec(8, 0x66));
  s.poke("rd_tag", BitVec(2, 2));
  s.step();
  s.poke("we", BitVec(1, 0));
  s.poke("addr", BitVec(2, 1));
  s.evalComb();
  EXPECT_EQ(s.peek("rd_data").toU64(), 0u);  // write was blocked

  // Matching tag writes succeed.
  s.poke("we", BitVec(1, 1));
  s.poke("wr_tag", BitVec(2, 2));
  s.step();
  s.poke("we", BitVec(1, 0));
  s.evalComb();
  EXPECT_EQ(s.peek("rd_data").toU64(), 0x66u);
}

TEST(Scratchpad, RuntimeTagCheckBlocksMismatchedRead) {
  auto m = buildTaggedScratchpad(true);
  sim::Simulator s{m};
  s.poke("cell_tag_0", BitVec(2, 2));
  s.poke("cell_tag_1", BitVec(2, 1));
  s.poke("cell_tag_2", BitVec(2, 1));
  s.poke("cell_tag_3", BitVec(2, 1));
  s.poke("we", BitVec(1, 1));
  s.poke("addr", BitVec(2, 0));
  s.poke("wr_tag", BitVec(2, 2));
  s.poke("wr_data", BitVec(8, 0x99));
  s.step();
  s.poke("we", BitVec(1, 0));
  // Reader at level 1 must see zeros for a level-2 cell.
  s.poke("rd_tag", BitVec(2, 1));
  s.evalComb();
  EXPECT_EQ(s.peek("rd_data").toU64(), 0u);
  // The owner reads it fine.
  s.poke("rd_tag", BitVec(2, 2));
  s.evalComb();
  EXPECT_EQ(s.peek("rd_data").toU64(), 0x99u);
}

}  // namespace
}  // namespace aesifc::rtl
