#include "soc/workload.h"

#include <gtest/gtest.h>

namespace aesifc::soc {
namespace {

using accel::AcceleratorConfig;
using accel::AesAccelerator;
using accel::SecurityMode;

AcceleratorConfig cfgOf(SecurityMode mode, bool coarse = false) {
  AcceleratorConfig c;
  c.mode = mode;
  c.coarse_grained = coarse;
  return c;
}

TEST(Workload, ProtectedMultiTenantTrafficIsCorrect) {
  AesAccelerator acc{cfgOf(SecurityMode::Protected)};
  const auto setup = setupTenants(acc, 3);
  WorkloadConfig w;
  w.blocks_per_user = 128;
  const auto r = runSharedWorkload(acc, setup, w);
  EXPECT_TRUE(r.all_correct) << r.mismatches << " mismatches";
  EXPECT_EQ(r.blocks_completed, 3u * 128u);
}

TEST(Workload, BaselineMultiTenantTrafficIsCorrect) {
  AesAccelerator acc{cfgOf(SecurityMode::Baseline)};
  const auto setup = setupTenants(acc, 3);
  WorkloadConfig w;
  w.blocks_per_user = 128;
  const auto r = runSharedWorkload(acc, setup, w);
  EXPECT_TRUE(r.all_correct);
}

TEST(Workload, ProtectionCostsNoThroughput) {
  // Section 4: protection has no impact on the clock or the pipeline rate;
  // in cycle terms the protected accelerator matches the baseline.
  WorkloadConfig w;
  w.blocks_per_user = 256;

  AesAccelerator base{cfgOf(SecurityMode::Baseline)};
  const auto bs = setupTenants(base, 3);
  const auto br = runSharedWorkload(base, bs, w);

  AesAccelerator prot{cfgOf(SecurityMode::Protected)};
  const auto ps = setupTenants(prot, 3);
  const auto pr = runSharedWorkload(prot, ps, w);

  EXPECT_TRUE(br.all_correct);
  EXPECT_TRUE(pr.all_correct);
  EXPECT_NEAR(static_cast<double>(pr.cycles), static_cast<double>(br.cycles),
              br.cycles * 0.02);
}

TEST(Workload, FineGrainedBeatsCoarseGrained) {
  // The motivation of Section 1: coarse-grained sharing drains the deep
  // pipeline on every user switch.
  WorkloadConfig w;
  w.blocks_per_user = 64;

  AesAccelerator fine{cfgOf(SecurityMode::Protected, /*coarse=*/false)};
  const auto fs = setupTenants(fine, 3);
  const auto fr = runSharedWorkload(fine, fs, w);

  AesAccelerator coarse{cfgOf(SecurityMode::Protected, /*coarse=*/true)};
  const auto cs = setupTenants(coarse, 3);
  const auto cr = runSharedWorkload(coarse, cs, w);

  EXPECT_TRUE(fr.all_correct);
  EXPECT_TRUE(cr.all_correct);
  EXPECT_GT(fr.blocks_per_cycle, cr.blocks_per_cycle * 1.2)
      << "fine=" << fr.blocks_per_cycle << " coarse=" << cr.blocks_per_cycle;
}

TEST(Workload, SaturatedPipelineApproachesOneBlockPerCycle) {
  AesAccelerator acc{cfgOf(SecurityMode::Protected)};
  const auto setup = setupTenants(acc, 4);
  WorkloadConfig w;
  w.blocks_per_user = 512;
  const auto r = runSharedWorkload(acc, setup, w);
  EXPECT_TRUE(r.all_correct);
  // 4 users x 2-deep submit windows keep the arbiter busy most cycles.
  EXPECT_GT(r.blocks_per_cycle, 0.8);
}

TEST(Workload, LatencyNeverBelowPipelineDepth) {
  AesAccelerator acc{cfgOf(SecurityMode::Protected)};
  const auto setup = setupTenants(acc, 2);
  WorkloadConfig w;
  w.blocks_per_user = 64;
  const auto r = runSharedWorkload(acc, setup, w);
  EXPECT_GE(r.latency.min, 30u);
}

TEST(Workload, SetupRejectsTooManyTenants) {
  AesAccelerator acc{cfgOf(SecurityMode::Protected)};
  EXPECT_THROW(setupTenants(acc, 12), std::invalid_argument);
}

}  // namespace
}  // namespace aesifc::soc
