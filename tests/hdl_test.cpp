#include <gtest/gtest.h>

#include "hdl/eval.h"
#include "hdl/ir.h"

namespace aesifc::hdl {
namespace {

using lattice::Label;

const LabelTerm kPT = LabelTerm::of(Label::publicTrusted());

TEST(ModuleBuild, SignalsAndLookup) {
  Module m{"t"};
  const auto a = m.input("a", 8, kPT);
  const auto w = m.wire("w", 8);
  m.assign(w, m.read(a));
  EXPECT_EQ(m.signal(a).name, "a");
  EXPECT_EQ(m.findSignal("w"), w);
  EXPECT_FALSE(m.findSignal("nope").valid());
}

TEST(ModuleValidate, RejectsUndrivenWire) {
  Module m{"t"};
  m.wire("w", 8);
  EXPECT_THROW(m.validate(), std::logic_error);
}

TEST(ModuleValidate, RejectsDoubleDrive) {
  Module m{"t"};
  const auto a = m.input("a", 8, kPT);
  const auto w = m.wire("w", 8);
  m.assign(w, m.read(a));
  m.assign(w, m.read(a));
  EXPECT_THROW(m.validate(), std::logic_error);
}

TEST(ModuleValidate, RejectsAssignToReg) {
  Module m{"t"};
  const auto a = m.input("a", 8, kPT);
  const auto r = m.reg("r", 8, kPT);
  m.assign(r, m.read(a));
  EXPECT_THROW(m.validate(), std::logic_error);
}

TEST(ModuleValidate, RejectsWideDependentSelector) {
  Module m{"t"};
  const auto sel = m.input("sel", 8, kPT);  // too wide to enumerate
  std::vector<Label> table(256, Label::publicTrusted());
  const auto d = m.input("d", 8, LabelTerm::dependent(sel, table));
  const auto o = m.output("o", 8, kPT);
  m.assign(o, m.read(d));
  EXPECT_THROW(m.validate(), std::logic_error);
}

TEST(ModuleValidate, RejectsDependentTableSizeMismatch) {
  Module m{"t"};
  const auto sel = m.input("sel", 2, kPT);
  const auto d =
      m.input("d", 8, LabelTerm::dependent(sel, {Label::publicTrusted()}));
  const auto o = m.output("o", 8, kPT);
  m.assign(o, m.read(d));
  EXPECT_THROW(m.validate(), std::logic_error);
}

TEST(ModuleValidate, AcceptsMultipleRegWrites) {
  Module m{"t"};
  const auto a = m.input("a", 8, kPT);
  const auto en1 = m.input("en1", 1, kPT);
  const auto en2 = m.input("en2", 1, kPT);
  const auto r = m.reg("r", 8, kPT);
  m.regWrite(r, m.read(a), m.read(en1));
  m.regWrite(r, m.bnot(m.read(a)), m.read(en2));
  EXPECT_NO_THROW(m.validate());
}

// --- Expression evaluation -------------------------------------------------------

struct EvalFixture : ::testing::Test {
  Module m{"eval"};
  std::vector<BitVec> values;

  BitVec run(ExprId e) {
    return evalExpr(m, e, [&](SignalId s) -> const BitVec& {
      return values[s.v];
    });
  }
};

TEST_F(EvalFixture, Arithmetic) {
  const auto a = m.input("a", 8, kPT);
  const auto b = m.input("b", 8, kPT);
  values = {BitVec(8, 200), BitVec(8, 100)};
  EXPECT_EQ(run(m.add(m.read(a), m.read(b))).toU64(), 44u);  // mod 256
  EXPECT_EQ(run(m.sub(m.read(a), m.read(b))).toU64(), 100u);
  EXPECT_EQ(run(m.ult(m.read(b), m.read(a))).toU64(), 1u);
  EXPECT_EQ(run(m.eq(m.read(a), m.read(b))).toU64(), 0u);
  EXPECT_EQ(run(m.ne(m.read(a), m.read(b))).toU64(), 1u);
}

TEST_F(EvalFixture, MuxConcatSlice) {
  const auto c = m.input("c", 1, kPT);
  const auto a = m.input("a", 4, kPT);
  const auto b = m.input("b", 4, kPT);
  values = {BitVec(1, 1), BitVec(4, 0xa), BitVec(4, 0x5)};
  EXPECT_EQ(run(m.mux(m.read(c), m.read(a), m.read(b))).toU64(), 0xau);
  const auto cat = m.concat(m.read(a), m.read(b));
  EXPECT_EQ(run(cat).toU64(), 0xa5u);
  EXPECT_EQ(run(m.slice(cat, 4, 4)).toU64(), 0xau);
}

TEST_F(EvalFixture, LutAndReductions) {
  const auto i = m.input("i", 2, kPT);
  values = {BitVec(2, 2)};
  std::vector<BitVec> table{BitVec(8, 10), BitVec(8, 20), BitVec(8, 30),
                            BitVec(8, 40)};
  EXPECT_EQ(run(m.lut(m.read(i), table)).toU64(), 30u);
  EXPECT_EQ(run(m.redOr(m.read(i))).toU64(), 1u);
  EXPECT_EQ(run(m.redAnd(m.read(i))).toU64(), 0u);
}

// --- Partial evaluation ------------------------------------------------------------

TEST(PartialEval, PinnedSignalsFold) {
  Module m{"pe"};
  const auto sel = m.input("sel", 2, kPT);
  const auto x = m.input("x", 8, kPT);
  const auto e = m.mux(m.eq(m.read(sel), m.c(2, 1)), m.c(8, 42), m.read(x));
  std::map<std::uint32_t, BitVec> pinned{{sel.v, BitVec(2, 1)}};
  const auto v = partialEval(m, e, pinned);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->toU64(), 42u);
  // Unpinned branch taken -> unknown.
  pinned[sel.v] = BitVec(2, 0);
  EXPECT_FALSE(partialEval(m, e, pinned).has_value());
}

TEST(PartialEval, AndShortCircuitsOnZero) {
  Module m{"pe"};
  const auto sel = m.input("sel", 1, kPT);
  const auto unknown = m.input("u", 1, kPT);
  const auto e = m.band(m.read(unknown), m.eq(m.read(sel), m.c(1, 1)));
  std::map<std::uint32_t, BitVec> pinned{{sel.v, BitVec(1, 0)}};
  const auto v = partialEval(m, e, pinned);
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->isZero());
  // With sel = 1 the And needs the unknown operand.
  pinned[sel.v] = BitVec(1, 1);
  EXPECT_FALSE(partialEval(m, e, pinned).has_value());
}

TEST(PartialEval, OrShortCircuitsOnOnes) {
  Module m{"pe"};
  const auto sel = m.input("sel", 1, kPT);
  const auto unknown = m.input("u", 1, kPT);
  const auto e = m.bor(m.read(unknown), m.read(sel));
  std::map<std::uint32_t, BitVec> pinned{{sel.v, BitVec(1, 1)}};
  const auto v = partialEval(m, e, pinned);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->toU64(), 1u);
}

TEST(PartialEval, ChasesWires) {
  Module m{"pe"};
  const auto sel = m.input("sel", 2, kPT);
  const auto w = m.wire("w", 1);
  m.assign(w, m.eq(m.read(sel), m.c(2, 3)));
  const auto e = m.mux(m.read(w), m.c(4, 1), m.c(4, 2));
  std::map<std::uint32_t, BitVec> pinned{{sel.v, BitVec(2, 3)}};
  const auto v = partialEval(m, e, pinned);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->toU64(), 1u);
}

TEST(LeafDeps, ReportsInputsAndRegsThroughWires) {
  Module m{"deps"};
  const auto a = m.input("a", 4, kPT);
  const auto r = m.reg("r", 4, kPT);
  const auto w = m.wire("w", 4);
  m.assign(w, m.bxor(m.read(a), m.read(r)));
  const auto e = m.add(m.read(w), m.c(4, 1));
  const auto deps = leafDeps(m, e);
  EXPECT_EQ(deps.size(), 2u);
}

TEST(Schedule, OrdersDependentAssigns) {
  Module m{"sched"};
  const auto a = m.input("a", 4, kPT);
  const auto w1 = m.wire("w1", 4);
  const auto w2 = m.wire("w2", 4);
  // Deliberately created in reverse dependency order.
  m.assign(w2, m.add(m.read(w1), m.c(4, 1)));
  m.assign(w1, m.add(m.read(a), m.c(4, 1)));
  const auto sched = scheduleCombinational(m);
  ASSERT_EQ(sched.order.size(), 2u);
  // w1's assign (index 1) must run before w2's (index 0).
  EXPECT_EQ(sched.order[0].index, 1u);
  EXPECT_EQ(sched.order[1].index, 0u);
}

TEST(Schedule, DetectsCombinationalCycle) {
  Module m{"cycle"};
  const auto w1 = m.wire("w1", 1);
  const auto w2 = m.wire("w2", 1);
  m.assign(w1, m.bnot(m.read(w2)));
  m.assign(w2, m.bnot(m.read(w1)));
  EXPECT_THROW(scheduleCombinational(m), std::logic_error);
}

TEST(Dump, MentionsSignalsAndLabels) {
  Module m{"dumpy"};
  const auto sel = m.input("sel", 1, kPT);
  m.input("x", 8,
          LabelTerm::dependent(sel, {Label::publicTrusted(),
                                     Label::publicUntrusted()}));
  const auto o = m.output("o", 1, kPT);
  m.assign(o, m.read(sel));
  const auto text = m.dump();
  EXPECT_NE(text.find("module dumpy"), std::string::npos);
  EXPECT_NE(text.find("DL(sel)"), std::string::npos);
  EXPECT_NE(text.find("(PUB,TRU)"), std::string::npos);
}

}  // namespace
}  // namespace aesifc::hdl
