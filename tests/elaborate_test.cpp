#include "hdl/elaborate.h"

#include <gtest/gtest.h>

#include "hdl/parser.h"
#include "ifc/checker.h"
#include "sim/simulator.h"

namespace aesifc::hdl {
namespace {

using lattice::Conf;
using lattice::Integ;
using lattice::Label;

const LabelTerm kPT = LabelTerm::of(Label::publicTrusted());
const Label kSecret{Conf::top(), Integ::top()};

Module makeAdder() {
  Module m{"adder"};
  const auto x = m.input("x", 8, kPT);
  const auto y = m.input("y", 8, kPT);
  const auto sum = m.output("sum", 8, kPT);
  m.assign(sum, m.add(m.read(x), m.read(y)));
  return m;
}

TEST(Instantiate, FlattensAndComputes) {
  Module top{"top"};
  const auto a = top.input("a", 8, kPT);
  const auto b = top.input("b", 8, kPT);
  const auto o = top.output("o", 8, kPT);

  const auto adder = makeAdder();
  const auto r = instantiate(top, adder, "a1",
                             {{"x", top.read(a)}, {"y", top.read(b)}});
  top.assign(o, top.read(r.ports.at("sum")));

  sim::Simulator s{top};
  s.poke("a", BitVec(8, 30));
  s.poke("b", BitVec(8, 12));
  s.evalComb();
  EXPECT_EQ(s.peek("o").toU64(), 42u);
  EXPECT_TRUE(ifc::check(top).ok());
}

TEST(Instantiate, TwoInstancesStayIndependent) {
  Module top{"top"};
  const auto a = top.input("a", 8, kPT);
  const auto o = top.output("o", 8, kPT);

  const auto adder = makeAdder();
  const auto r1 = instantiate(top, adder, "i1",
                              {{"x", top.read(a)}, {"y", top.c(8, 1)}});
  const auto r2 =
      instantiate(top, adder, "i2",
                  {{"x", top.read(r1.ports.at("sum"))}, {"y", top.c(8, 2)}});
  top.assign(o, top.read(r2.ports.at("sum")));

  sim::Simulator s{top};
  s.poke("a", BitVec(8, 10));
  s.evalComb();
  EXPECT_EQ(s.peek("o").toU64(), 13u);
}

TEST(Instantiate, BoundaryLabelsAreChecked) {
  // The adder's ports are (PUB,TRU); feeding a secret into it must be
  // flagged at the instance boundary.
  Module top{"top"};
  const auto s = top.input("s", 8, LabelTerm::of(kSecret));
  const auto o = top.output("o", 8, LabelTerm::of(kSecret));
  const auto adder = makeAdder();
  const auto r = instantiate(top, adder, "a1",
                             {{"x", top.read(s)}, {"y", top.c(8, 1)}});
  top.assign(o, top.read(r.ports.at("sum")));
  const auto report = ifc::check(top);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.mentionsSink("a1__x")) << report.toString();
}

TEST(Instantiate, CopiesRegistersAndState) {
  Module child{"ctr"};
  const auto en = child.input("en", 1, kPT);
  const auto c = child.reg("c", 4, kPT, BitVec(4, 3));
  const auto out = child.output("val", 4, kPT);
  child.regWrite(c, child.add(child.read(c), child.c(4, 1)), child.read(en));
  child.assign(out, child.read(c));

  Module top{"top"};
  const auto go = top.input("go", 1, kPT);
  const auto o = top.output("o", 4, kPT);
  const auto r = instantiate(top, child, "k", {{"en", top.read(go)}});
  top.assign(o, top.read(r.ports.at("val")));

  sim::Simulator s{top};
  EXPECT_EQ(s.peek("o").toU64(), 3u);  // child reset value preserved
  s.poke("go", BitVec(1, 1));
  s.step(2);
  EXPECT_EQ(s.peek("o").toU64(), 5u);
}

TEST(Instantiate, RemapsDependentLabels) {
  Module child{"port"};
  const auto sel = child.input("sel", 1, kPT);
  const auto d = child.input("d", 8,
                             LabelTerm::dependent(sel, {Label::publicTrusted(),
                                                        kSecret}));
  const auto q = child.output("q", 8,
                              LabelTerm::dependent(sel, {Label::publicTrusted(),
                                                         kSecret}));
  child.assign(q, child.read(d));

  Module top{"top"};
  const auto way = top.input("way", 1, kPT);
  const auto data = top.input("data", 8,
                              LabelTerm::dependent(way, {Label::publicTrusted(),
                                                         kSecret}));
  const auto o = top.output("o", 8,
                            LabelTerm::dependent(way, {Label::publicTrusted(),
                                                       kSecret}));
  const auto r = instantiate(top, child, "p",
                             {{"sel", top.read(way)}, {"d", top.read(data)}});
  top.assign(o, top.read(r.ports.at("q")));
  EXPECT_TRUE(ifc::check(top).ok()) << ifc::check(top).toString();
}

TEST(Instantiate, ErrorsOnBadBindings) {
  Module top{"top"};
  const auto a = top.input("a", 8, kPT);
  const auto adder = makeAdder();
  EXPECT_THROW(instantiate(top, adder, "a1", {{"x", top.read(a)}}),
               std::logic_error);  // unbound y
  EXPECT_THROW(
      instantiate(top, adder, "a2",
                  {{"x", top.read(a)}, {"y", top.c(4, 0)}}),
      std::logic_error);  // width mismatch
  EXPECT_THROW(
      instantiate(top, adder, "a3",
                  {{"x", top.read(a)}, {"y", top.read(a)}, {"sum", top.read(a)}}),
      std::logic_error);  // binding a non-input
}

// --- Textual instances --------------------------------------------------------------

TEST(ParserInstances, HierarchicalSourceParsesAndRuns) {
  const auto top = parseModule(R"(
    module halfadd {
      input a : 1 label (PUB, TRU);
      input b : 1 label (PUB, TRU);
      output s : 1 label (PUB, TRU);
      output c : 1 label (PUB, TRU);
      assign s = a ^ b;
      assign c = a & b;
    }
    module fulladd {
      input x : 1 label (PUB, TRU);
      input y : 1 label (PUB, TRU);
      input cin : 1 label (PUB, TRU);
      output sum : 1 label (PUB, TRU);
      output cout : 1 label (PUB, TRU);
      inst h1 = halfadd(a: x, b: y);
      inst h2 = halfadd(a: h1__s, b: cin);
      assign sum = h2__s;
      assign cout = h1__c | h2__c;
    }
  )");
  EXPECT_EQ(top.name(), "fulladd");
  EXPECT_TRUE(ifc::check(top).ok());

  sim::Simulator s{top};
  for (unsigned v = 0; v < 8; ++v) {
    s.poke("x", BitVec(1, v & 1));
    s.poke("y", BitVec(1, (v >> 1) & 1));
    s.poke("cin", BitVec(1, (v >> 2) & 1));
    s.evalComb();
    const unsigned total = (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1);
    EXPECT_EQ(s.peek("sum").toU64(), total & 1u) << v;
    EXPECT_EQ(s.peek("cout").toU64(), (total >> 1) & 1u) << v;
  }
}

TEST(ParserInstances, UnknownModuleReported) {
  EXPECT_THROW(parseModule(R"(
    module top {
      input a : 1 label (PUB, TRU);
      inst x = nosuch(a: a);
    }
  )"),
               ParseError);
}

TEST(ParserInstances, LibraryReturnsAllModules) {
  const auto lib = parseLibrary(R"(
    module m1 { input a : 1 label (PUB, TRU); output o : 1 label (PUB, TRU);
                assign o = a; }
    module m2 { input b : 1 label (PUB, TRU); output o : 1 label (PUB, TRU);
                assign o = ~b; }
  )");
  ASSERT_EQ(lib.size(), 2u);
  EXPECT_EQ(lib[0].name(), "m1");
  EXPECT_EQ(lib[1].name(), "m2");
}

}  // namespace
}  // namespace aesifc::hdl
