// Nightly soak suite (ctest label: soak). Two long-horizon runs that are too
// slow for the per-commit job but catch slow-burn defects: a extended chaos
// workload (randomized receiver readiness, mixed modes, hundreds of blocks
// per user) and a 20-seed fault campaign sweep over the Protected
// accelerator. Both enforce the same invariants as their tier-1 cousins —
// every delivered block matches the requester's own golden AES result, every
// driver call terminates, and no injected tag upset escapes the scrub rings.

#include <gtest/gtest.h>

#include <map>

#include "accel/driver.h"
#include "aes/cipher.h"
#include "common/rng.h"
#include "soc/fault_injector.h"
#include "soc/service.h"

namespace aesifc::accel {
namespace {

using lattice::Conf;
using lattice::Principal;

// --- Long chaos run ---------------------------------------------------------

TEST(Soak, LongChaosAllTrafficCorrectCompleteAndOrdered) {
  for (const std::uint64_t seed : {101ull, 202ull, 303ull}) {
    AcceleratorConfig cfg;
    cfg.mode = SecurityMode::Protected;
    cfg.out_buffer_depth = 512;
    AesAccelerator acc{cfg};
    acc.addUser(Principal::supervisor());

    constexpr unsigned kUsers = 4;
    unsigned users[kUsers];
    std::vector<aes::ExpandedKey> golden;
    Rng rng{seed};
    for (unsigned u = 0; u < kUsers; ++u) {
      users[u] = acc.addUser(Principal::user("u" + std::to_string(u), u + 1));
      std::vector<std::uint8_t> key(16);
      for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
      ASSERT_TRUE(
          loadKey128(acc, users[u], u + 1, 2 * u, key, Conf::category(u + 1)));
      golden.push_back(aes::expandKey(key, aes::KeySize::Aes128));
    }

    struct Expect {
      aes::Block pt;
      bool decrypt;
      unsigned user_idx;
    };
    std::map<std::uint64_t, Expect> expect;
    std::vector<std::uint64_t> last_seen_id(kUsers, 0);
    std::vector<unsigned> submitted(kUsers, 0), received(kUsers, 0);
    constexpr unsigned kPerUser = 400;  // 4x the tier-1 chaos volume
    std::uint64_t next_id = 1;

    auto drain = [&] {
      for (unsigned u = 0; u < kUsers; ++u) {
        while (auto out = acc.fetchOutput(users[u])) {
          auto it = expect.find(out->req_id);
          ASSERT_NE(it, expect.end());
          ASSERT_EQ(it->second.user_idx, u);
          EXPECT_FALSE(out->suppressed);
          const auto& ek = golden[u];
          const aes::Block want = it->second.decrypt
                                      ? aes::decryptBlock(it->second.pt, ek)
                                      : aes::encryptBlock(it->second.pt, ek);
          EXPECT_EQ(out->data, want) << "seed " << seed << " req "
                                     << out->req_id;
          EXPECT_GT(out->req_id, last_seen_id[u]);
          last_seen_id[u] = out->req_id;
          ++received[u];
          expect.erase(it);
        }
      }
    };

    auto done = [&] {
      for (unsigned u = 0; u < kUsers; ++u)
        if (received[u] < kPerUser) return false;
      return true;
    };

    unsigned guard = 0;
    while (!done() && guard++ < 400000) {
      for (unsigned u = 0; u < kUsers; ++u) {
        if (rng.chance(0.1)) acc.setReceiverReady(users[u], rng.chance(0.6));
      }
      for (unsigned u = 0; u < kUsers; ++u) {
        if (submitted[u] >= kPerUser) continue;
        if (acc.pendingInputs(users[u]) >= 2 || !rng.chance(0.7)) continue;
        BlockRequest req;
        req.req_id = next_id++;
        req.user = users[u];
        req.key_slot = u + 1;
        req.decrypt = rng.chance(0.4);
        for (auto& b : req.data) b = static_cast<std::uint8_t>(rng.next());
        if (acc.submit(req)) {
          expect[req.req_id] = {req.data, req.decrypt, u};
          ++submitted[u];
        }
      }
      acc.tick();
      drain();
    }
    for (unsigned u = 0; u < kUsers; ++u) acc.setReceiverReady(users[u], true);
    for (unsigned i = 0; i < 4000 && !done(); ++i) {
      acc.tick();
      drain();
    }

    for (unsigned u = 0; u < kUsers; ++u)
      EXPECT_EQ(received[u], kPerUser) << "seed " << seed << " user " << u;
    EXPECT_TRUE(expect.empty());
    EXPECT_EQ(acc.stats().dropped, 0u);
  }
}

// --- 20-seed fault campaign sweep ------------------------------------------

TEST(Soak, TwentySeedFaultCampaignNeverLeaksAndAlwaysTerminates) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const double rate = (seed % 2) ? 0.01 : 0.03;
    AcceleratorConfig cfg;
    cfg.mode = SecurityMode::Protected;
    cfg.out_buffer_depth = 16;
    cfg.event_log_cap = 256;
    AesAccelerator acc{cfg};
    acc.addUser(Principal::supervisor());

    constexpr unsigned kUsers = 3;
    std::vector<unsigned> users(kUsers);
    std::vector<std::vector<std::uint8_t>> keys(kUsers);
    std::vector<aes::ExpandedKey> golden;
    Rng rng{seed};
    for (unsigned u = 0; u < kUsers; ++u) {
      users[u] = acc.addUser(Principal::user("u" + std::to_string(u), u + 1));
      keys[u].resize(16);
      for (auto& b : keys[u]) b = static_cast<std::uint8_t>(rng.next());
      ASSERT_TRUE(loadKey128(acc, users[u], u + 1, 2 * u, keys[u],
                             Conf::category(u + 1)));
      golden.push_back(aes::expandKey(keys[u], aes::KeySize::Aes128));
    }

    soc::FaultCampaignConfig fcfg;
    fcfg.seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    fcfg.fault_rate = rate;
    fcfg.stuck_cycles = 24;
    soc::FaultInjector inj{acc, fcfg, users};
    acc.setTickHook([&] { inj.tick(); });

    SessionOptions opts;
    opts.timeout_cycles = 1500;
    opts.max_retries = 3;
    opts.backoff_cycles = 16;
    std::vector<AccelSession> sessions;
    for (unsigned u = 0; u < kUsers; ++u)
      sessions.emplace_back(acc, users[u], u + 1, opts);

    std::vector<bool> needs_reload(kUsers, false);
    std::uint64_t ok_ops = 0;
    constexpr unsigned kRounds = 40;
    for (unsigned round = 0; round < kRounds; ++round) {
      for (unsigned u = 0; u < kUsers; ++u) {
        if (needs_reload[u]) {
          if (!loadKey128(acc, users[u], u + 1, 2 * u, keys[u],
                          Conf::category(u + 1))) {
            continue;  // the reload itself was hit; retry next round
          }
          needs_reload[u] = false;
        }
        aes::Block pt;
        for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
        const bool decrypt = rng.chance(0.4);
        const auto r = decrypt ? sessions[u].decryptBlock(pt)
                               : sessions[u].encryptBlock(pt);
        if (r.has_value()) {
          const aes::Block want = decrypt ? aes::decryptBlock(pt, golden[u])
                                          : aes::encryptBlock(pt, golden[u]);
          ASSERT_EQ(*r, want)
              << "seed " << seed << " user " << u << " round " << round
              << "\nreplay trace:\n" << soc::traceToString(inj.trace());
          ++ok_ops;
        } else if (r.status() == AccelStatus::Rejected) {
          needs_reload[u] = true;
        }
      }
    }

    acc.setTickHook(nullptr);
    inj.releaseStuckReceivers();
    acc.run(64);

    EXPECT_GT(ok_ops, 0u) << "seed " << seed;
    const auto report = inj.report();
    EXPECT_EQ(report.escaped(static_cast<unsigned>(FaultSite::StageTag)), 0u)
        << "seed " << seed << "\n" << report.summary();
    EXPECT_EQ(report.escaped(static_cast<unsigned>(FaultSite::ScratchTag)), 0u)
        << "seed " << seed << "\n" << report.summary();
    EXPECT_EQ(acc.stats().faults_detected,
              acc.eventCount(SecurityEventKind::FaultDetected) +
                  acc.eventCount(SecurityEventKind::FaultScrubbed));
  }
}

}  // namespace
}  // namespace aesifc::accel
