// Integration of hdl + sim + ifc on a realistically sized netlist: the
// unrolled AES-128 datapath in IR form must (a) compute exactly what the
// golden software AES computes, (b) pass the static checker with the honest
// ciphertext label, and (c) look sane to the netlist area estimator.

#include <gtest/gtest.h>

#include "aes/cipher.h"
#include "area/model.h"
#include "common/rng.h"
#include "ifc/checker.h"
#include "rtl/aes_ir.h"
#include "sim/simulator.h"

namespace aesifc::rtl {
namespace {

BitVec toBits(const aes::Block& b) {
  return BitVec::fromBytes(b.data(), 16);
}

aes::Block toBlock(const BitVec& v) {
  aes::Block b{};
  const auto bytes = v.toBytes();
  for (unsigned i = 0; i < 16; ++i) b[i] = bytes[i];
  return b;
}

BitVec roundKeyBits(const aes::RoundKey& rk) {
  return BitVec::fromBytes(rk.data(), 16);
}

TEST(AesIr, MatchesGoldenModel) {
  AesIrPorts ports;
  auto m = buildAesEncrypt128(&ports);
  sim::Simulator s{m};

  Rng rng{77};
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<std::uint8_t> key(16);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
    aes::Block pt{};
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());

    const auto ek = aes::expandKey(key, aes::KeySize::Aes128);
    s.poke(ports.pt, toBits(pt));
    for (unsigned r = 0; r <= 10; ++r) {
      s.poke(ports.rk[r], roundKeyBits(ek.round_keys[r]));
    }
    s.evalComb();
    EXPECT_EQ(toBlock(s.peek(ports.ct)), aes::encryptBlock(pt, ek))
        << "trial " << trial;
  }
}

TEST(AesIr, FipsAppendixBVector) {
  AesIrPorts ports;
  auto m = buildAesEncrypt128(&ports);
  sim::Simulator s{m};

  const auto key_bits = BitVec::fromHex(128, "3c4fcf098815f7aba6d2ae2816157e2b");
  std::vector<std::uint8_t> key = key_bits.toBytes();
  const auto ek = aes::expandKey(key, aes::KeySize::Aes128);
  aes::Block pt{};
  const auto pt_bits = BitVec::fromHex(128, "340737e0a29831318d305a88a8f64332");
  pt = toBlock(pt_bits);

  s.poke(ports.pt, pt_bits);
  for (unsigned r = 0; r <= 10; ++r)
    s.poke(ports.rk[r], roundKeyBits(ek.round_keys[r]));
  s.evalComb();
  EXPECT_EQ(toBlock(s.peek(ports.ct)),
            aes::encryptBlock(pt, key.data(), aes::KeySize::Aes128));
}

TEST(AesIr, PassesStaticCheckWithHonestLabel) {
  auto m = buildAesEncrypt128(nullptr);
  const auto report = ifc::check(m);
  EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(AesIr, LeaksIfOutputAnnotatedPublic) {
  // Mutant: relabel the ciphertext as public without a declassification —
  // the checker must flag the key/plaintext flow (the Fig. 6 right error at
  // netlist scale).
  AesIrPorts ports;
  auto m = buildAesEncrypt128(&ports);
  m.setLabel(ports.ct, hdl::LabelTerm::of(lattice::Label::publicTrusted()));
  const auto report = ifc::check(m);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.mentionsSink("ct"));
}

TEST(AesIr, NetlistEstimateIsDatapathSized) {
  auto m = buildAesEncrypt128(nullptr);
  const auto res = area::estimateModule(m);
  // 160 S-boxes alone are 160 * 256/... >= a few thousand LUTs; the whole
  // unrolled combinational datapath should land in the thousands, not the
  // tens or the millions.
  EXPECT_GT(res.luts, 3000u);
  EXPECT_LT(res.luts, 100000u);
  EXPECT_EQ(res.ffs, 0u);  // purely combinational
}

TEST(AesIr, SingleRoundMatchesGolden) {
  Rng rng{9};
  hdl::Module m{"round"};
  const auto st = m.input("st", 128,
                          hdl::LabelTerm::of(lattice::Label::topTop()));
  const auto rk = m.input("rk", 128,
                          hdl::LabelTerm::of(lattice::Label::topTop()));
  const auto out = m.output("out", 128,
                            hdl::LabelTerm::of(lattice::Label::topTop()));
  m.assign(out, emitAesRound(m, m.read(st), m.read(rk), /*last_round=*/false));
  sim::Simulator s{m};

  for (int trial = 0; trial < 8; ++trial) {
    aes::State state{};
    aes::RoundKey key{};
    for (auto& b : state) b = static_cast<std::uint8_t>(rng.next());
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());

    s.poke(st, BitVec::fromBytes(state.data(), 16));
    s.poke(rk, BitVec::fromBytes(key.data(), 16));
    s.evalComb();

    aes::State want = state;
    aes::subBytes(want);
    aes::shiftRows(want);
    aes::mixColumns(want);
    aes::addRoundKey(want, key);
    EXPECT_EQ(toBlock(s.peek(out)), aes::stateToBlock(want));
  }
}

}  // namespace
}  // namespace aesifc::rtl
