// Tests for the extended IR models: the decryption netlist, the sequential
// key-expansion FSM, and the hardware-Trojan scenario.

#include <gtest/gtest.h>

#include "aes/cipher.h"
#include "common/rng.h"
#include "ifc/checker.h"
#include "rtl/aes_ir.h"
#include "sim/simulator.h"

namespace aesifc::rtl {
namespace {

aes::Block toBlock(const BitVec& v) {
  aes::Block b{};
  const auto bytes = v.toBytes();
  for (unsigned i = 0; i < 16; ++i) b[i] = bytes[i];
  return b;
}

BitVec toBits(const aes::Block& b) { return BitVec::fromBytes(b.data(), 16); }

// --- Decryption netlist ------------------------------------------------------

TEST(AesDecryptIr, InvertsGoldenEncryption) {
  AesIrPorts ports;
  auto m = buildAesDecrypt128(&ports);
  sim::Simulator s{m};

  Rng rng{11};
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<std::uint8_t> key(16);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
    aes::Block pt{};
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
    const auto ek = aes::expandKey(key, aes::KeySize::Aes128);
    const auto ct = aes::encryptBlock(pt, ek);

    s.poke(ports.pt, toBits(ct));
    for (unsigned r = 0; r <= 10; ++r)
      s.poke(ports.rk[r], toBits(ek.round_keys[r]));
    s.evalComb();
    EXPECT_EQ(toBlock(s.peek(ports.ct)), pt) << "trial " << trial;
  }
}

TEST(AesDecryptIr, PassesStaticCheck) {
  auto m = buildAesDecrypt128(nullptr);
  const auto report = ifc::check(m);
  EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(AesDecryptIr, EncryptThenDecryptNetlistsCompose) {
  AesIrPorts enc_ports, dec_ports;
  auto enc = buildAesEncrypt128(&enc_ports);
  auto dec = buildAesDecrypt128(&dec_ports);
  sim::Simulator se{enc}, sd{dec};

  Rng rng{12};
  std::vector<std::uint8_t> key(16);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
  const auto ek = aes::expandKey(key, aes::KeySize::Aes128);
  aes::Block pt{};
  for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());

  se.poke(enc_ports.pt, toBits(pt));
  for (unsigned r = 0; r <= 10; ++r)
    se.poke(enc_ports.rk[r], toBits(ek.round_keys[r]));
  se.evalComb();

  sd.poke(dec_ports.pt, se.peek(enc_ports.ct));
  for (unsigned r = 0; r <= 10; ++r)
    sd.poke(dec_ports.rk[r], toBits(ek.round_keys[r]));
  sd.evalComb();
  EXPECT_EQ(toBlock(sd.peek(dec_ports.ct)), pt);
}

// --- Key expansion FSM ----------------------------------------------------------

TEST(KeyExpandIr, MatchesGoldenSchedule) {
  KeyExpandPorts ports;
  auto m = buildKeyExpand128(&ports);
  sim::Simulator s{m};

  Rng rng{13};
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<std::uint8_t> key(16);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
    const auto ek = aes::expandKey(key, aes::KeySize::Aes128);

    s.poke(ports.key, BitVec::fromBytes(key.data(), 16));
    s.poke(ports.start, BitVec(1, 1));
    s.step();
    s.poke(ports.start, BitVec(1, 0));

    for (unsigned r = 0; r <= 10; ++r) {
      EXPECT_EQ(s.peek(ports.rk_valid).toU64(), 1u) << "round " << r;
      EXPECT_EQ(s.peek(ports.round).toU64(), r);
      EXPECT_EQ(toBlock(s.peek(ports.rk)),
                aes::stateToBlock(aes::blockToState(ek.round_keys[r])))
          << "trial " << trial << " round " << r;
      s.step();
    }
    // Schedule exhausted: valid drops.
    EXPECT_EQ(s.peek(ports.rk_valid).toU64(), 0u);
  }
}

TEST(KeyExpandIr, PassesStaticCheck) {
  auto m = buildKeyExpand128(nullptr);
  const auto report = ifc::check(m);
  EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(KeyExpandIr, RestartMidScheduleWorks) {
  KeyExpandPorts ports;
  auto m = buildKeyExpand128(&ports);
  sim::Simulator s{m};

  std::vector<std::uint8_t> k1(16, 0x11), k2(16, 0x22);
  s.poke(ports.key, BitVec::fromBytes(k1.data(), 16));
  s.poke(ports.start, BitVec(1, 1));
  s.step();
  s.poke(ports.start, BitVec(1, 0));
  s.step(3);  // abandon after a few rounds

  s.poke(ports.key, BitVec::fromBytes(k2.data(), 16));
  s.poke(ports.start, BitVec(1, 1));
  s.step();
  s.poke(ports.start, BitVec(1, 0));
  const auto ek2 = aes::expandKey(k2, aes::KeySize::Aes128);
  EXPECT_EQ(s.peek(ports.round).toU64(), 0u);
  EXPECT_EQ(toBlock(s.peek(ports.rk)),
            aes::stateToBlock(aes::blockToState(ek2.round_keys[0])));
}

// --- Hardware Trojan --------------------------------------------------------------

TEST(TrojanedAes, InvisibleToRandomTesting) {
  AesIrPorts clean_p, troj_p;
  auto clean = buildAesWithStatus(false, &clean_p);
  auto troj = buildAesWithStatus(true, &troj_p);
  sim::Simulator sc{clean}, st{troj};
  const auto mode_sig = troj.findSignal("mode");
  const auto status_sig = troj.findSignal("status");
  const auto clean_mode = clean.findSignal("mode");
  const auto clean_status = clean.findSignal("status");

  Rng rng{14};
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> key(16);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
    const auto ek = aes::expandKey(key, aes::KeySize::Aes128);
    aes::Block pt{};
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());

    for (auto* sim : {&sc, &st}) {
      sim->poke(sim == &sc ? clean_p.pt : troj_p.pt, toBits(pt));
      for (unsigned r = 0; r <= 10; ++r)
        sim->poke(sim == &sc ? clean_p.rk[r] : troj_p.rk[r],
                  toBits(ek.round_keys[r]));
      sim->poke(sim == &sc ? clean_mode : mode_sig, BitVec(8, 0x5a));
      sim->evalComb();
    }
    // Functionally indistinguishable on random vectors: same ciphertext,
    // same status.
    EXPECT_EQ(sc.peek(clean_p.ct), st.peek(troj_p.ct));
    EXPECT_EQ(sc.peek(clean_status), st.peek(status_sig));
    EXPECT_EQ(st.peek(status_sig).toU64(), 0x5au);
  }
}

TEST(TrojanedAes, CaughtByStaticIfc) {
  auto clean = buildAesWithStatus(false, nullptr);
  EXPECT_TRUE(ifc::check(clean).ok());

  auto troj = buildAesWithStatus(true, nullptr);
  const auto report = ifc::check(troj);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.mentionsSink("status")) << report.toString();
}

TEST(TrojanedAes, TriggerActuallyLeaksTheKeyByte) {
  // Confirm the Trojan is a real backdoor, not a dead circuit: drive the
  // magic plaintext and watch the key byte appear on status.
  AesIrPorts p;
  auto m = buildAesWithStatus(true, &p);
  sim::Simulator s{m};

  std::vector<std::uint8_t> key(16, 0xab);
  const auto ek = aes::expandKey(key, aes::KeySize::Aes128);
  s.poke(p.pt, BitVec::fromHex(128, "cafebabe8badf00ddeadbeef00c0ffee"));
  for (unsigned r = 0; r <= 10; ++r)
    s.poke(p.rk[r], toBits(ek.round_keys[r]));
  s.poke("mode", BitVec(8, 0));
  s.evalComb();
  EXPECT_EQ(s.peek("status").toU64(), ek.round_keys[0][0]);
}

}  // namespace
}  // namespace aesifc::rtl
