#include <gtest/gtest.h>

#include "common/rng.h"
#include "lattice/label.h"
#include "lattice/sec_level.h"

namespace aesifc::lattice {
namespace {

TEST(CatSet, Basics) {
  EXPECT_TRUE(CatSet::none().subsetOf(CatSet::all()));
  EXPECT_FALSE(CatSet::all().subsetOf(CatSet::none()));
  EXPECT_EQ(CatSet::category(3).mask(), 0x8u);
  EXPECT_EQ(CatSet::level(0), CatSet::none());
  EXPECT_EQ(CatSet::level(16), CatSet::all());
  EXPECT_EQ(CatSet::level(4).mask(), 0xfu);
}

TEST(CatSet, ChainEmbedding) {
  for (unsigned a = 0; a <= 16; ++a) {
    for (unsigned b = 0; b <= 16; ++b) {
      EXPECT_EQ(CatSet::level(a).subsetOf(CatSet::level(b)), a <= b)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(CatSet, ToString) {
  EXPECT_EQ(CatSet::none().toString(), "{}");
  EXPECT_EQ(CatSet::all().toString(), "{*}");
  EXPECT_EQ(CatSet::category(0).unionWith(CatSet::category(5)).toString(),
            "{0,5}");
}

TEST(Conf, FlowOrientation) {
  // Public flows to secret, never the reverse.
  EXPECT_TRUE(Conf::bottom().flowsTo(Conf::top()));
  EXPECT_FALSE(Conf::top().flowsTo(Conf::bottom()));
  // Distinct user categories are incomparable (user isolation, Fig. 2).
  EXPECT_FALSE(Conf::category(1).flowsTo(Conf::category(2)));
  EXPECT_FALSE(Conf::category(2).flowsTo(Conf::category(1)));
}

TEST(Integ, FlowOrientation) {
  // Trusted flows to untrusted, never the reverse.
  EXPECT_TRUE(Integ::top().flowsTo(Integ::bottom()));
  EXPECT_FALSE(Integ::bottom().flowsTo(Integ::top()));
  EXPECT_FALSE(Integ::category(1).flowsTo(Integ::category(2)));
}

TEST(Integ, JoinIsLessTrusted) {
  // Paper Section 2.4: (P,U) joinI (P,T) => (P,U).
  EXPECT_EQ(Integ::bottom().join(Integ::top()), Integ::bottom());
  EXPECT_EQ(Integ::top().join(Integ::top()), Integ::top());
}

TEST(Conf, JoinIsMoreSecret) {
  // Paper Section 2.4: (P,U) joinC (S,U) => (S,U).
  EXPECT_EQ(Conf::bottom().join(Conf::top()), Conf::top());
}

TEST(Reflection, PaperIdentities) {
  // r(P) = U and r(U) = P (Section 2.4).
  EXPECT_EQ(reflectToInteg(Conf::bottom()), Integ::bottom());
  EXPECT_EQ(reflectToConf(Integ::bottom()), Conf::bottom());
  // And the top points map to each other (master-key argument, 3.2.2).
  EXPECT_EQ(reflectToInteg(Conf::top()), Integ::top());
  EXPECT_EQ(reflectToConf(Integ::top()), Conf::top());
}

TEST(Label, FlowRequiresBothDimensions) {
  const Label a{Conf::bottom(), Integ::top()};      // (P,T)
  const Label b{Conf::top(), Integ::top()};         // (S,T)
  const Label c{Conf::bottom(), Integ::bottom()};   // (P,U)
  EXPECT_TRUE(a.flowsTo(b));
  EXPECT_TRUE(a.flowsTo(c));
  EXPECT_FALSE(b.flowsTo(a));
  EXPECT_FALSE(c.flowsTo(a));
  EXPECT_FALSE(b.flowsTo(c));
  EXPECT_FALSE(c.flowsTo(b));
}

TEST(Label, NamedPoints) {
  EXPECT_TRUE(Label::publicTrusted().flowsTo(Label::mostRestrictive()));
  EXPECT_TRUE(Label::publicTrusted().flowsTo(Label::topTop()));
  EXPECT_TRUE(Label::topTop().flowsTo(Label::mostRestrictive()));
  EXPECT_FALSE(Label::mostRestrictive().flowsTo(Label::topTop()));
}

TEST(Label, ToString) {
  EXPECT_EQ(Label::publicTrusted().toString(), "(PUB,TRU)");
  EXPECT_EQ(Label::topTop().toString(), "(SEC,TRU)");
  EXPECT_EQ(Label::publicUntrusted().toString(), "(PUB,UNT)");
}

TEST(Principal, UserAndSupervisor) {
  const auto alice = Principal::user("alice", 1);
  EXPECT_EQ(alice.authority.c, Conf::category(1));
  EXPECT_EQ(alice.authority.i, Integ::category(1));
  const auto sup = Principal::supervisor();
  EXPECT_EQ(sup.authority, Label::topTop());
  // Every user's data can flow (conf-wise) to the supervisor.
  EXPECT_TRUE(alice.authority.c.flowsTo(sup.authority.c));
}

// --- Lattice laws, property-swept over random points -------------------------

struct LawCase {
  std::uint64_t seed;
};

class LatticeLawTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Label randomLabel(Rng& rng) {
    return Label{Conf{CatSet{static_cast<std::uint16_t>(rng.next())}},
                 Integ{CatSet{static_cast<std::uint16_t>(rng.next())}}};
  }
};

TEST_P(LatticeLawTest, JoinCommutativeAssociativeIdempotent) {
  Rng rng{GetParam()};
  for (int i = 0; i < 100; ++i) {
    const Label a = randomLabel(rng), b = randomLabel(rng),
                c = randomLabel(rng);
    EXPECT_EQ(a.join(b), b.join(a));
    EXPECT_EQ(a.join(b).join(c), a.join(b.join(c)));
    EXPECT_EQ(a.join(a), a);
  }
}

TEST_P(LatticeLawTest, MeetCommutativeAssociativeIdempotent) {
  Rng rng{GetParam()};
  for (int i = 0; i < 100; ++i) {
    const Label a = randomLabel(rng), b = randomLabel(rng),
                c = randomLabel(rng);
    EXPECT_EQ(a.meet(b), b.meet(a));
    EXPECT_EQ(a.meet(b).meet(c), a.meet(b.meet(c)));
    EXPECT_EQ(a.meet(a), a);
  }
}

TEST_P(LatticeLawTest, Absorption) {
  Rng rng{GetParam()};
  for (int i = 0; i < 100; ++i) {
    const Label a = randomLabel(rng), b = randomLabel(rng);
    EXPECT_EQ(a.join(a.meet(b)), a);
    EXPECT_EQ(a.meet(a.join(b)), a);
  }
}

TEST_P(LatticeLawTest, JoinIsLeastUpperBound) {
  Rng rng{GetParam()};
  for (int i = 0; i < 100; ++i) {
    const Label a = randomLabel(rng), b = randomLabel(rng);
    const Label j = a.join(b);
    EXPECT_TRUE(a.flowsTo(j));
    EXPECT_TRUE(b.flowsTo(j));
    // Least: any upper bound dominates the join.
    const Label u = j.join(randomLabel(rng));
    if (a.flowsTo(u) && b.flowsTo(u)) EXPECT_TRUE(j.flowsTo(u));
  }
}

TEST_P(LatticeLawTest, MeetIsGreatestLowerBound) {
  Rng rng{GetParam()};
  for (int i = 0; i < 100; ++i) {
    const Label a = randomLabel(rng), b = randomLabel(rng);
    const Label mt = a.meet(b);
    EXPECT_TRUE(mt.flowsTo(a));
    EXPECT_TRUE(mt.flowsTo(b));
  }
}

TEST_P(LatticeLawTest, FlowIsPartialOrder) {
  Rng rng{GetParam()};
  for (int i = 0; i < 100; ++i) {
    const Label a = randomLabel(rng), b = randomLabel(rng),
                c = randomLabel(rng);
    EXPECT_TRUE(a.flowsTo(a));
    if (a.flowsTo(b) && b.flowsTo(a)) EXPECT_EQ(a, b);
    if (a.flowsTo(b) && b.flowsTo(c)) EXPECT_TRUE(a.flowsTo(c));
  }
}

TEST_P(LatticeLawTest, ReflectionMonotone) {
  Rng rng{GetParam()};
  for (int i = 0; i < 100; ++i) {
    const Label a = randomLabel(rng), b = randomLabel(rng);
    if (a.c.flowsTo(b.c)) {
      // Reflection preserves the category order (conf -> integ direction:
      // more categories = more conf = more trust after reflection).
      EXPECT_TRUE(
          a.c.cats.subsetOf(b.c.cats) &&
          reflectToInteg(a.c).cats.subsetOf(reflectToInteg(b.c).cats));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatticeLawTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace aesifc::lattice
