// Parametric (N-stage) stall pipeline: the static verdicts must be stable
// across pipeline depth, and the runtime behavior must match at any depth.

#include <gtest/gtest.h>

#include "ifc/checker.h"
#include "rtl/verif_models.h"
#include "sim/simulator.h"

namespace aesifc::rtl {
namespace {

class StallDepthTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(StallDepthTest, MeetGatedVerifiesAtAnyDepth) {
  auto m = buildStallPipelineN(GetParam(), /*meet_gated=*/true);
  const auto report = ifc::check(m);
  EXPECT_TRUE(report.ok()) << report.toString();
}

TEST_P(StallDepthTest, UngatedRejectedAtAnyDepth) {
  auto m = buildStallPipelineN(GetParam(), /*meet_gated=*/false);
  const auto report = ifc::check(m);
  ASSERT_FALSE(report.ok());
  // Every stage's data and tag registers are timing-tainted.
  EXPECT_EQ(report.count(ifc::ViolationKind::TimingViolation),
            2u * GetParam());
}

TEST_P(StallDepthTest, DataTraversesAllStages) {
  auto m = buildStallPipelineN(GetParam(), true);
  sim::Simulator s{m};
  s.poke("in_tag", BitVec(2, 1));
  s.poke("req_tag", BitVec(2, 0));
  s.poke("stall_req", BitVec(1, 0));
  s.poke("in_data", BitVec(8, 0x3c));
  s.step();
  s.poke("in_data", BitVec(8, 0x00));
  s.step(GetParam() - 1);
  EXPECT_EQ(s.peek("out_data").toU64(), 0x3cu);
}

INSTANTIATE_TEST_SUITE_P(Depths, StallDepthTest,
                         ::testing::Values(2u, 3u, 4u));

TEST(StallDepth, CheckerCostGrowsWithValuationSpace) {
  // Not a performance assertion — just that deeper variants stay checkable
  // within the enumeration limit and produce consistent verdicts.
  for (unsigned n = 2; n <= 5; ++n) {
    auto m = buildStallPipelineN(n, true);
    EXPECT_TRUE(ifc::check(m).ok()) << "depth " << n;
  }
}

TEST(StallDepth, TooWideSelectorSpaceRejectedGracefully) {
  // 7 stages -> 4^(7+2) = 262144 valuations > the checker's default cap.
  auto m = buildStallPipelineN(7, true);
  ifc::CheckerOptions opts;
  opts.max_valuations = 1u << 16;
  const auto report = ifc::check(m, opts);
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.count(ifc::ViolationKind::IllFormedDependent), 1u);
}

}  // namespace
}  // namespace aesifc::rtl
