// AccelService unit coverage: admission control (per-tenant bounded queues,
// shed-oldest vs reject-new, global watermark backpressure), the health
// state machine (error-budget windows, wedged-device quarantine, probation
// canaries), circuit breaking to the software fallback, and — the decisive
// security property — that degraded mode re-checks the tenant's label and
// refuses exactly what the tagged pipeline would refuse.

#include <gtest/gtest.h>

#include <map>

#include "aes/cipher.h"
#include "soc/policy_engine.h"
#include "soc/service.h"

namespace aesifc::soc {
namespace {

using accel::AcceleratorConfig;
using accel::AesAccelerator;
using accel::SecurityMode;
using lattice::Conf;
using lattice::Principal;

std::vector<std::uint8_t> keyOf(unsigned tenant) {
  std::vector<std::uint8_t> k(16);
  for (unsigned i = 0; i < 16; ++i)
    k[i] = static_cast<std::uint8_t>(0x30 + 17 * tenant + i);
  return k;
}

// Accelerator + service with `n` single-category tenants.
struct Rig {
  AesAccelerator acc;
  AccelService svc;
  std::vector<unsigned> tenants;
  std::vector<aes::ExpandedKey> golden;

  explicit Rig(unsigned n, ServiceConfig cfg = {},
               AcceleratorConfig acfg = {})
      : acc{acfg}, svc{acc, cfg} {
    acc.addUser(Principal::supervisor());
    for (unsigned t = 0; t < n; ++t) {
      const unsigned user =
          acc.addUser(Principal::user("t" + std::to_string(t), t + 1));
      TenantSpec spec;
      spec.user = user;
      spec.key_slot = t + 1;
      spec.cell_base = 2 * t;
      spec.key = keyOf(t);
      spec.key_conf = Conf::category(t + 1);
      spec.queue_depth = 8;
      tenants.push_back(svc.addTenant(spec));
      golden.push_back(aes::expandKey(spec.key, aes::KeySize::Aes128));
    }
  }
};

aes::Block patternBlock(std::uint8_t seed) {
  aes::Block b;
  for (unsigned i = 0; i < 16; ++i)
    b[i] = static_cast<std::uint8_t>(seed + i);
  return b;
}

TEST(ServiceAdmission, RejectNewBouncesWhenTenantQueueFull) {
  ServiceConfig cfg;
  cfg.overflow = OverflowPolicy::RejectNew;
  Rig r{1, cfg};
  for (unsigned i = 0; i < 8; ++i)
    EXPECT_TRUE(r.svc.submit(0, patternBlock(i)).admitted);
  const auto res = r.svc.submit(0, patternBlock(99));
  EXPECT_FALSE(res.admitted);
  EXPECT_EQ(res.error, AdmitError::QueueFull);
  EXPECT_EQ(r.svc.stats().rejected_queue_full, 1u);
  EXPECT_EQ(r.svc.queued(0), 8u);
}

TEST(ServiceAdmission, ShedOldestEvictsOwnOldestAndResolvesItsTicket) {
  ServiceConfig cfg;
  cfg.overflow = OverflowPolicy::ShedOldest;
  Rig r{1, cfg};
  std::uint64_t first_ticket = 0;
  for (unsigned i = 0; i < 8; ++i) {
    const auto res = r.svc.submit(0, patternBlock(i));
    ASSERT_TRUE(res.admitted);
    if (i == 0) first_ticket = res.ticket;
  }
  const auto res = r.svc.submit(0, patternBlock(200));
  EXPECT_TRUE(res.admitted);
  EXPECT_EQ(r.svc.stats().shed, 1u);
  EXPECT_EQ(r.svc.queued(0), 8u);  // still bounded
  // The victim surfaces as a Shed completion, never silently vanishes.
  const auto c = r.svc.fetch(0);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->ticket, first_ticket);
  EXPECT_EQ(c->status, CompletionStatus::Shed);
  EXPECT_EQ(c->served_by, ServedBy::None);
}

TEST(ServiceAdmission, GlobalWatermarkAppliesBackpressure) {
  ServiceConfig cfg;
  cfg.global_high_watermark = 6;
  Rig r{2, cfg};
  for (unsigned i = 0; i < 3; ++i) {
    EXPECT_TRUE(r.svc.submit(0, patternBlock(i)).admitted);
    EXPECT_TRUE(r.svc.submit(1, patternBlock(i)).admitted);
  }
  // Total queued hit the watermark: the next offer bounces even though the
  // tenant's own queue has room.
  const auto res = r.svc.submit(0, patternBlock(50));
  EXPECT_FALSE(res.admitted);
  EXPECT_EQ(res.error, AdmitError::Backpressure);
  EXPECT_EQ(r.svc.stats().rejected_backpressure, 1u);
}

TEST(ServiceServing, HealthyPathServesAllTenantsCorrectlyOnHardware) {
  Rig r{3};
  std::map<std::uint64_t, std::pair<unsigned, aes::Block>> want;
  for (unsigned i = 0; i < 6; ++i) {
    for (unsigned t = 0; t < 3; ++t) {
      const auto b = patternBlock(static_cast<std::uint8_t>(16 * t + i));
      const auto res = r.svc.submit(t, b);
      ASSERT_TRUE(res.admitted);
      want[res.ticket] = {t, b};
    }
  }
  r.svc.runUntilIdle(1u << 16);
  EXPECT_EQ(r.svc.health(), HealthState::Healthy);
  for (unsigned t = 0; t < 3; ++t) {
    unsigned got = 0;
    while (auto c = r.svc.fetch(t)) {
      ASSERT_EQ(c->status, CompletionStatus::Ok);
      EXPECT_EQ(c->served_by, ServedBy::Hardware);
      const auto& [tenant, pt] = want.at(c->ticket);
      EXPECT_EQ(tenant, t);
      EXPECT_EQ(c->data, aes::encryptBlock(pt, r.golden[t]));
      ++got;
    }
    EXPECT_EQ(got, 6u);
    EXPECT_EQ(r.svc.completedOf(t), 6u);
  }
  EXPECT_EQ(r.svc.stats().completed_fallback, 0u);
}

// A service config that makes health transitions fast enough to unit-test.
ServiceConfig fastHealthConfig() {
  ServiceConfig cfg;
  cfg.health.window_cycles = 256;
  cfg.health.wedged_windows = 2;
  cfg.health.quarantine_residency_cycles = 400;
  cfg.health.recovery_windows = 1;
  cfg.healthy_opts = {.timeout_cycles = 100, .max_retries = 0,
                      .backoff_cycles = 4};
  cfg.degraded_opts = {.timeout_cycles = 60, .max_retries = 0,
                       .backoff_cycles = 4};
  cfg.canary_opts = {.timeout_cycles = 200, .max_retries = 1,
                     .backoff_cycles = 4};
  cfg.quota_per_round = 2;
  cfg.max_requeues = 1;
  return cfg;
}

TEST(ServiceHealth, WedgedDeviceQuarantinesFailsOverAndRecoversViaCanaries) {
  Rig r{2, fastHealthConfig()};
  // Wedge the device: receivers never ready, every hardware op times out.
  r.acc.setReceiverReady(1, false);  // tenant users are 1 and 2
  r.acc.setReceiverReady(2, false);

  std::uint64_t sent = 0;
  auto offer = [&] {
    for (unsigned t = 0; t < 2; ++t) {
      if (r.svc.queued(t) < 4) {
        r.svc.submit(t, patternBlock(static_cast<std::uint8_t>(sent++)));
      }
    }
  };

  // Phase 1: pump until the breaker trips.
  unsigned guard = 0;
  while (r.svc.health() != HealthState::Quarantined && guard++ < 400) {
    offer();
    r.svc.pump();
  }
  ASSERT_EQ(r.svc.health(), HealthState::Quarantined);
  EXPECT_GE(r.svc.stats().hw_transient_failures, 1u);

  // Phase 2: device repaired; traffic keeps flowing on the fallback until
  // residency elapses, then canaries re-admit the hardware.
  r.acc.setReceiverReady(1, true);
  r.acc.setReceiverReady(2, true);
  guard = 0;
  while (r.svc.health() != HealthState::Healthy && guard++ < 800) {
    offer();
    r.svc.pump();
  }
  ASSERT_EQ(r.svc.health(), HealthState::Healthy);
  EXPECT_GE(r.svc.stats().completed_fallback, 1u);
  EXPECT_GE(r.svc.stats().canary_rounds, 1u);

  // Phase 3: hardware serves again.
  const auto hw_before = r.svc.stats().completed_hw;
  offer();
  r.svc.runUntilIdle(1u << 16);
  EXPECT_GT(r.svc.stats().completed_hw, hw_before);

  // The monitor walked Quarantined -> Probation -> Healthy.
  EXPECT_GE(r.svc.monitor().entries(HealthState::Quarantined), 1u);
  EXPECT_GE(r.svc.monitor().entries(HealthState::Probation), 1u);

  // Every transition is on the device's security event ring.
  EXPECT_EQ(r.acc.eventCount(accel::SecurityEventKind::ServiceHealth),
            r.svc.monitor().transitions().size());

  // Fallback results were correct (spot check: everything fetched Ok must
  // match the golden model).
  for (unsigned t = 0; t < 2; ++t) {
    while (auto c = r.svc.fetch(t)) {
      if (c->status != CompletionStatus::Ok) continue;
    }
  }
}

// THE no-bypass property: a tenant whose result the tagged pipeline refuses
// to declassify (its key is provisioned at a confidentiality above the
// tenant's trust — the master-key pattern of Section 3.2.2) must be refused
// by the software fallback too. Degraded mode is not a policy downgrade.
TEST(ServiceLabelSafety, FallbackRefusesWhatTaggedPipelineRefuses) {
  auto cfg = fastHealthConfig();
  Rig r{1, cfg};

  // A second tenant whose key carries top confidentiality. The hardware
  // accepts the key load but suppresses every result at the pipeline exit.
  const unsigned eve = r.acc.addUser(Principal::user("eve", 9));
  TenantSpec spec;
  spec.user = eve;
  spec.key_slot = 5;
  spec.cell_base = 4;
  spec.key = keyOf(7);
  spec.key_conf = Conf::top();  // ck = top: only the supervisor may release
  const unsigned te = r.svc.addTenant(spec);

  // Sanity: the hardware path suppresses.
  auto res = r.svc.submit(te, patternBlock(1));
  ASSERT_TRUE(res.admitted);
  r.svc.runUntilIdle(1u << 14);
  auto c = r.svc.fetch(te);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->status, CompletionStatus::Suppressed);
  EXPECT_EQ(c->served_by, ServedBy::Hardware);
  EXPECT_EQ(c->data, aes::Block{});

  // Now trip the breaker (wedge + pump) so the same tenant is served by the
  // software fallback…
  r.acc.setReceiverReady(1, false);
  r.acc.setReceiverReady(eve, false);
  unsigned guard = 0;
  std::uint8_t seed = 0;
  while (r.svc.health() != HealthState::Quarantined && guard++ < 400) {
    if (r.svc.queued(0) < 4) r.svc.submit(0, patternBlock(seed++));
    r.svc.pump();
  }
  ASSERT_EQ(r.svc.health(), HealthState::Quarantined);

  // …and verify the fallback ALSO refuses: same verdict, no ciphertext.
  res = r.svc.submit(te, patternBlock(2));
  ASSERT_TRUE(res.admitted);
  while (r.svc.queued(te) > 0 && guard++ < 800) r.svc.pump();
  bool saw_fallback_suppression = false;
  while ((c = r.svc.fetch(te))) {
    if (c->served_by == ServedBy::SoftwareFallback) {
      EXPECT_EQ(c->status, CompletionStatus::Suppressed);
      EXPECT_EQ(c->data, aes::Block{});
      saw_fallback_suppression = true;
    }
  }
  EXPECT_TRUE(saw_fallback_suppression);
  EXPECT_GE(r.svc.stats().fallback_suppressed, 1u);

  // The policy-engine decision matches the hardware's for both tenants.
  EXPECT_FALSE(
      degradedReleaseDecision(r.acc.principal(eve), Conf::top()).allowed);
  EXPECT_TRUE(
      degradedReleaseDecision(r.acc.principal(1), Conf::category(1)).allowed);
}

// A tenant whose releases are always suppressed (ck = top) can never show a
// canary its ciphertext — healthy hardware suppresses the probe too. Such a
// tenant must not block re-admission: the expected canary verdict for it is
// suppression, and only timeouts/aborts/wrong data count as failures.
TEST(ServiceLabelSafety, SuppressedTenantDoesNotBlockProbationRecovery) {
  auto cfg = fastHealthConfig();
  Rig r{1, cfg};
  const unsigned eve = r.acc.addUser(Principal::user("eve", 9));
  TenantSpec spec;
  spec.user = eve;
  spec.key_slot = 5;
  spec.cell_base = 4;
  spec.key = keyOf(7);
  spec.key_conf = Conf::top();
  r.svc.addTenant(spec);

  // Wedge the healthy tenant's receiver until the breaker trips…
  r.acc.setReceiverReady(1, false);
  unsigned guard = 0;
  std::uint8_t seed = 0;
  while (r.svc.health() != HealthState::Quarantined && guard++ < 400) {
    if (r.svc.queued(0) < 4) r.svc.submit(0, patternBlock(seed++));
    r.svc.pump();
  }
  ASSERT_EQ(r.svc.health(), HealthState::Quarantined);

  // …then let the device recover. Probation must re-admit the hardware
  // even though eve's canary can only ever come back Suppressed.
  r.acc.setReceiverReady(1, true);
  guard = 0;
  while (r.svc.health() != HealthState::Healthy && guard++ < 2000)
    r.svc.pump();
  EXPECT_EQ(r.svc.health(), HealthState::Healthy);
  EXPECT_EQ(r.svc.stats().canary_failures, 0u);
  EXPECT_GE(r.svc.stats().canary_rounds, 1u);
}

TEST(ServiceLabelSafety, SupervisorMayReleaseMasterKeyResultsEvenDegraded) {
  AesAccelerator acc{AcceleratorConfig{}};
  const unsigned sup = acc.addUser(Principal::supervisor());
  EXPECT_TRUE(degradedReleaseDecision(acc.principal(sup), Conf::top()).allowed);
}

TEST(HealthMonitorUnit, RateThresholdsDriveDegradeAndQuarantine) {
  HealthConfig cfg;
  cfg.degrade_threshold = 0.1;
  cfg.quarantine_threshold = 0.5;
  cfg.recovery_windows = 2;
  HealthMonitor m{cfg};

  RobustnessStats quiet;
  EXPECT_EQ(m.onWindow(quiet, 10, 10, 100), HealthState::Healthy);

  RobustnessStats some;
  some.timeouts = 2;  // rate 0.2 > degrade
  EXPECT_EQ(m.onWindow(some, 10, 8, 200), HealthState::Degraded);

  // One clean window is not enough; two are.
  EXPECT_EQ(m.onWindow(quiet, 10, 10, 300), HealthState::Degraded);
  EXPECT_EQ(m.onWindow(quiet, 10, 10, 400), HealthState::Healthy);

  RobustnessStats storm;
  storm.fault_aborts = 6;  // rate 0.6 > quarantine
  EXPECT_EQ(m.onWindow(storm, 10, 4, 500), HealthState::Quarantined);

  // Traffic windows cannot leave quarantine…
  EXPECT_EQ(m.onWindow(quiet, 10, 10, 600), HealthState::Quarantined);
  // …only residency + canaries can.
  EXPECT_FALSE(m.tryBeginProbation(500 + cfg.quarantine_residency_cycles - 1));
  EXPECT_TRUE(m.tryBeginProbation(500 + cfg.quarantine_residency_cycles));
  EXPECT_EQ(m.state(), HealthState::Probation);
  m.onCanaryVerdict(false, 5000);
  EXPECT_EQ(m.state(), HealthState::Quarantined);  // failed probe: back
  EXPECT_TRUE(m.tryBeginProbation(5000 + cfg.quarantine_residency_cycles));
  m.onCanaryVerdict(true, 9000);
  EXPECT_EQ(m.state(), HealthState::Healthy);

  EXPECT_EQ(m.entries(HealthState::Quarantined), 2u);
  EXPECT_EQ(m.entries(HealthState::Probation), 2u);
}

TEST(HealthMonitorUnit, WedgedWindowsQuarantineWithoutRateSignal) {
  HealthConfig cfg;
  cfg.wedged_windows = 2;
  HealthMonitor m{cfg};
  RobustnessStats w;
  w.timeouts = 1;
  // Low rate (0.05 < degrade) but zero successes: wedged.
  EXPECT_EQ(m.onWindow(w, 20, 0, 100), HealthState::Healthy);
  EXPECT_EQ(m.onWindow(w, 20, 0, 200), HealthState::Quarantined);
}

TEST(HealthMonitorUnit, EmptyWindowsAreNeutral) {
  HealthMonitor m{HealthConfig{}};
  RobustnessStats w;
  EXPECT_EQ(m.onWindow(w, 0, 0, 100), HealthState::Healthy);
  EXPECT_TRUE(m.transitions().empty());
}

}  // namespace
}  // namespace aesifc::soc
