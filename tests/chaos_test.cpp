// Adversarial-environment fuzzing of the accelerator: random receiver
// readiness, random submissions from several users, both modes. Every
// response must be correct, complete, and in per-user order, regardless of
// how often the stall/buffer machinery engages.

#include <gtest/gtest.h>

#include <map>

#include "accel/driver.h"
#include "aes/cipher.h"
#include "common/rng.h"

namespace aesifc::accel {
namespace {

using lattice::Conf;
using lattice::Principal;

struct ChaosParams {
  SecurityMode mode;
  std::uint64_t seed;
};

class ChaosTest : public ::testing::TestWithParam<ChaosParams> {};

TEST_P(ChaosTest, AllTrafficCorrectCompleteAndOrdered) {
  const auto [mode, seed] = GetParam();
  AcceleratorConfig cfg;
  cfg.mode = mode;
  cfg.out_buffer_depth = 512;  // large enough that nothing is dropped
  AesAccelerator acc{cfg};

  const unsigned sup = acc.addUser(Principal::supervisor());
  (void)sup;
  constexpr unsigned kUsers = 3;
  unsigned users[kUsers];
  std::vector<std::vector<std::uint8_t>> keys(kUsers);
  std::vector<aes::ExpandedKey> golden;
  Rng rng{seed};
  for (unsigned u = 0; u < kUsers; ++u) {
    users[u] = acc.addUser(Principal::user("u" + std::to_string(u), u + 1));
    keys[u].resize(16);
    for (auto& b : keys[u]) b = static_cast<std::uint8_t>(rng.next());
    ASSERT_TRUE(loadKey128(acc, users[u], u + 1, 2 * u, keys[u],
                           Conf::category(u + 1)));
    golden.push_back(aes::expandKey(keys[u], aes::KeySize::Aes128));
  }

  struct Expect {
    aes::Block pt;
    bool decrypt;
    unsigned user_idx;
  };
  std::map<std::uint64_t, Expect> expect;
  std::vector<std::uint64_t> last_seen_id(kUsers, 0);
  std::vector<unsigned> submitted(kUsers, 0), received(kUsers, 0);
  constexpr unsigned kPerUser = 100;
  std::uint64_t next_id = 1;

  auto drain = [&] {
    for (unsigned u = 0; u < kUsers; ++u) {
      while (auto out = acc.fetchOutput(users[u])) {
        auto it = expect.find(out->req_id);
        ASSERT_NE(it, expect.end());
        ASSERT_EQ(it->second.user_idx, u);
        EXPECT_FALSE(out->suppressed);
        const auto& ek = golden[u];
        const aes::Block want = it->second.decrypt
                                    ? aes::decryptBlock(it->second.pt, ek)
                                    : aes::encryptBlock(it->second.pt, ek);
        EXPECT_EQ(out->data, want) << "req " << out->req_id;
        // Per-user responses arrive in submission order.
        EXPECT_GT(out->req_id, last_seen_id[u]);
        last_seen_id[u] = out->req_id;
        ++received[u];
        expect.erase(it);
      }
    }
  };

  unsigned guard = 0;
  auto done = [&] {
    for (unsigned u = 0; u < kUsers; ++u) {
      if (received[u] < kPerUser) return false;
    }
    return true;
  };

  while (!done() && guard++ < 60000) {
    // Chaotic receivers: flip readiness with 10% probability per cycle.
    for (unsigned u = 0; u < kUsers; ++u) {
      if (rng.chance(0.1)) acc.setReceiverReady(users[u], rng.chance(0.6));
    }
    for (unsigned u = 0; u < kUsers; ++u) {
      if (submitted[u] >= kPerUser) continue;
      if (acc.pendingInputs(users[u]) >= 2 || !rng.chance(0.7)) continue;
      BlockRequest req;
      req.req_id = next_id++;
      req.user = users[u];
      req.key_slot = u + 1;
      req.decrypt = rng.chance(0.4);
      for (auto& b : req.data) b = static_cast<std::uint8_t>(rng.next());
      if (acc.submit(req)) {
        expect[req.req_id] = {req.data, req.decrypt, u};
        ++submitted[u];
      }
    }
    acc.tick();
    drain();
  }
  // Let everything flush with receivers open.
  for (unsigned u = 0; u < kUsers; ++u) acc.setReceiverReady(users[u], true);
  for (unsigned i = 0; i < 2000 && !done(); ++i) {
    acc.tick();
    drain();
  }

  for (unsigned u = 0; u < kUsers; ++u) {
    EXPECT_EQ(received[u], kPerUser) << "user " << u;
  }
  EXPECT_TRUE(expect.empty());
  EXPECT_EQ(acc.stats().dropped, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, ChaosTest,
    ::testing::Values(ChaosParams{SecurityMode::Baseline, 1},
                      ChaosParams{SecurityMode::Baseline, 2},
                      ChaosParams{SecurityMode::Protected, 1},
                      ChaosParams{SecurityMode::Protected, 2},
                      ChaosParams{SecurityMode::Protected, 3},
                      ChaosParams{SecurityMode::Protected, 4}));

}  // namespace
}  // namespace aesifc::accel
