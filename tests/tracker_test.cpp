#include "ifc/tracker.h"

#include <gtest/gtest.h>

namespace aesifc::ifc {
namespace {

using hdl::LabelTerm;
using hdl::Module;
using lattice::Conf;
using lattice::Integ;
using lattice::Label;
using lattice::Principal;

const Label kPT = Label::publicTrusted();
const Label kSecret{Conf::top(), Integ::top()};
const LabelTerm kPTTerm = LabelTerm::of(kPT);

TEST(Tracker, LabelsPropagateThroughLogic) {
  Module m{"prop"};
  const auto a = m.input("a", 8, kPTTerm);
  const auto b = m.input("b", 8, kPTTerm);
  const auto o = m.output("o", 8, LabelTerm::unconstrained());
  m.assign(o, m.bxor(m.read(a), m.read(b)));

  DynamicTracker t{m};
  t.poke("a", BitVec(8, 0x12), kPT);
  t.poke("b", BitVec(8, 0x34), kSecret);
  t.evalComb();
  EXPECT_EQ(t.value("o").toU64(), 0x12u ^ 0x34u);
  EXPECT_EQ(t.label("o"), kSecret.join(kPT));
}

TEST(Tracker, OutputLeakDetected) {
  Module m{"leak"};
  const auto a = m.input("a", 8, kPTTerm);
  const auto o = m.output("o", 8, kPTTerm);  // public output
  m.assign(o, m.read(a));

  DynamicTracker t{m};
  t.poke("a", BitVec(8, 1), kSecret);  // secret data arrives at runtime
  t.step();
  EXPECT_GE(t.eventCount(RuntimeEvent::Kind::OutputLeak), 1u);
}

TEST(Tracker, NoLeakWhenDataIsPublic) {
  Module m{"ok"};
  const auto a = m.input("a", 8, kPTTerm);
  const auto o = m.output("o", 8, kPTTerm);
  m.assign(o, m.read(a));
  DynamicTracker t{m};
  t.poke("a", BitVec(8, 1), kPT);
  t.step(3);
  EXPECT_EQ(t.events().size(), 0u);
}

TEST(Tracker, PreciseMuxTracksTakenBranchOnly) {
  Module m{"mux"};
  const auto c = m.input("c", 1, kPTTerm);
  const auto s = m.input("s", 8, kPTTerm);
  const auto p = m.input("p", 8, kPTTerm);
  const auto o = m.output("o", 8, LabelTerm::unconstrained());
  m.assign(o, m.mux(m.read(c), m.read(s), m.read(p)));

  DynamicTracker precise{m, TrackPrecision::Precise};
  precise.poke("c", BitVec(1, 0), kPT);
  precise.poke("s", BitVec(8, 1), kSecret);
  precise.poke("p", BitVec(8, 2), kPT);
  precise.evalComb();
  // Public branch taken: precise tracking keeps the output public.
  EXPECT_EQ(precise.label("o"), kPT);

  DynamicTracker conservative{m, TrackPrecision::Conservative};
  conservative.poke("c", BitVec(1, 0), kPT);
  conservative.poke("s", BitVec(8, 1), kSecret);
  conservative.poke("p", BitVec(8, 2), kPT);
  conservative.evalComb();
  // GLIFT-style tracking joins both branches.
  EXPECT_EQ(conservative.label("o"), kSecret);
}

TEST(Tracker, RegisterHoldsLabelAndJoinsEnable) {
  Module m{"reg"};
  const auto d = m.input("d", 8, kPTTerm);
  const auto en = m.input("en", 1, kPTTerm);
  const auto r = m.reg("r", 8, kPTTerm);
  const auto o = m.output("o", 8, LabelTerm::unconstrained());
  m.regWrite(r, m.read(d), m.read(en));
  m.assign(o, m.read(r));

  DynamicTracker t{m};
  t.poke("d", BitVec(8, 7), kPT);
  t.poke("en", BitVec(1, 1), kSecret);  // secret-controlled update timing
  t.step();
  EXPECT_EQ(t.label("o"), kSecret);
}

TEST(Tracker, SuppressedWriteStillTaintsRegister) {
  Module m{"hold"};
  const auto d = m.input("d", 8, kPTTerm);
  const auto en = m.input("en", 1, kPTTerm);
  const auto r = m.reg("r", 8, kPTTerm);
  const auto o = m.output("o", 8, LabelTerm::unconstrained());
  m.regWrite(r, m.read(d), m.read(en));
  m.assign(o, m.read(r));

  DynamicTracker t{m};
  t.poke("d", BitVec(8, 7), kPT);
  t.poke("en", BitVec(1, 0), kSecret);  // no write, but the *absence* leaks
  t.step();
  EXPECT_EQ(t.label("o"), kSecret);
  EXPECT_EQ(t.value("o").toU64(), 0u);  // value unchanged
}

TEST(Tracker, RuntimeDeclassifyAllowed) {
  Module m{"dg"};
  const auto s = m.input("s", 8, LabelTerm::of(kSecret));
  const auto o = m.output("o", 8, kPTTerm);
  m.declassify(o, m.read(s), kPT, Principal::supervisor());

  DynamicTracker t{m};
  t.poke("s", BitVec(8, 0x42), kSecret);
  t.step();
  EXPECT_EQ(t.label("o"), kPT);
  EXPECT_EQ(t.events().size(), 0u);
}

TEST(Tracker, RuntimeDeclassifyRejectedKeepsLabel) {
  Module m{"dgbad"};
  const auto s = m.input("s", 8, LabelTerm::of(kSecret));
  const auto o = m.output("o", 8, LabelTerm::unconstrained());
  m.declassify(o, m.read(s), kPT,
               Principal{"mallory", Label{Conf::bottom(), Integ::bottom()}});

  DynamicTracker t{m};
  t.poke("s", BitVec(8, 0x42), kSecret);
  t.step();
  EXPECT_GE(t.eventCount(RuntimeEvent::Kind::DowngradeRejected), 1u);
  EXPECT_EQ(t.label("o"), kSecret);  // restrictive label retained
}

TEST(Tracker, DependentOutputAnnotationUsesRuntimeSelector) {
  Module m{"depout"};
  const auto sel = m.input("sel", 1, kPTTerm);
  const auto s = m.input("s", 8, kPTTerm);
  const auto o = m.output(
      "o", 8, LabelTerm::dependent(sel, {kPT, kSecret}));
  m.assign(o, m.read(s));

  DynamicTracker t{m};
  // Secret data while the selector says "secret window": fine.
  t.poke("sel", BitVec(1, 1), kPT);
  t.poke("s", BitVec(8, 1), kSecret);
  t.step();
  EXPECT_EQ(t.events().size(), 0u);
  // Secret data while the selector says "public window": leak.
  t.poke("sel", BitVec(1, 0), kPT);
  t.step();
  EXPECT_GE(t.eventCount(RuntimeEvent::Kind::OutputLeak), 1u);
}

TEST(Tracker, ResetClearsEventsAndLabels) {
  Module m{"rst"};
  const auto a = m.input("a", 8, kPTTerm);
  const auto o = m.output("o", 8, kPTTerm);
  m.assign(o, m.read(a));
  DynamicTracker t{m};
  t.poke("a", BitVec(8, 1), kSecret);
  t.step();
  EXPECT_GE(t.events().size(), 1u);
  t.reset();
  EXPECT_EQ(t.events().size(), 0u);
  EXPECT_EQ(t.label("a"), kPT);
}

TEST(RuntimeEvent, ToStringMentionsSignal) {
  RuntimeEvent e{RuntimeEvent::Kind::OutputLeak, 5, "ct", kSecret, kPT, "boom"};
  const auto s = e.toString();
  EXPECT_NE(s.find("ct"), std::string::npos);
  EXPECT_NE(s.find("cycle 5"), std::string::npos);
}

}  // namespace
}  // namespace aesifc::ifc
