#include "accel/mmio.h"

#include <gtest/gtest.h>

#include "aes/cipher.h"
#include "common/rng.h"

namespace aesifc::accel {
namespace {

using lattice::Principal;
using W = MmioWindow;

struct MmioFixture : ::testing::Test {
  AesAccelerator acc{AcceleratorConfig{}};
  unsigned sup = acc.addUser(Principal::supervisor());
  unsigned alice = acc.addUser(Principal::user("alice", 1));
  unsigned eve = acc.addUser(Principal::user("eve", 2));
  MmioWindow sup_win{acc, sup};
  MmioWindow alice_win{acc, alice};
  MmioWindow eve_win{acc, eve};
  Rng rng{77};

  // Program a 128-bit key load entirely through the register interface.
  bool mmioLoadKey(MmioWindow& win, unsigned slot, unsigned base,
                   const std::vector<std::uint8_t>& key, unsigned palette) {
    win.write(W::kKeyArg, (2u << 8) | base);  // configure 2 cells at base
    win.write(W::kKeyGo, 2);
    for (unsigned c = 0; c < 2; ++c) {
      std::uint32_t lo = 0, hi = 0;
      for (unsigned i = 0; i < 4; ++i) {
        lo |= static_cast<std::uint32_t>(key[8 * c + i]) << (8 * i);
        hi |= static_cast<std::uint32_t>(key[8 * c + 4 + i]) << (8 * i);
      }
      win.write(W::kKeyArg, base + c);
      win.write(W::kKeyLo, lo);
      win.write(W::kKeyHi, hi);
      win.write(W::kKeyGo, 1);
      if (win.read(W::kLastOpOk) == 0) return false;
    }
    win.write(W::kKeySlot, slot);
    win.write(W::kKeyArg, (palette << 8) | base);
    win.write(W::kKeyGo, 4);
    return win.read(W::kLastOpOk) == 1;
  }

  aes::Block randomBlock() {
    aes::Block b{};
    for (auto& x : b) x = static_cast<std::uint8_t>(rng.next());
    return b;
  }
};

TEST_F(MmioFixture, FullEncryptFlowThroughRegisters) {
  std::vector<std::uint8_t> key(16);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
  ASSERT_TRUE(mmioLoadKey(alice_win, 1, 0, key, 1));

  const auto pt = randomBlock();
  for (unsigned w = 0; w < 4; ++w) {
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(pt[4 * w + i]) << (8 * i);
    alice_win.write(W::kDataIn + 4 * w, v);
  }
  alice_win.write(W::kKeySlot, 1);
  alice_win.write(W::kCtrl, 1);  // submit encrypt
  EXPECT_EQ(alice_win.read(W::kLastOpOk), 1u);

  // Poll STATUS until the result shows up.
  unsigned waited = 0;
  while ((alice_win.read(W::kStatus) & 1u) == 0 && waited++ < 100) acc.tick();
  ASSERT_LT(waited, 100u);
  EXPECT_EQ(alice_win.read(W::kStatus) & 2u, 0u);  // not suppressed

  aes::Block out{};
  for (unsigned w = 0; w < 4; ++w) {
    const std::uint32_t v = alice_win.read(W::kDataOut + 4 * w);
    for (unsigned i = 0; i < 4; ++i)
      out[4 * w + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
  EXPECT_EQ(out, aes::encryptBlock(pt, key.data(), aes::KeySize::Aes128));

  alice_win.write(W::kCtrl, 4);  // pop
  EXPECT_EQ(alice_win.read(W::kStatus) & 1u, 0u);
}

TEST_F(MmioFixture, KeyCellProtectionVisibleThroughMmio) {
  std::vector<std::uint8_t> key(16, 0x42);
  ASSERT_TRUE(mmioLoadKey(alice_win, 1, 2, key, 1));
  // Eve's window stages a write into Alice's cell 2: refused, and the
  // failure is visible in LAST_OP_OK.
  eve_win.write(W::kKeyArg, 2);
  eve_win.write(W::kKeyLo, 0xdead);
  eve_win.write(W::kKeyHi, 0xbeef);
  eve_win.write(W::kKeyGo, 1);
  EXPECT_EQ(eve_win.read(W::kLastOpOk), 0u);
}

TEST_F(MmioFixture, ConfigWindowEnforcesIntegrity) {
  EXPECT_EQ(eve_win.read(W::kCfgBase + 0xc), 0x20190602u);  // version read
  eve_win.write(W::kCfgBase + 0x0, 1);  // debug_enable tamper
  EXPECT_EQ(eve_win.read(W::kLastOpOk), 0u);
  EXPECT_EQ(eve_win.read(W::kCfgBase + 0x0), 0u);
  sup_win.write(W::kCfgBase + 0x0, 1);
  EXPECT_EQ(sup_win.read(W::kLastOpOk), 1u);
  EXPECT_EQ(alice_win.read(W::kCfgBase + 0x0), 1u);
}

TEST_F(MmioFixture, DebugWindowTagChecked) {
  std::vector<std::uint8_t> key(16, 0x55);
  ASSERT_TRUE(mmioLoadKey(alice_win, 1, 0, key, 1));
  sup_win.write(W::kCfgBase + 0x0, 1);  // supervisor enables debug

  alice_win.write(W::kKeySlot, 1);
  alice_win.write(W::kCtrl, 1);
  acc.tick();  // Alice's block in stage 0

  eve_win.write(W::kDebugStage, 0);
  EXPECT_EQ(eve_win.read(W::kDebugData), 0u);
  EXPECT_EQ(eve_win.read(W::kDebugOk), 0u);

  sup_win.write(W::kDebugStage, 0);
  (void)sup_win.read(W::kDebugData);
  EXPECT_EQ(sup_win.read(W::kDebugOk), 1u);
}

TEST_F(MmioFixture, StatusCountsPendingOutputs) {
  std::vector<std::uint8_t> key(16, 0x66);
  ASSERT_TRUE(mmioLoadKey(alice_win, 1, 0, key, 1));
  alice_win.write(W::kKeySlot, 1);
  alice_win.write(W::kCtrl, 1);
  acc.tick();
  alice_win.write(W::kCtrl, 1);
  acc.run(80);
  EXPECT_EQ((alice_win.read(W::kStatus) >> 8) & 0xffffu, 2u);
  // Request ids are monotonically increasing within the window.
  const auto id1 =
      alice_win.read(W::kReqIdLo) |
      (static_cast<std::uint64_t>(alice_win.read(W::kReqIdHi)) << 32);
  alice_win.write(W::kCtrl, 4);
  const auto id2 =
      alice_win.read(W::kReqIdLo) |
      (static_cast<std::uint64_t>(alice_win.read(W::kReqIdHi)) << 32);
  EXPECT_EQ(id2, id1 + 1);
}

TEST_F(MmioFixture, UnmappedReadsReturnZero) {
  EXPECT_EQ(alice_win.read(0xffc), 0u);
  alice_win.write(0xffc, 123);  // ignored, no crash
}

}  // namespace
}  // namespace aesifc::accel
