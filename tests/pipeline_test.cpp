#include "accel/pipeline.h"

#include <gtest/gtest.h>

#include "aes/cipher.h"
#include "common/rng.h"

namespace aesifc::accel {
namespace {

struct PipelineFixture : ::testing::Test {
  RoundKeyRam ram;
  Rng rng{123};

  std::vector<std::uint8_t> randomKey(unsigned n) {
    std::vector<std::uint8_t> k(n);
    for (auto& b : k) b = static_cast<std::uint8_t>(rng.next());
    return k;
  }

  aes::Block randomBlock() {
    aes::Block b{};
    for (auto& x : b) x = static_cast<std::uint8_t>(rng.next());
    return b;
  }

  StageSlot makeSlot(unsigned key_slot, const aes::Block& data, bool decrypt,
                     std::uint64_t id) {
    StageSlot s;
    s.valid = true;
    s.state = aes::blockToState(data);
    s.key_slot = key_slot;
    s.total_rounds = ram.rounds(key_slot);
    s.decrypt = decrypt;
    s.req_id = id;
    return s;
  }
};

TEST_F(PipelineFixture, ThirtyStageLatencyForAes128) {
  const auto key = randomKey(16);
  ram.store(0, aes::expandKey(key, aes::KeySize::Aes128), lattice::Conf::bottom(),
            lattice::Label::publicTrusted());
  AesPipeline p{10, ram};
  EXPECT_EQ(p.depth(), 30u);

  const auto pt = randomBlock();
  auto out = p.advance(makeSlot(0, pt, false, 1));
  EXPECT_FALSE(out.has_value());
  unsigned cycles = 0;  // edges after the block entered stage 0
  while (!out.has_value() && cycles < 100) {
    out = p.advance(std::nullopt);
    ++cycles;
  }
  // Paper Section 4: "completes the encryption of a data block in 30
  // cycles" — the block occupies the 30 stage registers for 30 edges and
  // pops out on the edge after it leaves stage 29. The accelerator-level
  // accept-to-complete latency of exactly 30 is asserted in accel_test.
  EXPECT_EQ(cycles, 30u);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(aes::stateToBlock(out->state),
            aes::encryptBlock(pt, key.data(), aes::KeySize::Aes128));
}

TEST_F(PipelineFixture, OneBlockPerCycleThroughput) {
  const auto key = randomKey(16);
  ram.store(0, aes::expandKey(key, aes::KeySize::Aes128), lattice::Conf::bottom(),
            lattice::Label::publicTrusted());
  AesPipeline p{10, ram};

  std::vector<aes::Block> pts;
  std::vector<aes::Block> outs;
  const unsigned n = 64;
  for (unsigned i = 0; i < n + 30; ++i) {
    std::optional<StageSlot> in;
    if (i < n) {
      pts.push_back(randomBlock());
      in = makeSlot(0, pts.back(), false, i);
    }
    if (auto out = p.advance(in)) outs.push_back(aes::stateToBlock(out->state));
  }
  // Full rate: one completed block per cycle after the fill latency.
  ASSERT_EQ(outs.size(), n);
  for (unsigned i = 0; i < n; ++i) {
    EXPECT_EQ(outs[i], aes::encryptBlock(pts[i], key.data(), aes::KeySize::Aes128))
        << "block " << i;
  }
}

TEST_F(PipelineFixture, DecryptionWorksInPipeline) {
  const auto key = randomKey(16);
  ram.store(0, aes::expandKey(key, aes::KeySize::Aes128), lattice::Conf::bottom(),
            lattice::Label::publicTrusted());
  AesPipeline p{10, ram};

  const auto pt = randomBlock();
  const auto ct = aes::encryptBlock(pt, key.data(), aes::KeySize::Aes128);
  auto out = p.advance(makeSlot(0, ct, true, 1));
  for (unsigned i = 0; i < 29 && !out; ++i) out = p.advance(std::nullopt);
  out = out ? out : p.advance(std::nullopt);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(aes::stateToBlock(out->state), pt);
}

TEST_F(PipelineFixture, MixedEncryptDecryptInFlight) {
  const auto key = randomKey(16);
  ram.store(0, aes::expandKey(key, aes::KeySize::Aes128), lattice::Conf::bottom(),
            lattice::Label::publicTrusted());
  AesPipeline p{10, ram};

  std::vector<aes::Block> pts(16);
  std::vector<aes::Block> expect(16);
  for (unsigned i = 0; i < 16; ++i) {
    pts[i] = randomBlock();
    expect[i] = (i % 2 == 0)
                    ? aes::encryptBlock(pts[i], key.data(), aes::KeySize::Aes128)
                    : aes::decryptBlock(pts[i], key.data(), aes::KeySize::Aes128);
  }
  std::vector<aes::Block> outs;
  for (unsigned i = 0; i < 16 + 30; ++i) {
    std::optional<StageSlot> in;
    if (i < 16) in = makeSlot(0, pts[i], i % 2 == 1, i);
    if (auto out = p.advance(in)) outs.push_back(aes::stateToBlock(out->state));
  }
  ASSERT_EQ(outs.size(), 16u);
  for (unsigned i = 0; i < 16; ++i) EXPECT_EQ(outs[i], expect[i]);
}

TEST_F(PipelineFixture, MixedKeySizesShareThePipeline) {
  const auto k128 = randomKey(16);
  const auto k192 = randomKey(24);
  const auto k256 = randomKey(32);
  ram.store(0, aes::expandKey(k128, aes::KeySize::Aes128),
            lattice::Conf::bottom(), lattice::Label::publicTrusted());
  ram.store(1, aes::expandKey(k192, aes::KeySize::Aes192),
            lattice::Conf::bottom(), lattice::Label::publicTrusted());
  ram.store(2, aes::expandKey(k256, aes::KeySize::Aes256),
            lattice::Conf::bottom(), lattice::Label::publicTrusted());
  AesPipeline p{14, ram};  // sized for AES-256
  EXPECT_EQ(p.depth(), 42u);

  std::vector<aes::Block> pts(9);
  std::vector<aes::Block> expect(9);
  for (unsigned i = 0; i < 9; ++i) {
    pts[i] = randomBlock();
    const unsigned slot = i % 3;
    const auto* key = slot == 0 ? k128.data() : slot == 1 ? k192.data() : k256.data();
    const auto ks = slot == 0   ? aes::KeySize::Aes128
                    : slot == 1 ? aes::KeySize::Aes192
                                : aes::KeySize::Aes256;
    expect[i] = aes::encryptBlock(pts[i], key, ks);
  }
  std::vector<aes::Block> outs;
  for (unsigned i = 0; i < 9 + 42; ++i) {
    std::optional<StageSlot> in;
    if (i < 9) in = makeSlot(i % 3, pts[i], false, i);
    if (auto out = p.advance(in)) outs.push_back(aes::stateToBlock(out->state));
  }
  ASSERT_EQ(outs.size(), 9u);
  for (unsigned i = 0; i < 9; ++i) EXPECT_EQ(outs[i], expect[i]) << i;
}

TEST_F(PipelineFixture, MeetConfOverOccupiedStages) {
  const auto key = randomKey(16);
  ram.store(0, aes::expandKey(key, aes::KeySize::Aes128), lattice::Conf::bottom(),
            lattice::Label::publicTrusted());
  AesPipeline p{10, ram};

  // Empty pipeline: meet is top (nothing restricts a stall).
  EXPECT_EQ(p.meetConf(), lattice::Conf::top());

  auto s1 = makeSlot(0, randomBlock(), false, 1);
  s1.tag = lattice::Label{lattice::Conf::category(1), lattice::Integ::top()};
  p.advance(s1);
  EXPECT_EQ(p.meetConf(), lattice::Conf::category(1));

  auto s2 = makeSlot(0, randomBlock(), false, 2);
  s2.tag = lattice::Label{lattice::Conf::category(2), lattice::Integ::top()};
  p.advance(s2);
  // Meet of disjoint categories is bottom: nobody above public may stall.
  EXPECT_EQ(p.meetConf(), lattice::Conf::bottom());
}

TEST_F(PipelineFixture, TagTravelsWithBlock) {
  const auto key = randomKey(16);
  ram.store(0, aes::expandKey(key, aes::KeySize::Aes128), lattice::Conf::bottom(),
            lattice::Label::publicTrusted());
  AesPipeline p{10, ram};

  auto s = makeSlot(0, randomBlock(), false, 42);
  s.tag = lattice::Label{lattice::Conf::category(3), lattice::Integ::category(3)};
  auto out = p.advance(s);
  for (unsigned i = 0; i < 29 && !out; ++i) out = p.advance(std::nullopt);
  out = out ? out : p.advance(std::nullopt);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->tag.c, lattice::Conf::category(3));
  EXPECT_EQ(out->req_id, 42u);
}

TEST_F(PipelineFixture, ValidCountTracksOccupancy) {
  const auto key = randomKey(16);
  ram.store(0, aes::expandKey(key, aes::KeySize::Aes128), lattice::Conf::bottom(),
            lattice::Label::publicTrusted());
  AesPipeline p{10, ram};
  EXPECT_FALSE(p.anyValid());
  p.advance(makeSlot(0, randomBlock(), false, 1));
  p.advance(makeSlot(0, randomBlock(), false, 2));
  EXPECT_EQ(p.validCount(), 2u);
  EXPECT_TRUE(p.anyValid());
  for (unsigned i = 0; i < 30; ++i) p.advance(std::nullopt);
  EXPECT_FALSE(p.anyValid());
}

}  // namespace
}  // namespace aesifc::accel
