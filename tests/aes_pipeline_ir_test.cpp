// The sequential pipelined AES IR model: one block per cycle at RTL,
// simulated cycle-accurately, statically verified, and cross-checked
// against both the golden software AES and the behavioral pipeline.

#include <gtest/gtest.h>

#include "aes/cipher.h"
#include "area/model.h"
#include "common/rng.h"
#include "ifc/checker.h"
#include "rtl/aes_ir.h"
#include "sim/simulator.h"

namespace aesifc::rtl {
namespace {

aes::Block toBlock(const BitVec& v) {
  aes::Block b{};
  const auto bytes = v.toBytes();
  for (unsigned i = 0; i < 16; ++i) b[i] = bytes[i];
  return b;
}

struct PipeIrFixture : ::testing::Test {
  AesPipeIrPorts ports;
  hdl::Module m = buildAesPipelineIr(&ports);
  sim::Simulator sim{m};
  Rng rng{31};

  void loadKeys(const aes::ExpandedKey& ek) {
    for (unsigned r = 0; r <= 10; ++r) {
      sim.poke(ports.rk[r], BitVec::fromBytes(ek.round_keys[r].data(), 16));
    }
  }
};

TEST_F(PipeIrFixture, TenCycleLatency) {
  std::vector<std::uint8_t> key(16);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
  const auto ek = aes::expandKey(key, aes::KeySize::Aes128);
  loadKeys(ek);

  aes::Block pt{};
  for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
  sim.poke(ports.pt, BitVec::fromBytes(pt.data(), 16));
  sim.poke(ports.in_valid, BitVec(1, 1));
  sim.step();
  sim.poke(ports.in_valid, BitVec(1, 0));

  unsigned cycles = 1;
  while (sim.peek(ports.out_valid).isZero() && cycles < 40) {
    sim.step();
    ++cycles;
  }
  EXPECT_EQ(cycles, 10u);  // one register per round
  EXPECT_EQ(toBlock(sim.peek(ports.ct)), aes::encryptBlock(pt, ek));
}

TEST_F(PipeIrFixture, OneBlockPerCycleAtRtl) {
  std::vector<std::uint8_t> key(16);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
  const auto ek = aes::expandKey(key, aes::KeySize::Aes128);
  loadKeys(ek);

  const unsigned n = 24;
  std::vector<aes::Block> pts(n);
  std::vector<aes::Block> outs;
  for (unsigned i = 0; i < n + 10; ++i) {
    if (i < n) {
      for (auto& b : pts[i]) b = static_cast<std::uint8_t>(rng.next());
      sim.poke(ports.pt, BitVec::fromBytes(pts[i].data(), 16));
      sim.poke(ports.in_valid, BitVec(1, 1));
    } else {
      sim.poke(ports.in_valid, BitVec(1, 0));
    }
    sim.step();
    if (!sim.peek(ports.out_valid).isZero()) {
      outs.push_back(toBlock(sim.peek(ports.ct)));
    }
  }
  ASSERT_EQ(outs.size(), n);
  for (unsigned i = 0; i < n; ++i) {
    EXPECT_EQ(outs[i], aes::encryptBlock(pts[i], ek)) << "block " << i;
  }
}

TEST_F(PipeIrFixture, PassesStaticCheckWithExitDeclass) {
  const auto report = ifc::check(m);
  EXPECT_TRUE(report.ok()) << report.toString();
}

TEST_F(PipeIrFixture, IntermediateTapIsRejected) {
  // Wire a debug tap onto round 5's stage register and annotate it public:
  // the Fig. 7 property — only the final stage may be released.
  AesPipeIrPorts p;
  auto tapped = buildAesPipelineIr(&p);
  const auto s5 = tapped.findSignal("s5");
  ASSERT_TRUE(s5.valid());
  const auto tap = tapped.output(
      "debug_tap", 128,
      hdl::LabelTerm::of(lattice::Label{lattice::Conf::bottom(),
                                        lattice::Integ::category(1)}));
  tapped.assign(tap, tapped.read(s5));
  const auto report = ifc::check(tapped);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.mentionsSink("debug_tap"));
}

TEST_F(PipeIrFixture, NetlistAreaIsRoundScaled) {
  const auto res = area::estimateModule(m);
  // 10 x 128-bit stages + 10 valid bits = 1290 FFs.
  EXPECT_EQ(res.ffs, 1290u);
  EXPECT_GT(res.luts, 3000u);  // ten rounds of S-boxes/MixColumns
}

TEST_F(PipeIrFixture, BubblesPropagate) {
  std::vector<std::uint8_t> key(16, 0x77);
  loadKeys(aes::expandKey(key, aes::KeySize::Aes128));
  // Alternate valid/invalid inputs; outputs must mirror the pattern 10
  // cycles later.
  std::vector<bool> pattern = {true, false, true, true, false, false, true};
  std::vector<bool> seen;
  for (unsigned i = 0; i < pattern.size() + 10; ++i) {
    sim.poke(ports.in_valid,
             BitVec(1, (i < pattern.size() && pattern[i]) ? 1 : 0));
    sim.poke(ports.pt, BitVec(128, i));
    sim.step();
    // The input registered at iteration i reaches v10 nine edges later.
    if (i >= 9) seen.push_back(!sim.peek(ports.out_valid).isZero());
  }
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    EXPECT_EQ(seen[i], pattern[i]) << i;
  }
}

}  // namespace
}  // namespace aesifc::rtl
