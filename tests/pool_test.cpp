// EnginePool coverage: sticky/spill placement and capacity limits, batched
// correctness against the golden software AES, per-shard fault isolation
// (a fault in shard 0's key store never perturbs shard 1), and the
// timing-leak argument for batching — one tenant's completion-cycle
// sequence is invariant under another tenant's plaintexts.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "accel/key_store.h"
#include "aes/cipher.h"
#include "soc/pool.h"

namespace aesifc::soc {
namespace {

using accel::FaultSite;

std::vector<std::uint8_t> keyOf(unsigned tenant) {
  std::vector<std::uint8_t> k(16);
  for (unsigned i = 0; i < 16; ++i)
    k[i] = static_cast<std::uint8_t>(0x40 + 13 * tenant + i);
  return k;
}

aes::Block patternBlock(std::uint8_t seed) {
  aes::Block b;
  for (unsigned i = 0; i < 16; ++i)
    b[i] = static_cast<std::uint8_t>(seed + 3 * i);
  return b;
}

PoolConfig poolConfig(unsigned shards, unsigned batch) {
  PoolConfig cfg;
  cfg.shards = shards;
  cfg.service.batch_size = batch;
  cfg.service.quota_per_round = 16;
  cfg.service.global_high_watermark = 4096;
  return cfg;
}

unsigned addTenantN(EnginePool& pool, unsigned n) {
  PoolTenantSpec spec;
  spec.name = "tenant-" + std::to_string(n);
  spec.category = n + 1;
  spec.key = keyOf(n);
  spec.queue_depth = 64;
  const PlaceResult r = pool.addTenant(spec);
  EXPECT_TRUE(r.placed);
  return r.tenant;
}

TEST(PoolPlacement, StickyDeterministicAndSpillBounded) {
  EnginePool a{poolConfig(4, 1)};
  EnginePool b{poolConfig(4, 1)};
  for (unsigned t = 0; t < 12; ++t) {
    addTenantN(a, t);
    addTenantN(b, t);
  }
  // Placement is a pure function of the tenant names and arrival order —
  // two pools built identically agree shard-for-shard.
  for (unsigned t = 0; t < 12; ++t) EXPECT_EQ(a.shardOf(t), b.shardOf(t));

  // Load-aware spill keeps the heaviest shard within spill_factor of the
  // lightest (counting the newcomer slack).
  std::size_t mn = a.tenantsOn(0), mx = a.tenantsOn(0);
  for (unsigned s = 1; s < a.shards(); ++s) {
    mn = std::min(mn, a.tenantsOn(s));
    mx = std::max(mx, a.tenantsOn(s));
  }
  EXPECT_LE(static_cast<double>(mx), 2.0 * static_cast<double>(mn + 1));
}

TEST(PoolPlacement, CapacityIsSevenTenantsPerShardThenTypedRejection) {
  EnginePool pool{poolConfig(2, 1)};
  const std::size_t cap =
      2 * (accel::kRoundKeySlots - 1);  // slot 0 reserved per shard
  for (unsigned t = 0; t < cap; ++t) addTenantN(pool, t);
  EXPECT_LE(pool.tenantsOn(0), accel::kRoundKeySlots - 1);
  EXPECT_LE(pool.tenantsOn(1), accel::kRoundKeySlots - 1);
  // A full pool is a typed verdict, not an exception — a gateway can shed
  // the tenant gracefully.
  PoolTenantSpec spec;
  spec.name = "tenant-overflow";
  spec.category = 15;
  spec.key = keyOf(static_cast<unsigned>(cap));
  const PlaceResult r = pool.addTenant(spec);
  EXPECT_FALSE(r.placed);
  EXPECT_EQ(r.error, PlaceError::PoolFull);
  EXPECT_EQ(pool.tenants(), cap);  // nothing half-placed
}

TEST(PoolBatch, BatchedResultsMatchGoldenAesInSubmissionOrder) {
  EnginePool pool{poolConfig(2, 16)};
  const unsigned kTenants = 4, kBlocks = 24;
  std::vector<unsigned> ids;
  std::vector<aes::ExpandedKey> golden;
  for (unsigned t = 0; t < kTenants; ++t) {
    ids.push_back(addTenantN(pool, t));
    golden.push_back(aes::expandKey(keyOf(t), aes::KeySize::Aes128));
  }
  for (unsigned i = 0; i < kBlocks; ++i) {
    for (unsigned t = 0; t < kTenants; ++t) {
      const auto r = pool.submit(
          ids[t], patternBlock(static_cast<std::uint8_t>(16 * t + i)));
      ASSERT_TRUE(r.admitted);
    }
  }
  pool.runUntilIdle(100000);

  for (unsigned t = 0; t < kTenants; ++t) {
    // Completions surface oldest-first in exactly submission order, each
    // equal to the golden software AES of the matching plaintext.
    for (unsigned i = 0; i < kBlocks; ++i) {
      auto c = pool.fetch(ids[t]);
      ASSERT_TRUE(c.has_value()) << "tenant " << t << " block " << i;
      EXPECT_EQ(c->status, CompletionStatus::Ok);
      EXPECT_EQ(c->served_by, ServedBy::Hardware);
      const aes::Block expect = aes::encryptBlock(
          patternBlock(static_cast<std::uint8_t>(16 * t + i)), golden[t]);
      EXPECT_EQ(c->data, expect);
    }
    EXPECT_FALSE(pool.fetch(ids[t]).has_value());
  }

  const ServiceStats s = pool.aggregateStats();
  EXPECT_EQ(s.completed_hw, kTenants * kBlocks);
  EXPECT_GT(s.batched_runs, 0u);
  EXPECT_GT(s.batched_blocks, 0u);
}

TEST(PoolIsolation, FaultInShardZeroNeverPerturbsShardOne) {
  EnginePool pool{poolConfig(2, 8)};
  // Fill both shards, then pick one victim tenant per shard.
  std::vector<unsigned> ids;
  for (unsigned t = 0; t < 6; ++t) ids.push_back(addTenantN(pool, t));
  unsigned on0 = 0, on1 = 0;
  bool have0 = false, have1 = false;
  for (unsigned id : ids) {
    if (pool.shardOf(id) == 0 && !have0) { on0 = id; have0 = true; }
    if (pool.shardOf(id) == 1 && !have1) { on1 = id; have1 = true; }
  }
  ASSERT_TRUE(have0 && have1) << "expected tenants on both shards";

  // Flip a round-key bit in shard 0's key store — shard 1 has its own RAM.
  ASSERT_TRUE(pool.shardEngine(0).injectFault(FaultSite::RoundKey, 1, 5));

  const aes::ExpandedKey golden1 =
      aes::expandKey(keyOf(on1), aes::KeySize::Aes128);
  for (unsigned i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.submit(on0, patternBlock(i)).admitted);
    ASSERT_TRUE(pool.submit(on1, patternBlock(i)).admitted);
  }
  pool.runUntilIdle(100000);

  // Shard 1's tenant is bit-exact golden AES, served by hardware, with no
  // fault activity anywhere on its engine.
  for (unsigned i = 0; i < 8; ++i) {
    auto c = pool.fetch(on1);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->status, CompletionStatus::Ok);
    EXPECT_EQ(c->served_by, ServedBy::Hardware);
    EXPECT_EQ(c->data, aes::encryptBlock(patternBlock(i), golden1));
  }
  EXPECT_EQ(pool.shardEngine(1).stats().faults_detected, 0u);
  EXPECT_EQ(pool.shardEngine(1).stats().fault_aborted, 0u);
  // Shard 0 detected (and fail-secure-handled) the injected fault.
  EXPECT_GE(pool.shardEngine(0).stats().faults_detected, 1u);
  // Shard 0's tenant still resolves every block one way or another (Ok
  // after scrub/reprovision, or an explicit fail-secure verdict).
  unsigned resolved0 = 0;
  while (pool.fetch(on0).has_value()) ++resolved0;
  EXPECT_EQ(resolved0, 8u);
}

// The batching timing-leak argument: tenant B's completion-cycle sequence
// must not depend on tenant A's DATA. (It may depend on A's traffic
// volume — that is the scheduler's public round-robin, not a secret.)
TEST(PoolTiming, CompletionCyclesInvariantUnderOtherTenantsPlaintexts) {
  auto run = [](std::uint8_t a_seed) {
    EnginePool pool{poolConfig(1, 8)};  // one shard => A and B co-resident
    const unsigned a = addTenantN(pool, 0);
    const unsigned b = addTenantN(pool, 1);
    for (unsigned i = 0; i < 16; ++i) {
      EXPECT_TRUE(
          pool.submit(a, patternBlock(static_cast<std::uint8_t>(a_seed + i)))
              .admitted);
      EXPECT_TRUE(pool.submit(b, patternBlock(i)).admitted);
    }
    pool.runUntilIdle(100000);
    std::vector<std::uint64_t> cycles;
    while (auto c = pool.fetch(b)) {
      EXPECT_EQ(c->status, CompletionStatus::Ok);
      cycles.push_back(c->complete_cycle);
    }
    return cycles;
  };
  const auto base = run(0x00);
  const auto other = run(0xa7);
  ASSERT_EQ(base.size(), 16u);
  EXPECT_EQ(base, other);
}

}  // namespace
}  // namespace aesifc::soc
