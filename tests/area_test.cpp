#include "area/model.h"

#include <gtest/gtest.h>

#include "rtl/verif_models.h"

namespace aesifc::area {
namespace {

DesignParams baseParams() { return DesignParams{}; }
DesignParams protParams() {
  DesignParams p;
  p.protected_mode = true;
  return p;
}

TEST(AreaModel, BaselineMatchesPaperTable2) {
  const auto bom = estimateAccelerator(baseParams());
  // Calibrated against the paper's baseline column.
  EXPECT_EQ(bom.total.luts, 13275u);
  EXPECT_EQ(bom.total.ffs, 14645u);
  EXPECT_EQ(bom.total.brams, 40u);
  EXPECT_DOUBLE_EQ(bom.fmax_mhz, 400.0);
}

TEST(AreaModel, ProtectedDeltasMatchPaperShape) {
  const auto base = estimateAccelerator(baseParams());
  const auto prot = estimateAccelerator(protParams());
  const double dluts =
      100.0 * (static_cast<double>(prot.total.luts) - base.total.luts) /
      base.total.luts;
  const double dffs =
      100.0 * (static_cast<double>(prot.total.ffs) - base.total.ffs) /
      base.total.ffs;
  // Paper: +5.6% LUTs, +6.6% FFs, +10% BRAMs, +0% frequency.
  EXPECT_NEAR(dluts, 5.6, 1.0);
  EXPECT_NEAR(dffs, 6.6, 1.0);
  EXPECT_EQ(prot.total.brams, base.total.brams + 4);
  EXPECT_DOUBLE_EQ(prot.fmax_mhz, base.fmax_mhz);
}

TEST(AreaModel, ProtectionOverheadIsItemized) {
  const auto prot = estimateAccelerator(protParams());
  bool has_tags = false, has_meet = false, has_overflow = false;
  for (const auto& item : prot.items) {
    if (item.name.find("tag registers") != std::string::npos) has_tags = true;
    if (item.name.find("meet tree") != std::string::npos) has_meet = true;
    if (item.name.find("overflow") != std::string::npos) has_overflow = true;
  }
  EXPECT_TRUE(has_tags);
  EXPECT_TRUE(has_meet);
  EXPECT_TRUE(has_overflow);
}

TEST(AreaModel, ScalesWithRounds) {
  DesignParams p14 = baseParams();
  p14.rounds = 14;  // AES-256-capable pipeline
  const auto b10 = estimateAccelerator(baseParams());
  const auto b14 = estimateAccelerator(p14);
  EXPECT_GT(b14.total.luts, b10.total.luts);
  EXPECT_GT(b14.total.ffs, b10.total.ffs);
  EXPECT_GT(b14.total.brams, b10.total.brams);
}

TEST(AreaModel, TagWidthDrivesProtectionCost) {
  DesignParams p8 = protParams();
  DesignParams p4 = protParams();
  p4.tag_bits = 4;
  EXPECT_GT(estimateAccelerator(p8).total.ffs,
            estimateAccelerator(p4).total.ffs);
}

TEST(AreaModel, Table2RowsPopulated) {
  const auto rows = table2();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].metric, "LUTs");
  EXPECT_EQ(rows[0].paper_base, 13275);
  EXPECT_EQ(rows[3].paper_prot, 400);
  const auto text = renderTable2();
  EXPECT_NE(text.find("13275"), std::string::npos);
  EXPECT_NE(text.find("Frequency"), std::string::npos);
}

TEST(NetlistEstimator, CountsRegistersAsFfs) {
  auto m = rtl::buildStallPipeline(true);
  const auto r = estimateModule(m);
  // 2x 2-bit tags + 2x 8-bit data = 20 FFs.
  EXPECT_EQ(r.ffs, 20u);
  EXPECT_GT(r.luts, 0u);
}

TEST(NetlistEstimator, ProtectionDeltaVisibleAtNetlistLevel) {
  // The meet-gated stall logic costs more LUTs than the ungated one — the
  // netlist-level counterpart of Table 2's LUT delta.
  const auto gated = estimateModule(rtl::buildStallPipeline(true));
  const auto ungated = estimateModule(rtl::buildStallPipeline(false));
  EXPECT_GT(gated.luts, ungated.luts);
  EXPECT_EQ(gated.ffs, ungated.ffs);
}

TEST(Resources, Arithmetic) {
  Resources a{1, 2, 3}, b{10, 20, 30};
  const auto c = a + b;
  EXPECT_EQ(c.luts, 11u);
  EXPECT_EQ(c.ffs, 22u);
  EXPECT_EQ(c.brams, 33u);
}

}  // namespace
}  // namespace aesifc::area
