// Driver failure-path tests: the watchdog turns a wedged device into a
// Timeout (never a hang, never a misreported security refusal), duplicated
// responses are consumed at most once, dropped responses are recovered by
// bounded retry without double delivery, and non-retryable outcomes
// (Suppressed, Rejected) are final on the first attempt.

#include <gtest/gtest.h>

#include "accel/driver.h"
#include "aes/cipher.h"

namespace aesifc::accel {
namespace {

using lattice::Conf;
using lattice::Principal;

std::vector<std::uint8_t> testKey() {
  std::vector<std::uint8_t> k(16);
  for (unsigned i = 0; i < 16; ++i) k[i] = static_cast<std::uint8_t>(0xa0 + i);
  return k;
}

struct Rig {
  AesAccelerator acc{AcceleratorConfig{}};
  unsigned sup;
  unsigned alice;
  aes::ExpandedKey golden = aes::expandKey(testKey(), aes::KeySize::Aes128);

  Rig() {
    sup = acc.addUser(Principal::supervisor());
    alice = acc.addUser(Principal::user("alice", 1));
    EXPECT_TRUE(loadKey128(acc, alice, 1, 0, testKey(), Conf::category(1)));
  }
};

TEST(DriverRobustness, ReceiverNeverReadyTimesOutInsteadOfHanging) {
  Rig r;
  r.acc.setReceiverReady(r.alice, false);
  SessionOptions opts;
  opts.timeout_cycles = 400;
  AccelSession s{r.acc, r.alice, 1, opts};
  const std::uint64_t before = r.acc.cycle();
  const auto res = s.encryptBlock(aes::Block{});
  EXPECT_FALSE(res.has_value());
  EXPECT_EQ(res.status(), AccelStatus::Timeout);  // not Suppressed
  EXPECT_EQ(s.retries(), 0u);
  // The watchdog bounded the wait.
  EXPECT_LE(r.acc.cycle() - before, 500u);
}

TEST(DriverRobustness, RetryAfterTimeoutDeliversExactlyOnce) {
  Rig r;
  r.acc.setReceiverReady(r.alice, false);
  SessionOptions opts;
  opts.timeout_cycles = 150;
  opts.max_retries = 2;
  opts.backoff_cycles = 8;
  AccelSession s{r.acc, r.alice, 1, opts};
  // The receiver recovers mid-call: the first attempt's response is then
  // delivered while the retry's duplicate request may also be in flight.
  r.acc.setTickHook([&] {
    if (r.acc.cycle() == 200) r.acc.setReceiverReady(r.alice, true);
  });
  aes::Block pt;
  for (auto& b : pt) b = 0x21;
  const auto res = s.encryptBlock(pt);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(*res, aes::encryptBlock(pt, r.golden));
  EXPECT_GE(s.retries(), 1u);
  EXPECT_EQ(s.lastStatus(), AccelStatus::Ok);
  r.acc.setTickHook(nullptr);
  // The abandoned duplicate must not contaminate the next operation.
  aes::Block pt2;
  for (auto& b : pt2) b = 0x22;
  const auto res2 = s.encryptBlock(pt2);
  ASSERT_TRUE(res2.has_value());
  EXPECT_EQ(*res2, aes::encryptBlock(pt2, r.golden));
}

TEST(DriverRobustness, DuplicatedResponseConsumedAtMostOnce) {
  Rig r;
  AccelSession s{r.acc, r.alice, 1};
  bool duplicated = false;
  r.acc.setTickHook([&] {
    if (!duplicated && r.acc.pendingOutputs(r.alice) > 0) {
      ASSERT_TRUE(r.acc.injectDuplicateOutput(r.alice));
      duplicated = true;
    }
  });
  aes::Block pt;
  for (auto& b : pt) b = 0x42;
  const auto ct = s.encryptBlock(pt);
  ASSERT_TRUE(ct.has_value());
  EXPECT_EQ(*ct, aes::encryptBlock(pt, r.golden));
  EXPECT_TRUE(duplicated);
  r.acc.setTickHook(nullptr);
  // The surviving duplicate is ignored by request id; the next operation
  // still pairs with its own response.
  const auto rt = s.decryptBlock(*ct);
  ASSERT_TRUE(rt.has_value());
  EXPECT_EQ(*rt, pt);
}

TEST(DriverRobustness, DroppedResponseRecoveredByRetryWithoutDuplicate) {
  Rig r;
  SessionOptions opts;
  opts.timeout_cycles = 120;
  opts.max_retries = 2;
  opts.backoff_cycles = 4;
  AccelSession s{r.acc, r.alice, 1, opts};
  unsigned drops = 0;
  r.acc.setTickHook([&] {
    if (drops == 0 && r.acc.pendingOutputs(r.alice) > 0) {
      ASSERT_TRUE(r.acc.injectDropOutput(r.alice));
      ++drops;
    }
  });
  aes::Block pt;
  for (auto& b : pt) b = 0x77;
  const auto ct = s.encryptBlock(pt);
  ASSERT_TRUE(ct.has_value());
  EXPECT_EQ(*ct, aes::encryptBlock(pt, r.golden));
  EXPECT_EQ(drops, 1u);
  EXPECT_GE(s.retries(), 1u);
  EXPECT_GE(r.acc.stats().retries, 1u);  // driver telemetry reached device
  r.acc.setTickHook(nullptr);
}

// Watchdog x duplicate-suppression interaction: the original response of a
// request whose watchdog already expired arrives only after the retry has
// completed — and is then ALSO duplicated by the bus. The late original must
// be consumed exactly once (credited to its request, the replayed copy and
// the retry's own response discarded as stale), and nothing may leak into a
// later request's result.
TEST(DriverRobustness, LateResponseAfterExpiredWatchdogAndCompletedRetry) {
  Rig r;
  SessionOptions opts;
  opts.timeout_cycles = 120;
  opts.max_retries = 2;
  opts.backoff_cycles = 8;
  AccelSession s{r.acc, r.alice, 1, opts};

  // Hold the receiver so attempt 1's response is parked in the device.
  r.acc.setReceiverReady(r.alice, false);
  bool reopened = false;
  bool duplicated = false;
  r.acc.setTickHook([&] {
    // Reopen mid-retry: attempt 1's watchdog has long expired and attempt 2
    // is in flight. The parked original then drains FIRST (per-user FIFO) —
    // i.e. it arrives after its own watchdog gave up on it.
    if (!reopened && r.acc.cycle() >= 170) {
      r.acc.setReceiverReady(r.alice, true);
      reopened = true;
    }
    // And the bus replays it once, so two copies of the late original plus
    // the retry's response are all live at the same time.
    if (reopened && !duplicated && r.acc.pendingOutputs(r.alice) > 0) {
      ASSERT_TRUE(r.acc.injectDuplicateOutput(r.alice));
      duplicated = true;
    }
  });

  aes::Block pt;
  for (auto& b : pt) b = 0x5a;
  const auto res = s.encryptBlock(pt);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(*res, aes::encryptBlock(pt, r.golden));
  EXPECT_TRUE(reopened);
  EXPECT_TRUE(duplicated);
  EXPECT_GE(s.retries(), 1u);
  EXPECT_EQ(s.lastStatus(), AccelStatus::Ok);
  r.acc.setTickHook(nullptr);

  // Surviving stale copies (the duplicate and/or the retry's response) must
  // not corrupt later traffic: run two more operations with distinct
  // plaintexts and check both against the golden model.
  aes::Block pt2, pt3;
  for (auto& b : pt2) b = 0x5b;
  for (auto& b : pt3) b = 0x5c;
  const auto res2 = s.encryptBlock(pt2);
  ASSERT_TRUE(res2.has_value());
  EXPECT_EQ(*res2, aes::encryptBlock(pt2, r.golden));
  const auto res3 = s.decryptBlock(*res2);
  ASSERT_TRUE(res3.has_value());
  EXPECT_EQ(*res3, pt2);
  EXPECT_NE(*res2, *res);  // sanity: distinct results, no cross-credit

  // Terminal-outcome telemetry: exactly the operations we ran, all Ok.
  EXPECT_EQ(s.telemetry().ok, 3u);
  EXPECT_EQ(s.telemetry().transientFailures(), 0u);
}

TEST(DriverRobustness, SuppressionIsFinalAndNeverRetried) {
  Rig r;
  // The supervisor provisions the master key (ck = top): a regular user's
  // result can then never be declassified to the output port.
  ASSERT_TRUE(
      loadKeyBytes(r.acc, r.sup, 5, 4, testKey(), aes::KeySize::Aes128,
                   Conf::top()));
  SessionOptions opts;
  opts.max_retries = 3;  // must NOT be spent on a security refusal
  AccelSession s{r.acc, r.alice, 5, opts};
  const auto res = s.encryptBlock(aes::Block{});
  EXPECT_FALSE(res.has_value());
  EXPECT_EQ(res.status(), AccelStatus::Suppressed);
  EXPECT_EQ(s.retries(), 0u);
  EXPECT_FALSE(isRetryable(res.status()));
}

TEST(DriverRobustness, InvalidKeySlotRejectedImmediately) {
  Rig r;
  SessionOptions opts;
  opts.max_retries = 3;
  AccelSession s{r.acc, r.alice, 6, opts};  // slot 6 was never loaded
  const std::uint64_t before = r.acc.cycle();
  const auto res = s.encryptBlock(aes::Block{});
  EXPECT_FALSE(res.has_value());
  EXPECT_EQ(res.status(), AccelStatus::Rejected);
  EXPECT_EQ(s.retries(), 0u);
  EXPECT_LE(r.acc.cycle() - before, 2u);  // no watchdog wait, no backoff
}

TEST(DriverRobustness, StatusNamesAreStable) {
  EXPECT_EQ(toString(AccelStatus::Ok), "ok");
  EXPECT_EQ(toString(AccelStatus::Suppressed), "suppressed");
  EXPECT_EQ(toString(AccelStatus::Timeout), "timeout");
  EXPECT_EQ(toString(AccelStatus::FaultAborted), "fault-aborted");
  EXPECT_EQ(toString(AccelStatus::Dropped), "dropped");
  EXPECT_EQ(toString(AccelStatus::Rejected), "rejected");
  EXPECT_TRUE(isRetryable(AccelStatus::Timeout));
  EXPECT_FALSE(isRetryable(AccelStatus::Suppressed));
  EXPECT_FALSE(isRetryable(AccelStatus::Rejected));
}

}  // namespace
}  // namespace aesifc::accel
