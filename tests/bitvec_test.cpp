#include "common/bitvec.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace aesifc {
namespace {

TEST(BitVec, ZeroConstruction) {
  BitVec v(128);
  EXPECT_EQ(v.width(), 128u);
  EXPECT_TRUE(v.isZero());
  EXPECT_EQ(v.toU64(), 0u);
}

TEST(BitVec, ValueConstructionTruncates) {
  BitVec v(4, 0xff);
  EXPECT_EQ(v.toU64(), 0xfu);
  BitVec w(1, 2);
  EXPECT_EQ(w.toU64(), 0u);
}

TEST(BitVec, BitAccess) {
  BitVec v(70);
  v.setBit(0, true);
  v.setBit(69, true);
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(69));
  EXPECT_FALSE(v.bit(35));
  v.setBit(69, false);
  EXPECT_FALSE(v.bit(69));
}

TEST(BitVec, HexRoundTrip) {
  const BitVec v = BitVec::fromHex(128, "00112233445566778899aabbccddeeff");
  EXPECT_EQ(v.toHex(), "00112233445566778899aabbccddeeff");
  EXPECT_EQ(v.byte(0), 0xff);
  EXPECT_EQ(v.byte(15), 0x00);
}

TEST(BitVec, HexIgnoresSeparators) {
  EXPECT_EQ(BitVec::fromHex(16, "ab_cd"), BitVec(16, 0xabcd));
}

TEST(BitVec, AllOnes) {
  const BitVec v = BitVec::allOnes(67);
  EXPECT_EQ(v.popcount(), 67u);
  EXPECT_EQ((~v).popcount(), 0u);
}

TEST(BitVec, SliceAndConcat) {
  const BitVec v(16, 0xbeef);
  EXPECT_EQ(v.slice(0, 8).toU64(), 0xefu);
  EXPECT_EQ(v.slice(8, 8).toU64(), 0xbeu);
  EXPECT_EQ(BitVec::concat(v.slice(8, 8), v.slice(0, 8)), v);
}

TEST(BitVec, SetSlice) {
  BitVec v(16);
  v.setSlice(4, BitVec(8, 0xab));
  EXPECT_EQ(v.toU64(), 0xab0u);
}

TEST(BitVec, Resize) {
  const BitVec v(8, 0xff);
  EXPECT_EQ(v.resize(4).toU64(), 0xfu);
  EXPECT_EQ(v.resize(16).toU64(), 0xffu);
  EXPECT_EQ(v.resize(16).width(), 16u);
}

TEST(BitVec, Bitwise) {
  const BitVec a(8, 0b1100);
  const BitVec b(8, 0b1010);
  EXPECT_EQ((a & b).toU64(), 0b1000u);
  EXPECT_EQ((a | b).toU64(), 0b1110u);
  EXPECT_EQ((a ^ b).toU64(), 0b0110u);
}

TEST(BitVec, AddWrapsAtWidth) {
  const BitVec a(8, 0xff);
  EXPECT_EQ(a.add(BitVec(8, 1)).toU64(), 0u);
  EXPECT_EQ(a.add(BitVec(8, 2)).toU64(), 1u);
}

TEST(BitVec, AddCarriesAcrossWords) {
  BitVec a = BitVec::allOnes(128);
  BitVec r = a.add(BitVec(128, 1));
  EXPECT_TRUE(r.isZero());
}

TEST(BitVec, SubIsAddInverse) {
  Rng rng{11};
  for (int i = 0; i < 50; ++i) {
    const BitVec a = rng.bits(96);
    const BitVec b = rng.bits(96);
    EXPECT_EQ(a.add(b).sub(b), a);
  }
}

TEST(BitVec, Shifts) {
  const BitVec v(8, 0b0110);
  EXPECT_EQ(v.shl(1).toU64(), 0b1100u);
  EXPECT_EQ(v.shr(1).toU64(), 0b0011u);
  EXPECT_EQ(v.shl(8).toU64(), 0u);
}

TEST(BitVec, UnsignedCompare) {
  EXPECT_TRUE(BitVec(8, 3).ult(BitVec(8, 5)));
  EXPECT_FALSE(BitVec(8, 5).ult(BitVec(8, 3)));
  EXPECT_FALSE(BitVec(8, 5).ult(BitVec(8, 5)));
  // MSB matters across words.
  BitVec hi(128);
  hi.setBit(127, true);
  EXPECT_TRUE(BitVec(128, 1).ult(hi));
}

TEST(BitVec, BytesRoundTrip) {
  Rng rng{5};
  const BitVec v = rng.bits(128);
  const auto bytes = v.toBytes();
  ASSERT_EQ(bytes.size(), 16u);
  EXPECT_EQ(BitVec::fromBytes(bytes.data(), 16), v);
}

TEST(BitVec, HashDiffers) {
  EXPECT_NE(BitVec(8, 1).hash(), BitVec(8, 2).hash());
  EXPECT_NE(BitVec(8, 1).hash(), BitVec(9, 1).hash());
}

class BitVecWidthTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitVecWidthTest, DeMorgan) {
  Rng rng{GetParam()};
  const BitVec a = rng.bits(GetParam());
  const BitVec b = rng.bits(GetParam());
  EXPECT_EQ(~(a & b), (~a | ~b));
  EXPECT_EQ(~(a | b), (~a & ~b));
}

TEST_P(BitVecWidthTest, XorSelfIsZero) {
  Rng rng{GetParam() + 1};
  const BitVec a = rng.bits(GetParam());
  EXPECT_TRUE((a ^ a).isZero());
}

TEST_P(BitVecWidthTest, ShlShrInverseForLowBits) {
  Rng rng{GetParam() + 2};
  const unsigned w = GetParam();
  BitVec a = rng.bits(w);
  if (w > 4) {
    // Clear the top 4 bits so a left-then-right shift is lossless.
    for (unsigned i = w - 4; i < w; ++i) a.setBit(i, false);
    EXPECT_EQ(a.shl(4).shr(4), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVecWidthTest,
                         ::testing::Values(1u, 7u, 8u, 19u, 64u, 65u, 128u,
                                           200u));

}  // namespace
}  // namespace aesifc
