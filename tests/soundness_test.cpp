// The key meta-property of the methodology: if the static checker accepts a
// design, then executing that design with inputs labeled exactly as
// annotated never produces an output whose dynamically tracked label
// exceeds its annotation. We fuzz random netlists (including dependent
// labels, enables, muxes) and check every checker-accepted one against the
// dynamic tracker in both precision modes.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "hdl/ir.h"
#include "ifc/checker.h"
#include "ifc/tracker.h"

namespace aesifc::ifc {
namespace {

using hdl::ExprId;
using hdl::LabelTerm;
using hdl::Module;
using hdl::SignalId;
using lattice::Conf;
using lattice::Integ;
using lattice::Label;

constexpr unsigned kWidth = 8;

Label randomLabel(Rng& rng) {
  switch (rng.below(7)) {
    case 0:
    case 1:
    case 2: return Label::publicTrusted();
    case 3:
    case 4: return Label{Conf::top(), Integ::top()};
    case 5: return Label::publicUntrusted();
    default: return Label{Conf::category(1), Integ::top()};
  }
}

struct RandomDesign {
  Module m{"fuzz"};
  std::vector<SignalId> inputs;
  std::vector<Label> input_labels;  // label each input is poked at
  std::vector<SignalId> outputs;
};

RandomDesign generate(std::uint64_t seed) {
  Rng rng{seed};
  RandomDesign d;
  auto& m = d.m;

  // Inputs (plus an always-present public selector for dependent labels).
  const SignalId sel = m.input("sel", 1, LabelTerm::of(Label::publicTrusted()));
  d.inputs.push_back(sel);
  d.input_labels.push_back(Label::publicTrusted());

  const unsigned n_inputs = 2 + static_cast<unsigned>(rng.below(3));
  for (unsigned i = 0; i < n_inputs; ++i) {
    if (rng.chance(0.25)) {
      // Dependent-labeled input: its level switches with `sel`.
      const Label l0 = randomLabel(rng);
      const Label l1 = randomLabel(rng);
      const SignalId s = m.input("in" + std::to_string(i), kWidth,
                                 LabelTerm::dependent(sel, {l0, l1}));
      d.inputs.push_back(s);
      // Poked at the meet: a label legal in either selector phase (the
      // environment must respect the annotation in every phase).
      d.input_labels.push_back(l0.meet(l1));
    } else {
      const Label l = randomLabel(rng);
      const SignalId s =
          m.input("in" + std::to_string(i), kWidth, LabelTerm::of(l));
      d.inputs.push_back(s);
      d.input_labels.push_back(l);
    }
  }

  // Expression pools.
  std::vector<ExprId> wide, bits;
  for (std::size_t i = 1; i < d.inputs.size(); ++i)
    wide.push_back(m.read(d.inputs[i]));
  wide.push_back(m.c(kWidth, rng.next() & 0xff));
  bits.push_back(m.read(d.inputs[0]));
  bits.push_back(m.c(1, 1));

  // A couple of registers join the pool.
  std::vector<SignalId> regs;
  const unsigned n_regs = 1 + static_cast<unsigned>(rng.below(3));
  for (unsigned i = 0; i < n_regs; ++i) {
    const SignalId r = m.reg("r" + std::to_string(i), kWidth,
                             LabelTerm::of(randomLabel(rng)));
    regs.push_back(r);
    wide.push_back(m.read(r));
  }

  auto pickWide = [&] { return wide[rng.below(wide.size())]; };
  auto pickBit = [&] { return bits[rng.below(bits.size())]; };

  const unsigned n_nodes = 4 + static_cast<unsigned>(rng.below(10));
  for (unsigned i = 0; i < n_nodes; ++i) {
    switch (rng.below(8)) {
      case 0: wide.push_back(m.band(pickWide(), pickWide())); break;
      case 1: wide.push_back(m.bor(pickWide(), pickWide())); break;
      case 2: wide.push_back(m.bxor(pickWide(), pickWide())); break;
      case 3: wide.push_back(m.add(pickWide(), pickWide())); break;
      case 4: wide.push_back(m.bnot(pickWide())); break;
      case 5: wide.push_back(m.mux(pickBit(), pickWide(), pickWide())); break;
      case 6: bits.push_back(m.eq(pickWide(), pickWide())); break;
      default: bits.push_back(m.slice(pickWide(), rng.below(kWidth), 1)); break;
    }
  }

  // Register updates with random enables.
  for (const auto r : regs) {
    m.regWrite(r, pickWide(), pickBit());
  }

  // Outputs: some static, some dependent on `sel`.
  const unsigned n_outputs = 1 + static_cast<unsigned>(rng.below(2));
  for (unsigned i = 0; i < n_outputs; ++i) {
    LabelTerm term = rng.chance(0.3)
                         ? LabelTerm::dependent(
                               sel, {randomLabel(rng), randomLabel(rng)})
                         : LabelTerm::of(randomLabel(rng));
    const SignalId o =
        m.output("out" + std::to_string(i), kWidth, std::move(term));
    m.assign(o, pickWide());
    d.outputs.push_back(o);
  }
  return d;
}

// Runs a checker-accepted design under the tracker with inputs poked at
// exactly their annotated labels; returns the number of output leaks.
std::size_t trackerLeaks(RandomDesign& d, TrackPrecision prec,
                         std::uint64_t seed) {
  DynamicTracker t{d.m, prec};
  Rng rng{seed ^ 0xfeedface};
  for (unsigned cycle = 0; cycle < 24; ++cycle) {
    for (std::size_t i = 0; i < d.inputs.size(); ++i) {
      const unsigned w = d.m.signal(d.inputs[i]).width;
      t.poke(d.inputs[i], rng.bits(w), d.input_labels[i]);
    }
    t.step();
  }
  return t.eventCount(RuntimeEvent::Kind::OutputLeak);
}

TEST(CheckerSoundness, AcceptedDesignsNeverLeakUnderTracking) {
  unsigned passed = 0, failed = 0;
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    RandomDesign d = generate(seed);
    const auto report = check(d.m);
    if (!report.ok()) {
      ++failed;
      continue;
    }
    ++passed;
    // Precise (RTLIFT-style) tracking matches the checker's pruning; the
    // conservative mode is a coarser over-approximation and may flag flows
    // the checker proved dead, so soundness is stated against Precise.
    EXPECT_EQ(trackerLeaks(d, TrackPrecision::Precise, seed), 0u)
        << "seed " << seed << "\n"
        << d.m.dump();
  }
  // Non-vacuity: the fuzzer must produce a healthy mix of both verdicts.
  EXPECT_GT(passed, 20u);
  EXPECT_GT(failed, 20u);
}

TEST(CheckerSoundness, DependentInputsPokedPerPhaseNeverLeak) {
  // Sharper variant: poke dependent-labeled inputs at the label of the
  // *current* selector phase, not the join.
  unsigned passed = 0;
  for (std::uint64_t seed = 1000; seed <= 1150; ++seed) {
    RandomDesign d = generate(seed);
    if (!check(d.m).ok()) continue;
    ++passed;

    DynamicTracker t{d.m};
    Rng rng{seed};
    for (unsigned cycle = 0; cycle < 24; ++cycle) {
      const BitVec selv(1, cycle & 1);
      for (std::size_t i = 0; i < d.inputs.size(); ++i) {
        const auto& sig = d.m.signal(d.inputs[i]);
        Label l = d.input_labels[i];
        if (sig.label.kind == hdl::LabelTerm::Kind::Dependent) {
          l = sig.label.by_value[selv.toU64()];
        }
        if (i == 0) {
          t.poke(d.inputs[i], selv, Label::publicTrusted());
        } else {
          t.poke(d.inputs[i], rng.bits(sig.width), l);
        }
      }
      t.step();
    }
    EXPECT_EQ(t.eventCount(RuntimeEvent::Kind::OutputLeak), 0u)
        << "seed " << seed << "\n"
        << d.m.dump();
  }
  EXPECT_GT(passed, 10u);
}

}  // namespace
}  // namespace aesifc::ifc
