// Nightly migration-storm soak (ctest label: soak). A long-horizon sweep —
// far more seeds, rounds, and traffic than the tier-1 cousin in
// pool_elastic_test.cpp — in which hardware faults, forced quarantines,
// supervisor evacuations, hot-adds, and explicit tenant migrations all
// interleave with sustained traffic for hundreds of rounds.
//
// Invariants enforced every seed:
//  * wrong_key_uses == 0 — no request ever reaches a serve path under a
//    stale or zeroized key, no matter how migrations interleave with storms.
//  * Conservation — every admitted request resolves exactly once (fetched
//    completion count matches the admitted count per tenant).
//  * Correctness spot-check — delivered Ok blocks match the tenant's own
//    golden software AES.
//  * Audit pairing — MigrationBegun/KeyZeroized/Committed counts agree
//    across the pool (each successful migration stamps each kind twice:
//    once per ring).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "accel/key_store.h"
#include "aes/cipher.h"
#include "common/rng.h"
#include "soc/pool.h"
#include "soc/supervisor.h"

namespace aesifc::soc {
namespace {

using accel::FaultSite;
using accel::SecurityEventKind;

std::vector<std::uint8_t> keyOf(unsigned tenant) {
  std::vector<std::uint8_t> k(16);
  for (unsigned i = 0; i < 16; ++i)
    k[i] = static_cast<std::uint8_t>(0x40 + 13 * tenant + i);
  return k;
}

aes::Block blockOf(std::uint8_t seed) {
  aes::Block b;
  for (unsigned i = 0; i < 16; ++i)
    b[i] = static_cast<std::uint8_t>(seed + 3 * i);
  return b;
}

unsigned poolEventCount(EnginePool& pool, SecurityEventKind kind) {
  unsigned n = 0;
  for (unsigned s = 0; s < pool.shards(); ++s) {
    for (const auto& e : pool.shardEngine(s).events()) {
      if (e.kind == kind) ++n;
    }
  }
  return n;
}

TEST(MigrationStormSoak, FortySeedStormHoldsAllInvariants) {
  constexpr unsigned kSeeds = 40;
  constexpr unsigned kTenants = 8;
  constexpr unsigned kRounds = 60;

  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    PoolConfig cfg;
    cfg.shards = 3;
    cfg.service.batch_size = 4;
    cfg.service.quota_per_round = 16;
    cfg.service.global_high_watermark = 4096;
    cfg.service.health.quarantine_residency_cycles = 512;
    // The audit-pairing assertions below count ring entries, so the ring
    // must hold the whole storm without overflowing.
    cfg.engine.event_log_cap = 1u << 16;
    EnginePool pool{cfg};

    std::vector<unsigned> ids;
    std::vector<aes::ExpandedKey> golden;
    for (unsigned t = 0; t < kTenants; ++t) {
      PoolTenantSpec spec;
      spec.name = "soak-" + std::to_string(t);
      spec.category = (t % 14) + 1;
      spec.key = keyOf(t);
      spec.queue_depth = 64;
      const auto r = pool.addTenant(spec);
      ASSERT_TRUE(r.placed);
      ids.push_back(r.tenant);
      golden.push_back(aes::expandKey(keyOf(t), aes::KeySize::Aes128));
    }

    SupervisorConfig scfg;
    scfg.max_shards = 5;
    PoolSupervisor sup{pool, scfg};
    Rng rng{0x50a4c0deull * seed};

    std::vector<std::uint64_t> admitted(kTenants, 0), fetched(kTenants, 0);
    std::vector<std::uint8_t> last_seed(kTenants, 0);

    auto drainFetches = [&] {
      for (unsigned t = 0; t < kTenants; ++t) {
        while (auto c = pool.fetch(ids[t])) {
          ++fetched[t];
          if (c->status == CompletionStatus::Ok) {
            // Spot-check payloads: an Ok completion must be SOME golden
            // encryption of this tenant's recent plaintext space.
            bool match = false;
            for (unsigned s = 0; s < 256 && !match; ++s) {
              match = (c->data == aes::encryptBlock(
                                      blockOf(static_cast<std::uint8_t>(s)),
                                      golden[t]));
            }
            EXPECT_TRUE(match) << "seed " << seed << " tenant " << t;
          }
        }
      }
    };

    for (unsigned round = 0; round < kRounds; ++round) {
      // Sustained traffic.
      for (unsigned i = 0; i < 12; ++i) {
        for (unsigned t = 0; t < kTenants; ++t) {
          const auto ps = static_cast<std::uint8_t>(rng.next());
          last_seed[t] = ps;
          if (pool.submit(ids[t], blockOf(ps)).admitted) ++admitted[t];
        }
      }

      // Storm ingredients, randomly interleaved.
      const std::uint64_t dice = rng.next() % 8;
      const unsigned shard = static_cast<unsigned>(rng.next() % pool.shards());
      if (dice < 3 && !pool.shardRetired(shard)) {
        (void)pool.shardEngine(shard).injectFault(
            FaultSite::RoundKey, 1 + (rng.next() % 6),
            static_cast<unsigned>(rng.next() % 128));
      } else if (dice < 5 && !pool.shardRetired(shard)) {
        pool.shardService(shard).forceQuarantine("soak storm");
      } else if (dice == 5) {
        // Explicit migration of a random tenant to wherever fits.
        const unsigned t = static_cast<unsigned>(rng.next() % kTenants);
        if (const auto dst = pool.pickTargetShard(ids[t], {})) {
          (void)pool.migrateTenant(ids[t], *dst);
        }
      }

      sup.poll();
      for (unsigned p = 0; p < 4; ++p) pool.pump();
      if (round % 8 == 7) drainFetches();
    }

    pool.runUntilIdle(800000);
    drainFetches();

    for (unsigned t = 0; t < kTenants; ++t) {
      EXPECT_EQ(fetched[t], admitted[t]) << "seed " << seed << " tenant " << t;
    }
    const ServiceStats agg = pool.aggregateStats();
    EXPECT_EQ(agg.wrong_key_uses, 0u) << "seed " << seed;

    // Audit pairing: each committed migration stamped each kind into two
    // rings.
    const auto& ps = pool.poolStats();
    EXPECT_EQ(poolEventCount(pool, SecurityEventKind::MigrationCommitted),
              2 * ps.migrations)
        << "seed " << seed;
    EXPECT_EQ(poolEventCount(pool, SecurityEventKind::MigrationKeyZeroized),
              2 * ps.migrations)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace aesifc::soc
