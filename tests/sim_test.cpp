#include "sim/simulator.h"

#include <gtest/gtest.h>

namespace aesifc::sim {
namespace {

using hdl::LabelTerm;
using hdl::Module;
using lattice::Label;

const LabelTerm kPT = LabelTerm::of(Label::publicTrusted());

TEST(Simulator, CombinationalSettles) {
  Module m{"comb"};
  const auto a = m.input("a", 8, kPT);
  const auto b = m.input("b", 8, kPT);
  const auto w = m.wire("w", 8);
  const auto o = m.output("o", 8, kPT);
  m.assign(w, m.bxor(m.read(a), m.read(b)));
  m.assign(o, m.add(m.read(w), m.c(8, 1)));

  Simulator sim{m};
  sim.poke("a", BitVec(8, 0xf0));
  sim.poke("b", BitVec(8, 0x0f));
  sim.evalComb();
  EXPECT_EQ(sim.peek("o").toU64(), 0x00u);  // 0xff + 1 wraps
}

TEST(Simulator, CounterCounts) {
  Module m{"ctr"};
  const auto en = m.input("en", 1, kPT);
  const auto ctr = m.reg("ctr", 8, kPT);
  const auto o = m.output("o", 8, kPT);
  m.regWrite(ctr, m.add(m.read(ctr), m.c(8, 1)), m.read(en));
  m.assign(o, m.read(ctr));

  Simulator sim{m};
  sim.poke("en", BitVec(1, 1));
  sim.step(5);
  EXPECT_EQ(sim.peek("o").toU64(), 5u);
  sim.poke("en", BitVec(1, 0));
  sim.step(3);
  EXPECT_EQ(sim.peek("o").toU64(), 5u);  // enable gates the update
  EXPECT_EQ(sim.cycle(), 8u);
}

TEST(Simulator, ResetRestoresRegValues) {
  Module m{"rst"};
  const auto r = m.reg("r", 4, kPT, BitVec(4, 9));
  const auto o = m.output("o", 4, kPT);
  m.regWrite(r, m.add(m.read(r), m.c(4, 1)));
  m.assign(o, m.read(r));

  Simulator sim{m};
  EXPECT_EQ(sim.peek("o").toU64(), 9u);
  sim.step(2);
  EXPECT_EQ(sim.peek("o").toU64(), 11u);
  sim.reset();
  EXPECT_EQ(sim.peek("o").toU64(), 9u);
  EXPECT_EQ(sim.cycle(), 0u);
}

TEST(Simulator, RegisterReadsPreEdgeValue) {
  // Two-stage shift register: both stages must update from pre-edge state.
  Module m{"shift"};
  const auto in = m.input("in", 8, kPT);
  const auto s1 = m.reg("s1", 8, kPT);
  const auto s2 = m.reg("s2", 8, kPT);
  const auto o = m.output("o", 8, kPT);
  m.regWrite(s1, m.read(in));
  m.regWrite(s2, m.read(s1));
  m.assign(o, m.read(s2));

  Simulator sim{m};
  sim.poke("in", BitVec(8, 0xaa));
  sim.step();
  sim.poke("in", BitVec(8, 0xbb));
  sim.step();
  EXPECT_EQ(sim.peek("o").toU64(), 0xaau);  // first value, two cycles later
  sim.step();
  EXPECT_EQ(sim.peek("o").toU64(), 0xbbu);
}

TEST(Simulator, LaterRegWriteWins) {
  Module m{"prio"};
  const auto r = m.reg("r", 4, kPT);
  const auto o = m.output("o", 4, kPT);
  m.regWrite(r, m.c(4, 1), m.c(1, 1));
  m.regWrite(r, m.c(4, 2), m.c(1, 1));
  m.assign(o, m.read(r));
  Simulator sim{m};
  sim.step();
  EXPECT_EQ(sim.peek("o").toU64(), 2u);
}

TEST(Simulator, PokeRejectsNonInputs) {
  Module m{"poke"};
  const auto a = m.input("a", 1, kPT);
  const auto o = m.output("o", 1, kPT);
  m.assign(o, m.read(a));
  Simulator sim{m};
  EXPECT_THROW(sim.poke("o", BitVec(1, 0)), std::logic_error);
  EXPECT_THROW(sim.poke("a", BitVec(2, 0)), std::logic_error);
  EXPECT_THROW(sim.poke("missing", BitVec(1, 0)), std::logic_error);
}

TEST(Simulator, DowngradeDriverPassesValueThrough) {
  Module m{"dg"};
  const auto a = m.input("a", 8, LabelTerm::of(Label::topTop()));
  const auto o = m.output("o", 8,
                          LabelTerm::of(Label{lattice::Conf::bottom(),
                                              lattice::Integ::top()}));
  m.declassify(o, m.read(a), Label{lattice::Conf::bottom(), lattice::Integ::top()},
               lattice::Principal::supervisor());
  Simulator sim{m};
  sim.poke("a", BitVec(8, 0x5a));
  sim.evalComb();
  EXPECT_EQ(sim.peek("o").toU64(), 0x5au);
}

TEST(Trace, RecordsAndRendersCsv) {
  Module m{"tr"};
  const auto ctr = m.reg("c", 4, kPT);
  const auto o = m.output("o", 4, kPT);
  m.regWrite(ctr, m.add(m.read(ctr), m.c(4, 1)));
  m.assign(o, m.read(ctr));

  Simulator sim{m};
  Trace trace{sim, {o}};
  for (int i = 0; i < 3; ++i) {
    trace.sample();
    sim.step();
  }
  EXPECT_EQ(trace.length(), 3u);
  EXPECT_EQ(trace.at(2, 0).toU64(), 2u);
  const auto csv = trace.toCsv(m);
  EXPECT_NE(csv.find("o"), std::string::npos);
  EXPECT_NE(csv.find("2"), std::string::npos);
}

}  // namespace
}  // namespace aesifc::sim
