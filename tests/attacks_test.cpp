// The paper's security argument, executed: every attack must succeed against
// the Baseline accelerator and be blocked by the Protected one.

#include "soc/attacks.h"

#include <gtest/gtest.h>

namespace aesifc::soc {
namespace {

using accel::SecurityMode;

// --- Fig. 8 / Section 3.2.5: stall covert channel --------------------------------

TEST(TimingChannel, BaselineLeaksAliceSecretToEve) {
  const auto r = runTimingChannelAttack(SecurityMode::Baseline);
  // Eve decodes nearly every bit; the channel carries real information.
  EXPECT_GT(r.accuracy, 0.9);
  EXPECT_GT(r.mi_bits, 0.5);
  EXPECT_GT(r.stalled_cycles, 0u);
}

TEST(TimingChannel, ProtectedClosesTheChannel) {
  const auto r = runTimingChannelAttack(SecurityMode::Protected);
  EXPECT_LT(r.mi_bits, 0.05);
  // Denied stalls are what keep Eve's view flat.
  EXPECT_GT(r.denied_stalls, 0u);
}

TEST(TimingChannel, ProtectedKeepsEveLatencyFlat) {
  const auto base = runTimingChannelAttack(SecurityMode::Baseline);
  const auto prot = runTimingChannelAttack(SecurityMode::Protected);
  // The variance of Eve's latency is the carrier; protection flattens it.
  EXPECT_LT(prot.eve_latency.stddev, base.eve_latency.stddev / 4.0);
}

// --- Fig. 5 / Section 3.2.3: scratchpad overflow ----------------------------------

TEST(ScratchpadOverflow, BaselineCorruptsAliceKey) {
  const auto r = runScratchpadOverflow(SecurityMode::Baseline);
  EXPECT_TRUE(r.overflow_write_succeeded);
  EXPECT_TRUE(r.alice_key_corrupted);
}

TEST(ScratchpadOverflow, ProtectedBlocksTheWrite) {
  const auto r = runScratchpadOverflow(SecurityMode::Protected);
  EXPECT_FALSE(r.overflow_write_succeeded);
  EXPECT_FALSE(r.alice_key_corrupted);
  EXPECT_GE(r.blocked_events, 1u);
}

// --- Debug peripheral (Section 2.1, [10]) -------------------------------------------

TEST(DebugPort, BaselineLeaksFullKey) {
  const auto r = runDebugPortAttack(SecurityMode::Baseline);
  EXPECT_TRUE(r.eve_enabled_debug);  // config write landed
  EXPECT_TRUE(r.key_recovered);      // full AES-128 key recovered
}

TEST(DebugPort, ProtectedBlocksEveAtBothLayers) {
  const auto r = runDebugPortAttack(SecurityMode::Protected);
  EXPECT_FALSE(r.eve_enabled_debug);  // config write blocked
  EXPECT_FALSE(r.key_recovered);      // stage read blocked even when enabled
  EXPECT_GE(r.blocked_events, 2u);
  // The supervisor's legitimate high-clearance read still works.
  EXPECT_TRUE(r.supervisor_read_ok);
}

// --- Section 3.2.2: key misuse ---------------------------------------------------------

TEST(KeyMisuse, BaselineIsAnEncryptionOracle) {
  const auto r = runKeyMisuseAttack(SecurityMode::Baseline);
  EXPECT_TRUE(r.master_key_output_released);
  EXPECT_TRUE(r.alice_key_output_released);
  EXPECT_TRUE(r.own_key_ok);
}

TEST(KeyMisuse, ProtectedSuppressesForeignKeyOutputs) {
  const auto r = runKeyMisuseAttack(SecurityMode::Protected);
  EXPECT_FALSE(r.master_key_output_released);
  EXPECT_FALSE(r.alice_key_output_released);
  EXPECT_GE(r.declass_rejected, 2u);
  // Usability is preserved: own-key and supervisor flows unaffected.
  EXPECT_TRUE(r.own_key_ok);
  EXPECT_TRUE(r.supervisor_master_ok);
}

// --- Section 3.2.4: config tampering ---------------------------------------------------

TEST(ConfigTamper, BaselineAcceptsUnprivilegedWrite) {
  const auto r = runConfigTamper(SecurityMode::Baseline);
  EXPECT_TRUE(r.eve_write_landed);
}

TEST(ConfigTamper, ProtectedEnforcesSupervisorOnly) {
  const auto r = runConfigTamper(SecurityMode::Protected);
  EXPECT_FALSE(r.eve_write_landed);
  EXPECT_TRUE(r.supervisor_write_landed);
  EXPECT_TRUE(r.eve_read_ok);  // reads remain public
  EXPECT_GE(r.blocked_events, 1u);
}

}  // namespace
}  // namespace aesifc::soc
