// Nightly ring storm: long multi-seed descriptor-ring fault campaigns on
// the hardened engine. The per-commit job proves the invariants on a few
// seeds; this soak widens the net — many seeds, higher fault rates, more
// descriptors per run — looking for the rare interleaving where a corrupted
// or adversarial ring slips a wrong plaintext or a cross-label byte
// through. Any such finding is a security bug, not flake: the campaign is
// fully deterministic per seed, so a failure here reproduces exactly.

#include <gtest/gtest.h>

#include "soc/attacks.h"

namespace aesifc::soc {
namespace {

TEST(RingStormSoak, HardenedInvariantsAcrossManySeedsAndRates) {
  RingCampaignReport total;
  for (const double rate : {0.01, 0.05, 0.15}) {
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
      RingCampaignConfig cfg;
      cfg.seed = seed * 7919 + static_cast<std::uint64_t>(rate * 1000);
      cfg.descriptors = 42;
      cfg.fault_rate = rate;
      const auto rep = runRingFaultCampaign(cfg);
      EXPECT_EQ(rep.wrong_plaintext_releases, 0u)
          << "seed " << cfg.seed << " rate " << rate;
      EXPECT_EQ(rep.cross_label_writes, 0u)
          << "seed " << cfg.seed << " rate " << rate;
      EXPECT_EQ(rep.partial_writes, 0u)
          << "seed " << cfg.seed << " rate " << rate;
      total += rep;
    }
  }
  // Breadth checks: the storm exercised every defense it certifies.
  EXPECT_GT(total.completed_ok, 0u);
  EXPECT_GT(total.refused, 0u);
  EXPECT_GT(total.watchdog_fires, 0u);
  EXPECT_GT(total.recoveries, 0u);
  EXPECT_GT(total.ring_faults, 0u);
  EXPECT_GT(total.ring.checksum_rejects, 0u);
  EXPECT_GT(total.ring.torn_ownership, 0u);
  EXPECT_EQ(total.ring.comp_overflow_drops, 0u);  // hardened never drops
  EXPECT_EQ(total.descriptors,
            total.completed_ok + total.refused + total.unresolved);
  SUCCEED() << total.toJson();
}

// Scripted scenarios off: pure random bit-flip pressure at a high rate, the
// closest model to radiation/rowhammer-style corruption of ring pages.
TEST(RingStormSoak, RandomCorruptionOnlyPressure) {
  for (std::uint64_t seed = 100; seed < 116; ++seed) {
    RingCampaignConfig cfg;
    cfg.seed = seed;
    cfg.descriptors = 32;
    cfg.fault_rate = 0.25;
    cfg.scripted_scenarios = false;
    const auto rep = runRingFaultCampaign(cfg);
    EXPECT_EQ(rep.wrong_plaintext_releases, 0u) << "seed " << seed;
    EXPECT_EQ(rep.cross_label_writes, 0u) << "seed " << seed;
    EXPECT_EQ(rep.partial_writes, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace aesifc::soc
