// Elastic self-healing pool coverage: rendezvous remap minimality under
// shard hot-add, the audited migrate-tenant handshake (load-before-zeroize,
// paired events in both rings, post-migration refusal at the source), shard
// retirement, the supervisor's evacuation/hot-add policy, and a 16-seed
// fault sweep asserting the core invariant wrong_key_uses == 0 through
// migration storms.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "accel/key_store.h"
#include "aes/cipher.h"
#include "common/rng.h"
#include "soc/pool.h"
#include "soc/supervisor.h"

namespace aesifc::soc {
namespace {

using accel::FaultSite;
using accel::SecurityEventKind;

std::vector<std::uint8_t> keyOf(unsigned tenant) {
  std::vector<std::uint8_t> k(16);
  for (unsigned i = 0; i < 16; ++i)
    k[i] = static_cast<std::uint8_t>(0x40 + 13 * tenant + i);
  return k;
}

aes::Block patternBlock(std::uint8_t seed) {
  aes::Block b;
  for (unsigned i = 0; i < 16; ++i)
    b[i] = static_cast<std::uint8_t>(seed + 3 * i);
  return b;
}

PoolConfig poolConfig(unsigned shards, unsigned batch) {
  PoolConfig cfg;
  cfg.shards = shards;
  cfg.service.batch_size = batch;
  cfg.service.quota_per_round = 16;
  cfg.service.global_high_watermark = 4096;
  return cfg;
}

unsigned addTenantN(EnginePool& pool, unsigned n) {
  PoolTenantSpec spec;
  spec.name = "tenant-" + std::to_string(n);
  spec.category = (n % 14) + 1;
  spec.key = keyOf(n);
  spec.queue_depth = 64;
  const PlaceResult r = pool.addTenant(spec);
  EXPECT_TRUE(r.placed);
  return r.tenant;
}

// Arrival-order local id of a pool tenant inside its shard's service (valid
// for pools that have not migrated the earlier tenants off that shard).
unsigned localOf(const EnginePool& pool, unsigned tenant) {
  unsigned local = 0;
  for (unsigned t = 0; t < tenant; ++t) {
    if (pool.shardOf(t) == pool.shardOf(tenant)) ++local;
  }
  return local;
}

unsigned validSlots(const accel::AesAccelerator& eng) {
  unsigned n = 0;
  for (unsigned s = 0; s < accel::kRoundKeySlots; ++s) {
    if (eng.roundKeys().valid(s)) ++n;
  }
  return n;
}

unsigned countEvents(const accel::AesAccelerator& eng,
                     SecurityEventKind kind) {
  unsigned n = 0;
  for (const auto& e : eng.events()) {
    if (e.kind == kind) ++n;
  }
  return n;
}

// --- Rendezvous placement under hot-add ------------------------------------

TEST(PoolElastic, HotAddRemapsOnlyTenantsWhoseHomeIsTheNewShard) {
  EnginePool pool{poolConfig(4, 1)};
  const unsigned kNames = 96;
  std::vector<unsigned> before;
  for (unsigned i = 0; i < kNames; ++i) {
    before.push_back(pool.placementOf("tenant-" + std::to_string(i)));
  }
  const unsigned added = pool.addShard();
  EXPECT_EQ(added, 4u);
  EXPECT_EQ(pool.activeShards(), 5u);

  unsigned moved = 0;
  for (unsigned i = 0; i < kNames; ++i) {
    const unsigned after = pool.placementOf("tenant-" + std::to_string(i));
    if (after != before[i]) {
      // HRW property: a name only moves when its top weight IS the new
      // shard — never between two pre-existing shards.
      EXPECT_EQ(after, added) << "name " << i << " moved " << before[i]
                              << " -> " << after;
      ++moved;
    }
  }
  // Expected remap fraction is 1/5; allow generous slack but require both
  // that SOME tenants adopt the new shard and that most stay put.
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, kNames / 2);
}

TEST(PoolElastic, RetiredShardLeavesPlacementSet) {
  EnginePool pool{poolConfig(3, 1)};
  const unsigned victim = 1;
  ASSERT_TRUE(pool.retireShard(victim));
  EXPECT_TRUE(pool.shardRetired(victim));
  EXPECT_EQ(pool.activeShards(), 2u);
  for (unsigned i = 0; i < 64; ++i) {
    EXPECT_NE(pool.placementOf("n" + std::to_string(i)), victim);
  }
}

// --- Migration handshake ----------------------------------------------------

TEST(PoolElastic, MigrationUnderInFlightBatchesMatchesGoldenRun) {
  // Two identically-built pools, identical traffic; one migrates its first
  // tenant mid-stream. Every completion (status, served_by, payload, order)
  // must be bit-identical to the golden no-migration run — migration is
  // invisible in the data plane.
  auto run = [](bool migrate) {
    EnginePool pool{poolConfig(2, 8)};
    const unsigned kTenants = 4, kBlocks = 24;
    std::vector<unsigned> ids;
    for (unsigned t = 0; t < kTenants; ++t) ids.push_back(addTenantN(pool, t));
    // First half of the traffic, left queued (in-flight batches).
    for (unsigned i = 0; i < kBlocks / 2; ++i) {
      for (unsigned t = 0; t < kTenants; ++t) {
        EXPECT_TRUE(
            pool.submit(ids[t],
                        patternBlock(static_cast<std::uint8_t>(16 * t + i)))
                .admitted);
      }
    }
    if (migrate) {
      const unsigned src = pool.shardOf(ids[0]);
      const unsigned dst = 1 - src;
      const auto r = pool.migrateTenant(ids[0], dst);
      EXPECT_TRUE(r.moved) << toString(r.error);
      EXPECT_EQ(pool.shardOf(ids[0]), dst);
    }
    // Second half lands post-migration (on the new shard for tenant 0).
    for (unsigned i = kBlocks / 2; i < kBlocks; ++i) {
      for (unsigned t = 0; t < kTenants; ++t) {
        EXPECT_TRUE(
            pool.submit(ids[t],
                        patternBlock(static_cast<std::uint8_t>(16 * t + i)))
                .admitted);
      }
    }
    pool.runUntilIdle(200000);
    EXPECT_EQ(pool.aggregateStats().wrong_key_uses, 0u);

    std::vector<std::vector<std::uint8_t>> out;
    for (unsigned t = 0; t < kTenants; ++t) {
      std::vector<std::uint8_t> lane;
      while (auto c = pool.fetch(ids[t])) {
        EXPECT_EQ(c->status, CompletionStatus::Ok);
        lane.push_back(static_cast<std::uint8_t>(c->served_by ==
                                                 ServedBy::Hardware));
        lane.insert(lane.end(), c->data.begin(), c->data.end());
      }
      out.push_back(std::move(lane));
    }
    return out;
  };

  const auto golden = run(false);
  const auto migrated = run(true);
  ASSERT_EQ(golden.size(), migrated.size());
  for (std::size_t t = 0; t < golden.size(); ++t) {
    EXPECT_EQ(golden[t], migrated[t]) << "tenant lane " << t;
    EXPECT_EQ(golden[t].size(), 24u * 17u);  // 24 blocks, 1 + 16 bytes each
  }
}

TEST(PoolElastic, MigrationZeroizesSourceAndAuditsBothRings) {
  EnginePool pool{poolConfig(2, 4)};
  const unsigned kTenants = 4;
  std::vector<unsigned> ids;
  for (unsigned t = 0; t < kTenants; ++t) ids.push_back(addTenantN(pool, t));
  const unsigned mover = ids[0];
  const unsigned src = pool.shardOf(mover);
  const unsigned dst = 1 - src;
  const unsigned src_local = localOf(pool, mover);
  const unsigned src_valid_before = validSlots(pool.shardEngine(src));

  // Some in-flight work so drain + quiesce actually have something to do.
  for (unsigned i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.submit(mover, patternBlock(i)).admitted);
  }

  const auto r = pool.migrateTenant(mover, dst);
  ASSERT_TRUE(r.moved) << toString(r.error);

  // Zeroize-at-source, verified through the key store itself: exactly one
  // slot lost its valid bit.
  EXPECT_EQ(validSlots(pool.shardEngine(src)), src_valid_before - 1);

  // The audit triple is present in BOTH rings.
  for (unsigned shard : {src, dst}) {
    EXPECT_EQ(countEvents(pool.shardEngine(shard),
                          SecurityEventKind::MigrationBegun), 1u)
        << "shard " << shard;
    EXPECT_EQ(countEvents(pool.shardEngine(shard),
                          SecurityEventKind::MigrationKeyZeroized), 1u)
        << "shard " << shard;
    EXPECT_EQ(countEvents(pool.shardEngine(shard),
                          SecurityEventKind::MigrationCommitted), 1u)
        << "shard " << shard;
  }

  // Read-back refusal at the source: the retired local tenant is refused at
  // admission (typed verdict), and nothing ever reached a serve path under
  // the dead slot.
  EXPECT_FALSE(pool.shardService(src).tenantActive(src_local));
  const auto refused = pool.shardService(src).submit(src_local, patternBlock(9));
  EXPECT_FALSE(refused.admitted);
  EXPECT_EQ(refused.error, AdmitError::TenantRetired);

  // Pre-migration completions (drained at the source) all surface, then the
  // tenant keeps serving from the destination.
  unsigned fetched = 0;
  while (pool.fetch(mover).has_value()) ++fetched;
  EXPECT_EQ(fetched, 8u);
  ASSERT_TRUE(pool.submit(mover, patternBlock(10)).admitted);
  pool.runUntilIdle(100000);
  auto c = pool.fetch(mover);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->status, CompletionStatus::Ok);
  const auto golden = aes::expandKey(keyOf(0), aes::KeySize::Aes128);
  EXPECT_EQ(c->data, aes::encryptBlock(patternBlock(10), golden));
  EXPECT_EQ(pool.aggregateStats().wrong_key_uses, 0u);
  EXPECT_EQ(pool.poolStats().migrations, 1u);
}

TEST(PoolElastic, MigrationRefusalsAreTypedAndLeaveSourceServing) {
  EnginePool pool{poolConfig(2, 1)};
  const unsigned a = addTenantN(pool, 0);
  EXPECT_EQ(pool.migrateTenant(a, pool.shardOf(a)).error,
            MigrateError::SameShard);
  EXPECT_EQ(pool.migrateTenant(99, 0).error, MigrateError::UnknownTenant);

  // Fill the other shard's seven tenant slots so it cannot accept the move.
  const unsigned other = 1 - pool.shardOf(a);
  for (unsigned n = 100; pool.tenantsOn(other) < accel::kRoundKeySlots - 1;
       ++n) {
    PoolTenantSpec spec;
    spec.name = "filler-" + std::to_string(n);
    spec.category = (n % 14) + 1;
    spec.key = keyOf(n);
    const auto r = pool.addTenant(spec);
    ASSERT_TRUE(r.placed);
  }
  EXPECT_EQ(pool.migrateTenant(a, other).error, MigrateError::TargetFull);

  // After every refusal the source still serves.
  ASSERT_TRUE(pool.submit(a, patternBlock(1)).admitted);
  pool.runUntilIdle(100000);
  auto c = pool.fetch(a);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->status, CompletionStatus::Ok);
  EXPECT_EQ(pool.aggregateStats().wrong_key_uses, 0u);
}

TEST(PoolElastic, RetireShardEvacuatesZeroizesAndKeepsTenantsServing) {
  EnginePool pool{poolConfig(3, 4)};
  const unsigned kTenants = 6;
  std::vector<unsigned> ids;
  for (unsigned t = 0; t < kTenants; ++t) ids.push_back(addTenantN(pool, t));
  // Retire whichever shard hosts tenant 0.
  const unsigned victim = pool.shardOf(ids[0]);
  ASSERT_TRUE(pool.retireShard(victim));
  EXPECT_TRUE(pool.shardRetired(victim));
  // Every key slot on the retired engine is zeroized (slot 0 included —
  // nothing was ever loaded there, the rest scrubbed on the way out).
  EXPECT_EQ(validSlots(pool.shardEngine(victim)), 0u);
  EXPECT_TRUE(pool.tenantsOnShard(victim).empty());

  // All tenants still serve, bit-exact, from their new homes.
  for (unsigned t = 0; t < kTenants; ++t) {
    EXPECT_NE(pool.shardOf(ids[t]), victim);
    ASSERT_TRUE(pool.submit(ids[t], patternBlock(t)).admitted);
  }
  pool.runUntilIdle(200000);
  for (unsigned t = 0; t < kTenants; ++t) {
    auto c = pool.fetch(ids[t]);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->status, CompletionStatus::Ok);
    const auto golden = aes::expandKey(keyOf(t), aes::KeySize::Aes128);
    EXPECT_EQ(c->data, aes::encryptBlock(patternBlock(t), golden));
  }
  EXPECT_EQ(pool.aggregateStats().wrong_key_uses, 0u);
  EXPECT_EQ(pool.poolStats().shards_retired, 1u);
}

// --- Supervisor policy ------------------------------------------------------

TEST(PoolSupervisorPolicy, QuarantineTriggersEvacuationToHealthyShards) {
  EnginePool pool{poolConfig(3, 4)};
  std::vector<unsigned> ids;
  for (unsigned t = 0; t < 6; ++t) ids.push_back(addTenantN(pool, t));
  PoolSupervisor sup{pool, SupervisorConfig{}};

  // Pick a shard that actually hosts tenants and quarantine it.
  unsigned sick = 0;
  for (unsigned s = 0; s < pool.shards(); ++s) {
    if (!pool.tenantsOnShard(s).empty()) { sick = s; break; }
  }
  const auto evacuees = pool.tenantsOnShard(sick);
  ASSERT_FALSE(evacuees.empty());
  pool.shardService(sick).forceQuarantine("policy test");

  const auto rep = sup.poll();
  EXPECT_EQ(rep.evacuated, evacuees.size());
  EXPECT_EQ(rep.evacuation_failures, 0u);
  EXPECT_TRUE(pool.tenantsOnShard(sick).empty());
  for (unsigned t : evacuees) EXPECT_NE(pool.shardOf(t), sick);

  // Idempotent: a second poll finds nothing left to move.
  const auto rep2 = sup.poll();
  EXPECT_EQ(rep2.evacuated, 0u);
  EXPECT_EQ(pool.aggregateStats().wrong_key_uses, 0u);
}

TEST(PoolSupervisorPolicy, SustainedBackpressureHotAddsWithHysteresis) {
  PoolConfig cfg = poolConfig(1, 1);
  cfg.service.global_high_watermark = 8;  // tiny: easy to overrun
  EnginePool pool{cfg};
  const unsigned a = addTenantN(pool, 0);
  SupervisorConfig scfg;
  scfg.pressure_streak = 3;
  scfg.cooldown_polls = 4;
  scfg.max_shards = 2;
  PoolSupervisor sup{pool, scfg};

  // Each round overruns the watermark (fresh backpressure rejections), so
  // the streak builds; the hot-add must fire on the streak-th poll, not the
  // first.
  unsigned added_at = 0;
  for (unsigned round = 1; round <= 6; ++round) {
    for (unsigned i = 0; i < 32; ++i) {
      (void)pool.submit(a, patternBlock(i));
    }
    const auto rep = sup.poll();
    if (rep.shard_added && added_at == 0) added_at = round;
    pool.runUntilIdle(100000);
  }
  EXPECT_EQ(added_at, scfg.pressure_streak);
  EXPECT_EQ(pool.activeShards(), 2u);
  // max_shards caps further growth even under continued pressure.
  EXPECT_EQ(sup.stats().shards_added, 1u);
}

// --- Migration storms under fault injection ---------------------------------

// The core invariant, swept across seeds: whatever order faults, quarantine,
// evacuation, and traffic interleave in, no request ever reaches a serve
// path under a stale or zeroized key.
TEST(PoolElastic, SixteenSeedFaultSweepMigrationStormKeepsWrongKeyUsesZero) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    PoolConfig cfg = poolConfig(3, 4);
    cfg.service.health.quarantine_residency_cycles = 512;
    EnginePool pool{cfg};
    std::vector<unsigned> ids;
    for (unsigned t = 0; t < 6; ++t) ids.push_back(addTenantN(pool, t));
    PoolSupervisor sup{pool, SupervisorConfig{}};
    Rng rng{0x57085708u ^ seed};

    std::vector<std::uint64_t> admitted(ids.size(), 0);
    for (unsigned round = 0; round < 12; ++round) {
      // Traffic burst.
      for (unsigned i = 0; i < 8; ++i) {
        for (std::size_t t = 0; t < ids.size(); ++t) {
          if (pool.submit(ids[t], patternBlock(static_cast<std::uint8_t>(
                                      rng.next())))
                  .admitted) {
            ++admitted[t];
          }
        }
      }
      // Random hardware fault on a random shard, sometimes escalated to a
      // forced quarantine (the storm).
      const unsigned shard =
          static_cast<unsigned>(rng.next() % pool.shards());
      if (!pool.shardRetired(shard)) {
        (void)pool.shardEngine(shard).injectFault(
            FaultSite::RoundKey, 1 + (rng.next() % 6),
            static_cast<unsigned>(rng.next() % 128));
        if (rng.next() % 2 == 0) {
          pool.shardService(shard).forceQuarantine("storm seed " +
                                                   std::to_string(seed));
        }
      }
      sup.poll();
      for (unsigned p = 0; p < 4; ++p) pool.pump();
    }
    pool.runUntilIdle(400000);

    // Every admitted request resolves exactly once, and the invariant held.
    for (std::size_t t = 0; t < ids.size(); ++t) {
      std::uint64_t fetched = 0;
      while (pool.fetch(ids[t]).has_value()) ++fetched;
      EXPECT_EQ(fetched, admitted[t]) << "seed " << seed << " tenant " << t;
    }
    EXPECT_EQ(pool.aggregateStats().wrong_key_uses, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace aesifc::soc
