#include "soc/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace aesifc::soc {
namespace {

TEST(MutualInformation, PerfectlyCorrelatedIsOneBit) {
  std::vector<int> x, y;
  Rng rng{1};
  for (int i = 0; i < 1000; ++i) {
    const int b = rng.chance(0.5) ? 1 : 0;
    x.push_back(b);
    y.push_back(b);
  }
  EXPECT_NEAR(mutualInformationBits(x, y), 1.0, 0.05);
}

TEST(MutualInformation, InvertedChannelStillCarriesOneBit) {
  std::vector<int> x, y;
  Rng rng{2};
  for (int i = 0; i < 1000; ++i) {
    const int b = rng.chance(0.5) ? 1 : 0;
    x.push_back(b);
    y.push_back(1 - b);
  }
  EXPECT_NEAR(mutualInformationBits(x, y), 1.0, 0.05);
}

TEST(MutualInformation, IndependentIsNearZero) {
  std::vector<int> x, y;
  Rng rng{3};
  for (int i = 0; i < 4000; ++i) {
    x.push_back(rng.chance(0.5) ? 1 : 0);
    y.push_back(rng.chance(0.5) ? 1 : 0);
  }
  EXPECT_LT(mutualInformationBits(x, y), 0.01);
}

TEST(MutualInformation, ConstantSideIsZero) {
  std::vector<int> x(100, 1), y;
  Rng rng{4};
  for (int i = 0; i < 100; ++i) y.push_back(rng.chance(0.5) ? 1 : 0);
  EXPECT_EQ(mutualInformationBits(x, y), 0.0);
}

TEST(MutualInformation, NoisyChannelIsBetweenZeroAndOne) {
  std::vector<int> x, y;
  Rng rng{5};
  for (int i = 0; i < 5000; ++i) {
    const int b = rng.chance(0.5) ? 1 : 0;
    x.push_back(b);
    y.push_back(rng.chance(0.9) ? b : 1 - b);  // 10% bit flips
  }
  const double mi = mutualInformationBits(x, y);
  // Binary symmetric channel with p=0.1: capacity = 1 - H(0.1) ~ 0.531.
  EXPECT_NEAR(mi, 0.531, 0.08);
}

TEST(MutualInformation, EmptyIsZero) {
  EXPECT_EQ(mutualInformationBits({}, {}), 0.0);
}

TEST(Pearson, PerfectPositiveAndNegative) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-9);
  std::vector<double> z{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-9);
}

TEST(Pearson, ConstantSideIsZero) {
  std::vector<double> x{1, 1, 1, 1};
  std::vector<double> y{1, 2, 3, 4};
  EXPECT_EQ(pearson(x, y), 0.0);
}

TEST(Pearson, IndependentNearZero) {
  Rng rng{6};
  std::vector<double> x, y;
  for (int i = 0; i < 5000; ++i) {
    x.push_back(static_cast<double>(rng.next() % 1000));
    y.push_back(static_cast<double>(rng.next() % 1000));
  }
  EXPECT_LT(std::abs(pearson(x, y)), 0.05);
}

TEST(LatencyStats, ComputesMoments) {
  const auto s = latencyStats({10, 20, 30});
  EXPECT_DOUBLE_EQ(s.mean, 20.0);
  EXPECT_EQ(s.min, 10u);
  EXPECT_EQ(s.max, 30u);
  EXPECT_EQ(s.count, 3u);
  EXPECT_NEAR(s.stddev, std::sqrt(200.0 / 3.0), 1e-9);
}

TEST(LatencyStats, EmptyIsZeroed) {
  const auto s = latencyStats({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Percentile, NearestRankDefinition) {
  // 10 samples: p50 is the 5th smallest, p95 the 10th, p99 the 10th.
  std::vector<std::uint64_t> v{10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 90.0), 90.0);
  EXPECT_DOUBLE_EQ(percentile(v, 95.0), 100.0);
  EXPECT_DOUBLE_EQ(percentile(v, 99.0), 100.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 100.0);
  // Order must not matter (the function sorts its copy).
  std::vector<std::uint64_t> shuffled{100, 10, 90, 20, 80, 30, 70, 40, 60, 50};
  EXPECT_DOUBLE_EQ(percentile(shuffled, 50.0), 50.0);
}

TEST(Percentile, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7}, 1.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7}, 99.0), 7.0);
}

TEST(LatencyStats, SingleSampleHasZeroSpreadAndDegeneratePercentiles) {
  const auto s = latencyStats({42});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);  // population stddev of one sample
  EXPECT_EQ(s.min, 42u);
  EXPECT_EQ(s.max, 42u);
  EXPECT_DOUBLE_EQ(s.p50, 42.0);
  EXPECT_DOUBLE_EQ(s.p95, 42.0);
  EXPECT_DOUBLE_EQ(s.p99, 42.0);
}

TEST(LatencyStats, PercentilesAndJson) {
  std::vector<std::uint64_t> v(100);
  for (unsigned i = 0; i < 100; ++i) v[i] = i + 1;  // 1..100
  const auto s = latencyStats(v);
  EXPECT_DOUBLE_EQ(s.p50, 50.0);
  EXPECT_DOUBLE_EQ(s.p95, 95.0);
  EXPECT_DOUBLE_EQ(s.p99, 99.0);
  const std::string j = s.toJson();
  EXPECT_NE(j.find("\"count\":100"), std::string::npos);
  EXPECT_NE(j.find("\"p95\":95"), std::string::npos);
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
}

TEST(LatencyStats, PopulationStddevConvention) {
  // Two samples 0 and 10: population stddev is 5 (sample stddev would be
  // ~7.07) — pinned so the documented ÷N convention cannot silently drift.
  const auto s = latencyStats({0, 10});
  EXPECT_DOUBLE_EQ(s.stddev, 5.0);
}

TEST(LatencyStats, SampleStddevAppliesBesselCorrection) {
  // Known vector {2,4,4,4,5,5,7,9}: mean 5, squared deviations sum to 32,
  // so population stddev = sqrt(32/8) = 2 and sample stddev = sqrt(32/7).
  const std::vector<std::uint64_t> v{2, 4, 4, 4, 5, 5, 7, 9};
  const auto pop = latencyStats(v);  // default stays Population
  EXPECT_DOUBLE_EQ(pop.mean, 5.0);
  EXPECT_DOUBLE_EQ(pop.stddev, 2.0);
  const auto samp = latencyStats(v, StddevKind::Sample);
  EXPECT_DOUBLE_EQ(samp.mean, 5.0);
  EXPECT_DOUBLE_EQ(samp.stddev, std::sqrt(32.0 / 7.0));
  // Everything but the spread estimator is estimator-independent.
  EXPECT_DOUBLE_EQ(samp.p50, pop.p50);
  EXPECT_EQ(samp.count, pop.count);
}

TEST(LatencyStats, SampleStddevDegenerateCounts) {
  // Bessel's correction is undefined below two samples; both modes report 0
  // rather than NaN.
  EXPECT_DOUBLE_EQ(latencyStats({42}, StddevKind::Sample).stddev, 0.0);
  EXPECT_DOUBLE_EQ(latencyStats({}, StddevKind::Sample).stddev, 0.0);
}

TEST(RobustnessStats, AccumulateSumsCountersAndRecomputesRates) {
  RobustnessStats a;
  a.faults_injected = 10;
  a.faults_detected = 8;
  a.faults_recovered = 8;
  a.fault_aborts = 2;
  a.retries = 3;
  RobustnessStats b;
  b.faults_injected = 10;
  b.faults_detected = 2;
  b.faults_recovered = 1;
  b.timeouts = 4;
  b.drops = 5;
  a += b;
  EXPECT_EQ(a.faults_injected, 20u);
  EXPECT_EQ(a.faults_detected, 10u);
  EXPECT_EQ(a.faults_recovered, 9u);
  EXPECT_EQ(a.fault_aborts, 2u);
  EXPECT_EQ(a.retries, 3u);
  EXPECT_EQ(a.timeouts, 4u);
  EXPECT_EQ(a.drops, 5u);
  // The rates derive from the summed raw counters, not an average of rates.
  EXPECT_DOUBLE_EQ(a.detectionRate(), 0.5);
  EXPECT_DOUBLE_EQ(a.recoveryRate(), 0.9);
}

TEST(RobustnessStats, QuietRunRatesAreOneAndJsonIsWellFormed) {
  RobustnessStats s;
  EXPECT_DOUBLE_EQ(s.detectionRate(), 1.0);
  EXPECT_DOUBLE_EQ(s.recoveryRate(), 1.0);
  const std::string j = s.toJson();
  EXPECT_NE(j.find("\"faults_injected\":0"), std::string::npos);
  EXPECT_NE(j.find("\"detection_rate\":1"), std::string::npos);
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
}

}  // namespace
}  // namespace aesifc::soc
