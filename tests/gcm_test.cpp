#include "aes/gcm.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace aesifc::aes {
namespace {

std::vector<std::uint8_t> hexBytes(const std::string& hex) {
  std::vector<std::uint8_t> v(hex.size() / 2);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<std::uint8_t>(
        std::stoul(hex.substr(2 * i, 2), nullptr, 16));
  }
  return v;
}

Tag128 tagOf(const std::string& hex) {
  Tag128 t{};
  const auto b = hexBytes(hex);
  std::copy(b.begin(), b.end(), t.begin());
  return t;
}

// --- GF(2^128) ------------------------------------------------------------------

TEST(Gf128, MultiplicationByZeroAndCommutes) {
  Rng rng{1};
  const Tag128 zero{};
  for (int i = 0; i < 20; ++i) {
    Tag128 a{}, b{};
    for (auto& x : a) x = static_cast<std::uint8_t>(rng.next());
    for (auto& x : b) x = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(gf128Mul(a, zero), zero);
    EXPECT_EQ(gf128Mul(zero, a), zero);
    EXPECT_EQ(gf128Mul(a, b), gf128Mul(b, a));
  }
}

TEST(Gf128, DistributesOverXor) {
  Rng rng{2};
  for (int i = 0; i < 20; ++i) {
    Tag128 a{}, b{}, c{};
    for (auto& x : a) x = static_cast<std::uint8_t>(rng.next());
    for (auto& x : b) x = static_cast<std::uint8_t>(rng.next());
    for (auto& x : c) x = static_cast<std::uint8_t>(rng.next());
    Tag128 bc{};
    for (unsigned k = 0; k < 16; ++k) bc[k] = b[k] ^ c[k];
    const Tag128 left = gf128Mul(a, bc);
    const Tag128 ab = gf128Mul(a, b);
    const Tag128 ac = gf128Mul(a, c);
    Tag128 right{};
    for (unsigned k = 0; k < 16; ++k) right[k] = ab[k] ^ ac[k];
    EXPECT_EQ(left, right);
  }
}

TEST(Gf128, IdentityElement) {
  // The multiplicative identity is the block 1 || 0^127 (leftmost bit set).
  Tag128 one{};
  one[0] = 0x80;
  Rng rng{3};
  for (int i = 0; i < 20; ++i) {
    Tag128 a{};
    for (auto& x : a) x = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(gf128Mul(a, one), a);
    EXPECT_EQ(gf128Mul(one, a), a);
  }
}

// --- NIST GCM test cases -----------------------------------------------------------

TEST(Gcm, NistCase1EmptyPlaintext) {
  // AES-128, key = 0^128, IV = 0^96, empty plaintext and AAD.
  const auto key = expandKey(std::vector<std::uint8_t>(16, 0), KeySize::Aes128);
  std::array<std::uint8_t, 12> iv{};
  const auto r = gcmEncrypt({}, {}, key, iv);
  EXPECT_TRUE(r.ciphertext.empty());
  EXPECT_EQ(r.tag, tagOf("58e2fccefa7e3061367f1d57a4e7455a"));
}

TEST(Gcm, NistCase2OneZeroBlock) {
  const auto key = expandKey(std::vector<std::uint8_t>(16, 0), KeySize::Aes128);
  std::array<std::uint8_t, 12> iv{};
  const auto r = gcmEncrypt(std::vector<std::uint8_t>(16, 0), {}, key, iv);
  EXPECT_EQ(r.ciphertext, hexBytes("0388dace60b6a392f328c2b971b2fe78"));
  EXPECT_EQ(r.tag, tagOf("ab6e47d42cec13bdf53a67b21257bddf"));
}

// --- Round trips & tamper detection ------------------------------------------------

class GcmRoundTripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GcmRoundTripTest, DecryptInvertsEncrypt) {
  Rng rng{GetParam() + 10};
  std::vector<std::uint8_t> kb(16);
  for (auto& b : kb) b = static_cast<std::uint8_t>(rng.next());
  const auto key = expandKey(kb, KeySize::Aes128);
  std::array<std::uint8_t, 12> iv{};
  for (auto& b : iv) b = static_cast<std::uint8_t>(rng.next());

  std::vector<std::uint8_t> pt(GetParam());
  for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
  std::vector<std::uint8_t> aad(7);
  for (auto& b : aad) b = static_cast<std::uint8_t>(rng.next());

  const auto enc = gcmEncrypt(pt, aad, key, iv);
  const auto dec = gcmDecrypt(enc.ciphertext, aad, enc.tag, key, iv);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, pt);
}

TEST_P(GcmRoundTripTest, TamperedCiphertextRejected) {
  Rng rng{GetParam() + 20};
  std::vector<std::uint8_t> kb(16);
  for (auto& b : kb) b = static_cast<std::uint8_t>(rng.next());
  const auto key = expandKey(kb, KeySize::Aes128);
  std::array<std::uint8_t, 12> iv{};

  std::vector<std::uint8_t> pt(GetParam() == 0 ? 16 : GetParam());
  for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
  auto enc = gcmEncrypt(pt, {}, key, iv);
  enc.ciphertext[0] ^= 1;
  EXPECT_FALSE(gcmDecrypt(enc.ciphertext, {}, enc.tag, key, iv).has_value());
}

TEST_P(GcmRoundTripTest, TamperedAadRejected) {
  Rng rng{GetParam() + 30};
  std::vector<std::uint8_t> kb(16);
  for (auto& b : kb) b = static_cast<std::uint8_t>(rng.next());
  const auto key = expandKey(kb, KeySize::Aes128);
  std::array<std::uint8_t, 12> iv{};

  std::vector<std::uint8_t> pt(GetParam());
  std::vector<std::uint8_t> aad{1, 2, 3};
  const auto enc = gcmEncrypt(pt, aad, key, iv);
  aad[0] ^= 1;
  EXPECT_FALSE(gcmDecrypt(enc.ciphertext, aad, enc.tag, key, iv).has_value());
}

INSTANTIATE_TEST_SUITE_P(Sizes, GcmRoundTripTest,
                         ::testing::Values(0u, 1u, 15u, 16u, 17u, 64u, 100u));

TEST(Gcm, TamperedTagRejected) {
  const auto key = expandKey(std::vector<std::uint8_t>(16, 7), KeySize::Aes128);
  std::array<std::uint8_t, 12> iv{};
  auto enc = gcmEncrypt(std::vector<std::uint8_t>(32, 9), {}, key, iv);
  enc.tag[15] ^= 0x80;
  EXPECT_FALSE(gcmDecrypt(enc.ciphertext, {}, enc.tag, key, iv).has_value());
}

// --- SP 800-38D test cases 3 & 4 (AES-128, 96-bit IV) ---------------------------

TEST(Gcm, NistCase3FourBlocks) {
  const auto key = expandKey(hexBytes("feffe9928665731c6d6a8f9467308308"),
                             KeySize::Aes128);
  std::array<std::uint8_t, 12> iv{};
  const auto ivb = hexBytes("cafebabefacedbaddecaf888");
  std::copy(ivb.begin(), ivb.end(), iv.begin());
  const auto pt = hexBytes(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255");
  const auto r = gcmEncrypt(pt, {}, key, iv);
  EXPECT_EQ(r.ciphertext,
            hexBytes("42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e0"
                     "35c17e2329aca12e21d514b25466931c7d8f6a5aac84aa05"
                     "1ba30b396a0aac973d58e091473f5985"));
  EXPECT_EQ(r.tag, tagOf("4d5c2af327cd64a62cf35abd2ba6fab4"));
  // And the inverse direction authenticates and round-trips.
  const auto dec = gcmDecrypt(r.ciphertext, {}, r.tag, key, iv);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, pt);
}

TEST(Gcm, NistCase4WithAad) {
  const auto key = expandKey(hexBytes("feffe9928665731c6d6a8f9467308308"),
                             KeySize::Aes128);
  std::array<std::uint8_t, 12> iv{};
  const auto ivb = hexBytes("cafebabefacedbaddecaf888");
  std::copy(ivb.begin(), ivb.end(), iv.begin());
  const auto pt = hexBytes(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
  const auto aad = hexBytes("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  const auto r = gcmEncrypt(pt, aad, key, iv);
  EXPECT_EQ(r.ciphertext,
            hexBytes("42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e0"
                     "35c17e2329aca12e21d514b25466931c7d8f6a5aac84aa05"
                     "1ba30b396a0aac973d58e091"));
  EXPECT_EQ(r.tag, tagOf("5bc94fbc3221a5db94fae95ae7121a47"));
  // Tamper rejection on the authenticated data of a standard vector.
  auto bad_aad = aad;
  bad_aad.back() ^= 0x01;
  EXPECT_FALSE(gcmDecrypt(r.ciphertext, bad_aad, r.tag, key, iv).has_value());
}

// --- SP 800-38D test cases 5 & 6 (AES-128, non-96-bit IVs) ----------------------

TEST(Gcm, NistCase5ShortIv) {
  // 64-bit IV: J0 goes through the GHASH derivation path, not IV || 0^31 1.
  const auto key = expandKey(hexBytes("feffe9928665731c6d6a8f9467308308"),
                             KeySize::Aes128);
  const auto iv = hexBytes("cafebabefacedbad");
  const auto pt = hexBytes(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
  const auto aad = hexBytes("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  const auto r = gcmEncrypt(pt, aad, key, iv);
  EXPECT_EQ(r.ciphertext,
            hexBytes("61353b4c2806934a777ff51fa22a4755699b2a714fcdc6f8"
                     "3766e5f97b6c742373806900e49f24b22b097544d4896b42"
                     "4989b5e1ebac0f07c23f4598"));
  EXPECT_EQ(r.tag, tagOf("3612d2e79e3b0785561be14aaca2fccb"));
  const auto dec = gcmDecrypt(r.ciphertext, aad, r.tag, key, iv);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, pt);
}

TEST(Gcm, NistCase6LongIv) {
  // 480-bit IV: multiple GHASH blocks in the J0 derivation.
  const auto key = expandKey(hexBytes("feffe9928665731c6d6a8f9467308308"),
                             KeySize::Aes128);
  const auto iv = hexBytes(
      "9313225df88406e555909c5aff5269aa6a7a9538534f7da1e4c303d2a318a728"
      "c3c0c95156809539fcf0e2429a6b525416aedbf5a0de6a57a637b39b");
  const auto pt = hexBytes(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
  const auto aad = hexBytes("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  const auto r = gcmEncrypt(pt, aad, key, iv);
  EXPECT_EQ(r.ciphertext,
            hexBytes("8ce24998625615b603a033aca13fb894be9112a5c3a211a8"
                     "ba262a3cca7e2ca701e4a9a4fba43c90ccdcb281d48c7c6f"
                     "d62875d2aca417034c34aee5"));
  EXPECT_EQ(r.tag, tagOf("619cc5aefffe0bfa462af43c1699d050"));
  const auto dec = gcmDecrypt(r.ciphertext, aad, r.tag, key, iv);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, pt);
}

TEST(Gcm, DeriveJ0MatchesGhashDefinition) {
  // For a non-96-bit IV, J0 = GHASH_H(IV || pad || 0^64 || [len(IV)]_64).
  Rng rng{44};
  Tag128 h{};
  for (auto& b : h) b = static_cast<std::uint8_t>(rng.next());
  for (const std::size_t len : {1u, 8u, 16u, 20u, 60u}) {
    std::vector<std::uint8_t> iv(len);
    for (auto& b : iv) b = static_cast<std::uint8_t>(rng.next());
    std::vector<std::uint8_t> msg = iv;
    msg.resize((len + 15) / 16 * 16, 0);
    msg.resize(msg.size() + 8, 0);
    const std::uint64_t bits = 8ULL * len;
    for (int i = 7; i >= 0; --i)
      msg.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
    const Tag128 want = ghashNaive(h, msg);
    Block j0 = deriveJ0(h, iv);
    Tag128 got{};
    std::copy(j0.begin(), j0.end(), got.begin());
    EXPECT_EQ(got, want) << "iv len=" << len;
  }
}

// --- Table-driven GHASH vs the bit-at-a-time oracle -----------------------------

TEST(Gf128, GhashKeyMulMatchesGf128Mul) {
  Rng rng{42};
  for (int i = 0; i < 50; ++i) {
    Tag128 h{}, x{};
    for (auto& b : h) b = static_cast<std::uint8_t>(rng.next());
    for (auto& b : x) b = static_cast<std::uint8_t>(rng.next());
    const GhashKey gk{h};
    EXPECT_EQ(gk.mul(x), gf128Mul(x, h));
  }
}

TEST(Gf128, GhashMatchesNaiveOracle) {
  Rng rng{43};
  for (const std::size_t len : {0u, 16u, 32u, 160u, 1024u}) {
    Tag128 h{};
    for (auto& b : h) b = static_cast<std::uint8_t>(rng.next());
    std::vector<std::uint8_t> data(len);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(ghash(h, data), ghashNaive(h, data)) << "len=" << len;
  }
}

TEST(Gcm, DifferentIvsGiveDifferentCiphertexts) {
  const auto key = expandKey(std::vector<std::uint8_t>(16, 7), KeySize::Aes128);
  std::array<std::uint8_t, 12> iv1{}, iv2{};
  iv2[0] = 1;
  const std::vector<std::uint8_t> pt(16, 0x42);
  EXPECT_NE(gcmEncrypt(pt, {}, key, iv1).ciphertext,
            gcmEncrypt(pt, {}, key, iv2).ciphertext);
}

}  // namespace
}  // namespace aesifc::aes
