#include "lattice/tag.h"

#include <gtest/gtest.h>

namespace aesifc::lattice {
namespace {

TEST(TagCodec, DefaultPaletteRoundTrip) {
  TagCodec codec;
  for (unsigned c = 0; c < 16; ++c) {
    for (unsigned i = 0; i < 16; ++i) {
      const HwTag t = static_cast<HwTag>((i << 4) | c);
      const Label l = codec.decode(t);
      const auto back = codec.encode(l);
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(codec.decode(*back), l);
    }
  }
}

TEST(TagCodec, FieldExtraction) {
  EXPECT_EQ(TagCodec::confField(0xa5), 0x5u);
  EXPECT_EQ(TagCodec::integField(0xa5), 0xau);
}

TEST(TagCodec, DefaultPaletteOrderMatchesChain) {
  TagCodec codec;
  // Higher conf index = more secret.
  for (unsigned k = 0; k + 1 < 16; ++k) {
    EXPECT_TRUE(codec.conf(k).flowsTo(codec.conf(k + 1)));
    EXPECT_FALSE(codec.conf(k + 1).flowsTo(codec.conf(k)));
    // Higher integ index = more trusted = flows to lower.
    EXPECT_TRUE(codec.integ(k + 1).flowsTo(codec.integ(k)));
  }
}

TEST(TagCodec, EncodeUnknownPointFails) {
  TagCodec codec;  // chain palette: category sets are not chain points
  const Label weird{Conf::category(3), Integ::top()};  // {3} is not level(k)
  EXPECT_FALSE(codec.encode(weird).has_value());
}

TEST(TagCodec, CustomPaletteWithUserCategories) {
  // The palette used by the SoC experiments: index k = user category k.
  std::array<Conf, 16> confs;
  std::array<Integ, 16> integs;
  confs[0] = Conf::bottom();
  integs[0] = Integ::top();
  for (unsigned k = 1; k < 15; ++k) {
    confs[k] = Conf::category(k);
    integs[k] = Integ::category(k);
  }
  confs[15] = Conf::top();
  integs[15] = Integ::bottom();
  TagCodec codec{confs, integs};

  const Label alice{Conf::category(1), Integ::category(1)};
  const auto t = codec.encode(alice);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(codec.decode(*t), alice);
  EXPECT_EQ(TagCodec::confField(*t), 1u);
  EXPECT_EQ(TagCodec::integField(*t), 1u);
}

TEST(TagCodec, TagIs8Bits) {
  // Table 2 context: the prototype stores 8-bit tags (4+4).
  static_assert(sizeof(HwTag) == 1);
  TagCodec codec;
  const auto t = codec.encode(Label{codec.conf(15), codec.integ(15)});
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 0xff);
}

TEST(TagCodec, ToStringMentionsIndex) {
  TagCodec codec;
  EXPECT_NE(codec.toString(0x21).find("#33"), std::string::npos);
}

}  // namespace
}  // namespace aesifc::lattice
