#include "hdl/parser.h"

#include <gtest/gtest.h>

#include "ifc/checker.h"
#include "rtl/verif_models.h"
#include "sim/simulator.h"

namespace aesifc::hdl {
namespace {

using lattice::Conf;
using lattice::Integ;
using lattice::Label;

TEST(Parser, MinimalModule) {
  const auto m = parseModule(R"(
    module tiny {
      input a : 8 label (PUB, TRU);
      output o : 8 label (SEC, TRU);
      assign o = a;
    }
  )");
  EXPECT_EQ(m.name(), "tiny");
  EXPECT_EQ(m.signals().size(), 2u);
  EXPECT_EQ(m.assigns().size(), 1u);
  EXPECT_TRUE(ifc::check(m).ok());
}

TEST(Parser, LabelsAndAtoms) {
  const auto m = parseModule(R"(
    module labels {
      input a : 4 label (C{1,3}, I{2});
      input b : 4 label (CL2, IL4);
      output o : 4 label (SEC, UNT);
      assign o = a ^ b;
    }
  )");
  const auto a = m.findSignal("a");
  EXPECT_EQ(m.signal(a).label.fixed.c,
            Conf{lattice::CatSet::category(1).unionWith(
                lattice::CatSet::category(3))});
  EXPECT_EQ(m.signal(a).label.fixed.i, Integ::category(2));
  const auto b = m.findSignal("b");
  EXPECT_EQ(m.signal(b).label.fixed.c, Conf::level(2));
  EXPECT_EQ(m.signal(b).label.fixed.i, Integ::level(4));
}

TEST(Parser, DependentLabel) {
  const auto m = parseModule(R"(
    module dep {
      input way : 1 label (PUB, TRU);
      input d : 8 label DL(way) { (PUB, TRU), (PUB, UNT) };
      output o : 8 label DL(way) { (PUB, TRU), (PUB, UNT) };
      assign o = d;
    }
  )");
  const auto d = m.findSignal("d");
  ASSERT_EQ(m.signal(d).label.kind, LabelTerm::Kind::Dependent);
  EXPECT_EQ(m.signal(d).label.by_value.size(), 2u);
  EXPECT_TRUE(ifc::check(m).ok());
}

TEST(Parser, RegistersWithResetAndEnable) {
  const auto m = parseModule(R"(
    module ctr {
      input en : 1 label (PUB, TRU);
      reg c : 8 label (PUB, TRU) reset 8'h05;
      output o : 8 label (PUB, TRU);
      c <= c + 8'd1 when en;
      assign o = c;
    }
  )");
  sim::Simulator s{m};
  EXPECT_EQ(s.peek("o").toU64(), 5u);
  s.poke("en", BitVec(1, 1));
  s.step(3);
  EXPECT_EQ(s.peek("o").toU64(), 8u);
  s.poke("en", BitVec(1, 0));
  s.step(2);
  EXPECT_EQ(s.peek("o").toU64(), 8u);
}

TEST(Parser, ExpressionsEvaluateCorrectly) {
  const auto m = parseModule(R"(
    module ops {
      input a : 8 label (PUB, TRU);
      input b : 8 label (PUB, TRU);
      input c : 1 label (PUB, TRU);
      output o1 : 8 label (PUB, TRU);
      output o2 : 1 label (PUB, TRU);
      output o3 : 8 label (PUB, TRU);
      output o4 : 4 label (PUB, TRU);
      output o5 : 1 label (PUB, TRU);
      assign o1 = mux(c, a + b, a - b);
      assign o2 = (a == b) | (a < b);
      assign o3 = ~(a & 8'hf0) ^ b;
      assign o4 = a[7:4];
      assign o5 = &a[3:0] ^ |b;
    }
  )");
  sim::Simulator s{m};
  s.poke("a", BitVec(8, 0x5f));
  s.poke("b", BitVec(8, 0x21));
  s.poke("c", BitVec(1, 1));
  s.evalComb();
  EXPECT_EQ(s.peek("o1").toU64(), 0x80u);
  EXPECT_EQ(s.peek("o2").toU64(), 0u);
  EXPECT_EQ(s.peek("o3").toU64(), (~(0x5fu & 0xf0u) ^ 0x21u) & 0xffu);
  EXPECT_EQ(s.peek("o4").toU64(), 0x5u);
  EXPECT_EQ(s.peek("o5").toU64(), 1u ^ 1u);
}

TEST(Parser, ConcatBuildsMsbFirst) {
  const auto m = parseModule(R"(
    module cat {
      input a : 4 label (PUB, TRU);
      input b : 4 label (PUB, TRU);
      output o : 8 label (PUB, TRU);
      assign o = {a, b};
    }
  )");
  sim::Simulator s{m};
  s.poke("a", BitVec(4, 0xa));
  s.poke("b", BitVec(4, 0x5));
  s.evalComb();
  EXPECT_EQ(s.peek("o").toU64(), 0xa5u);
}

TEST(Parser, DowngradeStatements) {
  const auto m = parseModule(R"(
    module dg {
      input s : 8 label (SEC, TRU);
      output o : 8 label (PUB, TRU);
      declassify o = s to (PUB, TRU) by supervisor;
    }
  )");
  ASSERT_EQ(m.downgrades().size(), 1u);
  EXPECT_TRUE(ifc::check(m).ok());

  const auto m2 = parseModule(R"(
    module dg2 {
      input s : 8 label (SEC, TRU);
      output o : 8 label (PUB, TRU);
      declassify o = s to (PUB, TRU) by mallory (PUB, UNT);
    }
  )");
  EXPECT_EQ(ifc::check(m2).count(ifc::ViolationKind::DowngradeRejected), 1u);
}

TEST(Parser, CommentsAreIgnored) {
  const auto m = parseModule(R"(
    // the whole point of comments
    module c { // trailing
      input a : 1 label (PUB, TRU); // here too
      output o : 1 label (PUB, TRU);
      assign o = a;
    }
  )");
  EXPECT_EQ(m.signals().size(), 2u);
}

// --- Error reporting ---------------------------------------------------------------

struct ErrorCase {
  const char* src;
  const char* expect_substring;
};

class ParserErrorTest : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(ParserErrorTest, ReportsLocatedError) {
  try {
    parseModule(GetParam().src);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find(GetParam().expect_substring),
              std::string::npos)
        << e.what();
    EXPECT_GE(e.line, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrorTest,
    ::testing::Values(
        ErrorCase{"module m { input a 8; }", "expected ':'"},
        ErrorCase{"module m { input a : 8 label (PUB, TRU); input a : 1 label "
                  "(PUB, TRU); }",
                  "duplicate signal"},
        ErrorCase{"module m { output o : 8 label (PUB, TRU); assign o = x; }",
                  "unknown signal"},
        ErrorCase{"module m { input a : 8 label (PUB, TRU); input b : 4 label "
                  "(PUB, TRU); output o : 8 label (PUB, TRU); assign o = a & "
                  "b; }",
                  "width mismatch"},
        ErrorCase{"module m { input a : 8 label (PUB, TRU); output o : 8 "
                  "label (PUB, TRU); assign o = a + 5; }",
                  "unsized literal"},
        ErrorCase{"module m { input a : 8 label (BOGUS, TRU); }",
                  "confidentiality atom"},
        ErrorCase{"module m { input w : 1 label (PUB, TRU); input d : 8 label "
                  "DL(w) { (PUB, TRU) }; }",
                  "table needs 2 entries"},
        ErrorCase{"module m { input a : 8 label (PUB, TRU); output o : 4 "
                  "label (PUB, TRU); assign o = a[2:5]; }",
                  "slice out of range"},
        ErrorCase{"module m { input a : 8 label (PUB, TRU); a <= 8'h1; }",
                  "not a register"},
        ErrorCase{"module m { input a : 2 label (PUB, TRU); output o : 1 "
                  "label (PUB, TRU); assign o = mux(a, 1'b0, 1'b1); }",
                  "mux condition"},
        ErrorCase{"module m { input a : 4 label (PUB, TRU); output o : 4 "
                  "label (PUB, TRU); assign o = 4'h1f; }",
                  "does not fit"}));

// --- Round trip -------------------------------------------------------------------

TEST(Emitter, RoundTripsTheMailboxExample) {
  const std::string src = R"(
    module mailbox {
      input sel : 1 label (PUB, TRU);
      input we : 1 label (PUB, TRU);
      input din : 32 label DL(sel) { (C{1}, TRU), (C{2}, TRU) };
      reg slot_a : 32 label (C{1}, TRU);
      reg slot_b : 32 label (C{2}, TRU);
      output dout : 32 label DL(sel) { (C{1}, TRU), (C{2}, TRU) };
      slot_a <= din when we & (sel == 1'b0);
      slot_b <= din when we & (sel == 1'b1);
      assign dout = mux(sel == 1'b0, slot_a, slot_b);
    }
  )";
  const auto m1 = parseModule(src);
  EXPECT_TRUE(ifc::check(m1).ok());
  const auto text1 = emitModule(m1);
  const auto m2 = parseModule(text1);
  const auto text2 = emitModule(m2);
  EXPECT_EQ(text1, text2);
  EXPECT_TRUE(ifc::check(m2).ok());
}

TEST(Emitter, RoundTripsBuilderModels) {
  // The builder-made verification models survive emit -> parse -> emit.
  for (auto build : {rtl::buildCacheTags, rtl::buildTaggedScratchpad}) {
    for (bool flag : {false, true}) {
      const auto m1 = build(flag);
      const auto text1 = emitModule(m1);
      const auto m2 = parseModule(text1);
      EXPECT_EQ(text1, emitModule(m2)) << m1.name();
      // Same checker verdict on both.
      EXPECT_EQ(ifc::check(m1).ok(), ifc::check(m2).ok()) << m1.name();
    }
  }
}

TEST(Emitter, RoundTripsStallModelWithDowngrade) {
  const auto m1 = rtl::buildStallPipeline(true);
  const auto text1 = emitModule(m1);
  const auto m2 = parseModule(text1);
  EXPECT_EQ(text1, emitModule(m2));
  EXPECT_TRUE(ifc::check(m2).ok());
}

TEST(Emitter, RefusesLutNodes) {
  Module m{"withlut"};
  const auto a = m.input("a", 2, LabelTerm::of(Label::publicTrusted()));
  const auto o = m.output("o", 8, LabelTerm::of(Label::publicTrusted()));
  m.assign(o, m.lut(m.read(a), {BitVec(8, 1), BitVec(8, 2), BitVec(8, 3),
                                BitVec(8, 4)}));
  EXPECT_THROW(emitModule(m), std::logic_error);
}

}  // namespace
}  // namespace aesifc::hdl
