// The decisive robustness property (chaos harness + fault injection):
// under seeded fault campaigns spanning every hardware site and the host
// interface, across multiple seeds and fault rates, the Protected-mode
// accelerator never leaks across users — every delivered ciphertext equals
// the requesting user's own golden AES result — every driver call
// terminates in a definite outcome, and every injected tag-array upset is
// detected or corrected by the parity scrub.

#include <gtest/gtest.h>

#include <array>

#include "accel/driver.h"
#include "aes/cipher.h"
#include "common/rng.h"
#include "soc/fault_injector.h"

namespace aesifc::accel {
namespace {

using lattice::Conf;
using lattice::Principal;

struct CampaignParams {
  std::uint64_t seed;
  double rate;
};

class FaultCampaignTest : public ::testing::TestWithParam<CampaignParams> {};

TEST_P(FaultCampaignTest, ProtectedModeNeverLeaksAndAlwaysTerminates) {
  const auto [seed, rate] = GetParam();
  AcceleratorConfig cfg;
  cfg.mode = SecurityMode::Protected;
  cfg.out_buffer_depth = 16;
  cfg.event_log_cap = 256;
  AesAccelerator acc{cfg};

  const unsigned sup = acc.addUser(Principal::supervisor());
  (void)sup;
  constexpr unsigned kUsers = 3;
  std::array<unsigned, kUsers> users{};
  std::array<std::vector<std::uint8_t>, kUsers> keys;
  std::vector<aes::ExpandedKey> golden;
  Rng rng{seed};
  for (unsigned u = 0; u < kUsers; ++u) {
    users[u] = acc.addUser(Principal::user("u" + std::to_string(u), u + 1));
    keys[u].resize(16);
    for (auto& b : keys[u]) b = static_cast<std::uint8_t>(rng.next());
    ASSERT_TRUE(loadKey128(acc, users[u], u + 1, 2 * u, keys[u],
                           Conf::category(u + 1)));
    golden.push_back(aes::expandKey(keys[u], aes::KeySize::Aes128));
  }

  soc::FaultCampaignConfig fcfg;
  fcfg.seed = seed * 1000003;
  fcfg.fault_rate = rate;
  fcfg.stuck_cycles = 24;
  soc::FaultInjector inj{acc, fcfg, {users[0], users[1], users[2]}};
  acc.setTickHook([&] { inj.tick(); });

  SessionOptions opts;
  opts.timeout_cycles = 1500;
  opts.max_retries = 3;
  opts.backoff_cycles = 16;
  std::vector<AccelSession> sessions;
  for (unsigned u = 0; u < kUsers; ++u)
    sessions.emplace_back(acc, users[u], u + 1, opts);

  std::array<std::uint64_t, 6> by_status{};  // indexed by AccelStatus
  std::array<bool, kUsers> needs_reload{};
  unsigned ops_issued = 0;
  unsigned ops_returned = 0;

  constexpr unsigned kRounds = 25;
  for (unsigned round = 0; round < kRounds; ++round) {
    for (unsigned u = 0; u < kUsers; ++u) {
      if (needs_reload[u]) {
        // Driver-level recovery: a zeroized slot (fail-secure response to a
        // key-path upset) is re-provisioned from host-held key material.
        if (!loadKey128(acc, users[u], u + 1, 2 * u, keys[u],
                        Conf::category(u + 1))) {
          continue;  // a fault hit the reload itself; try again next round
        }
        needs_reload[u] = false;
      }
      aes::Block pt;
      for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
      const bool decrypt = rng.chance(0.4);
      ++ops_issued;
      const auto r = decrypt ? sessions[u].decryptBlock(pt)
                             : sessions[u].encryptBlock(pt);
      ++ops_returned;  // the call came back: a definite outcome
      ++by_status[static_cast<unsigned>(r.status())];
      if (r.has_value()) {
        const aes::Block want = decrypt ? aes::decryptBlock(pt, golden[u])
                                        : aes::encryptBlock(pt, golden[u]);
        // The only data ever released to user u is u's own golden AES
        // result: no cross-user material, no corrupted-key ciphertext.
        ASSERT_EQ(*r, want) << "seed " << seed << " rate " << rate
                            << " user " << u << " round " << round;
      } else if (r.status() == AccelStatus::Rejected) {
        needs_reload[u] = true;
      }
    }
  }

  // End the fault phase; let the slow scrub ring settle.
  acc.setTickHook(nullptr);
  inj.releaseStuckReceivers();
  acc.run(64);

  EXPECT_EQ(ops_returned, ops_issued);
  EXPECT_GT(by_status[static_cast<unsigned>(AccelStatus::Ok)], 0u)
      << "campaign produced no successful traffic";

  const auto report = inj.report();
  // The tag arrays are covered by the every-cycle scrub ring: no injected
  // tag upset may escape detection.
  EXPECT_EQ(report.escaped(static_cast<unsigned>(FaultSite::StageTag)), 0u)
      << report.summary();
  EXPECT_EQ(report.escaped(static_cast<unsigned>(FaultSite::ScratchTag)), 0u)
      << report.summary();
  // Telemetry is internally consistent.
  EXPECT_EQ(acc.stats().faults_detected,
            acc.eventCount(SecurityEventKind::FaultDetected) +
                acc.eventCount(SecurityEventKind::FaultScrubbed));
  EXPECT_LE(acc.events().size(), cfg.event_log_cap);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndRates, FaultCampaignTest,
    ::testing::Values(CampaignParams{11, 0.002}, CampaignParams{11, 0.01},
                      CampaignParams{11, 0.05}, CampaignParams{22, 0.002},
                      CampaignParams{22, 0.01}, CampaignParams{22, 0.05},
                      CampaignParams{33, 0.002}, CampaignParams{33, 0.01},
                      CampaignParams{33, 0.05}, CampaignParams{44, 0.002},
                      CampaignParams{44, 0.01}, CampaignParams{44, 0.05}));

}  // namespace
}  // namespace aesifc::accel
