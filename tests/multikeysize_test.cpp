// Fig. 1 at the accelerator level: an AES-256-capable (14-round, 42-stage)
// engine serving tenants with 128-, 192- and 256-bit keys *concurrently* —
// shorter schedules pass through the spare stages, so every block sees the
// same latency and the pipeline still takes one block per cycle.

#include <gtest/gtest.h>

#include "accel/driver.h"
#include "aes/cipher.h"
#include "common/rng.h"

namespace aesifc::accel {
namespace {

using lattice::Conf;
using lattice::Principal;

struct MultiSizeFixture : ::testing::Test {
  AcceleratorConfig cfg() {
    AcceleratorConfig c;
    c.max_rounds = 14;  // AES-256-capable pipeline
    return c;
  }
  AesAccelerator acc{cfg()};
  unsigned sup = acc.addUser(Principal::supervisor());
  unsigned u128 = acc.addUser(Principal::user("u128", 1));
  unsigned u192 = acc.addUser(Principal::user("u192", 2));
  unsigned u256 = acc.addUser(Principal::user("u256", 3));
  Rng rng{2024};

  std::vector<std::uint8_t> key(aes::KeySize ks) {
    std::vector<std::uint8_t> k(aes::keyBytes(ks));
    for (auto& b : k) b = static_cast<std::uint8_t>(rng.next());
    return k;
  }
};

TEST_F(MultiSizeFixture, PipelineDepthFollowsMaxRounds) {
  EXPECT_EQ(acc.pipeline().depth(), 42u);
}

TEST_F(MultiSizeFixture, AllThreeKeySizesVerifyAgainstGolden) {
  const auto k128 = key(aes::KeySize::Aes128);
  const auto k192 = key(aes::KeySize::Aes192);
  const auto k256 = key(aes::KeySize::Aes256);
  ASSERT_TRUE(loadKeyBytes(acc, u128, 1, 0, k128, aes::KeySize::Aes128,
                           Conf::category(1)));
  ASSERT_TRUE(loadKeyBytes(acc, u192, 2, 2, k192, aes::KeySize::Aes192,
                           Conf::category(2)));
  ASSERT_TRUE(loadKeyBytes(acc, u256, 3, 5 - 1, k256, aes::KeySize::Aes256,
                           Conf::category(3)));

  AccelSession s128{acc, u128, 1}, s192{acc, u192, 2}, s256{acc, u256, 3};
  aes::Block pt{};
  for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());

  const auto c128 = s128.encryptBlock(pt);
  const auto c192 = s192.encryptBlock(pt);
  const auto c256 = s256.encryptBlock(pt);
  ASSERT_TRUE(c128 && c192 && c256);
  EXPECT_EQ(*c128, aes::encryptBlock(pt, k128.data(), aes::KeySize::Aes128));
  EXPECT_EQ(*c192, aes::encryptBlock(pt, k192.data(), aes::KeySize::Aes192));
  EXPECT_EQ(*c256, aes::encryptBlock(pt, k256.data(), aes::KeySize::Aes256));

  // Decryption too.
  const auto back = s256.decryptBlock(*c256);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, pt);
}

TEST_F(MultiSizeFixture, MixedTrafficInterleavesInOnePipeline) {
  const auto k128 = key(aes::KeySize::Aes128);
  const auto k256 = key(aes::KeySize::Aes256);
  ASSERT_TRUE(loadKeyBytes(acc, u128, 1, 0, k128, aes::KeySize::Aes128,
                           Conf::category(1)));
  ASSERT_TRUE(loadKeyBytes(acc, u256, 3, 4, k256, aes::KeySize::Aes256,
                           Conf::category(3)));

  struct Want {
    std::uint64_t id;
    unsigned user;
    aes::Block ct;
  };
  std::vector<Want> wants;
  std::uint64_t id = 1;
  for (unsigned i = 0; i < 32; ++i) {
    aes::Block pt{};
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
    const bool big = i % 2 == 1;
    BlockRequest req{id, big ? u256 : u128, big ? 3u : 1u, false, pt};
    ASSERT_TRUE(acc.submit(req));
    wants.push_back(
        {id, req.user,
         big ? aes::encryptBlock(pt, k256.data(), aes::KeySize::Aes256)
             : aes::encryptBlock(pt, k128.data(), aes::KeySize::Aes128)});
    ++id;
    acc.tick();  // accept roughly one per cycle
  }
  acc.run(80);
  unsigned matched = 0;
  for (const auto u : {u128, u256}) {
    while (auto out = acc.fetchOutput(u)) {
      for (const auto& w : wants) {
        if (w.id == out->req_id) {
          EXPECT_EQ(out->data, w.ct) << "req " << w.id;
          EXPECT_EQ(out->user, w.user);
          ++matched;
        }
      }
    }
  }
  EXPECT_EQ(matched, wants.size());
}

TEST_F(MultiSizeFixture, LatencyUniformAcrossKeySizes) {
  // Every block traverses all 42 stages; short schedules pass through, so
  // the latency cannot become a key-size side channel inside the pipeline.
  const auto k128 = key(aes::KeySize::Aes128);
  const auto k256 = key(aes::KeySize::Aes256);
  ASSERT_TRUE(loadKeyBytes(acc, u128, 1, 0, k128, aes::KeySize::Aes128,
                           Conf::category(1)));
  ASSERT_TRUE(loadKeyBytes(acc, u256, 3, 4, k256, aes::KeySize::Aes256,
                           Conf::category(3)));

  auto latency = [&](unsigned user, unsigned slot) {
    static std::uint64_t id = 7000;
    BlockRequest req{++id, user, slot, false, {}};
    EXPECT_TRUE(acc.submit(req));
    for (unsigned i = 0; i < 200; ++i) {
      acc.tick();
      if (auto out = acc.fetchOutput(user)) {
        return out->complete_cycle - out->accept_cycle;
      }
    }
    return std::uint64_t{0};
  };
  EXPECT_EQ(latency(u128, 1), 42u);
  EXPECT_EQ(latency(u256, 3), 42u);
}

TEST_F(MultiSizeFixture, ScratchpadAllocatesThreeAndFourCells) {
  const auto k192 = key(aes::KeySize::Aes192);
  ASSERT_TRUE(loadKeyBytes(acc, u192, 2, 0, k192, aes::KeySize::Aes192,
                           Conf::category(2)));
  EXPECT_EQ(acc.scratchpad().cellLabel(0),
            acc.principal(u192).authority);
  EXPECT_EQ(acc.scratchpad().cellLabel(2),
            acc.principal(u192).authority);
  // Wrong-size key material is rejected by the helper.
  EXPECT_FALSE(loadKeyBytes(acc, u192, 2, 0, k192, aes::KeySize::Aes256,
                            Conf::category(2)));
}

}  // namespace
}  // namespace aesifc::accel
