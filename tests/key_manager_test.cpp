#include "soc/key_manager.h"

#include <gtest/gtest.h>

#include "aes/cipher.h"
#include "common/rng.h"

namespace aesifc::soc {
namespace {

using accel::AcceleratorConfig;
using accel::AesAccelerator;
using accel::BlockRequest;
using lattice::Principal;

struct KmFixture : ::testing::Test {
  AesAccelerator acc{AcceleratorConfig{}};
  unsigned sup = acc.addUser(Principal::supervisor());
  unsigned alice = acc.addUser(Principal::user("alice", 1));
  unsigned bob = acc.addUser(Principal::user("bob", 2));
  KeyManager km{acc};

  accel::BlockResponse crypt(unsigned user, unsigned slot,
                             const aes::Block& data) {
    static std::uint64_t id = 90000;
    BlockRequest req{++id, user, slot, false, data};
    EXPECT_TRUE(acc.submit(req));
    for (unsigned i = 0; i < 200; ++i) {
      acc.tick();
      if (auto out = acc.fetchOutput(user)) return *out;
    }
    ADD_FAILURE() << "no response";
    return {};
  }
};

TEST_F(KmFixture, OpenSessionInstallsWorkingKey) {
  const auto s = km.openSession(alice);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->generation, 1u);
  aes::Block pt{};
  const auto resp = crypt(alice, s->slot, pt);
  EXPECT_EQ(resp.data,
            aes::encryptBlock(pt, s->key.data(), aes::KeySize::Aes128));
}

TEST_F(KmFixture, SessionsGetDisjointResources) {
  const auto sa = km.openSession(alice);
  const auto sb = km.openSession(bob);
  ASSERT_TRUE(sa && sb);
  EXPECT_NE(sa->slot, sb->slot);
  EXPECT_NE(sa->cell_base, sb->cell_base);
  EXPECT_NE(sa->key, sb->key);
  // Slot 0 stays reserved for the master key.
  EXPECT_NE(sa->slot, 0u);
  EXPECT_NE(sb->slot, 0u);
  // One session per user.
  EXPECT_FALSE(km.openSession(alice).has_value());
}

TEST_F(KmFixture, ResourceExhaustionReported) {
  // 8 cells / 2 per session = 4 sessions; one slot is reserved, leaving
  // enough slots, so cells are the limiting resource.
  std::vector<unsigned> extra_users;
  unsigned opened = 0;
  for (unsigned i = 0; i < 6; ++i) {
    const unsigned u = acc.addUser(Principal::user("t" + std::to_string(i),
                                                   (i % 13) + 3));
    if (km.openSession(u).has_value()) ++opened;
  }
  EXPECT_EQ(opened, 4u);
}

TEST_F(KmFixture, RotationChangesKeyAndGeneration) {
  const auto s1 = *km.openSession(alice);
  ASSERT_TRUE(km.rotate(alice));
  const auto* s2 = km.session(alice);
  ASSERT_NE(s2, nullptr);
  EXPECT_EQ(s2->generation, 2u);
  EXPECT_NE(s2->key, s1.key);
  EXPECT_EQ(s2->slot, s1.slot);  // same hardware slot, new key

  aes::Block pt{};
  const auto resp = crypt(alice, s2->slot, pt);
  EXPECT_EQ(resp.data,
            aes::encryptBlock(pt, s2->key.data(), aes::KeySize::Aes128));
}

TEST_F(KmFixture, RotationWaitsForInFlightBlocks) {
  const auto s = *km.openSession(alice);
  // Put a block in flight, then rotate: the old block must complete under
  // the OLD key (the manager drains before touching the slot).
  BlockRequest req{777, alice, s.slot, false, {}};
  ASSERT_TRUE(acc.submit(req));
  acc.tick();  // in stage 0 now
  ASSERT_TRUE(acc.keySlotBusy(s.slot));
  ASSERT_TRUE(km.rotate(alice));
  EXPECT_FALSE(acc.keySlotBusy(s.slot));

  // Collect the pre-rotation block.
  accel::BlockResponse old_resp;
  bool got = false;
  for (unsigned i = 0; i < 100 && !got; ++i) {
    if (auto out = acc.fetchOutput(alice)) {
      old_resp = *out;
      got = true;
      break;
    }
    acc.tick();
  }
  ASSERT_TRUE(got);
  aes::Block pt{};
  EXPECT_EQ(old_resp.data,
            aes::encryptBlock(pt, s.key.data(), aes::KeySize::Aes128));

  // New traffic uses the rotated key.
  const auto* s2 = km.session(alice);
  const auto new_resp = crypt(alice, s2->slot, pt);
  EXPECT_EQ(new_resp.data,
            aes::encryptBlock(pt, s2->key.data(), aes::KeySize::Aes128));
}

TEST_F(KmFixture, CloseSessionZeroizesAndFrees) {
  const auto s = *km.openSession(alice);
  ASSERT_TRUE(km.closeSession(alice));
  EXPECT_EQ(km.session(alice), nullptr);
  EXPECT_FALSE(acc.roundKeys().valid(s.slot));
  EXPECT_EQ(acc.scratchpad().rawCell(s.cell_base), 0u);
  // Resources are reusable.
  const auto s2 = km.openSession(bob);
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(s2->slot, s.slot);
}

TEST_F(KmFixture, RotateUnknownUserFails) {
  EXPECT_FALSE(km.rotate(alice));
  EXPECT_FALSE(km.closeSession(alice));
}

TEST_F(KmFixture, ContinuousTrafficAcrossRotations) {
  const auto s0 = *km.openSession(alice);
  Rng rng{5};
  unsigned slot = s0.slot;
  for (unsigned round = 0; round < 5; ++round) {
    const auto* s = km.session(alice);
    for (unsigned i = 0; i < 4; ++i) {
      aes::Block pt{};
      for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
      const auto resp = crypt(alice, slot, pt);
      EXPECT_EQ(resp.data,
                aes::encryptBlock(pt, s->key.data(), aes::KeySize::Aes128))
          << "round " << round;
    }
    ASSERT_TRUE(km.rotate(alice)) << "round " << round;
  }
  EXPECT_EQ(km.session(alice)->generation, 6u);
}

// --- Migration: export / import / finish -------------------------------------

// Cross-device fixture: one KeyManager per accelerator, as the elastic pool
// has one per shard.
struct KmMigrateFixture : ::testing::Test {
  AesAccelerator src_acc{AcceleratorConfig{}};
  AesAccelerator dst_acc{AcceleratorConfig{}};
  unsigned src_sup = src_acc.addUser(Principal::supervisor());
  unsigned dst_sup = dst_acc.addUser(Principal::supervisor());
  unsigned src_alice = src_acc.addUser(Principal::user("alice", 1));
  unsigned dst_alice = dst_acc.addUser(Principal::user("alice", 1));
  KeyManager src_km{src_acc, 0x5eed5eed};
  KeyManager dst_km{dst_acc, 0xfeedfeed};
};

TEST_F(KmMigrateFixture, ExportImportFinishMovesKeyWithGenerationProof) {
  const auto s = *src_km.openSession(src_alice);
  ASSERT_EQ(s.generation, 1u);

  const auto ticket = src_km.exportForMigration(src_alice);
  ASSERT_TRUE(ticket.has_value());
  EXPECT_EQ(ticket->generation, 1u);
  EXPECT_EQ(ticket->key, s.key);
  // Export freezes the session: rotation is refused while a ticket is out,
  // so the ticket's generation proof cannot be invalidated underneath it.
  EXPECT_FALSE(src_km.rotate(src_alice));
  // But the source key stays installed and serving (load-before-zeroize).
  EXPECT_TRUE(src_acc.roundKeys().valid(s.slot));

  const auto imported = dst_km.importProvisioned(*ticket);
  ASSERT_TRUE(imported.has_value());
  EXPECT_EQ(imported->generation, 2u);  // ticket generation + 1
  EXPECT_EQ(imported->key, s.key);      // same key material, new device
  EXPECT_TRUE(dst_acc.roundKeys().valid(imported->slot));

  // Source commit requires the importer's exact generation as proof.
  ASSERT_TRUE(src_km.finishMigration(src_alice, imported->generation));
  EXPECT_EQ(src_km.session(src_alice), nullptr);
  EXPECT_FALSE(src_acc.roundKeys().valid(s.slot));          // zeroized
  EXPECT_EQ(src_acc.scratchpad().rawCell(s.cell_base), 0u);  // scrubbed
}

TEST_F(KmMigrateFixture, WrongGenerationProofNeitherInstallsNorReleases) {
  const auto s = *src_km.openSession(src_alice);
  const auto ticket = *src_km.exportForMigration(src_alice);

  // A stale proof (wrong generation) is refused and the source session
  // survives — unfrozen, so it can rotate or retry.
  EXPECT_FALSE(src_km.finishMigration(src_alice, ticket.generation + 7));
  ASSERT_NE(src_km.session(src_alice), nullptr);
  EXPECT_TRUE(src_acc.roundKeys().valid(s.slot));
  EXPECT_TRUE(src_km.rotate(src_alice));  // unfrozen after the refusal

  // The rotation bumped the generation, so the OLD ticket's proof chain is
  // dead: finish with its would-be imported generation is still refused.
  EXPECT_FALSE(src_km.finishMigration(src_alice, ticket.generation + 1));
  ASSERT_NE(src_km.session(src_alice), nullptr);
}

TEST_F(KmMigrateFixture, ImportRefusalsLeaveTargetClean) {
  // Corrupt ticket (wrong key size) is refused outright.
  KeyManager::MigrationTicket bad;
  bad.user = dst_alice;
  bad.key.assign(7, 0xaa);
  bad.generation = 1;
  EXPECT_FALSE(dst_km.importProvisioned(bad).has_value());
  EXPECT_EQ(dst_km.activeSessions(), 0u);

  // A user that already holds a session on the target cannot be imported
  // over it.
  ASSERT_TRUE(dst_km.openSession(dst_alice).has_value());
  KeyManager::MigrationTicket dup;
  dup.user = dst_alice;
  dup.key.assign(16, 0xbb);
  dup.generation = 3;
  EXPECT_FALSE(dst_km.importProvisioned(dup).has_value());
  EXPECT_EQ(dst_km.activeSessions(), 1u);
}

TEST_F(KmMigrateFixture, ExportIsIdempotentUntilFinished) {
  ASSERT_TRUE(src_km.openSession(src_alice).has_value());
  const auto t1 = src_km.exportForMigration(src_alice);
  const auto t2 = src_km.exportForMigration(src_alice);
  ASSERT_TRUE(t1 && t2);
  EXPECT_EQ(t1->generation, t2->generation);
  EXPECT_EQ(t1->key, t2->key);
  EXPECT_FALSE(src_km.exportForMigration(99).has_value());  // no session
}

}  // namespace
}  // namespace aesifc::soc
