#pragma once
// Structural FPGA resource model reproducing Table 2. The paper synthesizes
// its Chisel design with Vivado 2017.1 for a Virtex-7; we cannot run that
// flow, so this model walks the same structural inventory (pipeline rounds,
// S-boxes, key RAM, interface, tag machinery) and prices each component in
// LUT6s / flip-flops / BRAM36s using per-component cost formulas. The
// formulas are parametric in the design configuration; their constants are
// calibrated so the *baseline* lands on the paper's absolute numbers, and
// the protected-mode *deltas* then fall out of the added structures (tag
// registers, tag arrays, meet tree, checkers, overflow buffer) — which is
// the claim Table 2 actually makes (+5.6% LUTs, +6.6% FFs, +10% BRAMs,
// +0% Fmax).

#include <cstdint>
#include <string>
#include <vector>

#include "hdl/ir.h"

namespace aesifc::area {

struct Resources {
  std::uint64_t luts = 0;
  std::uint64_t ffs = 0;
  std::uint64_t brams = 0;

  Resources operator+(const Resources& o) const {
    return {luts + o.luts, ffs + o.ffs, brams + o.brams};
  }
  Resources& operator+=(const Resources& o) {
    luts += o.luts;
    ffs += o.ffs;
    brams += o.brams;
    return *this;
  }
};

struct DesignParams {
  unsigned rounds = 10;        // pipeline rounds (3 stages each)
  unsigned tag_bits = 8;       // runtime tag width (4 conf + 4 integ)
  unsigned key_slots = 8;      // round-key RAM slots
  unsigned scratchpad_cells = 8;
  unsigned out_buffer_depth = 32;
  bool protected_mode = false;
};

struct BomItem {
  std::string name;
  Resources res;
};

struct BillOfMaterials {
  std::vector<BomItem> items;
  Resources total;
  double fmax_mhz = 0.0;
};

// Price the accelerator configuration.
BillOfMaterials estimateAccelerator(const DesignParams& p);

// Table 2 rendered next to the paper's numbers.
struct Table2Row {
  std::string metric;
  double paper_base, paper_prot;
  double model_base, model_prot;
};
std::vector<Table2Row> table2();
std::string renderTable2();

// Generic netlist estimator: prices an HDL IR module directly (LUTs from
// expression nodes, FFs from register widths). Used for the src/rtl models
// and as a cross-check of the component formulas.
Resources estimateModule(const hdl::Module& m);

// --- Enforcement-strategy comparison (Section 5 quantified) ----------------------
// The paper's related work offers three ways to enforce IFC in hardware:
// purely static types (no runtime logic), the paper's static types +
// runtime tags, and fully dynamic gate-level tracking (GLIFT). This prices
// all three on the same accelerator so the trade-off is visible.
enum class Enforcement {
  StaticOnly,   // design-time verification, single-level runtime
  StaticPlusTags,  // the paper's design (Table 2's protected column)
  Glift,        // shadow logic for every gate + shadow state
};

struct EnforcementRow {
  Enforcement strategy;
  const char* name;
  Resources total;
  double lut_overhead_pct;
  bool fine_grained_sharing;  // can mix users in the pipeline at runtime
  bool runtime_policy;        // policies adjustable after tape-out
};

std::vector<EnforcementRow> enforcementComparison();
std::string renderEnforcementComparison();

}  // namespace aesifc::area
