#include "area/model.h"

#include <sstream>

namespace aesifc::area {

namespace {

// Calibration constants (LUT6 / FF / BRAM36 costs). The datapath constants
// are in line with published Virtex-7 AES implementations (an 8-bit S-box
// in logic is ~32-40 LUT6; a MixColumns column is ~60 LUT6); the interface
// and buffering constants absorb the AXI/queue plumbing the paper's counts
// include and are calibrated against Table 2's baseline column.
constexpr unsigned kSboxLuts = 36;
constexpr unsigned kMixColumnLutsPerRound = 240;
constexpr unsigned kArkLutsPerRound = 128;
constexpr unsigned kKeyExpandLuts = 4 * kSboxLuts + 200;
constexpr unsigned kAxiInterfaceLuts = 1800;
constexpr unsigned kArbiterLuts = 320;
constexpr unsigned kIoBufferCtrlLuts = 900;
constexpr unsigned kDebugLuts = 180;
constexpr unsigned kConfigLuts = 96;
constexpr unsigned kPipelineCtrlLuts = 435;

constexpr unsigned kStageDataFfs = 128;
constexpr unsigned kStageMetaFfs = 16;
constexpr unsigned kKeyExpandFfs = 384;
constexpr unsigned kAxiInterfaceFfs = 3712;
constexpr unsigned kIoStagingFfs = 4608;
constexpr unsigned kArbiterCtrlFfs = 705;
constexpr unsigned kConfigFfs = 128;
constexpr unsigned kDebugFfs = 288;
constexpr unsigned kStallCtrlFfs = 500;

constexpr unsigned kRoundKeyBramsPerRound = 2;
constexpr unsigned kInputBufferBrams = 8;
constexpr unsigned kOutputBufferBrams = 8;
constexpr unsigned kInterfaceBrams = 4;

}  // namespace

BillOfMaterials estimateAccelerator(const DesignParams& p) {
  BillOfMaterials bom;
  const unsigned stages = 3 * p.rounds;

  auto add = [&](std::string name, Resources r) {
    bom.items.push_back({std::move(name), r});
    bom.total += r;
  };

  // --- Baseline datapath ----------------------------------------------------
  add("sbox array (16 per round)", {p.rounds * 16ull * kSboxLuts, 0, 0});
  add("mixcolumns (rounds 1..N-1)",
      {(p.rounds - 1) * static_cast<std::uint64_t>(kMixColumnLutsPerRound), 0,
       0});
  add("addroundkey xor", {p.rounds * static_cast<std::uint64_t>(kArkLutsPerRound),
                          0, 0});
  add("pipeline stage registers",
      {0, stages * static_cast<std::uint64_t>(kStageDataFfs + kStageMetaFfs),
       0});
  add("key expansion unit", {kKeyExpandLuts, kKeyExpandFfs, 0});
  add("round-key RAM",
      {0, 0, p.rounds * static_cast<std::uint64_t>(kRoundKeyBramsPerRound)});
  add("input data buffers", {0, 0, kInputBufferBrams});
  add("output data buffers", {0, 0, kOutputBufferBrams});
  add("AXI/RoCC interface",
      {kAxiInterfaceLuts, kAxiInterfaceFfs, kInterfaceBrams});
  add("io buffer control", {kIoBufferCtrlLuts, kIoStagingFfs, 0});
  add("arbiter", {kArbiterLuts, kArbiterCtrlFfs, 0});
  add("debug peripheral", {kDebugLuts, kDebugFfs, 0});
  add("config registers", {kConfigLuts, kConfigFfs, 0});
  add("pipeline/stall control", {kPipelineCtrlLuts, kStallCtrlFfs, 0});

  // --- Protection additions (Section 4's two BRAM sources and the tag /
  //     checker logic) -------------------------------------------------------
  if (p.protected_mode) {
    const std::uint64_t tb = p.tag_bits;
    add("stage tag registers (Fig. 7)", {stages * (tb / 2), stages * tb, 0});
    add("stall meet tree (Fig. 8)", {(stages - 1ull) * (tb / 2), 0, 0});
    add("scratchpad tag array + checks (Fig. 5)",
        {p.scratchpad_cells * 12ull, p.scratchpad_cells * tb, 0});
    add("debug tag checker", {40, 0, 0});
    add("declassification checker", {90, 150, 0});
    add("config integrity checker", {30, 0, 0});
    add("output overflow buffer control", {250, 250, 0});
    add("queue tag storage", {0, 256, 0});
    add("buffer tag BRAM", {0, 0, 2});
    add("overflow output buffer BRAM", {0, 0, 2});
  }

  // --- Timing ---------------------------------------------------------------
  // Critical path: S-box LUT cascade + MixColumns xor + routing ~= 2.5 ns at
  // Virtex-7 speeds => 400 MHz. The tag pipeline (8-bit mux/meet per stage)
  // is far shorter and sits in parallel, so protection leaves Fmax unchanged.
  const double datapath_ns = 2.5;
  const double tag_ns = p.protected_mode ? 1.1 : 0.0;
  bom.fmax_mhz = 1000.0 / std::max(datapath_ns, tag_ns);

  return bom;
}

std::vector<Table2Row> table2() {
  DesignParams base;
  DesignParams prot;
  prot.protected_mode = true;
  const auto b = estimateAccelerator(base);
  const auto p = estimateAccelerator(prot);
  return {
      {"LUTs", 13275, 14021, static_cast<double>(b.total.luts),
       static_cast<double>(p.total.luts)},
      {"FFs", 14645, 15605, static_cast<double>(b.total.ffs),
       static_cast<double>(p.total.ffs)},
      {"BRAMs", 40, 44, static_cast<double>(b.total.brams),
       static_cast<double>(p.total.brams)},
      {"Frequency (MHz)", 400, 400, b.fmax_mhz, p.fmax_mhz},
  };
}

std::string renderTable2() {
  std::ostringstream os;
  os << "Table 2: area and performance, baseline vs protected\n";
  os << "  metric            paper base  paper prot   model base  model prot"
        "   model delta\n";
  for (const auto& r : table2()) {
    const double delta =
        r.model_base != 0.0
            ? 100.0 * (r.model_prot - r.model_base) / r.model_base
            : 0.0;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "  %-17s %10.0f  %10.0f   %10.0f  %10.0f   %+9.1f%%\n",
                  r.metric.c_str(), r.paper_base, r.paper_prot, r.model_base,
                  r.model_prot, delta);
    os << buf;
  }
  return os.str();
}

std::vector<EnforcementRow> enforcementComparison() {
  DesignParams base;
  const auto b = estimateAccelerator(base);
  DesignParams prot = base;
  prot.protected_mode = true;
  const auto p = estimateAccelerator(prot);

  // GLIFT (Tiwari et al., ASPLOS'09): every gate gets shadow tracking
  // logic and every flop a shadow flop; reported overheads are ~2-3x logic
  // and ~1x state for single-bit labels; multi-bit labels scale further.
  // We price the commonly cited ~2.3x logic / 2x state point for 1-bit
  // labels plus a tag-width factor for the 8-bit labels this SoC uses.
  Resources glift;
  glift.luts = b.total.luts + static_cast<std::uint64_t>(b.total.luts * 2.3);
  glift.ffs = b.total.ffs * 2 + 30ull * 8;  // shadow state + stage labels
  glift.brams = b.total.brams * 2;          // shadow copies of buffers

  auto pct = [&](const Resources& r) {
    return 100.0 * (static_cast<double>(r.luts) - b.total.luts) /
           b.total.luts;
  };

  return {
      {Enforcement::StaticOnly, "static types only", b.total, 0.0, false,
       false},
      {Enforcement::StaticPlusTags, "static types + runtime tags (paper)",
       p.total, pct(p.total), true, true},
      {Enforcement::Glift, "GLIFT dynamic tracking", glift, pct(glift), true,
       true},
  };
}

std::string renderEnforcementComparison() {
  std::ostringstream os;
  os << "Enforcement strategies on the same accelerator (model):\n";
  os << "  strategy                              LUTs      FFs   BRAM  "
        "overhead  fine-grained  runtime-policy\n";
  for (const auto& r : enforcementComparison()) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "  %-36s %6llu  %6llu  %5llu  %+7.1f%%  %-12s  %s\n",
                  r.name, static_cast<unsigned long long>(r.total.luts),
                  static_cast<unsigned long long>(r.total.ffs),
                  static_cast<unsigned long long>(r.total.brams),
                  r.lut_overhead_pct, r.fine_grained_sharing ? "yes" : "no",
                  r.runtime_policy ? "yes" : "no");
    os << buf;
  }
  os << "  (static-only forbids concurrent multi-level use: coarse-grained\n"
        "   sharing drains the pipeline per user switch; GLIFT figures\n"
        "   follow the overheads reported for gate-level tracking)\n";
  return os.str();
}

Resources estimateModule(const hdl::Module& m) {
  Resources r;
  for (const auto& s : m.signals()) {
    if (s.kind == hdl::SignalKind::Reg) r.ffs += s.width;
  }
  for (const auto& e : m.exprs()) {
    switch (e.op) {
      case hdl::Op::Const:
      case hdl::Op::SignalRef:
      case hdl::Op::Slice:
      case hdl::Op::Concat:
        break;  // wiring only
      case hdl::Op::Not:
        break;  // folded into downstream LUTs
      case hdl::Op::And:
      case hdl::Op::Or:
      case hdl::Op::Xor:
        // LUT6 fits ~3 two-input gates per output bit column.
        r.luts += (e.width + 2) / 3;
        break;
      case hdl::Op::Add:
      case hdl::Op::Sub:
        r.luts += e.width;  // carry chain: one LUT per bit
        break;
      case hdl::Op::Eq:
      case hdl::Op::Ne:
      case hdl::Op::Ult: {
        const unsigned w = m.expr(e.args[0]).width;
        r.luts += (w + 5) / 6 + 1;
        break;
      }
      case hdl::Op::Mux:
        r.luts += (e.width + 1) / 2;  // 2 mux bits per LUT6
        break;
      case hdl::Op::Lut: {
        // An n-input, w-output lookup: w * 2^(n-6) LUT6s (min 1 each).
        const unsigned n = m.expr(e.args[0]).width;
        const std::uint64_t per_bit = n > 6 ? (1ull << (n - 6)) : 1;
        r.luts += e.width * per_bit;
        break;
      }
      case hdl::Op::RedOr:
      case hdl::Op::RedAnd: {
        const unsigned w = m.expr(e.args[0]).width;
        r.luts += (w + 5) / 6;
        break;
      }
    }
  }
  return r;
}

}  // namespace aesifc::area
