#pragma once
// Shared types of the accelerator model: operating mode, security events,
// request/response records crossing the host interface.

#include <cstdint>
#include <string>

#include "aes/block.h"
#include "lattice/label.h"
#include "lattice/tag.h"

namespace aesifc::accel {

using lattice::HwTag;
using lattice::Label;
using lattice::Principal;

// Baseline reproduces the unprotected high-throughput accelerator of
// Section 4; Protected adds the security tags, runtime checkers, the
// meet-gated stall rule and output overflow buffer, and nonmalleable
// declassification at the pipeline exit.
enum class SecurityMode { Baseline, Protected };

enum class SecurityEventKind {
  ScratchpadWriteBlocked,
  ScratchpadReadBlocked,
  DebugReadBlocked,
  ConfigWriteBlocked,
  DeclassifyRejected,
  StallDenied,
  OutputBufferOverflow,
  KeySlotBlocked,
};

std::string toString(SecurityEventKind k);

struct SecurityEvent {
  SecurityEventKind kind;
  std::uint64_t cycle = 0;
  unsigned user = 0;
  std::string detail;

  std::string toString() const;
};

// One block submitted for encryption/decryption.
struct BlockRequest {
  std::uint64_t req_id = 0;
  unsigned user = 0;
  unsigned key_slot = 0;  // round-key RAM slot to use
  bool decrypt = false;
  aes::Block data{};
};

// One completed block delivered to a user's output queue.
struct BlockResponse {
  std::uint64_t req_id = 0;
  unsigned user = 0;
  aes::Block data{};
  std::uint64_t accept_cycle = 0;    // cycle the pipeline accepted it
  std::uint64_t complete_cycle = 0;  // cycle it exited (or left the buffer)
  bool suppressed = false;  // protected mode refused to declassify the output
};

}  // namespace aesifc::accel
