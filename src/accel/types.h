#pragma once
// Shared types of the accelerator model: operating mode, security events,
// request/response records crossing the host interface.

#include <cstdint>
#include <string>
#include <vector>

#include "aes/block.h"
#include "aes/gcm.h"
#include "lattice/label.h"
#include "lattice/tag.h"

namespace aesifc::accel {

using lattice::HwTag;
using lattice::Label;
using lattice::Principal;

// Baseline reproduces the unprotected high-throughput accelerator of
// Section 4; Protected adds the security tags, runtime checkers, the
// meet-gated stall rule and output overflow buffer, and nonmalleable
// declassification at the pipeline exit.
enum class SecurityMode { Baseline, Protected };

enum class SecurityEventKind {
  ScratchpadWriteBlocked,
  ScratchpadReadBlocked,
  DebugReadBlocked,
  ConfigWriteBlocked,
  DeclassifyRejected,
  StallDenied,
  OutputBufferOverflow,
  KeySlotBlocked,
  FaultDetected,   // parity mismatch caught at point of use; fail-secure
  FaultScrubbed,   // parity mismatch caught by the background scrub pass
  ServiceHealth,   // service-layer health-state transition (soc::AccelService)
  AuthTagMismatch, // GCM open failed authentication (a verdict, not a fault)
  // Tenant-migration audit trail (soc::EnginePool). The three kinds are
  // emitted pairwise into BOTH the source and destination shards' rings so
  // either ring alone tells the whole handover story in cycle order:
  // Begun -> (key live at target) -> KeyZeroized (source slot destroyed)
  // -> Committed. Load-at-target strictly precedes zeroize-at-source.
  MigrationBegun,
  MigrationKeyZeroized,
  MigrationCommitted,
  // Tagged DMA descriptor-ring path (soc::DmaRingEngine). The ring lives in
  // untrusted host memory, so refusals (malformed/corrupted descriptors,
  // label denials, torn ownership) and recoveries (watchdog quiesce ->
  // resync -> resubmit, ring resets) are first-class security events.
  DmaRingViolation,
  DmaRingRecovery,
};

inline constexpr unsigned kSecurityEventKinds = 17;

std::string toString(SecurityEventKind k);

// Hardware fault-injection sites (the state a single-event upset can hit)
// plus the host-interface perturbations the fault campaigns exercise.
enum class FaultSite {
  StageData,     // pipeline stage data register
  StageTag,      // pipeline stage tag register (Fig. 7)
  ScratchCell,   // key scratchpad data cell (Fig. 5)
  ScratchTag,    // key scratchpad tag array (Fig. 5)
  RoundKey,      // round-key RAM word
  ConfigReg,     // configuration register (Section 3.2.4)
  GhashStage,    // GHASH multiplier stage x/z registers
  GhashStageTag, // GHASH multiplier stage tag register
  GhashAcc,      // GHASH stream lane accumulator
  GhashKeyTable, // GHASH H-power table word
  HostDrop,      // response lost on the host interface
  HostDuplicate, // response replayed on the host interface
  HostStuckReceiver,   // receiver-ready deasserted and held
  HostSpuriousSubmit,  // garbage request injected at the submit port
  RingDescriptor,      // bit flip in a DMA descriptor-ring slot (host memory)
  RingCompletion,      // bit flip in a DMA completion-ring slot (host memory)
};

inline constexpr unsigned kHwFaultSites = 10;   // first 10 enumerators
inline constexpr unsigned kHostFaultSites = 6;  // the remaining host sites

std::string toString(FaultSite s);

// Even-parity bit over a 64-bit word (the per-cell / per-register parity
// the hardened design stores alongside protected state).
constexpr bool parity64(std::uint64_t v) {
  v ^= v >> 32;
  v ^= v >> 16;
  v ^= v >> 8;
  v ^= v >> 4;
  v ^= v >> 2;
  v ^= v >> 1;
  return (v & 1) != 0;
}

// Parity over both category masks of a label — the tag-array parity bit.
inline bool labelParity(const Label& l) {
  return parity64(static_cast<std::uint64_t>(l.c.cats.mask()) |
                  (static_cast<std::uint64_t>(l.i.cats.mask()) << 16));
}

struct SecurityEvent {
  SecurityEventKind kind;
  std::uint64_t cycle = 0;
  unsigned user = 0;
  std::string detail;

  std::string toString() const;
};

// One block submitted for encryption/decryption.
struct BlockRequest {
  std::uint64_t req_id = 0;
  unsigned user = 0;
  unsigned key_slot = 0;  // round-key RAM slot to use
  bool decrypt = false;
  aes::Block data{};
};

// One completed block delivered to a user's output queue.
struct BlockResponse {
  std::uint64_t req_id = 0;
  unsigned user = 0;
  aes::Block data{};
  std::uint64_t accept_cycle = 0;    // cycle the pipeline accepted it
  std::uint64_t complete_cycle = 0;  // cycle it exited (or left the buffer)
  bool suppressed = false;  // protected mode refused to declassify the output
  bool fault_aborted = false;  // squashed by the fail-secure fault path
  bool dropped = false;        // overflow buffer full; completion record only
};

// One authenticated-encryption operation submitted to the GCM sequencer.
// `data` is plaintext for a seal, ciphertext for an open; sizes need not be
// block-aligned (SP 800-38D partial final blocks are handled on-device).
struct GcmRequest {
  std::uint64_t req_id = 0;
  unsigned user = 0;
  unsigned key_slot = 0;
  bool open = false;  // false: seal (encrypt+tag); true: open (verify+decrypt)
  std::vector<std::uint8_t> iv;   // any non-zero length; 12 bytes is fast path
  std::vector<std::uint8_t> aad;
  std::vector<std::uint8_t> data;
  aes::Tag128 tag{};  // expected tag (open only)
};

// Terminal outcome of a GCM operation. Exactly one of the flag fields is
// set on failure; on success `data` holds ciphertext (seal) or plaintext
// (open) and `tag` the computed auth tag (seal only — an open never echoes
// a tag, it only verdicts).
struct GcmResponse {
  std::uint64_t req_id = 0;
  unsigned user = 0;
  std::vector<std::uint8_t> data;
  aes::Tag128 tag{};
  std::uint64_t accept_cycle = 0;
  std::uint64_t complete_cycle = 0;
  bool suppressed = false;    // declassification of the result was refused
  bool fault_aborted = false; // a fault hit the op's state; nothing released
  bool auth_failed = false;   // open only: tag mismatch (verdict, not fault)
};

}  // namespace aesifc::accel
