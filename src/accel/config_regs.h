#pragma once
// Configuration registers (Section 3.2.4). Labeled (bottom, top): readable
// by every user, writable only by a fully trusted principal. Baseline mode
// performs no integrity check on writes.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "accel/types.h"

namespace aesifc::accel {

class ConfigRegisters {
 public:
  explicit ConfigRegisters(SecurityMode mode);

  // Any user may read (values are public).
  std::uint32_t read(const std::string& name) const;

  // Returns false (and leaves the register unchanged) when the writer lacks
  // full integrity in Protected mode.
  bool write(const std::string& name, std::uint32_t value,
             const Label& writer);

  bool exists(const std::string& name) const {
    return regs_.count(name) != 0;
  }

  static Label label() {
    return Label{lattice::Conf::bottom(), lattice::Integ::top()};
  }

  // --- Fail-secure hardening -------------------------------------------------
  // Every register stores a parity bit, written with the value. On a
  // mismatch the fail-secure action is restoreDefault(): the register goes
  // back to its power-on value (all power-on values are the *closed* /
  // least-permissive settings, e.g. debug_enable = 0).
  bool parityOk(const std::string& name) const;
  void restoreDefault(const std::string& name);
  // Register names in a stable order (for the background scrub rotation).
  const std::vector<std::string>& names() const { return names_; }

  bool faultFlipBit(const std::string& name, unsigned bit);

 private:
  SecurityMode mode_;
  std::map<std::string, std::uint32_t> regs_;
  std::map<std::string, std::uint32_t> defaults_;
  std::map<std::string, bool> parity_;
  std::vector<std::string> names_;
};

}  // namespace aesifc::accel
