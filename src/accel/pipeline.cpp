#include "accel/pipeline.h"

#include <cassert>

#include "aes/block.h"

namespace aesifc::accel {

AesPipeline::AesPipeline(unsigned max_rounds, const RoundKeyRam& keys)
    : max_rounds_{max_rounds}, keys_{keys}, stages_(3 * max_rounds) {
  assert(max_rounds >= 1);
}

bool AesPipeline::anyValid() const {
  for (const auto& s : stages_)
    if (s.valid) return true;
  return false;
}

unsigned AesPipeline::validCount() const {
  unsigned n = 0;
  for (const auto& s : stages_)
    if (s.valid) ++n;
  return n;
}

bool stateParity(const aes::State& s) {
  std::uint8_t acc = 0;
  for (auto b : s) acc ^= b;
  return parity64(acc);
}

void stampParity(StageSlot& s) {
  s.data_parity = stateParity(s.state);
  s.tag_parity = labelParity(s.tag);
}

bool AesPipeline::stageParityOk(unsigned i) const {
  const StageSlot& s = stages_.at(i);
  if (!s.valid) return true;
  return s.data_parity == stateParity(s.state) &&
         s.tag_parity == labelParity(s.tag);
}

void AesPipeline::squash(unsigned i) {
  StageSlot& s = stages_.at(i);
  s = StageSlot{};
  stampParity(s);
}

bool AesPipeline::faultFlipStageDataBit(unsigned stage, unsigned bit) {
  StageSlot& s = stages_.at(stage % stages_.size());
  if (!s.valid || bit >= 128) return false;
  s.state[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  return true;
}

bool AesPipeline::faultFlipStageTagBit(unsigned stage, unsigned bit) {
  StageSlot& s = stages_.at(stage % stages_.size());
  if (!s.valid || bit >= 32) return false;
  Label& t = s.tag;
  if (bit < 16) {
    t.c = lattice::Conf{lattice::CatSet{
        static_cast<std::uint16_t>(t.c.cats.mask() ^ (1u << bit))}};
  } else {
    t.i = lattice::Integ{lattice::CatSet{
        static_cast<std::uint16_t>(t.i.cats.mask() ^ (1u << (bit - 16)))}};
  }
  return true;
}

lattice::Conf AesPipeline::meetConf() const {
  lattice::Conf m = lattice::Conf::top();  // identity of the meet
  for (const auto& s : stages_) {
    if (s.valid) m = m.meet(s.tag.c);
  }
  return m;
}

StageSlot AesPipeline::applyEntry(StageSlot s) const {
  // Entry AddRoundKey: rk[0] for encryption, rk[n] for decryption.
  const unsigned n = s.total_rounds;
  const auto& rk = keys_.roundKey(s.key_slot, s.decrypt ? n : 0);
  aes::addRoundKey(s.state, rk);
  s.data_parity = stateParity(s.state);
  return s;
}

StageSlot AesPipeline::compute(unsigned idx, StageSlot s) const {
  if (!s.valid) return s;
  const unsigned r = idx / 3 + 1;  // round this stage performs
  const unsigned op = idx % 3;
  const unsigned n = s.total_rounds;
  if (r > n) return s;  // pass-through stage for shorter key schedules

  if (!s.decrypt) {
    switch (op) {
      case 0:
        aes::subBytes(s.state);
        break;
      case 1:
        aes::shiftRows(s.state);
        if (r < n) aes::mixColumns(s.state);
        break;
      case 2:
        aes::addRoundKey(s.state, keys_.roundKey(s.key_slot, r));
        break;
    }
  } else {
    switch (op) {
      case 0:
        aes::invShiftRows(s.state);
        break;
      case 1:
        aes::invSubBytes(s.state);
        break;
      case 2:
        aes::addRoundKey(s.state, keys_.roundKey(s.key_slot, n - r));
        if (r < n) aes::invMixColumns(s.state);
        break;
    }
  }
  // The stage register writes its parity bit together with the data; a
  // fault flips the register *after* the write and is caught at the next
  // parity check.
  s.data_parity = stateParity(s.state);
  return s;
}

std::optional<StageSlot> AesPipeline::advance(std::optional<StageSlot> input) {
  std::optional<StageSlot> out;
  if (stages_.back().valid) out = stages_.back();

  for (std::size_t i = stages_.size() - 1; i >= 1; --i) {
    stages_[i] = compute(static_cast<unsigned>(i), stages_[i - 1]);
  }
  if (input.has_value()) {
    stages_[0] = compute(0, applyEntry(std::move(*input)));
  } else {
    stages_[0] = StageSlot{};
  }
  return out;
}

}  // namespace aesifc::accel
