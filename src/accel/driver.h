#pragma once
// Software driver layer: what a kernel driver / user library would run on
// the host CPU to use the accelerator. `AccelSession` is one user's handle;
// it performs synchronous block operations and block-cipher modes by
// submitting work and ticking the device until completion.
//
// The mode helpers also document a real architectural point of pipelined
// engines: ECB/CTR submit one block per cycle and ride the full 51.2 Gbps
// pipeline, while CBC encryption is chained and pays the whole 30-cycle
// latency per block.

#include <cstdint>
#include <optional>
#include <vector>

#include "accel/accelerator.h"
#include "aes/modes.h"

namespace aesifc::accel {

// Loads a key of any supported size through the tagged scratchpad path
// (configure keyBytes/8 cells, write the 64-bit words, expand into `slot`).
// Returns false if any step is refused.
bool loadKeyBytes(AesAccelerator& acc, unsigned user, unsigned slot,
                  unsigned cell_base, const std::vector<std::uint8_t>& key,
                  aes::KeySize ks, lattice::Conf key_conf);

// Convenience for the common AES-128 case.
bool loadKey128(AesAccelerator& acc, unsigned user, unsigned slot,
                unsigned cell_base, const std::vector<std::uint8_t>& key,
                lattice::Conf key_conf);

class AccelSession {
 public:
  AccelSession(AesAccelerator& acc, unsigned user, unsigned key_slot);

  // Single-block synchronous operations (tick until the response arrives).
  // Returns nullopt if the device suppressed the output (declassification
  // refused) or never answered within the timeout.
  std::optional<aes::Block> encryptBlock(const aes::Block& pt);
  std::optional<aes::Block> decryptBlock(const aes::Block& ct);

  // Pipelined modes: one submission per cycle, all blocks in flight.
  std::optional<aes::Bytes> ecbEncrypt(const aes::Bytes& data);
  std::optional<aes::Bytes> ecbDecrypt(const aes::Bytes& data);
  std::optional<aes::Bytes> ctrCrypt(const aes::Bytes& data,
                                     const aes::Iv& nonce);
  // CBC decryption is parallel (each block's chain input is ciphertext).
  std::optional<aes::Bytes> cbcDecrypt(const aes::Bytes& data,
                                       const aes::Iv& iv);
  // CBC encryption is serial: each block waits for the previous one.
  std::optional<aes::Bytes> cbcEncrypt(const aes::Bytes& data,
                                       const aes::Iv& iv);

  // Device cycles consumed by this session's synchronous calls.
  std::uint64_t cyclesUsed() const { return cycles_used_; }
  unsigned user() const { return user_; }

 private:
  // Submit `blocks` (optionally XORed against `chain` upstream by caller),
  // pipelined, and collect responses in submission order.
  std::optional<std::vector<aes::Block>> runBatch(
      const std::vector<aes::Block>& blocks, bool decrypt);

  AesAccelerator& acc_;
  unsigned user_;
  unsigned key_slot_;
  std::uint64_t next_req_ = 1;
  std::uint64_t cycles_used_ = 0;
};

}  // namespace aesifc::accel
