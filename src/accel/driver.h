#pragma once
// Software driver layer: what a kernel driver / user library would run on
// the host CPU to use the accelerator. `AccelSession` is one user's handle;
// it performs synchronous block operations and block-cipher modes by
// submitting work and ticking the device until completion.
//
// The driver is written for an imperfect device and an imperfect bus: every
// operation returns an `AccelResult` whose status distinguishes a security
// refusal (`Suppressed` — never retried) from transient failures
// (`Timeout`, `FaultAborted`, `Dropped` — retried with bounded backoff when
// the session is configured for it) and a deterministic refusal at the
// submit port (`Rejected`, e.g. a zeroized key slot). Duplicated responses
// are consumed at most once; responses from abandoned attempts are
// recognized by request id and still credited, so a retry can never
// double-deliver.
//
// The mode helpers also document a real architectural point of pipelined
// engines: ECB/CTR submit one block per cycle and ride the full 51.2 Gbps
// pipeline, while CBC encryption is chained and pays the whole 30-cycle
// latency per block.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "accel/accelerator.h"
#include "aes/modes.h"

namespace aesifc::accel {

// Loads a key of any supported size through the tagged scratchpad path
// (configure keyBytes/8 cells, write the 64-bit words, expand into `slot`).
// Returns false if any step is refused.
bool loadKeyBytes(AesAccelerator& acc, unsigned user, unsigned slot,
                  unsigned cell_base, const std::vector<std::uint8_t>& key,
                  aes::KeySize ks, lattice::Conf key_conf);

// Convenience for the common AES-128 case.
bool loadKey128(AesAccelerator& acc, unsigned user, unsigned slot,
                unsigned cell_base, const std::vector<std::uint8_t>& key,
                lattice::Conf key_conf);

// Outcome of a driver operation. Every submitted request ends in exactly
// one of these — there is no silent-drop state.
enum class AccelStatus {
  Ok,           // all blocks completed and verified deliverable
  Suppressed,   // the device refused to declassify (security; NOT retryable)
  Timeout,      // watchdog expired with responses outstanding (retryable)
  FaultAborted, // squashed by the fail-secure fault path (retryable)
  Dropped,      // lost to overflow-buffer pressure (retryable)
  Rejected,     // refused at the submit port (e.g. zeroized key slot)
  AuthFailed,   // GCM open: tag mismatch — a verdict, NOT retryable
};

std::string toString(AccelStatus s);

// Retryable = transient device/bus condition; security refusals and
// deterministic submit rejections are final.
constexpr bool isRetryable(AccelStatus s) {
  return s == AccelStatus::Timeout || s == AccelStatus::FaultAborted ||
         s == AccelStatus::Dropped;
}

// Value-or-status result. Mirrors the std::optional surface the driver
// used to return (`has_value`, `operator*`, `operator->`, bool tests) so
// existing call sites read unchanged, plus `status()` for the failure kind.
template <typename T>
class AccelResult {
 public:
  AccelResult(AccelStatus st) : status_{st} {}  // NOLINT: implicit by design
  AccelResult(T v) : status_{AccelStatus::Ok}, value_{std::move(v)} {}

  AccelStatus status() const { return status_; }
  bool has_value() const { return value_.has_value(); }
  explicit operator bool() const { return has_value(); }
  const T& operator*() const { return *value_; }
  T& operator*() { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }
  const T& value() const { return value_.value(); }

 private:
  AccelStatus status_;
  std::optional<T> value_;
};

// Per-session robustness knobs. The defaults reproduce the historical
// behavior: one attempt, 4096-cycle watchdog, no retries.
struct SessionOptions {
  std::uint64_t timeout_cycles = 4096;  // watchdog per attempt
  unsigned max_retries = 0;       // extra attempts for retryable failures
  std::uint64_t backoff_cycles = 32;  // idle ticks before retry, doubles per attempt
};

// Terminal-outcome counters for one session. Every runBatch() verdict bumps
// exactly one field, so the sum equals the number of driver operations; a
// health monitor can difference two snapshots to get a window's error rate.
struct SessionTelemetry {
  std::uint64_t ok = 0;
  std::uint64_t suppressed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t fault_aborts = 0;
  std::uint64_t drops = 0;
  std::uint64_t rejected = 0;
  std::uint64_t auth_failed = 0;  // GCM open verdicts (not device health)

  std::uint64_t operations() const {
    return ok + suppressed + timeouts + fault_aborts + drops + rejected +
           auth_failed;
  }
  // Transient-failure outcomes (the retryable statuses) — the numerator of
  // an error-budget rate. Suppressed/Rejected are deterministic verdicts,
  // not device health signals.
  std::uint64_t transientFailures() const {
    return timeouts + fault_aborts + drops;
  }
  SessionTelemetry& operator+=(const SessionTelemetry& o) {
    ok += o.ok;
    suppressed += o.suppressed;
    timeouts += o.timeouts;
    fault_aborts += o.fault_aborts;
    drops += o.drops;
    rejected += o.rejected;
    auth_failed += o.auth_failed;
    return *this;
  }
};

// Result of a successful GCM seal: ciphertext plus the authentication tag.
struct GcmSealed {
  std::vector<std::uint8_t> ciphertext;
  aes::Tag128 tag{};
};

class AccelSession {
 public:
  AccelSession(AesAccelerator& acc, unsigned user, unsigned key_slot,
               SessionOptions opts = {});

  // Single-block synchronous operations (tick until the response arrives).
  AccelResult<aes::Block> encryptBlock(const aes::Block& pt);
  AccelResult<aes::Block> decryptBlock(const aes::Block& ct);

  // Batch submit/drain: all blocks submitted back-to-back (one per cycle)
  // so the pipeline fills, responses collected in submission order. K
  // blocks cost ~K + pipeline-depth cycles instead of K x (depth + 1) —
  // this is the path a batching service layer uses to reach the engine's
  // 1 block/cycle design point. One terminal verdict covers the whole
  // batch (per-tenant label verdicts are uniform across a batch).
  AccelResult<std::vector<aes::Block>> encryptBlocks(
      const std::vector<aes::Block>& pts);
  AccelResult<std::vector<aes::Block>> decryptBlocks(
      const std::vector<aes::Block>& cts);

  // Pipelined modes: one submission per cycle, all blocks in flight.
  AccelResult<aes::Bytes> ecbEncrypt(const aes::Bytes& data);
  AccelResult<aes::Bytes> ecbDecrypt(const aes::Bytes& data);
  AccelResult<aes::Bytes> ctrCrypt(const aes::Bytes& data,
                                   const aes::Iv& nonce);
  // CBC decryption is parallel (each block's chain input is ciphertext).
  AccelResult<aes::Bytes> cbcDecrypt(const aes::Bytes& data,
                                     const aes::Iv& iv);
  // CBC encryption is serial: each block waits for the previous one.
  AccelResult<aes::Bytes> cbcEncrypt(const aes::Bytes& data,
                                     const aes::Iv& iv);

  // --- Asynchronous batches (completion-driven, no internal clock) ---------
  // beginBatch submits the blocks and returns a ticket WITHOUT ticking the
  // device: the caller owns the clock and overlaps its own work (ring-DMA
  // ticks, other tenants, host compute) with the pipeline. pollBatch
  // consumes any completions that have arrived (no ticking) and reports
  // whether the batch reached a terminal state; finishBatch retires the
  // ticket and returns the verdict, optionally ticking up to
  // `max_wait_cycles` first. Unlike the synchronous helpers there is NO
  // automatic retry here: the first transient failure (fault abort / drop)
  // becomes the batch verdict and the caller decides what to resubmit —
  // exactly the contract the DMA ring engine needs for idempotent
  // recovery. Several batches may be outstanding at once.
  std::uint64_t beginBatch(const std::vector<aes::Block>& blocks,
                           bool decrypt);
  bool pollBatch(std::uint64_t ticket);  // true once terminal (or unknown)
  AccelResult<std::vector<aes::Block>> finishBatch(
      std::uint64_t ticket, std::uint64_t max_wait_cycles = 0);
  std::size_t asyncOutstanding() const { return async_batches_.size(); }

  // On-device AEAD (SP 800-38D): the whole operation — CTR keystream, H,
  // GHASH, tag — runs on the accelerator under label enforcement; the host
  // never sees the hash subkey. Any IV length >= 1 byte (12 is the fast
  // path). `gcmOpen` returns AuthFailed on a tag mismatch (a verdict, not
  // retryable); transient faults retry like block operations.
  AccelResult<GcmSealed> gcmSeal(const std::vector<std::uint8_t>& plaintext,
                                 const std::vector<std::uint8_t>& aad,
                                 const std::vector<std::uint8_t>& iv);
  AccelResult<std::vector<std::uint8_t>> gcmOpen(
      const std::vector<std::uint8_t>& ciphertext,
      const std::vector<std::uint8_t>& aad, const aes::Tag128& tag,
      const std::vector<std::uint8_t>& iv);

  // Device cycles consumed by this session's synchronous calls.
  std::uint64_t cyclesUsed() const { return cycles_used_; }
  unsigned user() const { return user_; }
  // Status of the most recent operation and retry telemetry.
  AccelStatus lastStatus() const { return last_status_; }
  std::uint64_t retries() const { return retries_; }
  // Cumulative terminal-outcome counts (see SessionTelemetry).
  const SessionTelemetry& telemetry() const { return telemetry_; }
  // Retune the robustness knobs mid-session (a degraded-mode service
  // tightens the watchdog and retry budget without reopening the session).
  void setOptions(const SessionOptions& opts) { opts_ = opts; }
  const SessionOptions& options() const { return opts_; }

 private:
  // Submit `blocks` (optionally XORed against `chain` upstream by caller),
  // pipelined, and collect responses in submission order — resubmitting
  // failed blocks up to the retry budget.
  AccelResult<std::vector<aes::Block>> runBatch(
      const std::vector<aes::Block>& blocks, bool decrypt);
  // Run one GCM op synchronously, retrying transient failures.
  AccelResult<GcmResponse> runGcm(GcmRequest req);
  AccelStatus finishGcm(AccelStatus verdict, std::uint64_t start_cycle);

  // One outstanding asynchronous batch (beginBatch/pollBatch/finishBatch).
  struct AsyncBatch {
    std::vector<aes::Block> blocks;
    bool decrypt = false;
    std::vector<aes::Block> out;
    std::vector<char> state;  // 0 pending, 1 done, 2 suppressed
    std::size_t submitted = 0;
    std::size_t resolved = 0;
    bool any_suppressed = false;
    bool rejected = false;
    std::optional<AccelStatus> transient;  // first fault-abort/drop
    std::uint64_t begin_cycle = 0;
  };
  bool asyncTerminal(const AsyncBatch& b) const {
    return b.rejected || b.transient.has_value() ||
           b.resolved == b.blocks.size();
  }
  void asyncSubmit(std::uint64_t ticket, AsyncBatch& b);
  void asyncDrain();
  AccelStatus finishVerdict(AccelStatus verdict, std::uint64_t start_cycle);

  AesAccelerator& acc_;
  unsigned user_;
  unsigned key_slot_;
  SessionOptions opts_;
  std::map<std::uint64_t, AsyncBatch> async_batches_;
  // req_id -> (ticket, block index) across every outstanding async batch.
  std::map<std::uint64_t, std::pair<std::uint64_t, std::size_t>> async_order_;
  std::uint64_t next_ticket_ = 1;
  std::uint64_t next_req_ = 1;
  std::uint64_t cycles_used_ = 0;
  std::uint64_t retries_ = 0;
  AccelStatus last_status_ = AccelStatus::Ok;
  SessionTelemetry telemetry_;
};

}  // namespace aesifc::accel
