#include "accel/config_regs.h"

#include <stdexcept>

namespace aesifc::accel {

ConfigRegisters::ConfigRegisters(SecurityMode mode) : mode_{mode} {
  // Register map of the prototype. Power-on values are the closed /
  // least-permissive settings — they double as the fail-secure targets.
  regs_["debug_enable"] = 0;      // debug peripheral gate
  regs_["arbiter_mode"] = 0;      // 0 = fine-grained RR, 1 = coarse-grained
  regs_["out_buf_depth"] = 32;    // overflow buffer high-water mark
  regs_["version"] = 0x20190602;  // read-only identification
  defaults_ = regs_;
  for (const auto& [name, v] : regs_) {
    parity_[name] = parity64(v);
    names_.push_back(name);
  }
}

std::uint32_t ConfigRegisters::read(const std::string& name) const {
  auto it = regs_.find(name);
  if (it == regs_.end())
    throw std::out_of_range("ConfigRegisters: no register '" + name + "'");
  return it->second;
}

bool ConfigRegisters::write(const std::string& name, std::uint32_t value,
                            const Label& writer) {
  auto it = regs_.find(name);
  if (it == regs_.end())
    throw std::out_of_range("ConfigRegisters: no register '" + name + "'");
  // A write asserts the register's full (top) integrity, so only a
  // full-integrity principal may perform it. Confidentiality is not
  // checked: config values are public by construction, and the writer
  // choosing a public value does not declassify its secrets.
  if (mode_ == SecurityMode::Protected && !writer.i.flowsTo(label().i)) {
    return false;
  }
  it->second = value;
  parity_[name] = parity64(value);
  return true;
}

bool ConfigRegisters::parityOk(const std::string& name) const {
  auto it = regs_.find(name);
  if (it == regs_.end())
    throw std::out_of_range("ConfigRegisters: no register '" + name + "'");
  return parity64(it->second) == parity_.at(name);
}

void ConfigRegisters::restoreDefault(const std::string& name) {
  regs_.at(name) = defaults_.at(name);
  parity_.at(name) = parity64(defaults_.at(name));
}

bool ConfigRegisters::faultFlipBit(const std::string& name, unsigned bit) {
  auto it = regs_.find(name);
  if (it == regs_.end() || bit >= 32) return false;
  it->second ^= 1u << bit;
  return true;
}

}  // namespace aesifc::accel
