#pragma once
// On-device tagged GHASH unit: a pipelined GF(2^128) multiply-accumulate
// engine that extends the paper's Fig. 7 tag-travel scheme to the
// authentication half of AES-GCM. The multiplier reuses the host
// `aes::GhashKey` 4-bit-table (Shoup) algorithm, split across
// `kGhashStages` pipeline stages of 8 nibble-steps each via
// `GhashKey::mulSteps` — so the staged hardware model is bit-identical to
// the host path by construction.
//
// Throughput: one block per cycle at full rate. The serial GHASH Horner
// recurrence y = (y ^ b)·H has a d-cycle data hazard in a d-stage
// multiplier, so each stream keeps d = kGhashLanes interleaved lane
// accumulators: block i (0-based) lands in lane i mod d and multiplies by
// H^d — except the last block of each lane, which multiplies by
// H^(n - i) (in [1, d]); the final digest is then simply the XOR of the
// lanes, with no corrective pass. This requires the stream's total block
// count to be declared when the stream opens (the GCM sequencer always
// knows it).
//
// Security tags travel exactly as in the AES pipe: each stage slot carries
// a label; a stream's running label is the join of the H-table label and
// every absorbed block's label; the digest leaves the unit only through a
// nonmalleable declassification check (same Eq. 1 rule as ciphertext at
// the pipeline exit) or through `digestInternal`, which keeps the label.
//
// Fail-secure hardening mirrors the AES datapath: parity on stage x/z and
// tag registers, parity over each stream's lane accumulators + label, and
// a checksum over each H-power table (checked at point of use on every
// issue and by the slow scrub ring). Any mismatch faults the stream —
// a faulted stream can never release a digest.

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "accel/key_store.h"
#include "accel/types.h"
#include "aes/gcm.h"

namespace aesifc::accel {

inline constexpr unsigned kGhashStages = 4;  // multiplier pipeline depth
// Interleaved accumulator lanes per stream; equal to the stage count so a
// lane's writeback always lands before the lane's next issue reads it.
inline constexpr unsigned kGhashLanes = kGhashStages;
// H-table slots mirror the round-key RAM slots one-to-one: slot i holds
// H = E(K_i, 0^128) for the AES key in round-key slot i.
inline constexpr unsigned kGhashKeySlots = kRoundKeySlots;
inline constexpr unsigned kGhashStreams = 8;    // concurrent hash streams
inline constexpr unsigned kGhashFifoDepth = 8;  // per-stream absorb FIFO

struct GhashStageSlot {
  bool valid = false;
  unsigned stream = 0;
  unsigned lane = 0;
  unsigned key_slot = 0;
  unsigned power = 0;  // selects H^(power+1) for this multiply
  aes::Tag128 x{};     // multiplicand (lane accumulator ^ absorbed block)
  aes::Tag128 z{};     // partial product, advanced 8 nibble-steps per stage
  Label tag{};         // per-stage security tag (Fig. 7, extended)
  // Hardening: parity over x||z (rewritten with each stage's datapath) and
  // over the tag register (written once at issue).
  bool data_parity = false;
  bool tag_parity = false;
};

// One fail-secure detection inside the unit, reported to the accelerator
// (which owns the event log and fault counters).
struct GhashScrubFinding {
  FaultSite site = FaultSite::GhashStage;
  unsigned index = 0;  // stage / stream / key slot, per site
  unsigned user = 0;
  std::string detail;
};

class GhashUnit {
 public:
  explicit GhashUnit(bool hardened) : hardened_{hardened} {}

  // --- H-key slots -----------------------------------------------------------
  // Install hash subkey H for `key_slot` (the sequencer derives it
  // on-device as E(K, 0^128)); builds the H^1..H^d power tables, which
  // become usable `kGhashLanes` cycles later (the table-build latency).
  // `label` is the key's label: join(conf of K, integrity of its owner).
  void loadH(unsigned key_slot, const aes::Tag128& h, Label label,
             std::uint64_t now);
  // Drop the H tables for a slot (AES key store/clear/zeroize voids them);
  // any open stream bound to the slot faults, any in-flight stage squashes.
  void invalidateKey(unsigned key_slot);
  bool keyValid(unsigned key_slot) const;
  bool keyReady(unsigned key_slot, std::uint64_t now) const;
  const Label& keyLabel(unsigned key_slot) const;

  // --- Streams ---------------------------------------------------------------
  // Open a hash stream of exactly `total_blocks` 16-byte blocks over the
  // H of `key_slot`. `label` is the submitting user's data label; the
  // stream label starts at join(label, label(H)). Returns nullopt when no
  // stream slot is free or the key slot holds no valid H.
  std::optional<unsigned> openStream(unsigned user, unsigned key_slot,
                                     std::uint64_t total_blocks, Label label);
  // Absorb the next block (FIFO-ordered). False when the stream is not
  // accepting (full FIFO, faulted, or all blocks already absorbed).
  bool absorb(unsigned stream, const aes::Tag128& block, const Label& label);
  std::size_t fifoSpace(unsigned stream) const;
  bool open(unsigned stream) const { return streams_.at(stream).open; }
  bool done(unsigned stream) const;  // every block issued and written back
  bool faulted(unsigned stream) const { return streams_.at(stream).faulted; }
  unsigned streamUser(unsigned stream) const {
    return streams_.at(stream).user;
  }
  const Label& streamLabel(unsigned stream) const {
    return streams_.at(stream).label;
  }

  // Digest without declassification — for internal consumers (J0
  // derivation) whose result stays tagged inside the device.
  aes::Tag128 digestInternal(unsigned stream) const;

  enum class ReleaseStatus { NotReady, Faulted, Refused, Ok };
  struct ReleaseResult {
    ReleaseStatus status = ReleaseStatus::NotReady;
    aes::Tag128 digest{};
    std::string reason;  // declassify-refusal reason, for the event log
  };
  // Release the digest to `p`: the same nonmalleable declassification as
  // ciphertext at the pipeline exit — label (c, i) may leave as
  // (bottom, i) only if checkDeclassify allows it for `p`. A hardened
  // release also re-verifies the stream's accumulator parity at this point
  // of use (Faulted if it fails; nothing is released).
  ReleaseResult release(unsigned stream, const Principal& p);
  void closeStream(unsigned stream);

  // Meet over the confidentiality of all in-flight stage tags and open
  // stream labels — folded into the accelerator's Fig. 8 stall meet, so a
  // stall request must also be unobservable to every pending hash stream.
  lattice::Conf meetConf() const;

  // One clock: write back the exiting multiply, shift the stages, issue at
  // most one block (round-robin over ready streams). Returns point-of-use
  // detections (hardened H-table checksum at issue). Frozen during
  // accelerator stall cycles, like the AES pipe.
  std::vector<GhashScrubFinding> tick(std::uint64_t now);

  // --- Fault-injection ports (no parity/checksum restamp) --------------------
  bool faultFlipStageBit(unsigned stage, unsigned bit);     // 0..255 over x||z
  bool faultFlipStageTagBit(unsigned stage, unsigned bit);  // 0..31
  bool faultFlipAccBit(unsigned stream, unsigned bit);  // 0..128*lanes-1
  bool faultFlipKeyTableBit(unsigned slot, unsigned bit);  // over all tables

  // --- Fail-secure scrub (driven by the accelerator's scrub pass) ------------
  // Fast ring: every stage and stream comparator, every cycle.
  std::vector<GhashScrubFinding> scrubFast();
  // Slow ring: one H-key slot per visit.
  std::optional<GhashScrubFinding> scrubKeySlot(unsigned slot);

  // --- Telemetry / test access ----------------------------------------------
  std::uint64_t blocksProcessed() const { return blocks_; }
  unsigned activeStreams() const;
  bool anyValid() const;
  const GhashStageSlot& stage(unsigned i) const { return stages_.at(i); }

 private:
  struct KeySlot {
    bool valid = false;
    std::uint64_t ready_at = 0;  // table-build completion cycle
    std::vector<aes::GhashKey> powers;  // H^1 .. H^kGhashLanes
    Label label{};
    std::uint64_t checksum = 0;  // over every table byte + the label
  };

  struct Stream {
    bool open = false;
    unsigned user = 0;
    unsigned key_slot = 0;
    Label label{};
    std::uint64_t total = 0;     // declared block count
    std::uint64_t absorbed = 0;  // pushed into the FIFO
    std::uint64_t issued = 0;    // entered the multiplier
    std::uint64_t written = 0;   // writebacks completed
    std::array<aes::Tag128, kGhashLanes> lanes{};
    std::deque<aes::Tag128> fifo;
    bool faulted = false;
    bool parity = false;  // over the lane accumulators + label
  };

  GhashStageSlot computeStage(unsigned idx, GhashStageSlot s) const;
  void restampStream(Stream& st);
  bool streamParityOk(const Stream& st) const;
  void faultStream(unsigned sid);
  std::uint64_t keyChecksum(const KeySlot& k) const;

  bool hardened_;
  std::array<KeySlot, kGhashKeySlots> keys_{};
  std::array<Stream, kGhashStreams> streams_{};
  std::array<GhashStageSlot, kGhashStages> stages_{};
  unsigned issue_rr_ = 0;
  std::uint64_t blocks_ = 0;
};

}  // namespace aesifc::accel
