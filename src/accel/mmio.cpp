#include "accel/mmio.h"

#include <algorithm>

namespace aesifc::accel {

namespace {

const char* configName(std::uint32_t addr) {
  switch (addr) {
    case MmioWindow::kCfgBase + 0x0: return "debug_enable";
    case MmioWindow::kCfgBase + 0x4: return "arbiter_mode";
    case MmioWindow::kCfgBase + 0x8: return "out_buf_depth";
    case MmioWindow::kCfgBase + 0xc: return "version";
  }
  return nullptr;
}

std::uint32_t blockWord(const aes::Block& b, unsigned w) {
  std::uint32_t v = 0;
  for (unsigned i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(b[4 * w + i]) << (8 * i);
  return v;
}

}  // namespace

MmioWindow::MmioWindow(AesAccelerator& acc, unsigned user)
    : acc_{acc}, user_{user} {
  // Distinct id spaces per window so request ids do not collide.
  next_req_ = (static_cast<std::uint64_t>(user) << 48) | 1;
}

lattice::Conf MmioWindow::confFromPalette(unsigned idx) const {
  static const lattice::TagCodec codec = lattice::TagCodec::userCategories();
  return codec.conf(idx);
}

void MmioWindow::doSubmit(bool decrypt) {
  BlockRequest req;
  req.req_id = next_req_++;
  req.user = user_;
  req.key_slot = key_slot_;
  req.decrypt = decrypt;
  for (unsigned w = 0; w < 4; ++w) {
    for (unsigned i = 0; i < 4; ++i) {
      req.data[4 * w + i] =
          static_cast<std::uint8_t>(data_in_[w] >> (8 * i));
    }
  }
  last_ok_ = acc_.submit(req);
}

void MmioWindow::doKeyGo(std::uint32_t op) {
  switch (op) {
    case 1: {  // write staged 64-bit word into scratchpad cell KEY_ARG
      const std::uint64_t v =
          (static_cast<std::uint64_t>(key_hi_) << 32) | key_lo_;
      last_ok_ = acc_.writeKeyCell(user_, key_arg_ & 0xff, v);
      break;
    }
    case 2: {  // configure cells [base, base+count) to this user
      const unsigned base = key_arg_ & 0xff;
      const unsigned count = (key_arg_ >> 8) & 0xff;
      acc_.configureKeyCells(user_, base, count);
      last_ok_ = true;
      break;
    }
    case 4: {  // expand from cells into KEY_SLOT
      const unsigned base = key_arg_ & 0xff;
      const unsigned palette = (key_arg_ >> 8) & 0xf;
      last_ok_ = acc_.loadKey(user_, key_slot_, base, aes::KeySize::Aes128,
                              confFromPalette(palette));
      break;
    }
    default:
      last_ok_ = false;
      break;
  }
}

void MmioWindow::write(std::uint32_t addr, std::uint32_t value) {
  if (addr >= kDataIn && addr < kDataIn + 16) {
    data_in_[(addr - kDataIn) / 4] = value;
    return;
  }
  if (const char* cfg = configName(addr)) {
    last_ok_ = acc_.writeConfig(user_, cfg, value);
    return;
  }
  switch (addr) {
    case kCtrl:
      if (value & 1u) doSubmit(false);
      if (value & 2u) doSubmit(true);
      if (value & 4u) {
        last_ok_ = acc_.fetchOutput(user_).has_value();
      }
      break;
    case kKeySlot: key_slot_ = value; break;
    case kKeyArg: key_arg_ = value; break;
    case kKeyLo: key_lo_ = value; break;
    case kKeyHi: key_hi_ = value; break;
    case kKeyGo: doKeyGo(value); break;
    case kDebugStage: debug_stage_ = value; break;
    default:
      break;  // writes to read-only / unmapped space are ignored
  }
}

std::uint32_t MmioWindow::read(std::uint32_t addr) {
  if (addr >= kDataOut && addr < kDataOut + 16) {
    const BlockResponse* head = acc_.peekOutput(user_);
    if (head == nullptr) return 0;
    return blockWord(head->data, (addr - kDataOut) / 4);
  }
  if (addr >= kDebugData && addr < kDebugData + 16) {
    const auto data = acc_.debugReadStage(user_, debug_stage_);
    debug_ok_ = data.has_value();
    if (!data) return 0;
    return blockWord(*data, (addr - kDebugData) / 4);
  }
  if (const char* cfg = configName(addr)) {
    return acc_.readConfig(cfg);
  }
  switch (addr) {
    case kStatus: {
      const BlockResponse* head = acc_.peekOutput(user_);
      std::uint32_t s = 0;
      if (head != nullptr) {
        s |= 1u;
        if (head->suppressed) s |= 2u;
      }
      s |= static_cast<std::uint32_t>(
               std::min<std::size_t>(acc_.pendingOutputs(user_), 0xffff))
           << 8;
      return s;
    }
    case kKeySlot: return key_slot_;
    case kKeyArg: return key_arg_;
    case kReqIdLo: {
      const BlockResponse* head = acc_.peekOutput(user_);
      return head ? static_cast<std::uint32_t>(head->req_id) : 0;
    }
    case kReqIdHi: {
      const BlockResponse* head = acc_.peekOutput(user_);
      return head ? static_cast<std::uint32_t>(head->req_id >> 32) : 0;
    }
    case kLastOpOk: return last_ok_ ? 1 : 0;
    case kDebugOk: return debug_ok_ ? 1 : 0;
    default: return 0;
  }
}

}  // namespace aesifc::accel
