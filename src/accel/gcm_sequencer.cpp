#include "accel/gcm_sequencer.h"

#include <algorithm>
#include <cstring>

#include "accel/accelerator.h"
#include "aes/modes.h"

namespace aesifc::accel {

namespace {

// Block j of a byte string, zero-padded (the SP 800-38D padding of AAD,
// ciphertext, and non-96-bit IVs).
aes::Tag128 paddedBlockAt(const std::vector<std::uint8_t>& v,
                          std::uint64_t j) {
  aes::Tag128 b{};
  const std::size_t off = static_cast<std::size_t>(j) * 16;
  if (off < v.size()) {
    const std::size_t n = std::min<std::size_t>(16, v.size() - off);
    std::memcpy(b.data(), v.data() + off, n);
  }
  return b;
}

void putLen64(std::uint8_t* p, std::uint64_t bytes) {
  const std::uint64_t bits = bytes * 8;
  for (int i = 0; i < 8; ++i)
    p[i] = static_cast<std::uint8_t>(bits >> (8 * (7 - i)));
}

std::uint64_t blocksOf(std::size_t bytes) { return (bytes + 15) / 16; }

aes::Tag128 stateToTag(const aes::State& s) {
  const aes::Block b = aes::stateToBlock(s);
  aes::Tag128 t{};
  std::memcpy(t.data(), b.data(), 16);
  return t;
}

}  // namespace

bool GcmSequencer::submit(GcmRequest req) {
  if (req.user >= acc_.users_.size()) return false;
  if (req.key_slot >= kRoundKeySlots ||
      !acc_.round_keys_.valid(req.key_slot)) {
    acc_.recordEvent(SecurityEventKind::KeySlotBlocked, req.user,
                     "gcm submit with unusable key slot " +
                         std::to_string(req.key_slot));
    return false;
  }
  if (acc_.hardened() && !acc_.round_keys_.slotParityOk(req.key_slot)) {
    // Same fail-secure rule as the block submit port: never start an op on
    // a corrupted key.
    const unsigned slot = req.key_slot;
    const unsigned casualties = acc_.zeroizeSlotSquash(slot);
    acc_.noteFault(FaultSite::RoundKey, /*recovered=*/false, req.user,
                   "slot " + std::to_string(slot) +
                       " parity at gcm submit; zeroized (" +
                       std::to_string(casualties) + " blocks squashed)");
    return false;
  }
  if (acc_.round_keys_.rounds(req.key_slot) > acc_.pipeline_.maxRounds()) {
    acc_.recordEvent(SecurityEventKind::KeySlotBlocked, req.user,
                     "gcm key needs more rounds than the pipeline supports");
    return false;
  }
  if (req.iv.empty()) return false;

  unsigned idx = kGcmOps;
  for (unsigned i = 0; i < kGcmOps; ++i) {
    if (!ops_[i].active) {
      idx = i;
      break;
    }
  }
  if (idx == kGcmOps) return false;

  Op& op = ops_[idx];
  op = Op{};
  op.active = true;
  op.req = std::move(req);
  // The op's label is the AES submit rule's: the user's confidentiality
  // joined with the key's, at the user's integrity. Every internal block
  // and every absorbed GHASH block carries it.
  const Label& u = acc_.users_.at(op.req.user).authority;
  op.label =
      Label{u.c.join(acc_.round_keys_.slot(op.req.key_slot).key_conf), u.i};
  op.accept_cycle = acc_.cycle_;
  op.aad_blocks = blocksOf(op.req.aad.size());
  op.ct_blocks = blocksOf(op.req.data.size());
  op.total_blocks = op.aad_blocks + op.ct_blocks + 1;  // + lengths block
  op.ks_have.assign(static_cast<std::size_t>(op.ct_blocks), false);
  op.out.assign(op.req.data.size(), 0);
  if (op.req.iv.size() == 12) {
    // Fast path: J0 = IV || 0^31 || 1 needs no hashing.
    std::memcpy(op.j0.data(), op.req.iv.data(), 12);
    op.j0[15] = 1;
    op.j0_ready = true;
    op.next_ctr = op.j0;
    aes::incCounterBe(op.next_ctr, 32);
  } else {
    // J0 = GHASH_H(IV || pad || 0^64 || [len(IV)]_64).
    op.iv_blocks = blocksOf(op.req.iv.size()) + 1;
  }
  ++acc_.stats_.gcm_ops;
  return true;
}

std::optional<GcmResponse> GcmSequencer::fetch(unsigned user) {
  if (user >= out_.size() || out_[user].empty()) return std::nullopt;
  GcmResponse r = std::move(out_[user].front());
  out_[user].pop_front();
  return r;
}

std::size_t GcmSequencer::pending(unsigned user) const {
  return user < out_.size() ? out_[user].size() : 0;
}

lattice::Conf GcmSequencer::meetConf() const {
  lattice::Conf m = lattice::Conf::top();
  for (const auto& op : ops_) {
    if (op.active && !op.draining) m = m.meet(op.label.c);
  }
  return m;
}

bool GcmSequencer::usesKeySlot(unsigned slot) const {
  for (const auto& op : ops_) {
    if (op.active && op.req.key_slot == slot) return true;
  }
  return false;
}

unsigned GcmSequencer::activeOps() const {
  unsigned n = 0;
  for (const auto& op : ops_) {
    if (op.active) ++n;
  }
  return n;
}

void GcmSequencer::pump() {
  for (unsigned i = 0; i < kGcmOps; ++i) stepOp(i);
}

void GcmSequencer::stepOp(unsigned idx) {
  Op& op = ops_[idx];
  if (!op.active) return;
  if (op.draining) {
    if (op.inflight == 0) op = Op{};
    return;
  }
  const unsigned ks = op.req.key_slot;
  if (!acc_.round_keys_.valid(ks)) {
    abortOp(idx);  // key zeroized mid-op; retryable after a re-load
    return;
  }
  if ((op.stream >= 0 && ghash_.faulted(static_cast<unsigned>(op.stream))) ||
      (op.iv_stream >= 0 &&
       ghash_.faulted(static_cast<unsigned>(op.iv_stream)))) {
    abortOp(idx);
    return;
  }

  // Phase A: hash subkey H = E(K, 0^128), derived on-device once per key
  // slot (deduped across ops; the epoch guards stale derivations).
  if (!ghash_.keyValid(ks)) {
    if (!h_pending_[ks]) {
      const aes::Block zero{};
      if (submitInternal(idx, GcmRole::DeriveH, zero, h_epoch_[ks]))
        h_pending_[ks] = true;
      // On failure the op was fault-aborted inside submitInternal.
    }
    return;
  }

  bool submitted = false;

  // Phase B: J0 for a non-96-bit IV, via its own GHASH stream.
  if (!op.j0_ready) {
    if (op.iv_stream < 0) {
      const auto s =
          ghash_.openStream(op.req.user, ks, op.iv_blocks, op.label);
      if (s.has_value()) op.iv_stream = static_cast<int>(*s);
    }
    if (op.iv_stream >= 0) {
      const unsigned ivs = static_cast<unsigned>(op.iv_stream);
      if (op.iv_fed < op.iv_blocks && ghash_.fifoSpace(ivs) > 0) {
        aes::Tag128 b{};
        if (op.iv_fed + 1 < op.iv_blocks) {
          b = paddedBlockAt(op.req.iv, op.iv_fed);
        } else {
          putLen64(b.data() + 8, op.req.iv.size());
        }
        if (ghash_.absorb(ivs, b, op.label)) ++op.iv_fed;
      }
      if (ghash_.done(ivs)) {
        const aes::Tag128 d = ghash_.digestInternal(ivs);  // stays tagged
        std::memcpy(op.j0.data(), d.data(), 16);
        ghash_.closeStream(ivs);
        op.iv_stream = -1;
        op.j0_ready = true;
        op.next_ctr = op.j0;
        aes::incCounterBe(op.next_ctr, 32);
      }
    }
  }

  // Phase C: tag mask E(K, J0).
  if (op.j0_ready && !op.ekj0_sent) {
    if (!submitInternal(idx, GcmRole::EncryptJ0, op.j0, 0)) return;
    op.ekj0_sent = true;
    submitted = true;
  }

  // Phase D: CTR keystream, at most one internal submit per op per cycle.
  if (!submitted && op.j0_ready && op.ctr_sent < op.ct_blocks) {
    if (!submitInternal(idx, GcmRole::Counter, op.next_ctr,
                        static_cast<std::uint32_t>(op.ctr_sent)))
      return;
    ++op.ctr_sent;
    aes::incCounterBe(op.next_ctr, 32);
  }

  // Phase E: the main hash stream (AAD || CT || lengths). Opened only once
  // J0 is ready so an op never holds a main stream while waiting for an IV
  // stream (which could deadlock the stream pool).
  if (op.stream < 0) {
    if (!op.j0_ready) return;
    const auto s =
        ghash_.openStream(op.req.user, ks, op.total_blocks, op.label);
    if (!s.has_value()) return;  // no free stream; retry next cycle
    op.stream = static_cast<int>(*s);
  }
  const unsigned ms = static_cast<unsigned>(op.stream);
  if (op.fed < op.total_blocks && ghash_.fifoSpace(ms) > 0) {
    std::optional<aes::Tag128> next;
    if (op.fed < op.aad_blocks) {
      next = paddedBlockAt(op.req.aad, op.fed);
    } else if (op.fed < op.aad_blocks + op.ct_blocks) {
      const std::uint64_t j = op.fed - op.aad_blocks;
      // GHASH absorbs ciphertext: an open has it up front; a seal must
      // wait for keystream block j to produce it.
      if (op.req.open) {
        next = paddedBlockAt(op.req.data, j);
      } else if (op.ks_have[static_cast<std::size_t>(j)]) {
        next = paddedBlockAt(op.out, j);
      }
    } else {
      aes::Tag128 b{};
      putLen64(b.data(), op.req.aad.size());
      putLen64(b.data() + 8, op.req.data.size());
      next = b;
    }
    if (next.has_value() && ghash_.absorb(ms, *next, op.label)) ++op.fed;
  }

  // Phase F: finalize once the digest, the tag mask, and (for a seal) the
  // full ciphertext are all in hand.
  if (ghash_.done(ms) && op.ekj0_ready && op.ks_applied == op.ct_blocks)
    finalize(idx);
}

void GcmSequencer::finalize(unsigned idx) {
  Op& op = ops_[idx];
  const unsigned ms = static_cast<unsigned>(op.stream);
  GcmResponse resp;
  resp.req_id = op.req.req_id;
  resp.user = op.req.user;
  resp.accept_cycle = op.accept_cycle;
  resp.complete_cycle = acc_.cycle_;

  // The ONE declassification of the op: the digest leaves the GHASH unit
  // under the same nonmalleable-downgrade rule as ciphertext at the
  // pipeline exit. Everything the response carries (ciphertext, plaintext,
  // tag, even the open verdict) derives from data at the op's label, so
  // this single check gates the whole release.
  aes::Tag128 digest{};
  if (acc_.cfg_.mode == SecurityMode::Protected) {
    const auto rel = ghash_.release(ms, acc_.users_.at(op.req.user));
    switch (rel.status) {
      case GhashUnit::ReleaseStatus::Faulted:
        abortOp(idx);
        return;
      case GhashUnit::ReleaseStatus::Refused:
        acc_.recordEvent(SecurityEventKind::DeclassifyRejected, op.req.user,
                         rel.reason);
        ++acc_.stats_.gcm_suppressed;
        resp.suppressed = true;  // nothing is released
        ghash_.closeStream(ms);
        op.stream = -1;
        emit(std::move(resp));
        freeOp(op);
        return;
      case GhashUnit::ReleaseStatus::NotReady:
        return;  // unreachable: finalize() is guarded by done()
      case GhashUnit::ReleaseStatus::Ok:
        digest = rel.digest;
        break;
    }
  } else {
    digest = ghash_.digestInternal(ms);
  }
  ghash_.closeStream(ms);
  op.stream = -1;

  aes::Tag128 tag{};
  for (unsigned i = 0; i < 16; ++i) tag[i] = digest[i] ^ op.ekj0[i];
  if (!op.req.open) {
    resp.data = std::move(op.out);
    resp.tag = tag;
    ++acc_.stats_.gcm_ok;
  } else {
    // Constant-time comparison; a mismatch is a verdict, not a fault.
    std::uint8_t diff = 0;
    for (unsigned i = 0; i < 16; ++i) diff |= tag[i] ^ op.req.tag[i];
    if (diff != 0) {
      resp.auth_failed = true;
      acc_.recordEvent(SecurityEventKind::AuthTagMismatch, op.req.user,
                       "gcm open req " + std::to_string(op.req.req_id) +
                           ": tag mismatch; plaintext withheld");
      ++acc_.stats_.gcm_auth_failed;
    } else {
      resp.data = std::move(op.out);
      ++acc_.stats_.gcm_ok;
    }
  }
  emit(std::move(resp));
  freeOp(op);
}

void GcmSequencer::abortOp(unsigned idx) {
  Op& op = ops_[idx];
  if (op.stream >= 0) {
    ghash_.closeStream(static_cast<unsigned>(op.stream));
    op.stream = -1;
  }
  if (op.iv_stream >= 0) {
    ghash_.closeStream(static_cast<unsigned>(op.iv_stream));
    op.iv_stream = -1;
  }
  GcmResponse resp;
  resp.req_id = op.req.req_id;
  resp.user = op.req.user;
  resp.accept_cycle = op.accept_cycle;
  resp.complete_cycle = acc_.cycle_;
  resp.fault_aborted = true;  // definite outcome; nothing released
  ++acc_.stats_.gcm_fault_aborted;
  emit(std::move(resp));
  freeOp(op);
}

void GcmSequencer::freeOp(Op& op) {
  if (op.inflight > 0) {
    // Internal blocks still in the pipe: hold the slot (drained by stepOp /
    // deliver) so a new op cannot alias their gcm_op index.
    op.draining = true;
  } else {
    op = Op{};
  }
}

void GcmSequencer::emit(GcmResponse resp) {
  if (out_.size() <= resp.user) out_.resize(resp.user + 1);
  out_[resp.user].push_back(std::move(resp));
}

bool GcmSequencer::submitInternal(unsigned idx, GcmRole role,
                                  const aes::Block& data, std::uint32_t aux) {
  Op& op = ops_[idx];
  const unsigned ks = op.req.key_slot;
  if (acc_.hardened() && !acc_.round_keys_.slotParityOk(ks)) {
    // Fail secure, same as the submit port. zeroizeSlotSquash() notifies
    // this sequencer, which fault-aborts the op — the caller must not
    // touch it again this cycle.
    const unsigned casualties = acc_.zeroizeSlotSquash(ks);
    acc_.noteFault(FaultSite::RoundKey, /*recovered=*/false, op.req.user,
                   "slot " + std::to_string(ks) +
                       " parity at gcm internal submit; zeroized (" +
                       std::to_string(casualties) + " blocks squashed)");
    return false;
  }
  StageSlot slot;
  slot.valid = true;
  slot.state = aes::blockToState(data);
  slot.key_slot = ks;
  slot.total_rounds = acc_.round_keys_.rounds(ks);
  slot.decrypt = false;
  slot.req_id = op.req.req_id;
  slot.user = op.req.user;
  slot.tag = op.label;
  slot.gcm_internal = true;
  slot.gcm_op = idx;
  slot.gcm_role = static_cast<std::uint8_t>(role);
  slot.gcm_aux = aux;
  stampParity(slot);
  acc_.input_queues_[op.req.user].push_back(std::move(slot));
  ++op.inflight;
  return true;
}

void GcmSequencer::deliver(const StageSlot& s) {
  Op& op = ops_.at(s.gcm_op);
  if (op.inflight > 0) --op.inflight;
  const auto role = static_cast<GcmRole>(s.gcm_role);
  if (role == GcmRole::DeriveH) {
    // Global effect: install H for the key slot. The epoch guard discards
    // a derivation that raced a re-key of the slot.
    if (s.key_slot < kGhashKeySlots && s.gcm_aux == h_epoch_[s.key_slot] &&
        acc_.round_keys_.valid(s.key_slot)) {
      const accel::KeySlot& kslot = acc_.round_keys_.slot(s.key_slot);
      ghash_.loadH(s.key_slot, stateToTag(s.state),
                   Label{kslot.key_conf, kslot.owner.i}, acc_.cycle_);
      h_pending_[s.key_slot] = false;
    }
    return;
  }
  if (!op.active || op.draining) return;
  if (role == GcmRole::EncryptJ0) {
    op.ekj0 = stateToTag(s.state);
    op.ekj0_ready = true;
    return;
  }
  if (role == GcmRole::Counter) {
    const std::uint64_t k = s.gcm_aux;
    if (k >= op.ct_blocks || op.ks_have[static_cast<std::size_t>(k)]) return;
    const aes::Block ksb = aes::stateToBlock(s.state);
    const std::size_t off = static_cast<std::size_t>(k) * 16;
    const std::size_t n = std::min<std::size_t>(16, op.req.data.size() - off);
    for (std::size_t i = 0; i < n; ++i)
      op.out[off + i] = op.req.data[off + i] ^ ksb[i];
    op.ks_have[static_cast<std::size_t>(k)] = true;
    ++op.ks_applied;
  }
}

void GcmSequencer::deliverAbort(const StageSlot& s) {
  Op& op = ops_.at(s.gcm_op);
  if (op.inflight > 0) --op.inflight;
  if (static_cast<GcmRole>(s.gcm_role) == GcmRole::DeriveH &&
      s.key_slot < kGhashKeySlots && s.gcm_aux == h_epoch_[s.key_slot]) {
    h_pending_[s.key_slot] = false;  // allow a fresh derivation
  }
  if (op.active && !op.draining) {
    abortOp(s.gcm_op);
  } else if (op.draining && op.inflight == 0) {
    op = Op{};
  }
}

void GcmSequencer::noteKeySlotInvalid(unsigned key_slot) {
  if (key_slot < kGhashKeySlots) {
    ++h_epoch_[key_slot];
    h_pending_[key_slot] = false;
  }
  for (unsigned i = 0; i < kGcmOps; ++i) {
    Op& op = ops_[i];
    if (op.active && !op.draining && op.req.key_slot == key_slot) abortOp(i);
  }
}

}  // namespace aesifc::accel
