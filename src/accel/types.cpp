#include "accel/types.h"

#include <sstream>

namespace aesifc::accel {

std::string toString(SecurityEventKind k) {
  switch (k) {
    case SecurityEventKind::ScratchpadWriteBlocked:
      return "scratchpad-write-blocked";
    case SecurityEventKind::ScratchpadReadBlocked:
      return "scratchpad-read-blocked";
    case SecurityEventKind::DebugReadBlocked: return "debug-read-blocked";
    case SecurityEventKind::ConfigWriteBlocked: return "config-write-blocked";
    case SecurityEventKind::DeclassifyRejected: return "declassify-rejected";
    case SecurityEventKind::StallDenied: return "stall-denied";
    case SecurityEventKind::OutputBufferOverflow:
      return "output-buffer-overflow";
    case SecurityEventKind::KeySlotBlocked: return "key-slot-blocked";
    case SecurityEventKind::FaultDetected: return "fault-detected";
    case SecurityEventKind::FaultScrubbed: return "fault-scrubbed";
    case SecurityEventKind::ServiceHealth: return "service-health";
    case SecurityEventKind::AuthTagMismatch: return "auth-tag-mismatch";
    case SecurityEventKind::MigrationBegun: return "migration-begun";
    case SecurityEventKind::MigrationKeyZeroized:
      return "migration-key-zeroized";
    case SecurityEventKind::MigrationCommitted: return "migration-committed";
    case SecurityEventKind::DmaRingViolation: return "dma-ring-violation";
    case SecurityEventKind::DmaRingRecovery: return "dma-ring-recovery";
  }
  return "?";
}

std::string toString(FaultSite s) {
  switch (s) {
    case FaultSite::StageData: return "stage-data";
    case FaultSite::StageTag: return "stage-tag";
    case FaultSite::ScratchCell: return "scratch-cell";
    case FaultSite::ScratchTag: return "scratch-tag";
    case FaultSite::RoundKey: return "round-key";
    case FaultSite::ConfigReg: return "config-reg";
    case FaultSite::GhashStage: return "ghash-stage";
    case FaultSite::GhashStageTag: return "ghash-stage-tag";
    case FaultSite::GhashAcc: return "ghash-acc";
    case FaultSite::GhashKeyTable: return "ghash-key-table";
    case FaultSite::HostDrop: return "host-drop";
    case FaultSite::HostDuplicate: return "host-duplicate";
    case FaultSite::HostStuckReceiver: return "host-stuck-receiver";
    case FaultSite::HostSpuriousSubmit: return "host-spurious-submit";
    case FaultSite::RingDescriptor: return "ring-descriptor";
    case FaultSite::RingCompletion: return "ring-completion";
  }
  return "?";
}

std::string SecurityEvent::toString() const {
  std::ostringstream os;
  os << "cycle " << cycle << " [" << accel::toString(kind) << "] user " << user;
  if (!detail.empty()) os << " : " << detail;
  return os.str();
}

}  // namespace aesifc::accel
