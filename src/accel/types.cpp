#include "accel/types.h"

#include <sstream>

namespace aesifc::accel {

std::string toString(SecurityEventKind k) {
  switch (k) {
    case SecurityEventKind::ScratchpadWriteBlocked:
      return "scratchpad-write-blocked";
    case SecurityEventKind::ScratchpadReadBlocked:
      return "scratchpad-read-blocked";
    case SecurityEventKind::DebugReadBlocked: return "debug-read-blocked";
    case SecurityEventKind::ConfigWriteBlocked: return "config-write-blocked";
    case SecurityEventKind::DeclassifyRejected: return "declassify-rejected";
    case SecurityEventKind::StallDenied: return "stall-denied";
    case SecurityEventKind::OutputBufferOverflow:
      return "output-buffer-overflow";
    case SecurityEventKind::KeySlotBlocked: return "key-slot-blocked";
  }
  return "?";
}

std::string SecurityEvent::toString() const {
  std::ostringstream os;
  os << "cycle " << cycle << " [" << accel::toString(kind) << "] user " << user;
  if (!detail.empty()) os << " : " << detail;
  return os.str();
}

}  // namespace aesifc::accel
