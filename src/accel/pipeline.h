#pragma once
// The deeply pipelined AES datapath (Section 3.1, Fig. 7): three micro-op
// stages per round (SubBytes; ShiftRows [+ MixColumns]; AddRoundKey), so an
// AES-128 engine is 30 stages deep, accepts one block per cycle, and
// completes a block in 30 cycles — matching the paper's prototype. Blocks
// from different users (and different directions, and different key sizes
// up to the configured maximum) can be in flight simultaneously; each stage
// slot carries the block's security tag, which is the hardware of Fig. 7's
// per-stage tag registers.

#include <cstdint>
#include <optional>
#include <vector>

#include "accel/key_store.h"
#include "accel/types.h"

namespace aesifc::accel {

struct StageSlot {
  bool valid = false;
  aes::State state{};
  unsigned key_slot = 0;
  unsigned total_rounds = 10;  // rounds this block actually needs
  bool decrypt = false;
  std::uint64_t req_id = 0;
  unsigned user = 0;
  std::uint64_t accept_cycle = 0;
  Label tag{};  // per-stage security tag (Fig. 7)
  // GCM sequencer routing: an internal block (H derivation, E(K,J0), CTR
  // keystream) is handed back to the sequencer at the pipeline exit instead
  // of a user output queue — and is never declassified there; the single
  // declassification of a GCM op happens when the op's result is released.
  bool gcm_internal = false;
  unsigned gcm_op = 0;        // owning sequencer op slot
  std::uint8_t gcm_role = 0;  // accel::GcmRole
  std::uint32_t gcm_aux = 0;  // role-specific index (CTR block position)
  // Hardening: parity over the stage data register (rewritten by each
  // stage's datapath together with the data) and over the tag register
  // (written once at acceptance; tags are immutable in flight).
  bool data_parity = false;
  bool tag_parity = false;
};

// Parity over a 16-byte AES state — the per-stage data parity bit.
bool stateParity(const aes::State& s);

// (Re)stamp both parity bits from the slot's current contents.
void stampParity(StageSlot& s);

class AesPipeline {
 public:
  AesPipeline(unsigned max_rounds, const RoundKeyRam& keys);

  unsigned depth() const { return static_cast<unsigned>(stages_.size()); }
  unsigned maxRounds() const { return max_rounds_; }

  bool anyValid() const;
  unsigned validCount() const;
  const StageSlot& stage(unsigned i) const { return stages_.at(i); }
  const StageSlot& finalStage() const { return stages_.back(); }

  // --- Fail-secure hardening -------------------------------------------------
  // True when the stage is empty or both parity bits match its contents.
  bool stageParityOk(unsigned i) const;
  // Squash a stage: zeroize the data register and invalidate the slot (the
  // block is aborted; the accelerator reports the outcome to its user).
  void squash(unsigned i);

  // Fault-injection ports (flip without restamping parity). Return false
  // when the stage is empty.
  bool faultFlipStageDataBit(unsigned stage, unsigned bit);   // bit 0..127
  bool faultFlipStageTagBit(unsigned stage, unsigned bit);    // bit 0..31

  // Meet (greatest lower bound in the confidentiality order) over the tags
  // of all occupied stages — the Fig. 8 stall-gating value. Top when empty.
  lattice::Conf meetConf() const;

  // Shift the pipeline by one stage. `input`, if present, is a freshly
  // accepted block *before* the entry AddRoundKey (which this call applies).
  // Returns the slot leaving the final stage, if any.
  std::optional<StageSlot> advance(std::optional<StageSlot> input);

 private:
  // Apply the micro-op of stage `idx` to a slot entering it.
  StageSlot compute(unsigned idx, StageSlot s) const;
  StageSlot applyEntry(StageSlot s) const;

  unsigned max_rounds_;
  const RoundKeyRam& keys_;
  std::vector<StageSlot> stages_;
};

}  // namespace aesifc::accel
