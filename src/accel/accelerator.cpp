#include "accel/accelerator.h"

#include <cassert>
#include <stdexcept>

#include "lattice/downgrade.h"

namespace aesifc::accel {

AesAccelerator::AesAccelerator(AcceleratorConfig cfg)
    : cfg_{cfg},
      scratchpad_{cfg.mode},
      config_regs_{cfg.mode},
      pipeline_{cfg.max_rounds, round_keys_},
      ghash_{cfg.fault_hardening},
      gcm_{*this, ghash_} {}

unsigned AesAccelerator::addUser(Principal p) {
  users_.push_back(std::move(p));
  input_queues_.emplace_back();
  output_queues_.emplace_back();
  receiver_ready_.push_back(true);
  return static_cast<unsigned>(users_.size() - 1);
}

const Principal& AesAccelerator::principal(unsigned user) const {
  return users_.at(user);
}

void AesAccelerator::recordEvent(SecurityEventKind kind, unsigned user,
                                 std::string detail) {
  ++event_counts_[static_cast<unsigned>(kind)];
  events_.push_back({kind, cycle_, user, std::move(detail)});
  while (events_.size() > cfg_.event_log_cap) {
    events_.pop_front();
    ++events_overflowed_;
  }
}

void AesAccelerator::noteFault(FaultSite site, bool recovered, unsigned user,
                               std::string detail) {
  ++stats_.faults_detected;
  if (recovered) ++stats_.faults_recovered;
  if (static_cast<unsigned>(site) < kHwFaultSites)
    ++faults_by_site_[static_cast<unsigned>(site)];
  recordEvent(recovered ? SecurityEventKind::FaultScrubbed
                        : SecurityEventKind::FaultDetected,
              user, toString(site) + ": " + std::move(detail));
}

void AesAccelerator::deliverAbort(const StageSlot& slot) {
  if (slot.gcm_internal) {
    // A squashed internal block belongs to a GCM op: the sequencer
    // fault-aborts the whole op (its own definite outcome).
    gcm_.deliverAbort(slot);
    return;
  }
  BlockResponse resp;
  resp.req_id = slot.req_id;
  resp.user = slot.user;
  resp.data = aes::Block{};  // nothing is released from a squashed stage
  resp.accept_cycle = slot.accept_cycle;
  resp.complete_cycle = cycle_;
  resp.fault_aborted = true;
  ++stats_.fault_aborted;
  if (slot.user < output_queues_.size())
    output_queues_[slot.user].push_back(std::move(resp));
}

unsigned AesAccelerator::zeroizeSlotSquash(unsigned slot) {
  unsigned casualties = 0;
  for (unsigned i = 0; i < pipeline_.depth(); ++i) {
    const StageSlot& s = pipeline_.stage(i);
    if (s.valid && s.key_slot == slot) {
      const StageSlot copy = s;
      pipeline_.squash(i);
      deliverAbort(copy);
      ++casualties;
    }
  }
  round_keys_.clear(slot);
  // The H tables derived from this key are stale; streams hashing under
  // them fault, and ops bound to the slot abort (retryable by the driver).
  ghash_.invalidateKey(slot);
  gcm_.noteKeySlotInvalid(slot);
  return casualties;
}

void AesAccelerator::scrubTick() {
  // Fast ring: every pipeline-stage comparator and every scratchpad tag
  // comparator runs each cycle (parallel hardware), so a flipped tag is
  // caught before any release decision can consult it.
  for (unsigned i = 0; i < pipeline_.depth(); ++i) {
    if (pipeline_.stageParityOk(i)) continue;
    const StageSlot s = pipeline_.stage(i);
    const bool tag_fault = s.tag_parity != labelParity(s.tag);
    // Fail secure: the corrupted stage is squashed before its contents or
    // tag are used again — the tag can only ever fail upward, never toward
    // public. A tag fault also voids the key binding: zeroize the slot.
    pipeline_.squash(i);
    deliverAbort(s);
    noteFault(tag_fault ? FaultSite::StageTag : FaultSite::StageData,
              /*recovered=*/false, s.user,
              "stage " + std::to_string(i) + " parity mismatch; squashed");
    if (tag_fault) zeroizeSlotSquash(s.key_slot);
  }
  for (unsigned c = 0; c < kScratchpadCells; ++c) {
    if (scratchpad_.tagParityOk(c)) continue;
    scratchpad_.failSecure(c);
    noteFault(FaultSite::ScratchTag, /*recovered=*/true, 0,
              "cell " + std::to_string(c) + " tag parity; quarantined");
  }
  // GHASH fast ring: every multiplier-stage and stream-accumulator
  // comparator runs each cycle; a mismatch faults the stream (the
  // sequencer fault-aborts the owning op — never a released tag).
  for (const auto& f : ghash_.scrubFast()) {
    noteFault(f.site, /*recovered=*/false, f.user, f.detail);
  }
  // Slow ring: one scratchpad cell, round-key slot, config register, or
  // GHASH H-table slot per cycle, round-robin.
  const auto& names = config_regs_.names();
  const unsigned total = kScratchpadCells + kRoundKeySlots +
                         static_cast<unsigned>(names.size()) + kGhashKeySlots;
  const unsigned idx = scrub_next_++ % total;
  if (idx < kScratchpadCells) {
    if (!scratchpad_.cellParityOk(idx)) {
      scratchpad_.failSecure(idx);
      noteFault(FaultSite::ScratchCell, /*recovered=*/true, 0,
                "cell " + std::to_string(idx) + " data parity; zeroized");
    }
  } else if (idx < kScratchpadCells + kRoundKeySlots) {
    const unsigned slot = idx - kScratchpadCells;
    if (!round_keys_.slotParityOk(slot)) {
      const unsigned casualties = zeroizeSlotSquash(slot);
      noteFault(FaultSite::RoundKey, /*recovered=*/casualties == 0, 0,
                "slot " + std::to_string(slot) + " parity; zeroized (" +
                    std::to_string(casualties) + " blocks squashed)");
    }
  } else if (idx < kScratchpadCells + kRoundKeySlots + names.size()) {
    const auto& name = names[idx - kScratchpadCells - kRoundKeySlots];
    if (!config_regs_.parityOk(name)) {
      config_regs_.restoreDefault(name);
      noteFault(FaultSite::ConfigReg, /*recovered=*/true, 0,
                "'" + name + "' parity; restored power-on default");
    }
  } else {
    const unsigned slot = idx - kScratchpadCells - kRoundKeySlots -
                          static_cast<unsigned>(names.size());
    if (const auto f = ghash_.scrubKeySlot(slot); f.has_value()) {
      noteFault(f->site, /*recovered=*/false, f->user, f->detail);
    }
  }
}

bool AesAccelerator::injectFault(FaultSite site, unsigned index,
                                 unsigned bit) {
  switch (site) {
    case FaultSite::StageData:
      return pipeline_.faultFlipStageDataBit(index, bit % 128);
    case FaultSite::StageTag:
      return pipeline_.faultFlipStageTagBit(index, bit % 32);
    case FaultSite::ScratchCell:
      return scratchpad_.faultFlipCellBit(index % kScratchpadCells, bit % 64);
    case FaultSite::ScratchTag:
      return scratchpad_.faultFlipTagBit(index % kScratchpadCells, bit % 32);
    case FaultSite::RoundKey:
      return round_keys_.faultFlipKeyBit(index % kRoundKeySlots,
                                         (bit / 128) % 15, (bit % 128) / 8,
                                         bit % 8);
    case FaultSite::ConfigReg: {
      const auto& names = config_regs_.names();
      if (names.empty()) return false;
      return config_regs_.faultFlipBit(names[index % names.size()], bit % 32);
    }
    case FaultSite::GhashStage:
      return ghash_.faultFlipStageBit(index, bit % 256);
    case FaultSite::GhashStageTag:
      return ghash_.faultFlipStageTagBit(index, bit % 32);
    case FaultSite::GhashAcc:
      return ghash_.faultFlipAccBit(index, bit % (128 * kGhashLanes));
    case FaultSite::GhashKeyTable:
      return ghash_.faultFlipKeyTableBit(index,
                                         bit % (kGhashLanes * 16 * 128));
    default:
      return false;  // host sites are driven through the queue hooks
  }
}

bool AesAccelerator::injectDuplicateOutput(unsigned user) {
  if (user >= output_queues_.size() || output_queues_[user].empty())
    return false;
  output_queues_[user].push_front(output_queues_[user].front());
  return true;
}

bool AesAccelerator::injectDropOutput(unsigned user) {
  if (user >= output_queues_.size() || output_queues_[user].empty())
    return false;
  output_queues_[user].pop_front();
  return true;
}

void AesAccelerator::configureKeyCells(unsigned user, unsigned base,
                                       unsigned count) {
  scratchpad_.configureCells(base, count, users_.at(user).authority);
}

bool AesAccelerator::writeKeyCell(unsigned user, unsigned cell,
                                  std::uint64_t value) {
  if (hardened() && cell < kScratchpadCells && !scratchpad_.tagParityOk(cell)) {
    // Fail secure: a cell whose tag no longer matches its parity bit must
    // not accept flows based on that tag. Quarantine and refuse.
    scratchpad_.failSecure(cell);
    noteFault(FaultSite::ScratchTag, /*recovered=*/false, user,
              "cell " + std::to_string(cell) + " tag parity at write");
    return false;
  }
  const bool ok = scratchpad_.writeCell(cell, value, users_.at(user).authority);
  if (!ok) {
    recordEvent(SecurityEventKind::ScratchpadWriteBlocked, user,
                "write to cell " + std::to_string(cell) + " blocked: " +
                    users_.at(user).authority.toString() + " does not flow to " +
                    (cell < kScratchpadCells
                         ? scratchpad_.cellLabel(cell).toString()
                         : std::string("<oob>")));
  }
  return ok;
}

bool AesAccelerator::loadKey(unsigned user, unsigned slot, unsigned cell_base,
                             aes::KeySize ks, lattice::Conf key_conf) {
  const unsigned cells = aes::keyBytes(ks) / 8;
  std::vector<std::uint8_t> key_bytes;
  key_bytes.reserve(aes::keyBytes(ks));
  const Label& requester = users_.at(user).authority;
  for (unsigned i = 0; i < cells; ++i) {
    if (hardened() && cell_base + i < kScratchpadCells) {
      const unsigned c = cell_base + i;
      const bool tag_bad = !scratchpad_.tagParityOk(c);
      if (tag_bad || !scratchpad_.cellParityOk(c)) {
        scratchpad_.failSecure(c);
        noteFault(tag_bad ? FaultSite::ScratchTag : FaultSite::ScratchCell,
                  /*recovered=*/false, user,
                  "cell " + std::to_string(c) + " parity at key expansion");
        return false;
      }
    }
    const auto v = scratchpad_.readCell(cell_base + i, requester);
    if (!v.has_value()) {
      recordEvent(SecurityEventKind::ScratchpadReadBlocked, user,
                  "key expansion read of cell " +
                      std::to_string(cell_base + i) + " blocked");
      return false;
    }
    for (unsigned b = 0; b < 8; ++b) {
      key_bytes.push_back(static_cast<std::uint8_t>(*v >> (8 * b)));
    }
  }
  round_keys_.store(slot, aes::expandKey(key_bytes, ks), key_conf, requester);
  // A re-keyed slot voids any H derived from the previous key; GCM ops
  // bound to the slot fault-abort (the driver re-runs them on the new key).
  ghash_.invalidateKey(slot);
  gcm_.noteKeySlotInvalid(slot);
  return true;
}

bool AesAccelerator::keySlotBusy(unsigned slot) const {
  for (unsigned i = 0; i < pipeline_.depth(); ++i) {
    const auto& s = pipeline_.stage(i);
    if (s.valid && s.key_slot == slot) return true;
  }
  // A GCM op holds its key slot for its whole lifetime (H tables, pending
  // keystream, hash streams).
  return gcm_.usesKeySlot(slot);
}

bool AesAccelerator::clearKey(unsigned user, unsigned slot) {
  if (!round_keys_.valid(slot)) return false;
  // Refuse while the slot is referenced by in-flight work.
  if (keySlotBusy(slot)) {
    recordEvent(SecurityEventKind::KeySlotBlocked, user,
                "clearKey refused: slot " + std::to_string(slot) +
                    " has blocks in flight");
    return false;
  }
  const Label& owner = round_keys_.slot(slot).owner;
  const Label& requester = users_.at(user).authority;
  if (cfg_.mode == SecurityMode::Protected &&
      !requester.i.flowsTo(owner.i)) {
    recordEvent(SecurityEventKind::KeySlotBlocked, user,
                "clearKey refused: " + requester.i.toString() +
                    " does not dominate owner integrity " +
                    owner.i.toString());
    return false;
  }
  round_keys_.clear(slot);
  ghash_.invalidateKey(slot);
  gcm_.noteKeySlotInvalid(slot);
  return true;
}

std::optional<lattice::HwTag> AesAccelerator::stageHwTag(unsigned stage) const {
  const StageSlot& s = pipeline_.stage(stage);
  if (!s.valid) return std::nullopt;
  // Fail secure: a tag that fails its parity check is never reported (the
  // scrub pass will squash the stage at the next tick).
  if (hardened() && !pipeline_.stageParityOk(stage)) return std::nullopt;
  static const lattice::TagCodec codec = lattice::TagCodec::userCategories();
  return codec.encode(s.tag);
}

std::uint32_t AesAccelerator::readConfig(const std::string& name) const {
  return config_regs_.read(name);
}

bool AesAccelerator::writeConfig(unsigned user, const std::string& name,
                                 std::uint32_t v) {
  const bool ok = config_regs_.write(name, v, users_.at(user).authority);
  if (!ok) {
    recordEvent(SecurityEventKind::ConfigWriteBlocked, user,
                "write of '" + name + "' requires full integrity; user has " +
                    users_.at(user).authority.i.toString());
  }
  return ok;
}

std::optional<aes::Block> AesAccelerator::debugReadStage(unsigned user,
                                                         unsigned stage) {
  // Fail secure: a flipped debug_enable bit must not open the debug port.
  if (hardened() && !config_regs_.parityOk("debug_enable")) {
    config_regs_.restoreDefault("debug_enable");
    noteFault(FaultSite::ConfigReg, /*recovered=*/false, user,
              "'debug_enable' parity at debug read; restored default");
  }
  if (config_regs_.read("debug_enable") == 0) {
    recordEvent(SecurityEventKind::DebugReadBlocked, user,
                "debug peripheral disabled");
    return std::nullopt;
  }
  const StageSlot& s = pipeline_.stage(stage);
  if (!s.valid) return std::nullopt;
  if (hardened() && !pipeline_.stageParityOk(stage)) {
    // Corrupt stage: squash before anything is released through the
    // debug port (the tag may have failed toward public).
    const StageSlot copy = s;
    const bool tag_fault = copy.tag_parity != labelParity(copy.tag);
    pipeline_.squash(stage);
    deliverAbort(copy);
    noteFault(tag_fault ? FaultSite::StageTag : FaultSite::StageData,
              /*recovered=*/false, user,
              "stage " + std::to_string(stage) + " parity at debug read");
    if (tag_fault) zeroizeSlotSquash(copy.key_slot);
    return std::nullopt;
  }
  // A debug read is a confidentiality flow from the stage register to the
  // reader (it does not assert trust in the data).
  if (cfg_.mode == SecurityMode::Protected &&
      !s.tag.c.flowsTo(users_.at(user).authority.c)) {
    recordEvent(SecurityEventKind::DebugReadBlocked, user,
                "stage " + std::to_string(stage) + " holds " +
                    s.tag.toString() + " data; reader is " +
                    users_.at(user).authority.toString());
    return std::nullopt;
  }
  return aes::stateToBlock(s.state);
}

bool AesAccelerator::submit(BlockRequest req) {
  if (req.user >= users_.size()) return false;
  if (req.key_slot >= kRoundKeySlots) {
    recordEvent(SecurityEventKind::KeySlotBlocked, req.user,
                "submit with out-of-range key slot " +
                    std::to_string(req.key_slot));
    return false;
  }
  if (!round_keys_.valid(req.key_slot)) {
    recordEvent(SecurityEventKind::KeySlotBlocked, req.user,
                "submit with invalid key slot " + std::to_string(req.key_slot));
    return false;
  }
  if (hardened() && !round_keys_.slotParityOk(req.key_slot)) {
    // Fail secure: never start a block on a corrupted key. Zeroize the slot
    // (squashing any in-flight blocks that still reference it) and refuse.
    const unsigned casualties = zeroizeSlotSquash(req.key_slot);
    noteFault(FaultSite::RoundKey, /*recovered=*/false, req.user,
              "slot " + std::to_string(req.key_slot) +
                  " parity at submit; zeroized (" +
                  std::to_string(casualties) + " blocks squashed)");
    return false;
  }
  if (round_keys_.rounds(req.key_slot) > pipeline_.maxRounds()) {
    recordEvent(SecurityEventKind::KeySlotBlocked, req.user,
                "key needs more rounds than the pipeline supports");
    return false;
  }
  StageSlot slot;
  slot.valid = true;
  slot.state = aes::blockToState(req.data);
  slot.key_slot = req.key_slot;
  slot.total_rounds = round_keys_.rounds(req.key_slot);
  slot.decrypt = req.decrypt;
  slot.req_id = req.req_id;
  slot.user = req.user;
  // The tag carried through the pipeline: the user's confidentiality joined
  // with the key's confidentiality (the data now depends on both), at the
  // user's integrity.
  const Label& u = users_.at(req.user).authority;
  slot.tag = Label{u.c.join(round_keys_.slot(req.key_slot).key_conf), u.i};
  stampParity(slot);
  input_queues_[req.user].push_back(std::move(slot));
  return true;
}

std::size_t AesAccelerator::submitBatch(const std::vector<BlockRequest>& reqs) {
  std::size_t accepted = 0;
  for (const auto& r : reqs) {
    if (!submit(r)) break;
    ++accepted;
  }
  return accepted;
}

std::size_t AesAccelerator::fetchOutputs(unsigned user,
                                         std::vector<BlockResponse>& out) {
  auto& q = output_queues_.at(user);
  const std::size_t n = q.size();
  out.reserve(out.size() + n);
  while (!q.empty()) {
    out.push_back(std::move(q.front()));
    q.pop_front();
  }
  return n;
}

void AesAccelerator::setReceiverReady(unsigned user, bool ready) {
  receiver_ready_.at(user) = ready;
}

std::optional<BlockResponse> AesAccelerator::fetchOutput(unsigned user) {
  auto& q = output_queues_.at(user);
  if (q.empty()) return std::nullopt;
  BlockResponse r = std::move(q.front());
  q.pop_front();
  return r;
}

const BlockResponse* AesAccelerator::peekOutput(unsigned user) const {
  const auto& q = output_queues_.at(user);
  return q.empty() ? nullptr : &q.front();
}

std::size_t AesAccelerator::pendingInputs(unsigned user) const {
  return input_queues_.at(user).size();
}

std::size_t AesAccelerator::pendingOutputs(unsigned user) const {
  return output_queues_.at(user).size();
}

bool AesAccelerator::submitGcm(GcmRequest req) { return gcm_.submit(std::move(req)); }

std::optional<GcmResponse> AesAccelerator::fetchGcm(unsigned user) {
  return gcm_.fetch(user);
}

std::optional<StageSlot> AesAccelerator::arbiterPick() {
  const unsigned n = static_cast<unsigned>(users_.size());
  if (n == 0) return std::nullopt;

  if (cfg_.coarse_grained) {
    // Coarse-grained sharing: one user owns the whole pipeline; switching
    // requires the pipeline to drain first (the performance cost the paper
    // motivates fine-grained sharing with).
    if (coarse_active_ && !input_queues_[coarse_owner_].empty()) {
      auto s = std::move(input_queues_[coarse_owner_].front());
      input_queues_[coarse_owner_].pop_front();
      return s;
    }
    if (coarse_active_ && input_queues_[coarse_owner_].empty() &&
        !pipeline_.anyValid()) {
      coarse_active_ = false;  // drained; allow a switch
    }
    if (!coarse_active_) {
      for (unsigned k = 0; k < n; ++k) {
        const unsigned u = (coarse_owner_ + 1 + k) % n;
        if (!input_queues_[u].empty()) {
          if (pipeline_.anyValid()) return std::nullopt;  // still draining
          coarse_owner_ = u;
          coarse_active_ = true;
          auto s = std::move(input_queues_[u].front());
          input_queues_[u].pop_front();
          return s;
        }
      }
    }
    return std::nullopt;
  }

  // Fine-grained: round-robin, one block per cycle from any user.
  for (unsigned k = 0; k < n; ++k) {
    const unsigned u = (rr_next_ + k) % n;
    if (!input_queues_[u].empty()) {
      rr_next_ = (u + 1) % n;
      auto s = std::move(input_queues_[u].front());
      input_queues_[u].pop_front();
      return s;
    }
  }
  return std::nullopt;
}

void AesAccelerator::routeCompleted(StageSlot slot, bool to_buffer) {
  BlockResponse resp;
  resp.req_id = slot.req_id;
  resp.user = slot.user;
  resp.data = aes::stateToBlock(slot.state);
  resp.accept_cycle = slot.accept_cycle;
  resp.complete_cycle = cycle_;

  if (cfg_.mode == SecurityMode::Protected) {
    // Nonmalleable declassification at the pipeline exit (Fig. 7): the
    // result carries (ck join cu, iu); releasing it to the output port
    // declassifies to (bottom, iu), performed by the requesting user. With
    // an authorized key ck <=C r(iu) and this succeeds; with the master key
    // (ck = top) only the supervisor passes (Section 3.2.2).
    const Label from = slot.tag;
    const Label to{lattice::Conf::bottom(), from.i};
    const auto decision =
        lattice::checkDeclassify(from, to, users_.at(slot.user));
    if (!decision.allowed) {
      recordEvent(SecurityEventKind::DeclassifyRejected, slot.user,
                  decision.reason);
      ++stats_.suppressed;
      resp.suppressed = true;
      resp.data = aes::Block{};  // nothing is released
      output_queues_[slot.user].push_back(std::move(resp));
      return;
    }
  }

  // Per-user ordering: if this user already has blocks waiting in the
  // overflow buffer, later completions must queue behind them even when the
  // receiver is ready again.
  bool behind_buffered = false;
  for (const auto& p : overflow_buffer_) {
    if (p.resp.user == resp.user) {
      behind_buffered = true;
      break;
    }
  }

  if (to_buffer || behind_buffered) {
    if (overflow_buffer_.size() >= cfg_.out_buffer_depth) {
      recordEvent(SecurityEventKind::OutputBufferOverflow, slot.user,
                  "overflow buffer full; block dropped");
      ++stats_.dropped;
      // No silent drops: deliver a completion record carrying no data so
      // the request still terminates in a definite outcome.
      resp.dropped = true;
      resp.data = aes::Block{};
      output_queues_[resp.user].push_back(std::move(resp));
      return;
    }
    ++stats_.buffered;
    overflow_buffer_.push_back({std::move(resp), slot.tag});
    return;
  }
  ++stats_.completed;
  output_queues_[resp.user].push_back(std::move(resp));
}

void AesAccelerator::drainBuffer() {
  // Deliver the oldest entry whose receiver is ready (one per cycle);
  // per-user order is preserved because entries of the same user stay in
  // FIFO order.
  for (auto it = overflow_buffer_.begin(); it != overflow_buffer_.end(); ++it) {
    if (receiver_ready_.at(it->resp.user)) {
      it->resp.complete_cycle = cycle_;
      ++stats_.completed;
      output_queues_[it->resp.user].push_back(std::move(it->resp));
      overflow_buffer_.erase(it);
      return;
    }
  }
}

void AesAccelerator::tick() {
  // Parity sweep first: corrupted stages are squashed (and corrupted tags
  // quarantined) before this cycle's stall meet, declassification, or
  // arbitration can consult them.
  if (hardened()) scrubTick();

  bool stall = false;
  bool to_buffer = false;

  // An internal GCM block never waits on a host receiver: the sequencer is
  // always ready, so it cannot request a stall.
  const StageSlot& fin = pipeline_.finalStage();
  if (fin.valid && !fin.gcm_internal && !receiver_ready_.at(fin.user)) {
    if (cfg_.mode == SecurityMode::Baseline) {
      // Unprotected design: the whole pipeline stalls — the covert timing
      // channel of Section 3.2.5.
      stall = true;
    } else {
      // Fig. 8: a stall request is honored only when the requester's
      // confidentiality flows to the meet of all in-flight stage tags, i.e.
      // when no stage holds lower-confidentiality data that could observe
      // the delay. We additionally fold in the tags of blocks waiting at
      // the input (a granted stall delays their acceptance, which their
      // owners can observe) — a strengthening of the paper's rule needed to
      // close the acceptance-delay side of the channel.
      // The meet also folds in the GHASH unit's in-flight tags and the
      // sequencer's active-op labels: a granted stall freezes both (they
      // advance only on non-stall cycles), so their owners must be unable
      // to observe the delay.
      lattice::Conf meet =
          pipeline_.meetConf().meet(ghash_.meetConf()).meet(gcm_.meetConf());
      if (cfg_.meet_includes_inputs) {
        for (const auto& q : input_queues_) {
          if (!q.empty()) meet = meet.meet(q.front().tag.c);
        }
      }
      if (users_.at(fin.user).authority.c.flowsTo(meet)) {
        stall = true;
      } else {
        ++stats_.denied_stalls;
        recordEvent(SecurityEventKind::StallDenied, fin.user,
                    "stall request " + users_.at(fin.user).authority.c.toString() +
                        " does not flow to pipeline meet " + meet.toString());
        to_buffer = true;
      }
    }
  }

  if (stall) {
    ++stats_.stalled_cycles;
  } else {
    // The GCM sequencer runs only on non-stall cycles, in lockstep with
    // the datapaths it feeds (a stall freezes the whole AEAD path — no
    // sequencer-side timing channel).
    gcm_.pump();
    std::optional<StageSlot> input = arbiterPick();
    if (input.has_value() && !round_keys_.valid(input->key_slot)) {
      // The slot was zeroized (fail-secure) after this request was queued
      // but before the arbiter picked it. Never start a block on a dead
      // key: abort it at the accept stage instead.
      input->accept_cycle = cycle_;
      deliverAbort(*input);
      recordEvent(SecurityEventKind::KeySlotBlocked, input->user,
                  "queued request aborted at accept: key slot " +
                      std::to_string(input->key_slot) + " zeroized");
      input.reset();
    }
    if (input.has_value()) {
      input->accept_cycle = cycle_;
      ++stats_.accepted;
    }
    auto completed = pipeline_.advance(std::move(input));
    if (completed.has_value()) {
      if (hardened() && round_keys_.valid(completed->key_slot) &&
          !round_keys_.slotParityOk(completed->key_slot)) {
        // Exit guard: the slow scrub ring visits each round-key slot only
        // every ~20 cycles, so a block can finish all its rounds against a
        // corrupted key before the sweep reaches the slot. Never deliver
        // ciphertext computed from an unverified key — abort the block and
        // zeroize the slot now.
        const unsigned slot = completed->key_slot;
        deliverAbort(*completed);
        noteFault(FaultSite::RoundKey, /*recovered=*/false, completed->user,
                  "slot " + std::to_string(slot) + " parity at pipeline exit");
        zeroizeSlotSquash(slot);
      } else if (completed->gcm_internal) {
        // Hand internal blocks back to the sequencer — no declassification
        // here; the op's single declassification happens at its release.
        gcm_.deliver(*completed);
      } else {
        routeCompleted(std::move(*completed), to_buffer);
      }
    }
    // The GHASH multiplier advances in lockstep with the AES pipe (and
    // freezes with it on stall cycles). Point-of-use detections surface as
    // ordinary fault events.
    for (const auto& f : ghash_.tick(cycle_)) {
      noteFault(f.site, /*recovered=*/false, f.user, f.detail);
    }
  }

  drainBuffer();
  // Environment hook (fault injectors, monitors): runs between clock edges,
  // after this cycle's outputs are queued but before any host logic can
  // fetch them — so a hook can perturb state the next cycle's parity sweep
  // will see, and responses delivered this cycle (drop/duplicate faults).
  if (tick_hook_) tick_hook_();
  ++cycle_;
}

void AesAccelerator::run(unsigned cycles) {
  for (unsigned i = 0; i < cycles; ++i) tick();
}

std::size_t AesAccelerator::eventCount(SecurityEventKind k) const {
  // Served from dedicated counters: exact even after ring-buffer eviction.
  return event_counts_[static_cast<unsigned>(k)];
}

}  // namespace aesifc::accel
