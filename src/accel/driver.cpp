#include "accel/driver.h"

#include <cstring>
#include <map>

namespace aesifc::accel {

namespace {

aes::Block loadBlock(const aes::Bytes& b, std::size_t off) {
  aes::Block out{};
  std::memcpy(out.data(), b.data() + off, 16);
  return out;
}

void storeBlock(aes::Bytes& b, std::size_t off, const aes::Block& blk) {
  std::memcpy(b.data() + off, blk.data(), 16);
}

aes::Block xorBlocks(aes::Block a, const aes::Block& b) {
  for (unsigned i = 0; i < 16; ++i) a[i] ^= b[i];
  return a;
}

}  // namespace

std::string toString(AccelStatus s) {
  switch (s) {
    case AccelStatus::Ok: return "ok";
    case AccelStatus::Suppressed: return "suppressed";
    case AccelStatus::Timeout: return "timeout";
    case AccelStatus::FaultAborted: return "fault-aborted";
    case AccelStatus::Dropped: return "dropped";
    case AccelStatus::Rejected: return "rejected";
    case AccelStatus::AuthFailed: return "auth-failed";
  }
  return "?";
}

bool loadKeyBytes(AesAccelerator& acc, unsigned user, unsigned slot,
                  unsigned cell_base, const std::vector<std::uint8_t>& key,
                  aes::KeySize ks, lattice::Conf key_conf) {
  if (key.size() != aes::keyBytes(ks)) return false;
  const unsigned cells = aes::keyBytes(ks) / 8;
  acc.configureKeyCells(user, cell_base, cells);
  for (unsigned c = 0; c < cells; ++c) {
    std::uint64_t w = 0;
    for (unsigned b = 0; b < 8; ++b)
      w |= static_cast<std::uint64_t>(key[8 * c + b]) << (8 * b);
    if (!acc.writeKeyCell(user, cell_base + c, w)) return false;
  }
  return acc.loadKey(user, slot, cell_base, ks, key_conf);
}

bool loadKey128(AesAccelerator& acc, unsigned user, unsigned slot,
                unsigned cell_base, const std::vector<std::uint8_t>& key,
                lattice::Conf key_conf) {
  return loadKeyBytes(acc, user, slot, cell_base, key, aes::KeySize::Aes128,
                      key_conf);
}

AccelSession::AccelSession(AesAccelerator& acc, unsigned user,
                           unsigned key_slot, SessionOptions opts)
    : acc_{acc}, user_{user}, key_slot_{key_slot}, opts_{opts} {}

AccelResult<std::vector<aes::Block>> AccelSession::runBatch(
    const std::vector<aes::Block>& blocks, bool decrypt) {
  const std::uint64_t start_cycle = acc_.cycle();
  std::vector<aes::Block> out(blocks.size());

  // Terminal per-block states. `order` maps every request id ever issued
  // (across attempts) to its block index; an entry is erased when its
  // response is consumed, so a duplicated response — or the late original
  // racing a resubmission — can never be delivered twice.
  enum class St : std::uint8_t { Pending, Done, Supp, Fail };
  std::vector<St> st(blocks.size(), St::Pending);
  std::map<std::uint64_t, std::size_t> order;

  AccelStatus attempt_fail = AccelStatus::Ok;
  std::vector<BlockResponse> drained;  // reused batch-drain buffer
  auto drain = [&] {
    drained.clear();
    acc_.fetchOutputs(user_, drained);
    for (const auto& resp : drained) {
      auto it = order.find(resp.req_id);
      if (it == order.end()) continue;  // unknown / already-consumed id
      const std::size_t idx = it->second;
      order.erase(it);
      if (st[idx] == St::Done || st[idx] == St::Supp) continue;  // stale
      if (resp.suppressed) {
        st[idx] = St::Supp;  // security refusal: final, never retried
      } else if (resp.fault_aborted || resp.dropped) {
        st[idx] = St::Fail;
        if (attempt_fail == AccelStatus::Ok) {
          attempt_fail = resp.fault_aborted ? AccelStatus::FaultAborted
                                            : AccelStatus::Dropped;
        }
      } else {
        out[idx] = resp.data;
        st[idx] = St::Done;
      }
    }
  };
  auto finish = [&](AccelStatus verdict) {
    cycles_used_ += acc_.cycle() - start_cycle;
    last_status_ = verdict;
    switch (verdict) {
      case AccelStatus::Ok: ++telemetry_.ok; break;
      case AccelStatus::Suppressed: ++telemetry_.suppressed; break;
      case AccelStatus::Timeout: ++telemetry_.timeouts; break;
      case AccelStatus::FaultAborted: ++telemetry_.fault_aborts; break;
      case AccelStatus::Dropped: ++telemetry_.drops; break;
      case AccelStatus::Rejected: ++telemetry_.rejected; break;
      case AccelStatus::AuthFailed: ++telemetry_.auth_failed; break;
    }
    return verdict;
  };

  for (unsigned attempt = 0;; ++attempt) {
    // (Re)open failed blocks and collect this attempt's submission list.
    std::vector<std::size_t> todo;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      if (st[i] == St::Fail) st[i] = St::Pending;
      if (st[i] == St::Pending) todo.push_back(i);
    }
    attempt_fail = AccelStatus::Ok;
    std::size_t submitted = 0;
    const std::uint64_t attempt_start = acc_.cycle();
    bool timed_out = false;
    bool rejected = false;

    while (true) {
      bool any_open = false;
      for (auto i : todo) {
        if (st[i] == St::Pending) {
          any_open = true;
          break;
        }
      }
      if (!any_open) break;
      // One submission per cycle; skip blocks a late response from an
      // earlier attempt already resolved.
      while (submitted < todo.size() && st[todo[submitted]] != St::Pending)
        ++submitted;
      if (submitted < todo.size()) {
        BlockRequest req;
        req.req_id = next_req_++;
        req.user = user_;
        req.key_slot = key_slot_;
        req.decrypt = decrypt;
        req.data = blocks[todo[submitted]];
        if (acc_.submit(req)) {
          order[req.req_id] = todo[submitted];
          ++submitted;
        } else {
          rejected = true;  // deterministic refusal (e.g. zeroized slot)
          break;
        }
      }
      acc_.tick();
      drain();
      if (acc_.cycle() - attempt_start >
          opts_.timeout_cycles + todo.size()) {
        timed_out = true;  // device wedged (e.g. permanently stalled)
        break;
      }
    }

    if (rejected) return finish(AccelStatus::Rejected);

    bool need_retry = false;
    for (auto s : st) {
      if (s == St::Fail || s == St::Pending) {
        need_retry = true;
        break;
      }
    }
    if (!need_retry) {
      for (auto s : st) {
        if (s == St::Supp) return finish(AccelStatus::Suppressed);
      }
      (void)finish(AccelStatus::Ok);
      return out;
    }

    const AccelStatus verdict =
        attempt_fail != AccelStatus::Ok
            ? attempt_fail
            : (timed_out ? AccelStatus::Timeout : AccelStatus::FaultAborted);
    if (attempt >= opts_.max_retries) return finish(verdict);

    // Bounded backoff before the retry; keep draining so in-flight
    // responses from this attempt are still credited.
    ++retries_;
    acc_.noteRetry();
    const std::uint64_t backoff = opts_.backoff_cycles << attempt;
    for (std::uint64_t i = 0; i < backoff; ++i) {
      acc_.tick();
      drain();
    }
  }
}

AccelStatus AccelSession::finishVerdict(AccelStatus verdict,
                                        std::uint64_t start_cycle) {
  cycles_used_ += acc_.cycle() - start_cycle;
  last_status_ = verdict;
  switch (verdict) {
    case AccelStatus::Ok: ++telemetry_.ok; break;
    case AccelStatus::Suppressed: ++telemetry_.suppressed; break;
    case AccelStatus::Timeout: ++telemetry_.timeouts; break;
    case AccelStatus::FaultAborted: ++telemetry_.fault_aborts; break;
    case AccelStatus::Dropped: ++telemetry_.drops; break;
    case AccelStatus::Rejected: ++telemetry_.rejected; break;
    case AccelStatus::AuthFailed: ++telemetry_.auth_failed; break;
  }
  return verdict;
}

void AccelSession::asyncSubmit(std::uint64_t ticket, AsyncBatch& b) {
  while (b.submitted < b.blocks.size()) {
    BlockRequest req;
    req.req_id = next_req_;
    req.user = user_;
    req.key_slot = key_slot_;
    req.decrypt = b.decrypt;
    req.data = b.blocks[b.submitted];
    if (!acc_.submit(req)) {
      b.rejected = true;  // deterministic refusal — the batch verdict
      return;
    }
    async_order_[req.req_id] = {ticket, b.submitted};
    ++next_req_;
    ++b.submitted;
  }
}

void AccelSession::asyncDrain() {
  std::vector<BlockResponse> drained;
  acc_.fetchOutputs(user_, drained);
  for (const auto& resp : drained) {
    auto it = async_order_.find(resp.req_id);
    if (it == async_order_.end()) continue;  // stale / foreign / duplicate
    const auto [ticket, idx] = it->second;
    async_order_.erase(it);
    auto bt = async_batches_.find(ticket);
    if (bt == async_batches_.end()) continue;  // batch already retired
    AsyncBatch& b = bt->second;
    if (b.state[idx] != 0) continue;
    if (resp.fault_aborted || resp.dropped) {
      // No auto-retry: the first transient failure is the batch verdict.
      if (!b.transient) {
        b.transient = resp.fault_aborted ? AccelStatus::FaultAborted
                                         : AccelStatus::Dropped;
      }
      continue;
    }
    if (resp.suppressed) {
      b.state[idx] = 2;
      b.any_suppressed = true;
    } else {
      b.state[idx] = 1;
      b.out[idx] = resp.data;
    }
    ++b.resolved;
  }
}

std::uint64_t AccelSession::beginBatch(const std::vector<aes::Block>& blocks,
                                       bool decrypt) {
  const std::uint64_t ticket = next_ticket_++;
  AsyncBatch b;
  b.blocks = blocks;
  b.decrypt = decrypt;
  b.out.resize(blocks.size());
  b.state.assign(blocks.size(), 0);
  b.begin_cycle = acc_.cycle();
  auto [it, inserted] = async_batches_.emplace(ticket, std::move(b));
  (void)inserted;
  asyncSubmit(ticket, it->second);
  return ticket;
}

bool AccelSession::pollBatch(std::uint64_t ticket) {
  auto it = async_batches_.find(ticket);
  if (it == async_batches_.end()) return true;  // unknown or already retired
  if (!it->second.rejected) asyncSubmit(ticket, it->second);
  asyncDrain();
  return asyncTerminal(it->second);
}

AccelResult<std::vector<aes::Block>> AccelSession::finishBatch(
    std::uint64_t ticket, std::uint64_t max_wait_cycles) {
  auto it = async_batches_.find(ticket);
  if (it == async_batches_.end()) return AccelStatus::Rejected;
  const std::uint64_t start = acc_.cycle();
  std::uint64_t waited = 0;
  while (!pollBatch(ticket) && waited < max_wait_cycles) {
    acc_.tick();
    ++waited;
  }
  AsyncBatch b = std::move(it->second);
  async_batches_.erase(it);
  // Orphan this batch's remaining request ids so late responses are
  // dropped instead of dangling in the routing map.
  for (auto oit = async_order_.begin(); oit != async_order_.end();) {
    if (oit->second.first == ticket) {
      oit = async_order_.erase(oit);
    } else {
      ++oit;
    }
  }
  if (b.rejected) return finishVerdict(AccelStatus::Rejected, start);
  if (b.transient) return finishVerdict(*b.transient, start);
  if (b.resolved < b.blocks.size()) {
    return finishVerdict(AccelStatus::Timeout, start);
  }
  if (b.any_suppressed) return finishVerdict(AccelStatus::Suppressed, start);
  (void)finishVerdict(AccelStatus::Ok, start);
  return std::move(b.out);
}

AccelResult<std::vector<aes::Block>> AccelSession::encryptBlocks(
    const std::vector<aes::Block>& pts) {
  return runBatch(pts, false);
}

AccelResult<std::vector<aes::Block>> AccelSession::decryptBlocks(
    const std::vector<aes::Block>& cts) {
  return runBatch(cts, true);
}

AccelResult<aes::Block> AccelSession::encryptBlock(const aes::Block& pt) {
  auto r = runBatch({pt}, false);
  if (!r) return r.status();
  return (*r)[0];
}

AccelResult<aes::Block> AccelSession::decryptBlock(const aes::Block& ct) {
  auto r = runBatch({ct}, true);
  if (!r) return r.status();
  return (*r)[0];
}

AccelResult<aes::Bytes> AccelSession::ecbEncrypt(const aes::Bytes& data) {
  if (data.size() % 16 != 0) return AccelStatus::Rejected;
  std::vector<aes::Block> blocks(data.size() / 16);
  for (std::size_t i = 0; i < blocks.size(); ++i)
    blocks[i] = loadBlock(data, 16 * i);
  auto r = runBatch(blocks, false);
  if (!r) return r.status();
  aes::Bytes out(data.size());
  for (std::size_t i = 0; i < r->size(); ++i) storeBlock(out, 16 * i, (*r)[i]);
  return out;
}

AccelResult<aes::Bytes> AccelSession::ecbDecrypt(const aes::Bytes& data) {
  if (data.size() % 16 != 0) return AccelStatus::Rejected;
  std::vector<aes::Block> blocks(data.size() / 16);
  for (std::size_t i = 0; i < blocks.size(); ++i)
    blocks[i] = loadBlock(data, 16 * i);
  auto r = runBatch(blocks, true);
  if (!r) return r.status();
  aes::Bytes out(data.size());
  for (std::size_t i = 0; i < r->size(); ++i) storeBlock(out, 16 * i, (*r)[i]);
  return out;
}

AccelResult<aes::Bytes> AccelSession::ctrCrypt(const aes::Bytes& data,
                                               const aes::Iv& nonce) {
  const std::size_t nblocks = (data.size() + 15) / 16;
  std::vector<aes::Block> counters(nblocks);
  aes::Block ctr = nonce;
  for (auto& c : counters) {
    c = ctr;
    aes::incCounterBe(ctr, 64);  // CTR counts in the low 64 bits
  }
  auto ks = runBatch(counters, false);  // keystream, fully pipelined
  if (!ks) return ks.status();
  aes::Bytes out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i] = data[i] ^ (*ks)[i / 16][i % 16];
  }
  return out;
}

AccelResult<aes::Bytes> AccelSession::cbcDecrypt(const aes::Bytes& data,
                                                 const aes::Iv& iv) {
  if (data.size() % 16 != 0 || data.empty()) return AccelStatus::Rejected;
  std::vector<aes::Block> blocks(data.size() / 16);
  for (std::size_t i = 0; i < blocks.size(); ++i)
    blocks[i] = loadBlock(data, 16 * i);
  auto r = runBatch(blocks, true);  // all blocks decrypt in parallel
  if (!r) return r.status();
  aes::Bytes out(data.size());
  aes::Block prev = iv;
  for (std::size_t i = 0; i < r->size(); ++i) {
    storeBlock(out, 16 * i, xorBlocks((*r)[i], prev));
    prev = blocks[i];
  }
  return out;
}

AccelStatus AccelSession::finishGcm(AccelStatus verdict,
                                    std::uint64_t start_cycle) {
  cycles_used_ += acc_.cycle() - start_cycle;
  last_status_ = verdict;
  switch (verdict) {
    case AccelStatus::Ok: ++telemetry_.ok; break;
    case AccelStatus::Suppressed: ++telemetry_.suppressed; break;
    case AccelStatus::Timeout: ++telemetry_.timeouts; break;
    case AccelStatus::FaultAborted: ++telemetry_.fault_aborts; break;
    case AccelStatus::Dropped: ++telemetry_.drops; break;
    case AccelStatus::Rejected: ++telemetry_.rejected; break;
    case AccelStatus::AuthFailed: ++telemetry_.auth_failed; break;
  }
  return verdict;
}

AccelResult<GcmResponse> AccelSession::runGcm(GcmRequest req) {
  const std::uint64_t start_cycle = acc_.cycle();
  req.user = user_;
  req.key_slot = key_slot_;
  // Watchdog budget: the op needs one AES pass per keystream/H/J0 block
  // plus one GHASH pass per hashed block on top of the configured timeout.
  const std::uint64_t blocks =
      (req.data.size() + 15) / 16 + (req.aad.size() + 15) / 16 +
      (req.iv.size() + 15) / 16;
  for (unsigned attempt = 0;; ++attempt) {
    req.req_id = next_req_++;
    if (!acc_.submitGcm(req))
      return finishGcm(AccelStatus::Rejected, start_cycle);
    const std::uint64_t attempt_start = acc_.cycle();
    std::optional<GcmResponse> got;
    while (true) {
      acc_.tick();
      while (auto r = acc_.fetchGcm(user_)) {
        if (r->req_id == req.req_id) {
          got = std::move(*r);
          break;  // responses from abandoned attempts are discarded
        }
      }
      if (got.has_value()) break;
      if (acc_.cycle() - attempt_start > opts_.timeout_cycles + 2 * blocks)
        break;
    }
    AccelStatus verdict;
    if (!got.has_value()) {
      verdict = AccelStatus::Timeout;
    } else if (got->suppressed) {
      return finishGcm(AccelStatus::Suppressed, start_cycle);  // final
    } else if (got->auth_failed) {
      return finishGcm(AccelStatus::AuthFailed, start_cycle);  // verdict
    } else if (got->fault_aborted) {
      verdict = AccelStatus::FaultAborted;
    } else {
      (void)finishGcm(AccelStatus::Ok, start_cycle);
      return std::move(*got);
    }
    if (attempt >= opts_.max_retries) return finishGcm(verdict, start_cycle);
    ++retries_;
    acc_.noteRetry();
    const std::uint64_t backoff = opts_.backoff_cycles << attempt;
    for (std::uint64_t i = 0; i < backoff; ++i) acc_.tick();
  }
}

AccelResult<GcmSealed> AccelSession::gcmSeal(
    const std::vector<std::uint8_t>& plaintext,
    const std::vector<std::uint8_t>& aad,
    const std::vector<std::uint8_t>& iv) {
  GcmRequest req;
  req.open = false;
  req.iv = iv;
  req.aad = aad;
  req.data = plaintext;
  auto r = runGcm(std::move(req));
  if (!r) return r.status();
  return GcmSealed{std::move(r->data), r->tag};
}

AccelResult<std::vector<std::uint8_t>> AccelSession::gcmOpen(
    const std::vector<std::uint8_t>& ciphertext,
    const std::vector<std::uint8_t>& aad, const aes::Tag128& tag,
    const std::vector<std::uint8_t>& iv) {
  GcmRequest req;
  req.open = true;
  req.iv = iv;
  req.aad = aad;
  req.data = ciphertext;
  req.tag = tag;
  auto r = runGcm(std::move(req));
  if (!r) return r.status();
  return std::move(r->data);
}

AccelResult<aes::Bytes> AccelSession::cbcEncrypt(const aes::Bytes& data,
                                                 const aes::Iv& iv) {
  if (data.size() % 16 != 0) return AccelStatus::Rejected;
  aes::Bytes out(data.size());
  aes::Block prev = iv;
  // Chained: each block must wait for the previous ciphertext — the
  // pipelined engine degrades to one block per full latency.
  for (std::size_t off = 0; off < data.size(); off += 16) {
    auto ct = encryptBlock(xorBlocks(loadBlock(data, off), prev));
    if (!ct) return ct.status();
    storeBlock(out, off, *ct);
    prev = *ct;
  }
  return out;
}

}  // namespace aesifc::accel
