#include "accel/driver.h"

#include <cstring>
#include <map>

namespace aesifc::accel {

namespace {

constexpr unsigned kTimeoutCycles = 4096;

aes::Block loadBlock(const aes::Bytes& b, std::size_t off) {
  aes::Block out{};
  std::memcpy(out.data(), b.data() + off, 16);
  return out;
}

void storeBlock(aes::Bytes& b, std::size_t off, const aes::Block& blk) {
  std::memcpy(b.data() + off, blk.data(), 16);
}

aes::Block xorBlocks(aes::Block a, const aes::Block& b) {
  for (unsigned i = 0; i < 16; ++i) a[i] ^= b[i];
  return a;
}

void incrementCounter(aes::Block& ctr) {
  for (int i = 15; i >= 8; --i) {
    if (++ctr[static_cast<unsigned>(i)] != 0) break;
  }
}

}  // namespace

bool loadKeyBytes(AesAccelerator& acc, unsigned user, unsigned slot,
                  unsigned cell_base, const std::vector<std::uint8_t>& key,
                  aes::KeySize ks, lattice::Conf key_conf) {
  if (key.size() != aes::keyBytes(ks)) return false;
  const unsigned cells = aes::keyBytes(ks) / 8;
  acc.configureKeyCells(user, cell_base, cells);
  for (unsigned c = 0; c < cells; ++c) {
    std::uint64_t w = 0;
    for (unsigned b = 0; b < 8; ++b)
      w |= static_cast<std::uint64_t>(key[8 * c + b]) << (8 * b);
    if (!acc.writeKeyCell(user, cell_base + c, w)) return false;
  }
  return acc.loadKey(user, slot, cell_base, ks, key_conf);
}

bool loadKey128(AesAccelerator& acc, unsigned user, unsigned slot,
                unsigned cell_base, const std::vector<std::uint8_t>& key,
                lattice::Conf key_conf) {
  return loadKeyBytes(acc, user, slot, cell_base, key, aes::KeySize::Aes128,
                      key_conf);
}

AccelSession::AccelSession(AesAccelerator& acc, unsigned user,
                           unsigned key_slot)
    : acc_{acc}, user_{user}, key_slot_{key_slot} {}

std::optional<std::vector<aes::Block>> AccelSession::runBatch(
    const std::vector<aes::Block>& blocks, bool decrypt) {
  const std::uint64_t start_cycle = acc_.cycle();
  std::map<std::uint64_t, std::size_t> order;  // req_id -> index
  std::vector<aes::Block> out(blocks.size());
  std::size_t submitted = 0;
  std::size_t done = 0;
  bool suppressed = false;

  while (done < blocks.size()) {
    if (submitted < blocks.size()) {
      BlockRequest req;
      req.req_id = next_req_++;
      req.user = user_;
      req.key_slot = key_slot_;
      req.decrypt = decrypt;
      req.data = blocks[submitted];
      if (acc_.submit(req)) {
        order[req.req_id] = submitted;
        ++submitted;
      }
    }
    acc_.tick();
    while (auto resp = acc_.fetchOutput(user_)) {
      auto it = order.find(resp->req_id);
      if (it == order.end()) continue;
      if (resp->suppressed) suppressed = true;
      out[it->second] = resp->data;
      ++done;
    }
    if (acc_.cycle() - start_cycle > kTimeoutCycles + blocks.size()) {
      cycles_used_ += acc_.cycle() - start_cycle;
      return std::nullopt;  // device wedged (e.g. permanently stalled)
    }
  }
  cycles_used_ += acc_.cycle() - start_cycle;
  if (suppressed) return std::nullopt;
  return out;
}

std::optional<aes::Block> AccelSession::encryptBlock(const aes::Block& pt) {
  auto r = runBatch({pt}, false);
  if (!r) return std::nullopt;
  return (*r)[0];
}

std::optional<aes::Block> AccelSession::decryptBlock(const aes::Block& ct) {
  auto r = runBatch({ct}, true);
  if (!r) return std::nullopt;
  return (*r)[0];
}

std::optional<aes::Bytes> AccelSession::ecbEncrypt(const aes::Bytes& data) {
  if (data.size() % 16 != 0) return std::nullopt;
  std::vector<aes::Block> blocks(data.size() / 16);
  for (std::size_t i = 0; i < blocks.size(); ++i)
    blocks[i] = loadBlock(data, 16 * i);
  auto r = runBatch(blocks, false);
  if (!r) return std::nullopt;
  aes::Bytes out(data.size());
  for (std::size_t i = 0; i < r->size(); ++i) storeBlock(out, 16 * i, (*r)[i]);
  return out;
}

std::optional<aes::Bytes> AccelSession::ecbDecrypt(const aes::Bytes& data) {
  if (data.size() % 16 != 0) return std::nullopt;
  std::vector<aes::Block> blocks(data.size() / 16);
  for (std::size_t i = 0; i < blocks.size(); ++i)
    blocks[i] = loadBlock(data, 16 * i);
  auto r = runBatch(blocks, true);
  if (!r) return std::nullopt;
  aes::Bytes out(data.size());
  for (std::size_t i = 0; i < r->size(); ++i) storeBlock(out, 16 * i, (*r)[i]);
  return out;
}

std::optional<aes::Bytes> AccelSession::ctrCrypt(const aes::Bytes& data,
                                                 const aes::Iv& nonce) {
  const std::size_t nblocks = (data.size() + 15) / 16;
  std::vector<aes::Block> counters(nblocks);
  aes::Block ctr = nonce;
  for (auto& c : counters) {
    c = ctr;
    incrementCounter(ctr);
  }
  auto ks = runBatch(counters, false);  // keystream, fully pipelined
  if (!ks) return std::nullopt;
  aes::Bytes out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i] = data[i] ^ (*ks)[i / 16][i % 16];
  }
  return out;
}

std::optional<aes::Bytes> AccelSession::cbcDecrypt(const aes::Bytes& data,
                                                   const aes::Iv& iv) {
  if (data.size() % 16 != 0 || data.empty()) return std::nullopt;
  std::vector<aes::Block> blocks(data.size() / 16);
  for (std::size_t i = 0; i < blocks.size(); ++i)
    blocks[i] = loadBlock(data, 16 * i);
  auto r = runBatch(blocks, true);  // all blocks decrypt in parallel
  if (!r) return std::nullopt;
  aes::Bytes out(data.size());
  aes::Block prev = iv;
  for (std::size_t i = 0; i < r->size(); ++i) {
    storeBlock(out, 16 * i, xorBlocks((*r)[i], prev));
    prev = blocks[i];
  }
  return out;
}

std::optional<aes::Bytes> AccelSession::cbcEncrypt(const aes::Bytes& data,
                                                   const aes::Iv& iv) {
  if (data.size() % 16 != 0) return std::nullopt;
  aes::Bytes out(data.size());
  aes::Block prev = iv;
  // Chained: each block must wait for the previous ciphertext — the
  // pipelined engine degrades to one block per full latency.
  for (std::size_t off = 0; off < data.size(); off += 16) {
    auto ct = encryptBlock(xorBlocks(loadBlock(data, off), prev));
    if (!ct) return std::nullopt;
    storeBlock(out, off, *ct);
    prev = *ct;
  }
  return out;
}

}  // namespace aesifc::accel
