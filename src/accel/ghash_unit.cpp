#include "accel/ghash_unit.h"

#include "lattice/downgrade.h"

namespace aesifc::accel {

namespace {

aes::Tag128 xorTags(aes::Tag128 a, const aes::Tag128& b) {
  for (unsigned i = 0; i < 16; ++i) a[i] ^= b[i];
  return a;
}

bool tagDataParity(const aes::Tag128& x, const aes::Tag128& z) {
  std::uint8_t acc = 0;
  for (auto b : x) acc ^= b;
  for (auto b : z) acc ^= b;
  return parity64(acc);
}

void stampStage(GhashStageSlot& s) {
  s.data_parity = tagDataParity(s.x, s.z);
  s.tag_parity = labelParity(s.tag);
}

}  // namespace

std::uint64_t GhashUnit::keyChecksum(const KeySlot& k) const {
  // Rotate-xor fold over every table byte plus the label masks: any single
  // flipped bit lands at a distinct rotation, so single-event upsets are
  // always detected.
  std::uint64_t acc = 0x9e3779b97f4a7c15ull;
  for (const auto& p : k.powers) {
    for (const auto& entry : p.table()) {
      for (auto b : entry) acc = (acc << 7 | acc >> 57) ^ b;
    }
  }
  acc = (acc << 7 | acc >> 57) ^ k.label.c.cats.mask();
  acc = (acc << 7 | acc >> 57) ^ k.label.i.cats.mask();
  return acc;
}

void GhashUnit::loadH(unsigned key_slot, const aes::Tag128& h, Label label,
                      std::uint64_t now) {
  invalidateKey(key_slot);  // voids streams bound to any previous H
  KeySlot& k = keys_.at(key_slot);
  k.powers.clear();
  k.powers.reserve(kGhashLanes);
  aes::Tag128 hp = h;
  for (unsigned d = 0; d < kGhashLanes; ++d) {
    k.powers.emplace_back(hp);
    hp = aes::gf128Mul(hp, h);
  }
  k.label = label;
  k.valid = true;
  k.ready_at = now + kGhashLanes;  // power-table build latency
  k.checksum = keyChecksum(k);
}

void GhashUnit::invalidateKey(unsigned key_slot) {
  KeySlot& k = keys_.at(key_slot);
  k.valid = false;
  k.powers.clear();
  k.checksum = 0;
  // Streams hashing under this H can never complete; fault them so their
  // owners' operations abort instead of hanging.
  for (unsigned s = 0; s < kGhashStreams; ++s) {
    if (streams_[s].open && streams_[s].key_slot == key_slot) faultStream(s);
  }
  for (auto& st : stages_) {
    if (st.valid && st.key_slot == key_slot) st = GhashStageSlot{};
  }
}

bool GhashUnit::keyValid(unsigned key_slot) const {
  return keys_.at(key_slot).valid;
}

bool GhashUnit::keyReady(unsigned key_slot, std::uint64_t now) const {
  const KeySlot& k = keys_.at(key_slot);
  return k.valid && now >= k.ready_at;
}

const Label& GhashUnit::keyLabel(unsigned key_slot) const {
  return keys_.at(key_slot).label;
}

std::optional<unsigned> GhashUnit::openStream(unsigned user, unsigned key_slot,
                                              std::uint64_t total_blocks,
                                              Label label) {
  if (key_slot >= kGhashKeySlots || !keys_[key_slot].valid)
    return std::nullopt;
  for (unsigned s = 0; s < kGhashStreams; ++s) {
    Stream& st = streams_[s];
    if (st.open) continue;
    st = Stream{};
    st.open = true;
    st.user = user;
    st.key_slot = key_slot;
    // Running tag starts at join(label(data), label(H)) and only ever
    // rises as blocks are absorbed.
    st.label = label.join(keys_[key_slot].label);
    st.total = total_blocks;
    restampStream(st);
    return s;
  }
  return std::nullopt;
}

bool GhashUnit::absorb(unsigned stream, const aes::Tag128& block,
                       const Label& label) {
  Stream& st = streams_.at(stream);
  if (!st.open || st.faulted) return false;
  if (st.absorbed >= st.total) return false;
  if (st.fifo.size() >= kGhashFifoDepth) return false;
  st.fifo.push_back(block);
  ++st.absorbed;
  st.label = st.label.join(label);
  restampStream(st);
  return true;
}

std::size_t GhashUnit::fifoSpace(unsigned stream) const {
  const Stream& st = streams_.at(stream);
  if (!st.open || st.faulted) return 0;
  return kGhashFifoDepth - st.fifo.size();
}

bool GhashUnit::done(unsigned stream) const {
  const Stream& st = streams_.at(stream);
  return st.open && !st.faulted && st.written == st.total;
}

aes::Tag128 GhashUnit::digestInternal(unsigned stream) const {
  const Stream& st = streams_.at(stream);
  aes::Tag128 d{};
  for (const auto& lane : st.lanes) d = xorTags(d, lane);
  return d;
}

GhashUnit::ReleaseResult GhashUnit::release(unsigned stream,
                                            const Principal& p) {
  Stream& st = streams_.at(stream);
  if (!st.open) return {ReleaseStatus::NotReady, {}, "stream not open"};
  if (st.faulted) return {ReleaseStatus::Faulted, {}, "stream faulted"};
  if (st.written != st.total)
    return {ReleaseStatus::NotReady, {}, "blocks still in flight"};
  if (hardened_ && !streamParityOk(st)) {
    // Point of use: never consult a lane accumulator or label whose parity
    // no longer matches.
    faultStream(stream);
    return {ReleaseStatus::Faulted, {}, "accumulator parity at release"};
  }
  // Nonmalleable declassification, same rule as the pipeline exit: the
  // digest carries (c, i); it leaves as (bottom, i) only when p may
  // declassify it (Eq. 1).
  const Label from = st.label;
  const Label to{lattice::Conf::bottom(), from.i};
  const auto decision = lattice::checkDeclassify(from, to, p);
  if (!decision.allowed) return {ReleaseStatus::Refused, {}, decision.reason};
  return {ReleaseStatus::Ok, digestInternal(stream), {}};
}

void GhashUnit::closeStream(unsigned stream) {
  Stream& st = streams_.at(stream);
  st = Stream{};  // zeroizes lanes and FIFO
  restampStream(st);
  for (auto& s : stages_) {
    if (s.valid && s.stream == stream) s = GhashStageSlot{};
  }
}

lattice::Conf GhashUnit::meetConf() const {
  lattice::Conf m = lattice::Conf::top();
  for (const auto& s : stages_) {
    if (s.valid) m = m.meet(s.tag.c);
  }
  for (const auto& st : streams_) {
    if (st.open && (st.absorbed > 0 || st.issued > 0))
      m = m.meet(st.label.c);
  }
  return m;
}

GhashStageSlot GhashUnit::computeStage(unsigned idx, GhashStageSlot s) const {
  if (!s.valid) return s;
  const KeySlot& k = keys_[s.key_slot];
  if (!k.valid || s.power >= k.powers.size()) return GhashStageSlot{};
  // 8 of the 32 nibble-steps of the Shoup multiply — the exact host
  // algorithm, restarted at this stage's step boundary.
  s.z = k.powers[s.power].mulSteps(s.x, s.z, 8 * idx, 8);
  s.data_parity = tagDataParity(s.x, s.z);
  return s;
}

std::vector<GhashScrubFinding> GhashUnit::tick(std::uint64_t now) {
  std::vector<GhashScrubFinding> findings;

  // Writeback: the slot leaving the last stage has all 32 steps applied.
  GhashStageSlot& out = stages_[kGhashStages - 1];
  if (out.valid) {
    Stream& st = streams_[out.stream];
    if (st.open && !st.faulted) {
      st.lanes[out.lane] = out.z;
      ++st.written;
      restampStream(st);
    }
  }

  // Shift: each slot advances one stage, computing its 8 steps on entry.
  for (unsigned s = kGhashStages - 1; s >= 1; --s) {
    stages_[s] = computeStage(s, stages_[s - 1]);
  }
  stages_[0] = GhashStageSlot{};

  // Issue: round-robin over streams with a pending block and a ready H.
  for (unsigned k = 0; k < kGhashStreams; ++k) {
    const unsigned sid = (issue_rr_ + k) % kGhashStreams;
    Stream& st = streams_[sid];
    if (!st.open || st.faulted || st.fifo.empty()) continue;
    const KeySlot& key = keys_[st.key_slot];
    if (!key.valid || now < key.ready_at) continue;
    if (hardened_ && keyChecksum(key) != key.checksum) {
      // Point of use: never multiply by a corrupted table.
      findings.push_back({FaultSite::GhashKeyTable, st.key_slot, st.user,
                          "H-table checksum at issue; slot invalidated"});
      invalidateKey(st.key_slot);  // faults this stream (and its siblings)
      continue;
    }
    const std::uint64_t i = st.issued;
    const unsigned lane = static_cast<unsigned>(i % kGhashLanes);
    // Lane Horner: interior blocks multiply by H^d; the last block of each
    // lane by H^(n - i), which makes the final digest the plain XOR of the
    // lanes (exponents n-i are exactly what GHASH assigns block i).
    const bool lane_last = i + kGhashLanes >= st.total;
    const unsigned power =
        lane_last ? static_cast<unsigned>(st.total - i) - 1 : kGhashLanes - 1;
    GhashStageSlot slot;
    slot.valid = true;
    slot.stream = sid;
    slot.lane = lane;
    slot.key_slot = st.key_slot;
    slot.power = power;
    slot.x = xorTags(st.lanes[lane], st.fifo.front());
    st.fifo.pop_front();
    slot.z = aes::Tag128{};
    slot.tag = st.label;
    stampStage(slot);
    ++st.issued;
    ++blocks_;
    issue_rr_ = (sid + 1) % kGhashStreams;
    stages_[0] = computeStage(0, slot);
    break;
  }
  return findings;
}

bool GhashUnit::faultFlipStageBit(unsigned stage, unsigned bit) {
  GhashStageSlot& s = stages_.at(stage % kGhashStages);
  if (!s.valid || bit >= 256) return false;
  aes::Tag128& t = bit < 128 ? s.x : s.z;
  const unsigned b = bit % 128;
  t[b / 8] ^= static_cast<std::uint8_t>(1u << (b % 8));
  return true;
}

bool GhashUnit::faultFlipStageTagBit(unsigned stage, unsigned bit) {
  GhashStageSlot& s = stages_.at(stage % kGhashStages);
  if (!s.valid || bit >= 32) return false;
  Label& t = s.tag;
  if (bit < 16) {
    t.c = lattice::Conf{lattice::CatSet{
        static_cast<std::uint16_t>(t.c.cats.mask() ^ (1u << bit))}};
  } else {
    t.i = lattice::Integ{lattice::CatSet{
        static_cast<std::uint16_t>(t.i.cats.mask() ^ (1u << (bit - 16)))}};
  }
  return true;
}

bool GhashUnit::faultFlipAccBit(unsigned stream, unsigned bit) {
  Stream& st = streams_.at(stream % kGhashStreams);
  if (!st.open || bit >= 128 * kGhashLanes) return false;
  aes::Tag128& lane = st.lanes[bit / 128];
  const unsigned b = bit % 128;
  lane[b / 8] ^= static_cast<std::uint8_t>(1u << (b % 8));
  return true;
}

bool GhashUnit::faultFlipKeyTableBit(unsigned slot, unsigned bit) {
  KeySlot& k = keys_.at(slot % kGhashKeySlots);
  const unsigned total = kGhashLanes * 16 * 128;
  if (!k.valid || bit >= total) return false;
  const unsigned power = bit / (16 * 128);
  const unsigned entry = (bit / 128) % 16;
  return k.powers[power].flipTableBit(entry, bit % 128);
}

void GhashUnit::restampStream(Stream& st) {
  std::uint8_t acc = 0;
  for (const auto& lane : st.lanes) {
    for (auto b : lane) acc ^= b;
  }
  st.parity = parity64(acc) != labelParity(st.label);
}

bool GhashUnit::streamParityOk(const Stream& st) const {
  std::uint8_t acc = 0;
  for (const auto& lane : st.lanes) {
    for (auto b : lane) acc ^= b;
  }
  return st.parity == (parity64(acc) != labelParity(st.label));
}

void GhashUnit::faultStream(unsigned sid) {
  Stream& st = streams_[sid];
  st.faulted = true;
  // Fail secure: zeroize the partial digest and pending blocks; nothing of
  // the stream's state is consulted again.
  st.lanes = {};
  st.fifo.clear();
  restampStream(st);
  for (auto& s : stages_) {
    if (s.valid && s.stream == sid) s = GhashStageSlot{};
  }
}

std::vector<GhashScrubFinding> GhashUnit::scrubFast() {
  std::vector<GhashScrubFinding> findings;
  if (!hardened_) return findings;
  for (unsigned i = 0; i < kGhashStages; ++i) {
    GhashStageSlot& s = stages_[i];
    if (!s.valid) continue;
    const bool tag_bad = s.tag_parity != labelParity(s.tag);
    const bool data_bad = s.data_parity != tagDataParity(s.x, s.z);
    if (!tag_bad && !data_bad) continue;
    const unsigned sid = s.stream;
    findings.push_back({tag_bad ? FaultSite::GhashStageTag
                                : FaultSite::GhashStage,
                        i, streams_[sid].user,
                        "ghash stage " + std::to_string(i) +
                            " parity mismatch; stream faulted"});
    s = GhashStageSlot{};
    faultStream(sid);
  }
  for (unsigned sid = 0; sid < kGhashStreams; ++sid) {
    Stream& st = streams_[sid];
    if (!st.open || st.faulted) continue;
    if (streamParityOk(st)) continue;
    findings.push_back({FaultSite::GhashAcc, sid, st.user,
                        "stream " + std::to_string(sid) +
                            " accumulator parity mismatch; faulted"});
    faultStream(sid);
  }
  return findings;
}

std::optional<GhashScrubFinding> GhashUnit::scrubKeySlot(unsigned slot) {
  if (!hardened_) return std::nullopt;
  KeySlot& k = keys_.at(slot);
  if (!k.valid || keyChecksum(k) == k.checksum) return std::nullopt;
  GhashScrubFinding f{FaultSite::GhashKeyTable, slot, 0,
                      "H-table checksum on slot " + std::to_string(slot) +
                          "; invalidated"};
  invalidateKey(slot);
  return f;
}

unsigned GhashUnit::activeStreams() const {
  unsigned n = 0;
  for (const auto& st : streams_) {
    if (st.open) ++n;
  }
  return n;
}

bool GhashUnit::anyValid() const {
  for (const auto& s : stages_) {
    if (s.valid) return true;
  }
  return false;
}

}  // namespace aesifc::accel
