#include "accel/key_store.h"

#include <stdexcept>

namespace aesifc::accel {
namespace {

// Position-sensitive 64-bit rolling checksum (FNV-1a step). Models the
// CRC/SECDED word real key RAMs carry: any small perturbation — including
// several accumulated single-bit upsets — changes the digest, where a
// folded parity bit lets an even number of flips cancel.
constexpr std::uint64_t kChecksumBasis = 1469598103934665603ull;

std::uint64_t checksumStep(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * 1099511628211ull;
}

}  // namespace

// The checksum of reset state is not zero, so power-on must stamp the
// digests to match the zeroed storage or the first scrub visit would
// "detect" corruption in never-written cells/slots.
KeyScratchpad::KeyScratchpad(SecurityMode mode) : mode_{mode} {
  for (auto& s : cell_sum_) s = checksumStep(kChecksumBasis, 0);
}

void KeyScratchpad::configureCells(unsigned base, unsigned count,
                                   const Label& l) {
  if (base + count > kScratchpadCells)
    throw std::out_of_range("configureCells: range exceeds scratchpad");
  for (unsigned i = 0; i < count; ++i) {
    tags_[base + i] = l;
    tag_parity_[base + i] = labelParity(l);
  }
}

bool KeyScratchpad::writeCell(unsigned idx, std::uint64_t value,
                              const Label& requester) {
  if (idx >= kScratchpadCells) return false;
  // Writing is a flow from the requester into the cell: the requester's
  // label must flow to the cell's tag.
  if (mode_ == SecurityMode::Protected && !requester.flowsTo(tags_[idx])) {
    return false;
  }
  cells_[idx] = value;
  cell_sum_[idx] = checksumStep(kChecksumBasis, value);
  return true;
}

std::optional<std::uint64_t> KeyScratchpad::readCell(
    unsigned idx, const Label& requester) const {
  if (idx >= kScratchpadCells) return std::nullopt;
  // Reading is a confidentiality flow from the cell to the requester; it
  // does not assert trust, so only the confidentiality order is checked.
  if (mode_ == SecurityMode::Protected &&
      !tags_[idx].c.flowsTo(requester.c)) {
    return std::nullopt;
  }
  return cells_[idx];
}

bool KeyScratchpad::cellParityOk(unsigned idx) const {
  return checksumStep(kChecksumBasis, cells_.at(idx)) == cell_sum_.at(idx);
}

bool KeyScratchpad::tagParityOk(unsigned idx) const {
  return labelParity(tags_.at(idx)) == tag_parity_.at(idx);
}

void KeyScratchpad::failSecure(unsigned idx) {
  cells_.at(idx) = 0;
  cell_sum_.at(idx) = checksumStep(kChecksumBasis, 0);
  // Quarantine: unreadable by everyone (top confidentiality); a corrupted
  // tag must only ever fail upward, never toward public.
  tags_.at(idx) = Label{lattice::Conf::top(), lattice::Integ::bottom()};
  tag_parity_.at(idx) = labelParity(tags_.at(idx));
}

bool KeyScratchpad::faultFlipCellBit(unsigned idx, unsigned bit) {
  if (idx >= kScratchpadCells || bit >= 64) return false;
  cells_[idx] ^= std::uint64_t{1} << bit;
  return true;
}

bool KeyScratchpad::faultFlipTagBit(unsigned idx, unsigned bit) {
  if (idx >= kScratchpadCells || bit >= 32) return false;
  Label& t = tags_[idx];
  if (bit < 16) {
    t.c = lattice::Conf{lattice::CatSet{
        static_cast<std::uint16_t>(t.c.cats.mask() ^ (1u << bit))}};
  } else {
    t.i = lattice::Integ{lattice::CatSet{
        static_cast<std::uint16_t>(t.i.cats.mask() ^ (1u << (bit - 16)))}};
  }
  return true;
}

RoundKeyRam::RoundKeyRam() {
  for (unsigned s = 0; s < kRoundKeySlots; ++s)
    sum_[s] = computeChecksum(slots_[s]);
}

void RoundKeyRam::store(unsigned slot, aes::ExpandedKey key,
                        lattice::Conf key_conf, const Label& owner) {
  auto& s = slots_.at(slot);
  s.valid = true;
  s.key = std::move(key);
  s.key_conf = key_conf;
  s.owner = owner;
  sum_.at(slot) = computeChecksum(s);
}

void RoundKeyRam::clear(unsigned slot) {
  slots_.at(slot) = KeySlot{};
  sum_.at(slot) = computeChecksum(slots_.at(slot));
}

std::uint64_t RoundKeyRam::computeChecksum(const KeySlot& s) const {
  std::uint64_t h = kChecksumBasis;
  for (const auto& rk : s.key.round_keys) {
    for (unsigned b = 0; b < 16; ++b) h = checksumStep(h, rk[b]);
  }
  h = checksumStep(h, s.key_conf.cats.mask());
  h = checksumStep(h, s.owner.c.cats.mask());
  h = checksumStep(h, static_cast<std::uint64_t>(s.owner.i.cats.mask()) << 1 |
                          (s.valid ? 1 : 0));
  return h;
}

bool RoundKeyRam::slotParityOk(unsigned slot) const {
  return computeChecksum(slots_.at(slot)) == sum_.at(slot);
}

bool RoundKeyRam::faultFlipKeyBit(unsigned slot, unsigned round, unsigned byte,
                                  unsigned bit) {
  auto& s = slots_.at(slot % kRoundKeySlots);
  if (!s.valid || bit >= 8 || byte >= 16) return false;
  if (round >= s.key.round_keys.size()) return false;
  s.key.round_keys[round][byte] ^= static_cast<std::uint8_t>(1u << bit);
  return true;
}

}  // namespace aesifc::accel
