#include "accel/key_store.h"

#include <stdexcept>

namespace aesifc::accel {

void KeyScratchpad::configureCells(unsigned base, unsigned count,
                                   const Label& l) {
  if (base + count > kScratchpadCells)
    throw std::out_of_range("configureCells: range exceeds scratchpad");
  for (unsigned i = 0; i < count; ++i) tags_[base + i] = l;
}

bool KeyScratchpad::writeCell(unsigned idx, std::uint64_t value,
                              const Label& requester) {
  if (idx >= kScratchpadCells) return false;
  // Writing is a flow from the requester into the cell: the requester's
  // label must flow to the cell's tag.
  if (mode_ == SecurityMode::Protected && !requester.flowsTo(tags_[idx])) {
    return false;
  }
  cells_[idx] = value;
  return true;
}

std::optional<std::uint64_t> KeyScratchpad::readCell(
    unsigned idx, const Label& requester) const {
  if (idx >= kScratchpadCells) return std::nullopt;
  // Reading is a confidentiality flow from the cell to the requester; it
  // does not assert trust, so only the confidentiality order is checked.
  if (mode_ == SecurityMode::Protected &&
      !tags_[idx].c.flowsTo(requester.c)) {
    return std::nullopt;
  }
  return cells_[idx];
}

void RoundKeyRam::store(unsigned slot, aes::ExpandedKey key,
                        lattice::Conf key_conf, const Label& owner) {
  auto& s = slots_.at(slot);
  s.valid = true;
  s.key = std::move(key);
  s.key_conf = key_conf;
  s.owner = owner;
}

void RoundKeyRam::clear(unsigned slot) { slots_.at(slot) = KeySlot{}; }

}  // namespace aesifc::accel
