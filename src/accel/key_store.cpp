#include "accel/key_store.h"

#include <stdexcept>

namespace aesifc::accel {

void KeyScratchpad::configureCells(unsigned base, unsigned count,
                                   const Label& l) {
  if (base + count > kScratchpadCells)
    throw std::out_of_range("configureCells: range exceeds scratchpad");
  for (unsigned i = 0; i < count; ++i) {
    tags_[base + i] = l;
    tag_parity_[base + i] = labelParity(l);
  }
}

bool KeyScratchpad::writeCell(unsigned idx, std::uint64_t value,
                              const Label& requester) {
  if (idx >= kScratchpadCells) return false;
  // Writing is a flow from the requester into the cell: the requester's
  // label must flow to the cell's tag.
  if (mode_ == SecurityMode::Protected && !requester.flowsTo(tags_[idx])) {
    return false;
  }
  cells_[idx] = value;
  cell_parity_[idx] = parity64(value);
  return true;
}

std::optional<std::uint64_t> KeyScratchpad::readCell(
    unsigned idx, const Label& requester) const {
  if (idx >= kScratchpadCells) return std::nullopt;
  // Reading is a confidentiality flow from the cell to the requester; it
  // does not assert trust, so only the confidentiality order is checked.
  if (mode_ == SecurityMode::Protected &&
      !tags_[idx].c.flowsTo(requester.c)) {
    return std::nullopt;
  }
  return cells_[idx];
}

bool KeyScratchpad::cellParityOk(unsigned idx) const {
  return parity64(cells_.at(idx)) == cell_parity_.at(idx);
}

bool KeyScratchpad::tagParityOk(unsigned idx) const {
  return labelParity(tags_.at(idx)) == tag_parity_.at(idx);
}

void KeyScratchpad::failSecure(unsigned idx) {
  cells_.at(idx) = 0;
  cell_parity_.at(idx) = false;
  // Quarantine: unreadable by everyone (top confidentiality); a corrupted
  // tag must only ever fail upward, never toward public.
  tags_.at(idx) = Label{lattice::Conf::top(), lattice::Integ::bottom()};
  tag_parity_.at(idx) = labelParity(tags_.at(idx));
}

bool KeyScratchpad::faultFlipCellBit(unsigned idx, unsigned bit) {
  if (idx >= kScratchpadCells || bit >= 64) return false;
  cells_[idx] ^= std::uint64_t{1} << bit;
  return true;
}

bool KeyScratchpad::faultFlipTagBit(unsigned idx, unsigned bit) {
  if (idx >= kScratchpadCells || bit >= 32) return false;
  Label& t = tags_[idx];
  if (bit < 16) {
    t.c = lattice::Conf{lattice::CatSet{
        static_cast<std::uint16_t>(t.c.cats.mask() ^ (1u << bit))}};
  } else {
    t.i = lattice::Integ{lattice::CatSet{
        static_cast<std::uint16_t>(t.i.cats.mask() ^ (1u << (bit - 16)))}};
  }
  return true;
}

void RoundKeyRam::store(unsigned slot, aes::ExpandedKey key,
                        lattice::Conf key_conf, const Label& owner) {
  auto& s = slots_.at(slot);
  s.valid = true;
  s.key = std::move(key);
  s.key_conf = key_conf;
  s.owner = owner;
  parity_.at(slot) = computeParity(s);
}

void RoundKeyRam::clear(unsigned slot) {
  slots_.at(slot) = KeySlot{};
  parity_.at(slot) = computeParity(slots_.at(slot));
}

bool RoundKeyRam::computeParity(const KeySlot& s) const {
  std::uint64_t acc = 0;
  for (const auto& rk : s.key.round_keys) {
    for (unsigned b = 0; b < 16; ++b) acc ^= static_cast<std::uint64_t>(rk[b])
                                             << (8 * (b % 8));
  }
  acc ^= static_cast<std::uint64_t>(s.key_conf.cats.mask());
  acc ^= static_cast<std::uint64_t>(s.owner.c.cats.mask()) << 16;
  acc ^= static_cast<std::uint64_t>(s.owner.i.cats.mask()) << 32;
  return parity64(acc) != s.valid;  // fold validity in so clear() differs
}

bool RoundKeyRam::slotParityOk(unsigned slot) const {
  return computeParity(slots_.at(slot)) == parity_.at(slot);
}

bool RoundKeyRam::faultFlipKeyBit(unsigned slot, unsigned round, unsigned byte,
                                  unsigned bit) {
  auto& s = slots_.at(slot % kRoundKeySlots);
  if (!s.valid || bit >= 8 || byte >= 16) return false;
  if (round >= s.key.round_keys.size()) return false;
  s.key.round_keys[round][byte] ^= static_cast<std::uint8_t>(1u << bit);
  return true;
}

}  // namespace aesifc::accel
