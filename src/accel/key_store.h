#pragma once
// Key storage: the 512-bit key scratchpad of Fig. 5 (eight 64-bit cells,
// each with an associated security tag) feeding a round-key RAM whose slots
// hold expanded keys (the accelerator expands a key once at load time; the
// pipeline then reads per-round keys by slot, which is what lets blocks of
// different users be in flight concurrently).
//
// In Protected mode every cell access is tag-checked before it happens:
// a buffer overrun that would overwrite another user's key is blocked and
// reported, exactly the Fig. 5 scenario. In Baseline mode the checks are
// skipped — the scratchpad behaves like the unprotected design the paper's
// baseline models.

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "aes/key_schedule.h"
#include "accel/types.h"

namespace aesifc::accel {

inline constexpr unsigned kScratchpadCells = 8;   // 8 x 64 bits = 512 bits
inline constexpr unsigned kRoundKeySlots = 8;     // expanded-key RAM slots

class KeyScratchpad {
 public:
  explicit KeyScratchpad(SecurityMode mode);

  // Arbiter-side: (re)assign the security level of a range of cells before
  // a user writes its key (the paper's "arbiter accepts the request and
  // configures the cells with l(Eve)").
  void configureCells(unsigned base, unsigned count, const Label& l);

  // Returns false (and does not write) if the requester's label does not
  // match the cell's tag in Protected mode.
  bool writeCell(unsigned idx, std::uint64_t value, const Label& requester);

  // Returns nullopt if the requester may not read the cell.
  std::optional<std::uint64_t> readCell(unsigned idx,
                                        const Label& requester) const;

  // Raw access for expansion hardware / tests (no checks).
  std::uint64_t rawCell(unsigned idx) const { return cells_.at(idx); }
  const Label& cellLabel(unsigned idx) const { return tags_.at(idx); }

  // --- Fail-secure hardening -------------------------------------------------
  // Each cell stores a checksum word over its data (modelling a per-cell
  // CRC/SECDED word) and a parity bit over its tag, written together with
  // the protected state. Tags are swept by the every-cycle fast scrub ring,
  // so one parity bit suffices there (at most one upset can land between
  // checks); cell data is only visited by the slow ring, where upsets can
  // accumulate — a full checksum keeps multi-bit corruption detectable.
  bool cellParityOk(unsigned idx) const;
  bool tagParityOk(unsigned idx) const;
  // Fail-secure response to a parity mismatch: zeroize the cell and force
  // its tag *upward* to the quarantine point (top confidentiality, bottom
  // integrity) so a corrupted tag can never declassify the cell. The cell
  // stays quarantined until the arbiter re-runs configureCells.
  void failSecure(unsigned idx);

  // Fault-injection ports (model single-event upsets; parity is *not*
  // updated). Return false when the target does not exist.
  bool faultFlipCellBit(unsigned idx, unsigned bit);
  bool faultFlipTagBit(unsigned idx, unsigned bit);  // bit 0..31 over (c,i)

 private:
  SecurityMode mode_;
  std::array<std::uint64_t, kScratchpadCells> cells_{};
  std::array<Label, kScratchpadCells> tags_{};
  std::array<std::uint64_t, kScratchpadCells> cell_sum_{};
  std::array<bool, kScratchpadCells> tag_parity_{};
};

// One expanded key with its security metadata.
struct KeySlot {
  bool valid = false;
  aes::ExpandedKey key;
  // Confidentiality of the key material itself (ck in Section 3.2.1); the
  // master key carries top.
  lattice::Conf key_conf{};
  // Label of the owner that loaded it (cu, iu).
  Label owner{};
};

class RoundKeyRam {
 public:
  RoundKeyRam();
  void store(unsigned slot, aes::ExpandedKey key, lattice::Conf key_conf,
             const Label& owner);
  void clear(unsigned slot);
  bool valid(unsigned slot) const { return slots_.at(slot).valid; }
  const KeySlot& slot(unsigned s) const { return slots_.at(s); }
  const aes::RoundKey& roundKey(unsigned slot, unsigned round) const {
    return slots_.at(slot).key.round_keys.at(round);
  }
  unsigned rounds(unsigned slot) const { return slots_.at(slot).key.rounds(); }

  // --- Fail-secure hardening -------------------------------------------------
  // One checksum word per slot over the whole expanded key plus its
  // security metadata, written at store() time (models a per-slot CRC: the
  // RAM is only integrity-checked at submit, completion, and slow-ring
  // scrub visits, so upsets can accumulate between checks — a single parity
  // bit would let an even number of flips cancel out and a corrupted key
  // serve traffic). Corruption is detected at the next check; the
  // fail-secure response (zeroization) is driven by the accelerator, which
  // also has to squash in-flight blocks referencing the slot.
  bool slotParityOk(unsigned slot) const;

  bool faultFlipKeyBit(unsigned slot, unsigned round, unsigned byte,
                       unsigned bit);

 private:
  std::uint64_t computeChecksum(const KeySlot& s) const;

  std::array<KeySlot, kRoundKeySlots> slots_{};
  std::array<std::uint64_t, kRoundKeySlots> sum_{};
};

}  // namespace aesifc::accel
