#pragma once
// GCM sequencer: the control engine that composes AES-GCM (SP 800-38D)
// from the two tagged datapaths on the device — the 30-stage AES pipe
// (CTR keystream, H = E(K, 0^128), E(K, J0)) and the pipelined GHASH
// unit. Internal AES blocks ride the owning user's own input queue as
// ordinary StageSlots marked `gcm_internal`; at the pipeline exit they are
// handed back here instead of being declassified to an output queue, so a
// GCM operation performs exactly ONE declassification: when its finished
// digest leaves the GHASH unit under the same nonmalleable-downgrade rule
// as ciphertext at the pipeline exit. An open whose tag comparison fails
// is a verdict (auth_failed), not a fault; a fault anywhere in the op's
// state (stage parity, accumulator parity, H-table checksum, key
// zeroization mid-op) fail-secures the whole op — nothing is released.

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "accel/ghash_unit.h"
#include "accel/pipeline.h"
#include "accel/types.h"

namespace aesifc::accel {

class AesAccelerator;

inline constexpr unsigned kGcmOps = 8;  // concurrent GCM operations

// Role of an internal AES block in flight for the sequencer.
enum class GcmRole : std::uint8_t {
  None = 0,
  DeriveH = 1,    // E(K, 0^128): the hash subkey (gcm_aux = H epoch)
  EncryptJ0 = 2,  // E(K, J0): the tag mask
  Counter = 3,    // CTR keystream block (gcm_aux = block index)
};

class GcmSequencer {
 public:
  GcmSequencer(AesAccelerator& acc, GhashUnit& ghash)
      : acc_{acc}, ghash_{ghash} {}

  // Accept one GCM operation (seal or open). False when no op slot is
  // free, the key slot is unusable, or the IV is empty.
  bool submit(GcmRequest req);
  std::optional<GcmResponse> fetch(unsigned user);
  std::size_t pending(unsigned user) const;

  // Meet over the confidentiality of every active op's label — folded into
  // the Fig. 8 stall meet together with the pipeline's and GHASH unit's.
  lattice::Conf meetConf() const;

  // True while any op (including one draining its in-flight internal
  // blocks) references the AES key slot; key zeroization must wait.
  bool usesKeySlot(unsigned slot) const;

  unsigned activeOps() const;
  bool idle() const { return activeOps() == 0; }

  // One clock of every op state machine: at most one internal AES submit
  // and one GHASH absorb per op per cycle. Frozen during stall cycles.
  void pump();

  // Pipeline-exit hand-back of an internal block (never declassified).
  void deliver(const StageSlot& s);
  // An internal block was squashed by the fail-secure path: the owning op
  // aborts (fault_aborted) — a definite outcome, never a silent drop.
  void deliverAbort(const StageSlot& s);
  // The AES key slot was re-stored, cleared, or zeroized: its H is stale;
  // every op bound to it fault-aborts (retryable by the driver).
  void noteKeySlotInvalid(unsigned key_slot);

 private:
  struct Op {
    bool active = false;
    bool draining = false;  // response emitted; internal blocks in flight
    GcmRequest req;
    Label label{};  // join(user conf, key conf) at user integrity
    std::uint64_t accept_cycle = 0;
    unsigned inflight = 0;  // internal AES blocks in the pipe
    // J0 derivation (96-bit IV: immediate; otherwise via a GHASH stream).
    bool j0_ready = false;
    aes::Block j0{};
    int iv_stream = -1;
    std::uint64_t iv_blocks = 0, iv_fed = 0;
    // Tag mask E(K, J0).
    bool ekj0_sent = false, ekj0_ready = false;
    aes::Tag128 ekj0{};
    // CTR keystream.
    aes::Block next_ctr{};
    std::uint64_t ctr_sent = 0, ks_applied = 0;
    std::vector<bool> ks_have;
    // Main hash stream: AAD blocks, then ciphertext blocks, then lengths.
    int stream = -1;
    std::uint64_t aad_blocks = 0, ct_blocks = 0, total_blocks = 0, fed = 0;
    std::vector<std::uint8_t> out;  // seal: ciphertext; open: plaintext
  };

  void stepOp(unsigned idx);
  void finalize(unsigned idx);
  // Fail-secure abort: emits a fault_aborted response, closes the op's
  // GHASH streams, and holds the slot until in-flight blocks drain.
  void abortOp(unsigned idx);
  void freeOp(Op& op);
  void emit(GcmResponse resp);
  bool submitInternal(unsigned idx, GcmRole role, const aes::Block& data,
                      std::uint32_t aux);

  AesAccelerator& acc_;
  GhashUnit& ghash_;
  std::array<Op, kGcmOps> ops_{};
  // H derivation dedup: one DeriveH in flight per key slot; the epoch
  // guards against a stale H landing after the slot was re-keyed.
  std::array<bool, kGhashKeySlots> h_pending_{};
  std::array<std::uint32_t, kGhashKeySlots> h_epoch_{};
  std::vector<std::deque<GcmResponse>> out_;  // per-user completions
};

}  // namespace aesifc::accel
