#pragma once
// Top-level accelerator (Fig. 4): AXI-like host interface with per-user
// queues, arbiter, key scratchpad + round-key RAM, configuration registers,
// debug peripheral, the pipelined AES datapath, and — in Protected mode —
// the runtime enforcement the paper adds: per-stage security tags, tag
// checks on the scratchpad / debug port / config registers, the meet-gated
// stall rule with an overflow output buffer (Fig. 8), and nonmalleable
// declassification of ciphertext at the pipeline exit (Sections 3.2.1-2).
//
// The same class implements both the unprotected baseline and the protected
// design (the paper derives the protected design from the baseline with a
// ~70-line delta; here the delta is the SecurityMode checks).

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "accel/config_regs.h"
#include "accel/key_store.h"
#include "accel/pipeline.h"
#include "accel/types.h"
#include "lattice/tag.h"

namespace aesifc::accel {

struct AcceleratorConfig {
  SecurityMode mode = SecurityMode::Protected;
  unsigned max_rounds = 10;        // 10 => 30-stage AES-128 pipeline
  unsigned out_buffer_depth = 32;  // protected-mode overflow buffer
  bool coarse_grained = false;     // drain pipeline between users (Section 1)
  // Fold the tags of blocks waiting at the input into the Fig. 8 stall
  // meet (a granted stall also delays their acceptance). True is our
  // strengthened rule; false is the paper's stage-only meet — kept as an
  // ablation knob that re-opens an acceptance-delay side channel
  // (see bench_ablation).
  bool meet_includes_inputs = true;
};

class AesAccelerator {
 public:
  explicit AesAccelerator(AcceleratorConfig cfg);

  SecurityMode mode() const { return cfg_.mode; }
  const AcceleratorConfig& config() const { return cfg_; }

  // --- Users ---------------------------------------------------------------
  // Registers a principal; returns its user id. The supervisor should be
  // registered like any other user (with Principal::supervisor()).
  unsigned addUser(Principal p);
  const Principal& principal(unsigned user) const;

  // --- Key path (Fig. 5) ----------------------------------------------------
  // Arbiter-side cell allocation: retags `count` cells at `base` with the
  // user's label before the user stores its key.
  void configureKeyCells(unsigned user, unsigned base, unsigned count);
  // One 64-bit store into the scratchpad; tag-checked in Protected mode.
  bool writeKeyCell(unsigned user, unsigned cell, std::uint64_t value);
  // Expand the key material in cells [base, base + keyBytes/8) into a
  // round-key RAM slot. `key_conf` is the confidentiality of the key itself
  // (ck); pass Conf::top() for the master key.
  bool loadKey(unsigned user, unsigned slot, unsigned cell_base,
               aes::KeySize ks, lattice::Conf key_conf);

  // True while any in-flight pipeline block references `slot` (key updates
  // and zeroization must wait for this to clear).
  bool keySlotBusy(unsigned slot) const;

  // Key zeroization: destroys a round-key slot. A destructive write, so it
  // requires the requester's integrity to dominate the owner's (the owner
  // itself or the supervisor); refused while blocks using the slot are
  // still in flight. Baseline mode skips the integrity check.
  bool clearKey(unsigned user, unsigned slot);

  const KeyScratchpad& scratchpad() const { return scratchpad_; }
  const RoundKeyRam& roundKeys() const { return round_keys_; }

  // The 8-bit hardware tag (4 conf + 4 integ, Section 4) of a pipeline
  // stage under the SoC palette; nullopt if the stage is empty or its label
  // is outside the palette.
  std::optional<lattice::HwTag> stageHwTag(unsigned stage) const;

  // --- Config registers (Section 3.2.4) --------------------------------------
  std::uint32_t readConfig(const std::string& name) const;
  bool writeConfig(unsigned user, const std::string& name, std::uint32_t v);

  // --- Debug peripheral (Section 3.1, attack of [10]) -------------------------
  // Reads the raw state held in pipeline stage `stage`. Requires
  // debug_enable; tag-checked against the reader in Protected mode.
  std::optional<aes::Block> debugReadStage(unsigned user, unsigned stage);

  // --- Data path --------------------------------------------------------------
  // Enqueue one block. Returns false if the key slot is unusable (invalid,
  // or needs more rounds than the pipeline has).
  bool submit(BlockRequest req);
  void setReceiverReady(unsigned user, bool ready);
  std::optional<BlockResponse> fetchOutput(unsigned user);
  // Head of the user's output queue without consuming it (the MMIO window's
  // DATA_OUT registers mirror this).
  const BlockResponse* peekOutput(unsigned user) const;
  std::size_t pendingInputs(unsigned user) const;
  std::size_t pendingOutputs(unsigned user) const;

  // --- Clock -----------------------------------------------------------------
  void tick();
  void run(unsigned cycles);
  std::uint64_t cycle() const { return cycle_; }
  const AesPipeline& pipeline() const { return pipeline_; }

  // --- Telemetry ----------------------------------------------------------
  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t completed = 0;   // delivered to an output queue
    std::uint64_t suppressed = 0;  // declassification refused
    std::uint64_t stalled_cycles = 0;
    std::uint64_t denied_stalls = 0;
    std::uint64_t buffered = 0;
    std::uint64_t dropped = 0;  // overflow buffer full
  };
  const Stats& stats() const { return stats_; }
  const std::vector<SecurityEvent>& events() const { return events_; }
  std::size_t eventCount(SecurityEventKind k) const;

 private:
  struct PendingOutput {
    BlockResponse resp;
    Label tag;
  };

  void recordEvent(SecurityEventKind kind, unsigned user, std::string detail);
  std::optional<StageSlot> arbiterPick();
  void routeCompleted(StageSlot slot, bool to_buffer);
  void drainBuffer();

  AcceleratorConfig cfg_;
  std::vector<Principal> users_;
  KeyScratchpad scratchpad_;
  RoundKeyRam round_keys_;
  ConfigRegisters config_regs_;
  AesPipeline pipeline_;

  std::vector<std::deque<StageSlot>> input_queues_;
  std::vector<std::deque<BlockResponse>> output_queues_;
  std::vector<bool> receiver_ready_;
  std::deque<PendingOutput> overflow_buffer_;

  unsigned rr_next_ = 0;      // round-robin pointer
  unsigned coarse_owner_ = 0; // current owner in coarse-grained mode
  bool coarse_active_ = false;

  std::uint64_t cycle_ = 0;
  Stats stats_;
  std::vector<SecurityEvent> events_;
};

}  // namespace aesifc::accel
