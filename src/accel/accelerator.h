#pragma once
// Top-level accelerator (Fig. 4): AXI-like host interface with per-user
// queues, arbiter, key scratchpad + round-key RAM, configuration registers,
// debug peripheral, the pipelined AES datapath, and — in Protected mode —
// the runtime enforcement the paper adds: per-stage security tags, tag
// checks on the scratchpad / debug port / config registers, the meet-gated
// stall rule with an overflow output buffer (Fig. 8), and nonmalleable
// declassification of ciphertext at the pipeline exit (Sections 3.2.1-2).
//
// The same class implements both the unprotected baseline and the protected
// design (the paper derives the protected design from the baseline with a
// ~70-line delta; here the delta is the SecurityMode checks).

#include <array>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "accel/config_regs.h"
#include "accel/gcm_sequencer.h"
#include "accel/ghash_unit.h"
#include "accel/key_store.h"
#include "accel/pipeline.h"
#include "accel/types.h"
#include "lattice/tag.h"

namespace aesifc::accel {

struct AcceleratorConfig {
  SecurityMode mode = SecurityMode::Protected;
  unsigned max_rounds = 10;        // 10 => 30-stage AES-128 pipeline
  unsigned out_buffer_depth = 32;  // protected-mode overflow buffer
  bool coarse_grained = false;     // drain pipeline between users (Section 1)
  // Fold the tags of blocks waiting at the input into the Fig. 8 stall
  // meet (a granted stall also delays their acceptance). True is our
  // strengthened rule; false is the paper's stage-only meet — kept as an
  // ablation knob that re-opens an acceptance-delay side channel
  // (see bench_ablation).
  bool meet_includes_inputs = true;
  // Fail-secure fault hardening: parity on stage data/tag registers, the
  // scratchpad and its tag array, round-key slots and config registers; a
  // mismatch squashes the affected block (tags only ever fail upward) and a
  // background scrub pass sweeps idle state every cycle. Costs nothing when
  // no faults occur; off reproduces the unhardened design for comparison.
  bool fault_hardening = true;
  // Ring-buffer cap on the security event log (unbounded growth otherwise
  // under long-running traffic); oldest entries are evicted and counted in
  // eventsOverflowed(). Per-kind eventCount() stays exact regardless.
  unsigned event_log_cap = 4096;
};

class AesAccelerator {
 public:
  explicit AesAccelerator(AcceleratorConfig cfg);

  SecurityMode mode() const { return cfg_.mode; }
  const AcceleratorConfig& config() const { return cfg_; }

  // --- Users ---------------------------------------------------------------
  // Registers a principal; returns its user id. The supervisor should be
  // registered like any other user (with Principal::supervisor()).
  unsigned addUser(Principal p);
  const Principal& principal(unsigned user) const;
  // Number of registered principals (descriptor validation bound: a DMA
  // descriptor naming a user id at or past this count is malformed).
  unsigned userCount() const { return static_cast<unsigned>(users_.size()); }

  // --- Key path (Fig. 5) ----------------------------------------------------
  // Arbiter-side cell allocation: retags `count` cells at `base` with the
  // user's label before the user stores its key.
  void configureKeyCells(unsigned user, unsigned base, unsigned count);
  // One 64-bit store into the scratchpad; tag-checked in Protected mode.
  bool writeKeyCell(unsigned user, unsigned cell, std::uint64_t value);
  // Expand the key material in cells [base, base + keyBytes/8) into a
  // round-key RAM slot. `key_conf` is the confidentiality of the key itself
  // (ck); pass Conf::top() for the master key.
  bool loadKey(unsigned user, unsigned slot, unsigned cell_base,
               aes::KeySize ks, lattice::Conf key_conf);

  // True while any in-flight pipeline block references `slot` (key updates
  // and zeroization must wait for this to clear).
  bool keySlotBusy(unsigned slot) const;

  // Key zeroization: destroys a round-key slot. A destructive write, so it
  // requires the requester's integrity to dominate the owner's (the owner
  // itself or the supervisor); refused while blocks using the slot are
  // still in flight. Baseline mode skips the integrity check.
  bool clearKey(unsigned user, unsigned slot);

  const KeyScratchpad& scratchpad() const { return scratchpad_; }
  const RoundKeyRam& roundKeys() const { return round_keys_; }

  // The 8-bit hardware tag (4 conf + 4 integ, Section 4) of a pipeline
  // stage under the SoC palette; nullopt if the stage is empty or its label
  // is outside the palette.
  std::optional<lattice::HwTag> stageHwTag(unsigned stage) const;

  // --- Config registers (Section 3.2.4) --------------------------------------
  std::uint32_t readConfig(const std::string& name) const;
  bool writeConfig(unsigned user, const std::string& name, std::uint32_t v);

  // --- Debug peripheral (Section 3.1, attack of [10]) -------------------------
  // Reads the raw state held in pipeline stage `stage`. Requires
  // debug_enable; tag-checked against the reader in Protected mode.
  std::optional<aes::Block> debugReadStage(unsigned user, unsigned stage);

  // --- Data path --------------------------------------------------------------
  // Enqueue one block. Returns false if the key slot is unusable (invalid,
  // or needs more rounds than the pipeline has).
  bool submit(BlockRequest req);
  // Batch submit: enqueue a contiguous run of requests (the arbiter still
  // accepts at most one per cycle — this fills the input queue so the
  // pipeline can run back-to-back). Stops at the first refusal; returns
  // the number actually enqueued.
  std::size_t submitBatch(const std::vector<BlockRequest>& reqs);
  void setReceiverReady(unsigned user, bool ready);
  std::optional<BlockResponse> fetchOutput(unsigned user);
  // Batch drain: append every response currently queued for `user` to
  // `out`; returns the number drained.
  std::size_t fetchOutputs(unsigned user, std::vector<BlockResponse>& out);
  // Head of the user's output queue without consuming it (the MMIO window's
  // DATA_OUT registers mirror this).
  const BlockResponse* peekOutput(unsigned user) const;
  std::size_t pendingInputs(unsigned user) const;
  std::size_t pendingOutputs(unsigned user) const;

  // --- AEAD path (GCM sequencer + GHASH unit) --------------------------------
  // Enqueue one authenticated-encryption operation (seal or open). The
  // sequencer runs it end-to-end on the device: H and the CTR keystream
  // through the AES pipe, the digest through the tagged GHASH unit, and a
  // single nonmalleable declassification when the result is released.
  bool submitGcm(GcmRequest req);
  std::optional<GcmResponse> fetchGcm(unsigned user);
  std::size_t pendingGcm(unsigned user) const { return gcm_.pending(user); }
  const GhashUnit& ghash() const { return ghash_; }
  const GcmSequencer& gcm() const { return gcm_; }

  // --- Clock -----------------------------------------------------------------
  void tick();
  void run(unsigned cycles);
  // Called at the end of every tick — between clock edges, after this
  // cycle's outputs are queued but before host logic can fetch them. Lets
  // an environment model (fault injector, monitor) act on device state and
  // on freshly delivered responses even when a driver session owns the
  // clock. Pass nullptr to clear.
  void setTickHook(std::function<void()> hook) {
    tick_hook_ = std::move(hook);
  }
  std::uint64_t cycle() const { return cycle_; }
  const AesPipeline& pipeline() const { return pipeline_; }

  // --- Fault injection (campaign hooks) ------------------------------------
  // Flip one bit at a hardware site, modeling a single-event upset; parity
  // bits are deliberately NOT updated. `index` selects the stage / cell /
  // slot / register (register names are indexed via the config-register
  // name table); for RoundKey, `bit` encodes round*128 + byte*8 + bit.
  // Returns false when the target does not exist or holds no state.
  bool injectFault(FaultSite site, unsigned index, unsigned bit);
  // Host-interface perturbations: replay or lose the response at the head
  // of a user's output queue. Return false when the queue is empty.
  bool injectDuplicateOutput(unsigned user);
  bool injectDropOutput(unsigned user);

  // --- Telemetry ----------------------------------------------------------
  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t completed = 0;   // delivered to an output queue
    std::uint64_t suppressed = 0;  // declassification refused
    std::uint64_t stalled_cycles = 0;
    std::uint64_t denied_stalls = 0;
    std::uint64_t buffered = 0;
    std::uint64_t dropped = 0;  // overflow buffer full
    std::uint64_t faults_detected = 0;   // parity mismatches, point of use
    std::uint64_t faults_recovered = 0;  // restored by the scrub pass
    std::uint64_t fault_aborted = 0;     // blocks squashed fail-secure
    std::uint64_t retries = 0;           // driver-reported resubmissions
    // AEAD path (GCM sequencer).
    std::uint64_t gcm_ops = 0;           // operations accepted
    std::uint64_t gcm_ok = 0;            // completed and released
    std::uint64_t gcm_suppressed = 0;    // digest declassification refused
    std::uint64_t gcm_auth_failed = 0;   // open verdicts (tag mismatch)
    std::uint64_t gcm_fault_aborted = 0; // ops killed by the fail-secure path
  };
  const Stats& stats() const { return stats_; }
  // Zero the counters (long campaigns reset between phases); the cycle
  // counter, event log, and device state are untouched.
  void resetStats() { stats_ = Stats{}; }
  // Driver-side hook: a session retried a failed request.
  void noteRetry() { ++stats_.retries; }

  // Host-software entry into the security event ring: the service layer
  // records its health-state transitions alongside the hardware's own
  // events so one log tells the whole incident story in cycle order.
  void noteServiceEvent(unsigned user, std::string detail) {
    recordEvent(SecurityEventKind::ServiceHealth, user, std::move(detail));
  }
  // Host-software entry for the tenant-migration audit kinds (and any other
  // host-originated incident): the pool stamps the same Begun/KeyZeroized/
  // Committed triple into both shards' rings through this port.
  void noteHostEvent(SecurityEventKind kind, unsigned user,
                     std::string detail) {
    recordEvent(kind, user, std::move(detail));
  }

  const std::deque<SecurityEvent>& events() const { return events_; }
  std::size_t eventCount(SecurityEventKind k) const;
  std::uint64_t eventsOverflowed() const { return events_overflowed_; }
  // Detections/recoveries per hardware fault site (campaign reconciliation).
  const std::array<std::uint64_t, kHwFaultSites>& faultsDetectedBySite() const {
    return faults_by_site_;
  }

 private:
  friend class GcmSequencer;  // drives the datapaths on the op's behalf

  struct PendingOutput {
    BlockResponse resp;
    Label tag;
  };

  void recordEvent(SecurityEventKind kind, unsigned user, std::string detail);
  std::optional<StageSlot> arbiterPick();
  void routeCompleted(StageSlot slot, bool to_buffer);
  void drainBuffer();

  // --- Fail-secure machinery -------------------------------------------------
  bool hardened() const { return cfg_.fault_hardening; }
  void noteFault(FaultSite site, bool scrubbed, unsigned user,
                 std::string detail);
  // Deliver a fault-abort completion record so the request still terminates
  // in a definite outcome (never a silent drop).
  void deliverAbort(const StageSlot& slot);
  // Zeroize a round-key slot and squash every in-flight block referencing
  // it (their remaining rounds would otherwise read zeroed keys). Returns
  // the number of squashed blocks.
  unsigned zeroizeSlotSquash(unsigned slot);
  // Parity sweep: all stage and scratchpad-tag comparators run every cycle
  // (parallel hardware); scratchpad cells, round-key slots and config
  // registers are visited round-robin, one site per cycle.
  void scrubTick();

  AcceleratorConfig cfg_;
  std::vector<Principal> users_;
  KeyScratchpad scratchpad_;
  RoundKeyRam round_keys_;
  ConfigRegisters config_regs_;
  AesPipeline pipeline_;
  GhashUnit ghash_;
  GcmSequencer gcm_;

  std::vector<std::deque<StageSlot>> input_queues_;
  std::vector<std::deque<BlockResponse>> output_queues_;
  std::vector<bool> receiver_ready_;
  std::deque<PendingOutput> overflow_buffer_;

  unsigned rr_next_ = 0;      // round-robin pointer
  unsigned coarse_owner_ = 0; // current owner in coarse-grained mode
  bool coarse_active_ = false;

  std::uint64_t cycle_ = 0;
  Stats stats_;
  std::deque<SecurityEvent> events_;  // ring buffer, capped by event_log_cap
  std::uint64_t events_overflowed_ = 0;
  std::array<std::size_t, kSecurityEventKinds> event_counts_{};
  std::array<std::uint64_t, kHwFaultSites> faults_by_site_{};
  unsigned scrub_next_ = 0;  // round-robin pointer of the slow scrub ring
  std::function<void()> tick_hook_;
};

}  // namespace aesifc::accel
