#pragma once
// Memory-mapped host interface (the AXI/RoCC block of Fig. 4): the
// register-level programming model a device driver would use. Each user
// application gets its own aperture (`MmioWindow`), which is how the SoC's
// interconnect attributes requests to principals (the per-user tags of
// Fig. 2).
//
// Register map (byte offsets, 32-bit registers):
//   0x000 CTRL      (W)  bit0 submit-encrypt, bit1 submit-decrypt,
//                        bit2 pop-output
//   0x004 STATUS    (R)  bit0 out-ready, bit1 out-suppressed,
//                        bits[23:8] pending output count
//   0x008 KEY_SLOT  (RW) round-key slot for submits / expansion
//   0x010-0x01c DATA_IN[0..3]  (W) 128-bit input block, little-endian words
//   0x020-0x02c DATA_OUT[0..3] (R) head of the output queue
//   0x030 REQ_ID_LO (R)  0x034 REQ_ID_HI (R) id of the head output
//   0x040 KEY_ARG   (RW) cell index / cell count / conf palette index
//   0x044 KEY_LO    (W)  0x048 KEY_HI (W) 64-bit key cell staging
//   0x04c KEY_GO    (W)  1 = write staged words to cell KEY_ARG,
//                        2 = configure KEY_ARG(low byte)=base,
//                            (second byte)=count cells to this user,
//                        4 = expand cells starting at KEY_ARG(low byte)
//                            into KEY_SLOT with conf palette index in the
//                            second byte (0 = public, k = category k,
//                            15 = top/master)
//   0x050 LAST_OP_OK(R)  result of the last CTRL/KEY_GO side effect
//   0x100 CFG_DEBUG_ENABLE / 0x104 CFG_ARBITER_MODE /
//   0x108 CFG_OUT_BUF_DEPTH / 0x10c CFG_VERSION    (RW; writes go through
//                        the integrity-checked config path)
//   0x200 DEBUG_STAGE (W) stage select
//   0x210-0x21c DEBUG_DATA[0..3] (R) tag-checked stage readout (zeros when
//                        refused)
//   0x220 DEBUG_OK    (R) last debug read honored

#include <cstdint>

#include "accel/accelerator.h"

namespace aesifc::accel {

class MmioWindow {
 public:
  MmioWindow(AesAccelerator& acc, unsigned user);

  std::uint32_t read(std::uint32_t addr);
  void write(std::uint32_t addr, std::uint32_t value);

  unsigned user() const { return user_; }

  // Register offsets (public for drivers/tests).
  static constexpr std::uint32_t kCtrl = 0x000;
  static constexpr std::uint32_t kStatus = 0x004;
  static constexpr std::uint32_t kKeySlot = 0x008;
  static constexpr std::uint32_t kDataIn = 0x010;
  static constexpr std::uint32_t kDataOut = 0x020;
  static constexpr std::uint32_t kReqIdLo = 0x030;
  static constexpr std::uint32_t kReqIdHi = 0x034;
  static constexpr std::uint32_t kKeyArg = 0x040;
  static constexpr std::uint32_t kKeyLo = 0x044;
  static constexpr std::uint32_t kKeyHi = 0x048;
  static constexpr std::uint32_t kKeyGo = 0x04c;
  static constexpr std::uint32_t kLastOpOk = 0x050;
  static constexpr std::uint32_t kCfgBase = 0x100;
  static constexpr std::uint32_t kDebugStage = 0x200;
  static constexpr std::uint32_t kDebugData = 0x210;
  static constexpr std::uint32_t kDebugOk = 0x220;

 private:
  void doSubmit(bool decrypt);
  void doKeyGo(std::uint32_t op);
  lattice::Conf confFromPalette(unsigned idx) const;

  AesAccelerator& acc_;
  unsigned user_;
  std::uint64_t next_req_ = 1;

  std::uint32_t key_slot_ = 0;
  std::uint32_t key_arg_ = 0;
  std::uint32_t key_lo_ = 0, key_hi_ = 0;
  std::uint32_t data_in_[4] = {};
  std::uint32_t debug_stage_ = 0;
  bool last_ok_ = false;
  bool debug_ok_ = false;
};

}  // namespace aesifc::accel
