#include "aes/sbox.h"

#include <array>

#include "aes/gf256.h"

namespace aesifc::aes {

namespace {

std::uint8_t affine(std::uint8_t x) {
  // b_i = x_i ^ x_(i+4) ^ x_(i+5) ^ x_(i+6) ^ x_(i+7) ^ c_i, c = 0x63.
  std::uint8_t out = 0;
  for (int i = 0; i < 8; ++i) {
    const int b = ((x >> i) & 1) ^ ((x >> ((i + 4) & 7)) & 1) ^
                  ((x >> ((i + 5) & 7)) & 1) ^ ((x >> ((i + 6) & 7)) & 1) ^
                  ((x >> ((i + 7) & 7)) & 1) ^ ((0x63 >> i) & 1);
    out |= static_cast<std::uint8_t>(b << i);
  }
  return out;
}

struct Tables {
  std::array<std::uint8_t, 256> fwd{};
  std::array<std::uint8_t, 256> inv{};
  Tables() {
    for (unsigned x = 0; x < 256; ++x) {
      fwd[x] = affine(gfInv(static_cast<std::uint8_t>(x)));
    }
    for (unsigned x = 0; x < 256; ++x) inv[fwd[x]] = static_cast<std::uint8_t>(x);
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint8_t sbox(std::uint8_t x) { return tables().fwd[x]; }
std::uint8_t invSbox(std::uint8_t x) { return tables().inv[x]; }
const std::uint8_t* sboxTable() { return tables().fwd.data(); }
const std::uint8_t* invSboxTable() { return tables().inv.data(); }

}  // namespace aesifc::aes
