#pragma once
// AES block primitives (FIPS-197). The state is 16 bytes in column-major
// order: state[r + 4*c] is row r, column c; a 128-bit input block maps
// bytes in order b0..b15 to columns first, exactly as the standard.
//
// Round micro-operations are exposed individually because the accelerator
// pipeline executes one micro-op per stage (3 stages per round, Fig. 7 /
// Section 4's 30-cycle latency for AES-128).

#include <array>
#include <cstdint>

namespace aesifc::aes {

using State = std::array<std::uint8_t, 16>;
using Block = std::array<std::uint8_t, 16>;     // raw 128-bit block, b0..b15
using RoundKey = std::array<std::uint8_t, 16>;  // one 128-bit round key

enum class KeySize { Aes128, Aes192, Aes256 };

// Number of rounds N for the key size (Fig. 1: 10 / 12 / 14).
constexpr unsigned numRounds(KeySize ks) {
  switch (ks) {
    case KeySize::Aes128: return 10;
    case KeySize::Aes192: return 12;
    case KeySize::Aes256: return 14;
  }
  return 10;
}

constexpr unsigned keyBytes(KeySize ks) {
  switch (ks) {
    case KeySize::Aes128: return 16;
    case KeySize::Aes192: return 24;
    case KeySize::Aes256: return 32;
  }
  return 16;
}

State blockToState(const Block& b);
Block stateToBlock(const State& s);

// Forward micro-ops.
void subBytes(State& s);
void shiftRows(State& s);
void mixColumns(State& s);
void addRoundKey(State& s, const RoundKey& rk);

// Inverse micro-ops (for decryption).
void invSubBytes(State& s);
void invShiftRows(State& s);
void invMixColumns(State& s);

}  // namespace aesifc::aes
