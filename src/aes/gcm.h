#pragma once
// AES-GCM (NIST SP 800-38D): authenticated encryption over the AES core.
// Used by the SSL-record example workload the paper's introduction
// motivates (cloud tenants sharing one engine for TLS traffic). GHASH is
// implemented from the GF(2^128) definition; no tables are pasted.

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "aes/cipher.h"

namespace aesifc::aes {

using Tag128 = std::array<std::uint8_t, 16>;

// GF(2^128) multiplication per SP 800-38D Section 6.3 (block = bit string,
// leftmost bit is x^0), bit-at-a-time from the definition. This is the test
// oracle for the table-driven path below — slow but obviously correct.
Tag128 gf128Mul(const Tag128& x, const Tag128& y);

// Precomputed 4-bit multiplication tables for a fixed hash subkey H
// (Shoup's method): one 16-entry table of n·H products plus a shared
// nibble-reduction table, so a product costs 32 shift-xor steps instead of
// the definition's 128. Built once per GHASH key.
class GhashKey {
 public:
  explicit GhashKey(const Tag128& h);
  // x · H in GF(2^128).
  Tag128 mul(const Tag128& x) const;

  // Partial product at nibble-step granularity, for hardware models that
  // pipeline the multiply across stages: runs steps [first, first + count)
  // of the same 32-step Horner walk mul() performs, threading the partial
  // product z through. mul(x) == mulSteps(x, {}, 0, 32), so a staged
  // implementation is bit-identical to the host path by construction.
  Tag128 mulSteps(const Tag128& x, Tag128 z, unsigned first,
                  unsigned count) const;

  // Raw table access for checksumming in hardened hardware models.
  const std::array<Tag128, 16>& table() const { return table_; }
  // Fault-injection port (single-event upset in a table word; no checksum
  // update). Returns false when entry/bit are out of range.
  bool flipTableBit(unsigned entry, unsigned bit);

 private:
  std::array<Tag128, 16> table_{};
};

// GHASH_H over a byte string that is already a multiple of 16 bytes
// (table-driven; the production path).
Tag128 ghash(const Tag128& h, const std::vector<std::uint8_t>& data);

// Bit-at-a-time GHASH_H from the definition — kept as the oracle the tests
// compare the table-driven path against.
Tag128 ghashNaive(const Tag128& h, const std::vector<std::uint8_t>& data);

struct GcmResult {
  std::vector<std::uint8_t> ciphertext;
  Tag128 tag;
};

// Pre-counter block J0 for an IV of any length (SP 800-38D Section 7.1):
// a 96-bit IV becomes IV || 0^31 || 1; any other length is hashed,
// J0 = GHASH_H(IV || pad || 0^64 || [len(IV)]_64).
Block deriveJ0(const Tag128& h, const std::vector<std::uint8_t>& iv);

// GCM encryption with an IV of any non-zero length.
GcmResult gcmEncrypt(const std::vector<std::uint8_t>& plaintext,
                     const std::vector<std::uint8_t>& aad,
                     const ExpandedKey& key,
                     const std::vector<std::uint8_t>& iv);

// Convenience overload for the recommended 96-bit IV.
GcmResult gcmEncrypt(const std::vector<std::uint8_t>& plaintext,
                     const std::vector<std::uint8_t>& aad,
                     const ExpandedKey& key,
                     const std::array<std::uint8_t, 12>& iv);

// Returns nullopt on authentication failure.
std::optional<std::vector<std::uint8_t>> gcmDecrypt(
    const std::vector<std::uint8_t>& ciphertext,
    const std::vector<std::uint8_t>& aad, const Tag128& tag,
    const ExpandedKey& key, const std::vector<std::uint8_t>& iv);

std::optional<std::vector<std::uint8_t>> gcmDecrypt(
    const std::vector<std::uint8_t>& ciphertext,
    const std::vector<std::uint8_t>& aad, const Tag128& tag,
    const ExpandedKey& key, const std::array<std::uint8_t, 12>& iv);

}  // namespace aesifc::aes
