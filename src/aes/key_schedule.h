#pragma once
// AES key expansion (FIPS-197 Section 5.2) for all three key sizes. The
// accelerator expands keys once at key-load time into a round-key RAM
// (the BRAM in Table 2), so expansion lives apart from the datapath.

#include <cstdint>
#include <vector>

#include "aes/block.h"

namespace aesifc::aes {

struct ExpandedKey {
  KeySize size = KeySize::Aes128;
  // numRounds+1 round keys of 16 bytes each.
  std::vector<RoundKey> round_keys;

  unsigned rounds() const { return numRounds(size); }
};

// `key` must hold keyBytes(size) bytes.
ExpandedKey expandKey(const std::uint8_t* key, KeySize size);
ExpandedKey expandKey(const std::vector<std::uint8_t>& key, KeySize size);

}  // namespace aesifc::aes
