#include "aes/gf256.h"

namespace aesifc::aes {

std::uint8_t gfMul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    const bool hi = a & 0x80;
    a = static_cast<std::uint8_t>(a << 1);
    if (hi) a ^= 0x1b;
    b >>= 1;
  }
  return p;
}

std::uint8_t gfInv(std::uint8_t a) {
  if (a == 0) return 0;
  // a^254 = a^-1 in GF(2^8) (Fermat); square-and-multiply.
  std::uint8_t result = 1;
  std::uint8_t base = a;
  unsigned exp = 254;
  while (exp != 0) {
    if (exp & 1) result = gfMul(result, base);
    base = gfMul(base, base);
    exp >>= 1;
  }
  return result;
}

}  // namespace aesifc::aes
