#include "aes/modes.h"

#include <cassert>

namespace aesifc::aes {

namespace {

Block loadBlock(const Bytes& in, std::size_t off) {
  Block b{};
  for (unsigned i = 0; i < 16; ++i) b[i] = in[off + i];
  return b;
}

void storeBlock(Bytes& out, std::size_t off, const Block& b) {
  for (unsigned i = 0; i < 16; ++i) out[off + i] = b[i];
}

Block xorBlocks(Block a, const Block& b) {
  for (unsigned i = 0; i < 16; ++i) a[i] ^= b[i];
  return a;
}

}  // namespace

Bytes ecbEncrypt(const Bytes& in, const ExpandedKey& key) {
  assert(in.size() % 16 == 0);
  Bytes out(in.size());
  for (std::size_t off = 0; off < in.size(); off += 16) {
    storeBlock(out, off, encryptBlock(loadBlock(in, off), key));
  }
  return out;
}

Bytes ecbDecrypt(const Bytes& in, const ExpandedKey& key) {
  assert(in.size() % 16 == 0);
  Bytes out(in.size());
  for (std::size_t off = 0; off < in.size(); off += 16) {
    storeBlock(out, off, decryptBlock(loadBlock(in, off), key));
  }
  return out;
}

Bytes cbcEncrypt(const Bytes& in, const ExpandedKey& key, const Iv& iv) {
  assert(in.size() % 16 == 0);
  Bytes out(in.size());
  Block prev = iv;
  for (std::size_t off = 0; off < in.size(); off += 16) {
    prev = encryptBlock(xorBlocks(loadBlock(in, off), prev), key);
    storeBlock(out, off, prev);
  }
  return out;
}

Bytes cbcDecrypt(const Bytes& in, const ExpandedKey& key, const Iv& iv) {
  assert(in.size() % 16 == 0);
  Bytes out(in.size());
  Block prev = iv;
  for (std::size_t off = 0; off < in.size(); off += 16) {
    const Block c = loadBlock(in, off);
    storeBlock(out, off, xorBlocks(decryptBlock(c, key), prev));
    prev = c;
  }
  return out;
}

void incCounterBe(Block& ctr, unsigned width_bits) {
  assert(width_bits % 8 == 0 && width_bits > 0 && width_bits <= 128);
  const unsigned first = 16 - width_bits / 8;
  for (int i = 15; i >= static_cast<int>(first); --i) {
    if (++ctr[static_cast<unsigned>(i)] != 0) break;
  }
}

Bytes ctrCrypt(const Bytes& in, const ExpandedKey& key, const Iv& nonce) {
  Bytes out(in.size());
  Block ctr = nonce;
  for (std::size_t off = 0; off < in.size(); off += 16) {
    const Block ks = encryptBlock(ctr, key);
    const std::size_t n = std::min<std::size_t>(16, in.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] = in[off + i] ^ ks[i];
    incCounterBe(ctr, 64);
  }
  return out;
}

Bytes pkcs7Pad(const Bytes& in) {
  const std::uint8_t pad = static_cast<std::uint8_t>(16 - (in.size() % 16));
  Bytes out = in;
  out.insert(out.end(), pad, pad);
  return out;
}

Bytes pkcs7Unpad(const Bytes& in) {
  if (in.empty() || in.size() % 16 != 0) return {};
  const std::uint8_t pad = in.back();
  if (pad == 0 || pad > 16 || pad > in.size()) return {};
  for (std::size_t i = in.size() - pad; i < in.size(); ++i) {
    if (in[i] != pad) return {};
  }
  return Bytes(in.begin(), in.end() - pad);
}

}  // namespace aesifc::aes
