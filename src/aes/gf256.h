#pragma once
// GF(2^8) arithmetic with the AES reduction polynomial
// x^8 + x^4 + x^3 + x + 1 (0x11b). Used to derive the S-box and MixColumns
// rather than pasting tables, and by tests to cross-check both.

#include <cstdint>

namespace aesifc::aes {

// Carry-less multiply modulo 0x11b.
std::uint8_t gfMul(std::uint8_t a, std::uint8_t b);

// Multiplicative inverse (gfInv(0) == 0 by AES convention).
std::uint8_t gfInv(std::uint8_t a);

// xtime: multiply by x (i.e. 2) modulo 0x11b.
inline std::uint8_t xtime(std::uint8_t a) {
  return static_cast<std::uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0x00));
}

}  // namespace aesifc::aes
