#include "aes/gcm.h"

#include <cstring>

#include "aes/modes.h"

namespace aesifc::aes {

namespace {

// Bit i of a block in SP 800-38D convention: i = 0 is the most significant
// bit of byte 0.
bool blockBit(const Tag128& x, unsigned i) {
  return (x[i / 8] >> (7 - (i % 8))) & 1;
}

// Right shift by one bit in the same convention.
Tag128 shiftRight1(const Tag128& v) {
  Tag128 out{};
  std::uint8_t carry = 0;
  for (unsigned i = 0; i < 16; ++i) {
    out[i] = static_cast<std::uint8_t>((v[i] >> 1) | (carry << 7));
    carry = v[i] & 1;
  }
  return out;
}

Tag128 xorTags(Tag128 a, const Tag128& b) {
  for (unsigned i = 0; i < 16; ++i) a[i] ^= b[i];
  return a;
}

// SP 800-38D inc32 via the shared counter helper (32-bit width; CTR mode
// uses the same helper at 64 bits).
void inc32(Block& ctr) { incCounterBe(ctr, 32); }

// GCTR: counter-mode keystream starting at `icb` (inclusive).
std::vector<std::uint8_t> gctr(const ExpandedKey& key, Block icb,
                               const std::vector<std::uint8_t>& data) {
  std::vector<std::uint8_t> out(data.size());
  Block ctr = icb;
  for (std::size_t off = 0; off < data.size(); off += 16) {
    const Block ks = encryptBlock(ctr, key);
    const std::size_t n = std::min<std::size_t>(16, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] = data[off + i] ^ ks[i];
    inc32(ctr);
  }
  return out;
}

// Multiply by x: one right shift plus the x^128 = 1 + x + x^2 + x^7
// reduction (the 0xe1 byte in this bit order).
Tag128 mulX(const Tag128& v) {
  const bool lsb = v[15] & 1;
  Tag128 out = shiftRight1(v);
  if (lsb) out[0] ^= 0xe1;
  return out;
}

// Reduction table for the 4-bit Horner step: rem4[n] holds the two bytes
// xored into z[0..1] after a 4-bit right shift drops nibble n (its
// x^124..x^127 coefficients wrapping through the reduction polynomial).
// Built from the same single-bit mulX step the naive oracle uses, so the
// two paths cannot disagree on the bit convention.
const std::array<std::array<std::uint8_t, 2>, 16>& rem4Table() {
  static const auto table = [] {
    std::array<std::array<std::uint8_t, 2>, 16> t{};
    for (unsigned n = 0; n < 16; ++n) {
      Tag128 v{};
      v[15] = static_cast<std::uint8_t>(n);
      for (unsigned k = 0; k < 4; ++k) v = mulX(v);
      // Only the reduction contribution survives the four shifts, and it
      // lands entirely in the first two bytes (degree <= 10).
      t[n] = {v[0], v[1]};
    }
    return t;
  }();
  return table;
}

void appendPadded(std::vector<std::uint8_t>& s,
                  const std::vector<std::uint8_t>& data) {
  s.insert(s.end(), data.begin(), data.end());
  if (data.size() % 16 != 0) s.insert(s.end(), 16 - data.size() % 16, 0);
}

void appendLen64(std::vector<std::uint8_t>& s, std::uint64_t bytes) {
  const std::uint64_t bits = bytes * 8;
  for (int i = 7; i >= 0; --i)
    s.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

Tag128 computeTag(const ExpandedKey& key, const Tag128& h, const Block& j0,
                  const std::vector<std::uint8_t>& aad,
                  const std::vector<std::uint8_t>& ct) {
  std::vector<std::uint8_t> s;
  s.reserve(((aad.size() + 15) / 16 + (ct.size() + 15) / 16 + 1) * 16);
  appendPadded(s, aad);
  appendPadded(s, ct);
  appendLen64(s, aad.size());
  appendLen64(s, ct.size());
  const Tag128 hash = ghash(h, s);
  const Block e = encryptBlock(j0, key);
  Tag128 tag{};
  for (unsigned i = 0; i < 16; ++i) tag[i] = hash[i] ^ e[i];
  return tag;
}

}  // namespace

Tag128 gf128Mul(const Tag128& x, const Tag128& y) {
  // SP 800-38D Algorithm 1; R = 11100001 || 0^120.
  Tag128 z{};
  Tag128 v = y;
  for (unsigned i = 0; i < 128; ++i) {
    if (blockBit(x, i)) z = xorTags(z, v);
    const bool lsb = v[15] & 1;
    v = shiftRight1(v);
    if (lsb) v[0] ^= 0xe1;
  }
  return z;
}

GhashKey::GhashKey(const Tag128& h) {
  // Basis entries: table_[n] = n·H where bit 3 of the nibble is the x^0
  // coefficient (the leftmost bit of the group, matching the block's
  // leftmost-bit-is-x^0 convention).
  table_[8] = h;
  table_[4] = mulX(table_[8]);
  table_[2] = mulX(table_[4]);
  table_[1] = mulX(table_[2]);
  for (unsigned n = 3; n < 16; ++n) {
    if ((n & (n - 1)) == 0) continue;  // powers of two are basis entries
    table_[n] = xorTags(table_[n & (n - 1)], table_[n & ~(n - 1)]);
  }
}

Tag128 GhashKey::mul(const Tag128& x) const {
  // Horner over the 32 nibbles of x, highest powers first (the low nibble
  // of byte 15 holds x^124..x^127): z = z·x^4 ^ (nibble · H).
  return mulSteps(x, Tag128{}, 0, 32);
}

Tag128 GhashKey::mulSteps(const Tag128& x, Tag128 z, unsigned first,
                          unsigned count) const {
  const auto& rem = rem4Table();
  // Step s walks byte 15 down to 0, low nibble before high — the same
  // order mul() has always used, just re-startable at any step boundary.
  for (unsigned s = first; s < first + count && s < 32; ++s) {
    const unsigned b = 15 - s / 2;
    const unsigned half = s % 2;
    const unsigned dropped = z[15] & 0x0F;
    for (int i = 15; i > 0; --i) {
      z[static_cast<unsigned>(i)] = static_cast<std::uint8_t>(
          (z[static_cast<unsigned>(i)] >> 4) |
          (z[static_cast<unsigned>(i - 1)] << 4));
    }
    z[0] >>= 4;
    z[0] ^= rem[dropped][0];
    z[1] ^= rem[dropped][1];
    const unsigned nib = half == 0 ? (x[b] & 0x0F) : (x[b] >> 4);
    z = xorTags(z, table_[nib]);
  }
  return z;
}

bool GhashKey::flipTableBit(unsigned entry, unsigned bit) {
  if (entry >= 16 || bit >= 128) return false;
  table_[entry][bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  return true;
}

Tag128 ghash(const Tag128& h, const std::vector<std::uint8_t>& data) {
  const GhashKey key{h};
  Tag128 y{};
  for (std::size_t off = 0; off + 16 <= data.size(); off += 16) {
    Tag128 blk{};
    std::memcpy(blk.data(), data.data() + off, 16);
    y = key.mul(xorTags(y, blk));
  }
  return y;
}

Tag128 ghashNaive(const Tag128& h, const std::vector<std::uint8_t>& data) {
  Tag128 y{};
  for (std::size_t off = 0; off + 16 <= data.size(); off += 16) {
    Tag128 blk{};
    std::memcpy(blk.data(), data.data() + off, 16);
    y = gf128Mul(xorTags(y, blk), h);
  }
  return y;
}

Block deriveJ0(const Tag128& h, const std::vector<std::uint8_t>& iv) {
  Block j0{};
  if (iv.size() == 12) {
    std::memcpy(j0.data(), iv.data(), 12);
    j0[15] = 1;
    return j0;
  }
  std::vector<std::uint8_t> s;
  s.reserve(((iv.size() + 15) / 16 + 1) * 16);
  appendPadded(s, iv);
  appendLen64(s, 0);
  appendLen64(s, iv.size());
  const Tag128 y = ghash(h, s);
  std::memcpy(j0.data(), y.data(), 16);
  return j0;
}

GcmResult gcmEncrypt(const std::vector<std::uint8_t>& plaintext,
                     const std::vector<std::uint8_t>& aad,
                     const ExpandedKey& key,
                     const std::vector<std::uint8_t>& iv) {
  const Block zero{};
  const Block h_block = encryptBlock(zero, key);
  Tag128 h{};
  std::memcpy(h.data(), h_block.data(), 16);

  const Block j0 = deriveJ0(h, iv);
  Block icb = j0;
  inc32(icb);

  GcmResult r;
  r.ciphertext = gctr(key, icb, plaintext);
  r.tag = computeTag(key, h, j0, aad, r.ciphertext);
  return r;
}

GcmResult gcmEncrypt(const std::vector<std::uint8_t>& plaintext,
                     const std::vector<std::uint8_t>& aad,
                     const ExpandedKey& key,
                     const std::array<std::uint8_t, 12>& iv) {
  return gcmEncrypt(plaintext, aad, key,
                    std::vector<std::uint8_t>(iv.begin(), iv.end()));
}

std::optional<std::vector<std::uint8_t>> gcmDecrypt(
    const std::vector<std::uint8_t>& ciphertext,
    const std::vector<std::uint8_t>& aad, const Tag128& tag,
    const ExpandedKey& key, const std::vector<std::uint8_t>& iv) {
  const Block zero{};
  const Block h_block = encryptBlock(zero, key);
  Tag128 h{};
  std::memcpy(h.data(), h_block.data(), 16);

  const Block j0 = deriveJ0(h, iv);

  const Tag128 expect = computeTag(key, h, j0, aad, ciphertext);
  // Constant-time comparison (no early exit on mismatch).
  std::uint8_t diff = 0;
  for (unsigned i = 0; i < 16; ++i) diff |= expect[i] ^ tag[i];
  if (diff != 0) return std::nullopt;

  Block icb = j0;
  inc32(icb);
  return gctr(key, icb, ciphertext);
}

std::optional<std::vector<std::uint8_t>> gcmDecrypt(
    const std::vector<std::uint8_t>& ciphertext,
    const std::vector<std::uint8_t>& aad, const Tag128& tag,
    const ExpandedKey& key, const std::array<std::uint8_t, 12>& iv) {
  return gcmDecrypt(ciphertext, aad, tag, key,
                    std::vector<std::uint8_t>(iv.begin(), iv.end()));
}

}  // namespace aesifc::aes
