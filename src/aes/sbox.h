#pragma once
// AES S-box and its inverse, derived at static-initialization time from the
// GF(2^8) inverse plus the FIPS-197 affine transform.

#include <cstdint>

namespace aesifc::aes {

std::uint8_t sbox(std::uint8_t x);
std::uint8_t invSbox(std::uint8_t x);

// Direct access to the 256-entry tables (e.g. for the area model's BRAM/LUT
// accounting and for building LUT nodes in the HDL IR).
const std::uint8_t* sboxTable();
const std::uint8_t* invSboxTable();

}  // namespace aesifc::aes
