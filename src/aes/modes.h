#pragma once
// Block cipher modes over the AES core: ECB, CBC, CTR. Used by the example
// applications (SSL-like record encryption, disk encryption) to drive the
// accelerator with realistic multi-block workloads.

#include <cstdint>
#include <vector>

#include "aes/cipher.h"

namespace aesifc::aes {

using Bytes = std::vector<std::uint8_t>;
using Iv = std::array<std::uint8_t, 16>;

// ECB: input must be a multiple of 16 bytes.
Bytes ecbEncrypt(const Bytes& in, const ExpandedKey& key);
Bytes ecbDecrypt(const Bytes& in, const ExpandedKey& key);

// CBC: input must be a multiple of 16 bytes.
Bytes cbcEncrypt(const Bytes& in, const ExpandedKey& key, const Iv& iv);
Bytes cbcDecrypt(const Bytes& in, const ExpandedKey& key, const Iv& iv);

// Increment the big-endian counter held in the trailing `width_bits` bits
// of the block, leaving the leading nonce bytes untouched on wraparound.
// CTR mode counts in the low 64 bits; GCM's GCTR counts in the low 32
// (SP 800-38D inc32). Every counter mode must go through this one helper so
// the two widths cannot silently diverge again.
void incCounterBe(Block& ctr, unsigned width_bits);

// CTR: any length; big-endian counter in the low 8 bytes of the IV block.
Bytes ctrCrypt(const Bytes& in, const ExpandedKey& key, const Iv& nonce);

// PKCS#7 padding helpers for CBC/ECB users.
Bytes pkcs7Pad(const Bytes& in);
// Returns empty vector on malformed padding.
Bytes pkcs7Unpad(const Bytes& in);

}  // namespace aesifc::aes
