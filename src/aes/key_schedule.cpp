#include "aes/key_schedule.h"

#include <cassert>

#include "aes/gf256.h"
#include "aes/sbox.h"

namespace aesifc::aes {

namespace {

using Word = std::array<std::uint8_t, 4>;

Word rotWord(Word w) { return {w[1], w[2], w[3], w[0]}; }

Word subWord(Word w) {
  for (auto& b : w) b = sbox(b);
  return w;
}

Word xorWords(Word a, const Word& b) {
  for (unsigned i = 0; i < 4; ++i) a[i] ^= b[i];
  return a;
}

}  // namespace

ExpandedKey expandKey(const std::uint8_t* key, KeySize size) {
  const unsigned nk = keyBytes(size) / 4;  // key words: 4 / 6 / 8
  const unsigned nr = numRounds(size);
  const unsigned total_words = 4 * (nr + 1);

  std::vector<Word> w(total_words);
  for (unsigned i = 0; i < nk; ++i) {
    w[i] = {key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]};
  }

  std::uint8_t rcon = 0x01;
  for (unsigned i = nk; i < total_words; ++i) {
    Word temp = w[i - 1];
    if (i % nk == 0) {
      temp = subWord(rotWord(temp));
      temp[0] ^= rcon;
      rcon = xtime(rcon);
    } else if (nk > 6 && i % nk == 4) {
      temp = subWord(temp);
    }
    w[i] = xorWords(w[i - nk], temp);
  }

  ExpandedKey ek;
  ek.size = size;
  ek.round_keys.resize(nr + 1);
  for (unsigned r = 0; r <= nr; ++r) {
    for (unsigned c = 0; c < 4; ++c) {
      for (unsigned b = 0; b < 4; ++b) {
        ek.round_keys[r][b + 4 * c] = w[4 * r + c][b];
      }
    }
  }
  return ek;
}

ExpandedKey expandKey(const std::vector<std::uint8_t>& key, KeySize size) {
  assert(key.size() == keyBytes(size));
  return expandKey(key.data(), size);
}

}  // namespace aesifc::aes
