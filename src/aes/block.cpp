#include "aes/block.h"

#include "aes/gf256.h"
#include "aes/sbox.h"

namespace aesifc::aes {

State blockToState(const Block& b) {
  State s;
  // FIPS-197: input byte n goes to state[row = n mod 4][col = n / 4];
  // with column-major storage that is the identity mapping.
  for (unsigned n = 0; n < 16; ++n) s[n] = b[n];
  return s;
}

Block stateToBlock(const State& s) {
  Block b;
  for (unsigned n = 0; n < 16; ++n) b[n] = s[n];
  return b;
}

void subBytes(State& s) {
  for (auto& x : s) x = sbox(x);
}

void invSubBytes(State& s) {
  for (auto& x : s) x = invSbox(x);
}

void shiftRows(State& s) {
  State out;
  for (unsigned r = 0; r < 4; ++r) {
    for (unsigned c = 0; c < 4; ++c) {
      out[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
    }
  }
  s = out;
}

void invShiftRows(State& s) {
  State out;
  for (unsigned r = 0; r < 4; ++r) {
    for (unsigned c = 0; c < 4; ++c) {
      out[r + 4 * ((c + r) % 4)] = s[r + 4 * c];
    }
  }
  s = out;
}

void mixColumns(State& s) {
  for (unsigned c = 0; c < 4; ++c) {
    const std::uint8_t a0 = s[0 + 4 * c], a1 = s[1 + 4 * c];
    const std::uint8_t a2 = s[2 + 4 * c], a3 = s[3 + 4 * c];
    s[0 + 4 * c] = static_cast<std::uint8_t>(gfMul(a0, 2) ^ gfMul(a1, 3) ^ a2 ^ a3);
    s[1 + 4 * c] = static_cast<std::uint8_t>(a0 ^ gfMul(a1, 2) ^ gfMul(a2, 3) ^ a3);
    s[2 + 4 * c] = static_cast<std::uint8_t>(a0 ^ a1 ^ gfMul(a2, 2) ^ gfMul(a3, 3));
    s[3 + 4 * c] = static_cast<std::uint8_t>(gfMul(a0, 3) ^ a1 ^ a2 ^ gfMul(a3, 2));
  }
}

void invMixColumns(State& s) {
  for (unsigned c = 0; c < 4; ++c) {
    const std::uint8_t a0 = s[0 + 4 * c], a1 = s[1 + 4 * c];
    const std::uint8_t a2 = s[2 + 4 * c], a3 = s[3 + 4 * c];
    s[0 + 4 * c] = static_cast<std::uint8_t>(gfMul(a0, 14) ^ gfMul(a1, 11) ^
                                             gfMul(a2, 13) ^ gfMul(a3, 9));
    s[1 + 4 * c] = static_cast<std::uint8_t>(gfMul(a0, 9) ^ gfMul(a1, 14) ^
                                             gfMul(a2, 11) ^ gfMul(a3, 13));
    s[2 + 4 * c] = static_cast<std::uint8_t>(gfMul(a0, 13) ^ gfMul(a1, 9) ^
                                             gfMul(a2, 14) ^ gfMul(a3, 11));
    s[3 + 4 * c] = static_cast<std::uint8_t>(gfMul(a0, 11) ^ gfMul(a1, 13) ^
                                             gfMul(a2, 9) ^ gfMul(a3, 14));
  }
}

void addRoundKey(State& s, const RoundKey& rk) {
  for (unsigned n = 0; n < 16; ++n) s[n] ^= rk[n];
}

}  // namespace aesifc::aes
