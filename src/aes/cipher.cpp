#include "aes/cipher.h"

namespace aesifc::aes {

Block encryptBlock(const Block& plaintext, const ExpandedKey& key) {
  const unsigned nr = key.rounds();
  State s = blockToState(plaintext);
  addRoundKey(s, key.round_keys[0]);
  for (unsigned r = 1; r < nr; ++r) {
    subBytes(s);
    shiftRows(s);
    mixColumns(s);
    addRoundKey(s, key.round_keys[r]);
  }
  subBytes(s);
  shiftRows(s);
  addRoundKey(s, key.round_keys[nr]);
  return stateToBlock(s);
}

Block decryptBlock(const Block& ciphertext, const ExpandedKey& key) {
  const unsigned nr = key.rounds();
  State s = blockToState(ciphertext);
  addRoundKey(s, key.round_keys[nr]);
  for (unsigned r = nr - 1; r >= 1; --r) {
    invShiftRows(s);
    invSubBytes(s);
    addRoundKey(s, key.round_keys[r]);
    invMixColumns(s);
  }
  invShiftRows(s);
  invSubBytes(s);
  addRoundKey(s, key.round_keys[0]);
  return stateToBlock(s);
}

Block encryptBlock(const Block& plaintext, const std::uint8_t* key, KeySize ks) {
  return encryptBlock(plaintext, expandKey(key, ks));
}

Block decryptBlock(const Block& ciphertext, const std::uint8_t* key, KeySize ks) {
  return decryptBlock(ciphertext, expandKey(key, ks));
}

}  // namespace aesifc::aes
