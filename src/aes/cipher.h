#pragma once
// Whole-block AES encrypt/decrypt — the golden reference model for the
// accelerator, and the building block for the mode helpers.

#include "aes/block.h"
#include "aes/key_schedule.h"

namespace aesifc::aes {

Block encryptBlock(const Block& plaintext, const ExpandedKey& key);
Block decryptBlock(const Block& ciphertext, const ExpandedKey& key);

// Convenience: expand + encrypt/decrypt one block.
Block encryptBlock(const Block& plaintext, const std::uint8_t* key, KeySize ks);
Block decryptBlock(const Block& ciphertext, const std::uint8_t* key, KeySize ks);

}  // namespace aesifc::aes
