#pragma once
// Security-typed IR models of the paper's verification targets. Each
// builder returns a module the static checker (src/ifc) is run on in tests
// and benches; the "insecure" variants must produce exactly the label
// errors the paper describes, and the "secure" variants must verify clean.

#include "hdl/ir.h"

namespace aesifc::rtl {

// Fig. 3: the ChiselFlow cache-tags module. tag_i/tag_o carry the dependent
// label DL(way); way 0 backs a trusted array, way 1 an untrusted one.
// `buggy` routes writes into the trusted array regardless of `way` — the
// checker must reject it (untrusted data entering trusted storage).
hdl::Module buildCacheTags(bool buggy);

// Fig. 6 (left error): an AES control FSM whose completion time depends on
// a key bit (the classic Kocher/Koeune-Quisquater timing leak). The `valid`
// output is annotated public; in the leaky variant the checker infers a
// secret label for it and reports the mismatch. The fixed variant runs a
// data-independent number of cycles and verifies clean.
hdl::Module buildAesControl(bool leaky);

// Fig. 6 (right error) and Section 3.2.2: ciphertext release. The raw
// ciphertext label is (ck join cu, iu); the public output port needs an
// explicit declassification, and nonmalleable IFC decides who may perform
// it.
enum class ReleaseScenario {
  NoDeclass,            // ciphertext assigned straight to a public port
  UserKey,              // user declassifies output under its own key
  MasterKeyUser,        // regular user tries to release master-key output
  MasterKeySupervisor,  // supervisor releases master-key output
};
hdl::Module buildCiphertextRelease(ReleaseScenario s);

// Fig. 8: a two-stage tagged pipeline with a stall request. In the
// meet-gated variant the stall is honored only when the requester's level
// flows to every in-flight tag (and the waiting input's tag); the checker
// accepts it. The ungated baseline exhibits the covert timing channel as
// TimingViolations on the stage registers.
hdl::Module buildStallPipeline(bool meet_gated);

// Parametric variant with `stages` pipeline stages (2..6). Checking cost
// grows with the dependent-label valuation space (4^(stages+2)); used to
// measure how the per-value analysis scales.
hdl::Module buildStallPipelineN(unsigned stages, bool meet_gated);

// Fig. 5: a tagged key scratchpad (4 cells here). The checked variant
// compares the requester's tag with the per-cell tag before any
// read/write; the unchecked variant is the buffer-overflow-prone design.
hdl::Module buildTaggedScratchpad(bool checked);

}  // namespace aesifc::rtl
