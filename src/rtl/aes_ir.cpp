#include "rtl/aes_ir.h"

#include "aes/gf256.h"
#include "aes/key_schedule.h"
#include "aes/sbox.h"

namespace aesifc::rtl {

using hdl::ExprId;
using hdl::LabelTerm;
using hdl::Module;
using lattice::Conf;
using lattice::Integ;
using lattice::Label;
using lattice::Principal;

namespace {

std::vector<BitVec> sboxLutTable() {
  std::vector<BitVec> t;
  t.reserve(256);
  for (unsigned i = 0; i < 256; ++i)
    t.emplace_back(8, aes::sboxTable()[i]);
  return t;
}

std::vector<BitVec> xtimeLutTable() {
  std::vector<BitVec> t;
  t.reserve(256);
  for (unsigned i = 0; i < 256; ++i)
    t.emplace_back(8, aes::xtime(static_cast<std::uint8_t>(i)));
  return t;
}

std::vector<BitVec> invSboxLutTable() {
  std::vector<BitVec> t;
  t.reserve(256);
  for (unsigned i = 0; i < 256; ++i)
    t.emplace_back(8, aes::invSboxTable()[i]);
  return t;
}

// gfMul-by-constant table for the InvMixColumns coefficients.
std::vector<BitVec> gfMulLutTable(std::uint8_t k) {
  std::vector<BitVec> t;
  t.reserve(256);
  for (unsigned i = 0; i < 256; ++i)
    t.emplace_back(8, aes::gfMul(static_cast<std::uint8_t>(i), k));
  return t;
}

ExprId byteOf(Module& m, ExprId state, unsigned n) {
  return m.slice(state, 8 * n, 8);
}

// Reassemble 16 byte expressions (byte 0 = least significant) into 128 bits.
ExprId packBytes(Module& m, const std::vector<ExprId>& bytes) {
  ExprId acc = bytes[15];
  for (int n = 14; n >= 0; --n) {
    acc = m.concat(acc, bytes[static_cast<unsigned>(n)]);
  }
  return acc;
}

ExprId emitSubBytes(Module& m, ExprId state) {
  const auto table = sboxLutTable();
  std::vector<ExprId> out(16);
  for (unsigned n = 0; n < 16; ++n) {
    out[n] = m.lut(byteOf(m, state, n), table);
  }
  return packBytes(m, out);
}

ExprId emitShiftRows(Module& m, ExprId state) {
  // Column-major state: byte index n = row + 4*col. Output row r column c
  // takes input row r column (c + r) mod 4.
  std::vector<ExprId> out(16);
  for (unsigned r = 0; r < 4; ++r) {
    for (unsigned c = 0; c < 4; ++c) {
      out[r + 4 * c] = byteOf(m, state, r + 4 * ((c + r) % 4));
    }
  }
  return packBytes(m, out);
}

ExprId emitMixColumns(Module& m, ExprId state) {
  const auto xt = xtimeLutTable();
  std::vector<ExprId> out(16);
  for (unsigned c = 0; c < 4; ++c) {
    ExprId a[4], x[4];
    for (unsigned r = 0; r < 4; ++r) {
      a[r] = byteOf(m, state, r + 4 * c);
      x[r] = m.lut(a[r], xt);
    }
    // 3*v = xtime(v) ^ v.
    auto triple = [&](unsigned r) { return m.bxor(x[r], a[r]); };
    out[0 + 4 * c] = m.bxor(m.bxor(x[0], triple(1)), m.bxor(a[2], a[3]));
    out[1 + 4 * c] = m.bxor(m.bxor(a[0], x[1]), m.bxor(triple(2), a[3]));
    out[2 + 4 * c] = m.bxor(m.bxor(a[0], a[1]), m.bxor(x[2], triple(3)));
    out[3 + 4 * c] = m.bxor(m.bxor(triple(0), a[1]), m.bxor(a[2], x[3]));
  }
  return packBytes(m, out);
}

}  // namespace

hdl::ExprId emitAesRound(Module& m, ExprId state128, ExprId roundkey128,
                         bool last_round) {
  ExprId s = emitSubBytes(m, state128);
  s = emitShiftRows(m, s);
  if (!last_round) s = emitMixColumns(m, s);
  return m.bxor(s, roundkey128);
}

Module buildAesEncrypt128(AesIrPorts* ports) {
  Module m{"aes_encrypt128"};

  const Label pt_label{Conf::category(1), Integ::top()};
  const Label key_label{Conf::category(0), Integ::top()};
  const Label ct_label{Conf::category(0).join(Conf::category(1)),
                       Integ::top()};

  AesIrPorts p;
  p.pt = m.input("pt", 128, LabelTerm::of(pt_label));
  for (unsigned r = 0; r <= 10; ++r) {
    p.rk.push_back(
        m.input("rk" + std::to_string(r), 128, LabelTerm::of(key_label)));
  }
  p.ct = m.output("ct", 128, LabelTerm::of(ct_label));

  ExprId s = m.bxor(m.read(p.pt), m.read(p.rk[0]));
  for (unsigned r = 1; r <= 10; ++r) {
    s = emitAesRound(m, s, m.read(p.rk[r]), r == 10);
  }
  m.assign(p.ct, s);

  if (ports != nullptr) *ports = p;
  return m;
}

namespace {

ExprId emitInvSubBytes(Module& m, ExprId state) {
  const auto table = invSboxLutTable();
  std::vector<ExprId> out(16);
  for (unsigned n = 0; n < 16; ++n) out[n] = m.lut(byteOf(m, state, n), table);
  return packBytes(m, out);
}

ExprId emitInvShiftRows(Module& m, ExprId state) {
  // Inverse rotation: output row r column c takes input row r column
  // (c - r) mod 4.
  std::vector<ExprId> out(16);
  for (unsigned r = 0; r < 4; ++r) {
    for (unsigned c = 0; c < 4; ++c) {
      out[r + 4 * c] = byteOf(m, state, r + 4 * ((c + 4 - r) % 4));
    }
  }
  return packBytes(m, out);
}

ExprId emitInvMixColumns(Module& m, ExprId state) {
  const auto m9 = gfMulLutTable(9);
  const auto m11 = gfMulLutTable(11);
  const auto m13 = gfMulLutTable(13);
  const auto m14 = gfMulLutTable(14);
  std::vector<ExprId> out(16);
  for (unsigned c = 0; c < 4; ++c) {
    ExprId a[4];
    for (unsigned r = 0; r < 4; ++r) a[r] = byteOf(m, state, r + 4 * c);
    auto mul = [&](const std::vector<BitVec>& t, unsigned r) {
      return m.lut(a[r], t);
    };
    out[0 + 4 * c] = m.bxor(m.bxor(mul(m14, 0), mul(m11, 1)),
                            m.bxor(mul(m13, 2), mul(m9, 3)));
    out[1 + 4 * c] = m.bxor(m.bxor(mul(m9, 0), mul(m14, 1)),
                            m.bxor(mul(m11, 2), mul(m13, 3)));
    out[2 + 4 * c] = m.bxor(m.bxor(mul(m13, 0), mul(m9, 1)),
                            m.bxor(mul(m14, 2), mul(m11, 3)));
    out[3 + 4 * c] = m.bxor(m.bxor(mul(m11, 0), mul(m13, 1)),
                            m.bxor(mul(m9, 2), mul(m14, 3)));
  }
  return packBytes(m, out);
}

}  // namespace

hdl::ExprId emitAesInvRound(Module& m, ExprId state128, ExprId roundkey128,
                            bool last_round) {
  ExprId s = emitInvShiftRows(m, state128);
  s = emitInvSubBytes(m, s);
  s = m.bxor(s, roundkey128);
  if (!last_round) s = emitInvMixColumns(m, s);
  return s;
}

Module buildAesDecrypt128(AesIrPorts* ports) {
  Module m{"aes_decrypt128"};

  const Label ct_in_label{Conf::category(0).join(Conf::category(1)),
                          Integ::top()};
  const Label key_label{Conf::category(0), Integ::top()};
  // Recovered plaintext belongs to the user *and* still depends on the key.
  const Label pt_label{Conf::category(0).join(Conf::category(1)),
                       Integ::top()};

  AesIrPorts p;
  p.pt = m.input("ct", 128, LabelTerm::of(ct_in_label));
  for (unsigned r = 0; r <= 10; ++r) {
    p.rk.push_back(
        m.input("rk" + std::to_string(r), 128, LabelTerm::of(key_label)));
  }
  p.ct = m.output("pt", 128, LabelTerm::of(pt_label));

  ExprId s = m.bxor(m.read(p.pt), m.read(p.rk[10]));
  for (unsigned r = 1; r <= 10; ++r) {
    s = emitAesInvRound(m, s, m.read(p.rk[10 - r]), r == 10);
  }
  m.assign(p.ct, s);

  if (ports != nullptr) *ports = p;
  return m;
}

Module buildKeyExpand128(KeyExpandPorts* ports) {
  Module m{"key_expand128"};

  const Label key_label{Conf::category(0), Integ::top()};
  const Label pub = lattice::Label::publicTrusted();

  KeyExpandPorts p;
  p.key = m.input("key", 128, LabelTerm::of(key_label));
  p.start = m.input("start", 1, LabelTerm::of(pub));
  p.rk = m.output("rk", 128, LabelTerm::of(key_label));
  p.rk_valid = m.output("rk_valid", 1, LabelTerm::of(pub));
  p.round = m.output("round", 4, LabelTerm::of(pub));

  const auto w = m.reg("w", 128, LabelTerm::of(key_label));
  const auto rcon = m.reg("rcon", 8, LabelTerm::of(pub), BitVec(8, 1));
  const auto round = m.reg("round_r", 4, LabelTerm::of(pub));
  const auto busy = m.reg("busy", 1, LabelTerm::of(pub));

  // Schedule step: temp = SubWord(RotWord(w3)) ^ rcon; then chain the xors.
  auto word = [&](unsigned c) { return m.slice(m.read(w), 32 * c, 32); };
  auto byteOfWord = [&](ExprId wrd, unsigned b) { return m.slice(wrd, 8 * b, 8); };

  const auto w3 = word(3);
  // RotWord: (b0,b1,b2,b3) -> (b1,b2,b3,b0); byte 0 is the low byte.
  const auto rot = m.concat(
      byteOfWord(w3, 0),
      m.concat(byteOfWord(w3, 3), m.concat(byteOfWord(w3, 2), byteOfWord(w3, 1))));
  const auto sbox_table = sboxLutTable();
  std::vector<ExprId> sub_bytes(4);
  for (unsigned b = 0; b < 4; ++b)
    sub_bytes[b] = m.lut(m.slice(rot, 8 * b, 8), sbox_table);
  const auto sub = m.concat(
      sub_bytes[3], m.concat(sub_bytes[2], m.concat(sub_bytes[1], sub_bytes[0])));
  const auto temp =
      m.bxor(sub, m.concat(m.c(24, 0), m.read(rcon)));  // rcon into byte 0

  const auto w0n = m.bxor(word(0), temp);
  const auto w1n = m.bxor(word(1), w0n);
  const auto w2n = m.bxor(word(2), w1n);
  const auto w3n = m.bxor(word(3), w2n);
  const auto next_w =
      m.concat(w3n, m.concat(w2n, m.concat(w1n, w0n)));

  const auto last = m.eq(m.read(round), m.c(4, 10));
  const auto en_step =
      m.band(m.band(m.read(busy), m.bnot(m.read(p.start))), m.bnot(last));
  const auto en_load = m.read(p.start);

  m.regWrite(w, next_w, en_step);
  m.regWrite(w, m.read(p.key), en_load);  // start wins (later write)
  m.regWrite(round, m.add(m.read(round), m.c(4, 1)), en_step);
  m.regWrite(round, m.c(4, 0), en_load);
  m.regWrite(rcon, m.lut(m.read(rcon), xtimeLutTable()), en_step);
  m.regWrite(rcon, m.c(8, 1), en_load);
  m.regWrite(busy, m.c(1, 0),
             m.band(m.band(m.read(busy), last), m.bnot(m.read(p.start))));
  m.regWrite(busy, m.c(1, 1), en_load);

  m.assign(p.rk, m.read(w));
  m.assign(p.rk_valid, m.read(busy));
  m.assign(p.round, m.read(round));

  if (ports != nullptr) *ports = p;
  return m;
}

Module buildAesPipelineIr(AesPipeIrPorts* ports) {
  Module m{"aes_pipeline_ir"};

  // One user configuration: all in-flight data belongs to the same level,
  // ciphertext is released by the owner at the end.
  const Label data_label{Conf::category(1), Integ::category(1)};
  const Label pub{Conf::bottom(), Integ::category(1)};
  const Label ctl = lattice::Label::publicTrusted();

  AesPipeIrPorts p;
  p.in_valid = m.input("in_valid", 1, LabelTerm::of(ctl));
  p.pt = m.input("pt", 128, LabelTerm::of(data_label));
  for (unsigned r = 0; r <= 10; ++r) {
    p.rk.push_back(m.input("rk" + std::to_string(r), 128,
                           LabelTerm::of(data_label)));
  }
  p.out_valid = m.output("out_valid", 1, LabelTerm::of(ctl));
  p.ct = m.output("ct", 128, LabelTerm::of(pub));

  // Stage registers: s[r] holds the state after round r's logic.
  ExprId prev_data = m.bxor(m.read(p.pt), m.read(p.rk[0]));
  ExprId prev_valid = m.read(p.in_valid);
  std::vector<hdl::SignalId> stage(10), valid(10);
  for (unsigned r = 1; r <= 10; ++r) {
    stage[r - 1] = m.reg("s" + std::to_string(r), 128,
                         LabelTerm::of(data_label));
    valid[r - 1] = m.reg("v" + std::to_string(r), 1, LabelTerm::of(ctl));
    m.regWrite(stage[r - 1], emitAesRound(m, prev_data, m.read(p.rk[r]),
                                          r == 10));
    m.regWrite(valid[r - 1], prev_valid);
    prev_data = m.read(stage[r - 1]);
    prev_valid = m.read(valid[r - 1]);
  }
  m.assign(p.out_valid, prev_valid);
  // Only the final stage is released — an intermediate tap would be
  // rejected by the checker (Fig. 7's "declassify at the last stage").
  m.declassify(p.ct, prev_data, pub,
               Principal{"owner", Label{Conf::category(1), Integ::category(1)}},
               "ciphertext release at pipeline exit");

  if (ports != nullptr) *ports = p;
  return m;
}

Module buildAesWithStatus(bool trojaned, AesIrPorts* ports) {
  Module m{trojaned ? "aes_trojaned" : "aes_with_status"};

  const Label pt_label{Conf::category(1), Integ::top()};
  const Label key_label{Conf::category(0), Integ::top()};
  const Label ct_label{Conf::category(0).join(Conf::category(1)),
                       Integ::top()};
  const Label pub = lattice::Label::publicTrusted();

  AesIrPorts p;
  p.pt = m.input("pt", 128, LabelTerm::of(pt_label));
  for (unsigned r = 0; r <= 10; ++r) {
    p.rk.push_back(
        m.input("rk" + std::to_string(r), 128, LabelTerm::of(key_label)));
  }
  const auto mode = m.input("mode", 8, LabelTerm::of(pub));
  p.ct = m.output("ct", 128, LabelTerm::of(ct_label));
  const auto status = m.output("status", 8, LabelTerm::of(pub));

  ExprId s = m.bxor(m.read(p.pt), m.read(p.rk[0]));
  for (unsigned r = 1; r <= 10; ++r) {
    s = emitAesRound(m, s, m.read(p.rk[r]), r == 10);
  }
  m.assign(p.ct, s);

  if (trojaned) {
    // The Trojan ([16]): when the plaintext equals a 128-bit magic value,
    // a key byte is exfiltrated through the public status register. A
    // 2^-128 trigger never fires under testing; the label mismatch is
    // structural and the checker reports it regardless.
    const auto magic =
        m.c(BitVec::fromHex(128, "cafebabe8badf00ddeadbeef00c0ffee"));
    const auto trigger = m.eq(m.read(p.pt), magic);
    const auto key_byte = m.slice(m.read(p.rk[0]), 0, 8);
    m.assign(status, m.mux(trigger, key_byte, m.read(mode)));
  } else {
    m.assign(status, m.read(mode));
  }

  if (ports != nullptr) *ports = p;
  return m;
}

}  // namespace aesifc::rtl
