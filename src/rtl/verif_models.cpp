#include "rtl/verif_models.h"

#include <vector>

namespace aesifc::rtl {

using hdl::ExprId;
using hdl::LabelTerm;
using hdl::Module;
using hdl::SignalId;
using lattice::Conf;
using lattice::Integ;
using lattice::Label;
using lattice::Principal;

namespace {

const Label kPT = Label::publicTrusted();
const Label kPU = Label::publicUntrusted();

// Chain label: confidentiality level k, fully trusted.
Label lvl(unsigned k) { return Label{Conf::level(k), Integ::top()}; }

// Tag encoding used by the pipeline/scratchpad models: value 0 = public /
// empty, values 1..3 = confidentiality levels 1..3 (chain), all trusted.
std::vector<Label> tagTable() { return {lvl(0), lvl(1), lvl(2), lvl(3)}; }

// a <= b on 2-bit tags: !(b < a).
ExprId leq(Module& m, ExprId a, ExprId b) { return m.bnot(m.ult(b, a)); }

// 4-way mux tree selected by a 2-bit index.
ExprId muxTree4(Module& m, ExprId index, const std::vector<ExprId>& vals) {
  ExprId acc = vals[0];
  for (unsigned i = 1; i < 4; ++i) {
    acc = m.mux(m.eq(index, m.c(2, i)), vals[i], acc);
  }
  return acc;
}

}  // namespace

Module buildCacheTags(bool buggy) {
  Module m{buggy ? "cache_tags_buggy" : "cache_tags"};

  const auto we = m.input("we", 1, LabelTerm::of(kPT));
  const auto way = m.input("way", 1, LabelTerm::of(kPT));
  const auto index = m.input("index", 2, LabelTerm::of(kPT));
  // Fig. 3: tag_i / tag_o switch integrity level with the selected way.
  const auto tag_i =
      m.input("tag_i", 19, LabelTerm::dependent(way, {kPT, kPU}));
  const auto tag_o =
      m.output("tag_o", 19, LabelTerm::dependent(way, {kPT, kPU}));

  std::vector<SignalId> tag0, tag1;
  for (unsigned i = 0; i < 4; ++i) {
    tag0.push_back(
        m.reg("tag_0_" + std::to_string(i), 19, LabelTerm::of(kPT)));
    tag1.push_back(
        m.reg("tag_1_" + std::to_string(i), 19, LabelTerm::of(kPU)));
  }

  const auto way0 = m.eq(m.read(way), m.c(1, 0));
  const auto way1 = m.eq(m.read(way), m.c(1, 1));
  for (unsigned i = 0; i < 4; ++i) {
    const auto sel = m.eq(m.read(index), m.c(2, i));
    // The bug: writes land in the trusted array irrespective of the way, so
    // untrusted tag_i (way == 1) contaminates trusted storage.
    const auto en0 =
        buggy ? m.band(m.read(we), sel) : m.band(m.band(m.read(we), way0), sel);
    m.regWrite(tag0[i], m.read(tag_i), en0);
    const auto en1 = m.band(m.band(m.read(we), way1), sel);
    m.regWrite(tag1[i], m.read(tag_i), en1);
  }

  std::vector<ExprId> r0, r1;
  for (unsigned i = 0; i < 4; ++i) {
    r0.push_back(m.read(tag0[i]));
    r1.push_back(m.read(tag1[i]));
  }
  m.assign(tag_o, m.mux(way0, muxTree4(m, m.read(index), r0),
                        muxTree4(m, m.read(index), r1)));
  return m;
}

Module buildAesControl(bool leaky) {
  Module m{leaky ? "aes_control_leaky" : "aes_control"};
  const Label secret{Conf::top(), Integ::top()};

  const auto start = m.input("start", 1, LabelTerm::of(kPT));
  const auto key_bit = m.input("key_bit", 1, LabelTerm::of(secret));
  const auto valid = m.output("valid", 1, LabelTerm::of(kPT));

  // In the leaky design the counter itself becomes key-dependent, so the
  // designer is forced to type it secret — and the public `valid` output
  // then fails to type-check, exactly the Fig. 6 error.
  const auto ctr = m.reg("round_ctr", 4, LabelTerm::of(leaky ? secret : kPT));
  const auto busy = m.reg("busy", 1, LabelTerm::of(leaky ? secret : kPT));

  // Rounds to run: constant in the fixed design, key-dependent in the leaky
  // one (early termination on a key bit — Koeune-Quisquater style).
  const auto limit =
      leaky ? m.mux(m.read(key_bit), m.c(4, 10), m.c(4, 12)) : m.c(4, 12);

  const auto done = m.band(m.read(busy), m.eq(m.read(ctr), limit));
  m.regWrite(busy, m.mux(m.read(start), m.c(1, 1),
                         m.mux(done, m.c(1, 0), m.read(busy))));
  m.regWrite(ctr, m.mux(m.read(start), m.c(4, 0),
                        m.mux(m.read(busy), m.add(m.read(ctr), m.c(4, 1)),
                              m.read(ctr))));
  m.assign(valid, done);
  return m;
}

Module buildCiphertextRelease(ReleaseScenario s) {
  Module m{"ciphertext_release"};

  const Conf cu = Conf::category(1);
  const Integ iu = Integ::category(1);
  const bool master = s == ReleaseScenario::MasterKeyUser ||
                      s == ReleaseScenario::MasterKeySupervisor;
  const Conf ck = master ? Conf::top() : Conf::category(1);

  const auto pt = m.input("plaintext", 8, LabelTerm::of(Label{cu, iu}));
  const auto key = m.input("key", 8, LabelTerm::of(Label{ck, iu}));
  const auto ct = m.output("ciphertext", 8,
                           LabelTerm::of(Label{Conf::bottom(), iu}));

  // Toy "encryption": the label arithmetic — (ck join cu, iu) — is what is
  // under test, not the cipher.
  const auto enc = m.bxor(m.read(pt), m.read(key));

  const Principal user{"user", Label{cu, iu}};
  const Principal sup = Principal::supervisor();

  switch (s) {
    case ReleaseScenario::NoDeclass:
      m.assign(ct, enc);  // designer "considers the ciphertext public"
      break;
    case ReleaseScenario::UserKey:
      m.declassify(ct, enc, Label{Conf::bottom(), iu}, user,
                   "release ciphertext at end of pipeline");
      break;
    case ReleaseScenario::MasterKeyUser:
      m.declassify(ct, enc, Label{Conf::bottom(), iu}, user,
                   "user attempts to release master-key ciphertext");
      break;
    case ReleaseScenario::MasterKeySupervisor:
      m.declassify(ct, enc, Label{Conf::bottom(), iu}, sup,
                   "supervisor releases master-key ciphertext");
      break;
  }
  return m;
}

Module buildStallPipeline(bool meet_gated) {
  return buildStallPipelineN(2, meet_gated);
}

Module buildStallPipelineN(unsigned stages, bool meet_gated) {
  Module m{std::string(meet_gated ? "stall_pipeline_meet"
                                  : "stall_pipeline_baseline") +
           "_x" + std::to_string(stages)};
  const auto table = tagTable();

  const auto in_tag = m.input("in_tag", 2, LabelTerm::of(kPT));
  const auto in_data =
      m.input("in_data", 8, LabelTerm::dependent(in_tag, table));
  const auto req_tag = m.input("req_tag", 2, LabelTerm::of(kPT));
  // The stall request is raised by the requester, so it carries the
  // requester's confidentiality (Fig. 8's l(Stall_req)).
  const auto stall_req =
      m.input("stall_req", 1, LabelTerm::dependent(req_tag, table));

  // Stage tag registers hold public metadata — labels themselves are
  // public, as in HyperFlow. Stage data registers take the dependent label
  // of their stage's tag (Fig. 7).
  std::vector<SignalId> tag_regs(stages), data_regs(stages);
  for (unsigned i = 0; i < stages; ++i) {
    tag_regs[i] =
        m.reg("s" + std::to_string(i + 1) + "_tag", 2, LabelTerm::of(kPT));
    data_regs[i] = m.reg("s" + std::to_string(i + 1) + "_data", 8,
                         LabelTerm::dependent(tag_regs[i], table));
  }

  const auto out_data =
      m.output("out_data", 8, LabelTerm::dependent(tag_regs.back(), table));

  // Fig. 8: the stall may only take effect when the requester's level flows
  // to the meet of every in-flight tag — including the tag of the block
  // waiting at the input, whose acceptance a stall would also delay.
  auto allowed = leq(m, m.read(req_tag), m.read(in_tag));
  for (unsigned i = 0; i < stages; ++i) {
    allowed = m.band(allowed, leq(m, m.read(req_tag), m.read(tag_regs[i])));
  }

  hdl::ExprId stall;
  if (meet_gated) {
    // The gated stall is the design's single *reviewed downgrade*
    // (Section 3.2.6): the meet comparator guarantees at runtime that every
    // in-flight (and waiting) block is at or above the requester's level,
    // so freezing the pipeline's public tag metadata reveals nothing the
    // observers may not learn. The checker verifies the downgrade is
    // nonmalleable and everything *else* — in particular the per-stage
    // dependent data labels — without trust.
    const auto stall_gate = m.wire("stall_gate", 1, LabelTerm::of(kPT));
    m.declassify(stall_gate, m.band(m.read(stall_req), allowed), kPT,
                 Principal{"stall_arbiter",
                           Label{Conf::top(), Integ::top()}},
                 "Fig. 8 meet-gated stall (reviewed downgrade, Sec 3.2.6)");
    stall = m.read(stall_gate);
  } else {
    // Baseline: the raw stall request gates the pipeline — the covert
    // timing channel of Section 3.2.5, flagged as timing violations.
    stall = m.read(stall_req);
  }
  const auto en = m.bnot(stall);

  // Tag and data shift together under the same enable; the checker resolves
  // each stage's dependent label at the incoming tag value (label update).
  m.regWrite(tag_regs[0], m.read(in_tag), en);
  m.regWrite(data_regs[0], m.read(in_data), en);
  for (unsigned i = 1; i < stages; ++i) {
    m.regWrite(tag_regs[i], m.read(tag_regs[i - 1]), en);
    m.regWrite(data_regs[i], m.read(data_regs[i - 1]), en);
  }

  m.assign(out_data, m.read(data_regs.back()));
  return m;
}

Module buildTaggedScratchpad(bool checked) {
  Module m{checked ? "scratchpad_tagged" : "scratchpad_unchecked"};
  const auto table = tagTable();

  const auto we = m.input("we", 1, LabelTerm::of(kPT));
  const auto addr = m.input("addr", 2, LabelTerm::of(kPT));
  const auto wr_tag = m.input("wr_tag", 2, LabelTerm::of(kPT));
  const auto wr_data =
      m.input("wr_data", 8, LabelTerm::dependent(wr_tag, table));
  const auto rd_tag = m.input("rd_tag", 2, LabelTerm::of(kPT));
  const auto rd_data =
      m.output("rd_data", 8, LabelTerm::dependent(rd_tag, table));

  // Per-cell configuration tags (set by the arbiter; modeled as pins).
  std::vector<SignalId> ctag, cell;
  for (unsigned i = 0; i < 4; ++i) {
    ctag.push_back(
        m.input("cell_tag_" + std::to_string(i), 2, LabelTerm::of(kPT)));
    cell.push_back(m.reg("cell_" + std::to_string(i), 8,
                         LabelTerm::dependent(ctag[i], table)));
  }

  for (unsigned i = 0; i < 4; ++i) {
    const auto hit = m.band(m.read(we), m.eq(m.read(addr), m.c(2, i)));
    // The runtime tag check of Fig. 5: the write proceeds only when the
    // requester's tag matches the cell's tag.
    const auto en =
        checked ? m.band(hit, m.eq(m.read(wr_tag), m.read(ctag[i]))) : hit;
    m.regWrite(cell[i], m.read(wr_data), en);
  }

  std::vector<ExprId> readable;
  for (unsigned i = 0; i < 4; ++i) {
    if (checked) {
      readable.push_back(m.mux(m.eq(m.read(ctag[i]), m.read(rd_tag)),
                               m.read(cell[i]), m.c(8, 0)));
    } else {
      readable.push_back(m.read(cell[i]));
    }
  }
  m.assign(rd_data, muxTree4(m, m.read(addr), readable));
  return m;
}

}  // namespace aesifc::rtl
