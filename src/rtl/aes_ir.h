#pragma once
// A full, unrolled AES-128 encryption datapath expressed in the security-
// typed IR: 10 rounds of 16 S-box LUTs, ShiftRows wiring, a MixColumns
// GF(2^8) xor network, and AddRoundKey, with plaintext/key labels joined at
// the ciphertext. Used to (a) integration-test the HDL+simulator against
// the golden software AES, (b) run the static checker on a realistically
// sized netlist, and (c) cross-check the area model's netlist estimator.

#include "hdl/ir.h"

namespace aesifc::rtl {

struct AesIrPorts {
  hdl::SignalId pt;                   // 128-bit plaintext input
  std::vector<hdl::SignalId> rk;      // 11 x 128-bit round keys
  hdl::SignalId ct;                   // 128-bit ciphertext output
};

// Combinational AES-128 encryption. Plaintext carries the user category,
// round keys the key category; the ciphertext output is annotated with the
// honest join of both.
hdl::Module buildAesEncrypt128(AesIrPorts* ports = nullptr);

// One AES round (SubBytes + ShiftRows + MixColumns + AddRoundKey) as an IR
// expression; exposed for reuse and round-level tests. `last_round` skips
// MixColumns.
hdl::ExprId emitAesRound(hdl::Module& m, hdl::ExprId state128,
                         hdl::ExprId roundkey128, bool last_round);

// Combinational AES-128 *decryption* (equivalent straightforward inverse
// cipher), same port/label structure as the encryptor.
hdl::Module buildAesDecrypt128(AesIrPorts* ports = nullptr);

// One inverse round; `last_round` skips InvMixColumns.
hdl::ExprId emitAesInvRound(hdl::Module& m, hdl::ExprId state128,
                            hdl::ExprId roundkey128, bool last_round);

// --- Sequential key expansion -------------------------------------------------
// AES-128 key schedule as a clocked FSM: `start` latches the key, then one
// round key is produced per cycle (rk0 first). Exercises registers, S-box
// LUTs and rcon recurrence in the IR; verified against aes::expandKey and
// type-checked with the key's confidentiality label.
struct KeyExpandPorts {
  hdl::SignalId key;    // 128-bit input
  hdl::SignalId start;  // 1-bit input
  hdl::SignalId rk;     // 128-bit output: current round key
  hdl::SignalId rk_valid;  // 1-bit output
  hdl::SignalId round;     // 4-bit output: index of the round key on rk
};
hdl::Module buildKeyExpand128(KeyExpandPorts* ports = nullptr);

// --- Sequential pipelined datapath ----------------------------------------------
// A register-per-round AES-128 pipeline in IR form: 10 round stages (plus
// the entry AddRoundKey), one block accepted per cycle, 10-cycle latency.
// Each stage has a valid bit; round keys are inputs (one per round, shared
// by all in-flight blocks — the single-key configuration). This is the
// Fig. 7 structure expressed at RTL and simulated cycle-accurately.
struct AesPipeIrPorts {
  hdl::SignalId in_valid;  // 1-bit input
  hdl::SignalId pt;        // 128-bit input
  std::vector<hdl::SignalId> rk;  // 11 x 128-bit inputs
  hdl::SignalId out_valid;        // 1-bit output
  hdl::SignalId ct;               // 128-bit output
};
hdl::Module buildAesPipelineIr(AesPipeIrPorts* ports = nullptr);

// --- Hardware Trojan scenario ([16], [9] in the paper) --------------------------
// An AES datapath with a public `status` output. The trojaned variant wires
// a key byte onto `status` when the plaintext matches a 128-bit trigger —
// practically invisible to random testing, but a direct label violation the
// static checker reports. The clean variant drives status from public data
// only.
hdl::Module buildAesWithStatus(bool trojaned, AesIrPorts* ports = nullptr);

}  // namespace aesifc::rtl
