#include "soc/health.h"

#include <sstream>

namespace aesifc::soc {

std::string toString(HealthState s) {
  switch (s) {
    case HealthState::Healthy: return "healthy";
    case HealthState::Degraded: return "degraded";
    case HealthState::Quarantined: return "quarantined";
    case HealthState::Probation: return "probation";
  }
  return "?";
}

HealthMonitor::HealthMonitor(HealthConfig cfg) : cfg_{cfg} {}

unsigned HealthMonitor::entries(HealthState s) const {
  unsigned n = 0;
  for (const auto& t : transitions_) {
    if (t.to == s) ++n;
  }
  return n;
}

void HealthMonitor::moveTo(HealthState to, std::uint64_t cycle,
                           std::string reason) {
  if (to == state_) return;
  transitions_.push_back({state_, to, cycle, std::move(reason)});
  state_ = to;
  if (to == HealthState::Quarantined) quarantined_since_ = cycle;
  if (to != HealthState::Degraded) clean_windows_ = 0;
  if (to == HealthState::Healthy) wedged_windows_ = 0;
}

HealthState HealthMonitor::onWindow(const RobustnessStats& window,
                                    std::uint64_t ops, std::uint64_t ok,
                                    std::uint64_t cycle) {
  // Quarantine and probation are left via residency + canaries, not via
  // traffic windows (fallback traffic says nothing about the hardware).
  if (state_ == HealthState::Quarantined || state_ == HealthState::Probation)
    return state_;
  if (ops == 0) return state_;

  const double rate = static_cast<double>(window.timeouts +
                                          window.fault_aborts + window.drops) /
                      static_cast<double>(ops);
  if (ok == 0) {
    ++wedged_windows_;
  } else {
    wedged_windows_ = 0;
  }

  std::ostringstream why;
  why << "window: ops=" << ops << " ok=" << ok << " transient-rate=" << rate;

  if (wedged_windows_ >= cfg_.wedged_windows) {
    moveTo(HealthState::Quarantined, cycle,
           why.str() + " (" + std::to_string(wedged_windows_) +
               " wedged windows)");
  } else if (ops < cfg_.min_window_ops) {
    // Too few samples for the rate to mean anything; wait for more traffic.
  } else if (rate > cfg_.quarantine_threshold) {
    moveTo(HealthState::Quarantined, cycle,
           why.str() + " > quarantine threshold");
  } else if (rate > cfg_.degrade_threshold) {
    clean_windows_ = 0;
    moveTo(HealthState::Degraded, cycle, why.str() + " > degrade threshold");
  } else if (state_ == HealthState::Degraded) {
    if (++clean_windows_ >= cfg_.recovery_windows) {
      moveTo(HealthState::Healthy, cycle,
             why.str() + " (" + std::to_string(clean_windows_) +
                 " clean windows)");
    }
  }
  return state_;
}

bool HealthMonitor::tryBeginProbation(std::uint64_t cycle) {
  if (state_ != HealthState::Quarantined) return false;
  if (cycle < quarantined_since_ + cfg_.quarantine_residency_cycles)
    return false;
  moveTo(HealthState::Probation, cycle, "quarantine residency elapsed");
  return true;
}

void HealthMonitor::onCanaryVerdict(bool all_passed, std::uint64_t cycle) {
  if (state_ != HealthState::Probation) return;
  if (all_passed) {
    moveTo(HealthState::Healthy, cycle, "all canary probes passed");
  } else {
    moveTo(HealthState::Quarantined, cycle, "canary probe failed");
  }
}

void HealthMonitor::forceQuarantine(std::uint64_t cycle,
                                    const std::string& reason) {
  if (state_ == HealthState::Quarantined) return;
  moveTo(HealthState::Quarantined, cycle, reason);
}

}  // namespace aesifc::soc
