#include "soc/key_manager.h"

namespace aesifc::soc {

using accel::kRoundKeySlots;
using accel::kScratchpadCells;

KeyManager::KeyManager(accel::AesAccelerator& acc, std::uint64_t seed)
    : acc_{acc}, rng_{seed} {
  // Slot 0 is reserved for the master key by convention.
  slot_in_use_.set(0);
}

std::vector<std::uint8_t> KeyManager::freshKey() {
  std::vector<std::uint8_t> k(16);
  for (auto& b : k) b = static_cast<std::uint8_t>(rng_.next());
  return k;
}

bool KeyManager::install(Session& s) {
  acc_.configureKeyCells(s.user, s.cell_base, 2);
  for (unsigned c = 0; c < 2; ++c) {
    std::uint64_t w = 0;
    for (unsigned b = 0; b < 8; ++b)
      w |= static_cast<std::uint64_t>(s.key[8 * c + b]) << (8 * b);
    if (!acc_.writeKeyCell(s.user, s.cell_base + c, w)) return false;
  }
  return acc_.loadKey(s.user, s.slot, s.cell_base, aes::KeySize::Aes128,
                      acc_.principal(s.user).authority.c);
}

std::optional<KeyManager::Session> KeyManager::openSession(unsigned user) {
  if (sessions_.count(user)) return std::nullopt;  // one session per user

  int slot = -1;
  for (unsigned i = 0; i < kRoundKeySlots; ++i) {
    if (!slot_in_use_.test(i)) {
      slot = static_cast<int>(i);
      break;
    }
  }
  int base = -1;
  for (unsigned i = 0; i + 1 < kScratchpadCells; i += 2) {
    if (!cells_in_use_.test(i) && !cells_in_use_.test(i + 1)) {
      base = static_cast<int>(i);
      break;
    }
  }
  if (slot < 0 || base < 0) return std::nullopt;

  Session s;
  s.user = user;
  s.slot = static_cast<unsigned>(slot);
  s.cell_base = static_cast<unsigned>(base);
  s.key = freshKey();
  s.generation = 1;
  if (!install(s)) return std::nullopt;

  slot_in_use_.set(s.slot);
  cells_in_use_.set(s.cell_base);
  cells_in_use_.set(s.cell_base + 1);
  auto [it, ok] = sessions_.emplace(user, std::move(s));
  (void)ok;
  return it->second;
}

bool KeyManager::rotate(unsigned user, unsigned max_wait_cycles) {
  auto it = sessions_.find(user);
  if (it == sessions_.end()) return false;
  // A frozen session's generation is pledged to an in-flight migration;
  // rotating underneath it would invalidate the ticket's proof.
  if (it->second.exporting) return false;
  // Updating the round-key RAM while a block of this slot is in flight
  // would corrupt it mid-encryption; drain first.
  unsigned waited = 0;
  while (acc_.keySlotBusy(it->second.slot)) {
    if (waited++ >= max_wait_cycles) return false;
    acc_.tick();
  }
  Session candidate = it->second;
  candidate.key = freshKey();
  candidate.generation++;
  if (!install(candidate)) return false;
  it->second = std::move(candidate);
  return true;
}

bool KeyManager::quiesceAndRelease(Session& s) {
  unsigned waited = 0;
  while (acc_.keySlotBusy(s.slot)) {
    if (waited++ >= 256) return false;
    acc_.tick();
  }
  if (!acc_.clearKey(s.user, s.slot)) return false;
  // Scrub the scratchpad cells as well.
  for (unsigned c = 0; c < 2; ++c) {
    acc_.writeKeyCell(s.user, s.cell_base + c, 0);
  }
  slot_in_use_.reset(s.slot);
  cells_in_use_.reset(s.cell_base);
  cells_in_use_.reset(s.cell_base + 1);
  return true;
}

bool KeyManager::closeSession(unsigned user) {
  auto it = sessions_.find(user);
  if (it == sessions_.end()) return false;
  if (!quiesceAndRelease(it->second)) return false;
  sessions_.erase(it);
  return true;
}

std::optional<KeyManager::MigrationTicket> KeyManager::exportForMigration(
    unsigned user) {
  auto it = sessions_.find(user);
  if (it == sessions_.end()) return std::nullopt;
  it->second.exporting = true;
  MigrationTicket t;
  t.user = user;
  t.key = it->second.key;
  t.generation = it->second.generation;
  return t;
}

std::optional<KeyManager::Session> KeyManager::importProvisioned(
    const MigrationTicket& ticket) {
  if (ticket.key.size() != 16) return std::nullopt;
  auto imported = openSession(ticket.user);
  if (!imported.has_value()) return std::nullopt;
  // openSession installed a fresh random key to claim the resources; swap
  // in the migrated material under the ticket's next generation through the
  // same audited install path.
  auto it = sessions_.find(ticket.user);
  Session candidate = it->second;
  candidate.key = ticket.key;
  candidate.generation = ticket.generation + 1;
  if (!install(candidate)) {
    closeSession(ticket.user);
    return std::nullopt;
  }
  it->second = std::move(candidate);
  return it->second;
}

bool KeyManager::finishMigration(unsigned user,
                                 std::uint64_t imported_generation) {
  auto it = sessions_.find(user);
  if (it == sessions_.end()) return false;
  if (!it->second.exporting) return false;
  if (imported_generation != it->second.generation + 1) {
    // Proof mismatch: the target does not hold this key's next generation.
    // Unfreeze so the caller can retry the export or keep serving here.
    it->second.exporting = false;
    return false;
  }
  if (!quiesceAndRelease(it->second)) return false;
  sessions_.erase(it);
  return true;
}

const KeyManager::Session* KeyManager::session(unsigned user) const {
  auto it = sessions_.find(user);
  return it == sessions_.end() ? nullptr : &it->second;
}

}  // namespace aesifc::soc
