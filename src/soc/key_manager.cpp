#include "soc/key_manager.h"

namespace aesifc::soc {

using accel::kRoundKeySlots;
using accel::kScratchpadCells;

KeyManager::KeyManager(accel::AesAccelerator& acc, std::uint64_t seed)
    : acc_{acc}, rng_{seed} {
  // Slot 0 is reserved for the master key by convention.
  slot_in_use_ = 0x01;
}

std::vector<std::uint8_t> KeyManager::freshKey() {
  std::vector<std::uint8_t> k(16);
  for (auto& b : k) b = static_cast<std::uint8_t>(rng_.next());
  return k;
}

bool KeyManager::install(Session& s) {
  acc_.configureKeyCells(s.user, s.cell_base, 2);
  for (unsigned c = 0; c < 2; ++c) {
    std::uint64_t w = 0;
    for (unsigned b = 0; b < 8; ++b)
      w |= static_cast<std::uint64_t>(s.key[8 * c + b]) << (8 * b);
    if (!acc_.writeKeyCell(s.user, s.cell_base + c, w)) return false;
  }
  return acc_.loadKey(s.user, s.slot, s.cell_base, aes::KeySize::Aes128,
                      acc_.principal(s.user).authority.c);
}

std::optional<KeyManager::Session> KeyManager::openSession(unsigned user) {
  if (sessions_.count(user)) return std::nullopt;  // one session per user

  int slot = -1;
  for (unsigned i = 0; i < kRoundKeySlots; ++i) {
    if (!(slot_in_use_ & (1u << i))) {
      slot = static_cast<int>(i);
      break;
    }
  }
  int base = -1;
  for (unsigned i = 0; i + 1 < kScratchpadCells; i += 2) {
    if (!(cells_in_use_ & (3u << i))) {
      base = static_cast<int>(i);
      break;
    }
  }
  if (slot < 0 || base < 0) return std::nullopt;

  Session s;
  s.user = user;
  s.slot = static_cast<unsigned>(slot);
  s.cell_base = static_cast<unsigned>(base);
  s.key = freshKey();
  s.generation = 1;
  if (!install(s)) return std::nullopt;

  slot_in_use_ |= static_cast<std::uint8_t>(1u << s.slot);
  cells_in_use_ |= static_cast<std::uint8_t>(3u << s.cell_base);
  auto [it, ok] = sessions_.emplace(user, std::move(s));
  (void)ok;
  return it->second;
}

bool KeyManager::rotate(unsigned user, unsigned max_wait_cycles) {
  auto it = sessions_.find(user);
  if (it == sessions_.end()) return false;
  // Updating the round-key RAM while a block of this slot is in flight
  // would corrupt it mid-encryption; drain first.
  unsigned waited = 0;
  while (acc_.keySlotBusy(it->second.slot)) {
    if (waited++ >= max_wait_cycles) return false;
    acc_.tick();
  }
  Session candidate = it->second;
  candidate.key = freshKey();
  candidate.generation++;
  if (!install(candidate)) return false;
  it->second = std::move(candidate);
  return true;
}

bool KeyManager::closeSession(unsigned user) {
  auto it = sessions_.find(user);
  if (it == sessions_.end()) return false;
  unsigned waited = 0;
  while (acc_.keySlotBusy(it->second.slot)) {
    if (waited++ >= 256) return false;
    acc_.tick();
  }
  if (!acc_.clearKey(user, it->second.slot)) return false;
  // Scrub the scratchpad cells as well.
  for (unsigned c = 0; c < 2; ++c) {
    acc_.writeKeyCell(user, it->second.cell_base + c, 0);
  }
  slot_in_use_ &= static_cast<std::uint8_t>(~(1u << it->second.slot));
  cells_in_use_ &= static_cast<std::uint8_t>(~(3u << it->second.cell_base));
  sessions_.erase(it);
  return true;
}

const KeyManager::Session* KeyManager::session(unsigned user) const {
  auto it = sessions_.find(user);
  return it == sessions_.end() ? nullptr : &it->second;
}

}  // namespace aesifc::soc
