#include "soc/service.h"

#include <sstream>
#include <stdexcept>

#include "aes/cipher.h"
#include "soc/policy_engine.h"

namespace aesifc::soc {

using accel::AccelStatus;

std::string toString(CompletionStatus s) {
  switch (s) {
    case CompletionStatus::Ok: return "ok";
    case CompletionStatus::Suppressed: return "suppressed";
    case CompletionStatus::TimedOut: return "timed-out";
    case CompletionStatus::FaultAborted: return "fault-aborted";
    case CompletionStatus::Dropped: return "dropped";
    case CompletionStatus::Rejected: return "rejected";
    case CompletionStatus::Shed: return "shed";
    case CompletionStatus::AuthFailed: return "auth-failed";
  }
  return "?";
}

std::string toString(ServedBy s) {
  switch (s) {
    case ServedBy::Hardware: return "hardware";
    case ServedBy::SoftwareFallback: return "software-fallback";
    case ServedBy::None: return "none";
  }
  return "?";
}

std::string ServiceStats::toJson() const {
  std::ostringstream os;
  os << "{\"offered\":" << offered << ",\"admitted\":" << admitted
     << ",\"rejected_queue_full\":" << rejected_queue_full
     << ",\"rejected_backpressure\":" << rejected_backpressure
     << ",\"shed\":" << shed << ",\"completed_hw\":" << completed_hw
     << ",\"completed_fallback\":" << completed_fallback
     << ",\"fallback_suppressed\":" << fallback_suppressed
     << ",\"hw_transient_failures\":" << hw_transient_failures
     << ",\"requeues\":" << requeues << ",\"batched_runs\":" << batched_runs
     << ",\"batched_blocks\":" << batched_blocks
     << ",\"batch_fallbacks\":" << batch_fallbacks
     << ",\"canary_rounds\":" << canary_rounds
     << ",\"canary_failures\":" << canary_failures
     << ",\"key_reprovisions\":" << key_reprovisions
     << ",\"aead_offered\":" << aead_offered
     << ",\"aead_admitted\":" << aead_admitted
     << ",\"aead_completed_hw\":" << aead_completed_hw
     << ",\"aead_completed_fallback\":" << aead_completed_fallback
     << ",\"aead_auth_failed\":" << aead_auth_failed
     << ",\"wrong_key_uses\":" << wrong_key_uses
     << ",\"dma_ring_runs\":" << dma_ring_runs
     << ",\"dma_ring_blocks\":" << dma_ring_blocks
     << ",\"dma_ring_fallbacks\":" << dma_ring_fallbacks << "}";
  return os.str();
}

ServiceStats& ServiceStats::operator+=(const ServiceStats& o) {
  offered += o.offered;
  admitted += o.admitted;
  rejected_queue_full += o.rejected_queue_full;
  rejected_backpressure += o.rejected_backpressure;
  shed += o.shed;
  completed_hw += o.completed_hw;
  completed_fallback += o.completed_fallback;
  fallback_suppressed += o.fallback_suppressed;
  hw_transient_failures += o.hw_transient_failures;
  requeues += o.requeues;
  batched_runs += o.batched_runs;
  batched_blocks += o.batched_blocks;
  batch_fallbacks += o.batch_fallbacks;
  canary_rounds += o.canary_rounds;
  canary_failures += o.canary_failures;
  key_reprovisions += o.key_reprovisions;
  aead_offered += o.aead_offered;
  aead_admitted += o.aead_admitted;
  aead_completed_hw += o.aead_completed_hw;
  aead_completed_fallback += o.aead_completed_fallback;
  aead_auth_failed += o.aead_auth_failed;
  wrong_key_uses += o.wrong_key_uses;
  dma_ring_runs += o.dma_ring_runs;
  dma_ring_blocks += o.dma_ring_blocks;
  dma_ring_fallbacks += o.dma_ring_fallbacks;
  return *this;
}

namespace {
// Per-tenant slice of the service's DMA arena: descriptor ring, chain
// arena, completion ring, then src/dst staging. 32 KiB per tenant in a
// 1 MiB arena caps the ring path at 32 tenants; later tenants simply stay
// on the MMIO path.
constexpr std::size_t kRingArenaBytes = 1u << 20;
constexpr std::size_t kRingTenantSpan = 0x8000;
constexpr std::size_t kRingStagingSrc = 0x1000;
constexpr std::size_t kRingStagingDst = 0x4000;
constexpr std::size_t kRingStagingMax = kRingStagingDst - kRingStagingSrc;
}  // namespace

AccelService::AccelService(accel::AesAccelerator& acc, ServiceConfig cfg)
    : acc_{acc}, cfg_{cfg}, monitor_{cfg.health},
      window_start_cycle_{acc.cycle()} {
  if (cfg_.use_dma_ring) {
    ring_mem_ = std::make_unique<HostMemory>(kRingArenaBytes);
    ring_eng_ = std::make_unique<DmaRingEngine>(acc_, *ring_mem_,
                                                /*hardened=*/true);
  }
}

void AccelService::setupTenantRing(unsigned tenant) {
  ring_drvs_.push_back(nullptr);
  if (!ring_eng_) return;
  const std::size_t base = kRingTenantSpan * tenant;
  if (base + kRingTenantSpan > ring_mem_->size()) return;  // arena exhausted
  // The whole slice — rings and staging — carries the tenant's authority,
  // so the engine's ring-page and src/dst page checks bind the channel to
  // this tenant exactly like the MMIO port binds a BlockRequest.
  ring_mem_->setPageLabel(base, kRingTenantSpan,
                          acc_.principal(tenants_[tenant].user).authority);
  DmaRingConfig rc;
  rc.desc_base = base;
  rc.desc_slots = 8;
  rc.chain_base = base + 0x200;
  rc.chain_slots = 8;
  rc.comp_base = base + 0x400;
  rc.comp_slots = 8;
  const unsigned ch = ring_eng_->addChannel(rc);
  ring_drvs_.back() =
      std::make_unique<DmaRingDriver>(*ring_eng_, *ring_mem_, ch, rc);
}

unsigned AccelService::addTenant(const TenantSpec& spec) {
  const auto t = tryAddTenant(spec);
  if (!t.has_value()) {
    throw std::runtime_error("AccelService::addTenant: key provisioning for "
                             "user " + std::to_string(spec.user) + " refused");
  }
  return *t;
}

std::optional<unsigned> AccelService::tryAddTenant(const TenantSpec& spec) {
  if (!accel::loadKeyBytes(acc_, spec.user, spec.key_slot, spec.cell_base,
                           spec.key, aes::KeySize::Aes128, spec.key_conf)) {
    return std::nullopt;
  }
  const unsigned t = static_cast<unsigned>(tenants_.size());
  tenants_.push_back(spec);
  sessions_.emplace_back(acc_, spec.user, spec.key_slot, cfg_.healthy_opts);
  golden_.push_back(aes::expandKey(spec.key, aes::KeySize::Aes128));
  queues_.emplace_back();
  completions_.emplace_back();
  aead_queues_.emplace_back();
  aead_completions_.emplace_back();
  tenant_active_.push_back(1);
  completed_per_tenant_.push_back(0);
  setupTenantRing(t);
  return t;
}

void AccelService::deactivateTenant(unsigned tenant) {
  tenant_active_.at(tenant) = 0;
}

bool AccelService::drainTenant(unsigned tenant, std::uint64_t max_device_cycles) {
  const std::uint64_t start = acc_.cycle();
  while ((!queues_.at(tenant).empty() || !aead_queues_.at(tenant).empty()) &&
         acc_.cycle() - start < max_device_cycles) {
    pump();
  }
  return queues_.at(tenant).empty() && aead_queues_.at(tenant).empty();
}

void AccelService::forceQuarantine(const std::string& reason) {
  monitor_.forceQuarantine(acc_.cycle(), reason);
  logTransitions();
  applyStateOptions();
}

std::size_t AccelService::totalQueued() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  for (const auto& q : aead_queues_) n += q.size();
  return n;
}

SubmitResult AccelService::submit(unsigned tenant, const aes::Block& data,
                                  bool decrypt) {
  ++stats_.offered;
  auto& q = queues_.at(tenant);

  // A retired tenant's key is zeroized (or owned by another shard now);
  // nothing may be queued behind it.
  if (!tenant_active_.at(tenant)) {
    return {false, 0, AdmitError::TenantRetired};
  }

  // Global watermark first: when the whole service is saturated, shedding a
  // tenant's own queue would not relieve the pressure — push back on the
  // caller instead.
  if (totalQueued() >= cfg_.global_high_watermark) {
    ++stats_.rejected_backpressure;
    return {false, 0, AdmitError::Backpressure};
  }

  if (q.size() >= tenants_[tenant].queue_depth) {
    if (cfg_.overflow == OverflowPolicy::RejectNew) {
      ++stats_.rejected_queue_full;
      return {false, 0, AdmitError::QueueFull};
    }
    // ShedOldest: the tenant trades its own stalest request for the fresh
    // one; the evicted ticket still resolves (as Shed), never vanishes.
    Request victim = std::move(q.front());
    q.pop_front();
    ++stats_.shed;
    complete(tenant, victim, CompletionStatus::Shed, ServedBy::None,
             aes::Block{});
  }

  Request req;
  req.ticket = next_ticket_++;
  req.data = data;
  req.decrypt = decrypt;
  req.submit_cycle = acc_.cycle();
  q.push_back(req);
  ++stats_.admitted;
  return {true, req.ticket, AdmitError::QueueFull};
}

std::optional<Completion> AccelService::fetch(unsigned tenant) {
  auto& c = completions_.at(tenant);
  if (c.empty()) return std::nullopt;
  Completion out = std::move(c.front());
  c.pop_front();
  return out;
}

void AccelService::complete(unsigned tenant, const Request& req,
                            CompletionStatus st, ServedBy by,
                            const aes::Block& data) {
  Completion c;
  c.ticket = req.ticket;
  c.tenant = tenant;
  c.status = st;
  c.served_by = by;
  c.data = data;
  c.submit_cycle = req.submit_cycle;
  c.complete_cycle = acc_.cycle();
  completions_.at(tenant).push_back(std::move(c));
  if (st == CompletionStatus::Ok) ++completed_per_tenant_.at(tenant);
}

SubmitResult AccelService::submitAead(unsigned tenant, AeadRequest req) {
  ++stats_.offered;
  ++stats_.aead_offered;
  auto& q = aead_queues_.at(tenant);
  if (!tenant_active_.at(tenant)) {
    return {false, 0, AdmitError::TenantRetired};
  }
  if (totalQueued() >= cfg_.global_high_watermark) {
    ++stats_.rejected_backpressure;
    return {false, 0, AdmitError::Backpressure};
  }
  if (q.size() >= tenants_[tenant].aead_queue_depth) {
    if (cfg_.overflow == OverflowPolicy::RejectNew) {
      ++stats_.rejected_queue_full;
      return {false, 0, AdmitError::QueueFull};
    }
    AeadRequest victim = std::move(q.front());
    q.pop_front();
    ++stats_.shed;
    completeAead(tenant, victim, CompletionStatus::Shed, ServedBy::None, {},
                 aes::Tag128{});
  }
  req.ticket = next_ticket_++;
  req.submit_cycle = acc_.cycle();
  const std::uint64_t ticket = req.ticket;
  q.push_back(std::move(req));
  ++stats_.admitted;
  ++stats_.aead_admitted;
  return {true, ticket, AdmitError::QueueFull};
}

SubmitResult AccelService::submitSeal(unsigned tenant,
                                      const std::vector<std::uint8_t>& plaintext,
                                      const std::vector<std::uint8_t>& aad,
                                      const std::vector<std::uint8_t>& iv) {
  AeadRequest req;
  req.open = false;
  req.iv = iv;
  req.aad = aad;
  req.data = plaintext;
  return submitAead(tenant, std::move(req));
}

SubmitResult AccelService::submitOpen(unsigned tenant,
                                      const std::vector<std::uint8_t>& ciphertext,
                                      const std::vector<std::uint8_t>& aad,
                                      const aes::Tag128& tag,
                                      const std::vector<std::uint8_t>& iv) {
  AeadRequest req;
  req.open = true;
  req.iv = iv;
  req.aad = aad;
  req.data = ciphertext;
  req.tag = tag;
  return submitAead(tenant, std::move(req));
}

std::optional<AeadCompletion> AccelService::fetchAead(unsigned tenant) {
  auto& c = aead_completions_.at(tenant);
  if (c.empty()) return std::nullopt;
  AeadCompletion out = std::move(c.front());
  c.pop_front();
  return out;
}

void AccelService::completeAead(unsigned tenant, const AeadRequest& req,
                                CompletionStatus st, ServedBy by,
                                std::vector<std::uint8_t> data,
                                const aes::Tag128& tag) {
  AeadCompletion c;
  c.ticket = req.ticket;
  c.tenant = tenant;
  c.status = st;
  c.served_by = by;
  c.data = std::move(data);
  c.tag = tag;
  c.submit_cycle = req.submit_cycle;
  c.complete_cycle = acc_.cycle();
  aead_completions_.at(tenant).push_back(std::move(c));
  if (st == CompletionStatus::Ok) ++completed_per_tenant_.at(tenant);
}

void AccelService::logTransitions() {
  const auto& ts = monitor_.transitions();
  for (; logged_transitions_ < ts.size(); ++logged_transitions_) {
    const auto& t = ts[logged_transitions_];
    acc_.noteServiceEvent(0, toString(t.from) + " -> " + toString(t.to) +
                                 ": " + t.reason);
  }
}

void AccelService::applyStateOptions() {
  const auto& opts = monitor_.state() == HealthState::Degraded
                         ? cfg_.degraded_opts
                         : cfg_.healthy_opts;
  for (auto& s : sessions_) s.setOptions(opts);
}

bool AccelService::reprovisionKey(unsigned tenant) {
  // Never resurrect a retired tenant's key: after migration the slot is
  // zeroized on purpose, and re-installing it here would silently undo the
  // handover's security argument.
  if (!tenant_active_[tenant]) return false;
  const auto& spec = tenants_[tenant];
  if (!accel::loadKeyBytes(acc_, spec.user, spec.key_slot, spec.cell_base,
                           spec.key, aes::KeySize::Aes128, spec.key_conf)) {
    return false;
  }
  ++stats_.key_reprovisions;
  return true;
}

void AccelService::serveFallback(unsigned tenant, const Request& req) {
  // The breaker is open: compute in software, but release under exactly the
  // declassification rule the tagged pipeline applies at its exit. A label
  // the hardware would suppress stays suppressed — degraded mode must never
  // become a policy bypass.
  const auto& spec = tenants_[tenant];
  const auto decision = degradedReleaseDecision(
      acc_.principal(spec.user), spec.key_conf);
  // Model the software path's cost on the shared clock so quarantine
  // residency and the background scrub keep advancing.
  acc_.run(cfg_.fallback_cycles_per_block);
  if (!decision.allowed) {
    ++stats_.fallback_suppressed;
    complete(tenant, req, CompletionStatus::Suppressed,
             ServedBy::SoftwareFallback, aes::Block{});
    return;
  }
  const aes::Block out = req.decrypt
                             ? aes::decryptBlock(req.data, golden_[tenant])
                             : aes::encryptBlock(req.data, golden_[tenant]);
  ++stats_.completed_fallback;
  complete(tenant, req, CompletionStatus::Ok, ServedBy::SoftwareFallback, out);
}

void AccelService::serveHardware(unsigned tenant, Request req) {
  auto& session = sessions_[tenant];
  const auto r = req.decrypt ? session.decryptBlock(req.data)
                             : session.encryptBlock(req.data);
  if (r.has_value()) {
    ++stats_.completed_hw;
    complete(tenant, req, CompletionStatus::Ok, ServedBy::Hardware, *r);
    return;
  }
  switch (r.status()) {
    case AccelStatus::Suppressed:
      complete(tenant, req, CompletionStatus::Suppressed, ServedBy::Hardware,
               aes::Block{});
      return;
    case AccelStatus::Rejected:
      // Typically a fail-secure zeroized slot. Re-provision once and let
      // the request ride again; a tenant whose key cannot be restored gets
      // a definite Rejected.
      if (req.requeues < cfg_.max_requeues && reprovisionKey(tenant)) {
        ++req.requeues;
        ++stats_.requeues;
        queues_[tenant].push_front(std::move(req));
      } else {
        complete(tenant, req, CompletionStatus::Rejected, ServedBy::Hardware,
                 aes::Block{});
      }
      return;
    default:
      break;
  }
  // Transient failure that survived the driver's own retry budget.
  ++stats_.hw_transient_failures;
  if (req.requeues < cfg_.max_requeues) {
    ++req.requeues;
    ++stats_.requeues;
    // Front of the queue: per-tenant order is preserved, and if the breaker
    // trips before the next round the request is served by the fallback.
    queues_[tenant].push_front(std::move(req));
    return;
  }
  CompletionStatus st = CompletionStatus::TimedOut;
  if (r.status() == AccelStatus::FaultAborted)
    st = CompletionStatus::FaultAborted;
  else if (r.status() == AccelStatus::Dropped) st = CompletionStatus::Dropped;
  complete(tenant, req, st, ServedBy::Hardware, aes::Block{});
}

void AccelService::serveAeadFallback(unsigned tenant, const AeadRequest& req) {
  // Same contract as serveFallback, lifted to a whole message: the golden
  // software GCM computes the answer, but release still passes the Eq. 1
  // declassification check, and the shared clock is charged per block so
  // quarantine residency reflects the real work.
  const auto& spec = tenants_[tenant];
  const auto decision =
      degradedReleaseDecision(acc_.principal(spec.user), spec.key_conf);
  const std::uint64_t blocks = (req.data.size() + 15) / 16 +
                               (req.aad.size() + 15) / 16 +
                               (req.iv.size() + 15) / 16 + 2;  // + J0, tag
  acc_.run(cfg_.fallback_cycles_per_block * blocks);
  if (!decision.allowed) {
    ++stats_.fallback_suppressed;
    completeAead(tenant, req, CompletionStatus::Suppressed,
                 ServedBy::SoftwareFallback, {}, aes::Tag128{});
    return;
  }
  if (req.open) {
    auto pt = aes::gcmDecrypt(req.data, req.aad, req.tag, golden_[tenant],
                              req.iv);
    if (!pt.has_value()) {
      ++stats_.aead_auth_failed;
      completeAead(tenant, req, CompletionStatus::AuthFailed,
                   ServedBy::SoftwareFallback, {}, aes::Tag128{});
      return;
    }
    ++stats_.aead_completed_fallback;
    completeAead(tenant, req, CompletionStatus::Ok, ServedBy::SoftwareFallback,
                 std::move(*pt), aes::Tag128{});
    return;
  }
  auto r = aes::gcmEncrypt(req.data, req.aad, golden_[tenant], req.iv);
  ++stats_.aead_completed_fallback;
  completeAead(tenant, req, CompletionStatus::Ok, ServedBy::SoftwareFallback,
               std::move(r.ciphertext), r.tag);
}

void AccelService::serveAeadHardware(unsigned tenant, AeadRequest req) {
  auto& session = sessions_[tenant];
  AccelStatus st;
  std::vector<std::uint8_t> out;
  aes::Tag128 tag{};
  if (req.open) {
    auto r = session.gcmOpen(req.data, req.aad, req.tag, req.iv);
    st = r.status();
    if (r.has_value()) out = std::move(*r);
  } else {
    auto r = session.gcmSeal(req.data, req.aad, req.iv);
    st = r.status();
    if (r.has_value()) {
      out = std::move(r->ciphertext);
      tag = r->tag;
    }
  }
  switch (st) {
    case AccelStatus::Ok:
      ++stats_.aead_completed_hw;
      completeAead(tenant, req, CompletionStatus::Ok, ServedBy::Hardware,
                   std::move(out), tag);
      return;
    case AccelStatus::Suppressed:
      completeAead(tenant, req, CompletionStatus::Suppressed,
                   ServedBy::Hardware, {}, aes::Tag128{});
      return;
    case AccelStatus::AuthFailed:
      // A tag mismatch is a verdict about the message, not about device
      // health: terminal, never requeued, never failed over to software.
      ++stats_.aead_auth_failed;
      completeAead(tenant, req, CompletionStatus::AuthFailed,
                   ServedBy::Hardware, {}, aes::Tag128{});
      return;
    case AccelStatus::Rejected:
      if (req.requeues < cfg_.max_requeues && reprovisionKey(tenant)) {
        ++req.requeues;
        ++stats_.requeues;
        aead_queues_[tenant].push_front(std::move(req));
      } else {
        completeAead(tenant, req, CompletionStatus::Rejected,
                     ServedBy::Hardware, {}, aes::Tag128{});
      }
      return;
    default:
      break;
  }
  ++stats_.hw_transient_failures;
  if (req.requeues < cfg_.max_requeues) {
    ++req.requeues;
    ++stats_.requeues;
    aead_queues_[tenant].push_front(std::move(req));
    return;
  }
  CompletionStatus cs = CompletionStatus::TimedOut;
  if (st == AccelStatus::FaultAborted) cs = CompletionStatus::FaultAborted;
  else if (st == AccelStatus::Dropped) cs = CompletionStatus::Dropped;
  completeAead(tenant, req, cs, ServedBy::Hardware, {}, aes::Tag128{});
}

void AccelService::serveAead(unsigned tenant, AeadRequest req) {
  if (!tenant_active_[tenant]) {
    // A request surfaced for a retired tenant: executing it would use a
    // stale or zeroized key. Refuse, and count the near-miss — the elastic
    // pool's invariant is that this counter stays 0.
    ++stats_.wrong_key_uses;
    completeAead(tenant, req, CompletionStatus::Rejected, ServedBy::None, {},
                 aes::Tag128{});
    return;
  }
  const HealthState st = monitor_.state();
  if (st == HealthState::Quarantined || st == HealthState::Probation) {
    serveAeadFallback(tenant, req);
  } else {
    serveAeadHardware(tenant, std::move(req));
  }
}

void AccelService::serveOne(unsigned tenant, Request req) {
  if (!tenant_active_[tenant]) {
    ++stats_.wrong_key_uses;
    complete(tenant, req, CompletionStatus::Rejected, ServedBy::None,
             aes::Block{});
    return;
  }
  const HealthState st = monitor_.state();
  if (st == HealthState::Quarantined || st == HealthState::Probation) {
    serveFallback(tenant, req);
  } else {
    serveHardware(tenant, std::move(req));
  }
}

bool AccelService::serveBatchRing(unsigned tenant,
                                  const std::vector<Request>& run) {
  if (tenant >= ring_drvs_.size() || !ring_drvs_[tenant]) return false;
  if (run.size() < cfg_.dma_ring_min_run) return false;
  const std::size_t len = run.size() * 16;
  if (len > kRingStagingMax) return false;
  const TenantSpec& spec = tenants_[tenant];
  auto& drv = *ring_drvs_[tenant];
  const std::size_t base = kRingTenantSpan * tenant;
  const std::size_t src = base + kRingStagingSrc;
  const std::size_t dst = base + kRingStagingDst;

  std::vector<std::uint8_t> staged(len);
  for (std::size_t i = 0; i < run.size(); ++i)
    std::copy(run[i].data.begin(), run[i].data.end(),
              staged.begin() + 16 * i);
  ring_mem_->writeBytes(src, staged);

  DmaDescriptor d;
  d.user = spec.user;
  d.key_slot = spec.key_slot;
  d.mode = run.front().decrypt ? DmaMode::EcbDecrypt : DmaMode::EcbEncrypt;
  d.src = src;
  d.dst = dst;
  d.len = len;
  const auto seq = drv.submitChain({d});
  if (!seq) {
    ++stats_.dma_ring_fallbacks;
    return false;
  }
  // 1 block/cycle plus pipeline depth, with generous headroom for fault
  // retries and a watchdog recovery; a transfer that outlives this budget
  // is abandoned through a ring reset and re-served over MMIO.
  const std::uint64_t budget = 16 * run.size() + 16384;
  const DmaCompletion* c = drv.wait(*seq, budget);
  if (c == nullptr) {
    ring_eng_->ringReset(drv.channel());
    drv.resync();
    ++stats_.dma_ring_fallbacks;
    return false;
  }
  if (c->status == DmaError::None) {
    const auto out = ring_mem_->readBytes(dst, len);
    ++stats_.dma_ring_runs;
    stats_.dma_ring_blocks += run.size();
    stats_.completed_hw += run.size();
    for (std::size_t i = 0; i < run.size(); ++i) {
      aes::Block b;
      std::copy(out.begin() + 16 * i, out.begin() + 16 * (i + 1), b.begin());
      complete(tenant, run[i], CompletionStatus::Ok, ServedBy::Hardware, b);
    }
    return true;
  }
  if (c->status == DmaError::OutputSuppressed) {
    // Same uniform-verdict argument as the MMIO batch path: suppression is
    // a function of the tenant's label, identical for every block.
    for (const auto& req : run) {
      complete(tenant, req, CompletionStatus::Suppressed, ServedBy::Hardware,
               aes::Block{});
    }
    return true;
  }
  ++stats_.dma_ring_fallbacks;  // typed refusal: re-serve over MMIO
  return false;
}

void AccelService::serveBatchHardware(unsigned tenant,
                                      std::vector<Request> run) {
  if (serveBatchRing(tenant, run)) return;
  auto& session = sessions_[tenant];
  std::vector<aes::Block> blocks(run.size());
  for (std::size_t i = 0; i < run.size(); ++i) blocks[i] = run[i].data;
  const bool decrypt = run.front().decrypt;
  const auto r = decrypt ? session.decryptBlocks(blocks)
                         : session.encryptBlocks(blocks);
  ++stats_.batched_runs;
  stats_.batched_blocks += run.size();
  if (r.has_value()) {
    stats_.completed_hw += run.size();
    for (std::size_t i = 0; i < run.size(); ++i) {
      complete(tenant, run[i], CompletionStatus::Ok, ServedBy::Hardware,
               (*r)[i]);
    }
    return;
  }
  if (r.status() == AccelStatus::Suppressed) {
    // A suppression verdict is a function of the tenant's label and its
    // key's confidentiality, so it is uniform across a single-tenant
    // batch: every member is suppressed.
    for (const auto& req : run) {
      complete(tenant, req, CompletionStatus::Suppressed, ServedBy::Hardware,
               aes::Block{});
    }
    return;
  }
  // Transient failure or submit rejection: hand every member back to the
  // single-request path, which owns the requeue / key-reprovision policy.
  // Queue order (and therefore per-tenant completion order) is preserved.
  ++stats_.batch_fallbacks;
  auto& q = queues_[tenant];
  for (auto it = run.rbegin(); it != run.rend(); ++it) {
    q.push_front(std::move(*it));
  }
  for (std::size_t i = 0; i < run.size() && !q.empty(); ++i) {
    Request req = std::move(q.front());
    q.pop_front();
    serveOne(tenant, std::move(req));
  }
}

unsigned AccelService::serveRun(unsigned tenant, unsigned max_run) {
  auto& q = queues_[tenant];
  if (q.empty()) return 0;
  const HealthState st = monitor_.state();
  const bool hw_path = tenant_active_[tenant] &&
      (st == HealthState::Healthy || st == HealthState::Degraded);
  unsigned run_len = 1;
  if (hw_path && cfg_.batch_size > 1) {
    const bool dir = q.front().decrypt;
    while (run_len < max_run && run_len < cfg_.batch_size &&
           run_len < q.size() && q[run_len].decrypt == dir) {
      ++run_len;
    }
  }
  if (run_len == 1) {
    Request req = std::move(q.front());
    q.pop_front();
    serveOne(tenant, std::move(req));
    return 1;
  }
  std::vector<Request> run;
  run.reserve(run_len);
  for (unsigned i = 0; i < run_len; ++i) {
    run.push_back(std::move(q.front()));
    q.pop_front();
  }
  serveBatchHardware(tenant, std::move(run));
  return run_len;
}

void AccelService::sampleWindowIfDue() {
  if (acc_.cycle() < window_start_cycle_ + cfg_.health.window_cycles) return;
  accel::SessionTelemetry now;
  for (const auto& s : sessions_) now += s.telemetry();
  accel::SessionTelemetry d = now;
  d.ok -= window_base_.ok;
  d.suppressed -= window_base_.suppressed;
  d.timeouts -= window_base_.timeouts;
  d.fault_aborts -= window_base_.fault_aborts;
  d.drops -= window_base_.drops;
  d.rejected -= window_base_.rejected;
  d.auth_failed -= window_base_.auth_failed;

  RobustnessStats w;
  w.timeouts = d.timeouts;
  w.fault_aborts = d.fault_aborts;
  w.drops = d.drops;
  const HealthState before = monitor_.state();
  // Deterministic refusals (rejected, suppressed) say nothing about device
  // health — counting them would dilute the transient rate exactly when the
  // service is churning through key reprovisions. The denominator is only
  // the verdicts a healthy device would have completed. Auth-tag mismatches
  // are likewise message verdicts, not device health, and stay out of both
  // numerator and denominator.
  const std::uint64_t ops = d.ok + d.timeouts + d.fault_aborts + d.drops;
  monitor_.onWindow(w, ops, d.ok, acc_.cycle());
  window_start_cycle_ = acc_.cycle();
  window_base_ = now;
  if (monitor_.state() != before) {
    logTransitions();
    applyStateOptions();
  }
}

void AccelService::runCanaries() {
  ++stats_.canary_rounds;
  bool all_ok = !tenants_.empty();
  for (unsigned t = 0; t < tenants_.size(); ++t) {
    // Retired tenants have no key on this shard (zeroized at migration);
    // probing them would re-provision a key that must stay gone.
    if (!tenant_active_[t]) continue;
    const auto& spec = tenants_[t];
    // Fail-secure zeroization may have destroyed the slot while the device
    // was sick; a canary round re-provisions before probing.
    if (!acc_.roundKeys().valid(spec.key_slot) && !reprovisionKey(t)) {
      all_ok = false;
      continue;
    }
    aes::Block pt;
    for (unsigned i = 0; i < 16; ++i)
      pt[i] = static_cast<std::uint8_t>(i ^ (t * 0x11));
    auto& session = sessions_[t];
    session.setOptions(cfg_.canary_opts);
    const auto got = session.encryptBlock(pt);
    // A tenant whose label forbids release to itself (the master-key
    // pattern) can never show the probe its ciphertext: healthy hardware
    // suppresses it. For such a tenant the expected canary verdict IS
    // suppression — anything else (timeout, abort, wrong data) still fails.
    const bool release_allowed =
        degradedReleaseDecision(acc_.principal(spec.user), spec.key_conf)
            .allowed;
    if (release_allowed) {
      const aes::Block want = aes::encryptBlock(pt, golden_[t]);
      if (!got.has_value() || *got != want) all_ok = false;
    } else if (got.has_value() ||
               got.status() != accel::AccelStatus::Suppressed) {
      all_ok = false;
    }
  }
  if (!all_ok) ++stats_.canary_failures;
  monitor_.onCanaryVerdict(all_ok, acc_.cycle());
  logTransitions();
  applyStateOptions();
}

unsigned AccelService::pump() {
  // One idle cycle per round models scheduling overhead and, crucially,
  // keeps the device clock (and quarantine residency) moving even when all
  // queues are empty.
  acc_.tick();

  if (monitor_.state() == HealthState::Quarantined &&
      monitor_.tryBeginProbation(acc_.cycle())) {
    logTransitions();
    runCanaries();
  }

  unsigned resolved = 0;
  const unsigned n = static_cast<unsigned>(tenants_.size());
  for (unsigned k = 0; k < n; ++k) {
    const unsigned t = (rr_next_ + k) % n;
    unsigned served = 0;
    const std::size_t before = completions_[t].size();
    const std::size_t before_aead = aead_completions_[t].size();
    // AEAD first: one whole GCM op is one quota unit, and serving it ahead
    // of the block queue keeps a long message from starving behind blocks.
    while (served < cfg_.quota_per_round && !aead_queues_[t].empty()) {
      AeadRequest areq = std::move(aead_queues_[t].front());
      aead_queues_[t].pop_front();
      serveAead(t, std::move(areq));
      ++served;
    }
    while (served < cfg_.quota_per_round && !queues_[t].empty()) {
      // A request the robustness path re-queues is re-popped here and
      // charged against the quota again, exactly as it was pre-batching.
      served += serveRun(t, cfg_.quota_per_round - served);
    }
    resolved += static_cast<unsigned>(completions_[t].size() - before);
    resolved +=
        static_cast<unsigned>(aead_completions_[t].size() - before_aead);
  }
  if (n) rr_next_ = (rr_next_ + 1) % n;

  sampleWindowIfDue();
  return resolved;
}

void AccelService::runUntilIdle(std::uint64_t max_device_cycles) {
  const std::uint64_t start = acc_.cycle();
  while (totalQueued() > 0 && acc_.cycle() - start < max_device_cycles) {
    pump();
  }
  logTransitions();
}

}  // namespace aesifc::soc
