#include "soc/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <sstream>

namespace aesifc::soc {

double mutualInformationBits(const std::vector<int>& x,
                             const std::vector<int>& y) {
  assert(x.size() == y.size());
  if (x.empty()) return 0.0;
  const double n = static_cast<double>(x.size());
  std::map<int, double> px, py;
  std::map<std::pair<int, int>, double> pxy;
  for (std::size_t i = 0; i < x.size(); ++i) {
    px[x[i]] += 1.0 / n;
    py[y[i]] += 1.0 / n;
    pxy[{x[i], y[i]}] += 1.0 / n;
  }
  double mi = 0.0;
  for (const auto& [xy, p] : pxy) {
    const double denom = px[xy.first] * py[xy.second];
    if (p > 0.0 && denom > 0.0) mi += p * std::log2(p / denom);
  }
  return mi < 0.0 ? 0.0 : mi;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  const double n = static_cast<double>(x.size());
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double percentile(std::vector<std::uint64_t> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  // Nearest rank: the ceil(q/100 * N)-th smallest sample (1-based).
  const double rank = std::ceil(q / 100.0 * static_cast<double>(samples.size()));
  std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  if (idx >= samples.size()) idx = samples.size() - 1;
  return static_cast<double>(samples[idx]);
}

LatencyStats latencyStats(const std::vector<std::uint64_t>& samples,
                          StddevKind kind) {
  LatencyStats s;
  if (samples.empty()) return s;
  s.count = samples.size();
  s.min = samples[0];
  s.max = samples[0];
  double sum = 0.0;
  for (auto v : samples) {
    sum += static_cast<double>(v);
    if (v < s.min) s.min = v;
    if (v > s.max) s.max = v;
  }
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0.0;
  for (auto v : samples) {
    const double d = static_cast<double>(v) - s.mean;
    var += d * d;
  }
  if (kind == StddevKind::Sample) {
    // Bessel's correction needs at least two samples; a single observation
    // has no sample variance (reported as 0, never NaN).
    s.stddev = samples.size() < 2
                   ? 0.0
                   : std::sqrt(var / static_cast<double>(samples.size() - 1));
  } else {
    s.stddev = std::sqrt(var / static_cast<double>(samples.size()));
  }

  std::vector<std::uint64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  auto nearest_rank = [&](double q) {
    const double rank =
        std::ceil(q / 100.0 * static_cast<double>(sorted.size()));
    std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
    if (idx >= sorted.size()) idx = sorted.size() - 1;
    return static_cast<double>(sorted[idx]);
  };
  s.p50 = nearest_rank(50.0);
  s.p95 = nearest_rank(95.0);
  s.p99 = nearest_rank(99.0);
  return s;
}

std::string LatencyStats::toJson() const {
  std::ostringstream os;
  os << "{\"count\":" << count << ",\"mean\":" << mean
     << ",\"stddev\":" << stddev << ",\"min\":" << min << ",\"max\":" << max
     << ",\"p50\":" << p50 << ",\"p95\":" << p95 << ",\"p99\":" << p99 << "}";
  return os.str();
}

std::string RobustnessStats::toJson() const {
  std::ostringstream os;
  os << "{\"faults_injected\":" << faults_injected
     << ",\"faults_detected\":" << faults_detected
     << ",\"faults_recovered\":" << faults_recovered
     << ",\"fault_aborts\":" << fault_aborts << ",\"retries\":" << retries
     << ",\"timeouts\":" << timeouts << ",\"drops\":" << drops
     << ",\"detection_rate\":" << detectionRate()
     << ",\"recovery_rate\":" << recoveryRate() << "}";
  return os.str();
}

}  // namespace aesifc::soc
