#include "soc/supervisor.h"

#include <sstream>

namespace aesifc::soc {

std::string SupervisorStats::toJson() const {
  std::ostringstream os;
  os << "{\"polls\":" << polls << ",\"evacuated_tenants\":" << evacuated_tenants
     << ",\"evacuation_failures\":" << evacuation_failures
     << ",\"shards_added\":" << shards_added << "}";
  return os.str();
}

PoolSupervisor::PoolSupervisor(EnginePool& pool, SupervisorConfig cfg)
    : pool_{pool}, cfg_{cfg} {
  last_backpressure_ = pool_.aggregateStats().rejected_backpressure;
}

bool PoolSupervisor::shardSick(unsigned shard) {
  if (pool_.shardRetired(shard)) return false;
  const HealthState st = pool_.shardService(shard).health();
  if (st == HealthState::Quarantined) return true;
  return cfg_.evacuate_degraded && st == HealthState::Degraded;
}

SupervisorReport PoolSupervisor::poll() {
  SupervisorReport rep;
  ++stats_.polls;

  // --- Evacuation: move tenants off sick shards onto healthy ones. -------
  // Sick shards are excluded as targets; migrateTenant itself enforces
  // capacity (TargetFull) and re-provisions under the tenant's own label.
  std::vector<unsigned> sick;
  for (unsigned s = 0; s < pool_.shards(); ++s) {
    if (shardSick(s)) sick.push_back(s);
  }
  for (unsigned s : sick) {
    for (unsigned t : pool_.tenantsOnShard(s)) {
      const auto target = pool_.pickTargetShard(t, sick);
      if (!target.has_value()) {
        ++rep.evacuation_failures;
        continue;
      }
      if (pool_.migrateTenant(t, *target).moved) {
        ++rep.evacuated;
      } else {
        ++rep.evacuation_failures;
      }
    }
  }
  stats_.evacuated_tenants += rep.evacuated;
  stats_.evacuation_failures += rep.evacuation_failures;

  // --- Elastic hot-add under sustained pressure. --------------------------
  // One growing-backpressure poll is noise; `pressure_streak` in a row is a
  // capacity problem. The cooldown keeps a fault storm (which also rejects
  // traffic) from adding a shard every streak-length interval.
  const std::uint64_t bp = pool_.aggregateStats().rejected_backpressure;
  if (bp > last_backpressure_) {
    ++streak_;
  } else {
    streak_ = 0;
  }
  last_backpressure_ = bp;
  if (cooldown_ > 0) --cooldown_;

  if (streak_ >= cfg_.pressure_streak && cooldown_ == 0 &&
      pool_.activeShards() < cfg_.max_shards) {
    rep.added_shard = pool_.addShard();
    rep.shard_added = true;
    ++stats_.shards_added;
    streak_ = 0;
    cooldown_ = cfg_.cooldown_polls;
  }
  return rep;
}

}  // namespace aesifc::soc
