#pragma once
// Attack drivers reproducing the vulnerability scenarios of Sections 2.1
// and 3.1-3.2 against the behavioral accelerator, in both Baseline and
// Protected modes. Each driver returns a structured result the tests and
// benches assert on: the baseline must exhibit the attack, the protected
// design must block it.

#include <cstdint>
#include <string>
#include <vector>

#include "accel/types.h"
#include "soc/dma.h"
#include "soc/metrics.h"

namespace aesifc::soc {

// --- Section 3.2.5 / Fig. 8: stall covert timing channel ---------------------
// Alice modulates her receiver readiness with a secret bit string; Eve
// streams blocks and decodes the secret from her own completion counts.
struct TimingChannelParams {
  unsigned secret_bits = 48;
  unsigned window = 64;  // cycles per secret bit
  std::uint64_t seed = 1;
};

struct TimingChannelResult {
  double mi_bits = 0.0;   // mutual information secret->decoded, per bit
  double accuracy = 0.0;  // fraction of secret bits Eve recovers
  LatencyStats eve_latency;
  std::uint64_t stalled_cycles = 0;
  std::uint64_t denied_stalls = 0;
};

TimingChannelResult runTimingChannelAttack(accel::SecurityMode mode,
                                           const TimingChannelParams& p = {});

// --- Ablation: acceptance-delay channel ------------------------------------------
// Eve sends one sparse probe per window while only Alice's traffic is in
// flight; if Alice's granted stall may delay Eve's *acceptance* (stage-only
// meet, the paper's literal Fig. 8 rule), Eve's probe latency decodes
// Alice's secret. Our strengthened rule (meet over stages AND waiting
// inputs) closes it.
struct AcceptanceDelayResult {
  double mi_bits = 0.0;
  double accuracy = 0.0;
  LatencyStats probe_latency;
  std::uint64_t stalled_cycles = 0;
  std::uint64_t denied_stalls = 0;
};

AcceptanceDelayResult runAcceptanceDelayAttack(bool meet_includes_inputs,
                                               const TimingChannelParams& p = {});

// --- Section 3.2.3 / Fig. 5: scratchpad buffer overflow ----------------------
// Eve is allocated two cells but writes three, clobbering Alice's key cell.
struct OverflowResult {
  bool overflow_write_succeeded = false;  // the out-of-authority write landed
  bool alice_key_corrupted = false;       // Alice's re-expanded key is wrong
  std::size_t blocked_events = 0;
};

OverflowResult runScratchpadOverflow(accel::SecurityMode mode);

// --- Section 2.1 [10]: debug peripheral key theft -----------------------------
// Eve (a) tries to enable the debug port herself and (b) reads Alice's
// in-flight round-0 state while knowing the plaintext, recovering the key.
struct DebugPortResult {
  bool eve_enabled_debug = false;   // config tamper landed
  bool key_recovered = false;       // recovered key equals Alice's key
  bool supervisor_read_ok = false;  // legitimate high-conf read still works
  std::size_t blocked_events = 0;
};

DebugPortResult runDebugPortAttack(accel::SecurityMode mode);

// --- Section 3.2.2: inappropriate key use -------------------------------------
// Eve encrypts with the master key (slot 0) and decrypts with Alice's key.
struct KeyMisuseResult {
  bool master_key_output_released = false;  // Eve got ciphertext under master key
  bool alice_key_output_released = false;   // Eve decrypted with Alice's key
  bool supervisor_master_ok = false;        // supervisor may use the master key
  bool own_key_ok = false;                  // normal operation is unaffected
  std::size_t declass_rejected = 0;
};

KeyMisuseResult runKeyMisuseAttack(accel::SecurityMode mode);

// --- Fig. 2's DMA block: cross-user buffer theft -------------------------------
// Eve programs the DMA engine to encrypt *Alice's* plaintext buffer under
// Eve's own key into Eve's buffer, then decrypts it offline — plaintext
// theft through a peripheral (Table 1 row 4) rather than the datapath.
struct DmaTheftResult {
  bool alice_plaintext_stolen = false;  // Eve recovered Alice's buffer
  bool src_read_blocked = false;        // protected engine refused the read
  bool dst_write_blocked = false;       // ...and writes into Alice's pages
  bool legit_dma_ok = false;            // Alice's own DMA still works
  double cycles_per_block = 0.0;        // throughput of the legitimate DMA
};

DmaTheftResult runDmaTheftAttack(accel::SecurityMode mode);

// --- DMA descriptor-ring fault campaign ----------------------------------------
// Seeded robustness campaign against the descriptor-ring data path: a
// tenant streams scatter-gather transfers through a DmaRingEngine while a
// FaultInjector flips bits in the descriptor/completion rings and perturbs
// the host interface, optionally interleaved with scripted adversarial
// scenarios (torn ownership, chain loops, OOB next-pointers, a TOCTOU
// destination rewrite, completion-queue overflow, a stalled ring, stale
// generations after a ring reset). Two independent oracles judge every
// transfer: an Ok completion whose destination bytes differ from the
// software-computed golden is a wrong-plaintext release, and any byte that
// changes in another tenant's pages is a cross-label write. The hardened
// engine must end every run with both counters at zero; the unhardened
// engine demonstrably does not.
struct RingCampaignConfig {
  std::uint64_t seed = 1;
  unsigned descriptors = 48;      // transfers pushed through the ring
  double fault_rate = 0.02;       // per-cycle host/ring fault probability
  bool hardened = true;           // hardened ring engine vs conventional
  bool scripted_scenarios = true; // deterministic adversarial interleave
  std::uint64_t watchdog_cycles = 512;  // ring watchdog (kept tight for pace)
};

struct RingCampaignReport {
  unsigned descriptors = 0;       // transfers submitted
  std::uint64_t completed_ok = 0; // resolved Ok, destination verified
  std::uint64_t refused = 0;      // resolved with a typed DmaError
  std::uint64_t unresolved = 0;   // future never resolved (ring reset used)
  std::uint64_t wrong_plaintext_releases = 0;  // Ok but dst != golden
  std::uint64_t cross_label_writes = 0;  // engine stat + victim-page diffs
  std::uint64_t partial_writes = 0;      // refused/unresolved but dst moved
  std::uint64_t watchdog_fires = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t ring_resets = 0;
  std::uint64_t ring_faults = 0;  // bit flips landed in ring memory
  std::uint64_t corrupt_completions = 0;   // driver checksum rejections
  std::uint64_t duplicate_completions = 0; // exactly-once dedups
  DmaRingStats ring;              // engine-side counters

  std::string toJson() const;
  RingCampaignReport& operator+=(const RingCampaignReport& o);
};

RingCampaignReport runRingFaultCampaign(const RingCampaignConfig& cfg = {});

// --- Section 3.2.4: configuration tampering -----------------------------------
struct ConfigTamperResult {
  bool eve_write_landed = false;
  bool supervisor_write_landed = false;
  bool eve_read_ok = false;  // reads stay allowed for everyone
  std::size_t blocked_events = 0;
};

ConfigTamperResult runConfigTamper(accel::SecurityMode mode);

}  // namespace aesifc::soc
