#pragma once
// Seeded fault-injection campaigns against the accelerator: single-event
// upsets (one bit flip per event) in the pipeline stage data/tag registers,
// the key scratchpad and its tag array, the round-key RAM and the config
// registers, plus host-interface perturbations (dropped or duplicated
// responses, a receiver that goes stuck-not-ready, spurious submits from a
// confused or malicious bus master).
//
// The injector sits between clock edges: either register it with
// `acc.setTickHook([&]{ inj.tick(); })` (works even when an AccelSession
// owns the clock) or call `tick()` manually between `acc.tick()` calls.
// At most one fault lands per cycle, so the per-cycle
// scrub rings in the hardened accelerator see every upset before a second
// one can mask it. Every event is recorded; `report()` reconciles the
// injection log against the accelerator's detection counters so a campaign
// ends with a per-site injected / detected / recovered / escaped table.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "accel/accelerator.h"
#include "common/rng.h"

namespace aesifc::soc {

struct FaultCampaignConfig {
  std::uint64_t seed = 1;
  double fault_rate = 0.01;    // per-cycle probability of one fault event
  bool hw_faults = true;       // bit flips in device state
  bool host_faults = true;     // interface perturbations
  unsigned stuck_cycles = 48;  // receiver-not-ready hold time
};

struct FaultRecord {
  std::uint64_t cycle = 0;
  accel::FaultSite site{};
  unsigned index = 0;  // stage / cell / slot / register / user
  unsigned bit = 0;
  bool applied = false;  // false: target empty or out of range, no state hit
};

// End-of-campaign reconciliation. `injected`/`applied` come from the
// injector's own log; `detected`/`recovered`/`aborted` are read back from
// the accelerator. `escaped[site]` is the number of applied upsets at a
// hardware site the device never noticed — the fail-secure goal is zero for
// the tag arrays (fast scrub ring) and zero-after-settling for the slow
// ring sites.
struct FaultCampaignReport {
  std::vector<FaultRecord> records;
  std::array<std::uint64_t, accel::kHwFaultSites> injected_by_site{};
  std::array<std::uint64_t, accel::kHwFaultSites> applied_by_site{};
  std::array<std::uint64_t, accel::kHwFaultSites> detected_by_site{};
  std::uint64_t injected = 0;
  std::uint64_t applied = 0;
  std::uint64_t host_drops = 0;
  std::uint64_t host_duplicates = 0;
  std::uint64_t host_stuck = 0;
  std::uint64_t host_spurious = 0;
  std::uint64_t detected = 0;   // accelerator parity detections
  std::uint64_t recovered = 0;  // scrubbed with no request casualties
  std::uint64_t aborted = 0;    // blocks squashed fail-secure

  std::uint64_t escaped(unsigned site) const {
    const auto a = applied_by_site[site];
    const auto d = detected_by_site[site];
    return a > d ? a - d : 0;
  }
  std::string summary() const;
  std::string toJson() const;
};

class FaultInjector {
 public:
  // `users` are the host-interface targets for drop/duplicate/stuck-ready
  // perturbations and the principals impersonated by spurious submits.
  FaultInjector(accel::AesAccelerator& acc, FaultCampaignConfig cfg,
                std::vector<unsigned> users);

  // Roll for (at most) one fault this cycle. Call before acc.tick().
  void tick();
  // Restore any receiver lines the injector is currently holding down
  // (call when the campaign's fault phase ends, before draining).
  void releaseStuckReceivers();

  std::uint64_t injected() const { return injected_; }
  FaultCampaignReport report() const;

 private:
  void injectHw();
  void injectHost();

  accel::AesAccelerator& acc_;
  FaultCampaignConfig cfg_;
  std::vector<unsigned> users_;
  Rng rng_;
  std::vector<FaultRecord> records_;
  std::uint64_t injected_ = 0;
  std::uint64_t host_drops_ = 0;
  std::uint64_t host_duplicates_ = 0;
  std::uint64_t host_stuck_ = 0;
  std::uint64_t host_spurious_ = 0;
  std::uint64_t spurious_seq_ = 0;
  // (user, release_cycle) for receivers currently forced not-ready.
  std::vector<std::pair<unsigned, std::uint64_t>> stuck_;
};

}  // namespace aesifc::soc
