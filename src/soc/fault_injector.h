#pragma once
// Seeded fault-injection campaigns against the accelerator: single-event
// upsets (one bit flip per event) in the pipeline stage data/tag registers,
// the key scratchpad and its tag array, the round-key RAM and the config
// registers, plus host-interface perturbations (dropped or duplicated
// responses, a receiver that goes stuck-not-ready, spurious submits from a
// confused or malicious bus master).
//
// The injector sits between clock edges: either register it with
// `acc.setTickHook([&]{ inj.tick(); })` (works even when an AccelSession
// owns the clock) or call `tick()` manually between `acc.tick()` calls.
// At most one fault lands per cycle, so the per-cycle
// scrub rings in the hardened accelerator see every upset before a second
// one can mask it. Every event is recorded; `report()` reconciles the
// injection log against the accelerator's detection counters so a campaign
// ends with a per-site injected / detected / recovered / escaped table.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "accel/accelerator.h"
#include "common/rng.h"
#include "soc/dma.h"

namespace aesifc::soc {

// One descriptor or completion ring the injector may corrupt: `slots`
// records of `stride` bytes starting at `base` in attached host memory.
struct RingRange {
  std::size_t base = 0;
  unsigned slots = 0;
  unsigned stride = kDescBytes;
};

struct FaultCampaignConfig {
  std::uint64_t seed = 1;
  double fault_rate = 0.01;    // per-cycle probability of one fault event
  bool hw_faults = true;       // bit flips in device state
  bool host_faults = true;     // interface perturbations
  unsigned stuck_cycles = 48;  // receiver-not-ready hold time
};

struct FaultRecord {
  std::uint64_t cycle = 0;
  accel::FaultSite site{};
  unsigned index = 0;  // stage / cell / slot / register / user
  // Hardware sites: the flipped bit. HostSpuriousSubmit: key_slot*2+decrypt
  // (the spurious request's shape, so a replay rebuilds the same request).
  unsigned bit = 0;
  bool applied = false;  // false: target empty or out of range, no state hit
};

// One-line-per-event text form of an injection log — the replay trace. A
// failing campaign dumps this; feeding it back through a replay-mode
// FaultInjector re-lands every event on the same cycle at the same site, so
// a failure reproduces exactly in a debugger without re-rolling the RNG.
std::string traceToString(const std::vector<FaultRecord>& records);
// Inverse of traceToString. Throws std::invalid_argument on a malformed
// line or unknown site name.
std::vector<FaultRecord> parseTrace(const std::string& text);

// End-of-campaign reconciliation. `injected`/`applied` come from the
// injector's own log; `detected`/`recovered`/`aborted` are read back from
// the accelerator. `escaped[site]` is the number of applied upsets at a
// hardware site the device never noticed — the fail-secure goal is zero for
// the tag arrays (fast scrub ring) and zero-after-settling for the slow
// ring sites.
struct FaultCampaignReport {
  std::vector<FaultRecord> records;
  std::array<std::uint64_t, accel::kHwFaultSites> injected_by_site{};
  std::array<std::uint64_t, accel::kHwFaultSites> applied_by_site{};
  std::array<std::uint64_t, accel::kHwFaultSites> detected_by_site{};
  std::uint64_t injected = 0;
  std::uint64_t applied = 0;
  std::uint64_t host_drops = 0;
  std::uint64_t host_duplicates = 0;
  std::uint64_t host_stuck = 0;
  std::uint64_t host_spurious = 0;
  std::uint64_t host_ring_desc = 0;  // bit flips landed in descriptor rings
  std::uint64_t host_ring_comp = 0;  // bit flips landed in completion rings
  std::uint64_t detected = 0;   // accelerator parity detections
  std::uint64_t recovered = 0;  // scrubbed with no request casualties
  std::uint64_t aborted = 0;    // blocks squashed fail-secure

  std::uint64_t escaped(unsigned site) const {
    const auto a = applied_by_site[site];
    const auto d = detected_by_site[site];
    return a > d ? a - d : 0;
  }
  std::string summary() const;
  std::string toJson() const;
};

class FaultInjector {
 public:
  // `users` are the host-interface targets for drop/duplicate/stuck-ready
  // perturbations and the principals impersonated by spurious submits.
  FaultInjector(accel::AesAccelerator& acc, FaultCampaignConfig cfg,
                std::vector<unsigned> users);

  // Replay mode: re-inject a recorded trace instead of rolling the RNG.
  // Events land on the cycles recorded in the trace (tick() compares
  // against acc.cycle(), so drive the same workload for a faithful rerun).
  // `stuck_cycles` still comes from `cfg`.
  FaultInjector(accel::AesAccelerator& acc, FaultCampaignConfig cfg,
                std::vector<unsigned> users, std::vector<FaultRecord> trace);

  // Arm the RingDescriptor/RingCompletion sites: bit flips land in the
  // given rings of `mem` (the DMA descriptor-ring campaigns attach the
  // rings they built). Without this call those sites never roll, and a
  // replayed trace containing them records applied=false.
  // FaultRecord encoding for ring sites: index = range << 16 | slot,
  // bit = bit offset within the slot's record.
  void attachRingMemory(HostMemory* mem, std::vector<RingRange> desc_rings,
                        std::vector<RingRange> comp_rings);

  // Roll for (at most) one fault this cycle — or, in replay mode, land
  // every trace event recorded for this cycle. Call before acc.tick().
  void tick();
  // Restore any receiver lines the injector is currently holding down
  // (call when the campaign's fault phase ends, before draining).
  void releaseStuckReceivers();

  std::uint64_t injected() const { return injected_; }
  bool replaying() const { return replay_; }
  // The injection log so far (the replay trace of this run).
  const std::vector<FaultRecord>& trace() const { return records_; }
  FaultCampaignReport report() const;

 private:
  void injectHw();
  void injectHost();
  void applyRecord(FaultRecord rec);
  void replayTick();

  accel::AesAccelerator& acc_;
  FaultCampaignConfig cfg_;
  std::vector<unsigned> users_;
  Rng rng_;
  std::vector<FaultRecord> records_;
  std::uint64_t injected_ = 0;
  std::uint64_t host_drops_ = 0;
  std::uint64_t host_duplicates_ = 0;
  std::uint64_t host_stuck_ = 0;
  std::uint64_t host_spurious_ = 0;
  std::uint64_t host_ring_desc_ = 0;
  std::uint64_t host_ring_comp_ = 0;
  std::uint64_t spurious_seq_ = 0;
  HostMemory* ring_mem_ = nullptr;
  std::vector<RingRange> desc_rings_;
  std::vector<RingRange> comp_rings_;
  // (user, release_cycle) for receivers currently forced not-ready.
  std::vector<std::pair<unsigned, std::uint64_t>> stuck_;
  bool replay_ = false;
  std::vector<FaultRecord> replay_trace_;
  std::size_t replay_next_ = 0;
};

}  // namespace aesifc::soc
