#pragma once
// Channel-leakage and performance metrics used by the security experiments:
// empirical mutual information between discrete sequences (how many bits
// per observation a covert channel carries), correlation, and latency
// statistics.

#include <cstdint>
#include <vector>

namespace aesifc::soc {

// Empirical mutual information I(X;Y) in bits between two equal-length
// sequences of small non-negative integers.
double mutualInformationBits(const std::vector<int>& x,
                             const std::vector<int>& y);

// Pearson correlation coefficient; 0 when either side is constant.
double pearson(const std::vector<double>& x, const std::vector<double>& y);

struct LatencyStats {
  double mean = 0.0;
  double stddev = 0.0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::size_t count = 0;
};

LatencyStats latencyStats(const std::vector<std::uint64_t>& samples);

}  // namespace aesifc::soc
