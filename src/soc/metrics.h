#pragma once
// Channel-leakage and performance metrics used by the security experiments:
// empirical mutual information between discrete sequences (how many bits
// per observation a covert channel carries), correlation, and latency
// statistics.

#include <cstdint>
#include <string>
#include <vector>

namespace aesifc::soc {

// Empirical mutual information I(X;Y) in bits between two equal-length
// sequences of small non-negative integers.
double mutualInformationBits(const std::vector<int>& x,
                             const std::vector<int>& y);

// Pearson correlation coefficient; 0 when either side is constant or when
// fewer than two samples are given (a correlation needs variance on both
// sides to be meaningful).
double pearson(const std::vector<double>& x, const std::vector<double>& y);

// Nearest-rank percentile (q in [0, 100]) over the samples; the q-th
// percentile is the smallest sample such that at least q% of the samples
// are <= it. Returns 0.0 on an empty sample set.
double percentile(std::vector<std::uint64_t> samples, double q);

// Which standard-deviation estimator latencyStats reports. Population
// (divide by N) is the default: the samples are usually the complete set of
// observed completions for the run being reported. Sample (divide by N-1,
// Bessel's correction) is for callers treating the run as a draw from a
// larger population — e.g. projecting a smoke run onto full-length traffic.
enum class StddevKind { Population, Sample };

struct LatencyStats {
  double mean = 0.0;
  // Standard deviation under the estimator the caller selected (population
  // by default — see StddevKind). 0 for count < 2 in either mode.
  double stddev = 0.0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::size_t count = 0;
  // Nearest-rank percentiles; equal to the single sample when count == 1
  // and 0 when the sample set is empty (count == 0, like every other
  // field — an empty run reports all-zero stats, never NaN).
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  std::string toJson() const;
};

LatencyStats latencyStats(const std::vector<std::uint64_t>& samples,
                          StddevKind kind = StddevKind::Population);

// Robustness scorecard for a fault campaign: the accelerator's fault
// counters plus the driver's retry telemetry, with the derived rates the
// experiments report. Deliberately decoupled from the accelerator types so
// reports can be aggregated across runs.
struct RobustnessStats {
  std::uint64_t faults_injected = 0;
  std::uint64_t faults_detected = 0;
  std::uint64_t faults_recovered = 0;
  std::uint64_t fault_aborts = 0;   // blocks squashed fail-secure
  std::uint64_t retries = 0;        // driver resubmissions
  std::uint64_t timeouts = 0;       // watchdog expiries
  std::uint64_t drops = 0;          // overflow / bus losses

  // Detected / injected. The zero-denominator case (a quiet, fault-free
  // run) reports 1.0 by convention: nothing was missed. Note the rate can
  // exceed 1.0 when a single injected fault is detected at more than one
  // point of use (e.g. a corrupted slot caught at submit AND by the scrub
  // ring) — callers comparing campaigns should treat it as a ratio of
  // counters, not a probability.
  double detectionRate() const {
    return faults_injected == 0
               ? 1.0
               : static_cast<double>(faults_detected) /
                     static_cast<double>(faults_injected);
  }
  // Recovered / detected; the zero-denominator case (nothing detected)
  // reports 1.0 by convention — nothing detected means nothing was left
  // unrecovered. Like detectionRate, a ratio of counters, not a
  // probability.
  double recoveryRate() const {
    return faults_detected == 0
               ? 1.0
               : static_cast<double>(faults_recovered) /
                     static_cast<double>(faults_detected);
  }
  std::string toJson() const;

  // Aggregate campaign scorecards (across seeds, phases, or tenants); the
  // derived rates recompute from the summed raw counters.
  RobustnessStats& operator+=(const RobustnessStats& o) {
    faults_injected += o.faults_injected;
    faults_detected += o.faults_detected;
    faults_recovered += o.faults_recovered;
    fault_aborts += o.fault_aborts;
    retries += o.retries;
    timeouts += o.timeouts;
    drops += o.drops;
    return *this;
  }
};

}  // namespace aesifc::soc
