#pragma once
// Channel-leakage and performance metrics used by the security experiments:
// empirical mutual information between discrete sequences (how many bits
// per observation a covert channel carries), correlation, and latency
// statistics.

#include <cstdint>
#include <string>
#include <vector>

namespace aesifc::soc {

// Empirical mutual information I(X;Y) in bits between two equal-length
// sequences of small non-negative integers.
double mutualInformationBits(const std::vector<int>& x,
                             const std::vector<int>& y);

// Pearson correlation coefficient; 0 when either side is constant.
double pearson(const std::vector<double>& x, const std::vector<double>& y);

struct LatencyStats {
  double mean = 0.0;
  double stddev = 0.0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::size_t count = 0;
};

LatencyStats latencyStats(const std::vector<std::uint64_t>& samples);

// Robustness scorecard for a fault campaign: the accelerator's fault
// counters plus the driver's retry telemetry, with the derived rates the
// experiments report. Deliberately decoupled from the accelerator types so
// reports can be aggregated across runs.
struct RobustnessStats {
  std::uint64_t faults_injected = 0;
  std::uint64_t faults_detected = 0;
  std::uint64_t faults_recovered = 0;
  std::uint64_t fault_aborts = 0;   // blocks squashed fail-secure
  std::uint64_t retries = 0;        // driver resubmissions
  std::uint64_t timeouts = 0;       // watchdog expiries
  std::uint64_t drops = 0;          // overflow / bus losses

  // Detected / injected; 1.0 for a quiet (fault-free) run.
  double detectionRate() const {
    return faults_injected == 0
               ? 1.0
               : static_cast<double>(faults_detected) /
                     static_cast<double>(faults_injected);
  }
  // Recovered / detected; 1.0 when nothing was detected.
  double recoveryRate() const {
    return faults_detected == 0
               ? 1.0
               : static_cast<double>(faults_recovered) /
                     static_cast<double>(faults_detected);
  }
  std::string toJson() const;

  // Aggregate campaign scorecards (across seeds, phases, or tenants); the
  // derived rates recompute from the summed raw counters.
  RobustnessStats& operator+=(const RobustnessStats& o) {
    faults_injected += o.faults_injected;
    faults_detected += o.faults_detected;
    faults_recovered += o.faults_recovered;
    fault_aborts += o.fault_aborts;
    retries += o.retries;
    timeouts += o.timeouts;
    drops += o.drops;
    return *this;
  }
};

}  // namespace aesifc::soc
