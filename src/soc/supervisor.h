#pragma once
// Pool-level self-healing policy loop. The per-shard HealthMonitor decides
// whether one device is trustworthy; the PoolSupervisor decides what the
// POOL does about it:
//
//  * Quarantined shard -> evacuate. Every tenant homed on a quarantined
//    shard is migrated (EnginePool::migrateTenant — the full audited
//    load-before-zeroize handshake) to a healthy shard with a free key
//    slot, chosen by rendezvous weight so evacuation placement stays
//    data-independent. Evacuation is idempotent: a shard with no active
//    tenants left costs the poll nothing, so no hysteresis is needed.
//
//  * Sustained spill pressure -> hot-add. When the pool's aggregate
//    rejected_backpressure counter grows for `pressure_streak` consecutive
//    polls, the supervisor spins up a fresh shard (EnginePool::addShard) —
//    then holds off for `cooldown_polls` polls so a fault storm that keeps
//    rejecting traffic cannot thrash the pool with shard churn.
//
// The supervisor never touches key material itself; it only sequences the
// pool's audited operations. Label constraints hold by construction:
// migrateTenant re-provisions through the same tagged scratchpad path and
// principal labels as the original placement.

#include <cstdint>
#include <string>

#include "soc/pool.h"

namespace aesifc::soc {

struct SupervisorConfig {
  // Consecutive polls with growing backpressure rejections before a
  // hot-add fires.
  unsigned pressure_streak = 3;
  // Polls to wait after a hot-add before another may fire (hysteresis).
  unsigned cooldown_polls = 8;
  // Hard ceiling on pool size; hot-add never exceeds it.
  unsigned max_shards = 8;
  // Also evacuate away from Degraded shards (default: only Quarantined —
  // Degraded still serves, just with tightened options).
  bool evacuate_degraded = false;
};

// What one poll() did — so callers (and the fault campaign) can narrate.
struct SupervisorReport {
  unsigned evacuated = 0;            // tenants moved off sick shards
  unsigned evacuation_failures = 0;  // migrations attempted but refused
  bool shard_added = false;
  unsigned added_shard = 0;  // valid when shard_added
};

struct SupervisorStats {
  std::uint64_t polls = 0;
  std::uint64_t evacuated_tenants = 0;
  std::uint64_t evacuation_failures = 0;
  std::uint64_t shards_added = 0;

  std::string toJson() const;
};

class PoolSupervisor {
 public:
  PoolSupervisor(EnginePool& pool, SupervisorConfig cfg);

  // One policy pass: evacuate quarantined shards, then evaluate hot-add
  // pressure. Deterministic — no clocks, no randomness; drive it from the
  // same loop that pumps the pool.
  SupervisorReport poll();

  const SupervisorStats& stats() const { return stats_; }
  unsigned pressureStreak() const { return streak_; }
  unsigned cooldown() const { return cooldown_; }

 private:
  bool shardSick(unsigned shard);

  EnginePool& pool_;
  SupervisorConfig cfg_;
  SupervisorStats stats_;
  std::uint64_t last_backpressure_ = 0;
  unsigned streak_ = 0;
  unsigned cooldown_ = 0;
};

}  // namespace aesifc::soc
