#pragma once
// DMA path of the SoC (the tagged "DMA" block of Fig. 2).
//
// Two engines share the page-label enforcement model:
//
//  * DmaEngine — the legacy synchronous path: software hands the engine one
//    in-register descriptor and blocks while the engine streams it through
//    the accelerator. Kept as the baseline the descriptor-ring path is
//    benchmarked against (bench_dma).
//
//  * DmaRingEngine — the scatter-gather descriptor-ring data path (modeled
//    on the cesa TDescr/Tdmaowned and s805 descriptor-table exemplars).
//    Descriptors and completion records live in label-tagged HostMemory;
//    ownership bits hand descriptors to the device, chained next-pointers
//    build multi-segment transfers, and completion events (a modeled
//    interrupt) wake host-side futures in DmaRingDriver so software
//    overlaps with device ticks.
//
// The ring is UNTRUSTED INPUT: it lives in host memory a buggy or hostile
// host can rewrite at any time, and the fault campaigns flip bits in it
// mid-flight. The hardened engine therefore
//
//  - validates every descriptor against a checksum plus structural rules
//    (bounds, alignment, chain length, next-pointer loops, ownership and
//    generation consistency) and refuses with a typed DmaError;
//  - latches the descriptor at fetch time and makes every later decision
//    (what to read, where to write) from the latch, never from a re-read —
//    closing the classic ring TOCTOU;
//  - re-checks destination page labels at the point of use and buffers all
//    output so a failed transfer never partially writes;
//  - detects stalls with a per-descriptor watchdog and recovers by
//    quiesce -> resync -> idempotent resubmit (a descriptor produces
//    exactly one completion record no matter how many attempts it took);
//  - never overwrites an unconsumed completion record (completion-queue
//    overflow is backpressure, not data loss).
//
// `hardened = false` reproduces a conventional ring engine (no checksum,
// incremental writes, dst re-read at write time) so the campaigns can
// demonstrate the violations the hardening removes.
//
// Host memory carries per-page security tags. In Protected mode the engine
// checks, for the requesting user u:
//   - source pages:      label(page) may flow (conf) to u;
//   - destination pages: u's label may flow to label(page);
//   - ring pages (descriptors, chain segments, completion records): BOTH
//     directions — the engine reads descriptors and writes completions on
//     u's behalf, so the pages must be readable and writable by u. A
//     descriptor claiming a user who could not have written its page is a
//     forgery and is refused (RingPageDenied).

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "accel/accelerator.h"

namespace aesifc::soc {

inline constexpr unsigned kPageBytes = 256;

// Flat host memory with one security label per page.
class HostMemory {
 public:
  explicit HostMemory(std::size_t bytes);

  std::size_t size() const { return mem_.size(); }

  // Page ownership (set by the "OS" at allocation time). Labels every page
  // the byte span [addr, addr + len) touches. A zero-length span labels
  // nothing; a span that overflows the address space or extends past the
  // end of memory throws std::out_of_range BEFORE any label changes (the
  // OS call fails atomically, it never half-labels a range).
  void setPageLabel(std::size_t addr, std::size_t len, const lattice::Label& l);
  const lattice::Label& pageLabel(std::size_t addr) const;

  // Raw accessors (the backdoor used by testbenches and the unprotected
  // engine; checked accesses live in the DMA engines).
  std::uint8_t read8(std::size_t addr) const { return mem_.at(addr); }
  void write8(std::size_t addr, std::uint8_t v) { mem_.at(addr) = v; }
  void writeBytes(std::size_t addr, const std::vector<std::uint8_t>& data);
  std::vector<std::uint8_t> readBytes(std::size_t addr, std::size_t len) const;

  // Little-endian word accessors (the descriptor/completion codecs).
  std::uint32_t read32(std::size_t addr) const;
  void write32(std::size_t addr, std::uint32_t v);
  std::uint64_t read64(std::size_t addr) const;
  void write64(std::size_t addr, std::uint64_t v);

 private:
  std::vector<std::uint8_t> mem_;
  std::vector<lattice::Label> page_labels_;
};

enum class DmaMode : std::uint8_t { EcbEncrypt = 0, EcbDecrypt = 1,
                                    CtrCrypt = 2 };

// Typed DMA verdicts (the PlaceError/MigrateError convention): every
// refused or failed transfer names exactly why, and the completion codec
// carries the same code across the host interface.
enum class DmaError : std::uint8_t {
  None = 0,           // success
  BadRange,           // src/dst out of bounds, zero length, or overflow
  UnalignedLength,    // ECB length not a multiple of the block size
  OverlapDenied,      // src/dst ranges partially overlap (in-place is exact)
  SrcPageDenied,      // source page label may not flow to the user
  DstPageDenied,      // user label may not flow to the destination page
  RingPageDenied,     // descriptor/completion page fails the ring label rule
  BadDescriptor,      // malformed fields (user, mode, reserved bits, slots)
  BadChecksum,        // descriptor checksum mismatch (corrupt or forged)
  OobNextPointer,     // chain pointer outside host memory / unaligned
  ChainLoop,          // next-pointer cycle detected
  ChainTooLong,       // chain exceeds the configured segment cap
  TornOwnership,      // ownership bits changed under the engine mid-flight
  StaleGeneration,    // descriptor generation predates a ring reset
  CompletionOverflow, // completion ring full past the watchdog (unhardened)
  RingStalled,        // watchdog expired after exhausting resubmit attempts
  OutputSuppressed,   // the accelerator refused to declassify an output
  FaultAborted,       // fail-secure fault squash survived the retry budget
  Rejected,           // the submit port refused (e.g. zeroized key slot)
  Timeout,            // synchronous engine watchdog expired
};

inline constexpr unsigned kDmaErrors = 20;

std::string toString(DmaError e);

struct DmaDescriptor {
  unsigned user = 0;
  unsigned key_slot = 0;
  DmaMode mode = DmaMode::EcbEncrypt;
  std::size_t src = 0;
  std::size_t dst = 0;
  std::size_t len = 0;          // bytes; multiple of 16 for ECB
  aes::Block ctr_iv{};          // initial counter block for CTR
};

struct DmaResult {
  bool ok = false;
  DmaError error = DmaError::None;
  std::uint64_t cycles = 0;     // device cycles consumed
  std::uint64_t blocks = 0;
};

// Synchronous MMIO-style engine: executes one descriptor to completion
// while the caller blocks (ticks the accelerator internally). The baseline
// the ring path amortizes against.
class DmaEngine {
 public:
  DmaEngine(accel::AesAccelerator& acc, HostMemory& mem)
      : acc_{acc}, mem_{mem} {}

  DmaResult run(const DmaDescriptor& d);

 private:
  accel::AesAccelerator& acc_;
  HostMemory& mem_;
  std::uint64_t next_req_ = (1ull << 40);
};

// ---------------------------------------------------------------------------
// Descriptor-ring data path
// ---------------------------------------------------------------------------

// On-ring descriptor layout, 64 bytes, little-endian:
//   +0  u32 flags     bit 0 = OWNED (device-owned), bits 16..31 generation.
//                     The handshake word — mutated by both sides, excluded
//                     from the checksum, protected by the torn-ownership
//                     re-read and the generation check instead.
//   +4  u32 checksum  FNV-1a over bytes [8, 64)
//   +8  u8  mode      DmaMode
//   +9  u8  reserved  must be 0
//   +10 u16 user
//   +12 u16 key_slot
//   +14 u16 seq       driver-assigned sequence (completion correlation)
//   +16 u64 src
//   +24 u64 dst
//   +32 u64 len
//   +40 u64 next      absolute address of the next chain segment; 0 = end
//   +48 16B ctr_iv
inline constexpr unsigned kDescBytes = 64;

// Completion record layout, 32 bytes, little-endian:
//   +0  u32 flags     bit 0 = VALID (host-owned until it clears the bit),
//                     bits 16..31 generation
//   +4  u32 checksum  FNV-1a over bytes [8, 32)
//   +8  u32 status    DmaError
//   +12 u16 user
//   +14 u16 seq
//   +16 u64 desc_addr head descriptor address
//   +24 u32 blocks
//   +28 u32 exec_cycles
inline constexpr unsigned kCompBytes = 32;

inline constexpr std::uint32_t kRingOwned = 1u;   // descriptor flags bit 0
inline constexpr std::uint32_t kRingValid = 1u;   // completion flags bit 0

// FNV-1a over a byte span of host memory (the descriptor/completion
// integrity checksum — the ring is untrusted, so structure alone cannot
// distinguish a corrupted descriptor from a reprogrammed one).
std::uint32_t ringChecksum(const HostMemory& mem, std::size_t addr,
                           std::size_t len);

// Host-side codec: write `d` as a ring descriptor at `addr`. Sets the
// checksum; sets OWNED last when `owned` (the release store of the
// handshake). `next` chains a continuation segment (0 terminates).
void writeRingDescriptor(HostMemory& mem, std::size_t addr,
                         const DmaDescriptor& d, std::uint64_t next,
                         std::uint16_t seq, std::uint16_t generation,
                         bool owned);

struct DmaRingConfig {
  std::size_t desc_base = 0;   // head-descriptor ring (kDescBytes stride)
  unsigned desc_slots = 16;
  std::size_t comp_base = 0;   // completion ring (kCompBytes stride)
  unsigned comp_slots = 16;
  // Chain arena: continuation segments live here; next-pointers must land
  // inside it (kDescBytes-aligned) or the chain is refused OobNextPointer.
  std::size_t chain_base = 0;
  unsigned chain_slots = 0;
  unsigned max_chain = 64;     // longest chain followed (incl. the head)
  // Per-descriptor execution watchdog: quiesce -> resync -> resubmit when
  // a transfer makes no progress for this many cycles.
  std::uint64_t watchdog_cycles = 4096;
  unsigned max_resubmits = 2;  // whole-descriptor recovery attempts
  unsigned fetch_cycles = 2;   // cycles to fetch + validate one segment
  unsigned poll_interval = 8;  // idle head poll cadence (doorbell skips it)
  unsigned block_retry_cap = 8;  // per-chain transient block resubmits
};

struct DmaRingStats {
  std::uint64_t doorbells = 0;
  std::uint64_t idle_polls = 0;
  std::uint64_t descriptors_fetched = 0;  // head descriptors latched
  std::uint64_t segments_fetched = 0;     // chain segments latched
  std::uint64_t completed_ok = 0;
  std::uint64_t refused = 0;              // completions with error status
  std::uint64_t blocks = 0;               // blocks written back
  std::uint64_t watchdog_fires = 0;
  std::uint64_t recoveries = 0;           // quiesce -> resync -> resubmit
  std::uint64_t block_resubmits = 0;      // single-block transient retries
  std::uint64_t torn_ownership = 0;
  std::uint64_t checksum_rejects = 0;
  std::uint64_t stale_generation = 0;
  std::uint64_t comp_stall_cycles = 0;    // cycles blocked on a full ring
  std::uint64_t comp_overflow_drops = 0;  // unhardened only; hardened: 0
  std::uint64_t cross_label_writes = 0;   // dst writes past a failed label
                                          // re-check; hardened: always 0
  std::uint64_t ring_resets = 0;
  std::array<std::uint64_t, kDmaErrors> by_error{};

  std::string toJson() const;
  DmaRingStats& operator+=(const DmaRingStats& o);
};

// The device-side ring engine. One engine serves N channels (per-tenant
// rings) over one shared fetch/exec unit, round-robin between descriptors;
// a channel blocked on a full completion ring parks without holding the
// exec unit. Drive it with tick() when the engine owns the device clock,
// or register onDeviceTick() inside an accelerator tick hook to overlap
// ring DMA with other traffic.
class DmaRingEngine {
 public:
  DmaRingEngine(accel::AesAccelerator& acc, HostMemory& mem,
                bool hardened = true);

  unsigned addChannel(const DmaRingConfig& cfg);
  unsigned channels() const { return static_cast<unsigned>(chans_.size()); }

  // Host doorbell: the driver rang after publishing a descriptor; the
  // engine checks the head slot on its next cycle instead of waiting out
  // the poll interval.
  void doorbell(unsigned channel);

  // Completion "interrupt": invoked right after a completion record lands
  // in the channel's completion ring (the host-side future machinery hooks
  // this; polling still works without it).
  void setCompletionHandler(unsigned channel, std::function<void()> fn);

  // Quiesce the channel (abandon any in-flight transfer without writing
  // anything), bump the ring generation so descriptors published before
  // the reset are refused StaleGeneration, and rewind the head to slot 0.
  void ringReset(unsigned channel);

  std::uint16_t generation(unsigned channel) const;
  std::size_t headSlot(unsigned channel) const;
  bool channelIdle(unsigned channel) const;
  // True while the channel is parked on an unconsumable completion ring.
  bool channelStalled(unsigned channel) const;

  // One engine step per device cycle. onDeviceTick() does the engine's
  // work only (for composition inside an accelerator tick hook); tick()
  // additionally advances the device clock.
  void onDeviceTick();
  void tick();

  bool idle() const;  // every channel idle and nothing in flight
  bool hardened() const { return hardened_; }
  const DmaRingStats& stats() const { return stats_; }

 private:
  struct Segment {
    std::size_t addr = 0;  // where the segment descriptor lives
    std::size_t src = 0;
    std::size_t dst = 0;
    std::size_t len = 0;
  };

  // One latched chain in flight (the shadow copy every decision uses).
  struct Chain {
    enum class Phase { Fetch, Exec, Final };
    Phase phase = Phase::Fetch;
    unsigned channel = 0;
    std::size_t head_addr = 0;
    std::uint32_t head_flags = 0;   // as latched (OWNED set)
    std::uint16_t seq = 0;
    unsigned user = 0;
    unsigned key_slot = 0;
    DmaMode mode = DmaMode::EcbEncrypt;
    aes::Block ctr_iv{};
    std::vector<Segment> segs;
    std::size_t next_fetch = 0;     // next segment address to latch
    unsigned fetch_wait = 0;        // cycles left on the current fetch
    // Flattened block stream across segments (inputs latched at fetch).
    std::vector<aes::Block> stream;
    std::vector<std::uint8_t> xor_src;  // CTR: plaintext latched at fetch
    std::vector<aes::Block> out;
    std::vector<char> done;
    std::size_t submitted = 0;
    std::size_t collected = 0;
    std::deque<std::size_t> retry;  // transient-failed block indices
    std::unordered_map<std::uint64_t, std::size_t> inflight;  // req -> idx
    unsigned block_retries = 0;
    unsigned submit_refusals = 0;   // consecutive refused submits
    unsigned attempts = 0;          // watchdog resubmit count
    std::uint64_t progress_cycle = 0;  // last cycle something completed
    std::uint64_t start_cycle = 0;
    bool suppressed = false;
    DmaError verdict = DmaError::None;
  };

  struct Channel {
    DmaRingConfig cfg;
    std::size_t head = 0;          // ring slot index the engine scans next
    std::size_t comp_tail = 0;     // completion slot it writes next
    std::uint16_t generation = 1;
    bool doorbell = false;
    std::uint64_t next_poll_cycle = 0;
    std::function<void()> on_completion;
    bool active = false;           // owns the fetch/exec unit
    bool parked = false;           // completed, waiting on a comp slot
    std::optional<Chain> chain;    // in-flight transfer (active or parked)
    std::uint64_t park_start = 0;
    bool park_watchdog_logged = false;
  };

  std::size_t descAddr(const Channel& ch) const {
    return ch.cfg.desc_base + ch.head * kDescBytes;
  }
  bool ringPageOk(const lattice::Label& user_label, std::size_t addr,
                  std::size_t len) const;
  DmaError validateHead(Channel& ch, Chain& c);
  DmaError latchSegment(Chain& c, std::size_t addr, bool head);
  DmaError buildStream(Chain& c);
  void startChannel(unsigned idx);
  void stepFetch(unsigned idx);
  void stepExec(unsigned idx);
  void finalize(unsigned idx);
  void writeBack(const Chain& c);
  bool tryWriteCompletion(unsigned idx);
  void handback(Channel& ch, const Chain& c);
  void resubmitChain(Chain& c);
  void noteViolation(const Chain& c, DmaError e);
  void finishChain(unsigned idx);

  accel::AesAccelerator& acc_;
  HostMemory& mem_;
  bool hardened_;
  std::vector<Channel> chans_;
  int exec_owner_ = -1;   // channel index holding the fetch/exec unit
  unsigned rr_next_ = 0;  // round-robin scan start
  std::uint64_t next_req_ = (1ull << 41);
  DmaRingStats stats_;
};

// One resolved transfer as the host sees it.
struct DmaCompletion {
  DmaError status = DmaError::None;
  std::uint16_t seq = 0;
  unsigned user = 0;
  std::uint64_t desc_addr = 0;
  std::uint64_t blocks = 0;
  std::uint32_t exec_cycles = 0;
};

// Host-side driver for one ring channel: programs descriptors, rings the
// doorbell, and resolves futures from completion events. The completion
// handler (the modeled interrupt) consumes records as they land, so a
// caller that overlaps work with engine ticks sees done() flip without
// ever polling the ring memory itself.
class DmaRingDriver {
 public:
  DmaRingDriver(DmaRingEngine& eng, HostMemory& mem, unsigned channel,
                const DmaRingConfig& cfg);

  // Publish one transfer (optionally scatter-gather). Segments after the
  // first inherit the head's user/key/mode and supply src/dst/len. Returns
  // the future's sequence number, or nullopt on backpressure (descriptor
  // ring or chain arena full).
  std::optional<std::uint16_t> submit(const DmaDescriptor& d);
  std::optional<std::uint16_t> submitChain(
      const std::vector<DmaDescriptor>& segs);

  // Consume completion records (also invoked by the completion event).
  void poll();

  // Detach/re-attach the completion-event hook from poll(). Campaigns
  // disable auto-polling to model a host that stops consuming completions
  // (the completion-queue-overflow scenario); the records stay in the ring
  // until poll() is called explicitly.
  void setAutoPoll(bool on) { auto_poll_ = on; }

  bool done(std::uint16_t seq) const;
  const DmaCompletion* result(std::uint16_t seq) const;

  // Convenience synchronous wait: tick the engine (and the device) until
  // the future resolves or the cycle budget runs out.
  const DmaCompletion* wait(std::uint16_t seq, std::uint64_t max_cycles);

  // Forget resolved futures older than the horizon (long-lived callers).
  void forgetResolved();

  std::uint64_t corruptCompletions() const { return corrupt_completions_; }
  std::uint64_t duplicateCompletions() const { return duplicate_completions_; }
  std::size_t outstanding() const { return outstanding_; }
  unsigned channel() const { return channel_; }

  // Re-arm after a ring reset: adopts the engine's new generation and
  // rewinds the slot cursors (outstanding futures resolve as RingStalled —
  // the reset abandoned them).
  void resync();

 private:
  DmaRingEngine& eng_;
  HostMemory& mem_;
  unsigned channel_;
  DmaRingConfig cfg_;
  std::size_t next_slot_ = 0;
  std::size_t next_chain_slot_ = 0;
  std::size_t comp_head_ = 0;
  std::uint16_t next_seq_ = 1;
  std::size_t outstanding_ = 0;
  bool auto_poll_ = true;
  std::uint64_t corrupt_completions_ = 0;
  std::uint64_t duplicate_completions_ = 0;
  std::unordered_map<std::uint16_t, std::optional<DmaCompletion>> futures_;
  std::vector<char> arena_busy_;  // chain-arena slot in an outstanding chain
  std::unordered_map<std::uint16_t, std::vector<unsigned>> chain_slots_of_;
};

}  // namespace aesifc::soc
