#pragma once
// DMA path of the SoC (the tagged "DMA" block of Fig. 2): instead of
// per-block MMIO stores, software programs a descriptor (source buffer,
// destination buffer, key slot, mode) and the engine streams blocks through
// the accelerator at pipeline rate.
//
// Host memory carries per-page security tags. In Protected mode the engine
// checks, for the requesting user u:
//   - source pages:     label(page) may flow (conf) to u — the engine reads
//                       on u's behalf;
//   - destination pages: u's label may flow to label(page) — the engine
//                       writes on u's behalf.
// The Baseline engine performs no checks, which yields the classic
// cross-user DMA theft: Eve encrypts *Alice's* buffer under Eve's own key
// and decrypts the result at leisure (a Table 1 row-4 violation through a
// peripheral instead of the datapath).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "accel/accelerator.h"

namespace aesifc::soc {

inline constexpr unsigned kPageBytes = 256;

// Flat host memory with one security label per page.
class HostMemory {
 public:
  explicit HostMemory(std::size_t bytes);

  std::size_t size() const { return mem_.size(); }

  // Page ownership (set by the "OS" at allocation time).
  void setPageLabel(std::size_t addr, std::size_t len, const lattice::Label& l);
  const lattice::Label& pageLabel(std::size_t addr) const;

  // Raw accessors (the backdoor used by testbenches and the unprotected
  // engine; checked accesses live in the DMA engine).
  std::uint8_t read8(std::size_t addr) const { return mem_.at(addr); }
  void write8(std::size_t addr, std::uint8_t v) { mem_.at(addr) = v; }
  void writeBytes(std::size_t addr, const std::vector<std::uint8_t>& data);
  std::vector<std::uint8_t> readBytes(std::size_t addr, std::size_t len) const;

 private:
  std::vector<std::uint8_t> mem_;
  std::vector<lattice::Label> page_labels_;
};

enum class DmaMode { EcbEncrypt, EcbDecrypt, CtrCrypt };

struct DmaDescriptor {
  unsigned user = 0;
  unsigned key_slot = 0;
  DmaMode mode = DmaMode::EcbEncrypt;
  std::size_t src = 0;
  std::size_t dst = 0;
  std::size_t len = 0;          // bytes; multiple of 16 for ECB
  aes::Block ctr_iv{};          // initial counter block for CTR
};

struct DmaResult {
  bool ok = false;
  std::string error;            // "src-page-denied", "dst-page-denied", ...
  std::uint64_t cycles = 0;     // device cycles consumed
  std::uint64_t blocks = 0;
};

class DmaEngine {
 public:
  DmaEngine(accel::AesAccelerator& acc, HostMemory& mem)
      : acc_{acc}, mem_{mem} {}

  // Executes one descriptor to completion (ticks the accelerator).
  DmaResult run(const DmaDescriptor& d);

 private:
  bool checkPages(const DmaDescriptor& d, DmaResult& r) const;

  accel::AesAccelerator& acc_;
  HostMemory& mem_;
  std::uint64_t next_req_ = (1ull << 40);
};

}  // namespace aesifc::soc
