#pragma once
// Key management plane: the supervisor-side software that allocates
// scratchpad cells and round-key slots to tenants, generates and installs
// session keys, rotates them safely (only when the pipeline holds no block
// using the old key), and zeroizes slots when sessions close. Exercises
// the lifecycle story around the paper's key scratchpad (Fig. 5) and
// zeroization semantics.

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "accel/accelerator.h"
#include "common/rng.h"

namespace aesifc::soc {

class KeyManager {
 public:
  struct Session {
    unsigned user = 0;
    unsigned slot = 0;
    unsigned cell_base = 0;
    std::vector<std::uint8_t> key;   // current session key (16 bytes)
    std::uint64_t generation = 0;    // bumped by every rotation
  };

  KeyManager(accel::AesAccelerator& acc, std::uint64_t seed = 0x6b657930);

  // Allocates a slot + two scratchpad cells for `user`, generates a fresh
  // key and installs it. Fails when resources are exhausted or the device
  // refuses a step.
  std::optional<Session> openSession(unsigned user);

  // Installs a fresh key into the user's existing slot. Waits (ticking the
  // device) until no in-flight block references the slot; fails after
  // `max_wait_cycles`. Blocks submitted before the rotation complete under
  // the old key; blocks submitted after use the new one.
  bool rotate(unsigned user, unsigned max_wait_cycles = 256);

  // Zeroizes the slot and frees the resources.
  bool closeSession(unsigned user);

  const Session* session(unsigned user) const;
  std::size_t activeSessions() const { return sessions_.size(); }

 private:
  std::vector<std::uint8_t> freshKey();
  bool install(Session& s);

  accel::AesAccelerator& acc_;
  Rng rng_;
  std::map<unsigned, Session> sessions_;  // by user
  std::uint8_t slot_in_use_ = 0;          // bitmask over round-key slots
  std::uint8_t cells_in_use_ = 0;         // bitmask over scratchpad cells
};

}  // namespace aesifc::soc
