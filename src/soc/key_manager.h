#pragma once
// Key management plane: the supervisor-side software that allocates
// scratchpad cells and round-key slots to tenants, generates and installs
// session keys, rotates them safely (only when the pipeline holds no block
// using the old key), and zeroizes slots when sessions close. Exercises
// the lifecycle story around the paper's key scratchpad (Fig. 5) and
// zeroization semantics.
//
// Migration between devices reuses this same audited lifecycle instead of
// ad-hoc install code: exportForMigration() freezes a session and hands out
// a generation-stamped ticket, importProvisioned() installs it on the
// target manager under the next generation, and finishMigration() — which
// demands proof of that exact generation — quiesces and zeroizes the
// source. Load-at-target therefore strictly precedes zeroize-at-source,
// and a stale ticket (wrong generation) can neither install nor release
// the source key.

#include <bitset>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "accel/accelerator.h"
#include "common/rng.h"

namespace aesifc::soc {

class KeyManager {
 public:
  struct Session {
    unsigned user = 0;
    unsigned slot = 0;
    unsigned cell_base = 0;
    std::vector<std::uint8_t> key;   // current session key (16 bytes)
    std::uint64_t generation = 0;    // bumped by every rotation / migration
    bool exporting = false;          // frozen by exportForMigration
  };

  // Generation-stamped key handoff between two KeyManagers (one per
  // device). The ticket never carries device resources — the importer
  // allocates its own slot and cells — only the key material and the
  // lifecycle proof.
  struct MigrationTicket {
    unsigned user = 0;
    std::vector<std::uint8_t> key;
    std::uint64_t generation = 0;
  };

  KeyManager(accel::AesAccelerator& acc, std::uint64_t seed = 0x6b657930);

  // Allocates a slot + two scratchpad cells for `user`, generates a fresh
  // key and installs it. Fails when resources are exhausted or the device
  // refuses a step.
  std::optional<Session> openSession(unsigned user);

  // Installs a fresh key into the user's existing slot. Waits (ticking the
  // device) until no in-flight block references the slot; fails after
  // `max_wait_cycles`. Blocks submitted before the rotation complete under
  // the old key; blocks submitted after use the new one. Refused while the
  // session is frozen for export.
  bool rotate(unsigned user, unsigned max_wait_cycles = 256);

  // Zeroizes the slot and frees the resources.
  bool closeSession(unsigned user);

  // --- Migration (export / import / finish) ---------------------------------
  // Freeze the session and return its generation-stamped ticket. The source
  // key stays installed and serving until finishMigration — load-at-target
  // happens first, so the tenant is never keyless.
  std::optional<MigrationTicket> exportForMigration(unsigned user);
  // Install an exported ticket on THIS manager's device under the next
  // generation. Refuses when the user already has a session here or the
  // device refuses the load. Returns the new session.
  std::optional<Session> importProvisioned(const MigrationTicket& ticket);
  // Source-side commit: requires the generation the importer reports
  // (ticket generation + 1) as proof that the key really is live at the
  // target; then quiesces the slot, zeroizes it, and frees the resources.
  // A wrong generation leaves the source session intact (and unfrozen, so
  // the migration can be retried or abandoned).
  bool finishMigration(unsigned user, std::uint64_t imported_generation);

  const Session* session(unsigned user) const;
  std::size_t activeSessions() const { return sessions_.size(); }

 private:
  std::vector<std::uint8_t> freshKey();
  bool install(Session& s);
  bool quiesceAndRelease(Session& s);

  accel::AesAccelerator& acc_;
  Rng rng_;
  std::map<unsigned, Session> sessions_;  // by user
  // Width-checked occupancy masks sized from the accelerator config: a
  // bitset refuses an out-of-range slot index loudly instead of silently
  // truncating the shift the way the old uint8_t masks would if the
  // scratchpad or round-key RAM ever grew past 8 entries.
  std::bitset<accel::kRoundKeySlots> slot_in_use_;
  std::bitset<accel::kScratchpadCells> cells_in_use_;
};

}  // namespace aesifc::soc
