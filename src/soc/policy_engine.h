#pragma once
// Evaluates the six Table 1 policies against the behavioral accelerator by
// running the attack drivers and interpreting their results as evidence for
// or against each requirement.

#include <string>
#include <vector>

#include "accel/types.h"
#include "ifc/policy.h"

namespace aesifc::soc {

struct PolicyVerdict {
  int policy_id = 0;
  bool holds = false;
  std::string evidence;
};

// Runs all attack drivers once under `mode` and scores each Table 1 row.
std::vector<PolicyVerdict> evaluatePolicies(accel::SecurityMode mode);

// Fixed-width report: requirements x {baseline, protected}.
std::string renderPolicyMatrix();

}  // namespace aesifc::soc
