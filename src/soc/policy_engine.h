#pragma once
// Evaluates the six Table 1 policies against the behavioral accelerator by
// running the attack drivers and interpreting their results as evidence for
// or against each requirement.

#include <string>
#include <vector>

#include "accel/types.h"
#include "ifc/policy.h"
#include "lattice/downgrade.h"

namespace aesifc::soc {

struct PolicyVerdict {
  int policy_id = 0;
  bool holds = false;
  std::string evidence;
};

// The release decision the protected pipeline makes at its exit (Fig. 7),
// evaluated in software: a result computed under a key of confidentiality
// `key_conf` by `requester` carries (ck join cu, iu) and is released to the
// output port as (bottom, iu) — a declassification performed by the
// requester, legal only if the requester's trust covers the released
// categories (Eq. 1). The degraded-mode software fallback of
// soc::AccelService MUST consult this before encrypting with the golden
// model, so a circuit-broken service can never release a ciphertext the
// tagged hardware would have suppressed.
lattice::DowngradeDecision degradedReleaseDecision(
    const lattice::Principal& requester, lattice::Conf key_conf);

// Runs all attack drivers once under `mode` and scores each Table 1 row.
std::vector<PolicyVerdict> evaluatePolicies(accel::SecurityMode mode);

// Fixed-width report: requirements x {baseline, protected}.
std::string renderPolicyMatrix();

}  // namespace aesifc::soc
