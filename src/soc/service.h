#pragma once
// Multi-tenant service front end over the accelerator driver — the layer
// that keeps the *service* alive when the device goes unhealthy or tenants
// overload it (the Fig. 2 SoC serving mutually distrusting users at cloud
// traffic levels).
//
// Three cooperating mechanisms:
//
//  * Admission control: per tenant a bounded submission queue and a fair
//    per-round service quota; a global watermark applies backpressure when
//    the sum of queues grows past it. Overflowing tenants shed their own
//    oldest request (ShedOldest) or bounce the new one (RejectNew) — never
//    another tenant's traffic, so overload cannot become cross-tenant
//    denial of service.
//
//  * Circuit breaker: a HealthMonitor watches an error-budget window over
//    the drivers' RobustnessStats-style telemetry. When the device is
//    Quarantined the service fails over to the golden software AES — but
//    every fallback block first re-checks the tenant's (conf, integ) label
//    via soc::degradedReleaseDecision, the same Eq. 1 declassification the
//    tagged pipeline applies at its exit. Degraded mode can therefore never
//    release a ciphertext the hardware would have suppressed.
//
//  * Probation: quarantine is left only through canary probes — a known-
//    answer block per tenant key slot, re-provisioned first if fail-secure
//    zeroization destroyed the slot — so traffic returns to hardware only
//    after the hardware demonstrably computes correct AES again.
//
// Every health transition is recorded in the accelerator's security event
// ring (SecurityEventKind::ServiceHealth), putting service-level incidents
// on the same cycle timeline as the hardware's own fault events.

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "accel/driver.h"
#include "aes/gcm.h"
#include "aes/key_schedule.h"
#include "soc/dma.h"
#include "soc/health.h"
#include "soc/metrics.h"

namespace aesifc::soc {

// What to evict when a tenant overruns its own queue.
enum class OverflowPolicy { RejectNew, ShedOldest };

struct ServiceConfig {
  OverflowPolicy overflow = OverflowPolicy::ShedOldest;
  // Global watermark: new admissions are refused (backpressure to the
  // caller) while the total queued across tenants is at or above this.
  std::size_t global_high_watermark = 64;
  // Blocks served per tenant per scheduling round (fair share).
  unsigned quota_per_round = 4;
  // Batch submission: up to this many same-direction requests from one
  // tenant's queue are drained into the pipeline back-to-back (one submit
  // per cycle, all in flight), so K blocks cost ~K + pipeline-depth cycles
  // instead of K x (depth + 1). 1 reproduces the historical one-at-a-time
  // path. Batching never crosses tenants and never reorders within a
  // tenant: completions surface in submission order.
  unsigned batch_size = 1;
  // Service-level retry budget per request: a request whose hardware serve
  // ends in a transient failure is re-queued at the front this many times
  // (it rides over to the fallback path if the breaker trips meanwhile).
  unsigned max_requeues = 1;
  // Device cycles charged per software-fallback block, ticked on the
  // accelerator so quarantine residency and background scrubbing advance
  // while traffic is off the hardware.
  unsigned fallback_cycles_per_block = 40;
  HealthConfig health;
  // Driver options for the Healthy hardware path…
  accel::SessionOptions healthy_opts{.timeout_cycles = 1024,
                                     .max_retries = 2,
                                     .backoff_cycles = 16};
  // …and the tightened Degraded ones (shorter watchdog, one retry, so a
  // sick device wastes less of everyone's cycle budget per failure).
  accel::SessionOptions degraded_opts{.timeout_cycles = 256,
                                      .max_retries = 1,
                                      .backoff_cycles = 8};
  // Canary probe options (probation must not hang on a wedged device).
  accel::SessionOptions canary_opts{.timeout_cycles = 512,
                                    .max_retries = 1,
                                    .backoff_cycles = 8};
  // Descriptor-ring data path: when enabled, a same-direction run of at
  // least `dma_ring_min_run` blocks is staged into the tenant's tagged
  // host-memory pages and moved through the hardened DmaRingEngine as one
  // scatter-gather ECB descriptor, instead of one MMIO submit per block.
  // Every tenant gets its own ring channel and staging pages labeled with
  // its authority, so the ring path is under exactly the same label
  // enforcement as the MMIO path. A ring refusal or stall falls back to the
  // session batch path (counted in dma_ring_fallbacks); defaults keep the
  // ring off so existing deployments are byte-for-byte unchanged.
  bool use_dma_ring = false;
  unsigned dma_ring_min_run = 16;
};

// One tenant as the service sees it: an accelerator principal plus the key
// material the service provisioned for it (which is what makes both the
// software fallback and canary re-provisioning possible).
struct TenantSpec {
  unsigned user = 0;         // accelerator user id (already addUser'ed)
  unsigned key_slot = 0;     // round-key RAM slot
  unsigned cell_base = 0;    // scratchpad cells used to (re)load the key
  std::vector<std::uint8_t> key;  // raw AES-128 key bytes
  lattice::Conf key_conf{};  // ck of the provisioned key
  std::size_t queue_depth = 16;
  // AEAD operations queue separately (one GCM op is one scheduling unit,
  // not one block), with their own depth bound.
  std::size_t aead_queue_depth = 8;
};

enum class ServedBy { Hardware, SoftwareFallback, None };

enum class CompletionStatus {
  Ok,
  Suppressed,    // label policy refused the release (hardware OR fallback)
  TimedOut,      // transient budget exhausted on a wedged device
  FaultAborted,  // fail-secure squash survived all requeues
  Dropped,       // overflow-buffer loss survived all requeues
  Rejected,      // deterministic submit refusal (e.g. zeroized slot)
  Shed,          // evicted by the tenant's own ShedOldest admission policy
  AuthFailed,    // GCM open: tag mismatch — a message verdict, never retried
};

std::string toString(CompletionStatus s);
std::string toString(ServedBy s);

struct Completion {
  std::uint64_t ticket = 0;
  unsigned tenant = 0;
  CompletionStatus status = CompletionStatus::Ok;
  ServedBy served_by = ServedBy::None;
  aes::Block data{};
  std::uint64_t submit_cycle = 0;
  std::uint64_t complete_cycle = 0;
};

// Terminal record for one AEAD (GCM) operation.
struct AeadCompletion {
  std::uint64_t ticket = 0;
  unsigned tenant = 0;
  CompletionStatus status = CompletionStatus::Ok;
  ServedBy served_by = ServedBy::None;
  std::vector<std::uint8_t> data;  // ciphertext (seal) or plaintext (open)
  aes::Tag128 tag{};               // auth tag (seal only)
  std::uint64_t submit_cycle = 0;
  std::uint64_t complete_cycle = 0;
};

// Why an offered block was not queued.
enum class AdmitError { QueueFull, Backpressure, TenantRetired };

struct SubmitResult {
  bool admitted = false;
  std::uint64_t ticket = 0;  // valid when admitted (and for shed records)
  AdmitError error = AdmitError::QueueFull;
};

// Aggregate service counters (surfaced next to the leakage/perf metrics).
struct ServiceStats {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_backpressure = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed_hw = 0;
  std::uint64_t completed_fallback = 0;
  std::uint64_t fallback_suppressed = 0;  // label check refused in degraded mode
  std::uint64_t hw_transient_failures = 0;
  std::uint64_t requeues = 0;
  std::uint64_t batched_runs = 0;    // multi-block batches submitted
  std::uint64_t batched_blocks = 0;  // blocks that rode a multi-block batch
  // Batches whose verdict was transient/rejected: the member requests were
  // re-queued and re-served through the single-block robustness path.
  std::uint64_t batch_fallbacks = 0;
  std::uint64_t canary_rounds = 0;
  std::uint64_t canary_failures = 0;
  std::uint64_t key_reprovisions = 0;
  // AEAD (GCM) traffic — one op may be many blocks but is one queue unit.
  std::uint64_t aead_offered = 0;
  std::uint64_t aead_admitted = 0;
  std::uint64_t aead_completed_hw = 0;
  std::uint64_t aead_completed_fallback = 0;
  std::uint64_t aead_auth_failed = 0;  // tag-mismatch verdicts (not health)
  // Requests that reached a serve path for a retired (migrated-away)
  // tenant — i.e. would have executed under a stale or zeroized key had the
  // guard not refused them. The elastic pool's core safety invariant is
  // that this stays 0: migration drains and deactivates before it zeroizes,
  // so no request ever spans the key handover.
  std::uint64_t wrong_key_uses = 0;
  // Descriptor-ring data path (ServiceConfig::use_dma_ring).
  std::uint64_t dma_ring_runs = 0;    // runs moved as ring descriptors
  std::uint64_t dma_ring_blocks = 0;  // blocks those runs carried
  std::uint64_t dma_ring_fallbacks = 0;  // ring refusals re-served via MMIO

  std::string toJson() const;

  // Aggregate counters across shards of an engine pool (or across runs).
  ServiceStats& operator+=(const ServiceStats& o);
};

class AccelService {
 public:
  AccelService(accel::AesAccelerator& acc, ServiceConfig cfg);

  // Provisions the tenant's key into its slot (throws on refusal — a
  // legitimate setup step must not fail silently) and registers its queue.
  // Returns the tenant index used by submit()/fetch().
  unsigned addTenant(const TenantSpec& spec);

  // Non-throwing variant for callers that can degrade gracefully (the
  // elastic pool's migration path: a refused provisioning at the target
  // must leave the source untouched, not unwind the stack). Returns the
  // tenant index, or nullopt when the device refuses the key load.
  std::optional<unsigned> tryAddTenant(const TenantSpec& spec);

  // Retire a tenant: future submits are refused (AdmitError::TenantRetired)
  // and any request that still reaches a serve path is refused and counted
  // in stats().wrong_key_uses instead of executing under a key that is
  // about to be (or already is) zeroized. Queued work should be drained
  // first; already-delivered completions remain fetchable.
  void deactivateTenant(unsigned tenant);
  bool tenantActive(unsigned tenant) const {
    return tenant_active_.at(tenant) != 0;
  }
  const TenantSpec& tenantSpec(unsigned tenant) const {
    return tenants_.at(tenant);
  }

  // Pump until this tenant's queues are empty or the cycle budget is spent.
  // Returns true when the tenant is fully drained (the migration barrier).
  bool drainTenant(unsigned tenant, std::uint64_t max_device_cycles);

  // Hard breaker trip from outside the error-budget window (the pool-level
  // fault campaign and the supervisor's tests use this to model an incident
  // the window would take several samples to see).
  void forceQuarantine(const std::string& reason);

  // Offer one block. Admission control may refuse it (result.admitted ==
  // false) or, under ShedOldest, evict the tenant's oldest queued request
  // (which then surfaces as a Shed completion).
  SubmitResult submit(unsigned tenant, const aes::Block& data,
                      bool decrypt = false);

  // Pop the tenant's next completion, oldest first.
  std::optional<Completion> fetch(unsigned tenant);

  // Offer one AEAD operation (whole-message GCM seal/open). Admission uses
  // the same global watermark as blocks plus the tenant's own AEAD queue
  // depth; one op is one quota unit in pump(), served ahead of the block
  // queue so a long message cannot be starved by block traffic behind it.
  SubmitResult submitSeal(unsigned tenant,
                          const std::vector<std::uint8_t>& plaintext,
                          const std::vector<std::uint8_t>& aad,
                          const std::vector<std::uint8_t>& iv);
  SubmitResult submitOpen(unsigned tenant,
                          const std::vector<std::uint8_t>& ciphertext,
                          const std::vector<std::uint8_t>& aad,
                          const aes::Tag128& tag,
                          const std::vector<std::uint8_t>& iv);
  std::optional<AeadCompletion> fetchAead(unsigned tenant);
  std::size_t aeadQueued(unsigned tenant) const {
    return aead_queues_.at(tenant).size();
  }

  // One scheduling round: serve up to quota_per_round blocks per tenant
  // (hardware or fallback per the current health state), advance the error
  // budget window, and run canary probes when probation opens. Returns the
  // number of requests resolved this round.
  unsigned pump();

  // Pump until every queue is empty or the device-cycle budget is spent.
  void runUntilIdle(std::uint64_t max_device_cycles);

  HealthState health() const { return monitor_.state(); }
  const HealthMonitor& monitor() const { return monitor_; }
  const ServiceStats& stats() const { return stats_; }
  std::size_t queued(unsigned tenant) const {
    return queues_.at(tenant).size();
  }
  std::size_t totalQueued() const;
  std::uint64_t completedOf(unsigned tenant) const {
    return completed_per_tenant_.at(tenant);
  }
  const accel::AccelSession& session(unsigned tenant) const {
    return sessions_.at(tenant);
  }

 private:
  struct Request {
    std::uint64_t ticket = 0;
    aes::Block data{};
    bool decrypt = false;
    std::uint64_t submit_cycle = 0;
    unsigned requeues = 0;
  };

  struct AeadRequest {
    std::uint64_t ticket = 0;
    bool open = false;
    std::vector<std::uint8_t> iv;
    std::vector<std::uint8_t> aad;
    std::vector<std::uint8_t> data;  // plaintext (seal) or ciphertext (open)
    aes::Tag128 tag{};               // expected tag (open only)
    std::uint64_t submit_cycle = 0;
    unsigned requeues = 0;
  };

  void logTransitions();
  void applyStateOptions();
  // Serve up to `max_run` requests from the tenant's queue head — a
  // contiguous same-direction run goes through the batched hardware path,
  // everything else through the single-request path. Returns the number of
  // requests consumed from the queue.
  unsigned serveRun(unsigned tenant, unsigned max_run);
  // Try the descriptor-ring path for a same-direction run; true when the
  // run was fully resolved (Ok or Suppressed), false to fall back.
  bool serveBatchRing(unsigned tenant, const std::vector<Request>& run);
  void setupTenantRing(unsigned tenant);
  void serveBatchHardware(unsigned tenant, std::vector<Request> run);
  void serveOne(unsigned tenant, Request req);
  void serveHardware(unsigned tenant, Request req);
  void serveFallback(unsigned tenant, const Request& req);
  void complete(unsigned tenant, const Request& req, CompletionStatus st,
                ServedBy by, const aes::Block& data);
  SubmitResult submitAead(unsigned tenant, AeadRequest req);
  void serveAead(unsigned tenant, AeadRequest req);
  void serveAeadHardware(unsigned tenant, AeadRequest req);
  void serveAeadFallback(unsigned tenant, const AeadRequest& req);
  void completeAead(unsigned tenant, const AeadRequest& req,
                    CompletionStatus st, ServedBy by,
                    std::vector<std::uint8_t> data, const aes::Tag128& tag);
  void sampleWindowIfDue();
  void runCanaries();
  bool reprovisionKey(unsigned tenant);

  accel::AesAccelerator& acc_;
  ServiceConfig cfg_;
  HealthMonitor monitor_;
  std::vector<TenantSpec> tenants_;
  std::vector<accel::AccelSession> sessions_;
  std::vector<aes::ExpandedKey> golden_;  // fallback + canary expectations
  std::vector<std::deque<Request>> queues_;
  std::vector<std::deque<Completion>> completions_;
  std::vector<std::deque<AeadRequest>> aead_queues_;
  std::vector<std::deque<AeadCompletion>> aead_completions_;
  std::vector<char> tenant_active_;  // 0 after deactivateTenant
  std::vector<std::uint64_t> completed_per_tenant_;
  ServiceStats stats_;
  // Descriptor-ring data path (nullptr members when use_dma_ring is off or
  // the tenant arena is exhausted — those tenants use the MMIO path).
  std::unique_ptr<HostMemory> ring_mem_;
  std::unique_ptr<DmaRingEngine> ring_eng_;
  std::vector<std::unique_ptr<DmaRingDriver>> ring_drvs_;
  std::uint64_t next_ticket_ = 1;
  std::uint64_t window_start_cycle_ = 0;
  accel::SessionTelemetry window_base_;  // telemetry at last window sample
  std::size_t logged_transitions_ = 0;
  unsigned rr_next_ = 0;  // round-robin start tenant for fairness
};

}  // namespace aesifc::soc
