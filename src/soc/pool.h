#pragma once
// Sharded engine pool: N independent accelerator instances behind one
// submission front end, scaling the single-engine AccelService to cloud
// tenant counts without weakening the paper's isolation story.
//
// The sharding axis IS the security argument:
//
//  * Shards share nothing. Each shard owns a private AesAccelerator (its
//    own key scratchpad, round-key RAM, tag arrays, event ring, cycle
//    counter) and a private AccelService (its own queues, health monitor,
//    fallback path). There is no cross-shard state, so a fault, a covert-
//    channel attempt, or a health incident in one shard cannot perturb
//    another shard's results or timing — and draining shards on parallel
//    threads is deterministic because there is nothing to race on.
//
//  * Placement is data-independent. A tenant's shard is a sticky hash of
//    its NAME (with a load-aware spill to the lightest shard when the home
//    shard is crowded); neither keys nor traffic contents ever influence
//    placement, so co-residency reveals nothing about secrets.
//
//  * Batching stays inside a tenant. The per-shard service drains one
//    tenant's queue back-to-back into the 30-stage pipe (K blocks in
//    ~K + depth cycles instead of K x (depth + 1)); it never merges
//    tenants into one batch and never reorders within a tenant, so
//    completion order — the observable a co-located tenant could time —
//    depends only on the scheduler's fixed round-robin, not on data.
//
// Capacity: each shard hosts up to kRoundKeySlots - 1 tenants (slot 0 is
// left to the shard supervisor by convention); the scratchpad cells are a
// reusable staging area, re-tagged per key load.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "accel/accelerator.h"
#include "soc/service.h"

namespace aesifc::soc {

// One tenant as offered to the pool: the pool picks the shard and the
// hardware resources (user id, key slot, staging cells) itself.
struct PoolTenantSpec {
  std::string name;               // placement key — must be unique
  unsigned category = 1;          // lattice category of the tenant's label
  std::vector<std::uint8_t> key;  // raw AES-128 key bytes
  std::size_t queue_depth = 16;
};

struct PoolConfig {
  unsigned shards = 4;
  // Per-shard templates: every shard gets an identical engine and service
  // configuration (including ServiceConfig::batch_size).
  accel::AcceleratorConfig engine;
  ServiceConfig service;
  // Load-aware spill: a tenant leaves its hash-home shard only when the
  // home already holds more than spill_factor x the lightest shard's
  // tenants (counting the newcomer). 2.0 keeps placement sticky under
  // balanced load but stops pathological hash clumping.
  double spill_factor = 2.0;
  // Drain shards on one worker thread each in runUntilIdle(). Safe (and
  // bit-identical to the serial drain) because shards share nothing.
  bool parallel_drain = true;
};

class EnginePool {
 public:
  explicit EnginePool(PoolConfig cfg);

  EnginePool(const EnginePool&) = delete;
  EnginePool& operator=(const EnginePool&) = delete;

  // Places the tenant (sticky hash + spill), provisions its key on the
  // chosen shard, and returns the pool-wide tenant id used by submit()/
  // fetch(). Throws std::runtime_error when every shard is full.
  unsigned addTenant(const PoolTenantSpec& spec);

  // Admission-controlled submit to the tenant's shard (tickets are
  // shard-local; pair them with shardOf() when correlating across shards).
  SubmitResult submit(unsigned tenant, const aes::Block& data,
                      bool decrypt = false);

  // Pop the tenant's next completion, oldest first.
  std::optional<Completion> fetch(unsigned tenant);

  // AEAD (GCM) submission to the tenant's shard: one whole message per op,
  // admission-controlled like block traffic (see AccelService::submitSeal).
  SubmitResult submitSeal(unsigned tenant,
                          const std::vector<std::uint8_t>& plaintext,
                          const std::vector<std::uint8_t>& aad,
                          const std::vector<std::uint8_t>& iv);
  SubmitResult submitOpen(unsigned tenant,
                          const std::vector<std::uint8_t>& ciphertext,
                          const std::vector<std::uint8_t>& aad,
                          const aes::Tag128& tag,
                          const std::vector<std::uint8_t>& iv);
  std::optional<AeadCompletion> fetchAead(unsigned tenant);

  // One scheduling round on every shard (serial; deterministic). Returns
  // requests resolved across the pool.
  unsigned pump();

  // Drain every shard until idle, each within its own device-cycle budget.
  // Uses one thread per shard when cfg.parallel_drain (results identical
  // to the serial order — shards share nothing).
  void runUntilIdle(std::uint64_t max_device_cycles_per_shard);

  unsigned shards() const { return static_cast<unsigned>(shards_.size()); }
  unsigned tenants() const { return static_cast<unsigned>(routes_.size()); }
  unsigned shardOf(unsigned tenant) const { return routes_.at(tenant).shard; }
  std::size_t tenantsOn(unsigned shard) const {
    return shards_.at(shard).tenants;
  }
  std::size_t totalQueued() const;
  std::uint64_t maxShardCycle() const;  // wall-clock proxy: slowest shard
  ServiceStats aggregateStats() const;

  AccelService& shardService(unsigned shard) {
    return *shards_.at(shard).service;
  }
  accel::AesAccelerator& shardEngine(unsigned shard) {
    return *shards_.at(shard).engine;
  }

 private:
  struct Shard {
    // Engine must outlive (and be built before) the service that holds a
    // reference to it; unique_ptr keeps both pinned while the vector grows.
    std::unique_ptr<accel::AesAccelerator> engine;
    std::unique_ptr<AccelService> service;
    std::size_t tenants = 0;  // shard-local tenant count (== next local id)
  };
  struct Route {
    unsigned shard = 0;
    unsigned local = 0;  // tenant index within the shard's AccelService
  };

  unsigned placeShard(const std::string& name) const;

  PoolConfig cfg_;
  std::vector<Shard> shards_;
  std::vector<Route> routes_;
};

}  // namespace aesifc::soc
