#pragma once
// Sharded engine pool: N independent accelerator instances behind one
// submission front end, scaling the single-engine AccelService to cloud
// tenant counts without weakening the paper's isolation story.
//
// The sharding axis IS the security argument:
//
//  * Shards share nothing. Each shard owns a private AesAccelerator (its
//    own key scratchpad, round-key RAM, tag arrays, event ring, cycle
//    counter) and a private AccelService (its own queues, health monitor,
//    fallback path). There is no cross-shard state, so a fault, a covert-
//    channel attempt, or a health incident in one shard cannot perturb
//    another shard's results or timing — and draining shards on parallel
//    threads is deterministic because there is nothing to race on.
//
//  * Placement is data-independent. A tenant's shard is the highest-
//    random-weight (rendezvous) hash of its NAME against the active shard
//    set (with a load-aware spill to the lightest shard when the home
//    shard is crowded); neither keys nor traffic contents ever influence
//    placement, so co-residency reveals nothing about secrets. Rendezvous
//    makes placement stable under shard-count change: hot-adding shard
//    N+1 only remaps the tenants whose top weight IS the new shard
//    (expected 1/(N+1) of them) — everyone else keeps their home.
//
//  * Batching stays inside a tenant. The per-shard service drains one
//    tenant's queue back-to-back into the 30-stage pipe (K blocks in
//    ~K + depth cycles instead of K x (depth + 1)); it never merges
//    tenants into one batch and never reorders within a tenant, so
//    completion order — the observable a co-located tenant could time —
//    depends only on the scheduler's fixed round-robin, not on data.
//
// The pool is ELASTIC and SELF-HEALING:
//
//  * addShard() spins up a fresh engine + service pair at runtime;
//    retireShard() evacuates tenants, drains in-flight work, and zeroizes
//    every key slot before taking the shard out of the placement set.
//
//  * migrateTenant() is a first-class audited operation. Ordering is the
//    security argument: (1) still-queued work completes at the source
//    under the old provisioning, (2) the session key is re-provisioned at
//    the TARGET through the same tagged scratchpad path as the original
//    load, (3) a KeyManager::rotate-style slot-quiesce barrier waits out
//    in-flight pipeline blocks, (4) only then is the source slot zeroized
//    and the source-side tenant retired. MigrationBegun / KeyZeroized /
//    Committed events land in BOTH shards' rings, and any request that
//    would have executed under a stale or zeroized key is refused and
//    counted in ServiceStats::wrong_key_uses — which must stay 0.
//
// Capacity: each shard hosts up to kRoundKeySlots - 1 tenants (slot 0 is
// left to the shard supervisor by convention); the scratchpad cells are a
// reusable staging area, re-tagged per key load.

#include <bitset>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "accel/accelerator.h"
#include "accel/key_store.h"
#include "soc/service.h"

namespace aesifc::soc {

// One tenant as offered to the pool: the pool picks the shard and the
// hardware resources (user id, key slot, staging cells) itself.
struct PoolTenantSpec {
  std::string name;               // placement key — must be unique
  unsigned category = 1;          // lattice category of the tenant's label
  std::vector<std::uint8_t> key;  // raw AES-128 key bytes
  std::size_t queue_depth = 16;
};

struct PoolConfig {
  unsigned shards = 4;
  // Per-shard templates: every shard gets an identical engine and service
  // configuration (including ServiceConfig::batch_size).
  accel::AcceleratorConfig engine;
  ServiceConfig service;
  // Load-aware spill: a tenant leaves its rendezvous-home shard only when
  // the home already holds more than spill_factor x the lightest shard's
  // tenants (counting the newcomer). 2.0 keeps placement sticky under
  // balanced load but stops pathological hash clumping.
  double spill_factor = 2.0;
  // Drain shards on one worker thread each in runUntilIdle(). Safe (and
  // bit-identical to the serial drain) because shards share nothing.
  bool parallel_drain = true;
  // Device-cycle budget for the drain / slot-quiesce barriers inside
  // migrateTenant and retireShard.
  std::uint64_t migrate_drain_cycles = 1u << 16;
};

// Why the pool could not place (or move) a tenant. Mirrors SubmitResult's
// typed-verdict style so a gateway can degrade gracefully instead of
// unwinding on an exception.
enum class PlaceError { None, PoolFull, ProvisionRefused };

struct PlaceResult {
  bool placed = false;
  unsigned tenant = 0;  // pool-wide tenant id, valid when placed
  PlaceError error = PlaceError::None;
};

enum class MigrateError {
  None,
  UnknownTenant,
  SameShard,        // no-op request; nothing moved
  TargetRetired,
  TargetFull,       // no free key slot on the destination
  DrainTimeout,     // source queues would not empty within the budget
  ProvisionRefused, // target refused the key load; source left untouched
  QuiesceTimeout,   // in-flight barrier never cleared; target rolled back
};

std::string toString(MigrateError e);

struct MigrateResult {
  bool moved = false;
  MigrateError error = MigrateError::None;
};

// Structural counters of the elastic machinery (per-traffic counters live
// in ServiceStats; wrong_key_uses aggregates from the shard services).
struct PoolStats {
  std::uint64_t migrations = 0;
  std::uint64_t migration_failures = 0;
  std::uint64_t shards_added = 0;
  std::uint64_t shards_retired = 0;

  std::string toJson() const;
};

class EnginePool {
 public:
  explicit EnginePool(PoolConfig cfg);

  EnginePool(const EnginePool&) = delete;
  EnginePool& operator=(const EnginePool&) = delete;

  // Places the tenant (rendezvous hash + spill), provisions its key on the
  // chosen shard, and returns the pool-wide tenant id used by submit()/
  // fetch(). Refusal is a typed verdict, never an exception: PoolFull when
  // no active shard has a free key slot, ProvisionRefused when the device
  // refused the key load.
  PlaceResult addTenant(const PoolTenantSpec& spec);

  // --- Elasticity ----------------------------------------------------------
  // Spin up a fresh engine + service shard at runtime; it immediately
  // joins the placement set. Returns the new shard id.
  unsigned addShard();

  // Evacuate every tenant (to rendezvous-chosen healthy shards), drain
  // in-flight work, zeroize every remaining key slot through the scrub
  // path, and remove the shard from the placement set. Fails (false)
  // without touching anything when the remaining shards lack capacity.
  bool retireShard(unsigned shard);

  // Move one tenant to dst: complete still-queued work at the source,
  // re-provision the key at the target, wait the slot-quiesce barrier,
  // zeroize at the source, and emit the paired audit events into both
  // rings. On failure the source keeps serving (load-before-zeroize means
  // there is never a keyless window).
  MigrateResult migrateTenant(unsigned tenant, unsigned dst_shard);

  // Rendezvous home of `name` over the active shard set, ignoring load and
  // capacity — the pure placement function (tests pin remap minimality on
  // this).
  unsigned placementOf(const std::string& name) const;

  // Best migration/evacuation target for `tenant`: highest-weight active
  // shard with a free slot, skipping `exclude`. nullopt when none fits.
  std::optional<unsigned> pickTargetShard(
      unsigned tenant, const std::vector<unsigned>& exclude) const;

  // --- Traffic -------------------------------------------------------------
  // Admission-controlled submit to the tenant's shard (tickets are
  // shard-local; pair them with shardOf() when correlating across shards).
  SubmitResult submit(unsigned tenant, const aes::Block& data,
                      bool decrypt = false);

  // Pop the tenant's next completion, oldest first. Completions produced
  // on a previous shard (before a migration) surface first, preserving
  // global per-tenant order across the move.
  std::optional<Completion> fetch(unsigned tenant);

  // AEAD (GCM) submission to the tenant's shard: one whole message per op,
  // admission-controlled like block traffic (see AccelService::submitSeal).
  SubmitResult submitSeal(unsigned tenant,
                          const std::vector<std::uint8_t>& plaintext,
                          const std::vector<std::uint8_t>& aad,
                          const std::vector<std::uint8_t>& iv);
  SubmitResult submitOpen(unsigned tenant,
                          const std::vector<std::uint8_t>& ciphertext,
                          const std::vector<std::uint8_t>& aad,
                          const aes::Tag128& tag,
                          const std::vector<std::uint8_t>& iv);
  std::optional<AeadCompletion> fetchAead(unsigned tenant);

  // One scheduling round on every active shard (serial; deterministic).
  // Returns requests resolved across the pool.
  unsigned pump();

  // Drain every active shard until idle, each within its own device-cycle
  // budget. Uses one thread per shard when cfg.parallel_drain (results
  // identical to the serial order — shards share nothing).
  void runUntilIdle(std::uint64_t max_device_cycles_per_shard);

  unsigned shards() const { return static_cast<unsigned>(shards_.size()); }
  unsigned activeShards() const;
  bool shardRetired(unsigned shard) const {
    return shards_.at(shard).retired;
  }
  unsigned tenants() const { return static_cast<unsigned>(recs_.size()); }
  unsigned shardOf(unsigned tenant) const {
    return recs_.at(tenant).route.shard;
  }
  std::vector<unsigned> tenantsOnShard(unsigned shard) const;
  const PoolTenantSpec& tenantSpec(unsigned tenant) const {
    return recs_.at(tenant).spec;
  }
  std::size_t tenantsOn(unsigned shard) const {
    return shards_.at(shard).tenants;
  }
  std::size_t totalQueued() const;
  std::uint64_t maxShardCycle() const;  // wall-clock proxy: slowest shard
  ServiceStats aggregateStats() const;
  const PoolStats& poolStats() const { return pool_stats_; }

  AccelService& shardService(unsigned shard) {
    return *shards_.at(shard).service;
  }
  accel::AesAccelerator& shardEngine(unsigned shard) {
    return *shards_.at(shard).engine;
  }

 private:
  struct Shard {
    // Engine must outlive (and be built before) the service that holds a
    // reference to it; unique_ptr keeps both pinned while the vector grows.
    std::unique_ptr<accel::AesAccelerator> engine;
    std::unique_ptr<AccelService> service;
    std::size_t tenants = 0;  // active tenants currently homed here
    bool retired = false;
    // Key-slot occupancy (slot 0 reserved for the shard supervisor).
    // Migration frees slots, so allocation walks this instead of assuming
    // slot == 1 + arrival order.
    std::bitset<accel::kRoundKeySlots> slots;
  };
  struct Route {
    unsigned shard = 0;
    unsigned local = 0;  // tenant index within the shard's AccelService
  };
  struct TenantRec {
    PoolTenantSpec spec;
    Route route;
    // Previous homes, oldest first: fetch() drains their completion queues
    // before the current shard's so migration never reorders or strands a
    // completion.
    std::vector<Route> history;
  };

  unsigned makeShard();
  std::optional<unsigned> chooseShard(const std::string& name,
                                      const std::vector<unsigned>& exclude,
                                      bool apply_spill) const;
  int freeSlotOn(const Shard& sh) const;
  // Wait (ticking the shard's engine) until no in-flight block references
  // the slot — the KeyManager::rotate-style barrier.
  bool quiesceSlot(Shard& sh, unsigned slot) const;
  void noteBothRings(accel::SecurityEventKind kind, unsigned src_shard,
                     unsigned dst_shard, unsigned user,
                     const std::string& detail);

  PoolConfig cfg_;
  std::vector<Shard> shards_;
  std::vector<TenantRec> recs_;
  PoolStats pool_stats_;
};

}  // namespace aesifc::soc
