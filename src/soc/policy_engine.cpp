#include "soc/policy_engine.h"

#include <sstream>

#include "soc/attacks.h"

namespace aesifc::soc {

lattice::DowngradeDecision degradedReleaseDecision(
    const lattice::Principal& requester, lattice::Conf key_conf) {
  // Mirror of AesAccelerator::routeCompleted: the result label is the key's
  // confidentiality joined with the requester's, at the requester's
  // integrity; release declassifies the confidentiality to bottom.
  const lattice::Label from{key_conf.join(requester.authority.c),
                            requester.authority.i};
  const lattice::Label to{lattice::Conf::bottom(), from.i};
  return lattice::checkDeclassify(from, to, requester);
}

std::vector<PolicyVerdict> evaluatePolicies(accel::SecurityMode mode) {
  const auto debug = runDebugPortAttack(mode);
  const auto overflow = runScratchpadOverflow(mode);
  const auto misuse = runKeyMisuseAttack(mode);
  const auto config = runConfigTamper(mode);
  const auto dma = runDmaTheftAttack(mode);

  std::vector<PolicyVerdict> verdicts;

  // 1. A classified key cannot be read out by a less confidential user.
  verdicts.push_back(
      {1, !debug.key_recovered,
       debug.key_recovered
           ? "Eve recovered Alice's full AES key via the debug peripheral"
           : "debug read of Alice's in-flight state blocked by tag check"});

  // 2. A protected key cannot be modified by a less trusted user.
  verdicts.push_back(
      {2, !overflow.alice_key_corrupted,
       overflow.alice_key_corrupted
           ? "Eve's scratchpad overrun overwrote Alice's key cell"
           : "overflowing write blocked by the per-cell tag check"});

  // 3. A classified key cannot be used by a less trusted user.
  const bool used = misuse.master_key_output_released ||
                    misuse.alice_key_output_released;
  verdicts.push_back(
      {3, !used && misuse.supervisor_master_ok && misuse.own_key_ok,
       used ? "Eve obtained outputs computed under the master/Alice key"
            : "nonmalleable declassification rejected Eve's key-misuse "
              "outputs; supervisor and own-key use unaffected"});

  // 4. A low-confidential user cannot read a higher user's plaintext —
  //    checked through both the debug peripheral and the DMA path.
  const bool pt_read = debug.key_recovered || dma.alice_plaintext_stolen;
  verdicts.push_back(
      {4, !pt_read && dma.legit_dma_ok,
       pt_read ? "Alice's plaintext reached Eve (debug peripheral and/or "
                 "cross-user DMA)"
               : "stage contents and host pages carry Alice's tag; debug "
                 "reads and cross-user DMA both refused"});

  // 5. A less trusted user cannot modify data beyond its authority —
  //    scratchpad cells and host pages alike.
  const bool tampered =
      overflow.overflow_write_succeeded || !dma.dst_write_blocked;
  verdicts.push_back(
      {5, !tampered,
       tampered ? "out-of-authority write landed (scratchpad overrun or DMA "
                  "into a foreign page)"
                : "out-of-authority writes rejected at the scratchpad and "
                  "the DMA engine"});

  // 6. Config registers: readable by all, writable only by the supervisor.
  verdicts.push_back(
      {6,
       !config.eve_write_landed && config.supervisor_write_landed &&
           config.eve_read_ok && !debug.eve_enabled_debug,
       config.eve_write_landed
           ? "Eve modified a configuration register"
           : "unprivileged config writes blocked; supervisor writes and "
             "public reads work"});

  return verdicts;
}

std::string renderPolicyMatrix() {
  const auto base = evaluatePolicies(accel::SecurityMode::Baseline);
  const auto prot = evaluatePolicies(accel::SecurityMode::Protected);
  const auto& policies = ifc::table1Policies();

  std::ostringstream os;
  os << "Table 1 policy enforcement (behavioral accelerator)\n";
  os << "  id  baseline   protected  requirement\n";
  for (std::size_t i = 0; i < policies.size(); ++i) {
    os << "  " << policies[i].id << "   "
       << (base[i].holds ? "holds     " : "VIOLATED  ") << " "
       << (prot[i].holds ? "holds     " : "VIOLATED  ") << " "
       << policies[i].requirement << "\n";
  }
  return os.str();
}

}  // namespace aesifc::soc
