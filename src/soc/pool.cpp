#include "soc/pool.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace aesifc::soc {

namespace {

using accel::SecurityEventKind;

// FNV-1a 64: placement depends only on the tenant's public name — never on
// key material or traffic — so shard co-residency is data-independent.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// Rendezvous (highest-random-weight) score of a (tenant, shard) pair:
// splitmix64 finalizer over the name hash combined with the shard's stable
// id (its index — shards are append-only; retired ones keep their slot in
// the vector so ids never shift).
std::uint64_t hrwWeight(std::uint64_t name_hash, unsigned shard) {
  std::uint64_t z = name_hash ^ (0x9e3779b97f4a7c15ull * (shard + 1));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::string toString(MigrateError e) {
  switch (e) {
    case MigrateError::None: return "none";
    case MigrateError::UnknownTenant: return "unknown-tenant";
    case MigrateError::SameShard: return "same-shard";
    case MigrateError::TargetRetired: return "target-retired";
    case MigrateError::TargetFull: return "target-full";
    case MigrateError::DrainTimeout: return "drain-timeout";
    case MigrateError::ProvisionRefused: return "provision-refused";
    case MigrateError::QuiesceTimeout: return "quiesce-timeout";
  }
  return "?";
}

std::string PoolStats::toJson() const {
  std::ostringstream os;
  os << "{\"migrations\":" << migrations
     << ",\"migration_failures\":" << migration_failures
     << ",\"shards_added\":" << shards_added
     << ",\"shards_retired\":" << shards_retired << "}";
  return os.str();
}

EnginePool::EnginePool(PoolConfig cfg) : cfg_{std::move(cfg)} {
  if (cfg_.shards == 0) throw std::runtime_error("EnginePool: zero shards");
  shards_.reserve(cfg_.shards);
  for (unsigned s = 0; s < cfg_.shards; ++s) makeShard();
}

unsigned EnginePool::makeShard() {
  Shard sh;
  sh.engine = std::make_unique<accel::AesAccelerator>(cfg_.engine);
  sh.engine->addUser(lattice::Principal::supervisor());  // user 0
  sh.service = std::make_unique<AccelService>(*sh.engine, cfg_.service);
  sh.slots.set(0);  // shard-supervisor convention
  shards_.push_back(std::move(sh));
  return static_cast<unsigned>(shards_.size() - 1);
}

unsigned EnginePool::addShard() {
  const unsigned id = makeShard();
  ++pool_stats_.shards_added;
  shards_[id].engine->noteServiceEvent(0, "shard hot-added to pool");
  return id;
}

unsigned EnginePool::activeShards() const {
  unsigned n = 0;
  for (const auto& sh : shards_) {
    if (!sh.retired) ++n;
  }
  return n;
}

int EnginePool::freeSlotOn(const Shard& sh) const {
  for (unsigned s = 1; s < accel::kRoundKeySlots; ++s) {
    if (!sh.slots.test(s)) return static_cast<int>(s);
  }
  return -1;
}

unsigned EnginePool::placementOf(const std::string& name) const {
  const std::uint64_t h = fnv1a(name);
  unsigned best = 0;
  std::uint64_t best_w = 0;
  bool have = false;
  for (unsigned s = 0; s < shards_.size(); ++s) {
    if (shards_[s].retired) continue;
    const std::uint64_t w = hrwWeight(h, s);
    if (!have || w > best_w) {
      best = s;
      best_w = w;
      have = true;
    }
  }
  return best;
}

std::optional<unsigned> EnginePool::chooseShard(
    const std::string& name, const std::vector<unsigned>& exclude,
    bool apply_spill) const {
  const std::uint64_t h = fnv1a(name);
  auto excluded = [&](unsigned s) {
    return std::find(exclude.begin(), exclude.end(), s) != exclude.end();
  };
  // Candidates in descending rendezvous weight: the walk preserves HRW's
  // minimal-disruption property — a tenant only leaves its top-weight home
  // when that home is full (or crowded past the spill bound).
  std::vector<unsigned> order;
  for (unsigned s = 0; s < shards_.size(); ++s) {
    if (!shards_[s].retired && !excluded(s)) order.push_back(s);
  }
  if (order.empty()) return std::nullopt;
  std::sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
    return hrwWeight(h, a) > hrwWeight(h, b);
  });

  unsigned lightest = order[0];
  for (unsigned s : order) {
    if (shards_[s].tenants < shards_[lightest].tenants) lightest = s;
  }
  // Power-of-two-choices over the rendezvous order: the tenant's TWO
  // top-weight shards are its stable candidate set, and it takes the less
  // loaded of them (ties keep the higher weight). A pure top-1 pick clumps
  // tenants with birthday probability and idles shards; two choices keep
  // the load near-uniform while the candidate set — and therefore remap
  // stability under hot-add — stays a function of the name alone.
  unsigned home = order[0];
  if (order.size() > 1 &&
      shards_[order[1]].tenants < shards_[home].tenants &&
      freeSlotOn(shards_[order[1]]) >= 0) {
    home = order[1];
  }
  // Spill when the home (counting the newcomer) would REACH spill_factor
  // times the lightest (also counting a newcomer) — sticky by default, but
  // at factor 2.0 a second co-resident spills to an empty shard rather
  // than clump while capacity idles.
  if (apply_spill) {
    const double home_load = static_cast<double>(shards_[home].tenants + 1);
    const double light_load =
        static_cast<double>(shards_[lightest].tenants + 1);
    if (home_load >= cfg_.spill_factor * light_load &&
        shards_[lightest].tenants < shards_[home].tenants &&
        freeSlotOn(shards_[lightest]) >= 0) {
      return lightest;
    }
  }
  if (freeSlotOn(shards_[home]) >= 0) return home;
  for (unsigned s : order) {
    if (freeSlotOn(shards_[s]) >= 0) return s;
  }
  return std::nullopt;
}

PlaceResult EnginePool::addTenant(const PoolTenantSpec& spec) {
  const auto shard = chooseShard(spec.name, {}, /*apply_spill=*/true);
  if (!shard.has_value()) return {false, 0, PlaceError::PoolFull};
  Shard& sh = shards_[*shard];
  const int slot = freeSlotOn(sh);

  TenantSpec t;
  t.user = sh.engine->addUser(lattice::Principal::user(spec.name, spec.category));
  t.key_slot = static_cast<unsigned>(slot);
  // Staging cells are re-tagged on every key (re)load, so reusing them
  // round-robin across a shard's slots is safe.
  t.cell_base = (2 * (t.key_slot - 1)) % accel::kScratchpadCells;
  t.key = spec.key;
  t.key_conf = lattice::Conf::category(spec.category);
  t.queue_depth = spec.queue_depth;

  const auto local_id = sh.service->tryAddTenant(t);
  if (!local_id.has_value()) return {false, 0, PlaceError::ProvisionRefused};
  sh.slots.set(t.key_slot);
  ++sh.tenants;
  recs_.push_back(TenantRec{spec, Route{*shard, *local_id}, {}});
  return {true, static_cast<unsigned>(recs_.size() - 1), PlaceError::None};
}

std::optional<unsigned> EnginePool::pickTargetShard(
    unsigned tenant, const std::vector<unsigned>& exclude) const {
  const TenantRec& rec = recs_.at(tenant);
  std::vector<unsigned> ex = exclude;
  ex.push_back(rec.route.shard);
  return chooseShard(rec.spec.name, ex, /*apply_spill=*/false);
}

bool EnginePool::quiesceSlot(Shard& sh, unsigned slot) const {
  std::uint64_t waited = 0;
  while (sh.engine->keySlotBusy(slot)) {
    if (waited++ >= cfg_.migrate_drain_cycles) return false;
    sh.engine->tick();
  }
  return true;
}

void EnginePool::noteBothRings(SecurityEventKind kind, unsigned src_shard,
                               unsigned dst_shard, unsigned user,
                               const std::string& detail) {
  shards_[src_shard].engine->noteHostEvent(kind, user, detail);
  shards_[dst_shard].engine->noteHostEvent(kind, 0, detail);
}

MigrateResult EnginePool::migrateTenant(unsigned tenant, unsigned dst_shard) {
  auto fail = [this](MigrateError e) {
    ++pool_stats_.migration_failures;
    return MigrateResult{false, e};
  };
  if (tenant >= recs_.size() || dst_shard >= shards_.size())
    return fail(MigrateError::UnknownTenant);
  TenantRec& rec = recs_[tenant];
  const unsigned src_shard = rec.route.shard;
  if (dst_shard == src_shard) return fail(MigrateError::SameShard);
  Shard& src = shards_[src_shard];
  Shard& dst = shards_[dst_shard];
  if (dst.retired) return fail(MigrateError::TargetRetired);
  const int dst_slot = freeSlotOn(dst);
  if (dst_slot < 0) return fail(MigrateError::TargetFull);

  const TenantSpec src_spec = src.service->tenantSpec(rec.route.local);
  std::ostringstream what;
  what << "tenant '" << rec.spec.name << "' shard " << src_shard << " -> "
       << dst_shard << " (slot " << src_spec.key_slot << " -> " << dst_slot
       << ")";
  noteBothRings(SecurityEventKind::MigrationBegun, src_shard, dst_shard,
                src_spec.user, what.str());

  // 1. Complete still-queued work at the source under the still-valid key,
  //    so no request ever spans the handover.
  if (!src.service->drainTenant(rec.route.local, cfg_.migrate_drain_cycles)) {
    return fail(MigrateError::DrainTimeout);
  }

  // 2. Load at the TARGET first — through the same tagged scratchpad path
  //    and under the same principal/category label as the original
  //    provisioning, so the key travels at (ck = category conf, owner =
  //    the tenant's own label) and never below it.
  TenantSpec t2;
  t2.user = dst.engine->addUser(
      lattice::Principal::user(rec.spec.name, rec.spec.category));
  t2.key_slot = static_cast<unsigned>(dst_slot);
  t2.cell_base = (2 * (t2.key_slot - 1)) % accel::kScratchpadCells;
  t2.key = src_spec.key;
  t2.key_conf = src_spec.key_conf;
  t2.queue_depth = src_spec.queue_depth;
  t2.aead_queue_depth = src_spec.aead_queue_depth;
  const auto dst_local = dst.service->tryAddTenant(t2);
  if (!dst_local.has_value()) return fail(MigrateError::ProvisionRefused);

  // 3. Slot-quiesce barrier (KeyManager::rotate discipline): no in-flight
  //    pipeline block may still reference the source slot.
  if (!quiesceSlot(src, src_spec.key_slot)) {
    // Roll the target back — retire the orphan provisioning and zeroize
    // its slot so exactly one live copy of the key remains (the source).
    dst.service->deactivateTenant(*dst_local);
    dst.engine->clearKey(0, t2.key_slot);
    return fail(MigrateError::QuiesceTimeout);
  }

  // 4. Zeroize at the source (supervisor-integrity destructive write) and
  //    retire the source-side tenant so nothing can be queued or served
  //    under the dead slot. The staging cells are scrubbed as well.
  src.service->deactivateTenant(rec.route.local);
  src.engine->clearKey(0, src_spec.key_slot);
  for (unsigned c = 0; c < 2; ++c) {
    src.engine->writeKeyCell(src_spec.user,
                             (src_spec.cell_base + c) % accel::kScratchpadCells,
                             0);
  }
  noteBothRings(SecurityEventKind::MigrationKeyZeroized, src_shard, dst_shard,
                src_spec.user, what.str());

  // 5. Commit the route. Completions already delivered at the source stay
  //    fetchable through the history chain.
  src.slots.reset(src_spec.key_slot);
  --src.tenants;
  rec.history.push_back(rec.route);
  rec.route = Route{dst_shard, *dst_local};
  dst.slots.set(t2.key_slot);
  ++dst.tenants;
  ++pool_stats_.migrations;
  noteBothRings(SecurityEventKind::MigrationCommitted, src_shard, dst_shard,
                t2.user, what.str());
  return {true, MigrateError::None};
}

bool EnginePool::retireShard(unsigned shard) {
  if (shard >= shards_.size() || shards_[shard].retired) return false;
  // Pre-check capacity: every tenant here must fit somewhere else.
  std::size_t free_elsewhere = 0;
  for (unsigned s = 0; s < shards_.size(); ++s) {
    if (s == shard || shards_[s].retired) continue;
    free_elsewhere += (accel::kRoundKeySlots - 1) - shards_[s].tenants;
  }
  const auto evacuees = tenantsOnShard(shard);
  if (evacuees.size() > free_elsewhere) return false;

  for (unsigned t : evacuees) {
    const auto target = pickTargetShard(t, {shard});
    if (!target.has_value()) return false;
    if (!migrateTenant(t, *target).moved) return false;
  }

  Shard& sh = shards_[shard];
  // Drain whatever the shard still owes (evacuation already drained each
  // tenant; this covers stragglers like canary traffic).
  sh.service->runUntilIdle(cfg_.migrate_drain_cycles);
  // Zeroize every remaining valid slot through the same scrub path.
  for (unsigned s = 0; s < accel::kRoundKeySlots; ++s) {
    if (!sh.engine->roundKeys().valid(s)) continue;
    quiesceSlot(sh, s);
    sh.engine->clearKey(0, s);
  }
  sh.retired = true;
  ++pool_stats_.shards_retired;
  sh.engine->noteServiceEvent(0, "shard retired: tenants evacuated, key "
                                 "slots zeroized, out of placement set");
  return true;
}

std::vector<unsigned> EnginePool::tenantsOnShard(unsigned shard) const {
  std::vector<unsigned> out;
  for (unsigned t = 0; t < recs_.size(); ++t) {
    if (recs_[t].route.shard == shard &&
        shards_[shard].service->tenantActive(recs_[t].route.local)) {
      out.push_back(t);
    }
  }
  return out;
}

SubmitResult EnginePool::submit(unsigned tenant, const aes::Block& data,
                                bool decrypt) {
  const Route& r = recs_.at(tenant).route;
  return shards_[r.shard].service->submit(r.local, data, decrypt);
}

std::optional<Completion> EnginePool::fetch(unsigned tenant) {
  TenantRec& rec = recs_.at(tenant);
  // Pre-migration completions first: they are strictly older than anything
  // the current shard can hold (the source was drained before handover).
  for (const Route& h : rec.history) {
    if (auto c = shards_[h.shard].service->fetch(h.local)) return c;
  }
  return shards_[rec.route.shard].service->fetch(rec.route.local);
}

SubmitResult EnginePool::submitSeal(unsigned tenant,
                                    const std::vector<std::uint8_t>& plaintext,
                                    const std::vector<std::uint8_t>& aad,
                                    const std::vector<std::uint8_t>& iv) {
  const Route& r = recs_.at(tenant).route;
  return shards_[r.shard].service->submitSeal(r.local, plaintext, aad, iv);
}

SubmitResult EnginePool::submitOpen(unsigned tenant,
                                    const std::vector<std::uint8_t>& ciphertext,
                                    const std::vector<std::uint8_t>& aad,
                                    const aes::Tag128& tag,
                                    const std::vector<std::uint8_t>& iv) {
  const Route& r = recs_.at(tenant).route;
  return shards_[r.shard].service->submitOpen(r.local, ciphertext, aad, tag,
                                              iv);
}

std::optional<AeadCompletion> EnginePool::fetchAead(unsigned tenant) {
  TenantRec& rec = recs_.at(tenant);
  for (const Route& h : rec.history) {
    if (auto c = shards_[h.shard].service->fetchAead(h.local)) return c;
  }
  return shards_[rec.route.shard].service->fetchAead(rec.route.local);
}

unsigned EnginePool::pump() {
  unsigned resolved = 0;
  for (auto& sh : shards_) {
    if (!sh.retired) resolved += sh.service->pump();
  }
  return resolved;
}

void EnginePool::runUntilIdle(std::uint64_t max_device_cycles_per_shard) {
  if (cfg_.parallel_drain && activeShards() > 1) {
    std::vector<std::thread> workers;
    workers.reserve(shards_.size());
    for (auto& sh : shards_) {
      if (sh.retired) continue;
      // Each worker touches exactly one shard and shards share nothing, so
      // this is a data-race-free, deterministic fan-out.
      workers.emplace_back([&sh, max_device_cycles_per_shard] {
        sh.service->runUntilIdle(max_device_cycles_per_shard);
      });
    }
    for (auto& w : workers) w.join();
  } else {
    for (auto& sh : shards_) {
      if (!sh.retired) sh.service->runUntilIdle(max_device_cycles_per_shard);
    }
  }
}

std::size_t EnginePool::totalQueued() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) n += sh.service->totalQueued();
  return n;
}

std::uint64_t EnginePool::maxShardCycle() const {
  std::uint64_t m = 0;
  for (const auto& sh : shards_) m = std::max(m, sh.engine->cycle());
  return m;
}

ServiceStats EnginePool::aggregateStats() const {
  ServiceStats total;
  for (const auto& sh : shards_) total += sh.service->stats();
  return total;
}

}  // namespace aesifc::soc
