#include "soc/pool.h"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "accel/key_store.h"

namespace aesifc::soc {

namespace {

// Slot 0 per shard is left unused by tenants (supervisor convention), so a
// shard hosts at most kRoundKeySlots - 1 of them.
constexpr std::size_t kTenantsPerShard = accel::kRoundKeySlots - 1;

// FNV-1a 64: placement depends only on the tenant's public name — never on
// key material or traffic — so shard co-residency is data-independent.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

EnginePool::EnginePool(PoolConfig cfg) : cfg_{std::move(cfg)} {
  if (cfg_.shards == 0) throw std::runtime_error("EnginePool: zero shards");
  shards_.reserve(cfg_.shards);
  for (unsigned s = 0; s < cfg_.shards; ++s) {
    Shard sh;
    sh.engine = std::make_unique<accel::AesAccelerator>(cfg_.engine);
    sh.engine->addUser(lattice::Principal::supervisor());  // user 0
    sh.service = std::make_unique<AccelService>(*sh.engine, cfg_.service);
    shards_.push_back(std::move(sh));
  }
}

unsigned EnginePool::placeShard(const std::string& name) const {
  const unsigned home =
      static_cast<unsigned>(fnv1a(name) % shards_.size());
  unsigned lightest = 0;
  for (unsigned s = 1; s < shards_.size(); ++s) {
    if (shards_[s].tenants < shards_[lightest].tenants) lightest = s;
  }
  unsigned chosen = home;
  // Spill only when the home (counting the newcomer) exceeds spill_factor
  // times the lightest (also counting a newcomer) — sticky by default.
  const double home_load = static_cast<double>(shards_[home].tenants + 1);
  const double light_load = static_cast<double>(shards_[lightest].tenants + 1);
  if (home_load > cfg_.spill_factor * light_load) chosen = lightest;
  if (shards_[chosen].tenants >= kTenantsPerShard) chosen = lightest;
  if (shards_[chosen].tenants >= kTenantsPerShard) {
    throw std::runtime_error("EnginePool: all shards full");
  }
  return chosen;
}

unsigned EnginePool::addTenant(const PoolTenantSpec& spec) {
  const unsigned shard = placeShard(spec.name);
  Shard& sh = shards_[shard];
  const unsigned local = static_cast<unsigned>(sh.tenants);

  TenantSpec t;
  t.user = sh.engine->addUser(lattice::Principal::user(spec.name, spec.category));
  t.key_slot = 1 + local;  // slot 0 reserved per shard
  // Staging cells are re-tagged on every key (re)load, so reusing them
  // round-robin across a shard's tenants is safe.
  t.cell_base = (2 * local) % accel::kScratchpadCells;
  t.key = spec.key;
  t.key_conf = lattice::Conf::category(spec.category);
  t.queue_depth = spec.queue_depth;

  const unsigned local_id = sh.service->addTenant(t);
  ++sh.tenants;
  routes_.push_back(Route{shard, local_id});
  return static_cast<unsigned>(routes_.size() - 1);
}

SubmitResult EnginePool::submit(unsigned tenant, const aes::Block& data,
                                bool decrypt) {
  const Route& r = routes_.at(tenant);
  return shards_[r.shard].service->submit(r.local, data, decrypt);
}

std::optional<Completion> EnginePool::fetch(unsigned tenant) {
  const Route& r = routes_.at(tenant);
  return shards_[r.shard].service->fetch(r.local);
}

SubmitResult EnginePool::submitSeal(unsigned tenant,
                                    const std::vector<std::uint8_t>& plaintext,
                                    const std::vector<std::uint8_t>& aad,
                                    const std::vector<std::uint8_t>& iv) {
  const Route& r = routes_.at(tenant);
  return shards_[r.shard].service->submitSeal(r.local, plaintext, aad, iv);
}

SubmitResult EnginePool::submitOpen(unsigned tenant,
                                    const std::vector<std::uint8_t>& ciphertext,
                                    const std::vector<std::uint8_t>& aad,
                                    const aes::Tag128& tag,
                                    const std::vector<std::uint8_t>& iv) {
  const Route& r = routes_.at(tenant);
  return shards_[r.shard].service->submitOpen(r.local, ciphertext, aad, tag,
                                              iv);
}

std::optional<AeadCompletion> EnginePool::fetchAead(unsigned tenant) {
  const Route& r = routes_.at(tenant);
  return shards_[r.shard].service->fetchAead(r.local);
}

unsigned EnginePool::pump() {
  unsigned resolved = 0;
  for (auto& sh : shards_) resolved += sh.service->pump();
  return resolved;
}

void EnginePool::runUntilIdle(std::uint64_t max_device_cycles_per_shard) {
  if (cfg_.parallel_drain && shards_.size() > 1) {
    std::vector<std::thread> workers;
    workers.reserve(shards_.size());
    for (auto& sh : shards_) {
      // Each worker touches exactly one shard and shards share nothing, so
      // this is a data-race-free, deterministic fan-out.
      workers.emplace_back([&sh, max_device_cycles_per_shard] {
        sh.service->runUntilIdle(max_device_cycles_per_shard);
      });
    }
    for (auto& w : workers) w.join();
  } else {
    for (auto& sh : shards_) {
      sh.service->runUntilIdle(max_device_cycles_per_shard);
    }
  }
}

std::size_t EnginePool::totalQueued() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) n += sh.service->totalQueued();
  return n;
}

std::uint64_t EnginePool::maxShardCycle() const {
  std::uint64_t m = 0;
  for (const auto& sh : shards_) m = std::max(m, sh.engine->cycle());
  return m;
}

ServiceStats EnginePool::aggregateStats() const {
  ServiceStats total;
  for (const auto& sh : shards_) total += sh.service->stats();
  return total;
}

}  // namespace aesifc::soc
