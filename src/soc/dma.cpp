#include "soc/dma.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "accel/key_store.h"

namespace aesifc::soc {

// ---------------------------------------------------------------------------
// HostMemory
// ---------------------------------------------------------------------------

HostMemory::HostMemory(std::size_t bytes)
    : mem_(bytes, 0),
      page_labels_((bytes + kPageBytes - 1) / kPageBytes,
                   lattice::Label::publicTrusted()) {}

void HostMemory::setPageLabel(std::size_t addr, std::size_t len,
                              const lattice::Label& l) {
  if (len == 0) return;  // empty span touches no page
  // Validate the whole range up front — the call either labels every page
  // the span touches or throws with no label changed. `len > size - addr`
  // also catches addr + len wrapping past SIZE_MAX.
  if (addr >= mem_.size() || len > mem_.size() - addr) {
    throw std::out_of_range("HostMemory::setPageLabel: span outside memory");
  }
  for (std::size_t p = addr / kPageBytes; p <= (addr + len - 1) / kPageBytes;
       ++p) {
    page_labels_[p] = l;
  }
}

const lattice::Label& HostMemory::pageLabel(std::size_t addr) const {
  return page_labels_.at(addr / kPageBytes);
}

void HostMemory::writeBytes(std::size_t addr,
                            const std::vector<std::uint8_t>& data) {
  for (std::size_t i = 0; i < data.size(); ++i) mem_.at(addr + i) = data[i];
}

std::vector<std::uint8_t> HostMemory::readBytes(std::size_t addr,
                                                std::size_t len) const {
  std::vector<std::uint8_t> out(len);
  for (std::size_t i = 0; i < len; ++i) out[i] = mem_.at(addr + i);
  return out;
}

std::uint32_t HostMemory::read32(std::size_t addr) const {
  std::uint32_t v = 0;
  for (unsigned i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(mem_.at(addr + i)) << (8 * i);
  return v;
}

void HostMemory::write32(std::size_t addr, std::uint32_t v) {
  for (unsigned i = 0; i < 4; ++i)
    mem_.at(addr + i) = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t HostMemory::read64(std::size_t addr) const {
  std::uint64_t v = 0;
  for (unsigned i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(mem_.at(addr + i)) << (8 * i);
  return v;
}

void HostMemory::write64(std::size_t addr, std::uint64_t v) {
  for (unsigned i = 0; i < 8; ++i)
    mem_.at(addr + i) = static_cast<std::uint8_t>(v >> (8 * i));
}

// ---------------------------------------------------------------------------
// DmaError
// ---------------------------------------------------------------------------

std::string toString(DmaError e) {
  switch (e) {
    case DmaError::None: return "ok";
    case DmaError::BadRange: return "bad-range";
    case DmaError::UnalignedLength: return "unaligned-length";
    case DmaError::OverlapDenied: return "overlap-denied";
    case DmaError::SrcPageDenied: return "src-page-denied";
    case DmaError::DstPageDenied: return "dst-page-denied";
    case DmaError::RingPageDenied: return "ring-page-denied";
    case DmaError::BadDescriptor: return "bad-descriptor";
    case DmaError::BadChecksum: return "bad-checksum";
    case DmaError::OobNextPointer: return "oob-next-pointer";
    case DmaError::ChainLoop: return "chain-loop";
    case DmaError::ChainTooLong: return "chain-too-long";
    case DmaError::TornOwnership: return "torn-ownership";
    case DmaError::StaleGeneration: return "stale-generation";
    case DmaError::CompletionOverflow: return "completion-overflow";
    case DmaError::RingStalled: return "ring-stalled";
    case DmaError::OutputSuppressed: return "output-suppressed";
    case DmaError::FaultAborted: return "fault-aborted";
    case DmaError::Rejected: return "rejected";
    case DmaError::Timeout: return "timeout";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Shared validation helpers
// ---------------------------------------------------------------------------

namespace {

std::uint16_t rd16(const HostMemory& m, std::size_t a) {
  return static_cast<std::uint16_t>(m.read8(a) |
                                    (static_cast<unsigned>(m.read8(a + 1))
                                     << 8));
}

void wr16(HostMemory& m, std::size_t a, std::uint16_t v) {
  m.write8(a, static_cast<std::uint8_t>(v & 0xff));
  m.write8(a + 1, static_cast<std::uint8_t>(v >> 8));
}

bool rangeOk(const HostMemory& mem, std::size_t addr, std::size_t len) {
  return len > 0 && addr < mem.size() && len <= mem.size() - addr;
}

// Exact in-place (src == dst) is well-defined under buffered writeback;
// a partial overlap would make the result depend on engine internals.
bool partialOverlap(std::size_t src, std::size_t dst, std::size_t len) {
  if (src == dst) return false;
  return src < dst + len && dst < src + len;
}

// Reading pages on the user's behalf: each page's secrets must be readable
// by the user (page conf flows to user conf).
bool srcPagesOk(const accel::AesAccelerator& acc, const HostMemory& mem,
                unsigned user, std::size_t addr, std::size_t len) {
  if (acc.mode() != accel::SecurityMode::Protected) return true;
  const lattice::Label& u = acc.principal(user).authority;
  for (std::size_t p = addr / kPageBytes; p <= (addr + len - 1) / kPageBytes;
       ++p) {
    if (!mem.pageLabel(p * kPageBytes).c.flowsTo(u.c)) return false;
  }
  return true;
}

// Writing pages on the user's behalf: the user's authority must flow to
// every page (no overwriting pages the user may not modify).
bool dstPagesOk(const accel::AesAccelerator& acc, const HostMemory& mem,
                unsigned user, std::size_t addr, std::size_t len) {
  if (acc.mode() != accel::SecurityMode::Protected) return true;
  const lattice::Label& u = acc.principal(user).authority;
  for (std::size_t p = addr / kPageBytes; p <= (addr + len - 1) / kPageBytes;
       ++p) {
    if (!u.flowsTo(mem.pageLabel(p * kPageBytes))) return false;
  }
  return true;
}

constexpr std::uint64_t kSyncWatchdogSlack = 4096;

}  // namespace

// ---------------------------------------------------------------------------
// Synchronous engine (legacy baseline)
// ---------------------------------------------------------------------------

DmaResult DmaEngine::run(const DmaDescriptor& d) {
  DmaResult r;
  auto refuse = [&](DmaError e) {
    r.error = e;
    return r;
  };
  if (d.user >= acc_.userCount() || d.key_slot >= accel::kRoundKeySlots) {
    return refuse(DmaError::BadDescriptor);
  }
  if (!rangeOk(mem_, d.src, d.len) || !rangeOk(mem_, d.dst, d.len)) {
    return refuse(DmaError::BadRange);
  }
  if (d.mode != DmaMode::CtrCrypt && d.len % 16 != 0) {
    return refuse(DmaError::UnalignedLength);
  }
  if (partialOverlap(d.src, d.dst, d.len)) {
    return refuse(DmaError::OverlapDenied);
  }
  if (!srcPagesOk(acc_, mem_, d.user, d.src, d.len)) {
    return refuse(DmaError::SrcPageDenied);
  }
  if (!dstPagesOk(acc_, mem_, d.user, d.dst, d.len)) {
    return refuse(DmaError::DstPageDenied);
  }

  const std::uint64_t start_cycle = acc_.cycle();
  const std::size_t nblocks = (d.len + 15) / 16;
  const bool decrypt = d.mode == DmaMode::EcbDecrypt;

  // Latch the block stream (data blocks for ECB, counter blocks for CTR)
  // and, for CTR, the plaintext the keystream is XORed with — every input
  // byte is read exactly once, before any output byte is written.
  std::vector<aes::Block> stream(nblocks);
  std::vector<std::uint8_t> xor_src;
  aes::Block ctr = d.ctr_iv;
  for (std::size_t i = 0; i < nblocks; ++i) {
    if (d.mode == DmaMode::CtrCrypt) {
      stream[i] = ctr;
      for (int b = 15; b >= 8; --b) {
        if (++ctr[static_cast<unsigned>(b)] != 0) break;
      }
    } else {
      const std::size_t n = std::min<std::size_t>(16, d.len - 16 * i);
      for (std::size_t b = 0; b < n; ++b)
        stream[i][b] = mem_.read8(d.src + 16 * i + b);
    }
  }
  if (d.mode == DmaMode::CtrCrypt) xor_src = mem_.readBytes(d.src, d.len);

  // Stream through the pipeline: submit up to one block per cycle, collect
  // completions as they appear; transient losses (fault aborts, overflow
  // drops) are resubmitted, bounded by the watchdog below.
  std::vector<aes::Block> out(nblocks);
  std::vector<char> got(nblocks, 0);
  std::deque<std::size_t> pending;
  for (std::size_t i = 0; i < nblocks; ++i) pending.push_back(i);
  std::unordered_map<std::uint64_t, std::size_t> inflight;
  std::size_t done = 0;
  bool suppressed = false;
  while (done < nblocks) {
    if (!pending.empty()) {
      const std::size_t idx = pending.front();
      accel::BlockRequest req;
      req.req_id = next_req_;
      req.user = d.user;
      req.key_slot = d.key_slot;
      req.decrypt = decrypt && d.mode != DmaMode::CtrCrypt;
      req.data = stream[idx];
      if (acc_.submit(req)) {
        inflight.emplace(next_req_, idx);
        ++next_req_;
        pending.pop_front();
      }
    }
    acc_.tick();
    while (auto resp = acc_.fetchOutput(d.user)) {
      auto it = inflight.find(resp->req_id);
      if (it == inflight.end()) continue;  // stale or foreign response
      const std::size_t idx = it->second;
      inflight.erase(it);
      if (resp->fault_aborted || resp->dropped) {
        pending.push_back(idx);  // transient: resubmit
        continue;
      }
      if (resp->suppressed) suppressed = true;
      if (!got[idx]) {
        got[idx] = 1;
        out[idx] = resp->data;
        ++done;
      }
    }
    if (acc_.cycle() - start_cycle > kSyncWatchdogSlack + 2 * nblocks) {
      r.error = DmaError::Timeout;
      r.cycles = acc_.cycle() - start_cycle;
      return r;
    }
  }
  if (suppressed) {
    r.error = DmaError::OutputSuppressed;
    r.cycles = acc_.cycle() - start_cycle;
    return r;
  }

  // Buffered writeback: nothing was written until every block succeeded.
  for (std::size_t i = 0; i < nblocks; ++i) {
    const std::size_t n = std::min<std::size_t>(16, d.len - 16 * i);
    for (std::size_t b = 0; b < n; ++b) {
      std::uint8_t v = out[i][b];
      if (d.mode == DmaMode::CtrCrypt) v ^= xor_src[16 * i + b];
      mem_.write8(d.dst + 16 * i + b, v);
    }
  }
  r.ok = true;
  r.error = DmaError::None;
  r.blocks = nblocks;
  r.cycles = acc_.cycle() - start_cycle;
  return r;
}

// ---------------------------------------------------------------------------
// Ring codec
// ---------------------------------------------------------------------------

std::uint32_t ringChecksum(const HostMemory& mem, std::size_t addr,
                           std::size_t len) {
  std::uint32_t h = 2166136261u;  // FNV-1a
  for (std::size_t i = 0; i < len; ++i) {
    h ^= mem.read8(addr + i);
    h *= 16777619u;
  }
  return h;
}

void writeRingDescriptor(HostMemory& mem, std::size_t addr,
                         const DmaDescriptor& d, std::uint64_t next,
                         std::uint16_t seq, std::uint16_t generation,
                         bool owned) {
  const std::uint32_t gen_word = static_cast<std::uint32_t>(generation) << 16;
  mem.write32(addr + 0, gen_word);  // not device-owned while we fill it in
  mem.write8(addr + 8, static_cast<std::uint8_t>(d.mode));
  mem.write8(addr + 9, 0);
  wr16(mem, addr + 10, static_cast<std::uint16_t>(d.user));
  wr16(mem, addr + 12, static_cast<std::uint16_t>(d.key_slot));
  wr16(mem, addr + 14, seq);
  mem.write64(addr + 16, d.src);
  mem.write64(addr + 24, d.dst);
  mem.write64(addr + 32, d.len);
  mem.write64(addr + 40, next);
  for (unsigned i = 0; i < 16; ++i) mem.write8(addr + 48 + i, d.ctr_iv[i]);
  mem.write32(addr + 4, ringChecksum(mem, addr + 8, kDescBytes - 8));
  // The release store: ownership flips only after every field (and the
  // checksum over them) is in place.
  mem.write32(addr + 0, gen_word | (owned ? kRingOwned : 0));
}

// ---------------------------------------------------------------------------
// DmaRingStats
// ---------------------------------------------------------------------------

std::string DmaRingStats::toJson() const {
  std::ostringstream os;
  os << "{\"doorbells\":" << doorbells << ",\"idle_polls\":" << idle_polls
     << ",\"descriptors_fetched\":" << descriptors_fetched
     << ",\"segments_fetched\":" << segments_fetched
     << ",\"completed_ok\":" << completed_ok << ",\"refused\":" << refused
     << ",\"blocks\":" << blocks << ",\"watchdog_fires\":" << watchdog_fires
     << ",\"recoveries\":" << recoveries
     << ",\"block_resubmits\":" << block_resubmits
     << ",\"torn_ownership\":" << torn_ownership
     << ",\"checksum_rejects\":" << checksum_rejects
     << ",\"stale_generation\":" << stale_generation
     << ",\"comp_stall_cycles\":" << comp_stall_cycles
     << ",\"comp_overflow_drops\":" << comp_overflow_drops
     << ",\"cross_label_writes\":" << cross_label_writes
     << ",\"ring_resets\":" << ring_resets << ",\"errors\":{";
  bool first = true;
  for (unsigned e = 0; e < kDmaErrors; ++e) {
    if (by_error[e] == 0) continue;
    if (!first) os << ",";
    first = false;
    os << "\"" << toString(static_cast<DmaError>(e)) << "\":" << by_error[e];
  }
  os << "}}";
  return os.str();
}

DmaRingStats& DmaRingStats::operator+=(const DmaRingStats& o) {
  doorbells += o.doorbells;
  idle_polls += o.idle_polls;
  descriptors_fetched += o.descriptors_fetched;
  segments_fetched += o.segments_fetched;
  completed_ok += o.completed_ok;
  refused += o.refused;
  blocks += o.blocks;
  watchdog_fires += o.watchdog_fires;
  recoveries += o.recoveries;
  block_resubmits += o.block_resubmits;
  torn_ownership += o.torn_ownership;
  checksum_rejects += o.checksum_rejects;
  stale_generation += o.stale_generation;
  comp_stall_cycles += o.comp_stall_cycles;
  comp_overflow_drops += o.comp_overflow_drops;
  cross_label_writes += o.cross_label_writes;
  ring_resets += o.ring_resets;
  for (unsigned e = 0; e < kDmaErrors; ++e) by_error[e] += o.by_error[e];
  return *this;
}

// ---------------------------------------------------------------------------
// DmaRingEngine
// ---------------------------------------------------------------------------

DmaRingEngine::DmaRingEngine(accel::AesAccelerator& acc, HostMemory& mem,
                             bool hardened)
    : acc_{acc}, mem_{mem}, hardened_{hardened} {}

unsigned DmaRingEngine::addChannel(const DmaRingConfig& cfg) {
  if (cfg.desc_slots == 0 || cfg.comp_slots == 0 ||
      cfg.desc_base + static_cast<std::size_t>(cfg.desc_slots) * kDescBytes >
          mem_.size() ||
      cfg.comp_base + static_cast<std::size_t>(cfg.comp_slots) * kCompBytes >
          mem_.size() ||
      cfg.chain_base + static_cast<std::size_t>(cfg.chain_slots) * kDescBytes >
          mem_.size()) {
    throw std::out_of_range("DmaRingEngine::addChannel: ring outside memory");
  }
  Channel ch;
  ch.cfg = cfg;
  chans_.push_back(std::move(ch));
  return static_cast<unsigned>(chans_.size() - 1);
}

void DmaRingEngine::doorbell(unsigned channel) {
  chans_.at(channel).doorbell = true;
  ++stats_.doorbells;
}

void DmaRingEngine::setCompletionHandler(unsigned channel,
                                         std::function<void()> fn) {
  chans_.at(channel).on_completion = std::move(fn);
}

void DmaRingEngine::ringReset(unsigned channel) {
  Channel& ch = chans_.at(channel);
  if (ch.chain && exec_owner_ == static_cast<int>(channel)) exec_owner_ = -1;
  ch.chain.reset();
  ch.active = false;
  ch.parked = false;
  ch.park_watchdog_logged = false;
  ++ch.generation;
  if (ch.generation == 0) ch.generation = 1;  // 0 is never a live generation
  ch.head = 0;
  ch.comp_tail = 0;
  ch.doorbell = false;
  ++stats_.ring_resets;
  acc_.noteHostEvent(accel::SecurityEventKind::DmaRingRecovery, 0,
                     "ring-reset channel " + std::to_string(channel) +
                         " generation " + std::to_string(ch.generation));
}

std::uint16_t DmaRingEngine::generation(unsigned channel) const {
  return chans_.at(channel).generation;
}

std::size_t DmaRingEngine::headSlot(unsigned channel) const {
  return chans_.at(channel).head;
}

bool DmaRingEngine::channelIdle(unsigned channel) const {
  return !chans_.at(channel).chain.has_value();
}

bool DmaRingEngine::channelStalled(unsigned channel) const {
  return chans_.at(channel).parked;
}

bool DmaRingEngine::idle() const {
  for (const Channel& ch : chans_) {
    if (ch.chain) return false;
  }
  return true;
}

bool DmaRingEngine::ringPageOk(const lattice::Label& u, std::size_t addr,
                               std::size_t len) const {
  if (acc_.mode() != accel::SecurityMode::Protected) return true;
  // The engine both reads descriptors and writes handshake/completion words
  // on the claimed user's behalf, so ring pages must flow BOTH ways: a
  // descriptor claiming a user who could not have written its page is a
  // forgery, and completions must not leak into pages the user can't read.
  for (std::size_t p = addr / kPageBytes; p <= (addr + len - 1) / kPageBytes;
       ++p) {
    const lattice::Label& pl = mem_.pageLabel(p * kPageBytes);
    if (!pl.c.flowsTo(u.c) || !u.flowsTo(pl)) return false;
  }
  return true;
}

void DmaRingEngine::noteViolation(const Chain& c, DmaError e) {
  acc_.noteHostEvent(accel::SecurityEventKind::DmaRingViolation, c.user,
                     toString(e) + ": desc 0x" +
                         std::to_string(c.head_addr) + " seq " +
                         std::to_string(c.seq));
}

DmaError DmaRingEngine::latchSegment(Chain& c, std::size_t addr, bool head) {
  Channel& ch = chans_[c.channel];
  if (addr + kDescBytes > mem_.size()) return DmaError::BadDescriptor;
  const std::uint32_t flags = mem_.read32(addr);
  if (head) {
    ++stats_.descriptors_fetched;
    c.head_flags = flags;
    if ((flags >> 16) != ch.generation) {
      ++stats_.stale_generation;
      return DmaError::StaleGeneration;
    }
    if (!(flags & kRingOwned)) {
      // Ownership vanished between the scan and the fetch.
      ++stats_.torn_ownership;
      return DmaError::TornOwnership;
    }
  } else {
    ++stats_.segments_fetched;
  }
  if (hardened_ &&
      mem_.read32(addr + 4) != ringChecksum(mem_, addr + 8, kDescBytes - 8)) {
    ++stats_.checksum_rejects;
    return DmaError::BadChecksum;
  }
  const std::uint8_t mode = mem_.read8(addr + 8);
  const std::uint8_t reserved = mem_.read8(addr + 9);
  const unsigned user = rd16(mem_, addr + 10);
  const unsigned slot = rd16(mem_, addr + 12);
  const std::uint16_t seq = rd16(mem_, addr + 14);
  if (mode > static_cast<std::uint8_t>(DmaMode::CtrCrypt) || reserved != 0 ||
      user >= acc_.userCount() || slot >= accel::kRoundKeySlots) {
    return DmaError::BadDescriptor;
  }
  if (head) {
    c.user = user;
    c.key_slot = slot;
    c.mode = static_cast<DmaMode>(mode);
    c.seq = seq;
    for (unsigned i = 0; i < 16; ++i) c.ctr_iv[i] = mem_.read8(addr + 48 + i);
  } else if (user != c.user || slot != c.key_slot ||
             static_cast<DmaMode>(mode) != c.mode) {
    return DmaError::BadDescriptor;  // continuations inherit the head's identity
  }
  const lattice::Label& u = acc_.principal(c.user).authority;
  if (!ringPageOk(u, addr, kDescBytes)) return DmaError::RingPageDenied;
  if (head && !ringPageOk(u, ch.cfg.comp_base,
                          static_cast<std::size_t>(ch.cfg.comp_slots) *
                              kCompBytes)) {
    return DmaError::RingPageDenied;
  }

  const std::size_t src = mem_.read64(addr + 16);
  const std::size_t dst = mem_.read64(addr + 24);
  const std::size_t len = mem_.read64(addr + 32);
  const std::uint64_t next = mem_.read64(addr + 40);
  if (!rangeOk(mem_, src, len) || !rangeOk(mem_, dst, len)) {
    return DmaError::BadRange;
  }
  // ECB segments must be block-aligned; CTR tolerates a partial block only
  // on the final segment (the keystream has no sub-block notion of "next
  // segment starts mid-block").
  const bool final_seg = next == 0;
  if (len % 16 != 0 && (c.mode != DmaMode::CtrCrypt || !final_seg)) {
    return DmaError::UnalignedLength;
  }
  if (partialOverlap(src, dst, len)) return DmaError::OverlapDenied;
  if (!srcPagesOk(acc_, mem_, c.user, src, len)) return DmaError::SrcPageDenied;
  if (!dstPagesOk(acc_, mem_, c.user, dst, len)) return DmaError::DstPageDenied;
  c.segs.push_back(Segment{addr, src, dst, len});

  if (next == 0) {
    c.next_fetch = 0;
    return DmaError::None;
  }
  const std::size_t arena_end =
      ch.cfg.chain_base + static_cast<std::size_t>(ch.cfg.chain_slots) *
                              kDescBytes;
  if (next < ch.cfg.chain_base || next >= arena_end ||
      (next - ch.cfg.chain_base) % kDescBytes != 0) {
    return DmaError::OobNextPointer;
  }
  for (const Segment& s : c.segs) {
    if (s.addr == next) return DmaError::ChainLoop;
  }
  if (c.segs.size() >= ch.cfg.max_chain) return DmaError::ChainTooLong;
  c.next_fetch = next;
  return DmaError::None;
}

DmaError DmaRingEngine::buildStream(Chain& c) {
  std::size_t nblocks = 0;
  for (const Segment& s : c.segs) nblocks += (s.len + 15) / 16;
  c.stream.reserve(nblocks);
  aes::Block ctr = c.ctr_iv;
  for (const Segment& s : c.segs) {
    const std::size_t segblocks = (s.len + 15) / 16;
    for (std::size_t i = 0; i < segblocks; ++i) {
      if (c.mode == DmaMode::CtrCrypt) {
        c.stream.push_back(ctr);
        for (int b = 15; b >= 8; --b) {
          if (++ctr[static_cast<unsigned>(b)] != 0) break;
        }
      } else {
        aes::Block blk{};
        const std::size_t n = std::min<std::size_t>(16, s.len - 16 * i);
        for (std::size_t b = 0; b < n; ++b)
          blk[b] = mem_.read8(s.src + 16 * i + b);
        c.stream.push_back(blk);
      }
    }
    if (c.mode == DmaMode::CtrCrypt) {
      const std::vector<std::uint8_t> seg_src = mem_.readBytes(s.src, s.len);
      c.xor_src.insert(c.xor_src.end(), seg_src.begin(), seg_src.end());
    }
  }
  c.out.resize(c.stream.size());
  c.done.assign(c.stream.size(), 0);
  return DmaError::None;
}

void DmaRingEngine::startChannel(unsigned idx) {
  Channel& ch = chans_[idx];
  ch.doorbell = false;
  Chain c;
  c.channel = idx;
  c.head_addr = descAddr(ch);
  c.next_fetch = c.head_addr;
  c.fetch_wait = std::max(1u, ch.cfg.fetch_cycles);
  c.start_cycle = acc_.cycle();
  c.progress_cycle = acc_.cycle();
  ch.chain = std::move(c);
  ch.active = true;
  exec_owner_ = static_cast<int>(idx);
}

void DmaRingEngine::stepFetch(unsigned idx) {
  Channel& ch = chans_[idx];
  Chain& c = *ch.chain;
  if (--c.fetch_wait > 0) return;
  const bool head = c.segs.empty();
  const DmaError e = latchSegment(c, c.next_fetch, head);
  if (e != DmaError::None) {
    c.verdict = e;
    c.phase = Chain::Phase::Final;
    finalize(idx);
    return;
  }
  if (c.next_fetch != 0) {
    c.fetch_wait = std::max(1u, ch.cfg.fetch_cycles);
    return;  // more segments to latch
  }
  buildStream(c);
  c.phase = Chain::Phase::Exec;
  c.progress_cycle = acc_.cycle();
}

void DmaRingEngine::resubmitChain(Chain& c) {
  c.inflight.clear();
  c.retry.clear();
  for (std::size_t i = 0; i < c.stream.size(); ++i) {
    if (!c.done[i]) c.retry.push_back(i);
  }
  c.submitted = c.stream.size();  // everything pending lives in retry now
  c.submit_refusals = 0;
}

void DmaRingEngine::stepExec(unsigned idx) {
  Channel& ch = chans_[idx];
  Chain& c = *ch.chain;
  const std::uint64_t now = acc_.cycle();
  const std::size_t n = c.stream.size();

  // Drain completions. Responses whose ids are not in the in-flight map are
  // strays from a quiesced attempt (or foreign traffic) — dropped.
  while (auto resp = acc_.fetchOutput(c.user)) {
    auto it = c.inflight.find(resp->req_id);
    if (it == c.inflight.end()) continue;
    const std::size_t bi = it->second;
    c.inflight.erase(it);
    if (resp->fault_aborted || resp->dropped) {
      if (++c.block_retries >
          ch.cfg.block_retry_cap + static_cast<unsigned>(n)) {
        c.verdict = DmaError::FaultAborted;
        c.phase = Chain::Phase::Final;
        finalize(idx);
        return;
      }
      c.retry.push_back(bi);
      ++stats_.block_resubmits;
      c.progress_cycle = now;
      continue;
    }
    if (resp->suppressed) c.suppressed = true;
    if (!c.done[bi]) {
      c.done[bi] = 1;
      c.out[bi] = resp->data;
      ++c.collected;
    }
    c.progress_cycle = now;
  }

  if (c.collected == n) {
    c.phase = Chain::Phase::Final;
    finalize(idx);
    return;
  }

  // Submit at most one block per cycle (retries first).
  std::optional<std::size_t> bi;
  if (!c.retry.empty()) {
    bi = c.retry.front();
  } else if (c.submitted < n) {
    bi = c.submitted;
  }
  if (bi) {
    accel::BlockRequest req;
    req.req_id = next_req_;
    req.user = c.user;
    req.key_slot = c.key_slot;
    req.decrypt = c.mode == DmaMode::EcbDecrypt;
    req.data = c.stream[*bi];
    if (acc_.submit(req)) {
      c.inflight.emplace(next_req_, *bi);
      ++next_req_;
      c.submit_refusals = 0;
      if (!c.retry.empty()) {
        c.retry.pop_front();
      } else {
        ++c.submitted;
      }
    } else if (++c.submit_refusals > 32) {
      // The submit port is refusing outright (zeroized slot, dead key) —
      // no amount of watchdog patience will change the answer.
      c.verdict = DmaError::Rejected;
      c.phase = Chain::Phase::Final;
      finalize(idx);
      return;
    }
  }

  // Watchdog: no progress for too long — quiesce, resync, resubmit.
  if (now - c.progress_cycle > ch.cfg.watchdog_cycles) {
    ++stats_.watchdog_fires;
    // Quiesce: abandon in-flight requests (their late responses will miss
    // the cleared map and be dropped — idempotent by construction).
    c.inflight.clear();
    // Resync: re-read the handshake word; a descriptor that was reclaimed
    // or re-generationed under us is torn, not stalled.
    const std::uint32_t flags = mem_.read32(c.head_addr);
    if (hardened_ &&
        (!(flags & kRingOwned) || (flags >> 16) != ch.generation)) {
      ++stats_.torn_ownership;
      c.verdict = DmaError::TornOwnership;
      c.phase = Chain::Phase::Final;
      finalize(idx);
      return;
    }
    if (++c.attempts > ch.cfg.max_resubmits) {
      c.verdict = DmaError::RingStalled;
      c.phase = Chain::Phase::Final;
      finalize(idx);
      return;
    }
    ++stats_.recoveries;
    acc_.noteHostEvent(accel::SecurityEventKind::DmaRingRecovery, c.user,
                       "watchdog resubmit " + std::to_string(c.attempts) +
                           "/" + std::to_string(ch.cfg.max_resubmits) +
                           " seq " + std::to_string(c.seq));
    resubmitChain(c);
    c.progress_cycle = now;
  }
}

void DmaRingEngine::writeBack(const Chain& c) {
  std::size_t bi = 0;       // global block index
  std::size_t xoff = 0;     // global CTR xor-source offset
  for (const Segment& s : c.segs) {
    std::size_t dst = s.dst;
    if (!hardened_) {
      // The conventional engine re-reads the destination pointer from ring
      // memory at write time — the TOCTOU the hardened engine closes by
      // using the fetch-time latch.
      const std::size_t dst_now = mem_.read64(s.addr + 24);
      if (rangeOk(mem_, dst_now, s.len)) {
        if (!dstPagesOk(acc_, mem_, c.user, dst_now, s.len)) {
          ++stats_.cross_label_writes;  // ...and writes anyway
        }
        dst = dst_now;
      }
    }
    const std::size_t segblocks = (s.len + 15) / 16;
    for (std::size_t i = 0; i < segblocks; ++i, ++bi) {
      const std::size_t nb = std::min<std::size_t>(16, s.len - 16 * i);
      for (std::size_t b = 0; b < nb; ++b) {
        std::uint8_t v = c.out[bi][b];
        if (c.mode == DmaMode::CtrCrypt) v ^= c.xor_src[xoff + 16 * i + b];
        mem_.write8(dst + 16 * i + b, v);
      }
    }
    xoff += s.len;
  }
}

void DmaRingEngine::finalize(unsigned idx) {
  Channel& ch = chans_[idx];
  Chain& c = *ch.chain;
  if (c.verdict == DmaError::None) {
    if (c.suppressed) {
      c.verdict = DmaError::OutputSuppressed;
    } else if (hardened_) {
      // Torn-ownership re-read: the handshake word must still say this
      // descriptor is ours before anything lands in host memory.
      const std::uint32_t flags = mem_.read32(c.head_addr);
      if (!(flags & kRingOwned) || (flags >> 16) != ch.generation) {
        ++stats_.torn_ownership;
        c.verdict = DmaError::TornOwnership;
      } else {
        // Point-of-use destination re-check (labels may have moved while
        // the transfer was in flight).
        for (const Segment& s : c.segs) {
          if (!dstPagesOk(acc_, mem_, c.user, s.dst, s.len)) {
            c.verdict = DmaError::DstPageDenied;
            break;
          }
        }
      }
    }
  }
  if (c.verdict == DmaError::None) {
    writeBack(c);
    ++stats_.completed_ok;
    stats_.blocks += c.stream.size();
  } else {
    ++stats_.refused;
    ++stats_.by_error[static_cast<unsigned>(c.verdict)];
    noteViolation(c, c.verdict);
  }

  if (c.verdict == DmaError::RingPageDenied) {
    // The ring pages themselves failed the label check — the engine will
    // not write a completion record into them. Hand the descriptor back so
    // the ring doesn't wedge; the verdict lives in the event log and stats.
    handback(ch, c);
    finishChain(idx);
    return;
  }
  if (tryWriteCompletion(idx)) {
    handback(ch, c);
    finishChain(idx);
  } else {
    // Completion ring full: park. The exec unit is freed; the record is
    // written once the host consumes a slot (hardened engines never
    // overwrite an unconsumed record).
    ch.parked = true;
    ch.active = false;
    ch.park_start = acc_.cycle();
    ch.park_watchdog_logged = false;
    if (exec_owner_ == static_cast<int>(idx)) exec_owner_ = -1;
  }
}

bool DmaRingEngine::tryWriteCompletion(unsigned idx) {
  Channel& ch = chans_[idx];
  const Chain& c = *ch.chain;
  const std::size_t addr = ch.cfg.comp_base + ch.comp_tail * kCompBytes;
  if (mem_.read32(addr) & kRingValid) return false;  // unconsumed record
  const std::uint64_t exec =
      acc_.cycle() >= c.start_cycle ? acc_.cycle() - c.start_cycle : 0;
  mem_.write32(addr + 8, static_cast<std::uint32_t>(c.verdict));
  wr16(mem_, addr + 12, static_cast<std::uint16_t>(c.user));
  wr16(mem_, addr + 14, c.seq);
  mem_.write64(addr + 16, c.head_addr);
  mem_.write32(addr + 24,
               c.verdict == DmaError::None
                   ? static_cast<std::uint32_t>(c.stream.size())
                   : 0);
  mem_.write32(addr + 28, static_cast<std::uint32_t>(
                              std::min<std::uint64_t>(exec, 0xffffffffu)));
  mem_.write32(addr + 4, ringChecksum(mem_, addr + 8, kCompBytes - 8));
  // VALID flips last — the completion's release store.
  mem_.write32(addr + 0,
               (static_cast<std::uint32_t>(ch.generation) << 16) | kRingValid);
  ch.comp_tail = (ch.comp_tail + 1) % ch.cfg.comp_slots;
  if (ch.on_completion) ch.on_completion();
  return true;
}

void DmaRingEngine::handback(Channel& ch, const Chain& c) {
  // Clear OWNED, preserve the generation — the host-side release cursor.
  mem_.write32(c.head_addr, static_cast<std::uint32_t>(ch.generation) << 16);
  ch.head = (ch.head + 1) % ch.cfg.desc_slots;
}

void DmaRingEngine::finishChain(unsigned idx) {
  Channel& ch = chans_[idx];
  ch.chain.reset();
  ch.active = false;
  ch.parked = false;
  if (exec_owner_ == static_cast<int>(idx)) exec_owner_ = -1;
}

void DmaRingEngine::onDeviceTick() {
  const std::uint64_t now = acc_.cycle();

  // Parked channels: retry the completion write (independent of the exec
  // unit — it is just a host-memory store).
  for (unsigned i = 0; i < chans_.size(); ++i) {
    Channel& ch = chans_[i];
    if (!ch.parked) continue;
    ++stats_.comp_stall_cycles;
    if (tryWriteCompletion(i)) {
      handback(ch, *ch.chain);
      finishChain(i);
      continue;
    }
    if (now - ch.park_start > ch.cfg.watchdog_cycles) {
      if (hardened_) {
        // Backpressure, not data loss: log once and keep waiting. The host
        // owns the VALID bit; overwriting it would destroy a completion the
        // host has not seen.
        if (!ch.park_watchdog_logged) {
          ch.park_watchdog_logged = true;
          ++stats_.by_error[static_cast<unsigned>(
              DmaError::CompletionOverflow)];
          acc_.noteHostEvent(
              accel::SecurityEventKind::DmaRingViolation, ch.chain->user,
              "completion-overflow: ring full, channel " + std::to_string(i) +
                  " parked (backpressure)");
        }
      } else {
        // Conventional engine: give up waiting and overwrite the oldest
        // unconsumed record — the data loss the hardened park avoids.
        const std::size_t addr =
            ch.cfg.comp_base + ch.comp_tail * kCompBytes;
        mem_.write32(addr, 0);  // destroy the unconsumed record
        ++stats_.comp_overflow_drops;
        if (tryWriteCompletion(i)) {
          handback(ch, *ch.chain);
          finishChain(i);
        }
      }
    }
  }

  // Active chain owns the fetch/exec unit.
  if (exec_owner_ >= 0) {
    const unsigned idx = static_cast<unsigned>(exec_owner_);
    Channel& ch = chans_[idx];
    if (ch.chain) {
      switch (ch.chain->phase) {
        case Chain::Phase::Fetch: stepFetch(idx); break;
        case Chain::Phase::Exec: stepExec(idx); break;
        case Chain::Phase::Final: finalize(idx); break;
      }
    } else {
      exec_owner_ = -1;
    }
    return;
  }

  // Idle exec unit: scan for a doorbell or a due poll, round-robin.
  const unsigned nch = static_cast<unsigned>(chans_.size());
  for (unsigned k = 0; k < nch; ++k) {
    const unsigned i = (rr_next_ + k) % nch;
    Channel& ch = chans_[i];
    if (ch.chain) continue;  // parked (or mid-handoff)
    if (!ch.doorbell && now < ch.next_poll_cycle) continue;
    ch.next_poll_cycle = now + std::max(1u, ch.cfg.poll_interval);
    const std::uint32_t flags = mem_.read32(descAddr(ch));
    if (flags & kRingOwned) {
      startChannel(i);
      rr_next_ = (i + 1) % nch;
      return;
    }
    ch.doorbell = false;
    ++stats_.idle_polls;
  }
}

void DmaRingEngine::tick() {
  onDeviceTick();
  acc_.tick();
}

// ---------------------------------------------------------------------------
// DmaRingDriver
// ---------------------------------------------------------------------------

DmaRingDriver::DmaRingDriver(DmaRingEngine& eng, HostMemory& mem,
                             unsigned channel, const DmaRingConfig& cfg)
    : eng_{eng}, mem_{mem}, channel_{channel}, cfg_{cfg},
      arena_busy_(cfg.chain_slots, 0) {
  eng_.setCompletionHandler(channel_, [this] {
    if (auto_poll_) poll();
  });
}

std::optional<std::uint16_t> DmaRingDriver::submit(const DmaDescriptor& d) {
  return submitChain({d});
}

std::optional<std::uint16_t> DmaRingDriver::submitChain(
    const std::vector<DmaDescriptor>& segs) {
  if (segs.empty()) return std::nullopt;
  const std::size_t head_addr = cfg_.desc_base + next_slot_ * kDescBytes;
  if (mem_.read32(head_addr) & kRingOwned) return std::nullopt;  // ring full

  // Claim chain-arena slots for the continuations.
  const std::size_t need = segs.size() - 1;
  std::vector<unsigned> slots;
  if (need > 0) {
    if (cfg_.chain_slots == 0) return std::nullopt;
    for (unsigned k = 0; k < cfg_.chain_slots && slots.size() < need; ++k) {
      const unsigned s =
          static_cast<unsigned>((next_chain_slot_ + k) % cfg_.chain_slots);
      if (!arena_busy_[s]) slots.push_back(s);
    }
    if (slots.size() < need) return std::nullopt;  // arena full
  }

  const std::uint16_t gen = eng_.generation(channel_);
  const std::uint16_t seq = next_seq_++;
  if (next_seq_ == 0) next_seq_ = 1;

  // Write continuations back to front so every next-pointer is known, then
  // publish the head last (its OWNED flip is the release store).
  std::uint64_t next = 0;
  for (std::size_t i = segs.size(); i-- > 1;) {
    const unsigned s = slots[i - 1];
    const std::size_t addr =
        cfg_.chain_base + static_cast<std::size_t>(s) * kDescBytes;
    DmaDescriptor seg = segs[i];
    seg.user = segs[0].user;      // continuations inherit the head identity
    seg.key_slot = segs[0].key_slot;
    seg.mode = segs[0].mode;
    writeRingDescriptor(mem_, addr, seg, next, seq, gen, /*owned=*/false);
    next = addr;
    arena_busy_[s] = 1;
  }
  writeRingDescriptor(mem_, head_addr, segs[0], next, seq, gen,
                      /*owned=*/true);
  eng_.doorbell(channel_);

  futures_[seq] = std::nullopt;
  if (!slots.empty()) {
    next_chain_slot_ = (slots.back() + 1) % cfg_.chain_slots;
    chain_slots_of_[seq] = std::move(slots);
  }
  ++outstanding_;
  next_slot_ = (next_slot_ + 1) % cfg_.desc_slots;
  return seq;
}

void DmaRingDriver::poll() {
  for (;;) {
    const std::size_t addr = cfg_.comp_base + comp_head_ * kCompBytes;
    const std::uint32_t flags = mem_.read32(addr);
    if (!(flags & kRingValid)) break;
    const std::uint16_t gen = static_cast<std::uint16_t>(flags >> 16);
    const bool fresh = gen == eng_.generation(channel_);
    bool ok = fresh;
    if (ok && mem_.read32(addr + 4) !=
                  ringChecksum(mem_, addr + 8, kCompBytes - 8)) {
      ++corrupt_completions_;
      ok = false;
    }
    const std::uint32_t status = ok ? mem_.read32(addr + 8) : 0;
    if (ok && status >= kDmaErrors) {
      ++corrupt_completions_;
      ok = false;
    }
    if (ok) {
      DmaCompletion comp;
      comp.status = static_cast<DmaError>(status);
      comp.user = rd16(mem_, addr + 12);
      comp.seq = rd16(mem_, addr + 14);
      comp.desc_addr = mem_.read64(addr + 16);
      comp.blocks = mem_.read32(addr + 24);
      comp.exec_cycles = mem_.read32(addr + 28);
      auto it = futures_.find(comp.seq);
      if (it == futures_.end() || it->second.has_value()) {
        ++duplicate_completions_;  // replay or forgery: exactly-once holds
      } else {
        it->second = comp;
        if (outstanding_ > 0) --outstanding_;
        auto cs = chain_slots_of_.find(comp.seq);
        if (cs != chain_slots_of_.end()) {
          for (unsigned s : cs->second) arena_busy_[s] = 0;
          chain_slots_of_.erase(cs);
        }
      }
    }
    // Consume the slot: clear VALID, keep the generation readable.
    mem_.write32(addr, static_cast<std::uint32_t>(gen) << 16);
    comp_head_ = (comp_head_ + 1) % cfg_.comp_slots;
  }
}

bool DmaRingDriver::done(std::uint16_t seq) const {
  auto it = futures_.find(seq);
  return it != futures_.end() && it->second.has_value();
}

const DmaCompletion* DmaRingDriver::result(std::uint16_t seq) const {
  auto it = futures_.find(seq);
  if (it == futures_.end() || !it->second.has_value()) return nullptr;
  return &*it->second;
}

const DmaCompletion* DmaRingDriver::wait(std::uint16_t seq,
                                         std::uint64_t max_cycles) {
  for (std::uint64_t i = 0; i < max_cycles && !done(seq); ++i) eng_.tick();
  poll();
  return result(seq);
}

void DmaRingDriver::forgetResolved() {
  for (auto it = futures_.begin(); it != futures_.end();) {
    if (it->second.has_value()) {
      it = futures_.erase(it);
    } else {
      ++it;
    }
  }
}

void DmaRingDriver::resync() {
  for (auto& [seq, fut] : futures_) {
    if (!fut.has_value()) {
      DmaCompletion comp;
      comp.status = DmaError::RingStalled;  // the reset abandoned it
      comp.seq = seq;
      fut = comp;
    }
  }
  outstanding_ = 0;
  next_slot_ = 0;
  next_chain_slot_ = 0;
  comp_head_ = 0;
  std::fill(arena_busy_.begin(), arena_busy_.end(), 0);
  chain_slots_of_.clear();
}

}  // namespace aesifc::soc
