#include "soc/dma.h"

#include <cstring>

namespace aesifc::soc {

HostMemory::HostMemory(std::size_t bytes)
    : mem_(bytes, 0),
      page_labels_((bytes + kPageBytes - 1) / kPageBytes,
                   lattice::Label::publicTrusted()) {}

void HostMemory::setPageLabel(std::size_t addr, std::size_t len,
                              const lattice::Label& l) {
  for (std::size_t p = addr / kPageBytes; p <= (addr + len - 1) / kPageBytes;
       ++p) {
    page_labels_.at(p) = l;
  }
}

const lattice::Label& HostMemory::pageLabel(std::size_t addr) const {
  return page_labels_.at(addr / kPageBytes);
}

void HostMemory::writeBytes(std::size_t addr,
                            const std::vector<std::uint8_t>& data) {
  for (std::size_t i = 0; i < data.size(); ++i) mem_.at(addr + i) = data[i];
}

std::vector<std::uint8_t> HostMemory::readBytes(std::size_t addr,
                                                std::size_t len) const {
  std::vector<std::uint8_t> out(len);
  for (std::size_t i = 0; i < len; ++i) out[i] = mem_.at(addr + i);
  return out;
}

bool DmaEngine::checkPages(const DmaDescriptor& d, DmaResult& r) const {
  if (acc_.mode() != accel::SecurityMode::Protected) return true;
  const lattice::Label& u = acc_.principal(d.user).authority;
  for (std::size_t a = d.src; a < d.src + d.len; a += kPageBytes) {
    // Reading on the user's behalf: the page's secrets must be readable
    // by the user.
    if (!mem_.pageLabel(a).c.flowsTo(u.c)) {
      r.error = "src-page-denied";
      return false;
    }
  }
  for (std::size_t a = d.dst; a < d.dst + d.len; a += kPageBytes) {
    // Writing on the user's behalf: the user's authority must flow to the
    // page (no overwriting pages the user may not modify).
    if (!u.flowsTo(mem_.pageLabel(a))) {
      r.error = "dst-page-denied";
      return false;
    }
  }
  return true;
}

DmaResult DmaEngine::run(const DmaDescriptor& d) {
  DmaResult r;
  if (d.len == 0 || d.src + d.len > mem_.size() ||
      d.dst + d.len > mem_.size()) {
    r.error = "bad-range";
    return r;
  }
  if (d.mode != DmaMode::CtrCrypt && d.len % 16 != 0) {
    r.error = "unaligned-length";
    return r;
  }
  if (!checkPages(d, r)) return r;

  const std::uint64_t start_cycle = acc_.cycle();
  const std::size_t nblocks = (d.len + 15) / 16;
  const bool decrypt = d.mode == DmaMode::EcbDecrypt;

  // Build the block stream: data blocks for ECB, counter blocks for CTR.
  std::vector<aes::Block> stream(nblocks);
  aes::Block ctr = d.ctr_iv;
  for (std::size_t i = 0; i < nblocks; ++i) {
    if (d.mode == DmaMode::CtrCrypt) {
      stream[i] = ctr;
      for (int b = 15; b >= 8; --b) {
        if (++ctr[static_cast<unsigned>(b)] != 0) break;
      }
    } else {
      const std::size_t n = std::min<std::size_t>(16, d.len - 16 * i);
      for (std::size_t b = 0; b < n; ++b)
        stream[i][b] = mem_.read8(d.src + 16 * i + b);
    }
  }

  // Stream through the pipeline: submit up to one block per cycle, collect
  // completions as they appear.
  std::size_t submitted = 0, done = 0;
  std::vector<aes::Block> out(nblocks);
  const std::uint64_t base_id = next_req_;
  bool suppressed = false;
  while (done < nblocks) {
    if (submitted < nblocks) {
      accel::BlockRequest req;
      req.req_id = next_req_;
      req.user = d.user;
      req.key_slot = d.key_slot;
      req.decrypt = decrypt && d.mode != DmaMode::CtrCrypt;
      req.data = stream[submitted];
      if (acc_.submit(req)) {
        ++next_req_;
        ++submitted;
      }
    }
    acc_.tick();
    while (auto resp = acc_.fetchOutput(d.user)) {
      if (resp->req_id < base_id) continue;
      if (resp->suppressed) suppressed = true;
      out[resp->req_id - base_id] = resp->data;
      ++done;
    }
    if (acc_.cycle() - start_cycle > 4096 + 2 * nblocks) {
      r.error = "timeout";
      r.cycles = acc_.cycle() - start_cycle;
      return r;
    }
  }
  if (suppressed) {
    r.error = "output-suppressed";
    r.cycles = acc_.cycle() - start_cycle;
    return r;
  }

  // Write back.
  for (std::size_t i = 0; i < nblocks; ++i) {
    const std::size_t n = std::min<std::size_t>(16, d.len - 16 * i);
    for (std::size_t b = 0; b < n; ++b) {
      std::uint8_t v = out[i][b];
      if (d.mode == DmaMode::CtrCrypt) v ^= mem_.read8(d.src + 16 * i + b);
      mem_.write8(d.dst + 16 * i + b, v);
    }
  }
  r.ok = true;
  r.blocks = nblocks;
  r.cycles = acc_.cycle() - start_cycle;
  return r;
}

}  // namespace aesifc::soc
