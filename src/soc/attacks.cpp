#include "soc/attacks.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "accel/accelerator.h"
#include "aes/cipher.h"
#include "aes/key_schedule.h"
#include "aes/modes.h"
#include "aes/sbox.h"
#include "common/rng.h"
#include "soc/dma.h"
#include "soc/fault_injector.h"

namespace aesifc::soc {

using accel::AcceleratorConfig;
using accel::AesAccelerator;
using accel::BlockRequest;
using accel::BlockResponse;
using accel::SecurityEventKind;
using accel::SecurityMode;

namespace {

struct Bench {
  AesAccelerator acc;
  unsigned sup, alice, eve;
  std::vector<std::uint8_t> master_key, alice_key, eve_key;

  explicit Bench(SecurityMode mode, unsigned out_buffer_depth = 64)
      : acc{AcceleratorConfig{mode, 10, out_buffer_depth, false}} {
    sup = acc.addUser(lattice::Principal::supervisor());
    alice = acc.addUser(lattice::Principal::user("alice", 1));
    eve = acc.addUser(lattice::Principal::user("eve", 2));

    Rng rng{0xa11cee4e};
    master_key = randomKey(rng);
    alice_key = randomKey(rng);
    eve_key = randomKey(rng);

    // Cell map: Eve 0-1, Alice 2-3 (adjacent to Eve: the Fig. 5 overflow
    // target), supervisor 6-7.
    loadKey128(sup, 0, 6, master_key, lattice::Conf::top());
    loadKey128(alice, 1, 2, alice_key, acc.principal(alice).authority.c);
    loadKey128(eve, 2, 0, eve_key, acc.principal(eve).authority.c);
  }

  static std::vector<std::uint8_t> randomKey(Rng& rng) {
    std::vector<std::uint8_t> k(16);
    for (auto& b : k) b = static_cast<std::uint8_t>(rng.next());
    return k;
  }

  void loadKey128(unsigned user, unsigned slot, unsigned base,
                  const std::vector<std::uint8_t>& key, lattice::Conf conf) {
    acc.configureKeyCells(user, base, 2);
    for (unsigned c = 0; c < 2; ++c) {
      std::uint64_t w = 0;
      for (unsigned b = 0; b < 8; ++b)
        w |= static_cast<std::uint64_t>(key[8 * c + b]) << (8 * b);
      if (!acc.writeKeyCell(user, base + c, w))
        throw std::runtime_error("attack bench: legitimate key write refused");
    }
    if (!acc.loadKey(user, slot, base, aes::KeySize::Aes128, conf))
      throw std::runtime_error("attack bench: legitimate key load refused");
  }

  // Submit one block for `user` and run until its response arrives.
  BlockResponse crypt(unsigned user, unsigned slot, const aes::Block& data,
                      bool decrypt) {
    static std::uint64_t next_id = 1000000;
    BlockRequest req;
    req.req_id = ++next_id;
    req.user = user;
    req.key_slot = slot;
    req.decrypt = decrypt;
    req.data = data;
    if (!acc.submit(req))
      throw std::runtime_error("attack bench: submit refused");
    for (unsigned i = 0; i < 500; ++i) {
      acc.tick();
      if (auto out = acc.fetchOutput(user)) {
        if (out->req_id == req.req_id) return *out;
      }
    }
    throw std::runtime_error("attack bench: response never arrived");
  }
};

aes::Block blockOf(std::uint8_t fill) {
  aes::Block b;
  for (unsigned i = 0; i < 16; ++i)
    b[i] = static_cast<std::uint8_t>(fill + i * 7);
  return b;
}

}  // namespace

// --- Timing covert channel ----------------------------------------------------

TimingChannelResult runTimingChannelAttack(SecurityMode mode,
                                           const TimingChannelParams& p) {
  Bench bench{mode, /*out_buffer_depth=*/256};
  auto& acc = bench.acc;
  Rng rng{p.seed};

  std::vector<int> secret(p.secret_bits);
  for (auto& b : secret) b = rng.chance(0.5) ? 1 : 0;

  std::uint64_t next_id = 1;
  std::vector<std::uint64_t> eve_latencies;
  std::vector<int> eve_window_completions(p.secret_bits, 0);

  auto submitFor = [&](unsigned user, unsigned slot) {
    if (acc.pendingInputs(user) >= 2) return;
    BlockRequest req;
    req.req_id = next_id++;
    req.user = user;
    req.key_slot = slot;
    req.data = blockOf(static_cast<std::uint8_t>(next_id));
    acc.submit(req);
  };

  // Warm the pipeline before the first window.
  for (unsigned i = 0; i < 3 * acc.pipeline().depth(); ++i) {
    submitFor(bench.alice, 1);
    submitFor(bench.eve, 2);
    acc.tick();
    while (acc.fetchOutput(bench.alice)) {
    }
    while (acc.fetchOutput(bench.eve)) {
    }
  }

  const std::uint64_t t0 = acc.cycle();
  const std::uint64_t total_cycles =
      static_cast<std::uint64_t>(p.secret_bits) * p.window;

  while (acc.cycle() - t0 < total_cycles) {
    const std::uint64_t rel = acc.cycle() - t0;
    const unsigned window = static_cast<unsigned>(rel / p.window);
    // Alice signals bit=1 by withholding her receiver (stall requests).
    acc.setReceiverReady(bench.alice, secret[window] == 0);
    submitFor(bench.alice, 1);
    submitFor(bench.eve, 2);
    acc.tick();
    while (acc.fetchOutput(bench.alice)) {
    }
    while (auto out = acc.fetchOutput(bench.eve)) {
      const std::uint64_t done_rel = out->complete_cycle - t0;
      if (done_rel < total_cycles) {
        ++eve_window_completions[done_rel / p.window];
        eve_latencies.push_back(out->complete_cycle - out->accept_cycle);
      }
    }
  }
  acc.setReceiverReady(bench.alice, true);

  // Eve decodes: fewer completions in a window => Alice was stalling (bit 1).
  int lo = eve_window_completions[0], hi = eve_window_completions[0];
  for (int c : eve_window_completions) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  const double threshold = (lo + hi) / 2.0;
  std::vector<int> decoded(p.secret_bits);
  unsigned correct = 0;
  for (unsigned i = 0; i < p.secret_bits; ++i) {
    decoded[i] =
        (lo == hi) ? 0 : (eve_window_completions[i] < threshold ? 1 : 0);
    if (decoded[i] == secret[i]) ++correct;
  }

  TimingChannelResult r;
  r.mi_bits = mutualInformationBits(secret, decoded);
  r.accuracy = static_cast<double>(correct) / p.secret_bits;
  r.eve_latency = latencyStats(eve_latencies);
  r.stalled_cycles = acc.stats().stalled_cycles;
  r.denied_stalls = acc.stats().denied_stalls;
  return r;
}

AcceptanceDelayResult runAcceptanceDelayAttack(bool meet_includes_inputs,
                                               const TimingChannelParams& p) {
  AcceleratorConfig cfg;
  cfg.mode = SecurityMode::Protected;
  cfg.out_buffer_depth = 256;
  cfg.meet_includes_inputs = meet_includes_inputs;

  AesAccelerator acc{cfg};
  const unsigned sup = acc.addUser(lattice::Principal::supervisor());
  const unsigned alice = acc.addUser(lattice::Principal::user("alice", 1));
  const unsigned eve = acc.addUser(lattice::Principal::user("eve", 2));
  (void)sup;

  Rng rng{p.seed};
  std::vector<std::uint8_t> alice_key(16), eve_key(16);
  for (auto& b : alice_key) b = static_cast<std::uint8_t>(rng.next());
  for (auto& b : eve_key) b = static_cast<std::uint8_t>(rng.next());

  auto load = [&](unsigned user, unsigned slot, unsigned base,
                  const std::vector<std::uint8_t>& key) {
    acc.configureKeyCells(user, base, 2);
    for (unsigned c = 0; c < 2; ++c) {
      std::uint64_t w = 0;
      for (unsigned b = 0; b < 8; ++b)
        w |= static_cast<std::uint64_t>(key[8 * c + b]) << (8 * b);
      if (!acc.writeKeyCell(user, base + c, w))
        throw std::runtime_error("acceptance bench: key write refused");
    }
    if (!acc.loadKey(user, slot, base, aes::KeySize::Aes128,
                     acc.principal(user).authority.c))
      throw std::runtime_error("acceptance bench: key load refused");
  };
  load(alice, 1, 2, alice_key);
  load(eve, 2, 0, eve_key);

  std::vector<int> secret(p.secret_bits);
  for (auto& b : secret) b = rng.chance(0.5) ? 1 : 0;

  std::uint64_t next_id = 1;
  auto aliceSubmit = [&] {
    if (acc.pendingInputs(alice) >= 2) return;
    BlockRequest req;
    req.req_id = next_id++;
    req.user = alice;
    req.key_slot = 1;
    req.data = blockOf(static_cast<std::uint8_t>(next_id));
    acc.submit(req);
  };

  // Warm up with Alice-only traffic.
  for (unsigned i = 0; i < 3 * acc.pipeline().depth(); ++i) {
    aliceSubmit();
    acc.tick();
    while (acc.fetchOutput(alice)) {
    }
  }

  const std::uint64_t t0 = acc.cycle();
  // A probe that never returns within the experiment is the strongest stall
  // evidence of all; score it as a very long latency.
  const double kTrapped = 3.0 * p.window;
  std::vector<double> window_latency(p.secret_bits, kTrapped);
  std::vector<std::uint64_t> probe_latencies;
  std::uint64_t probe_id = 0;
  std::uint64_t probe_submit_cycle = 0;
  int probe_window = -1;

  while (acc.cycle() - t0 < static_cast<std::uint64_t>(p.secret_bits) * p.window) {
    const unsigned window =
        static_cast<unsigned>((acc.cycle() - t0) / p.window);
    acc.setReceiverReady(alice, secret[window] == 0);
    aliceSubmit();
    // One Eve probe at the start of each window.
    if (static_cast<int>(window) != probe_window) {
      probe_window = static_cast<int>(window);
      BlockRequest req;
      req.req_id = probe_id = next_id++;
      req.user = eve;
      req.key_slot = 2;
      req.data = blockOf(0x55);
      acc.submit(req);
      probe_submit_cycle = acc.cycle();
    }
    acc.tick();
    while (acc.fetchOutput(alice)) {
    }
    while (auto out = acc.fetchOutput(eve)) {
      if (out->req_id == probe_id && probe_window >= 0 &&
          probe_window < static_cast<int>(p.secret_bits)) {
        const std::uint64_t lat = out->complete_cycle - probe_submit_cycle;
        window_latency[static_cast<unsigned>(probe_window)] =
            static_cast<double>(lat);
        probe_latencies.push_back(lat);
      }
    }
  }
  acc.setReceiverReady(alice, true);

  double lo = window_latency[0], hi = window_latency[0];
  for (double v : window_latency) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double threshold = (lo + hi) / 2.0;
  std::vector<int> decoded(p.secret_bits);
  unsigned correct = 0;
  for (unsigned i = 0; i < p.secret_bits; ++i) {
    decoded[i] = (lo == hi) ? 0 : (window_latency[i] > threshold ? 1 : 0);
    if (decoded[i] == secret[i]) ++correct;
  }
  // The attacker calibrates polarity, so score the better of the two.
  correct = std::max(correct, p.secret_bits - correct);

  AcceptanceDelayResult r;
  r.mi_bits = mutualInformationBits(secret, decoded);
  r.accuracy = static_cast<double>(correct) / p.secret_bits;
  r.probe_latency = latencyStats(probe_latencies);
  r.stalled_cycles = acc.stats().stalled_cycles;
  r.denied_stalls = acc.stats().denied_stalls;
  return r;
}

// --- Scratchpad overflow --------------------------------------------------------

OverflowResult runScratchpadOverflow(SecurityMode mode) {
  Bench bench{mode};
  auto& acc = bench.acc;
  OverflowResult r;

  // Sanity: Alice's key works before the attack.
  const aes::Block pt = blockOf(0x20);
  const aes::Block golden =
      aes::encryptBlock(pt, bench.alice_key.data(), aes::KeySize::Aes128);
  if (bench.crypt(bench.alice, 1, pt, false).data != golden)
    throw std::runtime_error("overflow bench: pre-attack encryption wrong");

  // Eve claims to store a 192-bit key in her 128-bit allocation: cells 0,1
  // are hers, cell 2 belongs to Alice (Fig. 5).
  acc.writeKeyCell(bench.eve, 0, 0x1111111111111111ULL);
  acc.writeKeyCell(bench.eve, 1, 0x2222222222222222ULL);
  r.overflow_write_succeeded =
      acc.writeKeyCell(bench.eve, 2, 0xdeadbeefdeadbeefULL);

  // Alice refreshes her key from the scratchpad (periodic re-expansion) and
  // encrypts again.
  if (!acc.loadKey(bench.alice, 1, 2, aes::KeySize::Aes128,
                   acc.principal(bench.alice).authority.c))
    throw std::runtime_error("overflow bench: alice reload refused");
  const auto after = bench.crypt(bench.alice, 1, pt, false);
  r.alice_key_corrupted = (after.data != golden) || after.suppressed;
  r.blocked_events = acc.eventCount(SecurityEventKind::ScratchpadWriteBlocked);
  return r;
}

// --- Debug peripheral ------------------------------------------------------------

DebugPortResult runDebugPortAttack(SecurityMode mode) {
  Bench bench{mode};
  auto& acc = bench.acc;
  DebugPortResult r;

  // Step 1: Eve tries to enable the debug port herself (config tamper).
  acc.writeConfig(bench.eve, "debug_enable", 1);
  r.eve_enabled_debug = acc.readConfig("debug_enable") == 1;
  if (!r.eve_enabled_debug) {
    // In the protected design Eve's write is blocked; model the rogue/test
    // scenario where the port was legitimately enabled by the supervisor.
    acc.writeConfig(bench.sup, "debug_enable", 1);
  }

  // Step 2: Alice encrypts a plaintext Eve knows (e.g. a protocol header).
  const aes::Block pt = blockOf(0x41);
  BlockRequest req;
  req.req_id = 7777;
  req.user = bench.alice;
  req.key_slot = 1;
  req.data = pt;
  acc.submit(req);
  acc.tick();  // the block now sits in stage 0: SubBytes(pt ^ rk0)

  // Step 3: Eve reads stage 0 through the debug port and inverts the
  // round-0 micro-op to recover Alice's key.
  if (auto leaked = acc.debugReadStage(bench.eve, 0)) {
    std::vector<std::uint8_t> recovered(16);
    for (unsigned i = 0; i < 16; ++i) {
      recovered[i] =
          static_cast<std::uint8_t>(aes::invSbox((*leaked)[i]) ^ pt[i]);
    }
    r.key_recovered = recovered == bench.alice_key;
  }

  // Step 4: a fully cleared principal may still use the debug port.
  r.supervisor_read_ok = acc.debugReadStage(bench.sup, 0).has_value();

  r.blocked_events = acc.eventCount(SecurityEventKind::DebugReadBlocked) +
                     acc.eventCount(SecurityEventKind::ConfigWriteBlocked);
  return r;
}

// --- Key misuse -------------------------------------------------------------------

KeyMisuseResult runKeyMisuseAttack(SecurityMode mode) {
  Bench bench{mode};
  KeyMisuseResult r;

  // Normal operation: Alice with her own key.
  const aes::Block pt_a = blockOf(0x10);
  const aes::Block ct_a =
      aes::encryptBlock(pt_a, bench.alice_key.data(), aes::KeySize::Aes128);
  const auto alice_resp = bench.crypt(bench.alice, 1, pt_a, false);
  r.own_key_ok = !alice_resp.suppressed && alice_resp.data == ct_a;

  // Eve encrypts with the master key (slot 0).
  const aes::Block pt_e = blockOf(0x30);
  const aes::Block ct_master =
      aes::encryptBlock(pt_e, bench.master_key.data(), aes::KeySize::Aes128);
  const auto eve_master = bench.crypt(bench.eve, 0, pt_e, false);
  r.master_key_output_released =
      !eve_master.suppressed && eve_master.data == ct_master;

  // Eve decrypts Alice's ciphertext with Alice's key slot.
  const auto eve_alice = bench.crypt(bench.eve, 1, ct_a, true);
  r.alice_key_output_released = !eve_alice.suppressed && eve_alice.data == pt_a;

  // The supervisor is trusted enough to declassify master-key output.
  const auto sup_master = bench.crypt(bench.sup, 0, pt_e, false);
  r.supervisor_master_ok = !sup_master.suppressed && sup_master.data == ct_master;

  r.declass_rejected =
      bench.acc.eventCount(SecurityEventKind::DeclassifyRejected);
  return r;
}

// --- DMA theft -------------------------------------------------------------------

DmaTheftResult runDmaTheftAttack(SecurityMode mode) {
  Bench bench{mode};
  auto& acc = bench.acc;
  DmaTheftResult r;

  HostMemory mem{64 * 1024};
  DmaEngine dma{acc, mem};

  // The OS allocates per-user buffers (page-aligned, page-labeled).
  const std::size_t alice_buf = 0x1000, alice_dst = 0x2000;
  const std::size_t eve_dst = 0x8000;
  const std::size_t len = 256;
  mem.setPageLabel(alice_buf, len, acc.principal(bench.alice).authority);
  mem.setPageLabel(alice_dst, len, acc.principal(bench.alice).authority);
  mem.setPageLabel(eve_dst, len, acc.principal(bench.eve).authority);

  // Alice's secret plaintext.
  std::vector<std::uint8_t> secret(len);
  for (std::size_t i = 0; i < len; ++i)
    secret[i] = static_cast<std::uint8_t>(0xA0 + i * 13);
  mem.writeBytes(alice_buf, secret);

  // Legitimate use: Alice encrypts her own buffer in place.
  DmaDescriptor legit;
  legit.user = bench.alice;
  legit.key_slot = 1;
  legit.mode = DmaMode::EcbEncrypt;
  legit.src = alice_buf;
  legit.dst = alice_dst;
  legit.len = len;
  const auto lr = dma.run(legit);
  if (lr.ok) {
    const auto ek = aes::expandKey(bench.alice_key, aes::KeySize::Aes128);
    r.legit_dma_ok = mem.readBytes(alice_dst, len) ==
                     aes::ecbEncrypt(secret, ek);
    r.cycles_per_block = static_cast<double>(lr.cycles) / lr.blocks;
  }

  // The attack: Eve encrypts Alice's buffer under Eve's key into Eve's
  // pages, then decrypts the result offline with her own key.
  DmaDescriptor theft;
  theft.user = bench.eve;
  theft.key_slot = 2;
  theft.mode = DmaMode::EcbEncrypt;
  theft.src = alice_buf;
  theft.dst = eve_dst;
  theft.len = len;
  const auto tr = dma.run(theft);
  r.src_read_blocked = !tr.ok && tr.error == DmaError::SrcPageDenied;
  if (tr.ok) {
    const auto ek = aes::expandKey(bench.eve_key, aes::KeySize::Aes128);
    r.alice_plaintext_stolen =
        aes::ecbDecrypt(mem.readBytes(eve_dst, len), ek) == secret;
  }

  // Integrity direction: Eve scribbles over Alice's destination pages.
  DmaDescriptor scribble = theft;
  scribble.src = eve_dst;
  scribble.dst = alice_dst;
  const auto sr = dma.run(scribble);
  r.dst_write_blocked = !sr.ok && sr.error == DmaError::DstPageDenied;

  return r;
}

// --- DMA descriptor-ring fault campaign ------------------------------------------

namespace {

// Rewrite one little-endian u64 field of a published ring descriptor and
// re-seal its checksum — the adversary who can write ring memory can of
// course keep the checksum consistent; the engine's structural validation
// and latching must not depend on checksums alone.
void rewriteDescField(HostMemory& mem, std::size_t desc_addr, unsigned offset,
                      std::uint64_t value) {
  mem.write64(desc_addr + offset, value);
  mem.write32(desc_addr + 4, ringChecksum(mem, desc_addr + 8, kDescBytes - 8));
}

}  // namespace

RingCampaignReport runRingFaultCampaign(const RingCampaignConfig& cfg) {
  Bench bench{SecurityMode::Protected};
  auto& acc = bench.acc;
  RingCampaignReport rep;
  Rng rng{cfg.seed * 0x9e3779b97f4a7c15ull + 1};

  HostMemory mem{256 * 1024};
  DmaRingEngine eng{acc, mem, cfg.hardened};

  DmaRingConfig ring;
  ring.desc_base = 0x0000;
  ring.desc_slots = 16;
  ring.chain_base = 0x0400;
  ring.chain_slots = 32;
  ring.comp_base = 0x0c00;
  ring.comp_slots = 8;  // small on purpose: overflow scenarios must bite
  ring.watchdog_cycles = cfg.watchdog_cycles;
  const unsigned ch = eng.addChannel(ring);
  DmaRingDriver drv{eng, mem, ch, ring};

  // Ring and data pages belong to alice; a victim region belongs to eve.
  const lattice::Label alice_l = acc.principal(bench.alice).authority;
  const lattice::Label eve_l = acc.principal(bench.eve).authority;
  mem.setPageLabel(0x0000, 0x1000, alice_l);          // rings + arena
  const std::size_t src_base = 0x2000, dst_base = 0x8000;
  mem.setPageLabel(src_base, 0x4000, alice_l);
  mem.setPageLabel(dst_base, 0x4000, alice_l);
  const std::size_t victim_base = 0x10000, victim_len = 0x1000;
  mem.setPageLabel(victim_base, victim_len, eve_l);
  for (std::size_t i = 0; i < victim_len; ++i)
    mem.write8(victim_base + i, static_cast<std::uint8_t>(0xE5 ^ (i * 7)));
  std::vector<std::uint8_t> victim_snap = mem.readBytes(victim_base, victim_len);

  // Random ring/host faults land through the injector between clock edges.
  FaultCampaignConfig fcfg;
  fcfg.seed = cfg.seed;
  fcfg.fault_rate = cfg.fault_rate;
  fcfg.hw_faults = false;  // this campaign is about the ring, not the core
  fcfg.host_faults = true;
  FaultInjector inj{acc, fcfg, {bench.alice}};
  inj.attachRingMemory(
      &mem,
      {{ring.desc_base, ring.desc_slots, kDescBytes},
       {ring.chain_base, ring.chain_slots, kDescBytes}},
      {{ring.comp_base, ring.comp_slots, kCompBytes}});
  acc.setTickHook([&] { inj.tick(); });

  const auto ek = aes::expandKey(bench.alice_key, aes::KeySize::Aes128);
  const std::uint64_t budget =
      16 * cfg.watchdog_cycles + 4096;  // per-transfer cycle budget

  for (unsigned i = 0; i < cfg.descriptors; ++i) {
    ++rep.descriptors;
    const unsigned scenario =
        cfg.scripted_scenarios ? i % 7 : 7;  // 7 = plain transfer

    // Build one transfer: fresh random payload, ECB or CTR, sometimes
    // scatter-gathered across 2-3 segments.
    const std::size_t len = 16 * (1 + rng.below(24));
    const std::size_t src = src_base + (i % 16) * 0x200;
    const std::size_t dst = dst_base + (i % 16) * 0x200;
    std::vector<std::uint8_t> payload(len);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());
    mem.writeBytes(src, payload);

    DmaDescriptor head;
    head.user = bench.alice;
    head.key_slot = 1;
    head.mode = (i % 2 == 0) ? DmaMode::EcbEncrypt : DmaMode::CtrCrypt;
    for (auto& b : head.ctr_iv) b = static_cast<std::uint8_t>(rng.next());

    std::vector<std::uint8_t> golden;
    if (head.mode == DmaMode::EcbEncrypt) {
      golden = aes::ecbEncrypt(payload, ek);
    } else {
      aes::Iv nonce{};
      std::copy(head.ctr_iv.begin(), head.ctr_iv.end(), nonce.begin());
      golden = aes::ctrCrypt(payload, ek, nonce);
    }
    const std::vector<std::uint8_t> dst_before = mem.readBytes(dst, len);

    // Split into segments (chains exercise the next-pointer path).
    std::vector<DmaDescriptor> segs;
    const unsigned nseg = 1 + static_cast<unsigned>(rng.below(3));
    std::size_t off = 0;
    for (unsigned s = 0; s < nseg && off < len; ++s) {
      DmaDescriptor seg = head;
      seg.src = src + off;
      seg.dst = dst + off;
      const std::size_t remain = len - off;
      std::size_t take = (s + 1 == nseg)
                             ? remain
                             : 16 * (1 + rng.below(remain / 16));
      take = std::min(take, remain);
      seg.len = take;
      segs.push_back(seg);
      off += take;
    }

    const auto seq = drv.submitChain(segs);
    if (!seq) {  // ring backpressure: drain a little and retry once
      for (unsigned t = 0; t < 256; ++t) eng.tick();
      drv.poll();
      if (!drv.submitChain(segs)) {
        ++rep.unresolved;
        continue;
      }
    }

    // Scripted adversarial interleave.
    const std::size_t head_addr =
        ring.desc_base +
        ((eng.headSlot(ch)) % ring.desc_slots) * kDescBytes;
    bool stalled_receiver = false;
    std::uint64_t release_at = 0;
    switch (scenario) {
      case 1: {  // chain loop: continuation points at itself
        if (segs.size() > 1) {
          // Re-read the published next-pointer; a ring fault may already
          // have corrupted it, so only follow it if it still lands in the
          // chain arena (the adversary writes ring memory, not random RAM).
          const std::uint64_t cont = mem.read64(head_addr + 40);
          const std::uint64_t arena_end =
              ring.chain_base + ring.chain_slots * kDescBytes;
          if (cont >= ring.chain_base && cont + kDescBytes <= arena_end)
            rewriteDescField(mem, cont, 40, cont);
        }
        break;
      }
      case 2:  // OOB next-pointer: head chains into the completion ring
        rewriteDescField(mem, head_addr, 40, ring.comp_base);
        break;
      case 3:  // completion overflow: host stops consuming completions
        drv.setAutoPoll(false);
        break;
      case 4:  // stalled ring: receiver wedged past the watchdog
        acc.setReceiverReady(bench.alice, false);
        stalled_receiver = true;
        release_at = cfg.watchdog_cycles + 64;
        break;
      default: break;
    }

    std::uint64_t waited = 0;
    bool torn_done = false, toctou_done = false, reset_done = false;
    while (!drv.done(*seq) && waited < budget) {
      eng.tick();
      ++waited;
      if (stalled_receiver && waited == release_at) {
        acc.setReceiverReady(bench.alice, true);
        inj.releaseStuckReceivers();
        stalled_receiver = false;
      }
      if (scenario == 0 && !torn_done && waited == 8) {
        // Torn ownership: the host reclaims the descriptor mid-flight.
        mem.write32(head_addr,
                    static_cast<std::uint32_t>(eng.generation(ch)) << 16);
        torn_done = true;
      }
      if (scenario == 6 && !toctou_done && waited == 8) {
        // TOCTOU: redirect the head's destination into eve's pages after
        // the engine has (or should have) latched it.
        rewriteDescField(mem, head_addr, 24, victim_base);
        toctou_done = true;
      }
      if (scenario == 5 && !reset_done && waited == 4) {
        // Ring reset under a published descriptor: everything in flight is
        // abandoned and pre-reset descriptors turn stale.
        eng.ringReset(ch);
        drv.resync();
        reset_done = true;
      }
      if (scenario == 3 && waited == cfg.watchdog_cycles + 256) {
        drv.setAutoPoll(true);  // host resumes; parked completion lands
        drv.poll();
      }
    }
    if (stalled_receiver) {
      acc.setReceiverReady(bench.alice, true);
      inj.releaseStuckReceivers();
    }
    drv.setAutoPoll(true);
    drv.poll();

    const DmaCompletion* comp = drv.result(*seq);
    if (comp == nullptr) {
      ++rep.unresolved;
      // A wedged ring (e.g. a fault cleared OWNED before the fetch) is
      // recovered the blunt way: quiesce everything and start a fresh
      // generation, exactly what a driver's error path would do.
      eng.ringReset(ch);
      drv.resync();
    } else if (comp->status == DmaError::None) {
      ++rep.completed_ok;
      if (mem.readBytes(dst, len) != golden) ++rep.wrong_plaintext_releases;
    } else {
      ++rep.refused;
      // Fail-secure: a refused transfer must not have moved its
      // destination (scenario 6 aside — there the write went elsewhere,
      // which the victim-page oracle below catches).
      if (scenario != 6 && mem.readBytes(dst, len) != dst_before)
        ++rep.partial_writes;
    }

    // Cross-label oracle: any byte of eve's pages changed?
    const auto victim_now = mem.readBytes(victim_base, victim_len);
    if (victim_now != victim_snap) {
      ++rep.cross_label_writes;
      for (std::size_t b = 0; b < victim_len; ++b)  // restore + re-arm
        mem.write8(victim_base + b, victim_snap[b]);
    }
  }

  acc.setTickHook(nullptr);
  const DmaRingStats& rs = eng.stats();
  rep.ring = rs;
  rep.watchdog_fires = rs.watchdog_fires;
  rep.recoveries = rs.recoveries;
  rep.ring_resets = rs.ring_resets;
  rep.cross_label_writes += rs.cross_label_writes;
  rep.corrupt_completions = drv.corruptCompletions();
  rep.duplicate_completions = drv.duplicateCompletions();
  const auto frep = inj.report();
  rep.ring_faults = frep.host_ring_desc + frep.host_ring_comp;
  return rep;
}

std::string RingCampaignReport::toJson() const {
  std::ostringstream os;
  os << "{\"descriptors\":" << descriptors
     << ",\"completed_ok\":" << completed_ok << ",\"refused\":" << refused
     << ",\"unresolved\":" << unresolved
     << ",\"wrong_plaintext_releases\":" << wrong_plaintext_releases
     << ",\"cross_label_writes\":" << cross_label_writes
     << ",\"partial_writes\":" << partial_writes
     << ",\"watchdog_fires\":" << watchdog_fires
     << ",\"recoveries\":" << recoveries
     << ",\"ring_resets\":" << ring_resets
     << ",\"ring_faults\":" << ring_faults
     << ",\"corrupt_completions\":" << corrupt_completions
     << ",\"duplicate_completions\":" << duplicate_completions
     << ",\"ring\":" << ring.toJson() << "}";
  return os.str();
}

RingCampaignReport& RingCampaignReport::operator+=(
    const RingCampaignReport& o) {
  descriptors += o.descriptors;
  completed_ok += o.completed_ok;
  refused += o.refused;
  unresolved += o.unresolved;
  wrong_plaintext_releases += o.wrong_plaintext_releases;
  cross_label_writes += o.cross_label_writes;
  partial_writes += o.partial_writes;
  watchdog_fires += o.watchdog_fires;
  recoveries += o.recoveries;
  ring_resets += o.ring_resets;
  ring_faults += o.ring_faults;
  corrupt_completions += o.corrupt_completions;
  duplicate_completions += o.duplicate_completions;
  ring += o.ring;
  return *this;
}

// --- Config tampering ----------------------------------------------------------

ConfigTamperResult runConfigTamper(SecurityMode mode) {
  Bench bench{mode};
  auto& acc = bench.acc;
  ConfigTamperResult r;

  const std::uint32_t before = acc.readConfig("arbiter_mode");
  acc.writeConfig(bench.eve, "arbiter_mode", before ^ 1u);
  r.eve_write_landed = acc.readConfig("arbiter_mode") != before;

  acc.writeConfig(bench.sup, "arbiter_mode", before);  // restore
  acc.writeConfig(bench.sup, "out_buf_depth", 48);
  r.supervisor_write_landed = acc.readConfig("out_buf_depth") == 48;

  r.eve_read_ok = acc.readConfig("version") == 0x20190602;
  r.blocked_events = acc.eventCount(SecurityEventKind::ConfigWriteBlocked);
  return r;
}

}  // namespace aesifc::soc
