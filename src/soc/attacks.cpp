#include "soc/attacks.h"

#include <algorithm>
#include <stdexcept>

#include "accel/accelerator.h"
#include "aes/cipher.h"
#include "aes/modes.h"
#include "aes/sbox.h"
#include "common/rng.h"
#include "soc/dma.h"

namespace aesifc::soc {

using accel::AcceleratorConfig;
using accel::AesAccelerator;
using accel::BlockRequest;
using accel::BlockResponse;
using accel::SecurityEventKind;
using accel::SecurityMode;

namespace {

struct Bench {
  AesAccelerator acc;
  unsigned sup, alice, eve;
  std::vector<std::uint8_t> master_key, alice_key, eve_key;

  explicit Bench(SecurityMode mode, unsigned out_buffer_depth = 64)
      : acc{AcceleratorConfig{mode, 10, out_buffer_depth, false}} {
    sup = acc.addUser(lattice::Principal::supervisor());
    alice = acc.addUser(lattice::Principal::user("alice", 1));
    eve = acc.addUser(lattice::Principal::user("eve", 2));

    Rng rng{0xa11cee4e};
    master_key = randomKey(rng);
    alice_key = randomKey(rng);
    eve_key = randomKey(rng);

    // Cell map: Eve 0-1, Alice 2-3 (adjacent to Eve: the Fig. 5 overflow
    // target), supervisor 6-7.
    loadKey128(sup, 0, 6, master_key, lattice::Conf::top());
    loadKey128(alice, 1, 2, alice_key, acc.principal(alice).authority.c);
    loadKey128(eve, 2, 0, eve_key, acc.principal(eve).authority.c);
  }

  static std::vector<std::uint8_t> randomKey(Rng& rng) {
    std::vector<std::uint8_t> k(16);
    for (auto& b : k) b = static_cast<std::uint8_t>(rng.next());
    return k;
  }

  void loadKey128(unsigned user, unsigned slot, unsigned base,
                  const std::vector<std::uint8_t>& key, lattice::Conf conf) {
    acc.configureKeyCells(user, base, 2);
    for (unsigned c = 0; c < 2; ++c) {
      std::uint64_t w = 0;
      for (unsigned b = 0; b < 8; ++b)
        w |= static_cast<std::uint64_t>(key[8 * c + b]) << (8 * b);
      if (!acc.writeKeyCell(user, base + c, w))
        throw std::runtime_error("attack bench: legitimate key write refused");
    }
    if (!acc.loadKey(user, slot, base, aes::KeySize::Aes128, conf))
      throw std::runtime_error("attack bench: legitimate key load refused");
  }

  // Submit one block for `user` and run until its response arrives.
  BlockResponse crypt(unsigned user, unsigned slot, const aes::Block& data,
                      bool decrypt) {
    static std::uint64_t next_id = 1000000;
    BlockRequest req;
    req.req_id = ++next_id;
    req.user = user;
    req.key_slot = slot;
    req.decrypt = decrypt;
    req.data = data;
    if (!acc.submit(req))
      throw std::runtime_error("attack bench: submit refused");
    for (unsigned i = 0; i < 500; ++i) {
      acc.tick();
      if (auto out = acc.fetchOutput(user)) {
        if (out->req_id == req.req_id) return *out;
      }
    }
    throw std::runtime_error("attack bench: response never arrived");
  }
};

aes::Block blockOf(std::uint8_t fill) {
  aes::Block b;
  for (unsigned i = 0; i < 16; ++i)
    b[i] = static_cast<std::uint8_t>(fill + i * 7);
  return b;
}

}  // namespace

// --- Timing covert channel ----------------------------------------------------

TimingChannelResult runTimingChannelAttack(SecurityMode mode,
                                           const TimingChannelParams& p) {
  Bench bench{mode, /*out_buffer_depth=*/256};
  auto& acc = bench.acc;
  Rng rng{p.seed};

  std::vector<int> secret(p.secret_bits);
  for (auto& b : secret) b = rng.chance(0.5) ? 1 : 0;

  std::uint64_t next_id = 1;
  std::vector<std::uint64_t> eve_latencies;
  std::vector<int> eve_window_completions(p.secret_bits, 0);

  auto submitFor = [&](unsigned user, unsigned slot) {
    if (acc.pendingInputs(user) >= 2) return;
    BlockRequest req;
    req.req_id = next_id++;
    req.user = user;
    req.key_slot = slot;
    req.data = blockOf(static_cast<std::uint8_t>(next_id));
    acc.submit(req);
  };

  // Warm the pipeline before the first window.
  for (unsigned i = 0; i < 3 * acc.pipeline().depth(); ++i) {
    submitFor(bench.alice, 1);
    submitFor(bench.eve, 2);
    acc.tick();
    while (acc.fetchOutput(bench.alice)) {
    }
    while (acc.fetchOutput(bench.eve)) {
    }
  }

  const std::uint64_t t0 = acc.cycle();
  const std::uint64_t total_cycles =
      static_cast<std::uint64_t>(p.secret_bits) * p.window;

  while (acc.cycle() - t0 < total_cycles) {
    const std::uint64_t rel = acc.cycle() - t0;
    const unsigned window = static_cast<unsigned>(rel / p.window);
    // Alice signals bit=1 by withholding her receiver (stall requests).
    acc.setReceiverReady(bench.alice, secret[window] == 0);
    submitFor(bench.alice, 1);
    submitFor(bench.eve, 2);
    acc.tick();
    while (acc.fetchOutput(bench.alice)) {
    }
    while (auto out = acc.fetchOutput(bench.eve)) {
      const std::uint64_t done_rel = out->complete_cycle - t0;
      if (done_rel < total_cycles) {
        ++eve_window_completions[done_rel / p.window];
        eve_latencies.push_back(out->complete_cycle - out->accept_cycle);
      }
    }
  }
  acc.setReceiverReady(bench.alice, true);

  // Eve decodes: fewer completions in a window => Alice was stalling (bit 1).
  int lo = eve_window_completions[0], hi = eve_window_completions[0];
  for (int c : eve_window_completions) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  const double threshold = (lo + hi) / 2.0;
  std::vector<int> decoded(p.secret_bits);
  unsigned correct = 0;
  for (unsigned i = 0; i < p.secret_bits; ++i) {
    decoded[i] =
        (lo == hi) ? 0 : (eve_window_completions[i] < threshold ? 1 : 0);
    if (decoded[i] == secret[i]) ++correct;
  }

  TimingChannelResult r;
  r.mi_bits = mutualInformationBits(secret, decoded);
  r.accuracy = static_cast<double>(correct) / p.secret_bits;
  r.eve_latency = latencyStats(eve_latencies);
  r.stalled_cycles = acc.stats().stalled_cycles;
  r.denied_stalls = acc.stats().denied_stalls;
  return r;
}

AcceptanceDelayResult runAcceptanceDelayAttack(bool meet_includes_inputs,
                                               const TimingChannelParams& p) {
  AcceleratorConfig cfg;
  cfg.mode = SecurityMode::Protected;
  cfg.out_buffer_depth = 256;
  cfg.meet_includes_inputs = meet_includes_inputs;

  AesAccelerator acc{cfg};
  const unsigned sup = acc.addUser(lattice::Principal::supervisor());
  const unsigned alice = acc.addUser(lattice::Principal::user("alice", 1));
  const unsigned eve = acc.addUser(lattice::Principal::user("eve", 2));
  (void)sup;

  Rng rng{p.seed};
  std::vector<std::uint8_t> alice_key(16), eve_key(16);
  for (auto& b : alice_key) b = static_cast<std::uint8_t>(rng.next());
  for (auto& b : eve_key) b = static_cast<std::uint8_t>(rng.next());

  auto load = [&](unsigned user, unsigned slot, unsigned base,
                  const std::vector<std::uint8_t>& key) {
    acc.configureKeyCells(user, base, 2);
    for (unsigned c = 0; c < 2; ++c) {
      std::uint64_t w = 0;
      for (unsigned b = 0; b < 8; ++b)
        w |= static_cast<std::uint64_t>(key[8 * c + b]) << (8 * b);
      if (!acc.writeKeyCell(user, base + c, w))
        throw std::runtime_error("acceptance bench: key write refused");
    }
    if (!acc.loadKey(user, slot, base, aes::KeySize::Aes128,
                     acc.principal(user).authority.c))
      throw std::runtime_error("acceptance bench: key load refused");
  };
  load(alice, 1, 2, alice_key);
  load(eve, 2, 0, eve_key);

  std::vector<int> secret(p.secret_bits);
  for (auto& b : secret) b = rng.chance(0.5) ? 1 : 0;

  std::uint64_t next_id = 1;
  auto aliceSubmit = [&] {
    if (acc.pendingInputs(alice) >= 2) return;
    BlockRequest req;
    req.req_id = next_id++;
    req.user = alice;
    req.key_slot = 1;
    req.data = blockOf(static_cast<std::uint8_t>(next_id));
    acc.submit(req);
  };

  // Warm up with Alice-only traffic.
  for (unsigned i = 0; i < 3 * acc.pipeline().depth(); ++i) {
    aliceSubmit();
    acc.tick();
    while (acc.fetchOutput(alice)) {
    }
  }

  const std::uint64_t t0 = acc.cycle();
  // A probe that never returns within the experiment is the strongest stall
  // evidence of all; score it as a very long latency.
  const double kTrapped = 3.0 * p.window;
  std::vector<double> window_latency(p.secret_bits, kTrapped);
  std::vector<std::uint64_t> probe_latencies;
  std::uint64_t probe_id = 0;
  std::uint64_t probe_submit_cycle = 0;
  int probe_window = -1;

  while (acc.cycle() - t0 < static_cast<std::uint64_t>(p.secret_bits) * p.window) {
    const unsigned window =
        static_cast<unsigned>((acc.cycle() - t0) / p.window);
    acc.setReceiverReady(alice, secret[window] == 0);
    aliceSubmit();
    // One Eve probe at the start of each window.
    if (static_cast<int>(window) != probe_window) {
      probe_window = static_cast<int>(window);
      BlockRequest req;
      req.req_id = probe_id = next_id++;
      req.user = eve;
      req.key_slot = 2;
      req.data = blockOf(0x55);
      acc.submit(req);
      probe_submit_cycle = acc.cycle();
    }
    acc.tick();
    while (acc.fetchOutput(alice)) {
    }
    while (auto out = acc.fetchOutput(eve)) {
      if (out->req_id == probe_id && probe_window >= 0 &&
          probe_window < static_cast<int>(p.secret_bits)) {
        const std::uint64_t lat = out->complete_cycle - probe_submit_cycle;
        window_latency[static_cast<unsigned>(probe_window)] =
            static_cast<double>(lat);
        probe_latencies.push_back(lat);
      }
    }
  }
  acc.setReceiverReady(alice, true);

  double lo = window_latency[0], hi = window_latency[0];
  for (double v : window_latency) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double threshold = (lo + hi) / 2.0;
  std::vector<int> decoded(p.secret_bits);
  unsigned correct = 0;
  for (unsigned i = 0; i < p.secret_bits; ++i) {
    decoded[i] = (lo == hi) ? 0 : (window_latency[i] > threshold ? 1 : 0);
    if (decoded[i] == secret[i]) ++correct;
  }
  // The attacker calibrates polarity, so score the better of the two.
  correct = std::max(correct, p.secret_bits - correct);

  AcceptanceDelayResult r;
  r.mi_bits = mutualInformationBits(secret, decoded);
  r.accuracy = static_cast<double>(correct) / p.secret_bits;
  r.probe_latency = latencyStats(probe_latencies);
  r.stalled_cycles = acc.stats().stalled_cycles;
  r.denied_stalls = acc.stats().denied_stalls;
  return r;
}

// --- Scratchpad overflow --------------------------------------------------------

OverflowResult runScratchpadOverflow(SecurityMode mode) {
  Bench bench{mode};
  auto& acc = bench.acc;
  OverflowResult r;

  // Sanity: Alice's key works before the attack.
  const aes::Block pt = blockOf(0x20);
  const aes::Block golden =
      aes::encryptBlock(pt, bench.alice_key.data(), aes::KeySize::Aes128);
  if (bench.crypt(bench.alice, 1, pt, false).data != golden)
    throw std::runtime_error("overflow bench: pre-attack encryption wrong");

  // Eve claims to store a 192-bit key in her 128-bit allocation: cells 0,1
  // are hers, cell 2 belongs to Alice (Fig. 5).
  acc.writeKeyCell(bench.eve, 0, 0x1111111111111111ULL);
  acc.writeKeyCell(bench.eve, 1, 0x2222222222222222ULL);
  r.overflow_write_succeeded =
      acc.writeKeyCell(bench.eve, 2, 0xdeadbeefdeadbeefULL);

  // Alice refreshes her key from the scratchpad (periodic re-expansion) and
  // encrypts again.
  if (!acc.loadKey(bench.alice, 1, 2, aes::KeySize::Aes128,
                   acc.principal(bench.alice).authority.c))
    throw std::runtime_error("overflow bench: alice reload refused");
  const auto after = bench.crypt(bench.alice, 1, pt, false);
  r.alice_key_corrupted = (after.data != golden) || after.suppressed;
  r.blocked_events = acc.eventCount(SecurityEventKind::ScratchpadWriteBlocked);
  return r;
}

// --- Debug peripheral ------------------------------------------------------------

DebugPortResult runDebugPortAttack(SecurityMode mode) {
  Bench bench{mode};
  auto& acc = bench.acc;
  DebugPortResult r;

  // Step 1: Eve tries to enable the debug port herself (config tamper).
  acc.writeConfig(bench.eve, "debug_enable", 1);
  r.eve_enabled_debug = acc.readConfig("debug_enable") == 1;
  if (!r.eve_enabled_debug) {
    // In the protected design Eve's write is blocked; model the rogue/test
    // scenario where the port was legitimately enabled by the supervisor.
    acc.writeConfig(bench.sup, "debug_enable", 1);
  }

  // Step 2: Alice encrypts a plaintext Eve knows (e.g. a protocol header).
  const aes::Block pt = blockOf(0x41);
  BlockRequest req;
  req.req_id = 7777;
  req.user = bench.alice;
  req.key_slot = 1;
  req.data = pt;
  acc.submit(req);
  acc.tick();  // the block now sits in stage 0: SubBytes(pt ^ rk0)

  // Step 3: Eve reads stage 0 through the debug port and inverts the
  // round-0 micro-op to recover Alice's key.
  if (auto leaked = acc.debugReadStage(bench.eve, 0)) {
    std::vector<std::uint8_t> recovered(16);
    for (unsigned i = 0; i < 16; ++i) {
      recovered[i] =
          static_cast<std::uint8_t>(aes::invSbox((*leaked)[i]) ^ pt[i]);
    }
    r.key_recovered = recovered == bench.alice_key;
  }

  // Step 4: a fully cleared principal may still use the debug port.
  r.supervisor_read_ok = acc.debugReadStage(bench.sup, 0).has_value();

  r.blocked_events = acc.eventCount(SecurityEventKind::DebugReadBlocked) +
                     acc.eventCount(SecurityEventKind::ConfigWriteBlocked);
  return r;
}

// --- Key misuse -------------------------------------------------------------------

KeyMisuseResult runKeyMisuseAttack(SecurityMode mode) {
  Bench bench{mode};
  KeyMisuseResult r;

  // Normal operation: Alice with her own key.
  const aes::Block pt_a = blockOf(0x10);
  const aes::Block ct_a =
      aes::encryptBlock(pt_a, bench.alice_key.data(), aes::KeySize::Aes128);
  const auto alice_resp = bench.crypt(bench.alice, 1, pt_a, false);
  r.own_key_ok = !alice_resp.suppressed && alice_resp.data == ct_a;

  // Eve encrypts with the master key (slot 0).
  const aes::Block pt_e = blockOf(0x30);
  const aes::Block ct_master =
      aes::encryptBlock(pt_e, bench.master_key.data(), aes::KeySize::Aes128);
  const auto eve_master = bench.crypt(bench.eve, 0, pt_e, false);
  r.master_key_output_released =
      !eve_master.suppressed && eve_master.data == ct_master;

  // Eve decrypts Alice's ciphertext with Alice's key slot.
  const auto eve_alice = bench.crypt(bench.eve, 1, ct_a, true);
  r.alice_key_output_released = !eve_alice.suppressed && eve_alice.data == pt_a;

  // The supervisor is trusted enough to declassify master-key output.
  const auto sup_master = bench.crypt(bench.sup, 0, pt_e, false);
  r.supervisor_master_ok = !sup_master.suppressed && sup_master.data == ct_master;

  r.declass_rejected =
      bench.acc.eventCount(SecurityEventKind::DeclassifyRejected);
  return r;
}

// --- DMA theft -------------------------------------------------------------------

DmaTheftResult runDmaTheftAttack(SecurityMode mode) {
  Bench bench{mode};
  auto& acc = bench.acc;
  DmaTheftResult r;

  HostMemory mem{64 * 1024};
  DmaEngine dma{acc, mem};

  // The OS allocates per-user buffers (page-aligned, page-labeled).
  const std::size_t alice_buf = 0x1000, alice_dst = 0x2000;
  const std::size_t eve_dst = 0x8000;
  const std::size_t len = 256;
  mem.setPageLabel(alice_buf, len, acc.principal(bench.alice).authority);
  mem.setPageLabel(alice_dst, len, acc.principal(bench.alice).authority);
  mem.setPageLabel(eve_dst, len, acc.principal(bench.eve).authority);

  // Alice's secret plaintext.
  std::vector<std::uint8_t> secret(len);
  for (std::size_t i = 0; i < len; ++i)
    secret[i] = static_cast<std::uint8_t>(0xA0 + i * 13);
  mem.writeBytes(alice_buf, secret);

  // Legitimate use: Alice encrypts her own buffer in place.
  DmaDescriptor legit;
  legit.user = bench.alice;
  legit.key_slot = 1;
  legit.mode = DmaMode::EcbEncrypt;
  legit.src = alice_buf;
  legit.dst = alice_dst;
  legit.len = len;
  const auto lr = dma.run(legit);
  if (lr.ok) {
    const auto ek = aes::expandKey(bench.alice_key, aes::KeySize::Aes128);
    r.legit_dma_ok = mem.readBytes(alice_dst, len) ==
                     aes::ecbEncrypt(secret, ek);
    r.cycles_per_block = static_cast<double>(lr.cycles) / lr.blocks;
  }

  // The attack: Eve encrypts Alice's buffer under Eve's key into Eve's
  // pages, then decrypts the result offline with her own key.
  DmaDescriptor theft;
  theft.user = bench.eve;
  theft.key_slot = 2;
  theft.mode = DmaMode::EcbEncrypt;
  theft.src = alice_buf;
  theft.dst = eve_dst;
  theft.len = len;
  const auto tr = dma.run(theft);
  r.src_read_blocked = !tr.ok && tr.error == "src-page-denied";
  if (tr.ok) {
    const auto ek = aes::expandKey(bench.eve_key, aes::KeySize::Aes128);
    r.alice_plaintext_stolen =
        aes::ecbDecrypt(mem.readBytes(eve_dst, len), ek) == secret;
  }

  // Integrity direction: Eve scribbles over Alice's destination pages.
  DmaDescriptor scribble = theft;
  scribble.src = eve_dst;
  scribble.dst = alice_dst;
  const auto sr = dma.run(scribble);
  r.dst_write_blocked = !sr.ok && sr.error == "dst-page-denied";

  return r;
}

// --- Config tampering ----------------------------------------------------------

ConfigTamperResult runConfigTamper(SecurityMode mode) {
  Bench bench{mode};
  auto& acc = bench.acc;
  ConfigTamperResult r;

  const std::uint32_t before = acc.readConfig("arbiter_mode");
  acc.writeConfig(bench.eve, "arbiter_mode", before ^ 1u);
  r.eve_write_landed = acc.readConfig("arbiter_mode") != before;

  acc.writeConfig(bench.sup, "arbiter_mode", before);  // restore
  acc.writeConfig(bench.sup, "out_buf_depth", 48);
  r.supervisor_write_landed = acc.readConfig("out_buf_depth") == 48;

  r.eve_read_ok = acc.readConfig("version") == 0x20190602;
  r.blocked_events = acc.eventCount(SecurityEventKind::ConfigWriteBlocked);
  return r;
}

}  // namespace aesifc::soc
