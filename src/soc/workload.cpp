#include "soc/workload.h"

#include <map>
#include <stdexcept>

#include "aes/cipher.h"
#include "common/rng.h"

namespace aesifc::soc {

using accel::AesAccelerator;
using accel::BlockRequest;

TenantSetup setupTenants(AesAccelerator& acc, unsigned tenants,
                         std::uint64_t seed) {
  if (tenants + 1 > accel::kRoundKeySlots)
    throw std::invalid_argument("setupTenants: too many tenants for key slots");
  Rng rng{seed};
  TenantSetup setup;

  const unsigned sup = acc.addUser(lattice::Principal::supervisor());
  setup.users.push_back(sup);
  setup.key_slots.push_back(0);

  // Master key into slot 0 via the supervisor's scratchpad cells.
  std::vector<std::uint8_t> master(16);
  for (auto& b : master) b = static_cast<std::uint8_t>(rng.next());
  setup.keys.push_back(master);
  acc.configureKeyCells(sup, 0, 2);
  for (unsigned c = 0; c < 2; ++c) {
    std::uint64_t w = 0;
    for (unsigned b = 0; b < 8; ++b)
      w |= static_cast<std::uint64_t>(master[8 * c + b]) << (8 * b);
    if (!acc.writeKeyCell(sup, c, w))
      throw std::runtime_error("setupTenants: master key cell write refused");
  }
  if (!acc.loadKey(sup, 0, 0, aes::KeySize::Aes128, lattice::Conf::top()))
    throw std::runtime_error("setupTenants: master key load refused");

  // Tenants: one secrecy/trust category, two scratchpad cells, one slot each.
  for (unsigned t = 0; t < tenants; ++t) {
    const unsigned cat = t + 1;  // category 0 is reserved in examples
    const unsigned u = acc.addUser(
        lattice::Principal::user("user" + std::to_string(t), cat % 16));
    const unsigned slot = t + 1;
    const unsigned base = (2 * (t + 1)) % accel::kScratchpadCells;

    std::vector<std::uint8_t> key(16);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());

    acc.configureKeyCells(u, base, 2);
    for (unsigned c = 0; c < 2; ++c) {
      std::uint64_t w = 0;
      for (unsigned b = 0; b < 8; ++b)
        w |= static_cast<std::uint64_t>(key[8 * c + b]) << (8 * b);
      if (!acc.writeKeyCell(u, base + c, w))
        throw std::runtime_error("setupTenants: tenant key cell write refused");
    }
    if (!acc.loadKey(u, slot, base, aes::KeySize::Aes128,
                     acc.principal(u).authority.c))
      throw std::runtime_error("setupTenants: tenant key load refused");

    setup.users.push_back(u);
    setup.key_slots.push_back(slot);
    setup.keys.push_back(std::move(key));
  }
  return setup;
}

WorkloadResult runSharedWorkload(AesAccelerator& acc, const TenantSetup& setup,
                                 const WorkloadConfig& cfg) {
  Rng rng{cfg.seed};
  WorkloadResult result;
  result.per_user_completed.assign(setup.users.size(), 0);

  struct Pending {
    aes::Block pt;
    unsigned setup_idx;
  };
  std::map<std::uint64_t, Pending> inflight;  // req_id -> expectation
  std::uint64_t next_req = 1;

  // Tenants only (skip the supervisor at index 0).
  const unsigned first = 1;
  const unsigned n = static_cast<unsigned>(setup.users.size());
  std::vector<unsigned> submitted(n, 0);
  std::vector<aes::ExpandedKey> golden;
  golden.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    golden.push_back(aes::expandKey(setup.keys[i], aes::KeySize::Aes128));

  std::vector<std::uint64_t> latencies;

  auto allDone = [&] {
    for (unsigned i = first; i < n; ++i)
      if (submitted[i] < cfg.blocks_per_user) return false;
    return inflight.empty();
  };

  while (!allDone() && acc.cycle() < cfg.max_cycles) {
    for (unsigned i = first; i < n; ++i) {
      if (submitted[i] >= cfg.blocks_per_user) continue;
      if (acc.pendingInputs(setup.users[i]) >= 2) continue;
      if (!rng.chance(cfg.submit_prob)) continue;
      BlockRequest req;
      req.req_id = next_req++;
      req.user = setup.users[i];
      req.key_slot = setup.key_slots[i];
      req.decrypt = false;
      const auto bits = rng.bits(128).toBytes();
      for (unsigned b = 0; b < 16; ++b) req.data[b] = bits[b];
      if (acc.submit(req)) {
        inflight[req.req_id] = {req.data, i};
        ++submitted[i];
      }
    }
    acc.tick();
    for (unsigned i = first; i < n; ++i) {
      while (auto out = acc.fetchOutput(setup.users[i])) {
        auto it = inflight.find(out->req_id);
        if (it == inflight.end()) continue;
        ++result.blocks_completed;
        ++result.per_user_completed[it->second.setup_idx];
        latencies.push_back(out->complete_cycle - out->accept_cycle);
        if (cfg.verify && !out->suppressed) {
          const aes::Block want =
              aes::encryptBlock(it->second.pt, golden[it->second.setup_idx]);
          if (want != out->data) {
            result.all_correct = false;
            ++result.mismatches;
          }
        }
        if (out->suppressed) {
          result.all_correct = false;
          ++result.mismatches;
        }
        inflight.erase(it);
      }
    }
  }

  result.cycles = acc.cycle();
  result.blocks_per_cycle =
      result.cycles
          ? static_cast<double>(result.blocks_completed) / result.cycles
          : 0.0;
  result.latency = latencyStats(latencies);
  return result;
}

}  // namespace aesifc::soc
