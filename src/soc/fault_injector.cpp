#include "soc/fault_injector.h"

#include <sstream>
#include <stdexcept>

namespace aesifc::soc {

using accel::FaultSite;

namespace {

FaultSite faultSiteFromString(const std::string& name) {
  for (unsigned s = 0; s < accel::kHwFaultSites + accel::kHostFaultSites;
       ++s) {
    const auto site = static_cast<FaultSite>(s);
    if (accel::toString(site) == name) return site;
  }
  throw std::invalid_argument("parseTrace: unknown fault site '" + name + "'");
}

}  // namespace

std::string traceToString(const std::vector<FaultRecord>& records) {
  std::ostringstream os;
  for (const auto& r : records) {
    os << r.cycle << " " << accel::toString(r.site) << " " << r.index << " "
       << r.bit << " " << (r.applied ? 1 : 0) << "\n";
  }
  return os.str();
}

std::vector<FaultRecord> parseTrace(const std::string& text) {
  std::vector<FaultRecord> out;
  std::istringstream is{text};
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls{line};
    FaultRecord r;
    std::string site;
    int applied = 0;
    if (!(ls >> r.cycle >> site >> r.index >> r.bit >> applied)) {
      throw std::invalid_argument("parseTrace: malformed line '" + line + "'");
    }
    r.site = faultSiteFromString(site);
    r.applied = applied != 0;
    out.push_back(r);
  }
  return out;
}

FaultInjector::FaultInjector(accel::AesAccelerator& acc,
                             FaultCampaignConfig cfg,
                             std::vector<unsigned> users)
    : acc_{acc}, cfg_{cfg}, users_{std::move(users)}, rng_{cfg.seed} {}

FaultInjector::FaultInjector(accel::AesAccelerator& acc,
                             FaultCampaignConfig cfg,
                             std::vector<unsigned> users,
                             std::vector<FaultRecord> trace)
    : acc_{acc}, cfg_{cfg}, users_{std::move(users)}, rng_{cfg.seed},
      replay_{true}, replay_trace_{std::move(trace)} {}

void FaultInjector::tick() {
  // Release receivers whose stuck window has expired.
  for (auto it = stuck_.begin(); it != stuck_.end();) {
    if (acc_.cycle() >= it->second) {
      acc_.setReceiverReady(it->first, true);
      it = stuck_.erase(it);
    } else {
      ++it;
    }
  }
  if (replay_) {
    replayTick();
    return;
  }
  if (!rng_.chance(cfg_.fault_rate)) return;
  const bool hw = cfg_.hw_faults && (!cfg_.host_faults || rng_.chance(0.7));
  if (hw) {
    injectHw();
  } else if (cfg_.host_faults) {
    injectHost();
  }
}

void FaultInjector::replayTick() {
  // Land every trace event stamped for the current cycle. Cycles the
  // workload never reaches simply leave the remaining tail uninjected
  // (report() then shows fewer injected events than the trace holds).
  while (replay_next_ < replay_trace_.size() &&
         replay_trace_[replay_next_].cycle <= acc_.cycle()) {
    FaultRecord rec = replay_trace_[replay_next_++];
    rec.cycle = acc_.cycle();
    applyRecord(rec);
  }
}

void FaultInjector::injectHw() {
  FaultRecord rec;
  rec.cycle = acc_.cycle();
  rec.site = static_cast<FaultSite>(rng_.below(accel::kHwFaultSites));
  switch (rec.site) {
    case FaultSite::StageData:
    case FaultSite::StageTag:
      rec.index = static_cast<unsigned>(rng_.below(acc_.pipeline().depth()));
      rec.bit = static_cast<unsigned>(
          rng_.below(rec.site == FaultSite::StageData ? 128 : 32));
      break;
    case FaultSite::ScratchCell:
    case FaultSite::ScratchTag:
      rec.index = static_cast<unsigned>(rng_.below(accel::kScratchpadCells));
      rec.bit = static_cast<unsigned>(
          rng_.below(rec.site == FaultSite::ScratchCell ? 64 : 32));
      break;
    case FaultSite::RoundKey:
      rec.index = static_cast<unsigned>(rng_.below(accel::kRoundKeySlots));
      // round*128 + byte*8 + bit, rounds limited to the AES-128 schedule so
      // most rolls land on real state.
      rec.bit = static_cast<unsigned>(rng_.below(11) * 128 + rng_.below(128));
      break;
    case FaultSite::ConfigReg:
      rec.index = static_cast<unsigned>(rng_.below(4));
      rec.bit = static_cast<unsigned>(rng_.below(32));
      break;
    case FaultSite::GhashStage:
      rec.index = static_cast<unsigned>(rng_.below(accel::kGhashStages));
      rec.bit = static_cast<unsigned>(rng_.below(256));  // x || z
      break;
    case FaultSite::GhashStageTag:
      rec.index = static_cast<unsigned>(rng_.below(accel::kGhashStages));
      rec.bit = static_cast<unsigned>(rng_.below(32));
      break;
    case FaultSite::GhashAcc:
      rec.index = static_cast<unsigned>(rng_.below(accel::kGhashStreams));
      rec.bit =
          static_cast<unsigned>(rng_.below(128 * accel::kGhashLanes));
      break;
    case FaultSite::GhashKeyTable:
      rec.index = static_cast<unsigned>(rng_.below(accel::kGhashKeySlots));
      // power*2048 + entry*128 + bit over the per-slot H-power tables.
      rec.bit = static_cast<unsigned>(
          rng_.below(accel::kGhashLanes * 16 * 128));
      break;
    default:
      return;
  }
  applyRecord(rec);
}

void FaultInjector::attachRingMemory(HostMemory* mem,
                                     std::vector<RingRange> desc_rings,
                                     std::vector<RingRange> comp_rings) {
  ring_mem_ = mem;
  desc_rings_ = std::move(desc_rings);
  comp_rings_ = std::move(comp_rings);
}

void FaultInjector::injectHost() {
  if (users_.empty()) return;
  const unsigned user =
      users_[static_cast<std::size_t>(rng_.below(users_.size()))];
  FaultRecord rec;
  rec.cycle = acc_.cycle();
  rec.index = user;
  const bool rings =
      ring_mem_ != nullptr && (!desc_rings_.empty() || !comp_rings_.empty());
  switch (rng_.below(rings ? 6 : 4)) {
    case 0: rec.site = FaultSite::HostDrop; break;
    case 1: rec.site = FaultSite::HostDuplicate; break;
    case 2: rec.site = FaultSite::HostStuckReceiver; break;
    case 4:
    case 5: {
      // One bit somewhere in a descriptor or completion ring. index packs
      // range << 16 | slot; bit is the offset inside the slot's record.
      const bool desc = comp_rings_.empty() ||
                        (!desc_rings_.empty() && rng_.chance(0.5));
      const auto& ranges = desc ? desc_rings_ : comp_rings_;
      rec.site = desc ? FaultSite::RingDescriptor : FaultSite::RingCompletion;
      const unsigned range =
          static_cast<unsigned>(rng_.below(ranges.size()));
      const RingRange& rr = ranges[range];
      rec.index = (range << 16) |
                  static_cast<unsigned>(rng_.below(rr.slots));
      rec.bit = static_cast<unsigned>(rng_.below(rr.stride * 8));
      break;
    }
    default:
      rec.site = FaultSite::HostSpuriousSubmit;
      // Shape of the spurious request, encoded so a replay rebuilds it.
      rec.bit = static_cast<unsigned>(rng_.below(accel::kRoundKeySlots + 2)) *
                    2 +
                (rng_.chance(0.5) ? 1 : 0);
      break;
  }
  applyRecord(rec);
}

// Single point where a fault event — freshly rolled or replayed — lands on
// the device and enters the injection log.
void FaultInjector::applyRecord(FaultRecord rec) {
  switch (rec.site) {
    case FaultSite::StageData:
    case FaultSite::StageTag:
    case FaultSite::ScratchCell:
    case FaultSite::ScratchTag:
    case FaultSite::RoundKey:
    case FaultSite::ConfigReg:
    case FaultSite::GhashStage:
    case FaultSite::GhashStageTag:
    case FaultSite::GhashAcc:
    case FaultSite::GhashKeyTable:
      rec.applied = acc_.injectFault(rec.site, rec.index, rec.bit);
      break;
    case FaultSite::HostDrop:
      rec.applied = acc_.injectDropOutput(rec.index);
      if (rec.applied) ++host_drops_;
      break;
    case FaultSite::HostDuplicate:
      rec.applied = acc_.injectDuplicateOutput(rec.index);
      if (rec.applied) ++host_duplicates_;
      break;
    case FaultSite::HostStuckReceiver:
      acc_.setReceiverReady(rec.index, false);
      stuck_.emplace_back(rec.index, acc_.cycle() + cfg_.stuck_cycles);
      rec.applied = true;
      ++host_stuck_;
      break;
    case FaultSite::HostSpuriousSubmit: {
      accel::BlockRequest req;
      // Ids in a reserved high range so no driver request is ever aliased.
      req.req_id = 0xF000000000000000ULL + spurious_seq_++;
      req.user = rec.index;
      req.key_slot = rec.bit / 2;
      req.decrypt = (rec.bit & 1) != 0;
      // Contents are irrelevant to every observable (nothing consumes a
      // spurious output; timing and parity are data-independent), so a
      // deterministic pattern keeps record and replay identical.
      for (unsigned i = 0; i < 16; ++i)
        req.data[i] = static_cast<std::uint8_t>(0xA5u ^ (req.req_id + i));
      rec.applied = acc_.submit(req);
      ++host_spurious_;
      break;
    }
    case FaultSite::RingDescriptor:
    case FaultSite::RingCompletion: {
      const bool desc = rec.site == FaultSite::RingDescriptor;
      const auto& ranges = desc ? desc_rings_ : comp_rings_;
      const unsigned range = rec.index >> 16;
      const unsigned slot = rec.index & 0xffff;
      rec.applied = false;
      if (ring_mem_ != nullptr && range < ranges.size() &&
          slot < ranges[range].slots && rec.bit < ranges[range].stride * 8) {
        const std::size_t addr = ranges[range].base +
                                 static_cast<std::size_t>(slot) *
                                     ranges[range].stride +
                                 rec.bit / 8;
        if (addr < ring_mem_->size()) {
          ring_mem_->write8(
              addr, ring_mem_->read8(addr) ^
                        static_cast<std::uint8_t>(1u << (rec.bit % 8)));
          rec.applied = true;
          ++(desc ? host_ring_desc_ : host_ring_comp_);
        }
      }
      break;
    }
  }
  ++injected_;
  records_.push_back(rec);
}

void FaultInjector::releaseStuckReceivers() {
  for (const auto& [user, until] : stuck_) {
    (void)until;
    acc_.setReceiverReady(user, true);
  }
  stuck_.clear();
}

FaultCampaignReport FaultInjector::report() const {
  FaultCampaignReport r;
  r.records = records_;
  r.injected = injected_;
  r.host_drops = host_drops_;
  r.host_duplicates = host_duplicates_;
  r.host_stuck = host_stuck_;
  r.host_spurious = host_spurious_;
  r.host_ring_desc = host_ring_desc_;
  r.host_ring_comp = host_ring_comp_;
  for (const auto& rec : records_) {
    const auto s = static_cast<unsigned>(rec.site);
    if (s < accel::kHwFaultSites) {
      ++r.injected_by_site[s];
      if (rec.applied) {
        ++r.applied_by_site[s];
        ++r.applied;
      }
    }
  }
  r.detected_by_site = acc_.faultsDetectedBySite();
  const auto& st = acc_.stats();
  r.detected = st.faults_detected;
  r.recovered = st.faults_recovered;
  r.aborted = st.fault_aborted;
  return r;
}

std::string FaultCampaignReport::summary() const {
  std::ostringstream os;
  os << "campaign: " << injected << " events, " << applied
     << " hardware upsets applied, " << detected << " detected ("
     << recovered << " recovered, " << aborted << " blocks aborted), host: "
     << host_drops << " drops / " << host_duplicates << " duplicates / "
     << host_stuck << " stuck-receiver / " << host_spurious << " spurious / "
     << host_ring_desc << " ring-desc flips / " << host_ring_comp
     << " ring-comp flips\n";
  for (unsigned s = 0; s < accel::kHwFaultSites; ++s) {
    os << "  " << toString(static_cast<FaultSite>(s)) << ": injected "
       << injected_by_site[s] << ", applied " << applied_by_site[s]
       << ", detected " << detected_by_site[s] << ", escaped " << escaped(s)
       << "\n";
  }
  return os.str();
}

std::string FaultCampaignReport::toJson() const {
  std::ostringstream os;
  os << "{\"injected\":" << injected << ",\"applied\":" << applied
     << ",\"detected\":" << detected << ",\"recovered\":" << recovered
     << ",\"aborted\":" << aborted << ",\"host\":{\"drops\":" << host_drops
     << ",\"duplicates\":" << host_duplicates << ",\"stuck\":" << host_stuck
     << ",\"spurious\":" << host_spurious
     << ",\"ring_desc\":" << host_ring_desc
     << ",\"ring_comp\":" << host_ring_comp << "},\"sites\":[";
  for (unsigned s = 0; s < accel::kHwFaultSites; ++s) {
    if (s) os << ",";
    os << "{\"site\":\"" << toString(static_cast<FaultSite>(s))
       << "\",\"injected\":" << injected_by_site[s]
       << ",\"applied\":" << applied_by_site[s]
       << ",\"detected\":" << detected_by_site[s]
       << ",\"escaped\":" << escaped(s) << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace aesifc::soc
