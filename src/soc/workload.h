#pragma once
// Multi-user traffic generation through a shared accelerator (the Fig. 2
// SoC scenario): registers users with per-user labels and keys, streams
// blocks through the pipeline, verifies every result against the golden
// software AES, and reports throughput/latency.

#include <cstdint>
#include <vector>

#include "accel/accelerator.h"
#include "soc/metrics.h"

namespace aesifc::soc {

struct TenantSetup {
  // Registered user ids, in registration order. users[0] is the supervisor.
  std::vector<unsigned> users;
  // Key slot per user (slot 0 = master key owned by the supervisor).
  std::vector<unsigned> key_slots;
  // Raw key bytes per user (for golden-model verification).
  std::vector<std::vector<std::uint8_t>> keys;
};

// Registers a supervisor plus `tenants` users on the accelerator, gives each
// a 128-bit key in its own scratchpad cells and round-key slot, and loads
// the master key into slot 0. Panics (throws) if any legitimate setup step
// is refused.
TenantSetup setupTenants(accel::AesAccelerator& acc, unsigned tenants,
                         std::uint64_t seed = 42);

struct WorkloadConfig {
  unsigned blocks_per_user = 256;
  double submit_prob = 1.0;  // per-cycle probability a user offers a block
  std::uint64_t seed = 7;
  bool verify = true;  // check outputs against the golden model
  unsigned max_cycles = 1u << 20;
};

struct WorkloadResult {
  std::uint64_t cycles = 0;
  std::uint64_t blocks_completed = 0;
  double blocks_per_cycle = 0.0;
  bool all_correct = true;
  std::uint64_t mismatches = 0;
  LatencyStats latency;
  // Blocks completed per setup index (index 0 is the supervisor and stays
  // 0) — the fairness evidence: under fair arbitration no tenant starves.
  std::vector<std::uint64_t> per_user_completed;
  // min/max over the tenant entries of per_user_completed; a fairness
  // ratio close to 1.0 means round-robin kept every tenant moving.
  double fairnessRatio() const {
    std::uint64_t lo = 0, hi = 0;
    bool first = true;
    for (std::size_t i = 1; i < per_user_completed.size(); ++i) {
      const auto v = per_user_completed[i];
      if (first) {
        lo = hi = v;
        first = false;
      } else {
        if (v < lo) lo = v;
        if (v > hi) hi = v;
      }
    }
    return hi == 0 ? 1.0
                   : static_cast<double>(lo) / static_cast<double>(hi);
  }
};

// Streams encryption traffic from every tenant through the accelerator
// until all blocks complete (or max_cycles elapse).
WorkloadResult runSharedWorkload(accel::AesAccelerator& acc,
                                 const TenantSetup& setup,
                                 const WorkloadConfig& cfg);

}  // namespace aesifc::soc
