#pragma once
// Accelerator health-state machine driven by an error-budget window over
// RobustnessStats. The service layer samples driver/device telemetry once
// per window and feeds the delta here; the monitor decides whether the
// hardware path is trustworthy enough to carry traffic.
//
//   Healthy ──(window error rate > degrade threshold)──▶ Degraded
//   Degraded ──(clean windows)──▶ Healthy
//   Healthy/Degraded ──(rate > quarantine threshold, or failure streak,
//                       or escaped-fault signal)──▶ Quarantined
//   Quarantined ──(residency elapsed)──▶ Probation
//   Probation ──(all canary probes pass)──▶ Healthy
//   Probation ──(any canary fails)──▶ Quarantined (residency restarts)
//
// The monitor is deliberately pure bookkeeping: it never touches the
// device. The service owns the consequences (shedding, circuit breaking,
// canary probing) and reports every transition to the accelerator's
// security event ring so hardware and service events share one timeline.

#include <cstdint>
#include <string>
#include <vector>

#include "soc/metrics.h"

namespace aesifc::soc {

enum class HealthState { Healthy, Degraded, Quarantined, Probation };

std::string toString(HealthState s);

struct HealthConfig {
  // Error-budget window: the service feeds one sample per this many cycles.
  std::uint64_t window_cycles = 1024;
  // Transient failures (timeouts + fault aborts + drops) per completed
  // operation in one window. Above `degrade` the hardware is suspect; above
  // `quarantine` it is taken out of rotation.
  double degrade_threshold = 0.10;
  double quarantine_threshold = 0.50;
  // Consecutive all-fail windows (ops > 0, zero successes) that force
  // quarantine regardless of rates — a wedged device times out slowly and
  // may never reach the rate threshold.
  unsigned wedged_windows = 2;
  // Clean windows (rate <= degrade) needed to climb Degraded -> Healthy.
  unsigned recovery_windows = 2;
  // Windows with fewer terminated operations than this are too noisy for
  // the rate thresholds (one timeout out of one op would read as 100%);
  // they still count toward the wedged-window streak.
  std::uint64_t min_window_ops = 4;
  // Minimum cycles to sit quarantined before canaries may probe.
  std::uint64_t quarantine_residency_cycles = 2048;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig cfg);

  struct Transition {
    HealthState from;
    HealthState to;
    std::uint64_t cycle = 0;
    std::string reason;
  };

  HealthState state() const { return state_; }
  const HealthConfig& config() const { return cfg_; }
  const std::vector<Transition>& transitions() const { return transitions_; }
  // Count of entries into `s` (quarantine flaps, probation attempts, ...).
  unsigned entries(HealthState s) const;

  // One error-budget window worth of telemetry: `window` holds the deltas
  // accumulated since the previous sample (retries/timeouts/aborts/drops),
  // `ops` the driver operations that terminated in the window, `ok` the
  // ones that succeeded. Returns the (possibly new) state.
  HealthState onWindow(const RobustnessStats& window, std::uint64_t ops,
                       std::uint64_t ok, std::uint64_t cycle);

  // True once the quarantine residency has elapsed and canaries may run.
  // Calling this moves Quarantined -> Probation so the service runs probes
  // exactly once per probation round.
  bool tryBeginProbation(std::uint64_t cycle);

  // Verdict of a full canary round (all key slots probed).
  void onCanaryVerdict(bool all_passed, std::uint64_t cycle);

  // Hard signal that bypasses the window (e.g. a golden-model mismatch on
  // the hardware path): straight to Quarantined.
  void forceQuarantine(std::uint64_t cycle, const std::string& reason);

 private:
  void moveTo(HealthState to, std::uint64_t cycle, std::string reason);

  HealthConfig cfg_;
  HealthState state_ = HealthState::Healthy;
  unsigned clean_windows_ = 0;
  unsigned wedged_windows_ = 0;
  std::uint64_t quarantined_since_ = 0;
  std::vector<Transition> transitions_;
};

}  // namespace aesifc::soc
