#include "hdl/parser.h"

#include <cctype>
#include <map>
#include <sstream>

#include "hdl/elaborate.h"

namespace aesifc::hdl {

namespace {

using lattice::CatSet;
using lattice::Conf;
using lattice::Integ;
using lattice::Label;
using lattice::Principal;

// --- Lexer --------------------------------------------------------------------

enum class Tok {
  Ident,
  Number,       // plain decimal
  SizedNumber,  // 8'hff / 4'd12 / 1'b1
  Punct,
  Eof,
};

struct Token {
  Tok kind = Tok::Eof;
  std::string text;          // identifier, punct spelling
  std::uint64_t value = 0;   // numeric value
  unsigned width = 0;        // sized literal width
  unsigned line = 1, col = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_{src} { advance(); }

  const Token& peek() const { return tok_; }

  Token take() {
    Token t = tok_;
    advance();
    return t;
  }

 private:
  void error(const std::string& msg) const { throw ParseError(msg, line_, col_); }

  int cur() const {
    return pos_ < src_.size() ? static_cast<unsigned char>(src_[pos_]) : -1;
  }

  void bump() {
    if (pos_ < src_.size()) {
      if (src_[pos_] == '\n') {
        ++line_;
        col_ = 1;
      } else {
        ++col_;
      }
      ++pos_;
    }
  }

  void skipSpace() {
    for (;;) {
      while (std::isspace(cur())) bump();
      if (cur() == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        while (cur() != -1 && cur() != '\n') bump();
        continue;
      }
      break;
    }
  }

  void advance() {
    skipSpace();
    tok_ = Token{};
    tok_.line = line_;
    tok_.col = col_;
    const int c = cur();
    if (c == -1) {
      tok_.kind = Tok::Eof;
      return;
    }
    if (std::isalpha(c) || c == '_') {
      std::string s;
      while (std::isalnum(cur()) || cur() == '_') {
        s += static_cast<char>(cur());
        bump();
      }
      tok_.kind = Tok::Ident;
      tok_.text = std::move(s);
      return;
    }
    if (std::isdigit(c)) {
      std::uint64_t v = 0;
      while (std::isdigit(cur())) {
        v = v * 10 + static_cast<std::uint64_t>(cur() - '0');
        bump();
      }
      if (cur() == '\'') {
        bump();
        const int base = cur();
        bump();
        std::uint64_t val = 0;
        if (base == 'h' || base == 'H') {
          if (!std::isxdigit(cur())) error("expected hex digits after 'h");
          while (std::isxdigit(cur())) {
            const int d = cur();
            val = val * 16 +
                  static_cast<std::uint64_t>(
                      std::isdigit(d) ? d - '0' : std::tolower(d) - 'a' + 10);
            bump();
          }
        } else if (base == 'd' || base == 'D') {
          if (!std::isdigit(cur())) error("expected digits after 'd");
          while (std::isdigit(cur())) {
            val = val * 10 + static_cast<std::uint64_t>(cur() - '0');
            bump();
          }
        } else if (base == 'b' || base == 'B') {
          if (cur() != '0' && cur() != '1') error("expected bits after 'b");
          while (cur() == '0' || cur() == '1') {
            val = val * 2 + static_cast<std::uint64_t>(cur() - '0');
            bump();
          }
        } else {
          error("unknown literal base (use 'h, 'd or 'b)");
        }
        if (v == 0 || v > 64) error("literal width must be 1..64");
        tok_.kind = Tok::SizedNumber;
        tok_.width = static_cast<unsigned>(v);
        tok_.value = val;
        return;
      }
      tok_.kind = Tok::Number;
      tok_.value = v;
      return;
    }
    // Multi-char puncts first.
    static const char* kTwo[] = {"<=", "==", "!="};
    for (const char* p : kTwo) {
      if (c == p[0] && pos_ + 1 < src_.size() && src_[pos_ + 1] == p[1]) {
        tok_.kind = Tok::Punct;
        tok_.text = p;
        bump();
        bump();
        return;
      }
    }
    tok_.kind = Tok::Punct;
    tok_.text = std::string(1, static_cast<char>(c));
    bump();
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  unsigned line_ = 1, col_ = 1;
  Token tok_;
};

// --- Parser --------------------------------------------------------------------

class Parser {
 public:
  Parser(const std::string& src, const std::vector<Module>* library)
      : lex_{src}, library_{library} {}

  bool atEof() const { return lex_.peek().kind == Tok::Eof; }

  Module run() {
    symbols_.clear();
    expectIdent("module");
    const Token name = expect(Tok::Ident, "module name");
    Module m{name.text};
    expectPunct("{");
    while (!isPunct("}")) {
      parseDecl(m);
    }
    expectPunct("}");
    return m;
  }

 private:
  [[noreturn]] void error(const std::string& msg, const Token& at) const {
    throw ParseError(msg, at.line, at.col);
  }

  bool isPunct(const std::string& p) const {
    return lex_.peek().kind == Tok::Punct && lex_.peek().text == p;
  }
  bool isIdent(const std::string& s) const {
    return lex_.peek().kind == Tok::Ident && lex_.peek().text == s;
  }

  Token expect(Tok kind, const std::string& what) {
    if (lex_.peek().kind != kind) error("expected " + what, lex_.peek());
    return lex_.take();
  }
  void expectPunct(const std::string& p) {
    if (!isPunct(p)) error("expected '" + p + "'", lex_.peek());
    lex_.take();
  }
  void expectIdent(const std::string& s) {
    if (!isIdent(s)) error("expected '" + s + "'", lex_.peek());
    lex_.take();
  }

  SignalId lookup(Module& m, const Token& name) {
    auto it = symbols_.find(name.text);
    if (it == symbols_.end())
      error("unknown signal '" + name.text + "'", name);
    (void)m;
    return it->second;
  }

  // --- labels ----------------------------------------------------------------

  CatSet parseCatSet() {
    expectPunct("{");
    CatSet s = CatSet::none();
    for (;;) {
      const Token n = expect(Tok::Number, "category index");
      if (n.value >= lattice::kMaxCategories)
        error("category out of range", n);
      s = s.unionWith(CatSet::category(static_cast<unsigned>(n.value)));
      if (isPunct(",")) {
        lex_.take();
        continue;
      }
      break;
    }
    expectPunct("}");
    return s;
  }

  // Parses the "<k>" suffix of a chain-level atom like CL4 / IL2 (the
  // lexer folds it into the identifier).
  unsigned levelSuffix(const Token& t, std::size_t prefix_len) {
    unsigned v = 0;
    for (std::size_t i = prefix_len; i < t.text.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(t.text[i])))
        error("bad level atom '" + t.text + "'", t);
      v = v * 10 + static_cast<unsigned>(t.text[i] - '0');
    }
    if (v > lattice::kMaxCategories) error("level out of range", t);
    return v;
  }

  Conf parseConf() {
    const Token t = expect(Tok::Ident, "confidentiality atom");
    if (t.text == "PUB") return Conf::bottom();
    if (t.text == "SEC") return Conf::top();
    if (t.text == "C") return Conf{parseCatSet()};
    if (t.text.size() > 2 && t.text.compare(0, 2, "CL") == 0)
      return Conf::level(levelSuffix(t, 2));
    error("unknown confidentiality atom '" + t.text + "'", t);
  }

  Integ parseInteg() {
    const Token t = expect(Tok::Ident, "integrity atom");
    if (t.text == "TRU") return Integ::top();
    if (t.text == "UNT") return Integ::bottom();
    if (t.text == "I") return Integ{parseCatSet()};
    if (t.text.size() > 2 && t.text.compare(0, 2, "IL") == 0)
      return Integ::level(levelSuffix(t, 2));
    error("unknown integrity atom '" + t.text + "'", t);
  }

  Label parseLabel() {
    expectPunct("(");
    const Conf c = parseConf();
    expectPunct(",");
    const Integ i = parseInteg();
    expectPunct(")");
    return Label{c, i};
  }

  LabelTerm parseLabelTerm(Module& m) {
    if (isIdent("DL")) {
      const Token dl = lex_.take();
      expectPunct("(");
      const Token sel_name = expect(Tok::Ident, "selector name");
      const SignalId sel = lookup(m, sel_name);
      expectPunct(")");
      expectPunct("{");
      std::vector<Label> table;
      for (;;) {
        table.push_back(parseLabel());
        if (isPunct(",")) {
          lex_.take();
          continue;
        }
        break;
      }
      expectPunct("}");
      const auto need = 1ull << m.signal(sel).width;
      if (table.size() != need)
        error("dependent label table needs " + std::to_string(need) +
                  " entries for selector '" + sel_name.text + "'",
              dl);
      return LabelTerm::dependent(sel, std::move(table));
    }
    return LabelTerm::of(parseLabel());
  }

  // --- expressions --------------------------------------------------------------

  ExprId parseExpr(Module& m) { return parseOr(m); }

  void requireSameWidth(Module& m, ExprId a, ExprId b, const Token& at) {
    if (m.expr(a).width != m.expr(b).width) {
      error("width mismatch: " + std::to_string(m.expr(a).width) + " vs " +
                std::to_string(m.expr(b).width),
            at);
    }
  }

  ExprId parseOr(Module& m) {
    ExprId a = parseXor(m);
    while (isPunct("|")) {
      const Token op = lex_.take();
      ExprId b = parseXor(m);
      requireSameWidth(m, a, b, op);
      a = m.bor(a, b);
    }
    return a;
  }

  ExprId parseXor(Module& m) {
    ExprId a = parseAnd(m);
    while (isPunct("^")) {
      const Token op = lex_.take();
      ExprId b = parseAnd(m);
      requireSameWidth(m, a, b, op);
      a = m.bxor(a, b);
    }
    return a;
  }

  ExprId parseAnd(Module& m) {
    ExprId a = parseEquality(m);
    while (isPunct("&")) {
      const Token op = lex_.take();
      ExprId b = parseEquality(m);
      requireSameWidth(m, a, b, op);
      a = m.band(a, b);
    }
    return a;
  }

  ExprId parseEquality(Module& m) {
    ExprId a = parseRelational(m);
    while (isPunct("==") || isPunct("!=")) {
      const Token op = lex_.take();
      ExprId b = parseRelational(m);
      requireSameWidth(m, a, b, op);
      a = op.text == "==" ? m.eq(a, b) : m.ne(a, b);
    }
    return a;
  }

  ExprId parseRelational(Module& m) {
    ExprId a = parseAdditive(m);
    while (isPunct("<")) {
      const Token op = lex_.take();
      ExprId b = parseAdditive(m);
      requireSameWidth(m, a, b, op);
      a = m.ult(a, b);
    }
    return a;
  }

  ExprId parseAdditive(Module& m) {
    ExprId a = parseUnary(m);
    while (isPunct("+") || isPunct("-")) {
      const Token op = lex_.take();
      ExprId b = parseUnary(m);
      requireSameWidth(m, a, b, op);
      a = op.text == "+" ? m.add(a, b) : m.sub(a, b);
    }
    return a;
  }

  ExprId parseUnary(Module& m) {
    if (isPunct("~")) {
      lex_.take();
      return m.bnot(parseUnary(m));
    }
    if (isPunct("|")) {  // prefix reduction
      lex_.take();
      return m.redOr(parseUnary(m));
    }
    if (isPunct("&")) {
      lex_.take();
      return m.redAnd(parseUnary(m));
    }
    return parsePostfix(m);
  }

  ExprId parsePostfix(Module& m) {
    ExprId e = parsePrimary(m);
    while (isPunct("[")) {
      const Token open = lex_.take();
      const Token hi = expect(Tok::Number, "bit index");
      unsigned lo_v = static_cast<unsigned>(hi.value);
      unsigned hi_v = lo_v;
      if (isPunct(":")) {
        lex_.take();
        const Token lo = expect(Tok::Number, "low bit index");
        lo_v = static_cast<unsigned>(lo.value);
        hi_v = static_cast<unsigned>(hi.value);
      }
      expectPunct("]");
      if (hi_v < lo_v || hi_v >= m.expr(e).width)
        error("slice out of range", open);
      e = m.slice(e, lo_v, hi_v - lo_v + 1);
    }
    return e;
  }

  ExprId parsePrimary(Module& m) {
    const Token& t = lex_.peek();
    if (t.kind == Tok::SizedNumber) {
      const Token lit = lex_.take();
      if (lit.width < 64 && lit.value >= (1ull << lit.width))
        error("literal value does not fit its width", lit);
      return m.c(lit.width, lit.value);
    }
    if (t.kind == Tok::Number) {
      error("unsized literal in expression (write e.g. 8'd5)", t);
    }
    if (isPunct("(")) {
      lex_.take();
      const ExprId e = parseExpr(m);
      expectPunct(")");
      return e;
    }
    if (isPunct("{")) {  // concat: {hi, ..., lo}
      lex_.take();
      std::vector<ExprId> parts;
      for (;;) {
        parts.push_back(parseExpr(m));
        if (isPunct(",")) {
          lex_.take();
          continue;
        }
        break;
      }
      expectPunct("}");
      ExprId acc = parts.back();
      for (std::size_t i = parts.size() - 1; i-- > 0;) {
        acc = m.concat(parts[i], acc);
      }
      return acc;
    }
    if (t.kind == Tok::Ident) {
      if (t.text == "mux") {
        lex_.take();
        expectPunct("(");
        const Token at = lex_.peek();
        const ExprId c = parseExpr(m);
        if (m.expr(c).width != 1) error("mux condition must be 1 bit", at);
        expectPunct(",");
        const ExprId a = parseExpr(m);
        expectPunct(",");
        const ExprId b = parseExpr(m);
        requireSameWidth(m, a, b, at);
        expectPunct(")");
        return m.mux(c, a, b);
      }
      const Token name = lex_.take();
      return m.read(lookup(m, name));
    }
    error("expected expression", t);
  }

  // --- declarations ---------------------------------------------------------------

  void declareSignal(Module& m, SignalKind kind) {
    const Token name = expect(Tok::Ident, "signal name");
    if (symbols_.count(name.text))
      error("duplicate signal '" + name.text + "'", name);
    expectPunct(":");
    const Token w = expect(Tok::Number, "width");
    if (w.value == 0 || w.value > 4096) error("bad width", w);
    const unsigned width = static_cast<unsigned>(w.value);

    LabelTerm term = LabelTerm::unconstrained();
    if (isIdent("label")) {
      lex_.take();
      term = parseLabelTerm(m);
    }

    BitVec reset;
    if (isIdent("reset")) {
      lex_.take();
      const Token& rt = lex_.peek();
      if (rt.kind == Tok::SizedNumber) {
        const Token lit = lex_.take();
        if (lit.width != width) error("reset width mismatch", lit);
        reset = BitVec(width, lit.value);
      } else {
        const Token lit = expect(Tok::Number, "reset value");
        reset = BitVec(width, lit.value);
      }
      if (kind != SignalKind::Reg) error("only regs take a reset", rt);
    }
    expectPunct(";");

    SignalId id;
    switch (kind) {
      case SignalKind::Input: id = m.input(name.text, width, term); break;
      case SignalKind::Output: id = m.output(name.text, width, term); break;
      case SignalKind::Wire: id = m.wire(name.text, width, term); break;
      case SignalKind::Reg: id = m.reg(name.text, width, term, reset); break;
    }
    symbols_.emplace(name.text, id);
  }

  Principal parsePrincipal() {
    const Token name = expect(Tok::Ident, "principal");
    if (name.text == "supervisor") return Principal::supervisor();
    const Label l = parseLabel();
    return Principal{name.text, l};
  }

  void parseDowngrade(Module& m, bool declass) {
    const Token target = expect(Tok::Ident, "downgrade target");
    const SignalId lhs = lookup(m, target);
    expectPunct("=");
    const ExprId value = parseExpr(m);
    if (m.expr(value).width != m.signal(lhs).width)
      error("downgrade width mismatch", target);
    expectIdent("to");
    const Label to = parseLabel();
    expectIdent("by");
    const Principal p = parsePrincipal();
    expectPunct(";");
    if (declass) {
      m.declassify(lhs, value, to, p);
    } else {
      m.endorse(lhs, value, to, p);
    }
  }

  void parseDecl(Module& m) {
    const Token& t = lex_.peek();
    if (t.kind != Tok::Ident) error("expected declaration", t);
    if (t.text == "input") {
      lex_.take();
      declareSignal(m, SignalKind::Input);
    } else if (t.text == "output") {
      lex_.take();
      declareSignal(m, SignalKind::Output);
    } else if (t.text == "wire") {
      lex_.take();
      declareSignal(m, SignalKind::Wire);
    } else if (t.text == "reg") {
      lex_.take();
      declareSignal(m, SignalKind::Reg);
    } else if (t.text == "assign") {
      lex_.take();
      const Token name = expect(Tok::Ident, "assign target");
      const SignalId lhs = lookup(m, name);
      expectPunct("=");
      const ExprId rhs = parseExpr(m);
      if (m.expr(rhs).width != m.signal(lhs).width)
        error("assign width mismatch on '" + name.text + "'", name);
      expectPunct(";");
      m.assign(lhs, rhs);
    } else if (t.text == "declassify") {
      lex_.take();
      parseDowngrade(m, true);
    } else if (t.text == "endorse") {
      lex_.take();
      parseDowngrade(m, false);
    } else if (t.text == "inst") {
      lex_.take();
      parseInstance(m);
    } else {
      // reg write: NAME <= expr [when expr] ;
      const Token name = lex_.take();
      const SignalId reg = lookup(m, name);
      if (m.signal(reg).kind != SignalKind::Reg)
        error("'" + name.text + "' is not a register", name);
      if (!isPunct("<=")) error("expected '<=' after register name", lex_.peek());
      lex_.take();
      const ExprId next = parseExpr(m);
      if (m.expr(next).width != m.signal(reg).width)
        error("register write width mismatch", name);
      ExprId enable = m.c(1, 1);
      if (isIdent("when")) {
        lex_.take();
        const Token at = lex_.peek();
        enable = parseExpr(m);
        if (m.expr(enable).width != 1)
          error("when-condition must be 1 bit", at);
      }
      expectPunct(";");
      m.regWrite(reg, next, enable);
    }
  }

  // inst NAME = MODNAME ( port: expr [, port: expr]* ) ;
  void parseInstance(Module& m) {
    const Token iname = expect(Tok::Ident, "instance name");
    expectPunct("=");
    const Token mod = expect(Tok::Ident, "module name");
    const Module* child = nullptr;
    if (library_ != nullptr) {
      for (const auto& c : *library_) {
        if (c.name() == mod.text) child = &c;
      }
    }
    if (child == nullptr)
      error("unknown module '" + mod.text + "'", mod);

    std::map<std::string, ExprId> bindings;
    expectPunct("(");
    if (!isPunct(")")) {
      for (;;) {
        const Token port = expect(Tok::Ident, "port name");
        expectPunct(":");
        bindings.emplace(port.text, parseExpr(m));
        if (isPunct(",")) {
          lex_.take();
          continue;
        }
        break;
      }
    }
    expectPunct(")");
    expectPunct(";");

    try {
      const auto r = instantiate(m, *child, iname.text, bindings);
      for (const auto& [port, id] : r.ports) {
        symbols_.emplace(iname.text + "__" + port, id);
      }
    } catch (const std::logic_error& e) {
      error(std::string("instantiation failed: ") + e.what(), iname);
    }
  }

  Lexer lex_;
  const std::vector<Module>* library_;
  std::map<std::string, SignalId> symbols_;
};

// --- Emitter -------------------------------------------------------------------

std::string catSetText(CatSet s) {
  std::string out = "{";
  bool first = true;
  for (unsigned i = 0; i < lattice::kMaxCategories; ++i) {
    if (s.mask() & (1u << i)) {
      if (!first) out += ",";
      out += std::to_string(i);
      first = false;
    }
  }
  return out + "}";
}

std::string confText(Conf c) {
  if (c == Conf::bottom()) return "PUB";
  if (c == Conf::top()) return "SEC";
  return "C" + catSetText(c.cats);
}

std::string integText(Integ i) {
  if (i == Integ::top()) return "TRU";
  if (i == Integ::bottom()) return "UNT";
  return "I" + catSetText(i.cats);
}

std::string labelText(const Label& l) {
  return "(" + confText(l.c) + ", " + integText(l.i) + ")";
}

std::string exprText(const Module& m, ExprId id) {
  const Expr& e = m.expr(id);
  auto bin = [&](const char* op) {
    return "(" + exprText(m, e.args[0]) + " " + op + " " +
           exprText(m, e.args[1]) + ")";
  };
  switch (e.op) {
    case Op::Const: {
      if (e.width > 64)
        throw std::logic_error("emitModule: constant wider than 64 bits");
      std::ostringstream os;
      os << e.width << "'h" << std::hex << e.cval.toU64();
      return os.str();
    }
    case Op::SignalRef: return m.signal(e.sig).name;
    case Op::Not: return "(~" + exprText(m, e.args[0]) + ")";
    case Op::And: return bin("&");
    case Op::Or: return bin("|");
    case Op::Xor: return bin("^");
    case Op::Add: return bin("+");
    case Op::Sub: return bin("-");
    case Op::Eq: return bin("==");
    case Op::Ne: return bin("!=");
    case Op::Ult: return bin("<");
    case Op::Mux:
      return "mux(" + exprText(m, e.args[0]) + ", " + exprText(m, e.args[1]) +
             ", " + exprText(m, e.args[2]) + ")";
    case Op::Concat:
      return "{" + exprText(m, e.args[0]) + ", " + exprText(m, e.args[1]) + "}";
    case Op::Slice:
      return "(" + exprText(m, e.args[0]) + ")[" +
             std::to_string(e.lo + e.width - 1) + ":" + std::to_string(e.lo) +
             "]";
    case Op::RedOr: return "(|" + exprText(m, e.args[0]) + ")";
    case Op::RedAnd: return "(&" + exprText(m, e.args[0]) + ")";
    case Op::Lut:
      throw std::logic_error("emitModule: LUT nodes are not representable");
  }
  throw std::logic_error("emitModule: unknown op");
}

std::string labelTermText(const Module& m, const LabelTerm& t) {
  switch (t.kind) {
    case LabelTerm::Kind::Unconstrained:
      return "";
    case LabelTerm::Kind::Static:
      return " label " + labelText(t.fixed);
    case LabelTerm::Kind::Dependent: {
      std::string s = " label DL(" + m.signal(t.selector).name + ") { ";
      for (std::size_t i = 0; i < t.by_value.size(); ++i) {
        if (i) s += ", ";
        s += labelText(t.by_value[i]);
      }
      return s + " }";
    }
  }
  return "";
}

}  // namespace

std::vector<Module> parseLibrary(const std::string& source) {
  std::vector<Module> library;
  Parser p{source, &library};
  while (!p.atEof()) {
    library.push_back(p.run());
  }
  if (library.empty()) {
    throw ParseError("no modules in source", 1, 1);
  }
  return library;
}

Module parseModule(const std::string& source) {
  auto library = parseLibrary(source);
  return std::move(library.back());
}

std::string emitModule(const Module& m) {
  std::ostringstream os;
  os << "module " << m.name() << " {\n";
  for (const auto& s : m.signals()) {
    const char* kind = nullptr;
    switch (s.kind) {
      case SignalKind::Input: kind = "input"; break;
      case SignalKind::Output: kind = "output"; break;
      case SignalKind::Wire: kind = "wire"; break;
      case SignalKind::Reg: kind = "reg"; break;
    }
    os << "  " << kind << " " << s.name << " : " << s.width
       << labelTermText(m, s.label);
    if (s.kind == SignalKind::Reg && !s.reset.isZero()) {
      if (s.width > 64)
        throw std::logic_error("emitModule: reset wider than 64 bits");
      os << " reset " << s.width << "'h" << std::hex << s.reset.toU64()
         << std::dec;
    }
    os << ";\n";
  }
  for (const auto& a : m.assigns()) {
    os << "  assign " << m.signal(a.lhs).name << " = " << exprText(m, a.rhs)
       << ";\n";
  }
  for (const auto& rw : m.regWrites()) {
    os << "  " << m.signal(rw.reg).name << " <= " << exprText(m, rw.next);
    const auto& en = m.expr(rw.enable);
    const bool always =
        en.op == Op::Const && en.cval.width() == 1 && en.cval.toU64() == 1;
    if (!always) os << " when " << exprText(m, rw.enable);
    os << ";\n";
  }
  for (const auto& d : m.downgrades()) {
    os << "  "
       << (d.kind == lattice::DowngradeKind::Declassify ? "declassify"
                                                        : "endorse")
       << " " << m.signal(d.lhs).name << " = " << exprText(m, d.value)
       << " to " << labelText(d.to) << " by ";
    if (d.principal.name == "supervisor" &&
        d.principal.authority == Label::topTop()) {
      os << "supervisor";
    } else {
      os << d.principal.name << " " << labelText(d.principal.authority);
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace aesifc::hdl
