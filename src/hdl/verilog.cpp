#include "hdl/verilog.h"

#include <set>
#include <sstream>

namespace aesifc::hdl {

namespace {

std::string hexLiteral(const BitVec& v) {
  std::ostringstream os;
  os << v.width() << "'h" << v.toHex();
  return os.str();
}

std::string net(ExprId id) { return "e" + std::to_string(id.v); }

void collectReachable(const Module& m, ExprId id, std::set<std::uint32_t>& out) {
  if (!out.insert(id.v).second) return;
  for (const auto a : m.expr(id).args) collectReachable(m, a, out);
}

}  // namespace

std::string emitVerilog(const Module& m, const VerilogOptions& opts) {
  std::ostringstream os;

  // Port list.
  os << "module " << m.name() << " (\n";
  os << "  input wire " << opts.clock << ",\n";
  os << "  input wire " << opts.reset;
  for (const auto& s : m.signals()) {
    if (s.kind == SignalKind::Input) {
      os << ",\n  input wire [" << (s.width - 1) << ":0] " << s.name;
    } else if (s.kind == SignalKind::Output) {
      os << ",\n  output wire [" << (s.width - 1) << ":0] " << s.name;
    }
  }
  os << "\n);\n\n";

  if (opts.emit_label_comments) {
    for (const auto& s : m.signals()) {
      if (s.label.kind == LabelTerm::Kind::Static) {
        os << "  // label " << s.name << " : " << s.label.fixed.toString()
           << "\n";
      } else if (s.label.kind == LabelTerm::Kind::Dependent) {
        os << "  // label " << s.name << " : DL("
           << m.signal(s.label.selector).name << ")\n";
      }
    }
    os << "\n";
  }

  // Internal signal declarations.
  for (const auto& s : m.signals()) {
    if (s.kind == SignalKind::Wire) {
      os << "  wire [" << (s.width - 1) << ":0] " << s.name << ";\n";
    } else if (s.kind == SignalKind::Reg) {
      os << "  reg [" << (s.width - 1) << ":0] " << s.name << ";\n";
    }
  }
  os << "\n";

  // Reachable expression nodes.
  std::set<std::uint32_t> reach;
  for (const auto& a : m.assigns()) collectReachable(m, a.rhs, reach);
  for (const auto& rw : m.regWrites()) {
    collectReachable(m, rw.next, reach);
    collectReachable(m, rw.enable, reach);
  }
  for (const auto& d : m.downgrades()) collectReachable(m, d.value, reach);

  // Lookup tables become functions (declared before use).
  for (const auto idv : reach) {
    const Expr& e = m.expr(ExprId{idv});
    if (e.op != Op::Lut) continue;
    const unsigned iw = m.expr(e.args[0]).width;
    os << "  function [" << (e.width - 1) << ":0] f_" << net(ExprId{idv})
       << ";\n";
    os << "    input [" << (iw - 1) << ":0] idx;\n";
    os << "    begin\n      case (idx)\n";
    for (std::size_t i = 0; i < e.table.size(); ++i) {
      os << "        " << iw << "'h" << std::hex << i << std::dec << ": f_"
         << net(ExprId{idv}) << " = " << hexLiteral(e.table[i]) << ";\n";
    }
    os << "        default: f_" << net(ExprId{idv}) << " = "
       << e.width << "'h0;\n";
    os << "      endcase\n    end\n  endfunction\n\n";
  }

  // One net per expression node, in dependency (index) order.
  for (const auto idv : reach) {
    const ExprId id{idv};
    const Expr& e = m.expr(id);
    os << "  wire [" << (e.width - 1) << ":0] " << net(id) << " = ";
    auto a = [&](unsigned i) { return net(e.args[i]); };
    switch (e.op) {
      case Op::Const: os << hexLiteral(e.cval); break;
      case Op::SignalRef: os << m.signal(e.sig).name; break;
      case Op::Not: os << "~" << a(0); break;
      case Op::And: os << a(0) << " & " << a(1); break;
      case Op::Or: os << a(0) << " | " << a(1); break;
      case Op::Xor: os << a(0) << " ^ " << a(1); break;
      case Op::Add: os << a(0) << " + " << a(1); break;
      case Op::Sub: os << a(0) << " - " << a(1); break;
      case Op::Eq: os << "(" << a(0) << " == " << a(1) << ")"; break;
      case Op::Ne: os << "(" << a(0) << " != " << a(1) << ")"; break;
      case Op::Ult: os << "(" << a(0) << " < " << a(1) << ")"; break;
      case Op::Mux: os << a(0) << " ? " << a(1) << " : " << a(2); break;
      case Op::Concat: os << "{" << a(0) << ", " << a(1) << "}"; break;
      case Op::Slice:
        os << a(0) << "[" << (e.lo + e.width - 1) << ":" << e.lo << "]";
        break;
      case Op::Lut: os << "f_" << net(id) << "(" << a(0) << ")"; break;
      case Op::RedOr: os << "|" << a(0); break;
      case Op::RedAnd: os << "&" << a(0); break;
    }
    os << ";\n";
  }
  os << "\n";

  // Continuous assignments and downgrades (value-transparent).
  for (const auto& as : m.assigns()) {
    os << "  assign " << m.signal(as.lhs).name << " = " << net(as.rhs)
       << ";\n";
  }
  for (const auto& d : m.downgrades()) {
    os << "  assign " << m.signal(d.lhs).name << " = " << net(d.value) << ";";
    if (opts.emit_label_comments) {
      os << "  // "
         << (d.kind == lattice::DowngradeKind::Declassify ? "DECLASSIFY"
                                                          : "ENDORSE")
         << " to " << d.to.toString() << " by " << d.principal.name;
    }
    os << "\n";
  }
  os << "\n";

  // Registers: one always block per register, writes applied in program
  // order (last enabled write wins, matching the IR semantics).
  std::set<std::uint32_t> regs_done;
  for (const auto& rw : m.regWrites()) {
    if (!regs_done.insert(rw.reg.v).second) continue;
    const auto& r = m.signal(rw.reg);
    os << "  always @(posedge " << opts.clock << ") begin\n";
    os << "    if (" << opts.reset << ") begin\n";
    os << "      " << r.name << " <= " << hexLiteral(r.reset) << ";\n";
    os << "    end else begin\n";
    for (const auto& w : m.regWrites()) {
      if (!(w.reg == rw.reg)) continue;
      os << "      if (" << net(w.enable) << ") " << r.name << " <= "
         << net(w.next) << ";\n";
    }
    os << "    end\n  end\n\n";
  }

  os << "endmodule\n";
  return os.str();
}

}  // namespace aesifc::hdl
