#include "hdl/ir.h"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace aesifc::hdl {

SignalId Module::input(const std::string& name, unsigned width, LabelTerm l) {
  signals_.push_back({name, SignalKind::Input, width, std::move(l), BitVec{}});
  return SignalId{static_cast<std::uint32_t>(signals_.size() - 1)};
}

SignalId Module::output(const std::string& name, unsigned width, LabelTerm l) {
  signals_.push_back({name, SignalKind::Output, width, std::move(l), BitVec{}});
  return SignalId{static_cast<std::uint32_t>(signals_.size() - 1)};
}

SignalId Module::wire(const std::string& name, unsigned width, LabelTerm l) {
  signals_.push_back({name, SignalKind::Wire, width, std::move(l), BitVec{}});
  return SignalId{static_cast<std::uint32_t>(signals_.size() - 1)};
}

SignalId Module::reg(const std::string& name, unsigned width, LabelTerm l,
                     BitVec reset) {
  if (reset.width() == 0) reset = BitVec(width);
  signals_.push_back({name, SignalKind::Reg, width, std::move(l), std::move(reset)});
  return SignalId{static_cast<std::uint32_t>(signals_.size() - 1)};
}

void Module::setLabel(SignalId s, LabelTerm l) {
  signals_[s.v].label = std::move(l);
}

ExprId Module::addExpr(Expr e) {
  exprs_.push_back(std::move(e));
  return ExprId{static_cast<std::uint32_t>(exprs_.size() - 1)};
}

ExprId Module::c(unsigned width, std::uint64_t value) {
  return c(BitVec(width, value));
}

ExprId Module::c(BitVec value) {
  Expr e;
  e.op = Op::Const;
  e.width = value.width();
  e.cval = std::move(value);
  return addExpr(std::move(e));
}

ExprId Module::read(SignalId s) {
  Expr e;
  e.op = Op::SignalRef;
  e.width = signal(s).width;
  e.sig = s;
  return addExpr(std::move(e));
}

ExprId Module::bnot(ExprId a) {
  Expr e;
  e.op = Op::Not;
  e.width = expr(a).width;
  e.args = {a};
  return addExpr(std::move(e));
}

static Expr binop(Op op, unsigned width, ExprId a, ExprId b) {
  Expr e;
  e.op = op;
  e.width = width;
  e.args = {a, b};
  return e;
}

ExprId Module::band(ExprId a, ExprId b) {
  assert(expr(a).width == expr(b).width);
  return addExpr(binop(Op::And, expr(a).width, a, b));
}
ExprId Module::bor(ExprId a, ExprId b) {
  assert(expr(a).width == expr(b).width);
  return addExpr(binop(Op::Or, expr(a).width, a, b));
}
ExprId Module::bxor(ExprId a, ExprId b) {
  assert(expr(a).width == expr(b).width);
  return addExpr(binop(Op::Xor, expr(a).width, a, b));
}
ExprId Module::add(ExprId a, ExprId b) {
  assert(expr(a).width == expr(b).width);
  return addExpr(binop(Op::Add, expr(a).width, a, b));
}
ExprId Module::sub(ExprId a, ExprId b) {
  assert(expr(a).width == expr(b).width);
  return addExpr(binop(Op::Sub, expr(a).width, a, b));
}
ExprId Module::eq(ExprId a, ExprId b) {
  assert(expr(a).width == expr(b).width);
  return addExpr(binop(Op::Eq, 1, a, b));
}
ExprId Module::ne(ExprId a, ExprId b) {
  assert(expr(a).width == expr(b).width);
  return addExpr(binop(Op::Ne, 1, a, b));
}
ExprId Module::ult(ExprId a, ExprId b) {
  assert(expr(a).width == expr(b).width);
  return addExpr(binop(Op::Ult, 1, a, b));
}

ExprId Module::mux(ExprId cond, ExprId then_e, ExprId else_e) {
  assert(expr(cond).width == 1);
  assert(expr(then_e).width == expr(else_e).width);
  Expr e;
  e.op = Op::Mux;
  e.width = expr(then_e).width;
  e.args = {cond, then_e, else_e};
  return addExpr(std::move(e));
}

ExprId Module::concat(ExprId hi, ExprId lo) {
  Expr e;
  e.op = Op::Concat;
  e.width = expr(hi).width + expr(lo).width;
  e.args = {hi, lo};
  return addExpr(std::move(e));
}

ExprId Module::slice(ExprId src, unsigned lo, unsigned width) {
  assert(lo + width <= expr(src).width);
  Expr e;
  e.op = Op::Slice;
  e.width = width;
  e.args = {src};
  e.lo = lo;
  return addExpr(std::move(e));
}

ExprId Module::lut(ExprId index, std::vector<BitVec> table) {
  assert(!table.empty());
  assert(table.size() == (1ull << expr(index).width));
  Expr e;
  e.op = Op::Lut;
  e.width = table[0].width();
  e.args = {index};
  e.table = std::move(table);
  return addExpr(std::move(e));
}

ExprId Module::redOr(ExprId a) {
  Expr e;
  e.op = Op::RedOr;
  e.width = 1;
  e.args = {a};
  return addExpr(std::move(e));
}

ExprId Module::redAnd(ExprId a) {
  Expr e;
  e.op = Op::RedAnd;
  e.width = 1;
  e.args = {a};
  return addExpr(std::move(e));
}

void Module::assign(SignalId lhs, ExprId rhs) {
  assert(signal(lhs).width == expr(rhs).width);
  assigns_.push_back({lhs, rhs});
}

void Module::regWrite(SignalId r, ExprId next, ExprId enable) {
  assert(signal(r).kind == SignalKind::Reg);
  assert(signal(r).width == expr(next).width);
  assert(expr(enable).width == 1);
  reg_writes_.push_back({r, next, enable});
}

void Module::declassify(SignalId lhs, ExprId value, Label to, Principal p,
                        std::string note) {
  assert(signal(lhs).width == expr(value).width);
  downgrades_.push_back({lattice::DowngradeKind::Declassify, lhs, value, to,
                         std::move(p), std::move(note)});
}

void Module::endorse(SignalId lhs, ExprId value, Label to, Principal p,
                     std::string note) {
  assert(signal(lhs).width == expr(value).width);
  downgrades_.push_back({lattice::DowngradeKind::Endorse, lhs, value, to,
                         std::move(p), std::move(note)});
}

std::optional<ExprId> Module::driverOf(SignalId s) const {
  for (const auto& a : assigns_) {
    if (a.lhs == s) return a.rhs;
  }
  return std::nullopt;
}

std::optional<std::size_t> Module::downgradeDriverOf(SignalId s) const {
  for (std::size_t i = 0; i < downgrades_.size(); ++i) {
    if (downgrades_[i].lhs == s) return i;
  }
  return std::nullopt;
}

SignalId Module::findSignal(const std::string& name) const {
  for (std::size_t i = 0; i < signals_.size(); ++i) {
    if (signals_[i].name == name)
      return SignalId{static_cast<std::uint32_t>(i)};
  }
  return SignalId{};
}

void Module::validate() const {
  std::vector<int> drivers(signals_.size(), 0);
  for (const auto& a : assigns_) {
    const auto& s = signal(a.lhs);
    if (s.kind != SignalKind::Wire && s.kind != SignalKind::Output)
      throw std::logic_error(name_ + ": assign to non-wire '" + s.name + "'");
    if (s.width != expr(a.rhs).width)
      throw std::logic_error(name_ + ": width mismatch on '" + s.name + "'");
    ++drivers[a.lhs.v];
  }
  for (const auto& d : downgrades_) {
    const auto& s = signal(d.lhs);
    if (s.kind != SignalKind::Wire && s.kind != SignalKind::Output)
      throw std::logic_error(name_ + ": downgrade to non-wire '" + s.name + "'");
    ++drivers[d.lhs.v];
  }
  // Multiple regWrites per register are allowed (priority: later wins when
  // several enables are simultaneously true).
  for (const auto& rw : reg_writes_) {
    if (signal(rw.reg).kind != SignalKind::Reg)
      throw std::logic_error(name_ + ": regWrite to non-reg '" +
                             signal(rw.reg).name + "'");
  }
  for (std::size_t i = 0; i < signals_.size(); ++i) {
    const auto& s = signals_[i];
    if ((s.kind == SignalKind::Wire || s.kind == SignalKind::Output) &&
        drivers[i] > 1)
      throw std::logic_error(name_ + ": multiple drivers on '" + s.name + "'");
    if ((s.kind == SignalKind::Wire || s.kind == SignalKind::Output) &&
        drivers[i] == 0)
      throw std::logic_error(name_ + ": undriven wire/output '" + s.name + "'");
    if (s.label.kind == LabelTerm::Kind::Dependent) {
      if (!s.label.selector.valid())
        throw std::logic_error(name_ + ": dependent label without selector on '" +
                               s.name + "'");
      const auto& sel = signal(s.label.selector);
      if (sel.width > kMaxDepWidth)
        throw std::logic_error(name_ + ": dependent-label selector '" + sel.name +
                               "' wider than " + std::to_string(kMaxDepWidth));
      if (s.label.by_value.size() != (1ull << sel.width))
        throw std::logic_error(name_ + ": dependent label table size mismatch on '" +
                               s.name + "'");
    }
  }
}

std::string Module::dump() const {
  std::ostringstream os;
  os << "module " << name_ << " {\n";
  auto kindName = [](SignalKind k) {
    switch (k) {
      case SignalKind::Input: return "input";
      case SignalKind::Output: return "output";
      case SignalKind::Wire: return "wire";
      case SignalKind::Reg: return "reg";
    }
    return "?";
  };
  for (std::size_t i = 0; i < signals_.size(); ++i) {
    const auto& s = signals_[i];
    os << "  " << kindName(s.kind) << " [" << s.width << "] " << s.name;
    switch (s.label.kind) {
      case LabelTerm::Kind::Unconstrained:
        break;
      case LabelTerm::Kind::Static:
        os << " : " << s.label.fixed.toString();
        break;
      case LabelTerm::Kind::Dependent:
        os << " : DL(" << signal(s.label.selector).name << ")";
        break;
    }
    os << "\n";
  }
  os << "  // " << assigns_.size() << " assigns, " << reg_writes_.size()
     << " reg writes, " << downgrades_.size() << " downgrades\n";
  os << "}\n";
  return os.str();
}

}  // namespace aesifc::hdl
