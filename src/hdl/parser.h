#pragma once
// Textual frontend for the security-typed IR: a small SecVerilog-flavoured
// language so designs and their labels can be written, versioned, and
// checked as source files (see tools/aesifc-check). Grammar sketch:
//
//   module cache_tags {
//     input  we    : 1  label (PUB, TRU);
//     input  way   : 1  label (PUB, TRU);
//     input  tag_i : 19 label DL(way) { (PUB, TRU), (PUB, UNT) };
//     reg    t0    : 19 label (PUB, TRU) reset 19'h0;
//     wire   hit   : 1;
//     assign hit = we & (way == 1'b0);
//     t0 <= tag_i when hit;
//     output tag_o : 19 label (PUB, TRU);
//     assign tag_o = t0;
//     declassify ct = data to (PUB, TRU) by supervisor;
//   }
//
// Expressions: & | ^ + - ~ == != < mux(c,a,b) slices x[hi:lo]
// concatenation {a, b, ...}, reductions |x and &x, sized literals 8'hff /
// 4'd12 / 1'b1. Confidentiality atoms: PUB, SEC, C{1,2}, CL<k>; integrity
// atoms: TRU, UNT, I{0,3}, IL<k>. Principals: `supervisor` or
// `name (CONF, INTEG)`.
//
// Errors are reported as ParseError with 1-based line/column.

#include <stdexcept>
#include <string>

#include "hdl/ir.h"

namespace aesifc::hdl {

struct ParseError : std::runtime_error {
  ParseError(std::string msg, unsigned line, unsigned col)
      : std::runtime_error("line " + std::to_string(line) + ":" +
                           std::to_string(col) + ": " + msg),
        line{line},
        col{col} {}
  unsigned line;
  unsigned col;
};

// Parse one module from source text. Throws ParseError on malformed input.
// Sources may contain several modules; earlier ones can be instantiated by
// later ones with
//
//   inst a1 = adder(x: lhs, y: rhs);
//   assign s = a1__sum;            // instance ports live under inst__port
//
// (instances are flattened during parsing, see hdl/elaborate.h). When the
// source holds several modules the LAST one — the top — is returned.
Module parseModule(const std::string& source);

// All modules of a source, in declaration order.
std::vector<Module> parseLibrary(const std::string& source);

// Emit a module back to the textual form (expressions are printed as trees,
// so this is meant for the hand-sized verification models, not for
// generated netlists with heavy node sharing). parse(emit(m)) yields a
// module with identical structure and labels.
std::string emitModule(const Module& m);

}  // namespace aesifc::hdl
