#pragma once
// Security-typed RTL intermediate representation. This plays the role of
// ChiselFlow in the paper: designers describe synchronous hardware (wires,
// registers, expressions) and annotate signals with security labels that
// are either static or *dependent* (indexed by the runtime value of another
// signal, like ChiselFlow's DL(way) in Fig. 3). The static IFC checker in
// src/ifc verifies the annotations; the simulator in src/sim executes the
// design cycle-accurately.
//
// Design notes:
//  - Modules are flat netlists. Structure comes from C++ builder functions
//    that emit into a module (mirroring how Chisel elaborates to FIRRTL).
//  - Expressions form an immutable DAG held in an arena inside the module.
//  - Registers update on the single implicit clock; each register has an
//    enable expression (constant 1 if always-on). Enables are *implicit
//    flows into time*: the checker joins their labels into the register's
//    label, which is what makes timing channels (Fig. 6, Fig. 8) visible
//    to the analysis.
//  - Downgrades (declassify/endorse) are explicit nodes naming the acting
//    principal, checked against the nonmalleable rules (Eq. 1).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bitvec.h"
#include "lattice/downgrade.h"
#include "lattice/label.h"

namespace aesifc::hdl {

using aesifc::BitVec;
using lattice::Label;
using lattice::Principal;

// --- Strong IDs --------------------------------------------------------------

struct SignalId {
  std::uint32_t v = UINT32_MAX;
  constexpr bool valid() const { return v != UINT32_MAX; }
  constexpr bool operator==(const SignalId&) const = default;
};

struct ExprId {
  std::uint32_t v = UINT32_MAX;
  constexpr bool valid() const { return v != UINT32_MAX; }
  constexpr bool operator==(const ExprId&) const = default;
};

// --- Labels on signals -------------------------------------------------------

// A label annotation: absent (checker infers, no constraint), a static
// label, or a dependent label DL(sel) resolved by the runtime value of a
// selector signal (selector width <= kMaxDepWidth).
struct LabelTerm {
  enum class Kind { Unconstrained, Static, Dependent };

  Kind kind = Kind::Unconstrained;
  Label fixed{};                // Kind::Static
  SignalId selector{};          // Kind::Dependent
  std::vector<Label> by_value;  // Kind::Dependent: size == 2^width(selector)

  static LabelTerm unconstrained() { return {}; }
  static LabelTerm of(Label l) {
    LabelTerm t;
    t.kind = Kind::Static;
    t.fixed = l;
    return t;
  }
  static LabelTerm dependent(SignalId sel, std::vector<Label> table) {
    LabelTerm t;
    t.kind = Kind::Dependent;
    t.selector = sel;
    t.by_value = std::move(table);
    return t;
  }
};

inline constexpr unsigned kMaxDepWidth = 4;  // selectors enumerate <= 16 values

// --- Signals -----------------------------------------------------------------

enum class SignalKind { Input, Output, Wire, Reg };

struct Signal {
  std::string name;
  SignalKind kind = SignalKind::Wire;
  unsigned width = 1;
  LabelTerm label;
  BitVec reset;  // Reg only: power-on value (defaults to zero)
};

// --- Expressions -------------------------------------------------------------

enum class Op {
  Const,      // cval
  SignalRef,  // sig
  Not,
  And,
  Or,
  Xor,
  Add,
  Sub,
  Eq,    // 1-bit result
  Ne,    // 1-bit result
  Ult,   // 1-bit result, unsigned <
  Mux,   // args: {cond(1b), then, else}
  Concat,  // args: {hi, lo}
  Slice,   // args: {src}, bits [lo, lo+width)
  Lut,     // args: {index}; table lookup, width = table entry width
  RedOr,   // 1-bit reduction
  RedAnd,  // 1-bit reduction
};

struct Expr {
  Op op = Op::Const;
  unsigned width = 1;
  std::vector<ExprId> args;
  BitVec cval;          // Const
  SignalId sig{};       // SignalRef
  unsigned lo = 0;      // Slice
  std::vector<BitVec> table;  // Lut: size == 2^width(index)
};

// --- Statements --------------------------------------------------------------

// Continuous assignment driving a Wire or Output.
struct Assign {
  SignalId lhs{};
  ExprId rhs{};
};

// Synchronous register update: on every cycle, if enable then reg <= next.
struct RegWrite {
  SignalId reg{};
  ExprId next{};
  ExprId enable{};
};

// Explicit downgrade: lhs (a Wire/Output) receives `value` relabeled to
// `to`, performed by `principal`. Statically checked to be nonmalleable.
struct Downgrade {
  lattice::DowngradeKind kind = lattice::DowngradeKind::Declassify;
  SignalId lhs{};
  ExprId value{};
  Label to{};
  Principal principal{};
  std::string note;
};

// --- Module ------------------------------------------------------------------

class Module {
 public:
  explicit Module(std::string name) : name_{std::move(name)} {}

  const std::string& name() const { return name_; }

  // Signal constructors.
  SignalId input(const std::string& name, unsigned width, LabelTerm l);
  SignalId output(const std::string& name, unsigned width, LabelTerm l);
  SignalId wire(const std::string& name, unsigned width,
                LabelTerm l = LabelTerm::unconstrained());
  SignalId reg(const std::string& name, unsigned width,
               LabelTerm l = LabelTerm::unconstrained(), BitVec reset = {});

  // Replace a signal's label annotation after creation. Needed for
  // self-dependent labels (a tag register whose label is indexed by its own
  // value), where the SignalId must exist before the term can name it.
  void setLabel(SignalId s, LabelTerm l);

  // Expression constructors.
  ExprId c(unsigned width, std::uint64_t value);
  ExprId c(BitVec value);
  ExprId read(SignalId s);
  ExprId bnot(ExprId a);
  ExprId band(ExprId a, ExprId b);
  ExprId bor(ExprId a, ExprId b);
  ExprId bxor(ExprId a, ExprId b);
  ExprId add(ExprId a, ExprId b);
  ExprId sub(ExprId a, ExprId b);
  ExprId eq(ExprId a, ExprId b);
  ExprId ne(ExprId a, ExprId b);
  ExprId ult(ExprId a, ExprId b);
  ExprId mux(ExprId cond, ExprId then_e, ExprId else_e);
  ExprId concat(ExprId hi, ExprId lo);
  ExprId slice(ExprId src, unsigned lo, unsigned width);
  ExprId lut(ExprId index, std::vector<BitVec> table);
  ExprId redOr(ExprId a);
  ExprId redAnd(ExprId a);

  // Statements.
  void assign(SignalId lhs, ExprId rhs);
  void regWrite(SignalId r, ExprId next, ExprId enable);
  void regWrite(SignalId r, ExprId next) { regWrite(r, next, c(1, 1)); }
  void declassify(SignalId lhs, ExprId value, Label to, Principal p,
                  std::string note = {});
  void endorse(SignalId lhs, ExprId value, Label to, Principal p,
               std::string note = {});

  // Accessors used by the checker / simulator / area model.
  const std::vector<Signal>& signals() const { return signals_; }
  const Signal& signal(SignalId id) const { return signals_[id.v]; }
  const std::vector<Expr>& exprs() const { return exprs_; }
  const Expr& expr(ExprId id) const { return exprs_[id.v]; }
  const std::vector<Assign>& assigns() const { return assigns_; }
  const std::vector<RegWrite>& regWrites() const { return reg_writes_; }
  const std::vector<Downgrade>& downgrades() const { return downgrades_; }

  // The unique driver of a wire/output, if any (Assign or Downgrade index).
  std::optional<ExprId> driverOf(SignalId s) const;
  std::optional<std::size_t> downgradeDriverOf(SignalId s) const;
  SignalId findSignal(const std::string& name) const;

  // Structural sanity checks (single driver per wire, widths, selector
  // widths, table sizes). Throws std::logic_error on malformed IR.
  void validate() const;

  std::string dump() const;  // human-readable netlist listing

 private:
  ExprId addExpr(Expr e);

  std::string name_;
  std::vector<Signal> signals_;
  std::vector<Expr> exprs_;
  std::vector<Assign> assigns_;
  std::vector<RegWrite> reg_writes_;
  std::vector<Downgrade> downgrades_;
};

}  // namespace aesifc::hdl
