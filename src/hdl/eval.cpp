#include "hdl/eval.h"

#include <cassert>
#include <set>
#include <stdexcept>

namespace aesifc::hdl {

namespace {

// Expression DAGs share nodes heavily (e.g. MixColumns reads each byte four
// times), so evaluation memoizes per node within one call — without this a
// 10-round AES netlist costs ~4^10 redundant walks.
BitVec evalExprMemo(const Module& m, ExprId id,
                    const std::function<const BitVec&(SignalId)>& look,
                    std::map<std::uint32_t, BitVec>& cache);

BitVec evalExprRaw(const Module& m, ExprId id,
                   const std::function<const BitVec&(SignalId)>& look,
                   std::map<std::uint32_t, BitVec>& cache) {
  auto evalExpr = [&](const Module& mm, ExprId e,
                      const std::function<const BitVec&(SignalId)>& l) {
    return evalExprMemo(mm, e, l, cache);
  };
  const Expr& e = m.expr(id);
  switch (e.op) {
    case Op::Const:
      return e.cval;
    case Op::SignalRef:
      return look(e.sig);
    case Op::Not:
      return ~evalExpr(m, e.args[0], look);
    case Op::And:
      return evalExpr(m, e.args[0], look) & evalExpr(m, e.args[1], look);
    case Op::Or:
      return evalExpr(m, e.args[0], look) | evalExpr(m, e.args[1], look);
    case Op::Xor:
      return evalExpr(m, e.args[0], look) ^ evalExpr(m, e.args[1], look);
    case Op::Add:
      return evalExpr(m, e.args[0], look).add(evalExpr(m, e.args[1], look));
    case Op::Sub:
      return evalExpr(m, e.args[0], look).sub(evalExpr(m, e.args[1], look));
    case Op::Eq:
      return BitVec(1, evalExpr(m, e.args[0], look) ==
                               evalExpr(m, e.args[1], look)
                           ? 1
                           : 0);
    case Op::Ne:
      return BitVec(1, evalExpr(m, e.args[0], look) ==
                               evalExpr(m, e.args[1], look)
                           ? 0
                           : 1);
    case Op::Ult:
      return BitVec(
          1, evalExpr(m, e.args[0], look).ult(evalExpr(m, e.args[1], look)) ? 1
                                                                            : 0);
    case Op::Mux:
      return evalExpr(m, e.args[0], look).isZero()
                 ? evalExpr(m, e.args[2], look)
                 : evalExpr(m, e.args[1], look);
    case Op::Concat:
      return BitVec::concat(evalExpr(m, e.args[0], look),
                            evalExpr(m, e.args[1], look));
    case Op::Slice:
      return evalExpr(m, e.args[0], look).slice(e.lo, e.width);
    case Op::Lut: {
      const std::uint64_t idx = evalExpr(m, e.args[0], look).toU64();
      return e.table[idx];
    }
    case Op::RedOr:
      return BitVec(1, evalExpr(m, e.args[0], look).isZero() ? 0 : 1);
    case Op::RedAnd: {
      const BitVec v = evalExpr(m, e.args[0], look);
      return BitVec(1, v.popcount() == v.width() ? 1 : 0);
    }
  }
  throw std::logic_error("evalExpr: unknown op");
}

BitVec evalExprMemo(const Module& m, ExprId id,
                    const std::function<const BitVec&(SignalId)>& look,
                    std::map<std::uint32_t, BitVec>& cache) {
  if (auto it = cache.find(id.v); it != cache.end()) return it->second;
  BitVec v = evalExprRaw(m, id, look, cache);
  cache.emplace(id.v, v);
  return v;
}

}  // namespace

BitVec evalExpr(const Module& m, ExprId id,
                const std::function<const BitVec&(SignalId)>& look) {
  std::map<std::uint32_t, BitVec> cache;
  return evalExprMemo(m, id, look, cache);
}

namespace {

struct PeCtx {
  const std::map<std::uint32_t, BitVec>& pinned;
  std::set<std::uint32_t> visiting;
  // Memoized results per expression node: expression DAGs share nodes, and
  // an unmemoized walk is exponential on deep netlists.
  std::map<std::uint32_t, std::optional<BitVec>> cache;
};

std::optional<BitVec> peSignal(const Module& m, SignalId s, PeCtx& ctx);

std::optional<BitVec> peRaw(const Module& m, ExprId id, PeCtx& ctx);

std::optional<BitVec> pe(const Module& m, ExprId id, PeCtx& ctx) {
  if (auto it = ctx.cache.find(id.v); it != ctx.cache.end()) return it->second;
  auto r = peRaw(m, id, ctx);
  ctx.cache.emplace(id.v, r);
  return r;
}

std::optional<BitVec> peRaw(const Module& m, ExprId id, PeCtx& ctx) {
  const Expr& e = m.expr(id);
  switch (e.op) {
    case Op::Const:
      return e.cval;
    case Op::SignalRef:
      return peSignal(m, e.sig, ctx);
    case Op::Mux: {
      // Short-circuit: a decided condition prunes the dead branch even if
      // that branch is not evaluable.
      auto cond = pe(m, e.args[0], ctx);
      if (!cond) return std::nullopt;
      return pe(m, cond->isZero() ? e.args[2] : e.args[1], ctx);
    }
    case Op::And:
    case Op::Or: {
      // Short-circuit: And with a known all-zero operand is zero, Or with a
      // known all-ones operand is all-ones, even if the other side is
      // unknown. This is what prunes tag-mismatch write enables to a
      // constant during dependent-label checking.
      auto a = pe(m, e.args[0], ctx);
      auto b = pe(m, e.args[1], ctx);
      if (e.op == Op::And) {
        if ((a && a->isZero()) || (b && b->isZero())) return BitVec(e.width);
        if (a && b) return *a & *b;
        return std::nullopt;
      }
      const BitVec ones = BitVec::allOnes(e.width);
      if ((a && *a == ones) || (b && *b == ones)) return ones;
      if (a && b) return *a | *b;
      return std::nullopt;
    }
    default: {
      std::vector<BitVec> vals;
      vals.reserve(e.args.size());
      for (auto a : e.args) {
        auto v = pe(m, a, ctx);
        if (!v) return std::nullopt;
        vals.push_back(std::move(*v));
      }
      switch (e.op) {
        case Op::Not: return ~vals[0];
        case Op::Xor: return vals[0] ^ vals[1];
        case Op::Add: return vals[0].add(vals[1]);
        case Op::Sub: return vals[0].sub(vals[1]);
        case Op::Eq: return BitVec(1, vals[0] == vals[1] ? 1 : 0);
        case Op::Ne: return BitVec(1, vals[0] == vals[1] ? 0 : 1);
        case Op::Ult: return BitVec(1, vals[0].ult(vals[1]) ? 1 : 0);
        case Op::Concat: return BitVec::concat(vals[0], vals[1]);
        case Op::Slice: return vals[0].slice(e.lo, e.width);
        case Op::Lut: return e.table[vals[0].toU64()];
        case Op::RedOr: return BitVec(1, vals[0].isZero() ? 0 : 1);
        case Op::RedAnd:
          return BitVec(1, vals[0].popcount() == vals[0].width() ? 1 : 0);
        default: break;
      }
      throw std::logic_error("partialEval: unknown op");
    }
  }
}

std::optional<BitVec> peSignal(const Module& m, SignalId s, PeCtx& ctx) {
  if (auto it = ctx.pinned.find(s.v); it != ctx.pinned.end()) return it->second;
  const Signal& sig = m.signal(s);
  if (sig.kind == SignalKind::Wire || sig.kind == SignalKind::Output) {
    if (ctx.visiting.count(s.v)) return std::nullopt;  // combinational cycle guard
    ctx.visiting.insert(s.v);
    std::optional<BitVec> r;
    if (auto d = m.driverOf(s)) {
      r = pe(m, *d, ctx);
    } else if (auto dg = m.downgradeDriverOf(s)) {
      r = pe(m, m.downgrades()[*dg].value, ctx);
    }
    ctx.visiting.erase(s.v);
    return r;
  }
  return std::nullopt;  // un-pinned input or register
}

void collectLeaves(const Module& m, ExprId id, std::set<std::uint32_t>& wires,
                   std::set<std::uint32_t>& leaves,
                   std::set<std::uint32_t>& seen_exprs) {
  if (!seen_exprs.insert(id.v).second) return;
  const Expr& e = m.expr(id);
  if (e.op == Op::SignalRef) {
    const Signal& s = m.signal(e.sig);
    if (s.kind == SignalKind::Wire || s.kind == SignalKind::Output) {
      if (wires.insert(e.sig.v).second) {
        if (auto d = m.driverOf(e.sig)) {
          collectLeaves(m, *d, wires, leaves, seen_exprs);
        } else if (auto dg = m.downgradeDriverOf(e.sig)) {
          collectLeaves(m, m.downgrades()[*dg].value, wires, leaves, seen_exprs);
        }
      }
    } else {
      leaves.insert(e.sig.v);
    }
    return;
  }
  for (auto a : e.args) collectLeaves(m, a, wires, leaves, seen_exprs);
}

}  // namespace

std::optional<BitVec> partialEval(const Module& m, ExprId e,
                                  const std::map<std::uint32_t, BitVec>& pinned) {
  PeCtx ctx{pinned, {}, {}};
  return pe(m, e, ctx);
}

std::vector<SignalId> leafDeps(const Module& m, ExprId e) {
  std::set<std::uint32_t> wires, leaves, seen_exprs;
  collectLeaves(m, e, wires, leaves, seen_exprs);
  std::vector<SignalId> out;
  out.reserve(leaves.size());
  for (auto v : leaves) out.push_back(SignalId{v});
  return out;
}

namespace {

// Wires directly read by an expression (not chased through drivers).
void directWireReads(const Module& m, ExprId id, std::set<std::uint32_t>& out,
                     std::set<std::uint32_t>& seen_exprs) {
  if (!seen_exprs.insert(id.v).second) return;
  const Expr& e = m.expr(id);
  if (e.op == Op::SignalRef) {
    const Signal& s = m.signal(e.sig);
    if (s.kind == SignalKind::Wire || s.kind == SignalKind::Output)
      out.insert(e.sig.v);
    return;
  }
  for (auto a : e.args) directWireReads(m, a, out, seen_exprs);
}

}  // namespace

CombSchedule scheduleCombinational(const Module& m) {
  struct Node {
    CombSchedule::Entry entry;
    SignalId lhs;
    std::set<std::uint32_t> reads;  // wire signals read
  };
  std::vector<Node> nodes;
  for (std::size_t i = 0; i < m.assigns().size(); ++i) {
    Node n;
    n.entry = {false, i};
    n.lhs = m.assigns()[i].lhs;
    std::set<std::uint32_t> seen;
    directWireReads(m, m.assigns()[i].rhs, n.reads, seen);
    nodes.push_back(std::move(n));
  }
  for (std::size_t i = 0; i < m.downgrades().size(); ++i) {
    Node n;
    n.entry = {true, i};
    n.lhs = m.downgrades()[i].lhs;
    std::set<std::uint32_t> seen;
    directWireReads(m, m.downgrades()[i].value, n.reads, seen);
    nodes.push_back(std::move(n));
  }

  // Kahn's algorithm over producer->consumer edges.
  std::map<std::uint32_t, std::size_t> producer;  // wire -> node index
  for (std::size_t i = 0; i < nodes.size(); ++i) producer[nodes[i].lhs.v] = i;

  std::vector<std::size_t> indeg(nodes.size(), 0);
  std::vector<std::vector<std::size_t>> succ(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (auto w : nodes[i].reads) {
      auto it = producer.find(w);
      if (it != producer.end()) {
        succ[it->second].push_back(i);
        ++indeg[i];
      }
    }
  }
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    if (indeg[i] == 0) ready.push_back(i);

  CombSchedule sched;
  while (!ready.empty()) {
    const std::size_t i = ready.back();
    ready.pop_back();
    sched.order.push_back(nodes[i].entry);
    for (auto s : succ[i]) {
      if (--indeg[s] == 0) ready.push_back(s);
    }
  }
  if (sched.order.size() != nodes.size())
    throw std::logic_error(m.name() + ": combinational cycle detected");
  return sched;
}

}  // namespace aesifc::hdl
