#pragma once
// Module composition: instantiate (flatten) a child module inside a parent,
// Chisel-elaboration style. The child's signals are copied under
// `inst__name`; its input annotations become checked wire annotations in
// the parent, so the static checker automatically verifies every binding
// against the child's declared interface labels — modular verification by
// construction.

#include <map>
#include <string>

#include "hdl/ir.h"

namespace aesifc::hdl {

struct InstanceResult {
  // Child port name -> the parent-side signal carrying it (inputs and
  // outputs alike; internal signals are also accessible by prefixed name).
  std::map<std::string, SignalId> ports;
};

// Inlines `child` into `parent` under instance name `inst`. Every child
// input must be bound to a parent expression of matching width. Child
// outputs become parent wires named `inst__<name>`. Dependent-label
// selectors are remapped to the copied signals. Throws std::logic_error on
// missing/mistyped bindings or name collisions.
InstanceResult instantiate(Module& parent, const Module& child,
                           const std::string& inst,
                           const std::map<std::string, ExprId>& bindings);

}  // namespace aesifc::hdl
