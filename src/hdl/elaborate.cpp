#include "hdl/elaborate.h"

#include <stdexcept>
#include <vector>

namespace aesifc::hdl {

InstanceResult instantiate(Module& parent, const Module& child,
                           const std::string& inst,
                           const std::map<std::string, ExprId>& bindings) {
  child.validate();

  // 1. Copy signals under the instance prefix; child inputs become wires
  //    carrying the child's interface label (so bindings are checked).
  std::vector<SignalId> sig_map(child.signals().size());
  for (std::size_t i = 0; i < child.signals().size(); ++i) {
    const auto& s = child.signals()[i];
    const std::string name = inst + "__" + s.name;
    if (parent.findSignal(name).valid())
      throw std::logic_error("instantiate: name collision on '" + name + "'");
    SignalId id;
    switch (s.kind) {
      case SignalKind::Input:
      case SignalKind::Output:
      case SignalKind::Wire:
        id = parent.wire(name, s.width, s.label);
        break;
      case SignalKind::Reg:
        id = parent.reg(name, s.width, s.label, s.reset);
        break;
    }
    sig_map[i] = id;
  }

  // 2. Fix dependent-label selectors to point at the copied signals.
  for (std::size_t i = 0; i < child.signals().size(); ++i) {
    const auto& s = child.signals()[i];
    if (s.label.kind != LabelTerm::Kind::Dependent) continue;
    LabelTerm t = s.label;
    t.selector = sig_map[t.selector.v];
    parent.setLabel(sig_map[i], std::move(t));
  }

  // 3. Bind inputs: each child input wire is driven by the caller's
  //    expression. The wire's annotation (the child's interface label)
  //    makes the checker verify the flow at the boundary.
  for (std::size_t i = 0; i < child.signals().size(); ++i) {
    const auto& s = child.signals()[i];
    if (s.kind != SignalKind::Input) continue;
    auto it = bindings.find(s.name);
    if (it == bindings.end())
      throw std::logic_error("instantiate: unbound input '" + s.name + "'");
    if (parent.expr(it->second).width != s.width)
      throw std::logic_error("instantiate: width mismatch binding '" + s.name +
                             "'");
    parent.assign(sig_map[i], it->second);
  }
  for (const auto& [name, expr] : bindings) {
    const SignalId cs = child.findSignal(name);
    (void)expr;
    if (!cs.valid() || child.signal(cs).kind != SignalKind::Input)
      throw std::logic_error("instantiate: '" + name +
                             "' is not an input of " + child.name());
  }

  // 4. Copy the expression arena (ids in a module are created in
  //    dependency order, so a single forward pass suffices).
  std::vector<ExprId> expr_map(child.exprs().size());
  for (std::size_t i = 0; i < child.exprs().size(); ++i) {
    Expr e = child.exprs()[i];
    if (e.op == Op::SignalRef) {
      expr_map[i] = parent.read(sig_map[e.sig.v]);
      continue;
    }
    // Rebuild through the builder to keep parent invariants.
    std::vector<ExprId> args;
    args.reserve(e.args.size());
    for (const auto a : e.args) args.push_back(expr_map[a.v]);
    switch (e.op) {
      case Op::Const: expr_map[i] = parent.c(e.cval); break;
      case Op::Not: expr_map[i] = parent.bnot(args[0]); break;
      case Op::And: expr_map[i] = parent.band(args[0], args[1]); break;
      case Op::Or: expr_map[i] = parent.bor(args[0], args[1]); break;
      case Op::Xor: expr_map[i] = parent.bxor(args[0], args[1]); break;
      case Op::Add: expr_map[i] = parent.add(args[0], args[1]); break;
      case Op::Sub: expr_map[i] = parent.sub(args[0], args[1]); break;
      case Op::Eq: expr_map[i] = parent.eq(args[0], args[1]); break;
      case Op::Ne: expr_map[i] = parent.ne(args[0], args[1]); break;
      case Op::Ult: expr_map[i] = parent.ult(args[0], args[1]); break;
      case Op::Mux:
        expr_map[i] = parent.mux(args[0], args[1], args[2]);
        break;
      case Op::Concat: expr_map[i] = parent.concat(args[0], args[1]); break;
      case Op::Slice:
        expr_map[i] = parent.slice(args[0], e.lo, e.width);
        break;
      case Op::Lut: expr_map[i] = parent.lut(args[0], e.table); break;
      case Op::RedOr: expr_map[i] = parent.redOr(args[0]); break;
      case Op::RedAnd: expr_map[i] = parent.redAnd(args[0]); break;
      case Op::SignalRef: break;  // handled above
    }
  }

  // 5. Copy statements.
  for (const auto& a : child.assigns()) {
    parent.assign(sig_map[a.lhs.v], expr_map[a.rhs.v]);
  }
  for (const auto& rw : child.regWrites()) {
    parent.regWrite(sig_map[rw.reg.v], expr_map[rw.next.v],
                    expr_map[rw.enable.v]);
  }
  for (const auto& d : child.downgrades()) {
    if (d.kind == lattice::DowngradeKind::Declassify) {
      parent.declassify(sig_map[d.lhs.v], expr_map[d.value.v], d.to,
                        d.principal, d.note);
    } else {
      parent.endorse(sig_map[d.lhs.v], expr_map[d.value.v], d.to, d.principal,
                     d.note);
    }
  }

  InstanceResult r;
  for (std::size_t i = 0; i < child.signals().size(); ++i) {
    const auto& s = child.signals()[i];
    if (s.kind == SignalKind::Input || s.kind == SignalKind::Output) {
      r.ports.emplace(s.name, sig_map[i]);
    }
  }
  return r;
}

}  // namespace aesifc::hdl
