#pragma once
// Synthesizable Verilog-2001 export of IR modules — the bridge from this
// repository to a real FPGA flow (the paper's prototype went through
// Vivado; a user of this methodology would export the verified design and
// synthesize it to obtain Table 2-style numbers on silicon).
//
// Labels and downgrades are emitted as structured comments (they have no
// synthesis semantics); LUT nodes become case statements inside generated
// functions; registers get a synchronous always block with their reset
// value applied at `rst`.

#include <string>

#include "hdl/ir.h"

namespace aesifc::hdl {

struct VerilogOptions {
  std::string clock = "clk";
  std::string reset = "rst";  // synchronous, active-high
  bool emit_label_comments = true;
};

// Emits one module. Throws std::logic_error only for malformed IR (it is
// total over every Op, including Lut).
std::string emitVerilog(const Module& m, const VerilogOptions& opts = {});

}  // namespace aesifc::hdl
