#pragma once
// Expression evaluation and netlist scheduling shared by the cycle
// simulator (src/sim) and the static checker's partial evaluator (src/ifc).

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "hdl/ir.h"

namespace aesifc::hdl {

// Full evaluation: `look` must return the value of any referenced signal.
BitVec evalExpr(const Module& m, ExprId e,
                const std::function<const BitVec&(SignalId)>& look);

// Partial evaluation under a set of pinned signal values. Wires are chased
// through their drivers (including downgrade drivers, which are
// value-transparent). Returns nullopt when the value depends on an
// un-pinned input/register.
std::optional<BitVec> partialEval(const Module& m, ExprId e,
                                  const std::map<std::uint32_t, BitVec>& pinned);

// Signals (transitively) referenced by an expression, chasing wires through
// their combinational drivers; reports only Input/Reg endpoints.
std::vector<SignalId> leafDeps(const Module& m, ExprId e);

// Order of `m.assigns()` indices such that every wire is computed before it
// is read by a later assign. Downgrade drivers are scheduled via the
// returned `downgrade_order` the same way. Throws on combinational cycles.
struct CombSchedule {
  // Interleaved schedule entries: {is_downgrade, index into assigns() or
  // downgrades()}.
  struct Entry {
    bool is_downgrade = false;
    std::size_t index = 0;
  };
  std::vector<Entry> order;
};

CombSchedule scheduleCombinational(const Module& m);

}  // namespace aesifc::hdl
