#pragma once
// VCD (Value Change Dump, IEEE 1364) waveform writer for the simulator —
// the artifact a hardware engineer would load into GTKWave to inspect the
// pipeline, and what our debugging examples dump.

#include <string>
#include <vector>

#include "sim/simulator.h"

namespace aesifc::sim {

class VcdWriter {
 public:
  // Watches `signals` of the simulator's module (all signals if empty).
  VcdWriter(const Simulator& sim, std::vector<SignalId> signals = {});

  // Capture the current values at the simulator's current cycle. Call once
  // per cycle (or whenever the design settles); emits only changes.
  void sample();

  // Complete VCD document (header + change dump so far).
  std::string str() const;

  // Convenience: write to a file; returns false on I/O failure.
  bool writeTo(const std::string& path) const;

 private:
  static std::string idCode(std::size_t n);

  const Simulator& sim_;
  std::vector<SignalId> signals_;
  std::vector<aesifc::BitVec> last_;
  std::vector<bool> seen_;
  std::string body_;
};

}  // namespace aesifc::sim
