#pragma once
// Two-phase cycle-accurate simulator for HDL IR modules: each step settles
// the combinational network in a precomputed topological order, then clocks
// every register (double-buffered so register reads see pre-edge values).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hdl/eval.h"
#include "hdl/ir.h"

namespace aesifc::sim {

using hdl::Module;
using hdl::SignalId;

class Simulator {
 public:
  explicit Simulator(const Module& m);

  // Back to reset values; cycle counter to zero. Poked inputs are cleared.
  void reset();

  void poke(SignalId s, aesifc::BitVec v);
  void poke(const std::string& name, aesifc::BitVec v);
  const aesifc::BitVec& peek(SignalId s) const;
  const aesifc::BitVec& peek(const std::string& name) const;

  // Settle combinational logic without advancing the clock (e.g. to observe
  // outputs mid-cycle after poking inputs).
  void evalComb();

  // One full clock cycle: settle, then update registers.
  void step(unsigned n = 1);

  std::uint64_t cycle() const { return cycle_; }
  const Module& module() const { return module_; }

 private:
  const Module& module_;
  hdl::CombSchedule schedule_;
  std::vector<aesifc::BitVec> values_;
  std::uint64_t cycle_ = 0;
};

// Records selected signals every cycle; used by experiments that analyze
// latency traces and by debugging dumps.
class Trace {
 public:
  Trace(const Simulator& sim, std::vector<SignalId> watch);

  void sample();  // capture current values

  std::size_t length() const { return rows_.size(); }
  const aesifc::BitVec& at(std::size_t row, std::size_t col) const {
    return rows_[row][col];
  }
  std::string toCsv(const Module& m) const;

 private:
  const Simulator& sim_;
  std::vector<SignalId> watch_;
  std::vector<std::vector<aesifc::BitVec>> rows_;
};

}  // namespace aesifc::sim
