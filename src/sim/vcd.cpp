#include "sim/vcd.h"

#include <fstream>
#include <sstream>

namespace aesifc::sim {

VcdWriter::VcdWriter(const Simulator& sim, std::vector<SignalId> signals)
    : sim_{sim}, signals_{std::move(signals)} {
  if (signals_.empty()) {
    for (std::size_t i = 0; i < sim.module().signals().size(); ++i) {
      signals_.push_back(SignalId{static_cast<std::uint32_t>(i)});
    }
  }
  last_.resize(signals_.size());
  seen_.resize(signals_.size(), false);
}

std::string VcdWriter::idCode(std::size_t n) {
  // Printable identifier codes: base-94 over '!'..'~'.
  std::string s;
  do {
    s += static_cast<char>('!' + n % 94);
    n /= 94;
  } while (n != 0);
  return s;
}

void VcdWriter::sample() {
  std::ostringstream os;
  os << "#" << sim_.cycle() << "\n";
  bool any = false;
  for (std::size_t i = 0; i < signals_.size(); ++i) {
    const auto& v = sim_.peek(signals_[i]);
    if (seen_[i] && v == last_[i]) continue;
    seen_[i] = true;
    last_[i] = v;
    any = true;
    const auto& sig = sim_.module().signal(signals_[i]);
    if (sig.width == 1) {
      os << (v.isZero() ? "0" : "1") << idCode(i) << "\n";
    } else {
      os << "b";
      for (unsigned b = sig.width; b-- > 0;) os << (v.bit(b) ? '1' : '0');
      os << " " << idCode(i) << "\n";
    }
  }
  if (any) body_ += os.str();
}

std::string VcdWriter::str() const {
  std::ostringstream os;
  os << "$date reproduction run $end\n";
  os << "$version aesifc simulator $end\n";
  os << "$timescale 1ns $end\n";
  os << "$scope module " << sim_.module().name() << " $end\n";
  for (std::size_t i = 0; i < signals_.size(); ++i) {
    const auto& sig = sim_.module().signal(signals_[i]);
    os << "$var wire " << sig.width << " " << idCode(i) << " " << sig.name
       << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";
  os << body_;
  return os.str();
}

bool VcdWriter::writeTo(const std::string& path) const {
  std::ofstream f{path};
  if (!f) return false;
  f << str();
  return static_cast<bool>(f);
}

}  // namespace aesifc::sim
